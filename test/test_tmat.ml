(* Property tests for the packed ternary kernels (Tmat): every
   word-parallel operation is compared against a naive entry-by-entry
   reference model over random tables with random don't-care masks, and
   against Tt / Matrix / Canonical on fully-determined tables. *)

module Tmat = Stp_matrix.Tmat
module Matrix = Stp_matrix.Matrix
module Canonical = Stp_matrix.Canonical
module Tt = Stp_tt.Tt
module Prng = Stp_util.Prng

(* --- reference model: plain entry arrays --- *)

let random_entries rng n =
  Array.init (1 lsl n) (fun _ ->
      match Prng.int rng 3 with
      | 0 -> Tmat.True
      | 1 -> Tmat.False
      | _ -> Tmat.Dontcare)

let pack n arr = Tmat.of_fun n (fun c -> arr.(c))

let check_entries name tm arr =
  let n = Tmat.num_vars tm in
  Alcotest.(check int) (name ^ ": width") (Array.length arr) (1 lsl n);
  for c = 0 to (1 lsl n) - 1 do
    if Tmat.get tm c <> arr.(c) then Alcotest.failf "%s: entry %d differs" name c
  done

let ref_compatible a b =
  let ok = ref true in
  Array.iteri
    (fun c x ->
      match (x, b.(c)) with
      | Tmat.True, Tmat.False | Tmat.False, Tmat.True -> ok := false
      | _ -> ())
    a;
  !ok

let ref_refines a b =
  let ok = ref true in
  Array.iteri
    (fun c y ->
      if y <> Tmat.Dontcare && a.(c) <> y then ok := false)
    b;
  !ok

(* --- construction and access --- *)

let test_roundtrip () =
  let rng = Prng.create 1 in
  for n = 0 to 8 do
    for _ = 1 to 10 do
      let arr = random_entries rng n in
      let tm = pack n arr in
      check_entries "of_fun/get" tm arr;
      let dc =
        Array.fold_left
          (fun acc e -> if e = Tmat.Dontcare then acc + 1 else acc)
          0 arr
      in
      Alcotest.(check int) "num_dontcares" dc (Tmat.num_dontcares tm);
      (* functional set *)
      let c = Prng.int rng (1 lsl n) in
      let tm' = Tmat.set tm c Tmat.Dontcare in
      Alcotest.(check bool) "set" true (Tmat.get tm' c = Tmat.Dontcare);
      check_entries "set leaves rest" tm arr
    done
  done

let test_of_tt_with_care () =
  let rng = Prng.create 2 in
  for _ = 1 to 50 do
    let n = Prng.int rng 9 in
    let v = Tt.of_fun n (fun _ -> Prng.bool rng) in
    let care = Tt.of_fun n (fun _ -> Prng.bool rng) in
    let tm = Tmat.of_tt_with_care v ~care in
    let arr =
      Array.init (1 lsl n) (fun m ->
          if not (Tt.get care m) then Tmat.Dontcare
          else if Tt.get v m then Tmat.True
          else Tmat.False)
    in
    check_entries "of_tt_with_care" tm arr;
    (* full-care roundtrip through Tt *)
    Alcotest.(check bool) "of_tt/to_tt" true
      (Tt.equal v (Tmat.to_tt (Tmat.of_tt v)))
  done

(* --- ternary lattice --- *)

let test_lattice () =
  let rng = Prng.create 3 in
  for _ = 1 to 200 do
    let n = Prng.int rng 7 in
    let a = random_entries rng n in
    (* bias towards related pairs: sometimes derive b from a *)
    let b =
      if Prng.bool rng then random_entries rng n
      else
        Array.map
          (fun e -> if Prng.int rng 3 = 0 then Tmat.Dontcare else e)
          a
    in
    let ta = pack n a and tb = pack n b in
    Alcotest.(check bool) "compatible" (ref_compatible a b)
      (Tmat.compatible ta tb);
    Alcotest.(check bool) "refines" (ref_refines a b) (Tmat.refines ta tb);
    (match Tmat.meet ta tb with
     | None ->
       Alcotest.(check bool) "meet none iff incompatible" false
         (ref_compatible a b)
     | Some m ->
       Alcotest.(check bool) "meet some iff compatible" true
         (ref_compatible a b);
       let expect =
         Array.mapi
           (fun c x -> if x = Tmat.Dontcare then b.(c) else x)
           a
       in
       check_entries "meet entries" m expect;
       Alcotest.(check bool) "meet refines both" true
         (Tmat.refines m ta && Tmat.refines m tb));
    Alcotest.(check bool) "equal reflexive" true (Tmat.equal ta (pack n a));
    Alcotest.(check int) "compare reflexive" 0 (Tmat.compare ta (pack n a))
  done

(* --- blocks and quartering --- *)

let ref_cofactor arr n i b =
  Array.init (1 lsl n) (fun c ->
      let c' = if b then c lor (1 lsl i) else c land lnot (1 lsl i) in
      arr.(c'))

let test_cofactor_quarter () =
  let rng = Prng.create 4 in
  for _ = 1 to 100 do
    let n = 1 + Prng.int rng 8 in
    let arr = random_entries rng n in
    let tm = pack n arr in
    let i = Prng.int rng n in
    check_entries "cofactor 0" (Tmat.cofactor tm i false)
      (ref_cofactor arr n i false);
    check_entries "cofactor 1" (Tmat.cofactor tm i true)
      (ref_cofactor arr n i true);
    let q0, q1 = Tmat.quarter tm i in
    check_entries "quarter lo" q0 (ref_cofactor arr n i false);
    check_entries "quarter hi" q1 (ref_cofactor arr n i true)
  done

let ref_distinct_blocks arr n group =
  (* restrict to every assignment of the group bits; count distinct
     restricted entry vectors *)
  let rest = ref [] in
  for i = n - 1 downto 0 do
    if (group lsr i) land 1 = 0 then rest := i :: !rest
  done;
  let rest = Array.of_list !rest in
  let gvars = ref [] in
  for i = n - 1 downto 0 do
    if (group lsr i) land 1 = 1 then gvars := i :: !gvars
  done;
  let gvars = Array.of_list !gvars in
  let blocks = Hashtbl.create 16 in
  for gi = 0 to (1 lsl Array.length gvars) - 1 do
    let block =
      Array.to_list
        (Array.init
           (1 lsl Array.length rest)
           (fun ri ->
             let c = ref 0 in
             Array.iteri
               (fun j v -> if (gi lsr j) land 1 = 1 then c := !c lor (1 lsl v))
               gvars;
             Array.iteri
               (fun j v -> if (ri lsr j) land 1 = 1 then c := !c lor (1 lsl v))
               rest;
             arr.(!c)))
    in
    Hashtbl.replace blocks block ()
  done;
  Hashtbl.length blocks

let test_distinct_blocks () =
  let rng = Prng.create 5 in
  for _ = 1 to 150 do
    let n = 1 + Prng.int rng 7 in
    let arr = random_entries rng n in
    let tm = pack n arr in
    let group = Prng.int rng (1 lsl n) in
    let expect = ref_distinct_blocks arr n group in
    Alcotest.(check int) "distinct (default cap 3)" (min 3 expect)
      (Tmat.distinct_blocks tm ~group);
    Alcotest.(check int) "distinct (uncapped)" expect
      (Tmat.distinct_blocks ~cap:max_int tm ~group);
    Alcotest.(check int) "distinct (cap 2)" (min 2 expect)
      (Tmat.distinct_blocks ~cap:2 tm ~group)
  done

(* --- permutations --- *)

let random_perm rng n =
  let p = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Prng.int rng (i + 1) in
    let t = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- t
  done;
  p

let ref_permute arr n perm =
  Array.init (1 lsl n) (fun m ->
      let m' = ref 0 in
      for i = 0 to n - 1 do
        if (m lsr i) land 1 = 1 then m' := !m' lor (1 lsl perm.(i))
      done;
      arr.(!m'))

let test_permutations () =
  let rng = Prng.create 6 in
  for _ = 1 to 100 do
    let n = 1 + Prng.int rng 8 in
    let arr = random_entries rng n in
    let tm = pack n arr in
    let perm = random_perm rng n in
    check_entries "permute" (Tmat.permute tm perm) (ref_permute arr n perm);
    let i = Prng.int rng n and j = Prng.int rng n in
    let swap_perm = Array.init n (fun v -> v) in
    swap_perm.(i) <- j;
    swap_perm.(j) <- i;
    check_entries "swap_vars" (Tmat.swap_vars tm i j)
      (ref_permute arr n swap_perm);
    let k = Prng.int rng n in
    check_entries "negate_var" (Tmat.negate_var tm k)
      (Array.init (1 lsl n) (fun c -> arr.(c lxor (1 lsl k))));
    (* full-care tables must track Tt exactly *)
    let f = Tt.of_fun n (fun _ -> Prng.bool rng) in
    Alcotest.(check bool) "permute = Tt.permute" true
      (Tt.equal (Tt.permute f perm) (Tmat.to_tt (Tmat.permute (Tmat.of_tt f) perm)));
    Alcotest.(check bool) "swap = Tt.swap_vars" true
      (Tt.equal (Tt.swap_vars f i j)
         (Tmat.to_tt (Tmat.swap_vars (Tmat.of_tt f) i j)))
  done

(* --- index-space rewrites --- *)

let ref_insert arr n b =
  Array.init (1 lsl (n + 1)) (fun c ->
      let low = c land ((1 lsl b) - 1) in
      let high = c lsr (b + 1) in
      arr.((high lsl b) lor low))

let ref_reduce arr n b =
  Array.init (1 lsl (n - 1)) (fun c ->
      let low = c land ((1 lsl b) - 1) in
      let bit = (c lsr b) land 1 in
      let high = c lsr (b + 1) in
      arr.((high lsl (b + 2)) lor (bit lsl (b + 1)) lor (bit lsl b) lor low))

let test_insert_reduce () =
  let rng = Prng.create 7 in
  for _ = 1 to 100 do
    let n = 1 + Prng.int rng 7 in
    let arr = random_entries rng n in
    let tm = pack n arr in
    let b = Prng.int rng (n + 1) in
    check_entries "insert_var" (Tmat.insert_var tm b) (ref_insert arr n b);
    if n >= 2 then begin
      let b = Prng.int rng (n - 1) in
      check_entries "reduce_dup" (Tmat.reduce_dup tm b) (ref_reduce arr n b)
    end;
    let q = Prng.int rng 3 in
    check_entries "repeat_low" (Tmat.repeat_low tm q)
      (Array.init (1 lsl (n + q)) (fun c -> arr.(c lsr q)));
    let p = Prng.int rng 3 in
    check_entries "tile_high" (Tmat.tile_high tm p)
      (Array.init (1 lsl (n + p)) (fun c -> arr.(c land ((1 lsl n) - 1))))
  done

let test_rewrites_match_canonical_primitives () =
  (* On logic matrices the packed rewrites must agree with the exported
     general column operations (which the canonical tests in turn check
     against explicit STP products). insert_var b = expand at position
     k - b; reduce_dup b = reduce at position k - 2 - b. *)
  let rng = Prng.create 8 in
  for _ = 1 to 50 do
    let k = 1 + Prng.int rng 5 in
    let row = Array.init (1 lsl k) (fun _ -> Prng.int rng 2) in
    let m =
      Matrix.make 2 (1 lsl k) (fun r c -> if r = 0 then row.(c) else 1 - row.(c))
    in
    let tm = Tmat.of_matrix m in
    let b = Prng.int rng (k + 1) in
    Alcotest.(check bool) "insert = expand_positions" true
      (Matrix.equal
         (Tmat.to_matrix (Tmat.insert_var tm b))
         (Canonical.expand_positions m (k - b) k));
    if k >= 2 then begin
      let b = Prng.int rng (k - 1) in
      Alcotest.(check bool) "reduce = reduce_positions" true
        (Matrix.equal
           (Tmat.to_matrix (Tmat.reduce_dup tm b))
           (Canonical.reduce_positions m (k - 2 - b) k))
    end
  done

(* --- gate composition --- *)

let entry_values = function
  | Tmat.True -> [ 1 ]
  | Tmat.False -> [ 0 ]
  | Tmat.Dontcare -> [ 0; 1 ]

let ref_gate code ea eb =
  let outs =
    List.concat_map
      (fun va ->
        List.map (fun vb -> (code lsr ((2 * va) + vb)) land 1) (entry_values eb))
      (entry_values ea)
  in
  match List.sort_uniq compare outs with
  | [ 0 ] -> Tmat.False
  | [ 1 ] -> Tmat.True
  | _ -> Tmat.Dontcare

let test_apply_gate () =
  let rng = Prng.create 9 in
  for _ = 1 to 60 do
    let n = Prng.int rng 7 in
    let a = random_entries rng n and b = random_entries rng n in
    let ta = pack n a and tb = pack n b in
    for code = 0 to 15 do
      let expect = Array.init (1 lsl n) (fun c -> ref_gate code a.(c) b.(c)) in
      check_entries "apply_gate ternary" (Tmat.apply_gate code ta tb) expect
    done;
    (* fully-determined operands track Tt.apply2 *)
    let fa = Tt.of_fun n (fun _ -> Prng.bool rng)
    and fb = Tt.of_fun n (fun _ -> Prng.bool rng) in
    for code = 0 to 15 do
      Alcotest.(check bool) "apply_gate = Tt.apply2" true
        (Tt.equal (Tt.apply2 code fa fb)
           (Tmat.to_tt (Tmat.apply_gate code (Tmat.of_tt fa) (Tmat.of_tt fb))))
    done
  done

let test_stp_compose () =
  let rng = Prng.create 10 in
  for _ = 1 to 100 do
    let p = Prng.int rng 4 and q = Prng.int rng 4 in
    let a = random_entries rng p and b = random_entries rng q in
    let code = Prng.int rng 16 in
    let composed = Tmat.stp_compose code (pack p a) (pack q b) in
    let expect =
      Array.init (1 lsl (p + q)) (fun c ->
          ref_gate code a.(c lsr q) b.(c land ((1 lsl q) - 1)))
    in
    check_entries "stp_compose" composed expect
  done

(* --- completions --- *)

let test_completions () =
  let rng = Prng.create 11 in
  for _ = 1 to 60 do
    let n = Prng.int rng 4 in
    let arr = random_entries rng n in
    let tm = pack n arr in
    let dontcares = ref [] in
    Array.iteri
      (fun c e -> if e = Tmat.Dontcare then dontcares := c :: !dontcares)
      arr;
    let dontcares = Array.of_list (List.rev !dontcares) in
    let k = Array.length dontcares in
    let expect =
      List.init (1 lsl k) (fun fill ->
          Tt.of_fun n (fun m ->
              match arr.(m) with
              | Tmat.True -> true
              | Tmat.False -> false
              | Tmat.Dontcare ->
                let j = ref 0 in
                Array.iteri (fun i c -> if c = m then j := i) dontcares;
                (fill lsr !j) land 1 = 1))
    in
    let got = List.of_seq (Tmat.completions tm) in
    Alcotest.(check int) "completion count" (1 lsl k) (List.length got);
    List.iter2
      (fun e g ->
        Alcotest.(check bool) "completion order and value" true (Tt.equal e g))
      expect got;
    (* completed fills uniformly *)
    Alcotest.(check bool) "completed false" true
      (Tt.equal (Tmat.completed tm false)
         (Tt.of_fun n (fun m -> arr.(m) = Tmat.True)));
    Alcotest.(check bool) "completed true" true
      (Tt.equal (Tmat.completed tm true)
         (Tt.of_fun n (fun m -> arr.(m) <> Tmat.False)))
  done

(* --- matrix interchange and hashing --- *)

let test_matrix_interchange () =
  let rng = Prng.create 12 in
  for _ = 1 to 50 do
    let k = Prng.int rng 6 in
    let row = Array.init (1 lsl k) (fun _ -> Prng.int rng 2) in
    let m =
      Matrix.make 2 (1 lsl k) (fun r c -> if r = 0 then row.(c) else 1 - row.(c))
    in
    Alcotest.(check bool) "of_matrix/to_matrix" true
      (Matrix.equal m (Tmat.to_matrix (Tmat.of_matrix m)))
  done;
  Alcotest.check_raises "to_matrix rejects dontcare"
    (Invalid_argument "Tmat.to_matrix: table has don't-care entries") (fun () ->
      ignore (Tmat.to_matrix (Tmat.unknown 1)))

let test_hash () =
  let rng = Prng.create 13 in
  for _ = 1 to 100 do
    let n = Prng.int rng 8 in
    let arr = random_entries rng n in
    let a = pack n arr and b = pack n (Array.copy arr) in
    Alcotest.(check bool) "equal -> hash64 equal" true
      (Tmat.hash64 a = Tmat.hash64 b);
    Alcotest.(check bool) "hash non-negative" true (Tmat.hash a >= 0);
    (* a deterministic perturbation must change this hash *)
    let c = Prng.int rng (1 lsl n) in
    let flipped =
      Tmat.set a c
        (match Tmat.get a c with
         | Tmat.True -> Tmat.False
         | _ -> Tmat.True)
    in
    Alcotest.(check bool) "perturbation changes hash" true
      (Tmat.hash64 flipped <> Tmat.hash64 a)
  done

let () =
  Alcotest.run "tmat"
    [ ( "construction",
        [ Alcotest.test_case "of_fun/get/set" `Quick test_roundtrip;
          Alcotest.test_case "of_tt_with_care" `Quick test_of_tt_with_care;
          Alcotest.test_case "matrix interchange" `Quick test_matrix_interchange
        ] );
      ( "lattice",
        [ Alcotest.test_case "compatible/refines/meet" `Quick test_lattice;
          Alcotest.test_case "completions" `Quick test_completions;
          Alcotest.test_case "hash" `Quick test_hash ] );
      ( "blocks",
        [ Alcotest.test_case "cofactor/quarter" `Quick test_cofactor_quarter;
          Alcotest.test_case "distinct_blocks" `Quick test_distinct_blocks ] );
      ( "rewrites",
        [ Alcotest.test_case "permutations" `Quick test_permutations;
          Alcotest.test_case "insert/reduce/repeat/tile" `Quick
            test_insert_reduce;
          Alcotest.test_case "match canonical primitives" `Quick
            test_rewrites_match_canonical_primitives ] );
      ( "gates",
        [ Alcotest.test_case "apply_gate" `Quick test_apply_gate;
          Alcotest.test_case "stp_compose" `Quick test_stp_compose ] ) ]
