(* Tests for the STP matrix algebra, structural matrices, canonical forms
   and the canonical-form AllSAT solver — the paper's Section II. *)

module M = Stp_matrix.Matrix
module S = Stp_matrix.Structural
module Expr = Stp_matrix.Expr
module Canonical = Stp_matrix.Canonical
module Stp_sat = Stp_matrix.Stp_sat
module Tt = Stp_tt.Tt
module Prng = Stp_util.Prng

let meq = Alcotest.testable M.pp M.equal

let test_identity_mul () =
  let a = M.of_rows [ [ 1; 2 ]; [ 3; 4 ] ] in
  Alcotest.check meq "I*a" a (M.mul (M.identity 2) a);
  Alcotest.check meq "a*I" a (M.mul a (M.identity 2))

let test_kron_dims () =
  let a = M.of_rows [ [ 1; 2 ]; [ 3; 4 ] ] in
  let b = M.of_rows [ [ 0; 1; 2 ] ] in
  let k = M.kron a b in
  Alcotest.(check int) "rows" 2 (M.rows k);
  Alcotest.(check int) "cols" 6 (M.cols k);
  (* (A ⊗ B)(i,j) = A(i/p, j/q) B(i mod p, j mod q) *)
  Alcotest.(check int) "entry" (2 * 2) (M.get k 0 5)

let test_kron_mixed_product () =
  (* (A ⊗ B)(C ⊗ D) = AC ⊗ BD for compatible dims *)
  let rng = Prng.create 17 in
  let rand r c = M.make r c (fun _ _ -> Prng.int rng 3) in
  let a = rand 2 2 and b = rand 2 3 and c = rand 2 2 and d = rand 3 2 in
  Alcotest.check meq "mixed product" (M.kron (M.mul a c) (M.mul b d))
    (M.mul (M.kron a b) (M.kron c d))

let test_stp_equals_mul_when_compatible () =
  let rng = Prng.create 23 in
  let rand r c = M.make r c (fun _ _ -> Prng.int rng 3) in
  let a = rand 2 4 and b = rand 4 3 in
  Alcotest.check meq "stp = mul" (M.mul a b) (M.stp a b)

let test_stp_dimensions () =
  (* X: 2x4, Y: 2x2 -> t = lcm(4,2) = 4: result 2x... (X ⊗ I1)(Y ⊗ I2):
     2x4 * 4x4 = 2x4 *)
  let x = M.make 2 4 (fun i j -> i + j) in
  let y = M.make 2 2 (fun i j -> i * j) in
  let r = M.stp x y in
  Alcotest.(check int) "rows" 2 (M.rows r);
  Alcotest.(check int) "cols" 4 (M.cols r)

let test_stp_associative () =
  let rng = Prng.create 29 in
  let rand r c = M.make r c (fun _ _ -> Prng.int rng 2) in
  (* dimensions chosen among powers of two so association varies t *)
  let a = rand 2 4 and b = rand 2 2 and c = rand 4 1 in
  Alcotest.check meq "assoc" (M.stp (M.stp a b) c) (M.stp a (M.stp b c))

let test_swap_matrix_property () =
  (* W_[m,n] (x ⊗ y) = y ⊗ x *)
  let x = M.of_rows [ [ 1 ]; [ 2 ]; [ 3 ] ] in
  let y = M.of_rows [ [ 4 ]; [ 5 ] ] in
  let w = M.swap_matrix 3 2 in
  Alcotest.check meq "swap" (M.kron y x) (M.mul w (M.kron x y))

let test_property1 () =
  (* Z_c ⋉ X = (I_t ⊗ X) ⋉ Z_c for a column vector Z_c of height t *)
  let rng = Prng.create 31 in
  let x = M.make 2 2 (fun _ _ -> Prng.int rng 3) in
  let z = M.of_rows [ [ 1 ]; [ 0 ] ] in
  Alcotest.check meq "property 1" (M.stp z x)
    (M.stp (M.kron (M.identity 2) x) z)

let test_structural_matrices () =
  (* Example 2 of the paper: M_d M_n = M_i *)
  Alcotest.check meq "Md Mn = Mi" S.m_implies (M.stp S.m_or S.m_not);
  (* NOT is an involution *)
  Alcotest.check meq "Mn Mn = I" (M.identity 2) (M.mul S.m_not S.m_not)

let test_bool_vectors () =
  Alcotest.(check bool) "true" true (S.to_bool S.vtrue);
  Alcotest.(check bool) "false" false (S.to_bool S.vfalse);
  (* evaluating AND on vectors *)
  List.iter
    (fun (a, b) ->
      let r = S.apply2 S.m_and (S.of_bool a) (S.of_bool b) in
      Alcotest.(check bool) "and eval" (a && b) (S.to_bool r))
    [ (true, true); (true, false); (false, true); (false, false) ]

let test_power_reduce () =
  (* x ⋉ x = M_r ⋉ x for both Boolean vectors (equation 3) *)
  List.iter
    (fun v ->
      Alcotest.check meq "power reduce" (M.stp v v) (M.stp S.power_reduce v))
    [ S.vtrue; S.vfalse ]

let test_swap22 () =
  (* x ⋉ y = M_w ⋉ y ⋉ x (equation 4) *)
  List.iter
    (fun (x, y) ->
      Alcotest.check meq "swap22" (M.stp x y) (M.stp (M.stp S.swap22 y) x))
    [ (S.vtrue, S.vfalse); (S.vfalse, S.vtrue); (S.vtrue, S.vtrue) ]

let test_gate_code_roundtrip () =
  for code = 0 to 15 do
    Alcotest.(check int) "roundtrip" code
      (S.to_gate_code (S.of_gate_code code))
  done

let test_gate_code_semantics () =
  (* evaluating the structural matrix equals the code's truth table *)
  for code = 0 to 15 do
    let m = S.of_gate_code code in
    for a = 0 to 1 do
      for b = 0 to 1 do
        let r = S.apply2 m (S.of_bool (a = 1)) (S.of_bool (b = 1)) in
        let expected = (code lsr ((2 * a) + b)) land 1 = 1 in
        Alcotest.(check bool) "gate eval" expected (S.to_bool r)
      done
    done
  done

let test_liar_puzzle () =
  (* Example 4 of the paper, including the exact canonical matrix. *)
  let phi =
    let open Expr in
    let a = var 0 and b = var 1 and c = var 2 in
    ((a <=> not_ b) && (b <=> not_ c)) && (c <=> (not_ a && not_ b))
  in
  let m = Canonical.of_expr ~n:3 phi in
  let expected =
    M.of_rows [ [ 0; 0; 0; 0; 0; 1; 0; 0 ]; [ 1; 1; 1; 1; 1; 0; 1; 1 ] ]
  in
  Alcotest.check meq "canonical matrix of Example 4" expected m;
  match Stp_sat.all_solutions m with
  | [ s ] ->
    Alcotest.(check (list bool)) "only b honest" [ false; true; false ]
      (Array.to_list s)
  | _ -> Alcotest.fail "expected exactly one solution"

let random_expr rng n =
  let rec go depth =
    if depth = 0 || Prng.int rng 4 = 0 then Expr.Var (Prng.int rng n)
    else
      match Prng.int rng 8 with
      | 0 -> Expr.Not (go (depth - 1))
      | 1 -> Expr.And (go (depth - 1), go (depth - 1))
      | 2 -> Expr.Or (go (depth - 1), go (depth - 1))
      | 3 -> Expr.Xor (go (depth - 1), go (depth - 1))
      | 4 -> Expr.Implies (go (depth - 1), go (depth - 1))
      | 5 -> Expr.Equiv (go (depth - 1), go (depth - 1))
      | 6 -> Expr.Nand (go (depth - 1), go (depth - 1))
      | _ -> Expr.Nor (go (depth - 1), go (depth - 1))
  in
  go 3

let test_canonical_vs_tabulation () =
  let rng = Prng.create 37 in
  for _ = 1 to 60 do
    let n = 1 + Prng.int rng 4 in
    let e = random_expr rng n in
    let m = Canonical.of_expr ~n e in
    let tt = Expr.to_tt ~n e in
    Alcotest.(check bool) "canonical = tabulated" true
      (Tt.equal (Canonical.to_tt m) tt);
    Alcotest.(check bool) "of_tt agrees" true (M.equal (Canonical.of_tt tt) m);
    Alcotest.(check bool) "logic matrix" true (M.is_logic_matrix m)
  done

let test_rewriting_primitives () =
  (* the column-level primitives equal the general STP products *)
  let rng = Prng.create 41 in
  for _ = 1 to 20 do
    let k = 2 + Prng.int rng 3 in
    let m =
      M.make 2 (1 lsl k) (fun i j ->
          ignore j;
          if (i + Prng.int rng 2) mod 2 = 0 then 1 else 0)
    in
    let j = Prng.int rng (k - 1) in
    let right kernel pos =
      let before = M.identity (1 lsl pos) in
      let after = M.identity (1 lsl (k - pos - 2)) in
      M.kron (M.kron before kernel) after
    in
    Alcotest.check meq "swap = x (I ⊗ W ⊗ I)"
      (M.mul m (right S.swap22 j))
      (Canonical.swap_positions m j k);
    Alcotest.check meq "reduce = x (I ⊗ Mr ⊗ I)"
      (M.mul m (right S.power_reduce j))
      (Canonical.reduce_positions m j k)
  done

let test_column_minterm_bijection () =
  for n = 1 to 6 do
    for m = 0 to (1 lsl n) - 1 do
      let c = Canonical.column_of_minterm ~n m in
      Alcotest.(check int) "bijection" m (Canonical.minterm_of_column ~n c)
    done
  done

let test_allsat_counts () =
  let rng = Prng.create 43 in
  for _ = 1 to 30 do
    let n = 1 + Prng.int rng 4 in
    let tt = Tt.of_fun n (fun _ -> Prng.bool rng) in
    let m = Canonical.of_tt tt in
    Alcotest.(check int) "count = ones" (Tt.count_ones tt) (Stp_sat.count m);
    Alcotest.(check bool) "is_sat" (Tt.count_ones tt > 0) (Stp_sat.is_sat m);
    let minterms = Stp_sat.solutions_as_minterms m in
    Alcotest.(check int) "all enumerated" (Tt.count_ones tt)
      (List.length minterms);
    List.iter
      (fun mt -> Alcotest.(check bool) "real solution" true (Tt.get tt mt))
      minterms
  done

let test_trace_structure () =
  let m = Canonical.of_tt (Tt.of_hex ~n:2 "8") in
  match Stp_sat.trace m with
  | Stp_sat.Branch { var = 0; _ } -> ()
  | _ -> Alcotest.fail "expected branch on x1"

let test_expr_helpers () =
  let e = Expr.(var 0 && (var 1 || not_ (var 2))) in
  Alcotest.(check (list int)) "vars" [ 0; 1; 2 ] (Expr.vars e);
  Alcotest.(check int) "max var" 2 (Expr.max_var e);
  Alcotest.(check bool) "size" true (Expr.size e > 3);
  Alcotest.(check bool) "eval" true
    (Expr.eval e (fun i -> i = 0 || i = 1))

let test_parse_roundtrip () =
  let cases =
    [ ("a & b", "8");
      ("a | b", "e");
      ("a ^ b", "6");
      ("!(a & b)", "7");
      ("a -> b", "d");
      ("a <-> b", "9") ]
  in
  List.iter
    (fun (text, hex) ->
      let e = Stp_matrix.Parse.formula text in
      Alcotest.(check string) text hex (Tt.to_hex (Expr.to_tt ~n:2 e)))
    cases

let test_parse_precedence () =
  (* & binds tighter than ^ binds tighter than | *)
  let e = Stp_matrix.Parse.formula "a | b & c" in
  let expected = Expr.Or (Expr.Var 0, Expr.And (Expr.Var 1, Expr.Var 2)) in
  Alcotest.(check bool) "or/and" true
    (Tt.equal (Expr.to_tt ~n:3 e) (Expr.to_tt ~n:3 expected));
  let e2 = Stp_matrix.Parse.formula "a ^ b | c" in
  let expected2 = Expr.Or (Expr.Xor (Expr.Var 0, Expr.Var 1), Expr.Var 2) in
  Alcotest.(check bool) "xor/or" true
    (Tt.equal (Expr.to_tt ~n:3 e2) (Expr.to_tt ~n:3 expected2))

let test_parse_variables () =
  let e = Stp_matrix.Parse.formula "x3 & x12" in
  Alcotest.(check (list int)) "indices" [ 2; 11 ] (Expr.vars e);
  let e2 = Stp_matrix.Parse.formula "d" in
  Alcotest.(check (list int)) "letter" [ 3 ] (Expr.vars e2)

let test_parse_constants_parens () =
  let e = Stp_matrix.Parse.formula "!(1 ^ (a & 0))" in
  Alcotest.(check bool) "evaluates" false (Expr.eval e (fun _ -> true))

let test_parse_errors () =
  List.iter
    (fun bad ->
      match Stp_matrix.Parse.formula bad with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "expected parse error for %S" bad)
    [ ""; "a &"; "(a"; "a b"; "x"; "x0"; "& a"; "a <- b" ]

let test_parse_liar_puzzle () =
  let e = Stp_matrix.Parse.formula "(a <-> !b) & (b <-> !c) & (c <-> (!a & !b))" in
  let m = Canonical.of_expr ~n:3 e in
  Alcotest.(check int) "one solution" 1 (Stp_sat.count m)

let () =
  Alcotest.run "stp_matrix"
    [ ( "matrix",
        [ Alcotest.test_case "identity" `Quick test_identity_mul;
          Alcotest.test_case "kron dims" `Quick test_kron_dims;
          Alcotest.test_case "kron mixed product" `Quick test_kron_mixed_product;
          Alcotest.test_case "stp = mul when compatible" `Quick
            test_stp_equals_mul_when_compatible;
          Alcotest.test_case "stp dims" `Quick test_stp_dimensions;
          Alcotest.test_case "stp associative" `Quick test_stp_associative;
          Alcotest.test_case "swap matrix" `Quick test_swap_matrix_property;
          Alcotest.test_case "property 1" `Quick test_property1 ] );
      ( "structural",
        [ Alcotest.test_case "example 2" `Quick test_structural_matrices;
          Alcotest.test_case "bool vectors" `Quick test_bool_vectors;
          Alcotest.test_case "power reduce" `Quick test_power_reduce;
          Alcotest.test_case "swap22" `Quick test_swap22;
          Alcotest.test_case "gate code roundtrip" `Quick
            test_gate_code_roundtrip;
          Alcotest.test_case "gate code semantics" `Quick
            test_gate_code_semantics ] );
      ( "canonical",
        [ Alcotest.test_case "liar puzzle (Example 4)" `Quick test_liar_puzzle;
          Alcotest.test_case "canonical vs tabulation" `Quick
            test_canonical_vs_tabulation;
          Alcotest.test_case "rewriting primitives" `Quick
            test_rewriting_primitives;
          Alcotest.test_case "column bijection" `Quick
            test_column_minterm_bijection;
          Alcotest.test_case "expr helpers" `Quick test_expr_helpers ] );
      ( "allsat",
        [ Alcotest.test_case "counts" `Quick test_allsat_counts;
          Alcotest.test_case "trace" `Quick test_trace_structure ] );
      ( "parse",
        [ Alcotest.test_case "gate roundtrips" `Quick test_parse_roundtrip;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "variables" `Quick test_parse_variables;
          Alcotest.test_case "constants/parens" `Quick
            test_parse_constants_parens;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "liar puzzle" `Quick test_parse_liar_puzzle ] ) ]
