(* Tests for the persistent NPN cache store and the batch synthesis
   daemon: save/load round-trips, corrupt-record rejection, concurrent
   flushes under the domain pool, and the daemon's request protocol
   including SIGTERM survival with a reloadable store. *)

module Tt = Stp_tt.Tt
module Chain = Stp_chain.Chain
module Spec = Stp_synth.Spec
module Engine = Stp_synth.Engine
module Npn_cache = Stp_synth.Npn_cache
module Report = Stp_harness.Report
module Store = Stp_store.Store
module Daemon = Stp_store.Daemon

let options = Spec.with_timeout 60.0

let solve_into cache f =
  let (module E : Engine.S) = Npn_cache.wrap cache Engine.stp in
  match
    E.synthesize (Engine.spec ~options f) ~deadline:(Spec.deadline_of options)
  with
  | Engine.Solved _ -> ()
  | Engine.Timeout | Engine.Infeasible -> Alcotest.fail "expected Solved"

let temp_path () =
  let path = Filename.temp_file "stp_store_test" ".npn" in
  Sys.remove path;
  path

(* Four functions from four distinct NPN classes. *)
let targets =
  [ Tt.of_hex ~n:3 "e8";
    Tt.of_hex ~n:3 "96";
    Tt.of_hex ~n:4 "8ff8";
    Tt.of_hex ~n:4 "6996" ]

let populated_store path =
  let cache = Npn_cache.create () in
  List.iter (solve_into cache) targets;
  Alcotest.(check int) "four classes solved" 4 (Npn_cache.classes cache);
  let store = Store.create ~path in
  let ab = Store.absorb store ~section:"STP" cache in
  Alcotest.(check int) "all classes absorbed" 4 ab.Store.absorbed;
  Alcotest.(check int) "nothing already present" 0 ab.Store.duplicates;
  let again = Store.absorb store ~section:"STP" cache in
  Alcotest.(check int) "re-absorb is a no-op" 0 again.Store.absorbed;
  Alcotest.(check int) "re-absorb counts duplicates" 4 again.Store.duplicates;
  Store.flush store;
  store

let test_round_trip () =
  let path = temp_path () in
  ignore (populated_store path);
  let store = Store.load ~path in
  let st = Store.stats store in
  Alcotest.(check int) "classes survive the round trip" 4 st.Store.classes;
  Alcotest.(check int) "one section" 1 st.Store.sections;
  Alcotest.(check int) "nothing skipped" 0 st.Store.skipped;
  (* A cache seeded from the store must answer every target by replay. *)
  let cache = Npn_cache.create () in
  let sd = Store.seed store ~section:"STP" cache in
  Alcotest.(check int) "all classes seeded" 4 sd.Store.seeded;
  Alcotest.(check int) "none rejected" 0 sd.Store.seed_rejected;
  List.iter
    (fun f -> Alcotest.(check bool) "target is cached" true (Npn_cache.cached cache f))
    targets;
  List.iter (solve_into cache) targets;
  let s = Npn_cache.stats cache in
  Alcotest.(check int) "warm run: zero solver calls" 0 s.Npn_cache.misses;
  Alcotest.(check int) "warm run: all hits" 4 s.Npn_cache.hits;
  Alcotest.(check int) "no replay failures" 0 s.Npn_cache.failures;
  Sys.remove path

let test_missing_file_is_empty () =
  let store = Store.load ~path:"/nonexistent/dir/stp.npn" in
  Alcotest.(check int) "no classes" 0 (Store.stats store).Store.classes

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_truncated_file () =
  let path = temp_path () in
  ignore (populated_store path);
  let bytes = read_file path in
  write_file path (String.sub bytes 0 (String.length bytes - 3));
  let store = Store.load ~path in
  let st = Store.stats store in
  Alcotest.(check int) "only the cut record is lost" 3 st.Store.classes;
  Alcotest.(check int) "truncation counted" 1 st.Store.skipped;
  Sys.remove path

let test_bad_checksum () =
  let path = temp_path () in
  ignore (populated_store path);
  let bytes = Bytes.of_string (read_file path) in
  (* Offset 16 is the first payload byte of the first record (after the
     8-byte magic and the record's length + checksum words). *)
  Bytes.set bytes 16 (Char.chr (Char.code (Bytes.get bytes 16) lxor 0xff));
  write_file path (Bytes.to_string bytes);
  let store = Store.load ~path in
  let st = Store.stats store in
  Alcotest.(check int) "corrupt record skipped, rest kept" 3 st.Store.classes;
  Alcotest.(check int) "skip counted" 1 st.Store.skipped;
  Sys.remove path

let test_bad_magic () =
  let path = temp_path () in
  ignore (populated_store path);
  let bytes = Bytes.of_string (read_file path) in
  Bytes.set bytes 0 'X';
  write_file path (Bytes.to_string bytes);
  let store = Store.load ~path in
  Alcotest.(check int) "wrong magic loads nothing" 0
    (Store.stats store).Store.classes;
  Sys.remove path

let test_sanitised_seed_rejects_corruption () =
  (* Even a record that passes its checksum is re-validated at seed
     time: a wrong gate count or non-simulating chain must not poison
     the cache. *)
  let cache = Npn_cache.create () in
  List.iter (solve_into cache) targets;
  let entries = Npn_cache.entries cache in
  let corrupt = Npn_cache.create () in
  List.iter
    (fun (canon, (entry : Npn_cache.entry)) ->
      Alcotest.(check bool) "wrong gate count rejected" false
        (Npn_cache.add_entry corrupt canon
           { entry with Npn_cache.gates = entry.Npn_cache.gates + 1 }))
    entries;
  Alcotest.(check int) "nothing seeded" 0 (Npn_cache.classes corrupt)

let test_concurrent_flush_under_pool () =
  let path = temp_path () in
  let store = Store.create ~path in
  (* Eight domains race absorb+flush on one store; every intermediate
     file must stay a valid store and the final flush must hold every
     class. *)
  let sections = List.init 8 (fun i -> Printf.sprintf "S%d" i) in
  let results =
    Stp_parallel.Pool.map ~domains:4
      (fun section ->
        let cache = Npn_cache.create () in
        List.iter (solve_into cache) targets;
        let fresh = Store.absorb store ~section cache in
        Store.flush store;
        fresh.Store.absorbed)
      sections
  in
  List.iter (Alcotest.(check int) "each section absorbed its classes" 4) results;
  (* The on-disk file is some complete flush: valid, never torn. *)
  let mid = Store.load ~path in
  Alcotest.(check int) "no corrupt records after racing flushes" 0
    (Store.stats mid).Store.skipped;
  Store.flush store;
  let final = Store.load ~path in
  let st = Store.stats final in
  Alcotest.(check int) "final flush holds every class" 32 st.Store.classes;
  Alcotest.(check int) "all sections present" 8 st.Store.sections;
  Sys.remove path

(* {2 Append-mode persistence, compaction, merge} *)

let solve_cache fs =
  let cache = Npn_cache.create () in
  List.iter (solve_into cache) fs;
  cache

let seeded_classes store =
  let cache = Npn_cache.create () in
  ignore (Store.seed store ~section:"STP" cache);
  Npn_cache.classes cache

let test_append_round_trip () =
  let path = temp_path () in
  let store = Store.create ~path in
  (* Two batches. The first persist of a fresh store must write the
     header, so it is a rewrite; the second must append after the
     first extent without rewriting a byte of it. *)
  ignore
    (Store.absorb store ~section:"STP"
       (solve_cache [ List.nth targets 0; List.nth targets 1 ]));
  Store.append store;
  let first_size = (Store.stats store).Store.disk_bytes in
  let first_extent = read_file path in
  Alcotest.(check int) "fresh store persists via one header rewrite" 1
    (Store.stats store).Store.flushes;
  ignore
    (Store.absorb store ~section:"STP"
       (solve_cache [ List.nth targets 2; List.nth targets 3 ]));
  Store.append store;
  let st = Store.stats store in
  Alcotest.(check int) "second persist appended" 1 st.Store.appends;
  Alcotest.(check int) "second persist did not rewrite" 1 st.Store.flushes;
  Alcotest.(check bool) "second append grew the file" true
    (st.Store.disk_bytes > first_size);
  Alcotest.(check string) "first extent untouched by the append"
    first_extent
    (String.sub (read_file path) 0 first_size);
  (* Round-trip equivalence with a full rewrite of the same content. *)
  let reloaded = Store.load ~path in
  Alcotest.(check int) "appended store reloads all classes" 4
    (Store.stats reloaded).Store.classes;
  Alcotest.(check int) "no corrupt records" 0 (Store.stats reloaded).Store.skipped;
  let flushed_path = temp_path () in
  let flushed = populated_store flushed_path in
  Alcotest.(check int) "appended store seeds like a flushed one"
    (seeded_classes flushed) (seeded_classes reloaded);
  Sys.remove path;
  Sys.remove flushed_path

let test_append_truncates_torn_tail () =
  let path = temp_path () in
  let store = Store.create ~path in
  ignore
    (Store.absorb store ~section:"STP"
       (solve_cache [ List.nth targets 0; List.nth targets 1 ]));
  Store.append store;
  (* Tear the file mid-frame, as a crash during an append would. *)
  let bytes = read_file path in
  write_file path (String.sub bytes 0 (String.length bytes - 7));
  let store = Store.load ~path in
  Alcotest.(check int) "one record survives the torn tail" 1
    (Store.stats store).Store.classes;
  (* The next append must truncate the torn frame before writing, so
     the new frame never lands mid-garbage. *)
  ignore
    (Store.absorb store ~section:"STP" (solve_cache [ List.nth targets 2 ]));
  Store.append store;
  let reloaded = Store.load ~path in
  let st = Store.stats reloaded in
  Alcotest.(check int) "torn tail replaced by clean frames" 2 st.Store.classes;
  Alcotest.(check int) "no corrupt frame left behind" 0 st.Store.skipped;
  Sys.remove path

let test_compaction_equivalence () =
  let path = temp_path () in
  let store = populated_store path in
  let before = seeded_classes store in
  (* Corrupt one frame on disk: the reload skips it and accounts the
     frame as dead bytes. *)
  let bytes = Bytes.of_string (read_file path) in
  Bytes.set bytes 16 (Char.chr (Char.code (Bytes.get bytes 16) lxor 0xff));
  write_file path (Bytes.to_string bytes);
  let corrupted = Store.load ~path in
  let st = Store.stats corrupted in
  Alcotest.(check int) "corrupt record skipped" 1 st.Store.skipped;
  Alcotest.(check int) "skip survives as live classes" (before - 1)
    st.Store.classes;
  Alcotest.(check bool) "corrupt frame counts as dead bytes" true
    (st.Store.dead_bytes > 0);
  (* Compaction drops the dead frame and keeps every live record. *)
  let c = Store.compact corrupted in
  Alcotest.(check bool) "compaction reclaimed the dead frame" true
    (c.Store.reclaimed > 0);
  let reloaded = Store.load ~path in
  let st = Store.stats reloaded in
  Alcotest.(check int) "compacted store is fully clean" 0 st.Store.skipped;
  Alcotest.(check int) "live classes preserved" (before - 1) st.Store.classes;
  Alcotest.(check int) "no dead bytes after compaction" 0 st.Store.dead_bytes;
  Alcotest.(check int) "seeds the same live classes" (before - 1)
    (seeded_classes reloaded);
  Sys.remove path

let test_merge_stores () =
  let path_a = temp_path () and path_b = temp_path () in
  let a = Store.create ~path:path_a in
  ignore
    (Store.absorb a ~section:"STP"
       (solve_cache [ List.nth targets 0; List.nth targets 1; List.nth targets 2 ]));
  Store.flush a;
  let b = Store.create ~path:path_b in
  ignore
    (Store.absorb b ~section:"STP"
       (solve_cache [ List.nth targets 1; List.nth targets 2; List.nth targets 3 ]));
  Store.flush b;
  let m = Store.merge_from a b in
  Alcotest.(check int) "one class is new" 1 m.Store.merged;
  Alcotest.(check int) "two already present" 2 m.Store.merge_duplicates;
  Alcotest.(check int) "equal-gate records never supersede" 0 m.Store.superseded;
  Store.flush a;
  let reloaded = Store.load ~path:path_a in
  Alcotest.(check int) "merged store holds the union" 4
    (Store.stats reloaded).Store.classes;
  Alcotest.(check int) "merge is idempotent" 0
    (Store.merge_from a b).Store.merged;
  Sys.remove path_a;
  Sys.remove path_b

let test_concurrent_absorb_while_compacting () =
  let path = temp_path () in
  let store = Store.create ~path in
  (* Half the domains absorb fresh sections and append; the other half
     compact concurrently. Every interleaving must leave a valid file
     holding every absorbed class. *)
  let jobs = List.init 8 (fun i -> i) in
  let results =
    Stp_parallel.Pool.map ~domains:4
      (fun i ->
        if i mod 2 = 0 then begin
          let cache = Npn_cache.create () in
          List.iter (solve_into cache) targets;
          let fresh =
            Store.absorb store ~section:(Printf.sprintf "S%d" i) cache
          in
          Store.append store;
          fresh.Store.absorbed
        end
        else begin
          ignore (Store.compact store);
          0
        end)
      jobs
  in
  Alcotest.(check int) "every absorb admitted its classes" 16
    (List.fold_left ( + ) 0 results);
  let mid = Store.load ~path in
  Alcotest.(check int) "no corrupt records mid-race" 0
    (Store.stats mid).Store.skipped;
  ignore (Store.compact store);
  let final = Store.load ~path in
  let st = Store.stats final in
  Alcotest.(check int) "final file holds every class" 16 st.Store.classes;
  Alcotest.(check int) "four sections present" 4 st.Store.sections;
  Alcotest.(check int) "clean after final compaction" 0 st.Store.skipped;
  Sys.remove path

(* {2 The daemon's request protocol (in-process)} *)

let get_string key json =
  match Report.member key json with
  | Some (Report.String s) -> Some s
  | _ -> None

let parse_response line =
  match Report.of_string line with
  | Ok json -> json
  | Error msg -> Alcotest.failf "unparseable response %S: %s" line msg

let test_handle_solves () =
  let resp =
    parse_response
      (Daemon.handle Daemon.default_config [] (Daemon.request ~id:7 ~n:4 "8ff8"))
  in
  Alcotest.(check (option string)) "status" (Some "solved")
    (get_string "status" resp);
  Alcotest.(check (option string)) "source" (Some "solver")
    (get_string "source" resp);
  Alcotest.(check bool) "id echoed" true
    (Report.member "id" resp = Some (Report.Int 7));
  (match Report.member "gates" resp with
   | Some (Report.Int 3) -> ()
   | _ -> Alcotest.fail "8ff8 needs 3 gates");
  match Report.member "chains" resp with
  | Some (Report.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "chains missing"

let test_handle_cache_attribution () =
  let cache = Npn_cache.create () in
  solve_into cache (Tt.of_hex ~n:4 "8ff8");
  let resp =
    parse_response
      (Daemon.handle Daemon.default_config
         [ ("STP", cache) ]
         (Daemon.request ~n:4 "8ff8"))
  in
  Alcotest.(check (option string)) "cache-answered" (Some "cache")
    (get_string "source" resp)

let test_handle_degrades_on_timeout () =
  (* A dense 6-variable function under a microscopic deadline: the exact
     engine cannot finish, so the daemon must return the Shannon upper
     bound instead of an empty timeout. *)
  let resp =
    parse_response
      (Daemon.handle Daemon.default_config []
         (Daemon.request ~timeout:1e-6 ~n:6 "b4d2693996c85a17"))
  in
  Alcotest.(check (option string)) "degraded status" (Some "upper_bound")
    (get_string "status" resp);
  Alcotest.(check (option string)) "degraded source" (Some "upper_bound")
    (get_string "source" resp);
  match Report.member "gates" resp with
  | Some (Report.Int g) -> Alcotest.(check bool) "has gates" true (g > 0)
  | _ -> Alcotest.fail "upper bound carries a gate count"

let test_handle_rejects_malformed () =
  let status line = get_string "status" (parse_response (Daemon.handle Daemon.default_config [] line)) in
  Alcotest.(check (option string)) "bad JSON" (Some "error") (status "{nope");
  Alcotest.(check (option string)) "missing tt" (Some "error")
    (status {|{"n": 4}|});
  Alcotest.(check (option string)) "bad hex" (Some "error")
    (status {|{"n": 4, "tt": "xyzw"}|});
  Alcotest.(check (option string)) "bad unicode escape" (Some "error")
    (status {|{"tt":"\uZZZZ"}|});
  Alcotest.(check (option string)) "unknown engine" (Some "error")
    (status {|{"n": 4, "tt": "8ff8", "engine": "zchaff"}|})

let test_handle_infeasible_constant () =
  let resp =
    parse_response
      (Daemon.handle Daemon.default_config [] (Daemon.request ~n:3 "00"))
  in
  Alcotest.(check (option string)) "constant is infeasible" (Some "infeasible")
    (get_string "status" resp)

let () =
  Alcotest.run "store"
    [ ( "store",
        [ Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "missing file is empty" `Quick
            test_missing_file_is_empty;
          Alcotest.test_case "truncated file" `Quick test_truncated_file;
          Alcotest.test_case "bad checksum" `Quick test_bad_checksum;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "seed sanitises entries" `Quick
            test_sanitised_seed_rejects_corruption;
          Alcotest.test_case "concurrent flush under pool" `Slow
            test_concurrent_flush_under_pool ] );
      ( "append",
        [ Alcotest.test_case "append round trip" `Quick test_append_round_trip;
          Alcotest.test_case "append truncates a torn tail" `Quick
            test_append_truncates_torn_tail;
          Alcotest.test_case "compaction preserves live records" `Quick
            test_compaction_equivalence;
          Alcotest.test_case "merge folds stores" `Quick test_merge_stores;
          Alcotest.test_case "concurrent absorb while compacting" `Slow
            test_concurrent_absorb_while_compacting ] );
      ( "protocol",
        [ Alcotest.test_case "solves a request" `Quick test_handle_solves;
          Alcotest.test_case "attributes cache answers" `Quick
            test_handle_cache_attribution;
          Alcotest.test_case "degrades to an upper bound" `Quick
            test_handle_degrades_on_timeout;
          Alcotest.test_case "rejects malformed requests" `Quick
            test_handle_rejects_malformed;
          Alcotest.test_case "constants are infeasible" `Quick
            test_handle_infeasible_constant ] ) ]
