(* Tests for truth tables, NPN classification and DSD analysis. *)

module Tt = Stp_tt.Tt
module Npn = Stp_tt.Npn
module Dsd = Stp_tt.Dsd
module Prng = Stp_util.Prng

let tt_testable n =
  Alcotest.testable (fun fmt t -> Tt.pp fmt t) Tt.equal
  |> fun t -> ignore n; t

(* A deterministic random table. *)
let random_tt rng n = Tt.of_fun n (fun _ -> Prng.bool rng)

let test_const_var () =
  Alcotest.(check int) "zero count" 0 (Tt.count_ones (Tt.zero 4));
  Alcotest.(check int) "one count" 16 (Tt.count_ones (Tt.one 4));
  for i = 0 to 3 do
    Alcotest.(check int) "var balanced" 8 (Tt.count_ones (Tt.var 4 i))
  done;
  (* var i is true exactly when bit i of the minterm is set *)
  let v2 = Tt.var 4 2 in
  for m = 0 to 15 do
    Alcotest.(check bool) "var bit" ((m lsr 2) land 1 = 1) (Tt.get v2 m)
  done

let test_var_wide () =
  (* variables above index 6 span whole words *)
  let v7 = Tt.var 8 7 in
  Alcotest.(check int) "wide var balanced" 128 (Tt.count_ones v7);
  Alcotest.(check bool) "m=128" true (Tt.get v7 128);
  Alcotest.(check bool) "m=127" false (Tt.get v7 127)

let test_hex_roundtrip () =
  let cases = [ (4, "8ff8"); (4, "0000"); (4, "ffff"); (3, "e8"); (2, "6") ] in
  List.iter
    (fun (n, h) ->
      Alcotest.(check string) ("roundtrip " ^ h) h (Tt.to_hex (Tt.of_hex ~n h)))
    cases;
  Alcotest.(check string) "0x prefix accepted" "8ff8"
    (Tt.to_hex (Tt.of_hex ~n:4 "0x8ff8"))

let test_hex_invalid () =
  Alcotest.check_raises "too short"
    (Invalid_argument "Tt.of_hex: 4 variables take 4 hex digits, got 3")
    (fun () -> ignore (Tt.of_hex ~n:4 "8ff"));
  Alcotest.check_raises "too long"
    (Invalid_argument "Tt.of_hex: 3 variables take 2 hex digits, got 4")
    (fun () -> ignore (Tt.of_hex ~n:3 "8ff8"));
  Alcotest.check_raises "singular"
    (Invalid_argument "Tt.of_hex: 1 variable takes 1 hex digit, got 2")
    (fun () -> ignore (Tt.of_hex ~n:1 "00"));
  Alcotest.check_raises "bad digit"
    (Invalid_argument "Tt.of_hex: 'z' is not a hexadecimal digit") (fun () ->
      ignore (Tt.of_hex ~n:4 "8fzf"));
  Alcotest.check_raises "digit out of range"
    (Invalid_argument "Tt.of_hex: digit '4' exceeds the 2-bit table of 1 variable")
    (fun () -> ignore (Tt.of_hex ~n:1 "4"));
  Alcotest.check_raises "bad arity"
    (Invalid_argument "Tt.of_hex: arity -1 is outside 0 .. 20") (fun () ->
      ignore (Tt.of_hex ~n:(-1) "0"))

let test_hex_case_insensitive () =
  Alcotest.(check bool) "uppercase" true
    (Tt.equal (Tt.of_hex ~n:4 "8FF8") (Tt.of_hex ~n:4 "8ff8"));
  Alcotest.(check bool) "mixed with prefix" true
    (Tt.equal (Tt.of_hex ~n:4 "0X8Ff8") (Tt.of_hex ~n:4 "8ff8"));
  Alcotest.(check string) "to_hex is lowercase" "8ff8"
    (Tt.to_hex (Tt.of_hex ~n:4 "8FF8"))

let test_get_set () =
  let t = Tt.zero 5 in
  let t = Tt.set t 17 true in
  Alcotest.(check bool) "set" true (Tt.get t 17);
  Alcotest.(check int) "only one" 1 (Tt.count_ones t);
  let t = Tt.set t 17 false in
  Alcotest.(check int) "cleared" 0 (Tt.count_ones t)

let test_boolean_algebra () =
  let rng = Prng.create 1 in
  for n = 1 to 8 do
    let a = random_tt rng n and b = random_tt rng n in
    Alcotest.(check bool) "de morgan" true
      (Tt.equal (Tt.bnot (Tt.band a b)) (Tt.bor (Tt.bnot a) (Tt.bnot b)));
    Alcotest.(check bool) "xor def" true
      (Tt.equal (Tt.bxor a b)
         (Tt.bor (Tt.band a (Tt.bnot b)) (Tt.band (Tt.bnot a) b)));
    Alcotest.(check bool) "double negation" true (Tt.equal a (Tt.bnot (Tt.bnot a)))
  done

let test_apply2_gates () =
  let a = Tt.var 3 0 and b = Tt.var 3 1 in
  Alcotest.(check bool) "and" true (Tt.equal (Tt.apply2 8 a b) (Tt.band a b));
  Alcotest.(check bool) "or" true (Tt.equal (Tt.apply2 14 a b) (Tt.bor a b));
  Alcotest.(check bool) "xor" true (Tt.equal (Tt.apply2 6 a b) (Tt.bxor a b));
  Alcotest.(check bool) "nand" true
    (Tt.equal (Tt.apply2 7 a b) (Tt.bnot (Tt.band a b)));
  Alcotest.(check bool) "const0" true (Tt.equal (Tt.apply2 0 a b) (Tt.zero 3));
  Alcotest.(check bool) "proj a" true (Tt.equal (Tt.apply2 12 a b) a);
  Alcotest.(check bool) "proj b" true (Tt.equal (Tt.apply2 10 a b) b)

let test_cofactor () =
  let f = Tt.of_hex ~n:4 "8ff8" in
  for i = 0 to 3 do
    let c0 = Tt.cofactor f i false and c1 = Tt.cofactor f i true in
    Alcotest.(check bool) "cofactor fixes var" true
      ((not (Tt.depends_on c0 i)) && not (Tt.depends_on c1 i));
    (* Shannon expansion *)
    let v = Tt.var 4 i in
    let recombined = Tt.bor (Tt.band v c1) (Tt.band (Tt.bnot v) c0) in
    Alcotest.(check bool) "shannon" true (Tt.equal f recombined)
  done

let test_support () =
  let f = Tt.band (Tt.var 5 1) (Tt.var 5 3) in
  Alcotest.(check (list int)) "support" [ 1; 3 ] (Tt.support f);
  Alcotest.(check int) "mask" 0b01010 (Tt.support_mask f);
  Alcotest.(check int) "size" 2 (Tt.support_size f)

let test_permute_negate () =
  let rng = Prng.create 2 in
  let f = random_tt rng 4 in
  (* permuting twice with inverse permutations restores *)
  let perm = [| 2; 0; 3; 1 |] in
  let inv = Array.make 4 0 in
  Array.iteri (fun i p -> inv.(p) <- i) perm;
  Alcotest.(check bool) "permute inverse" true
    (Tt.equal f (Tt.permute (Tt.permute f perm) inv));
  (* negate twice restores *)
  Alcotest.(check bool) "negate_var involution" true
    (Tt.equal f (Tt.negate_var (Tt.negate_var f 2) 2));
  (* swap is permute special case *)
  Alcotest.(check bool) "swap twice" true
    (Tt.equal f (Tt.swap_vars (Tt.swap_vars f 1 3) 1 3))

let test_compose () =
  let xor2 = Tt.of_int 2 0b0110 in
  let a = Tt.var 3 0 and b = Tt.var 3 1 and c = Tt.var 3 2 in
  let x = Tt.compose xor2 [| Tt.compose xor2 [| a; b |]; c |] in
  let expected = Tt.bxor (Tt.bxor a b) c in
  Alcotest.(check bool) "xor3 composed" true (Tt.equal x expected)

let test_shrink_expand () =
  let f = Tt.band (Tt.var 6 2) (Tt.bxor (Tt.var 6 4) (Tt.var 6 5)) in
  let shrunk, support = Tt.shrink_to_support f in
  Alcotest.(check (list int)) "support kept" [ 2; 4; 5 ] support;
  Alcotest.(check int) "arity" 3 (Tt.num_vars shrunk);
  let back = Tt.expand shrunk 6 (Array.of_list support) in
  Alcotest.(check bool) "expand inverse" true (Tt.equal back f)

let test_npn_classes_counts () =
  Alcotest.(check int) "n=0" 1 (List.length (Npn.classes 0));
  Alcotest.(check int) "n=1" 2 (List.length (Npn.classes 1));
  Alcotest.(check int) "n=2" 4 (List.length (Npn.classes 2));
  Alcotest.(check int) "n=3" 14 (List.length (Npn.classes 3));
  Alcotest.(check int) "n=4" 222 (List.length (Npn.classes 4))

let test_npn_canonical_invariance () =
  let rng = Prng.create 3 in
  for _ = 1 to 30 do
    let f = random_tt rng 4 in
    let canon, _ = Npn.canonical f in
    (* applying a random transform first must not change the canon *)
    let perm = Array.init 4 (fun i -> i) in
    Prng.shuffle rng perm;
    let tr =
      { Npn.perm; input_neg = Prng.int rng 16; output_neg = Prng.bool rng }
    in
    let canon2, _ = Npn.canonical (Npn.apply f tr) in
    Alcotest.(check bool) "class invariant" true (Tt.equal canon canon2)
  done

let test_npn_inverse_roundtrip () =
  let rng = Prng.create 4 in
  for _ = 1 to 50 do
    let n = 2 + Prng.int rng 3 in
    let f = random_tt rng n in
    let perm = Array.init n (fun i -> i) in
    Prng.shuffle rng perm;
    let tr =
      { Npn.perm; input_neg = Prng.int rng (1 lsl n); output_neg = Prng.bool rng }
    in
    Alcotest.(check bool) "roundtrip" true
      (Tt.equal f (Npn.apply (Npn.apply f tr) (Npn.inverse tr)))
  done

let test_npn_canon4_table () =
  let rng = Prng.create 5 in
  for _ = 1 to 20 do
    let f = random_tt rng 4 in
    let expected, _ = Npn.canonical f in
    Alcotest.(check int) "table matches exhaustive" (Tt.to_int expected)
      (Npn.canon4 (Tt.to_int f))
  done

let test_dsd_kinds () =
  let maj = Tt.of_hex ~n:3 "e8" in
  Alcotest.(check bool) "maj prime" true (Dsd.is_prime maj);
  let xor3 = Tt.of_hex ~n:3 "96" in
  Alcotest.(check bool) "xor3 full" true (Dsd.is_fully_dsd xor3);
  let f = Tt.of_hex ~n:4 "8ff8" in
  Alcotest.(check bool) "ab+c^d full" true (Dsd.is_fully_dsd f);
  Alcotest.(check bool) "const" true (Dsd.kind (Tt.zero 3) = Dsd.Constant);
  Alcotest.(check bool) "literal" true (Dsd.kind (Tt.var 3 1) = Dsd.Literal)

let test_dsd_partial () =
  (* maj(a,b,c) AND d: decomposable at the top but not fully *)
  let maj = Tt.expand (Tt.of_hex ~n:3 "e8") 4 [| 0; 1; 2 |] in
  let f = Tt.band maj (Tt.var 4 3) in
  Alcotest.(check bool) "partial" true (Dsd.kind f = Dsd.Partial)

let test_dsd_split () =
  let f = Tt.of_hex ~n:4 "8ff8" in
  (* split along {a,b} vs {c,d} *)
  match Dsd.split f 0b0011 with
  | None -> Alcotest.fail "expected a split"
  | Some (g, h) ->
    Alcotest.(check bool) "g side" true (Tt.support_mask g land 0b1100 = 0);
    Alcotest.(check bool) "h side" true (Tt.support_mask h land 0b0011 = 0)

let test_dsd_top_splits () =
  let f = Tt.of_hex ~n:4 "8ff8" in
  let splits = Dsd.top_splits f in
  Alcotest.(check bool) "has ab|cd split" true
    (List.exists (fun (a, b) -> a = 0b0011 && b = 0b1100) splits)

let qcheck_permute_preserves_count =
  QCheck.Test.make ~name:"permute preserves count_ones" ~count:100
    QCheck.(pair (int_bound 0xffff) (int_bound 1000))
    (fun (v, seed) ->
      let f = Tt.of_int 4 v in
      let rng = Prng.create seed in
      let perm = Array.init 4 (fun i -> i) in
      Prng.shuffle rng perm;
      Tt.count_ones f = Tt.count_ones (Tt.permute f perm))

let qcheck_npn_apply_preserves_class_size =
  QCheck.Test.make ~name:"canonical is idempotent" ~count:50
    QCheck.(int_bound 0xffff)
    (fun v ->
      let f = Tt.of_int 4 v in
      let c, _ = Npn.canonical f in
      let c2, _ = Npn.canonical c in
      Tt.equal c c2)

let qcheck_cofactor_count =
  QCheck.Test.make ~name:"cofactor counts sum" ~count:100
    QCheck.(pair (int_bound 0xffff) (int_bound 3))
    (fun (v, i) ->
      let f = Tt.of_int 4 v in
      let c0 = Tt.cofactor f i false and c1 = Tt.cofactor f i true in
      Tt.count_ones c0 + Tt.count_ones c1 = 2 * Tt.count_ones f)

let test_pla_parse_basic () =
  let text = ".i 2\n.o 1\n# and gate\n11 1\n.e\n" in
  match Stp_tt.Pla.parse text with
  | [| t |] ->
    Alcotest.(check string) "and" "8" (Tt.to_hex t)
  | _ -> Alcotest.fail "one output expected"

let test_pla_dashes () =
  (* "1- 1" covers minterms where the FIRST (most significant) input is
     1: variable 1 in our numbering *)
  let text = ".i 2\n.o 1\n1- 1\n" in
  match Stp_tt.Pla.parse text with
  | [| t |] ->
    Alcotest.(check bool) "projection of msb var" true
      (Tt.equal t (Tt.var 2 1))
  | _ -> Alcotest.fail "one output"

let test_pla_multi_output () =
  let text = ".i 3\n.o 2\n111 11\n-11 10\n" in
  match Stp_tt.Pla.parse text with
  | [| a; b |] ->
    (* output 1: minterms with x1=x2=1 (low bits), any x3 -> 011 and 111 *)
    Alcotest.(check int) "first output ones" 2 (Tt.count_ones a);
    Alcotest.(check int) "second output ones" 1 (Tt.count_ones b)
  | _ -> Alcotest.fail "two outputs"

let test_pla_roundtrip () =
  let rng = Prng.create 71 in
  for _ = 1 to 20 do
    let n = 1 + Prng.int rng 4 in
    let tables =
      Array.init (1 + Prng.int rng 3) (fun _ -> random_tt rng n)
    in
    let text = Format.asprintf "%a" Stp_tt.Pla.print tables in
    let back = Stp_tt.Pla.parse text in
    Alcotest.(check int) "arity kept" (Array.length tables) (Array.length back);
    Array.iteri
      (fun k t ->
        Alcotest.(check bool) "table kept" true (Tt.equal t back.(k)))
      tables
  done

let test_pla_errors () =
  List.iter
    (fun bad ->
      match Stp_tt.Pla.parse bad with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "expected failure for %S" bad)
    [ ""; ".o 1\n11 1\n"; ".i 2\n11 1\n"; ".i 2\n.o 1\n1 1\n";
      ".i 2\n.o 1\n1x 1\n"; ".i 2\n.o 1\n11 2\n" ]

let () =
  ignore (tt_testable 4);
  Alcotest.run "truthtable"
    [ ( "tt",
        [ Alcotest.test_case "const/var" `Quick test_const_var;
          Alcotest.test_case "wide vars" `Quick test_var_wide;
          Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "hex invalid" `Quick test_hex_invalid;
          Alcotest.test_case "hex case insensitive" `Quick
            test_hex_case_insensitive;
          Alcotest.test_case "get/set" `Quick test_get_set;
          Alcotest.test_case "boolean algebra" `Quick test_boolean_algebra;
          Alcotest.test_case "apply2 gates" `Quick test_apply2_gates;
          Alcotest.test_case "cofactor/shannon" `Quick test_cofactor;
          Alcotest.test_case "support" `Quick test_support;
          Alcotest.test_case "permute/negate" `Quick test_permute_negate;
          Alcotest.test_case "compose" `Quick test_compose;
          Alcotest.test_case "shrink/expand" `Quick test_shrink_expand;
          QCheck_alcotest.to_alcotest qcheck_permute_preserves_count;
          QCheck_alcotest.to_alcotest qcheck_cofactor_count ] );
      ( "npn",
        [ Alcotest.test_case "class counts" `Quick test_npn_classes_counts;
          Alcotest.test_case "canonical invariance" `Quick
            test_npn_canonical_invariance;
          Alcotest.test_case "inverse roundtrip" `Quick test_npn_inverse_roundtrip;
          Alcotest.test_case "canon4 table" `Slow test_npn_canon4_table;
          QCheck_alcotest.to_alcotest qcheck_npn_apply_preserves_class_size ] );
      ( "pla",
        [ Alcotest.test_case "basic" `Quick test_pla_parse_basic;
          Alcotest.test_case "dashes" `Quick test_pla_dashes;
          Alcotest.test_case "multi-output" `Quick test_pla_multi_output;
          Alcotest.test_case "roundtrip" `Quick test_pla_roundtrip;
          Alcotest.test_case "errors" `Quick test_pla_errors ] );
      ( "dsd",
        [ Alcotest.test_case "kinds" `Quick test_dsd_kinds;
          Alcotest.test_case "partial" `Quick test_dsd_partial;
          Alcotest.test_case "split" `Quick test_dsd_split;
          Alcotest.test_case "top splits" `Quick test_dsd_top_splits ] ) ]
