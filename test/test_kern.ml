(* Differential tests for the multi-word kernels: the C stubs and the
   pure-OCaml fallback implement one contract and must agree bit-for-bit
   on every input, including the degenerate corners (all-don't-care
   ternary rows, single-block matrices, partial trailing words). *)

module Kern = Stp_matrix.Kern
module C = Kern.C_ops
module O = Kern.Ocaml_ops

let st = Random.State.make [| 0x5eed; 713 |]

let rand_bytes words =
  let b = Bytes.create (words * 8) in
  for k = 0 to words - 1 do
    Bytes.set_int64_ne b (k * 8)
      (Random.State.int64 st Int64.max_int)
  done;
  b

let fill_const b words v =
  for k = 0 to words - 1 do
    Bytes.set_int64_ne b (k * 8) v
  done

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_popcount_equal () =
  for _ = 1 to 200 do
    let w = 1 + Random.State.int st 4 in
    let a = rand_bytes (w * 2) and b = rand_bytes (w * 2) in
    let off = Random.State.int st w in
    checki "popcount" (O.popcount a off w) (C.popcount a off w);
    check "equal self" true (C.equal_rows a off a off w);
    check "equal agree"
      (O.equal_rows a off b off w)
      (C.equal_rows a off b off w)
  done

let test_compat () =
  for _ = 1 to 300 do
    let w = 1 + Random.State.int st 3 in
    let a = rand_bytes (2 * w) and b = rand_bytes (2 * w) in
    check "compat agree" (O.compat a 0 b 0 w) (C.compat a 0 b 0 w)
  done;
  (* All-don't-care rows are compatible with anything. *)
  for _ = 1 to 50 do
    let w = 1 + Random.State.int st 3 in
    let a = rand_bytes (2 * w) and b = rand_bytes (2 * w) in
    fill_const a w 0L;
    (* zero the care plane of [a]: words [w, 2w) *)
    for k = w to (2 * w) - 1 do
      Bytes.set_int64_ne a (k * 8) 0L
    done;
    check "dc compat (c)" true (C.compat a 0 b 0 w);
    check "dc compat (ml)" true (O.compat a 0 b 0 w)
  done

let test_distinct_rows () =
  for _ = 1 to 200 do
    let w = 1 + Random.State.int st 2 in
    let rows = 1 + Random.State.int st 8 in
    let b = rand_bytes (rows * w) in
    (* duplicate some rows to exercise the dedup *)
    if rows > 1 then
      Bytes.blit b 0 b (w * 8) (w * 8);
    let cap = 1 + Random.State.int st 4 in
    checki "distinct agree"
      (O.distinct_rows b rows w cap)
      (C.distinct_rows b rows w cap)
  done;
  (* single block: every row equal *)
  let w = 2 and rows = 6 in
  let b = rand_bytes w in
  let m = Bytes.create (rows * w * 8) in
  for r = 0 to rows - 1 do
    Bytes.blit b 0 m (r * w * 8) (w * 8)
  done;
  checki "single block (c)" 1 (C.distinct_rows m rows w 3);
  checki "single block (ml)" 1 (O.distinct_rows m rows w 3)

let test_first_unset_const () =
  for _ = 1 to 300 do
    let w = 1 + Random.State.int st 3 in
    let b = rand_bytes w in
    let nbits = 1 + Random.State.int st (w * 64) in
    checki "first_unset" (O.first_unset b 0 nbits) (C.first_unset b 0 nbits);
    check "is_const" (O.is_const_row b 0 nbits) (C.is_const_row b 0 nbits)
  done;
  let b = Bytes.create 16 in
  fill_const b 2 (-1L);
  checki "saturated (c)" (-1) (C.first_unset b 0 128);
  checki "saturated (ml)" (-1) (O.first_unset b 0 128);
  check "const ones (c)" true (C.is_const_row b 0 77);
  fill_const b 2 0L;
  check "const zeros (ml)" true (O.is_const_row b 0 77);
  (* first clear bit beyond nbits reports -1 *)
  fill_const b 2 (-1L);
  Bytes.set_int64_ne b 8 0x7FFFFFFFFFFFFFFFL;
  checki "clear past nbits" (-1) (C.first_unset b 0 100);
  checki "clear past nbits (ml)" (-1) (O.first_unset b 0 100)

(* One random propagation step, run on two copies of the same state by
   the two implementations: return codes, newly-forced masks and state
   planes must all match; on conflict both must leave state untouched. *)
let test_force_undo () =
  for _ = 1 to 500 do
    let w = 1 + Random.State.int st 2 in
    let rows = rand_bytes (2 * w) in
    let st_c = rand_bytes (2 * w) in
    (* keep val inside care to form a sane partial assignment *)
    for k = 0 to w - 1 do
      let care = Bytes.get_int64_ne st_c ((w + k) * 8) in
      Bytes.set_int64_ne st_c (k * 8)
        (Int64.logand (Bytes.get_int64_ne st_c (k * 8)) care)
    done;
    let st_o = Bytes.copy st_c in
    let n_c = Bytes.create (w * 8) and n_o = Bytes.create (w * 8) in
    let ok0 = Random.State.int st 2 and ok1 = Random.State.int st 2 in
    let rc = C.force rows 0 st_c 0 w n_c 0 w ok0 ok1 in
    let ro = O.force rows 0 st_o 0 w n_o 0 w ok0 ok1 in
    checki "force rc" ro rc;
    check "force state" true (Bytes.equal st_c st_o);
    if rc >= 0 then check "force newly" true (Bytes.equal n_c n_o);
    if rc > 0 then begin
      (* undo must restore the pre-force state on both *)
      let before = Bytes.copy st_o in
      O.undo before 0 w n_o 0 w;
      C.undo st_c 0 w n_c 0 w;
      O.undo st_o 0 w n_o 0 w;
      check "undo agree" true (Bytes.equal st_c st_o)
    end
  done

let test_assemble () =
  for _ = 1 to 200 do
    let tw = 1 + Random.State.int st 3 in
    let count = 1 + Random.State.int st 64 in
    let inds = rand_bytes (count * tw) in
    let sel = rand_bytes ((count + 63) / 64) in
    let out_c = Bytes.create (tw * 8) and out_o = Bytes.create (tw * 8) in
    C.assemble inds 0 sel 0 count tw out_c 0;
    O.assemble inds 0 sel 0 count tw out_o 0;
    check "assemble agree" true (Bytes.equal out_c out_o)
  done

let test_word_of_var () =
  (* word_of_var must reproduce the truth-table variable projections. *)
  let module Tt = Stp_tt.Tt in
  for n = 1 to 8 do
    for v = 0 to n - 1 do
      let words = Tt.to_words (Tt.var n v) in
      Array.iteri
        (fun k w ->
          Alcotest.(check int64)
            (Printf.sprintf "var n=%d v=%d k=%d" n v k)
            w
            (Kern.word_of_var ~n ~v ~k))
        words
    done
  done

let () =
  Alcotest.run "kern"
    [ ( "differential",
        [ Alcotest.test_case "popcount + equal_rows" `Quick
            test_popcount_equal;
          Alcotest.test_case "compat (incl. all-don't-care)" `Quick
            test_compat;
          Alcotest.test_case "distinct_rows (incl. single block)" `Quick
            test_distinct_rows;
          Alcotest.test_case "first_unset + is_const_row" `Quick
            test_first_unset_const;
          Alcotest.test_case "force + undo" `Quick test_force_undo;
          Alcotest.test_case "assemble" `Quick test_assemble ] );
      ( "tables",
        [ Alcotest.test_case "word_of_var matches Tt.var" `Quick
            test_word_of_var ] ) ]
