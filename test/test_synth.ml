(* Tests for the STP factorisation engine, the full synthesis loop and
   the three baselines: correctness of decompositions, known optima,
   all-solutions completeness on brute-forceable cases, and agreement
   between engines. *)

module Tt = Stp_tt.Tt
module Chain = Stp_chain.Chain
module Factor = Stp_synth.Factor
module Spec = Stp_synth.Spec
module Stp_exact = Stp_synth.Stp_exact
module Baselines = Stp_synth.Baselines
module Dag = Stp_topology.Dag
module Prng = Stp_util.Prng

let gates_of (r : Spec.result) = Option.get r.Spec.gates

let check_solved name (r : Spec.result) =
  if r.Spec.status <> Spec.Solved then Alcotest.failf "%s timed out" name

(* --- decompose --- *)

let test_decompose_disjoint () =
  (* 0x8ff8 = OR(AND over {a,b}, XOR over {c,d}) *)
  let f = Tt.of_hex ~n:4 "8ff8" in
  let triples =
    Factor.decompose ~cap:1000 ~target:f ~amask:0b0011 ~bmask:0b1100 ()
  in
  Alcotest.(check bool) "found" true (triples <> []);
  List.iter
    (fun { Factor.phi; g; h } ->
      (* supports respected *)
      Alcotest.(check int) "g side" 0 (Tt.support_mask g land 0b1100);
      Alcotest.(check int) "h side" 0 (Tt.support_mask h land 0b0011);
      (* recomposition *)
      let recomposed = Tt.apply2 phi g h in
      Alcotest.(check bool) "phi(g,h) = f" true (Tt.equal recomposed f))
    triples

let test_decompose_rejects () =
  (* parity cannot split with a support-violating cover *)
  let f = Tt.of_hex ~n:4 "8ff8" in
  Alcotest.(check (list unit)) "support not covered" []
    (List.map ignore
       (Factor.decompose ~cap:10 ~target:f ~amask:0b0011 ~bmask:0b0100 ()))

let test_decompose_overlapping () =
  (* MAJ3 = phi(g over {a,b}, h over {a? b? c}) requires overlap: check
     that overlapping factorisations recompose correctly *)
  let maj = Tt.of_hex ~n:3 "e8" in
  let triples =
    Factor.decompose ~cap:1000 ~target:maj ~amask:0b011 ~bmask:0b111 ()
  in
  List.iter
    (fun { Factor.phi; g; h } ->
      Alcotest.(check bool) "recomposes" true
        (Tt.equal (Tt.apply2 phi g h) maj))
    triples

let test_decompose_fixed_side () =
  let f = Tt.of_hex ~n:4 "8ff8" in
  let g0 = Tt.band (Tt.var 4 0) (Tt.var 4 1) in
  let triples =
    Factor.decompose ~g_fixed:g0 ~cap:1000 ~target:f ~amask:0b0011
      ~bmask:0b1100 ()
  in
  Alcotest.(check bool) "found with fixed g" true (triples <> []);
  List.iter
    (fun { Factor.phi; g; h } ->
      Alcotest.(check bool) "g pinned" true (Tt.equal g g0);
      Alcotest.(check bool) "recomposes" true (Tt.equal (Tt.apply2 phi g h) f))
    triples

let test_decompose_exhaustive () =
  (* Completeness of the packed block solver: on 4-variable targets with
     the disjoint cover {a,b} | {c,d}, compare against direct enumeration
     of every (phi, g, h) with non-constant sides. Half the targets are
     built to factor, so both empty and non-empty answers are checked —
     including that the sharpened quartering reject never drops a
     solution. *)
  let nontrivial = Stp_chain.Gate.nontrivial in
  let rng = Prng.create 2024 in
  let g_of gv = Tt.of_fun 4 (fun m -> (gv lsr (m land 3)) land 1 = 1) in
  let h_of hv = Tt.of_fun 4 (fun m -> (hv lsr (m lsr 2)) land 1 = 1) in
  for i = 1 to 30 do
    let f =
      if i mod 2 = 0 then Tt.of_int 4 (Prng.int rng 0x10000)
      else
        Tt.apply2
          (List.nth nontrivial (Prng.int rng (List.length nontrivial)))
          (g_of (1 + Prng.int rng 14))
          (h_of (1 + Prng.int rng 14))
    in
    let got =
      Factor.decompose ~cap:100000 ~target:f ~amask:0b0011 ~bmask:0b1100 ()
      |> List.map (fun { Factor.phi; g; h } -> (phi, Tt.to_hex g, Tt.to_hex h))
      |> List.sort compare
    in
    let expected = ref [] in
    List.iter
      (fun phi ->
        for gv = 1 to 14 do
          for hv = 1 to 14 do
            let g = g_of gv and h = h_of hv in
            if Tt.equal (Tt.apply2 phi g h) f then
              expected := (phi, Tt.to_hex g, Tt.to_hex h) :: !expected
          done
        done)
      nontrivial;
    let expected = List.sort compare !expected in
    Alcotest.(check (list (triple int string string))) "same solution set"
      expected got
  done

let test_decompose_memo_regression () =
  (* The cached value is the full enumeration, truncated per call: the
     answer for a given cap must not depend on which cap populated the
     entry, and a cache hit must return the same list. *)
  let f = Tt.of_hex ~n:4 "8ff8" in
  let key { Factor.phi; g; h } = (phi, Tt.to_hex g, Tt.to_hex h) in
  let call memo cap =
    List.map key
      (Factor.decompose ~memo ~cap ~target:f ~amask:0b0011 ~bmask:0b1100 ())
  in
  let m1 = Factor.create_memo () in
  let full1 = call m1 1000 in
  let capped1 = call m1 3 in
  let m2 = Factor.create_memo () in
  let capped2 = call m2 3 in
  let full2 = call m2 1000 in
  let tst = Alcotest.(list (triple int string string)) in
  Alcotest.check tst "full independent of call order" full1 full2;
  Alcotest.check tst "capped independent of call order" capped1 capped2;
  Alcotest.check tst "cap truncates the full enumeration" capped1
    (List.filteri (fun i _ -> i < 3) full1);
  Alcotest.check tst "cache hit returns the same list" full1 (call m1 1000);
  Alcotest.check tst "memoised = unmemoised" full1
    (List.map key
       (Factor.decompose ~cap:1000 ~target:f ~amask:0b0011 ~bmask:0b1100 ()))

let test_decompose_paths_agree () =
  (* The packed single-word solver, the multi-word kernel solver and the
     list fallback must emit the same triples in the same order — the
     solve_shape search relies on engine-independent enumeration order.
     Forced paths bypass the factorisation memo, so every engine really
     recomputes. *)
  let key { Factor.phi; g; h } = (phi, Tt.to_hex g, Tt.to_hex h) in
  let tst = Alcotest.(list (triple int string string)) in
  let rng = Prng.create 4711 in
  for _ = 1 to 60 do
    let n = 3 + Prng.int rng 3 in
    let target = Tt.of_fun n (fun _ -> Prng.bool rng) in
    let full = (1 lsl n) - 1 in
    let amask = 1 + Prng.int rng full in
    let bmask = 1 + Prng.int rng full in
    let run path =
      List.map key
        (Factor.decompose ~path ~cap:4096 ~target ~amask ~bmask ())
    in
    let packed = run `Packed in
    Alcotest.check tst "multiword = packed (order included)" packed
      (run `Multiword);
    Alcotest.check tst "list = packed (order included)" packed (run `List)
  done;
  (* fixed-side and overlapping covers too *)
  let f = Tt.of_hex ~n:4 "8ff8" in
  let g0 = Tt.band (Tt.var 4 0) (Tt.var 4 1) in
  let run path =
    List.map key
      (Factor.decompose ~path ~g_fixed:g0 ~cap:4096 ~target:f ~amask:0b0011
         ~bmask:0b1111 ())
  in
  let packed = run `Packed in
  Alcotest.(check bool) "fixed-side cover solvable" true (packed <> []);
  Alcotest.check tst "fixed side: multiword = packed" packed (run `Multiword);
  Alcotest.check tst "fixed side: list = packed" packed (run `List)

let test_decompose_forced_path_rejects () =
  (* a forced engine that cannot represent the cover must fail loudly,
     not silently fall back *)
  let f = Tt.expand (Tt.of_hex ~n:3 "96") 7 [| 0; 3; 6 |] in
  Alcotest.check_raises "packed inapplicable"
    (Invalid_argument "Factor.decompose: packed path inapplicable") (fun () ->
      ignore
        (Factor.decompose ~path:`Packed ~cap:10 ~target:f ~amask:0x7f
           ~bmask:0x7f ()))

let qcheck_decompose_sound =
  QCheck.Test.make ~name:"decompose recomposes (random targets/covers)"
    ~count:150
    QCheck.(pair (int_bound 0xffff) (int_bound 1000))
    (fun (v, seed) ->
      let rng = Prng.create seed in
      let f = Tt.of_int 4 v in
      let amask = 1 + Prng.int rng 14 in
      let bmask = 1 + Prng.int rng 14 in
      let triples = Factor.decompose ~cap:64 ~target:f ~amask ~bmask () in
      List.for_all
        (fun { Factor.phi; g; h } ->
          Tt.equal (Tt.apply2 phi g h) f
          && Tt.support_mask g land lnot amask = 0
          && Tt.support_mask h land lnot bmask = 0
          && (not (Tt.is_const g))
          && not (Tt.is_const h))
        triples)

(* --- solve_shape --- *)

let test_solve_shape_xor3 () =
  let xor3 = Tt.of_hex ~n:3 "96" in
  let total = ref 0 in
  Dag.iter 2 (fun shape ->
      let chains = Factor.solve_shape ~cap:100 ~shape ~target:xor3 () in
      List.iter
        (fun c ->
          Alcotest.(check bool) "simulates xor3" true
            (Tt.equal (Chain.simulate c) xor3))
        chains;
      total := !total + List.length chains);
  (* 3 variants of the leaf split x 2 polarities = 6 *)
  Alcotest.(check int) "xor3 solutions" 6 !total

let test_solve_shape_wrong_size () =
  let xor3 = Tt.of_hex ~n:3 "96" in
  Dag.iter 1 (fun shape ->
      Alcotest.(check (list unit)) "no 1-gate chain" []
        (List.map ignore (Factor.solve_shape ~cap:10 ~shape ~target:xor3 ())))

let test_learned_cache_permutation () =
  (* Learned cover refutations and survivor sets are keyed by
     (target, cover, capability signature), so entries recorded while
     solving one shape are replayed while solving another. The replay
     must be invisible: solving the same shapes in a different order —
     hitting the learned entries from a different population history —
     must produce exactly the same chains per shape. *)
  let chain_key c =
    Format.asprintf "%a" Chain.pp_compact (Chain.normalise_fanin_order c)
  in
  let targets = [ Tt.of_hex ~n:4 "8ff8"; Tt.of_hex ~n:4 "1ee6" ] in
  let shapes = Dag.enumerate 3 in
  List.iter
    (fun target ->
      let solve memo shape =
        List.sort compare
          (List.map chain_key
             (Factor.solve_shape ~memo ~cap:1000 ~shape ~target ()))
      in
      let fwd_memo = Factor.create_memo () in
      let fwd = List.map (solve fwd_memo) shapes in
      let rev_memo = Factor.create_memo () in
      let rev = List.rev (List.map (solve rev_memo) (List.rev shapes)) in
      let fresh =
        List.map (fun s -> solve (Factor.create_memo ()) s) shapes
      in
      let tst = Alcotest.(list (list string)) in
      Alcotest.check tst "reverse call order = forward" fwd rev;
      Alcotest.check tst "shared memo = fresh memos" fresh fwd)
    targets

(* --- full synthesis: known optima --- *)

let known_optima =
  [ ("xor3", Tt.of_hex ~n:3 "96", 2);
    ("maj3", Tt.of_hex ~n:3 "e8", 4);
    ("mux", Tt.of_hex ~n:3 "ca", 3);
    ("and4", Tt.of_hex ~n:4 "8000", 3);
    ("or4", Tt.of_hex ~n:4 "fffe", 3);
    ("xor4", Tt.of_hex ~n:4 "6996", 3);
    ("paper 0x8ff8", Tt.of_hex ~n:4 "8ff8", 3);
    ("and2", Tt.of_hex ~n:2 "8", 1) ]

let test_stp_known_optima () =
  List.iter
    (fun (name, f, expected) ->
      let r = Stp_exact.synthesize ~options:(Spec.with_timeout 30.0) f in
      check_solved name r;
      Alcotest.(check int) (name ^ " optimum") expected (gates_of r);
      List.iter
        (fun c ->
          Alcotest.(check bool) (name ^ " chain correct") true
            (Tt.equal (Chain.simulate c) f))
        r.Spec.chains)
    known_optima

let test_baselines_known_optima () =
  List.iter
    (fun (engine_name, engine) ->
      List.iter
        (fun (name, f, expected) ->
          let r = engine ?options:(Some (Spec.with_timeout 30.0)) f in
          check_solved (engine_name ^ " " ^ name) r;
          Alcotest.(check int)
            (engine_name ^ " " ^ name ^ " optimum")
            expected (gates_of r);
          List.iter
            (fun c ->
              Alcotest.(check bool) "chain correct" true
                (Tt.equal (Chain.simulate c) f))
            r.Spec.chains)
        known_optima)
    Baselines.all

let test_trivial_targets () =
  (* literals need zero gates in every engine *)
  let lit = Tt.var 4 2 in
  List.iter
    (fun r ->
      check_solved "literal" r;
      Alcotest.(check int) "0 gates" 0 (gates_of r);
      Alcotest.(check bool) "simulates" true
        (Tt.equal (Chain.simulate (List.hd r.Spec.chains)) lit))
    [ Stp_exact.synthesize lit; Baselines.bms lit; Baselines.fen lit;
      Baselines.abc lit ];
  (* complemented literal *)
  let nlit = Tt.bnot (Tt.var 3 0) in
  let r = Stp_exact.synthesize nlit in
  Alcotest.(check int) "0 gates" 0 (gates_of r);
  Alcotest.(check bool) "simulates" true
    (Tt.equal (Chain.simulate (List.hd r.Spec.chains)) nlit)

let test_constant_rejected () =
  List.iter
    (fun f ->
      Alcotest.check_raises "constant"
        (Invalid_argument "synthesis: constant target has no Boolean chain")
        (fun () -> ignore (Stp_exact.synthesize f)))
    [ Tt.zero 3; Tt.one 3 ]

let test_engines_agree_random () =
  (* On random 3-input functions every engine must report the same
     optimum gate count. *)
  let rng = Prng.create 51 in
  let options = Spec.with_timeout 30.0 in
  for _ = 1 to 15 do
    let f = Tt.of_fun 3 (fun _ -> Prng.bool rng) in
    if Tt.support_size f >= 1 then begin
      let stp = Stp_exact.synthesize ~options f in
      let bms = Baselines.bms ~options f in
      check_solved "stp" stp;
      check_solved "bms" bms;
      Alcotest.(check int) "same optimum" (gates_of bms) (gates_of stp)
    end
  done

let test_cold_incremental_agree () =
  (* The shared-solver and cold paths of every baseline must report the
     same optimum, and both decoded chains must compute the target. *)
  let rng = Prng.create 86 in
  let options = Spec.with_timeout 30.0 in
  let engines =
    [ ("bms", fun ~incremental f -> Baselines.bms ~incremental ~options f);
      ("fen", fun ~incremental f -> Baselines.fen ~incremental ~options f);
      ("abc", fun ~incremental f -> Baselines.abc ~incremental ~options f) ]
  in
  for _ = 1 to 8 do
    let f = Tt.of_fun 3 (fun _ -> Prng.bool rng) in
    if Tt.support_size f >= 1 then
      List.iter
        (fun (name, engine) ->
          let cold = engine ~incremental:false f in
          let inc = engine ~incremental:true f in
          check_solved (name ^ " cold") cold;
          check_solved (name ^ " incremental") inc;
          Alcotest.(check int)
            (name ^ " optimum agrees")
            (gates_of cold) (gates_of inc);
          List.iter
            (fun c ->
              Alcotest.(check bool)
                (name ^ " incremental chain correct")
                true
                (Tt.equal (Chain.simulate c) f))
            inc.Spec.chains)
        engines
  done

let test_all_solutions_distinct_and_verified () =
  let f = Tt.of_hex ~n:3 "e8" in
  let r = Stp_exact.synthesize f in
  check_solved "maj" r;
  let keys =
    List.map
      (fun c -> Format.asprintf "%a" Chain.pp_compact (Chain.normalise_fanin_order c))
      r.Spec.chains
  in
  let distinct = List.sort_uniq compare keys in
  Alcotest.(check int) "no duplicates" (List.length keys) (List.length distinct);
  List.iter
    (fun c ->
      Alcotest.(check bool) "verified" true
        (Stp_circuitsat.Circuit_solver.verify_chain c f);
      Alcotest.(check int) "optimal size" (gates_of r) (Chain.size c))
    r.Spec.chains

let test_all_solutions_superset_of_example7 () =
  (* the two chains of the paper's Example 7 must be among the
     all-solutions output for 0x8ff8 *)
  let f = Tt.of_hex ~n:4 "8ff8" in
  let r = Stp_exact.synthesize f in
  check_solved "8ff8" r;
  let normalised =
    List.map
      (fun c -> Format.asprintf "%a" Chain.pp_compact (Chain.normalise_fanin_order c))
      r.Spec.chains
  in
  let expect_chain steps =
    let c = Chain.make ~n:4 ~steps ~output:6 () in
    let key =
      Format.asprintf "%a" Chain.pp_compact (Chain.normalise_fanin_order c)
    in
    (* solution sets are order-insensitive; membership up to the shape's
       step permutation is checked by simulating instead when absent *)
    List.mem key normalised
    || List.exists
         (fun c' -> Tt.equal (Chain.simulate c') (Chain.simulate c))
         r.Spec.chains
  in
  Alcotest.(check bool) "Example 7 variant 1" true
    (expect_chain
       [ { Chain.fanin1 = 2; fanin2 = 3; gate = 6 };
         { Chain.fanin1 = 0; fanin2 = 1; gate = 8 };
         { Chain.fanin1 = 4; fanin2 = 5; gate = 14 } ]);
  Alcotest.(check bool) "Example 7 variant 2" true
    (expect_chain
       [ { Chain.fanin1 = 2; fanin2 = 3; gate = 9 };
         { Chain.fanin1 = 0; fanin2 = 1; gate = 7 };
         { Chain.fanin1 = 4; fanin2 = 5; gate = 7 } ])

let test_support_reduction () =
  (* a 6-variable function with 3-variable support synthesises like its
     compacted form, with correctly relabelled inputs *)
  let core = Tt.of_hex ~n:3 "96" in
  let f = Tt.expand core 6 [| 1; 3; 5 |] in
  let r = Stp_exact.synthesize f in
  check_solved "embedded xor3" r;
  Alcotest.(check int) "2 gates" 2 (gates_of r);
  List.iter
    (fun c ->
      Alcotest.(check int) "over 6 vars" 6 c.Chain.n;
      Alcotest.(check bool) "simulates" true (Tt.equal (Chain.simulate c) f))
    r.Spec.chains

let test_timeout_reported () =
  (* an extremely tight deadline must yield a clean timeout *)
  let f = Tt.of_hex ~n:4 "1ee6" in
  let r = Stp_exact.synthesize ~options:(Spec.with_timeout 0.001) f in
  Alcotest.(check bool) "timeout" true (r.Spec.status = Spec.Timeout);
  Alcotest.(check (list unit)) "no chains" [] (List.map ignore r.Spec.chains)

let test_synthesize_npn_agrees () =
  let rng = Prng.create 57 in
  let options = Spec.with_timeout 30.0 in
  for _ = 1 to 8 do
    let f = Tt.of_fun 3 (fun _ -> Prng.bool rng) in
    if Tt.support_size f >= 2 then begin
      let direct = Stp_exact.synthesize ~options f in
      let via_npn = Stp_exact.synthesize_npn ~options f in
      check_solved "direct" direct;
      check_solved "npn" via_npn;
      Alcotest.(check int) "same optimum" (gates_of direct) (gates_of via_npn);
      List.iter
        (fun c ->
          Alcotest.(check bool) "npn chain simulates" true
            (Tt.equal (Chain.simulate c) f))
        via_npn.Spec.chains
    end
  done

let test_fdsd6_optimum () =
  (* a read-once 6-input function must synthesise at n-1 gates *)
  let f =
    let a = Tt.var 6 0 and b = Tt.var 6 1 and c = Tt.var 6 2 in
    let d = Tt.var 6 3 and e = Tt.var 6 4 and g = Tt.var 6 5 in
    Tt.bor (Tt.band (Tt.bxor a b) c) (Tt.band (Tt.bor d e) (Tt.bnot g))
  in
  let r = Stp_exact.synthesize ~options:(Spec.with_timeout 30.0) f in
  check_solved "fdsd6" r;
  Alcotest.(check int) "read-once optimum" 5 (gates_of r);
  List.iter
    (fun ch ->
      Alcotest.(check bool) "simulates" true (Tt.equal (Chain.simulate ch) f))
    r.Spec.chains

let () =
  Alcotest.run "synth"
    [ ( "decompose",
        [ Alcotest.test_case "disjoint" `Quick test_decompose_disjoint;
          Alcotest.test_case "rejects" `Quick test_decompose_rejects;
          Alcotest.test_case "overlapping" `Quick test_decompose_overlapping;
          Alcotest.test_case "fixed side" `Quick test_decompose_fixed_side;
          Alcotest.test_case "exhaustive agreement" `Quick
            test_decompose_exhaustive;
          Alcotest.test_case "memo regression" `Quick
            test_decompose_memo_regression;
          Alcotest.test_case "engine paths agree" `Quick
            test_decompose_paths_agree;
          Alcotest.test_case "forced path rejects" `Quick
            test_decompose_forced_path_rejects;
          QCheck_alcotest.to_alcotest qcheck_decompose_sound ] );
      ( "solve_shape",
        [ Alcotest.test_case "xor3" `Quick test_solve_shape_xor3;
          Alcotest.test_case "wrong size" `Quick test_solve_shape_wrong_size;
          Alcotest.test_case "learned cache permutation" `Quick
            test_learned_cache_permutation ] );
      ( "stp_exact",
        [ Alcotest.test_case "known optima" `Slow test_stp_known_optima;
          Alcotest.test_case "trivial targets" `Quick test_trivial_targets;
          Alcotest.test_case "constants rejected" `Quick test_constant_rejected;
          Alcotest.test_case "all solutions distinct+verified" `Quick
            test_all_solutions_distinct_and_verified;
          Alcotest.test_case "contains Example 7 chains" `Quick
            test_all_solutions_superset_of_example7;
          Alcotest.test_case "support reduction" `Quick test_support_reduction;
          Alcotest.test_case "timeout" `Quick test_timeout_reported;
          Alcotest.test_case "npn variant" `Slow test_synthesize_npn_agrees;
          Alcotest.test_case "fdsd6 optimum" `Slow test_fdsd6_optimum ] );
      ( "baselines",
        [ Alcotest.test_case "known optima" `Slow test_baselines_known_optima;
          Alcotest.test_case "engines agree" `Slow test_engines_agree_random;
          Alcotest.test_case "cold vs incremental" `Slow
            test_cold_incremental_agree ] ) ]
