(* Tests for the unified Engine API: the four engines behind one
   signature must agree on optima, report the three-way outcome
   (Solved / Timeout / Infeasible) consistently, and the daemon's
   graceful-degradation upper bound must be a correct chain. *)

module Tt = Stp_tt.Tt
module Chain = Stp_chain.Chain
module Spec = Stp_synth.Spec
module Engine = Stp_synth.Engine
module Baselines = Stp_synth.Baselines
module Deadline = Stp_util.Deadline
module Prng = Stp_util.Prng

let options = Spec.with_timeout 60.0

let synth (module E : Engine.S) ?(options = options) f =
  E.synthesize (Engine.spec ~options f) ~deadline:(Spec.deadline_of options)

let test_engines_agree_on_optima () =
  let targets =
    [ Tt.of_hex ~n:3 "e8" (* maj3 *);
      Tt.of_hex ~n:3 "96" (* xor3 *);
      Tt.of_hex ~n:4 "8ff8" (* the paper's Example 7 *);
      Tt.of_hex ~n:4 "6996" (* xor4 *) ]
  in
  List.iter
    (fun f ->
      let optima =
        List.map
          (fun e ->
            let name = Engine.name e in
            match synth e f with
            | Engine.Solved chains ->
              Alcotest.(check bool)
                (name ^ " chains non-empty") true (chains <> []);
              List.iter
                (fun c ->
                  Alcotest.(check bool)
                    (name ^ " chain simulates to target") true
                    (Tt.equal (Chain.simulate c) f))
                chains;
              Chain.size (List.hd chains)
            | Engine.Timeout -> Alcotest.failf "%s timed out" name
            | Engine.Infeasible -> Alcotest.failf "%s infeasible" name)
          Engine.all
      in
      match optima with
      | g :: rest ->
        List.iter (Alcotest.(check int) "engines agree on optimum" g) rest
      | [] -> assert false)
    targets

let test_constants_are_infeasible () =
  List.iter
    (fun e ->
      let name = Engine.name e in
      List.iter
        (fun f ->
          match synth e f with
          | Engine.Infeasible -> ()
          | Engine.Solved _ | Engine.Timeout ->
            Alcotest.failf "%s should report a constant as Infeasible" name)
        [ Tt.zero 3; Tt.one 4 ])
    Engine.all

let test_expired_deadline_times_out () =
  (* [b4d2] needs real search; a deadline that expires on the first poll
     must surface as Timeout, not as a wrong answer. *)
  let f = Tt.of_hex ~n:4 "b4d2" in
  List.iter
    (fun (module E : Engine.S) ->
      match
        E.synthesize (Engine.spec ~options f)
          ~deadline:(Deadline.after ~poll_interval:1 0.0)
      with
      | Engine.Timeout -> ()
      | Engine.Solved _ -> Alcotest.failf "%s solved under a dead deadline" E.name
      | Engine.Infeasible -> Alcotest.failf "%s reported infeasible" E.name)
    Engine.all

let test_gate_budget_is_infeasible () =
  (* maj3 needs at least 3 gates (refutable instantly); a max_gates cap
     below that must report Infeasible, not Timeout. *)
  let f = Tt.of_hex ~n:3 "e8" in
  let options = { options with Spec.max_gates = 2 } in
  List.iter
    (fun e ->
      let name = Engine.name e in
      match synth e ~options f with
      | Engine.Infeasible -> ()
      | Engine.Solved _ -> Alcotest.failf "%s beat the known lower bound" name
      | Engine.Timeout -> Alcotest.failf "%s timed out instead" name)
    Engine.all

let test_find_and_gates () =
  Alcotest.(check bool) "find stp" true (Engine.find "stp" <> None);
  Alcotest.(check bool) "find ABC" true (Engine.find "ABC" <> None);
  Alcotest.(check bool) "find unknown" true (Engine.find "nope" = None);
  (match Engine.find "Fen" with
   | Some e -> Alcotest.(check string) "find is case-insensitive" "FEN" (Engine.name e)
   | None -> Alcotest.fail "find Fen");
  match synth Engine.stp (Tt.of_hex ~n:3 "96") with
  | Engine.Solved _ as r ->
    Alcotest.(check (option int)) "gates reads the chain size" (Some 2)
      (Engine.gates r)
  | _ -> Alcotest.fail "xor3 should solve"

let test_upper_bound_is_correct () =
  (* The Shannon-expansion fallback must return a verified chain for any
     non-constant function, including wide ones that exact search would
     never finish. *)
  let rng = Prng.create 99 in
  for n = 1 to 8 do
    for _ = 1 to 20 do
      let f = Tt.of_fun n (fun _ -> Prng.bool rng) in
      if not (Tt.is_const f) then begin
        let c = Baselines.upper_bound f in
        Alcotest.(check bool) "upper bound simulates to target" true
          (Tt.equal (Chain.simulate c) f);
        Alcotest.(check int) "over the full variable space" n c.Chain.n
      end
    done
  done;
  (* Degenerate and structured cases. *)
  List.iter
    (fun f ->
      let c = Baselines.upper_bound f in
      Alcotest.(check bool) "structured upper bound simulates" true
        (Tt.equal (Chain.simulate c) f))
    [ Tt.var 5 3;
      Tt.bnot (Tt.var 4 0);
      Tt.of_hex ~n:4 "6996";
      Tt.of_hex ~n:6 "fee8fee8e8e8e8e8" ];
  Alcotest.check_raises "constants have no chain"
    (Invalid_argument "synthesis: constant target has no Boolean chain")
    (fun () -> ignore (Baselines.upper_bound (Tt.zero 3)))

let test_upper_bound_not_absurd () =
  (* Not optimal, but sane: a 2-input function is a single gate. *)
  let c = Baselines.upper_bound (Tt.of_hex ~n:2 "8") in
  Alcotest.(check int) "and2 is one gate" 1 (Chain.size c)

let () =
  Alcotest.run "engine"
    [ ( "outcomes",
        [ Alcotest.test_case "engines agree on optima" `Quick
            test_engines_agree_on_optima;
          Alcotest.test_case "constants are infeasible" `Quick
            test_constants_are_infeasible;
          Alcotest.test_case "expired deadline times out" `Quick
            test_expired_deadline_times_out;
          Alcotest.test_case "gate budget is infeasible" `Quick
            test_gate_budget_is_infeasible;
          Alcotest.test_case "find and gates" `Quick test_find_and_gates ] );
      ( "upper-bound",
        [ Alcotest.test_case "upper bound is correct" `Quick
            test_upper_bound_is_correct;
          Alcotest.test_case "upper bound not absurd" `Quick
            test_upper_bound_not_absurd ] ) ]
