(* Tests for the netlist subsystem: AIG construction, AIGER/BLIF/Verilog
   round-trips, cut enumeration and exact cut rewriting. *)

module Tt = Stp_tt.Tt
module Chain = Stp_chain.Chain
module Prng = Stp_util.Prng
module Ntk = Stp_network.Ntk
module Aiger = Stp_network.Aiger
module Blif = Stp_network.Blif
module Verilog = Stp_network.Verilog
module Cuts = Stp_network.Cuts
module Rewrite = Stp_network.Rewrite

let tt = Alcotest.testable Tt.pp Tt.equal

(* ------------------------------------------------------------------ *)
(* helpers                                                             *)

let random_chain rng ~n ~steps:k =
  let steps =
    List.init k (fun i ->
        let hi = n + i in
        let f1 = Prng.int rng hi in
        let f2 = (f1 + 1 + Prng.int rng (hi - 1)) mod hi in
        { Chain.fanin1 = f1; fanin2 = f2; gate = Prng.int rng 16 })
  in
  Chain.make ~n ~steps ~output:(n + k - 1)
    ~output_negated:(Prng.bool rng) ()

(* A random strashed AIG: [ands] attempted AND insertions over random
   (possibly complemented) existing literals, then [pos] random POs. *)
let random_ntk rng ~pis ~ands ~pos =
  let t = Ntk.create () in
  let lits = ref [] in
  for _ = 1 to pis do
    lits := Ntk.add_pi t :: !lits
  done;
  let pick () =
    let l = List.nth !lits (Prng.int rng (List.length !lits)) in
    if Prng.bool rng then Ntk.lit_not l else l
  in
  for _ = 1 to ands do
    let l = Ntk.add_and t (pick ()) (pick ()) in
    if not (List.mem l !lits) then lits := l :: !lits
  done;
  for _ = 1 to pos do
    ignore (Ntk.add_po t (pick ()))
  done;
  t

let check_same_function msg a b =
  Alcotest.(check int) (msg ^ ": pis") (Ntk.num_pis a) (Ntk.num_pis b);
  Alcotest.(check int) (msg ^ ": pos") (Ntk.num_pos a) (Ntk.num_pos b);
  let fa = Ntk.simulate a and fb = Ntk.simulate b in
  Array.iteri (fun i f -> Alcotest.check tt (msg ^ ": po") f fb.(i)) fa

(* ------------------------------------------------------------------ *)
(* Ntk core                                                            *)

let test_strash () =
  let t = Ntk.create () in
  let a = Ntk.add_pi t and b = Ntk.add_pi t in
  let x = Ntk.add_and t a b in
  Alcotest.(check int) "shared" x (Ntk.add_and t b a);
  Alcotest.(check int) "a&a" a (Ntk.add_and t a a);
  Alcotest.(check int) "a&~a" Ntk.const_false (Ntk.add_and t a (Ntk.lit_not a));
  Alcotest.(check int) "a&1" a (Ntk.add_and t a Ntk.const_true);
  Alcotest.(check int) "a&0" Ntk.const_false (Ntk.add_and t a Ntk.const_false);
  Alcotest.(check int) "one node" 1 (Ntk.num_ands t);
  Alcotest.check_raises "pi after and"
    (Invalid_argument "Ntk.add_pi: inputs must precede AND nodes") (fun () ->
      ignore (Ntk.add_pi t))

let test_gates_simulate () =
  (* every 2-input gate code against its defining truth-table bits *)
  for g = 0 to 15 do
    let t = Ntk.create () in
    let a = Ntk.add_pi t and b = Ntk.add_pi t in
    ignore (Ntk.add_po t (Ntk.add_gate t g a b));
    let expected =
      Tt.of_fun 2 (fun m ->
          let va = m land 1 and vb = (m lsr 1) land 1 in
          (g lsr ((2 * va) + vb)) land 1 = 1)
    in
    Alcotest.check tt (Printf.sprintf "gate %d" g) expected (Ntk.simulate t).(0)
  done

let test_add_lut () =
  let rng = Prng.create 11 in
  for _ = 1 to 200 do
    let n = 1 + Prng.int rng 4 in
    let f = Tt.of_fun n (fun _ -> Prng.bool rng) in
    let t = Ntk.create () in
    let lits = Array.init n (fun _ -> Ntk.add_pi t) in
    ignore (Ntk.add_po t (Ntk.add_lut t f lits));
    Alcotest.check tt "lut" f (Ntk.simulate t).(0)
  done

let test_lit_of_chain () =
  let rng = Prng.create 23 in
  for _ = 1 to 200 do
    let n = 2 + Prng.int rng 3 in
    let c = random_chain rng ~n ~steps:(1 + Prng.int rng 6) in
    let t = Ntk.create () in
    let lits = Array.init n (fun _ -> Ntk.add_pi t) in
    ignore (Ntk.add_po t (Ntk.lit_of_chain t c lits));
    Alcotest.check tt "chain" (Chain.simulate c) (Ntk.simulate t).(0)
  done

let test_simulate_words () =
  (* word-level simulation agrees with truth tables when the PI words
     are the truth-table columns themselves *)
  let rng = Prng.create 37 in
  for _ = 1 to 50 do
    let pis = 2 + Prng.int rng 5 in
    let t = random_ntk rng ~pis ~ands:20 ~pos:3 in
    let ws =
      Array.init pis (fun i ->
          let col = ref 0L in
          for m = 63 downto 0 do
            let v = (m lsr i) land 1 = 1 in
            col := Int64.logor (Int64.shift_left !col 1) (if v then 1L else 0L)
          done;
          !col)
    in
    let words = Ntk.simulate_words t ws in
    let tts = Ntk.simulate t in
    Array.iteri
      (fun o f ->
        let bits = min 64 (Tt.num_bits f) in
        for m = 0 to bits - 1 do
          Alcotest.(check bool) "word bit" (Tt.get f m)
            (Int64.logand (Int64.shift_right_logical words.(o) m) 1L = 1L)
        done)
      tts
  done

let test_extract_sweeps () =
  let t = Ntk.create () in
  let a = Ntk.add_pi t and b = Ntk.add_pi t and c = Ntk.add_pi t in
  let x = Ntk.add_and t a b in
  ignore (Ntk.add_and t x c);
  (* dead *)
  ignore (Ntk.add_po t x);
  Alcotest.(check int) "two nodes" 2 (Ntk.num_ands t);
  Alcotest.(check int) "one live" 1 (Ntk.count_live t);
  let u = Ntk.extract t in
  Alcotest.(check int) "swept" 1 (Ntk.num_ands u);
  check_same_function "sweep" t u

let test_extract_repr () =
  let t = Ntk.create () in
  let a = Ntk.add_pi t and b = Ntk.add_pi t in
  let x = Ntk.add_and t a b in
  let y = Ntk.add_and t x (Ntk.lit_not b) in
  ignore (Ntk.add_po t y);
  (* replace y by constant false: y = a & b & ~b is indeed 0 *)
  let repr v =
    if v = Ntk.var_of_lit y then Some Ntk.const_false else None
  in
  let u = Ntk.extract ~repr t in
  Alcotest.(check int) "all gone" 0 (Ntk.num_ands u);
  check_same_function "repr" t u;
  (* substitution cycles are detected, not looped on *)
  let cyclic v = if v = Ntk.var_of_lit y then Some (Ntk.lit_not y) else None in
  Alcotest.check_raises "cycle"
    (Invalid_argument "Ntk.extract: substitution cycle") (fun () ->
      ignore (Ntk.extract ~repr:cyclic t))

(* ------------------------------------------------------------------ *)
(* AIGER                                                               *)

let test_aiger_roundtrip () =
  let rng = Prng.create 71 in
  for _ = 1 to 60 do
    let t =
      random_ntk rng ~pis:(1 + Prng.int rng 6) ~ands:(Prng.int rng 40)
        ~pos:(1 + Prng.int rng 4)
    in
    let ascii = Aiger.to_ascii t in
    let binary = Aiger.to_binary t in
    let ta = Aiger.of_string ascii and tb = Aiger.of_string binary in
    check_same_function "ascii" t ta;
    check_same_function "binary" t tb;
    (* parse/write stabilises byte-for-byte on strashed networks *)
    Alcotest.(check string) "ascii idempotent" ascii (Aiger.to_ascii ta);
    Alcotest.(check string) "binary idempotent" binary (Aiger.to_binary tb)
  done

let test_aiger_ascii_basic () =
  (* half adder in aag: s = a^b as ~(a&b) & ~(~a&~b), c = a&b, with the
     AND definitions out of order and a symbol table to skip *)
  let src =
    "aag 5 2 0 2 3\n2\n4\n10\n6\n10 7 9\n6 2 4\n8 3 5\ni0 a\ni1 b\no0 s\n"
  in
  let t = Aiger.of_string src in
  Alcotest.(check int) "pis" 2 (Ntk.num_pis t);
  Alcotest.(check int) "pos" 2 (Ntk.num_pos t);
  let f = Ntk.simulate t in
  Alcotest.check tt "xor" (Tt.of_int 2 0b0110) f.(0);
  Alcotest.check tt "and" (Tt.of_int 2 0b1000) f.(1)

let test_aiger_rejects () =
  let fails msg s =
    match Aiger.of_string s with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail msg
  in
  fails "bad magic" "agg 1 1 0 1 0\n2\n2\n";
  fails "latch" "aag 2 1 1 1 0\n2\n4 2\n4\n";
  fails "truncated binary" "aig 3 1 0 1 2\n6\n";
  fails "cycle" "aag 3 1 0 1 2\n2\n6\n4 6 2\n6 4 2\n";
  fails "garbage" "hello\n"

let test_aiger_file_formats () =
  let t = Ntk.create () in
  let a = Ntk.add_pi t and b = Ntk.add_pi t in
  ignore (Ntk.add_po t (Ntk.add_xor t a b));
  let dir = Filename.temp_file "stp_network" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let aag = Filename.concat dir "t.aag" in
      let aig = Filename.concat dir "t.aig" in
      Aiger.write_file aag t;
      Aiger.write_file aig t;
      Alcotest.(check bool) "aag is ascii" true
        (String.length (Aiger.to_ascii t) > 0
        && String.sub (Aiger.to_ascii t) 0 3 = "aag");
      check_same_function "aag file" t (Aiger.read_file aag);
      check_same_function "aig file" t (Aiger.read_file aig))

(* ------------------------------------------------------------------ *)
(* BLIF / Verilog                                                      *)

let test_blif_roundtrip () =
  let rng = Prng.create 113 in
  for _ = 1 to 40 do
    let t =
      random_ntk rng ~pis:(1 + Prng.int rng 5) ~ands:(Prng.int rng 25)
        ~pos:(1 + Prng.int rng 3)
    in
    let s = Blif.to_string t in
    let u = Blif.of_string s in
    check_same_function "blif" t u;
    Alcotest.(check string) "blif idempotent" s (Blif.to_string u)
  done

let test_blif_features () =
  (* multi-input cover rows, off-set cover, don't-cares, out-of-order
     definitions, comments and continuations *)
  let src =
    "# a comment\n\
     .model maj\n\
     .inputs a b \\\n\
     c\n\
     .outputs f g\n\
     .names t f # buffer via on-set\n\
     1 1\n\
     .names a b c t\n\
     11- 1\n\
     1-1 1\n\
     -11 1\n\
     .names a b g\n\
     00 0\n\
     .end\n"
  in
  let t = Blif.of_string src in
  let f = Ntk.simulate t in
  Alcotest.check tt "maj" (Tt.of_int 3 0b11101000) f.(0);
  Alcotest.check tt "or via off-set" (Tt.of_int 3 0b11101110) f.(1)

let test_blif_rejects () =
  let fails msg s =
    match Blif.of_string s with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail msg
  in
  fails "latch" ".model m\n.inputs a\n.outputs f\n.latch a f\n.end\n";
  fails "subckt" ".model m\n.inputs a\n.outputs f\n.subckt n x=a y=f\n.end\n";
  fails "unknown output" ".model m\n.inputs a\n.outputs f\n.end\n";
  fails "bad row" ".model m\n.inputs a\n.outputs f\n.names a f\n2 1\n.end\n"

let test_verilog_parse () =
  let src =
    "// half adder\n\
     module top (a, b, s, c);\n\
     input a, b;\n\
     output s, c;\n\
     wire w0;\n\
     assign s = (a & ~b) | (~a & b);\n\
     assign w0 = a & b;\n\
     assign c = w0 | 1'b0;\n\
     endmodule\n"
  in
  let t = Verilog.of_string src in
  let f = Ntk.simulate t in
  Alcotest.check tt "sum" (Tt.of_int 2 0b0110) f.(0);
  Alcotest.check tt "carry" (Tt.of_int 2 0b1000) f.(1);
  match Verilog.of_string "module m(a); always @(posedge a); endmodule" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "always accepted"

(* ------------------------------------------------------------------ *)
(* Cuts                                                                *)

(* Global (over-PI) function of every variable, by direct simulation. *)
let node_functions t =
  let n = max 1 (Ntk.num_pis t) in
  let tts = Array.make (Ntk.num_vars t) (Tt.zero n) in
  for i = 1 to Ntk.num_pis t do
    tts.(i) <- Tt.var n (i - 1)
  done;
  Ntk.iter_ands t (fun v ->
      let f l =
        let x = tts.(Ntk.var_of_lit l) in
        if Ntk.is_compl l then Tt.bnot x else x
      in
      tts.(v) <- Tt.band (f (Ntk.fanin0 t v)) (f (Ntk.fanin1 t v)));
  tts

let test_cut_truth_tables () =
  let rng = Prng.create 131 in
  for _ = 1 to 30 do
    let pis = 2 + Prng.int rng 4 in
    let t = random_ntk rng ~pis ~ands:25 ~pos:2 in
    let k = 2 + Prng.int rng 3 in
    let cuts = Cuts.enumerate ~k ~limit:6 t in
    let global = node_functions t in
    Ntk.iter_ands t (fun v ->
        List.iter
          (fun (c : Cuts.cut) ->
            Alcotest.(check bool) "cut width" true (Array.length c.leaves <= k);
            Alcotest.(check bool) "sorted" true
              (Array.for_all
                 (fun i -> i = 0 || c.leaves.(i - 1) < c.leaves.(i))
                 (Array.init (Array.length c.leaves) Fun.id));
            (* composing the cut function with the leaves' global
               functions must give the node's global function; done in
               a space wide enough for cuts wider than the PI count *)
            let len = Array.length c.leaves in
            let m = max pis len in
            let widen f = Tt.expand f m (Array.init pis Fun.id) in
            let leaf_funs = Array.map (fun l -> widen global.(l)) c.leaves in
            let expanded = Tt.expand c.tt m (Array.init len Fun.id) in
            let composed =
              Tt.compose expanded
                (Array.init m (fun i ->
                     if i < len then leaf_funs.(i) else Tt.zero m))
            in
            Alcotest.check tt "cut function" (widen global.(v)) composed)
          cuts.(v))
  done

let test_cut_trivial_and_limit () =
  let rng = Prng.create 139 in
  let t = random_ntk rng ~pis:4 ~ands:30 ~pos:2 in
  let limit = 3 in
  let cuts = Cuts.enumerate ~k:4 ~limit t in
  Ntk.iter_ands t (fun v ->
      let cs = cuts.(v) in
      Alcotest.(check bool) "has trivial" true
        (List.exists Cuts.is_trivial cs);
      Alcotest.(check bool) "limit" true (List.length cs <= limit + 1))

(* ------------------------------------------------------------------ *)
(* Rewrite                                                             *)

let test_rewrite_mux_tree () =
  (* a 2:1 mux written as its 4-minterm SOP: 11 ANDs where 3 suffice *)
  let t = Ntk.create () in
  let s = Ntk.add_pi t and a = Ntk.add_pi t and b = Ntk.add_pi t in
  let lits = [| s; a; b |] in
  let acc = ref Ntk.const_false in
  for m = 0 to 7 do
    let v i = m land (1 lsl i) <> 0 in
    if (if v 0 then v 1 else v 2) then begin
      let p = ref Ntk.const_true in
      Array.iteri
        (fun i l -> p := Ntk.add_and t !p (if v i then l else Ntk.lit_not l))
        lits;
      acc := Ntk.add_or t !acc !p
    end
  done;
  ignore (Ntk.add_po t !acc);
  let before = Ntk.count_live t in
  Alcotest.(check bool) "redundant input" true (before > 3);
  let options = { Rewrite.default_options with Rewrite.timeout = 2.0 } in
  let out, r = Rewrite.run ~options t in
  Alcotest.(check bool) "verified" true r.Rewrite.verified;
  Alcotest.(check int) "ands_before" before r.Rewrite.ands_before;
  Alcotest.(check int) "ands_after" (Ntk.count_live out) r.Rewrite.ands_after;
  Alcotest.(check bool) "gain" true (Rewrite.gain r > 0);
  check_same_function "mux" t out

let test_rewrite_random_safe () =
  (* rewriting random networks never changes their function *)
  let rng = Prng.create 151 in
  let cache = Stp_synth.Npn_cache.create () in
  for _ = 1 to 5 do
    let t = random_ntk rng ~pis:5 ~ands:40 ~pos:3 in
    let options =
      { Rewrite.default_options with Rewrite.timeout = 1.0; cut_size = 3 }
    in
    let out, r = Rewrite.run ~options ~cache t in
    Alcotest.(check bool) "verified" true r.Rewrite.verified;
    Alcotest.(check bool) "never worse" true (Rewrite.gain r >= 0);
    check_same_function "random" t out
  done

let test_verify_equivalent () =
  let t = Ntk.create () in
  let a = Ntk.add_pi t and b = Ntk.add_pi t in
  ignore (Ntk.add_po t (Ntk.add_and t a b));
  let u = Ntk.create () in
  let a' = Ntk.add_pi u and b' = Ntk.add_pi u in
  ignore (Ntk.add_po u (Ntk.add_or u a' b'));
  let ok, how = Rewrite.verify_equivalent t t in
  Alcotest.(check bool) "same" true ok;
  Alcotest.(check string) "exhaustive" "exhaustive" how;
  let ok, _ = Rewrite.verify_equivalent t u in
  Alcotest.(check bool) "different" false ok

let () =
  Alcotest.run "network"
    [ ( "ntk",
        [ Alcotest.test_case "strash" `Quick test_strash;
          Alcotest.test_case "gates" `Quick test_gates_simulate;
          Alcotest.test_case "add_lut" `Quick test_add_lut;
          Alcotest.test_case "lit_of_chain" `Quick test_lit_of_chain;
          Alcotest.test_case "simulate_words" `Quick test_simulate_words;
          Alcotest.test_case "extract sweeps" `Quick test_extract_sweeps;
          Alcotest.test_case "extract repr" `Quick test_extract_repr ] );
      ( "aiger",
        [ Alcotest.test_case "roundtrip" `Quick test_aiger_roundtrip;
          Alcotest.test_case "ascii basic" `Quick test_aiger_ascii_basic;
          Alcotest.test_case "rejects" `Quick test_aiger_rejects;
          Alcotest.test_case "files" `Quick test_aiger_file_formats ] );
      ( "blif",
        [ Alcotest.test_case "roundtrip" `Quick test_blif_roundtrip;
          Alcotest.test_case "features" `Quick test_blif_features;
          Alcotest.test_case "rejects" `Quick test_blif_rejects ] );
      ( "verilog", [ Alcotest.test_case "parse" `Quick test_verilog_parse ] );
      ( "cuts",
        [ Alcotest.test_case "truth tables" `Quick test_cut_truth_tables;
          Alcotest.test_case "trivial and limit" `Quick
            test_cut_trivial_and_limit ] );
      ( "rewrite",
        [ Alcotest.test_case "mux tree" `Quick test_rewrite_mux_tree;
          Alcotest.test_case "random safe" `Quick test_rewrite_random_safe;
          Alcotest.test_case "verify" `Quick test_verify_equivalent ] ) ]
