(* Tests for 2-input gates, Boolean chains and cost functions. *)

module Gate = Stp_chain.Gate
module Chain = Stp_chain.Chain
module Cost = Stp_chain.Cost
module Tt = Stp_tt.Tt
module Prng = Stp_util.Prng

let random_chain rng ~n ~steps:k =
  let steps =
    List.init k (fun i ->
        let hi = n + i in
        let f1 = Prng.int rng hi in
        let f2 = (f1 + 1 + Prng.int rng (hi - 1)) mod hi in
        { Chain.fanin1 = f1; fanin2 = f2; gate = Prng.int rng 16 })
  in
  Chain.make ~n ~steps ~output:(n + k - 1)
    ~output_negated:(Prng.bool rng) ()

let test_gate_eval_table () =
  (* every gate code's eval matches its truth-table bit *)
  for g = 0 to 15 do
    for a = 0 to 1 do
      for b = 0 to 1 do
        let expected = (g lsr ((2 * a) + b)) land 1 = 1 in
        Alcotest.(check bool) "eval" expected (Gate.eval g (a = 1) (b = 1))
      done
    done
  done

let test_gate_names () =
  Alcotest.(check string) "and" "AND" (Gate.name 8);
  Alcotest.(check string) "xor" "XOR" (Gate.name 6);
  Alcotest.(check string) "or" "OR" (Gate.name 14);
  Alcotest.(check string) "nand" "NAND" (Gate.name 7);
  Alcotest.(check int) "of_name" 8 (Gate.of_name "and");
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Gate.of_name "frob"))

let test_gate_classification () =
  Alcotest.(check int) "ten nontrivial" 10 (List.length Gate.nontrivial);
  List.iter
    (fun g ->
      Alcotest.(check bool) "depends both" true
        (Gate.depends_on_first g && Gate.depends_on_second g))
    Gate.nontrivial;
  Alcotest.(check bool) "const0 trivial" false (Gate.is_nontrivial 0);
  Alcotest.(check bool) "proj trivial" false (Gate.is_nontrivial 12);
  Alcotest.(check bool) "and normal" true (Gate.is_normal 8);
  Alcotest.(check bool) "nand not normal" false (Gate.is_normal 7)

let test_gate_transforms () =
  for g = 0 to 15 do
    (* swap_operands semantics *)
    for a = 0 to 1 do
      for b = 0 to 1 do
        Alcotest.(check bool) "swap" (Gate.eval g (b = 1) (a = 1))
          (Gate.eval (Gate.swap_operands g) (a = 1) (b = 1));
        Alcotest.(check bool) "neg first" (Gate.eval g (a <> 1) (b = 1))
          (Gate.eval (Gate.negate_first g) (a = 1) (b = 1));
        Alcotest.(check bool) "neg second" (Gate.eval g (a = 1) (b <> 1))
          (Gate.eval (Gate.negate_second g) (a = 1) (b = 1));
        Alcotest.(check bool) "neg out" (not (Gate.eval g (a = 1) (b = 1)))
          (Gate.eval (Gate.negate_output g) (a = 1) (b = 1))
      done
    done;
    (* involutions *)
    Alcotest.(check int) "swap invol" g (Gate.swap_operands (Gate.swap_operands g));
    Alcotest.(check int) "negf invol" g (Gate.negate_first (Gate.negate_first g))
  done;
  Alcotest.(check bool) "and symmetric" true (Gate.is_symmetric 8);
  Alcotest.(check bool) "lt asymmetric" false (Gate.is_symmetric 2)

let test_chain_validation () =
  Alcotest.check_raises "forward fanin" (Invalid_argument "Chain.make: fanin2")
    (fun () ->
      ignore
        (Chain.make ~n:2 ~steps:[ { Chain.fanin1 = 0; fanin2 = 2; gate = 8 } ]
           ~output:2 ()));
  Alcotest.check_raises "equal fanins"
    (Invalid_argument "Chain.make: equal fanins") (fun () ->
      ignore
        (Chain.make ~n:2 ~steps:[ { Chain.fanin1 = 0; fanin2 = 0; gate = 8 } ]
           ~output:2 ()));
  Alcotest.check_raises "bad output" (Invalid_argument "Chain.make: output")
    (fun () -> ignore (Chain.make ~n:2 ~steps:[] ~output:5 ()))

let test_simulate_known () =
  (* full adder sum: a xor b xor c *)
  let c =
    Chain.make ~n:3
      ~steps:
        [ { Chain.fanin1 = 0; fanin2 = 1; gate = 6 };
          { Chain.fanin1 = 3; fanin2 = 2; gate = 6 } ]
      ~output:4 ()
  in
  Alcotest.(check string) "xor3" "96" (Tt.to_hex (Chain.simulate c));
  Alcotest.(check int) "size" 2 (Chain.size c);
  Alcotest.(check int) "depth" 2 (Chain.depth c)

let test_simulate_output_negated () =
  let c =
    Chain.make ~n:2
      ~steps:[ { Chain.fanin1 = 0; fanin2 = 1; gate = 8 } ]
      ~output:2 ~output_negated:true ()
  in
  Alcotest.(check string) "nand via flag" "7" (Tt.to_hex (Chain.simulate c))

let test_trivial_chain () =
  let c = Chain.make ~n:3 ~steps:[] ~output:1 () in
  Alcotest.(check bool) "projection" true
    (Tt.equal (Chain.simulate c) (Tt.var 3 1));
  Alcotest.(check int) "depth 0" 0 (Chain.depth c)

let test_normalise_fanin_order () =
  let rng = Prng.create 5 in
  for _ = 1 to 100 do
    let c = random_chain rng ~n:4 ~steps:4 in
    let c' = Chain.normalise_fanin_order c in
    Alcotest.(check bool) "same function" true
      (Tt.equal (Chain.simulate c) (Chain.simulate c'));
    Array.iter
      (fun (s : Chain.step) ->
        Alcotest.(check bool) "ordered" true (s.fanin1 < s.fanin2))
      c'.Chain.steps
  done

let test_apply_npn_random () =
  let rng = Prng.create 6 in
  for _ = 1 to 200 do
    let n = 3 + Prng.int rng 2 in
    let c = random_chain rng ~n ~steps:3 in
    let perm = Array.init n (fun i -> i) in
    Prng.shuffle rng perm;
    let tr =
      { Stp_tt.Npn.perm;
        input_neg = Prng.int rng (1 lsl n);
        output_neg = Prng.bool rng }
    in
    let lhs = Chain.simulate (Chain.apply_npn c tr) in
    let rhs = Stp_tt.Npn.apply (Chain.simulate c) tr in
    Alcotest.(check bool) "apply_npn commutes with simulate" true
      (Tt.equal lhs rhs)
  done

let test_depth_vs_size () =
  let rng = Prng.create 7 in
  for _ = 1 to 50 do
    let c = random_chain rng ~n:4 ~steps:5 in
    Alcotest.(check bool) "depth <= size" true (Chain.depth c <= Chain.size c)
  done

let test_costs () =
  let c =
    Chain.make ~n:3
      ~steps:
        [ { Chain.fanin1 = 0; fanin2 = 1; gate = 6 } (* XOR *);
          { Chain.fanin1 = 3; fanin2 = 2; gate = 7 } (* NAND *) ]
      ~output:4 ()
  in
  Alcotest.(check int) "size" 2 (Cost.size c);
  Alcotest.(check int) "xor count" 1 (Cost.xor_count c);
  Alcotest.(check int) "negations" 1 (Cost.negation_count c);
  Alcotest.(check int) "area" (8 + 4) (Cost.area_like c);
  let w = Array.make 16 0 in
  w.(6) <- 5;
  Alcotest.(check int) "weighted" 5 (Cost.gate_weighted w c)

let test_select_min_rank () =
  let mk gate =
    Chain.make ~n:2 ~steps:[ { Chain.fanin1 = 0; fanin2 = 1; gate } ] ~output:2 ()
  in
  let chains = [ mk 6 (* xor *); mk 8 (* and *); mk 7 (* nand *) ] in
  let best = Cost.select_min Cost.area_like chains in
  Alcotest.(check int) "nand cheapest" 7 best.Chain.steps.(0).Chain.gate;
  let ranked = Cost.rank Cost.area_like chains in
  Alcotest.(check int) "rank ascending" 4 (fst (List.hd ranked));
  Alcotest.check_raises "empty" (Invalid_argument "Cost.select_min: empty")
    (fun () -> ignore (Cost.select_min Cost.size []))

let qcheck_simulate_signals_prefix =
  QCheck.Test.make ~name:"signals prefix are projections" ~count:50
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Prng.create seed in
      let c = random_chain rng ~n:4 ~steps:3 in
      let sigs = Chain.simulate_signals c in
      Array.length sigs = 7
      && List.for_all
           (fun i -> Tt.equal sigs.(i) (Tt.var 4 i))
           [ 0; 1; 2; 3 ])

let () =
  Alcotest.run "chain"
    [ ( "gate",
        [ Alcotest.test_case "eval table" `Quick test_gate_eval_table;
          Alcotest.test_case "names" `Quick test_gate_names;
          Alcotest.test_case "classification" `Quick test_gate_classification;
          Alcotest.test_case "transforms" `Quick test_gate_transforms ] );
      ( "chain",
        [ Alcotest.test_case "validation" `Quick test_chain_validation;
          Alcotest.test_case "simulate xor3" `Quick test_simulate_known;
          Alcotest.test_case "output negation" `Quick
            test_simulate_output_negated;
          Alcotest.test_case "trivial chain" `Quick test_trivial_chain;
          Alcotest.test_case "normalise fanins" `Quick
            test_normalise_fanin_order;
          Alcotest.test_case "apply_npn" `Quick test_apply_npn_random;
          Alcotest.test_case "depth vs size" `Quick test_depth_vs_size;
          QCheck_alcotest.to_alcotest qcheck_simulate_signals_prefix ] );
      ( "cost",
        [ Alcotest.test_case "costs" `Quick test_costs;
          Alcotest.test_case "select/rank" `Quick test_select_min_rank ] ) ]
