(* End-to-end integration tests: engines against the real workloads and
   the harness aggregation machinery. *)

module Tt = Stp_tt.Tt
module Chain = Stp_chain.Chain
module Spec = Stp_synth.Spec
module Runner = Stp_harness.Runner
module Table = Stp_harness.Table

let options = Spec.with_timeout 20.0

let test_fdsd6_all_engines_agree () =
  (* read-once functions: every engine must find the n-1 = 5-gate optimum *)
  let fns = Stp_workloads.Dsd_gen.fdsd_collection ~n:6 ~count:3 ~seed:77 in
  List.iter
    (fun f ->
      let stp = Stp_synth.Stp_exact.synthesize ~options f in
      Alcotest.(check bool) "stp solved" true (stp.Spec.status = Spec.Solved);
      Alcotest.(check int) "read-once optimum" 5 (Option.get stp.Spec.gates);
      List.iter
        (fun c ->
          Alcotest.(check bool) "simulates" true
            (Tt.equal (Chain.simulate c) f))
        stp.Spec.chains;
      let bms = Stp_synth.Baselines.bms ~options f in
      match bms.Spec.status with
      | Spec.Solved ->
        Alcotest.(check int) "bms agrees" (Option.get stp.Spec.gates)
          (Option.get bms.Spec.gates)
      | Spec.Timeout -> () (* CNF baselines may be slow; agreement only
                              checked when they finish *))
    fns

let test_npn4_easy_classes () =
  (* the small-support NPN4 classes must be near-instant *)
  let fns =
    List.filter
      (fun f -> Tt.support_size f <= 3)
      (Stp_workloads.Npn4.synthesizable ())
  in
  List.iter
    (fun f ->
      let r = Stp_synth.Stp_exact.synthesize ~options f in
      Alcotest.(check bool) "solved" true (r.Spec.status = Spec.Solved);
      List.iter
        (fun c ->
          Alcotest.(check bool) "simulates" true
            (Tt.equal (Chain.simulate c) f))
        r.Spec.chains)
    fns

let test_runner_aggregates () =
  let fns =
    [ Tt.of_hex ~n:3 "96"; Tt.of_hex ~n:3 "e8"; Tt.of_hex ~n:3 "ca" ]
  in
  let agg = Runner.run_collection ~timeout:20.0 Runner.stp_engine fns in
  Alcotest.(check string) "name" "STP" agg.Runner.name;
  Alcotest.(check int) "all solved" 3 agg.Runner.solved;
  Alcotest.(check int) "no timeouts" 0 agg.Runner.timeouts;
  Alcotest.(check bool) "mean positive" true (agg.Runner.mean_time >= 0.0);
  Alcotest.(check bool) "solutions counted" true (agg.Runner.mean_solutions >= 1.0);
  (* optima histogram: xor3=2, mux=3, maj=4 *)
  Alcotest.(check (list (pair int int))) "histogram" [ (2, 1); (3, 1); (4, 1) ]
    agg.Runner.optima

let test_runner_observes () =
  let fns = [ Tt.of_hex ~n:2 "6" ] in
  let seen = ref [] in
  let on_instance i _f (r : Spec.result) =
    seen := (i, r.Spec.status = Spec.Solved) :: !seen
  in
  ignore (Runner.run_collection ~timeout:20.0 ~on_instance Runner.stp_engine fns);
  Alcotest.(check (list (pair int bool))) "observed" [ (0, true) ] !seen

let test_runner_timeout_accounting () =
  (* hard function with a microscopic budget: counted as timeout *)
  let fns = [ Tt.of_hex ~n:4 "1ee6" ] in
  let agg = Runner.run_collection ~timeout:0.001 Runner.stp_engine fns in
  Alcotest.(check int) "timeout" 1 agg.Runner.timeouts;
  Alcotest.(check int) "none solved" 0 agg.Runner.solved

let test_table_rendering () =
  let fns = [ Tt.of_hex ~n:3 "96" ] in
  let aggs =
    List.map
      (fun e -> Runner.run_collection ~timeout:20.0 e fns)
      [ Runner.bms_engine; Runner.fen_engine; Runner.abc_engine;
        Runner.stp_engine ]
  in
  let out = Format.asprintf "%a" (fun fmt () ->
      Table.render fmt ~rows:[ ("XOR3", aggs) ]) ()
  in
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec scan i =
      i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check bool) "mentions collection" true (contains out "XOR3")

let test_csv_rendering () =
  let fns = [ Tt.of_hex ~n:3 "96" ] in
  let agg = Runner.run_collection ~timeout:20.0 Runner.stp_engine fns in
  let out =
    Format.asprintf "%a" (fun fmt () ->
        Table.render_csv fmt ~rows:[ ("XOR3", [ agg ]) ]) ()
  in
  Alcotest.(check bool) "has header" true
    (String.length out > 10 && String.sub out 0 10 = "collection")

let test_chains_expand_correctly_across_engines () =
  (* a function with a support hole exercises the expand path everywhere *)
  let f = Tt.expand (Tt.of_hex ~n:3 "e8") 5 [| 0; 2; 4 |] in
  List.iter
    (fun (name, engine) ->
      let r = engine ?options:(Some options) f in
      match r.Spec.status with
      | Spec.Solved ->
        List.iter
          (fun c ->
            Alcotest.(check bool) (name ^ " simulates") true
              (Tt.equal (Chain.simulate c) f))
          r.Spec.chains
      | Spec.Timeout -> Alcotest.failf "%s timed out" name)
    (("STP", fun ?options f ->
         Stp_synth.Stp_exact.synthesize ?options f)
     :: Stp_synth.Baselines.all)

let () =
  Alcotest.run "integration"
    [ ( "engines",
        [ Alcotest.test_case "fdsd6 agreement" `Slow
            test_fdsd6_all_engines_agree;
          Alcotest.test_case "npn4 easy classes" `Slow test_npn4_easy_classes;
          Alcotest.test_case "expand across engines" `Slow
            test_chains_expand_correctly_across_engines ] );
      ( "harness",
        [ Alcotest.test_case "aggregates" `Quick test_runner_aggregates;
          Alcotest.test_case "observer" `Quick test_runner_observes;
          Alcotest.test_case "timeout accounting" `Quick
            test_runner_timeout_accounting;
          Alcotest.test_case "table rendering" `Quick test_table_rendering;
          Alcotest.test_case "csv rendering" `Quick test_csv_rendering ] ) ]
