(* Tests for multi-output chains and multi-output synthesis. *)

module Tt = Stp_tt.Tt
module Chain = Stp_chain.Chain
module Mchain = Stp_chain.Mchain
module Multi = Stp_synth.Multi
module Spec = Stp_synth.Spec
module Prng = Stp_util.Prng

let options = Spec.with_timeout 60.0

let full_adder = [| Tt.of_hex ~n:3 "96" (* sum *); Tt.of_hex ~n:3 "e8" (* carry *) |]

let test_mchain_basics () =
  let mc =
    Mchain.make ~n:2
      ~steps:
        [ { Chain.fanin1 = 0; fanin2 = 1; gate = 8 };
          { Chain.fanin1 = 0; fanin2 = 1; gate = 6 } ]
      ~outputs:[ (2, false); (3, true) ]
  in
  Alcotest.(check int) "size" 2 (Mchain.size mc);
  Alcotest.(check int) "outputs" 2 (Mchain.num_outputs mc);
  let sims = Mchain.simulate mc in
  Alcotest.(check bool) "out0 = and" true
    (Tt.equal sims.(0) (Tt.band (Tt.var 2 0) (Tt.var 2 1)));
  Alcotest.(check bool) "out1 = xnor" true
    (Tt.equal sims.(1) (Tt.bnot (Tt.bxor (Tt.var 2 0) (Tt.var 2 1))))

let test_mchain_validation () =
  Alcotest.check_raises "no outputs" (Invalid_argument "Mchain.make: no outputs")
    (fun () -> ignore (Mchain.make ~n:2 ~steps:[] ~outputs:[]));
  Alcotest.check_raises "bad output" (Invalid_argument "Mchain.make: output")
    (fun () -> ignore (Mchain.make ~n:2 ~steps:[] ~outputs:[ (5, false) ]))

let test_of_to_chain () =
  let c =
    Chain.make ~n:2 ~steps:[ { Chain.fanin1 = 0; fanin2 = 1; gate = 14 } ]
      ~output:2 ~output_negated:true ()
  in
  let mc = Mchain.of_chain c in
  Alcotest.(check bool) "roundtrip function" true
    (Tt.equal (Mchain.simulate mc).(0) (Chain.simulate c));
  let back = Mchain.to_chain mc ~output:0 in
  Alcotest.(check bool) "to_chain" true
    (Tt.equal (Chain.simulate back) (Chain.simulate c))

let test_full_adder_exact () =
  let r = Multi.exact ~options full_adder in
  Alcotest.(check bool) "solved" true (r.Multi.status = Spec.Solved);
  Alcotest.(check int) "textbook optimum" 5 (Option.get r.Multi.gates);
  let mc = Option.get r.Multi.mchain in
  let sims = Mchain.simulate mc in
  Alcotest.(check bool) "sum" true (Tt.equal sims.(0) full_adder.(0));
  Alcotest.(check bool) "carry" true (Tt.equal sims.(1) full_adder.(1))

let test_exact_beats_separate () =
  (* separate optima: sum = 2 gates, carry = 4 gates -> 6 total; sharing
     brings the pair to 5 *)
  let sum = Stp_synth.Stp_exact.synthesize ~options full_adder.(0) in
  let carry = Stp_synth.Stp_exact.synthesize ~options full_adder.(1) in
  let separate =
    Option.get sum.Spec.gates + Option.get carry.Spec.gates
  in
  Alcotest.(check int) "separate total" 6 separate;
  let joint = Multi.exact ~options full_adder in
  Alcotest.(check bool) "joint smaller" true
    (Option.get joint.Multi.gates < separate)

let test_stp_shared_valid_upper_bound () =
  let exact = Multi.exact ~options full_adder in
  let shared = Multi.stp_shared ~options full_adder in
  Alcotest.(check bool) "solved" true (shared.Multi.status = Spec.Solved);
  Alcotest.(check bool) "upper bound" true
    (Option.get shared.Multi.gates >= Option.get exact.Multi.gates);
  let mc = Option.get shared.Multi.mchain in
  let sims = Mchain.simulate mc in
  Array.iteri
    (fun k f -> Alcotest.(check bool) "correct" true (Tt.equal sims.(k) f))
    full_adder

let test_shared_outputs_same_function () =
  (* two outputs, one the complement of the other: one gate suffices *)
  let f = Tt.band (Tt.var 2 0) (Tt.var 2 1) in
  let r = Multi.exact ~options [| f; Tt.bnot f |] in
  Alcotest.(check bool) "solved" true (r.Multi.status = Spec.Solved);
  Alcotest.(check int) "one gate" 1 (Option.get r.Multi.gates)

let test_literal_output () =
  (* an output that is a plain projection selects an input signal *)
  let f = Tt.band (Tt.var 2 0) (Tt.var 2 1) in
  let r = Multi.exact ~options [| f; Tt.var 2 1 |] in
  Alcotest.(check bool) "solved" true (r.Multi.status = Spec.Solved);
  Alcotest.(check int) "one gate" 1 (Option.get r.Multi.gates)

let test_random_pairs_agree () =
  let rng = Prng.create 23 in
  for _ = 1 to 6 do
    let f = Tt.of_fun 3 (fun _ -> Prng.bool rng) in
    let g = Tt.of_fun 3 (fun _ -> Prng.bool rng) in
    if (not (Tt.is_const f)) && not (Tt.is_const g) then begin
      let joint = Multi.exact ~options [| f; g |] in
      Alcotest.(check bool) "solved" true (joint.Multi.status = Spec.Solved);
      let mc = Option.get joint.Multi.mchain in
      let sims = Mchain.simulate mc in
      Alcotest.(check bool) "f" true (Tt.equal sims.(0) f);
      Alcotest.(check bool) "g" true (Tt.equal sims.(1) g);
      (* joint never beats the best single output's optimum *)
      let single = Stp_synth.Stp_exact.synthesize ~options f in
      Alcotest.(check bool) "lower bounded" true
        (Option.get joint.Multi.gates >= Option.get single.Spec.gates)
    end
  done

let test_constant_rejected () =
  Alcotest.check_raises "constant"
    (Invalid_argument "Multi: constant outputs have no Boolean chain")
    (fun () -> ignore (Multi.exact [| Tt.zero 2 |]))

let test_cold_incremental_agree () =
  (* The shared-solver sweep must find the same joint optimum as the
     cold per-budget encodings, with valid decoded networks. *)
  let rng = Prng.create 61 in
  for _ = 1 to 6 do
    let f = Tt.of_fun 3 (fun _ -> Prng.bool rng) in
    let g = Tt.of_fun 3 (fun _ -> Prng.bool rng) in
    if (not (Tt.is_const f)) && not (Tt.is_const g) then begin
      let cold = Multi.exact ~incremental:false ~options [| f; g |] in
      let inc = Multi.exact ~incremental:true ~options [| f; g |] in
      Alcotest.(check bool) "cold solved" true
        (cold.Multi.status = Spec.Solved);
      Alcotest.(check bool) "inc solved" true (inc.Multi.status = Spec.Solved);
      Alcotest.(check (option int))
        "optimum agrees" cold.Multi.gates inc.Multi.gates;
      let sims = Mchain.simulate (Option.get inc.Multi.mchain) in
      Alcotest.(check bool) "inc f" true (Tt.equal sims.(0) f);
      Alcotest.(check bool) "inc g" true (Tt.equal sims.(1) g)
    end
  done

let () =
  Alcotest.run "multi"
    [ ( "mchain",
        [ Alcotest.test_case "basics" `Quick test_mchain_basics;
          Alcotest.test_case "validation" `Quick test_mchain_validation;
          Alcotest.test_case "of/to chain" `Quick test_of_to_chain ] );
      ( "synthesis",
        [ Alcotest.test_case "full adder exact" `Quick test_full_adder_exact;
          Alcotest.test_case "sharing beats separate" `Quick
            test_exact_beats_separate;
          Alcotest.test_case "stp_shared upper bound" `Quick
            test_stp_shared_valid_upper_bound;
          Alcotest.test_case "complement outputs" `Quick
            test_shared_outputs_same_function;
          Alcotest.test_case "literal output" `Quick test_literal_output;
          Alcotest.test_case "random pairs" `Slow test_random_pairs_agree;
          Alcotest.test_case "constants rejected" `Quick test_constant_rejected;
          Alcotest.test_case "cold vs incremental" `Slow
            test_cold_incremental_agree ] ) ]
