(* Tests for the SSV CNF encoding: decoded chains must compute the
   target, UNSAT must mean no chain of that size, fence restriction and
   CEGAR refinement must behave. *)

module Tt = Stp_tt.Tt
module Chain = Stp_chain.Chain
module Solver = Stp_sat.Solver
module Ssv = Stp_encodings.Ssv
module Prng = Stp_util.Prng

let solve_size f r =
  let solver = Solver.create () in
  match Ssv.build ~solver ~f ~r () with
  | None -> `Infeasible
  | Some enc -> (
    match Solver.solve solver with
    | Solver.Sat -> `Sat (Ssv.decode enc)
    | Solver.Unsat -> `Unsat
    | Solver.Unknown -> `Unknown)

let test_requires_normal () =
  Alcotest.check_raises "non-normal rejected"
    (Invalid_argument "Ssv.build: target must be normal") (fun () ->
      let solver = Solver.create () in
      ignore (Ssv.build ~solver ~f:(Tt.one 3) ~r:1 ()))

let test_xor3_sizes () =
  let xor3 = Tt.of_hex ~n:3 "96" in
  (match solve_size xor3 1 with
   | `Unsat -> ()
   | _ -> Alcotest.fail "xor3 must be unsat at 1 gate");
  match solve_size xor3 2 with
  | `Sat chain ->
    Alcotest.(check bool) "computes xor3" true
      (Tt.equal (Chain.simulate chain) xor3);
    Alcotest.(check int) "two gates" 2 (Chain.size chain)
  | _ -> Alcotest.fail "xor3 must be sat at 2 gates"

let test_decoded_chains_random () =
  let rng = Prng.create 31 in
  let solved = ref 0 in
  for _ = 1 to 15 do
    let n = 3 in
    let f = Tt.of_fun n (fun _ -> Prng.bool rng) in
    let f = if Tt.get f 0 then Tt.bnot f else f in
    if Tt.support_size f >= 2 then begin
      let rec try_r r =
        if r > 6 then ()
        else
          match solve_size f r with
          | `Sat chain ->
            incr solved;
            Alcotest.(check bool) "decoded computes f" true
              (Tt.equal (Chain.simulate chain) f)
          | `Unsat -> try_r (r + 1)
          | _ -> ()
      in
      try_r 1
    end
  done;
  Alcotest.(check bool) "solved most" true (!solved > 5)

let test_minterm_restriction () =
  (* with a single encoded minterm the problem is underconstrained: a
     chain is found but need not compute f everywhere *)
  let f = Tt.of_hex ~n:3 "96" in
  let solver = Solver.create () in
  match Ssv.build ~minterms:[ 1 ] ~solver ~f ~r:2 () with
  | None -> Alcotest.fail "feasible"
  | Some enc -> (
    Alcotest.(check (list int)) "one minterm" [ 1 ] (Ssv.encoded_minterms enc);
    match Solver.solve solver with
    | Solver.Sat ->
      let chain = Ssv.decode enc in
      Alcotest.(check bool) "agrees on encoded minterm" true
        (Tt.get (Chain.simulate chain) 1 = Tt.get f 1)
    | _ -> Alcotest.fail "restricted encoding must be sat")

let test_cegar_refinement () =
  (* adding minterms one at a time must converge to a correct chain *)
  let f = Tt.of_hex ~n:3 "e8" in
  let solver = Solver.create () in
  match Ssv.build ~minterms:[ 3 ] ~solver ~f ~r:4 () with
  | None -> Alcotest.fail "feasible"
  | Some enc ->
    let rec refine budget =
      if budget = 0 then Alcotest.fail "no convergence"
      else
        match Solver.solve solver with
        | Solver.Sat ->
          let chain = Ssv.decode enc in
          let sim = Chain.simulate chain in
          if Tt.equal sim f then ()
          else begin
            let diff = Tt.bxor sim f in
            let rec first m = if Tt.get diff m then m else first (m + 1) in
            Ssv.add_minterm enc (first 0);
            refine (budget - 1)
          end
        | _ -> Alcotest.fail "must stay sat at 4 gates"
    in
    refine 16

let test_fence_levels_restrict () =
  let xor3 = Tt.of_hex ~n:3 "96" in
  (* a two-level fence <1,1> admits the xor chain *)
  let solver = Solver.create () in
  (match Ssv.build ~levels:[| 1; 2 |] ~solver ~f:xor3 ~r:2 () with
   | None -> Alcotest.fail "feasible fence"
   | Some enc -> (
     match Solver.solve solver with
     | Solver.Sat ->
       let chain = Ssv.decode enc in
       Alcotest.(check bool) "fence chain computes f" true
         (Tt.equal (Chain.simulate chain) xor3)
     | _ -> Alcotest.fail "must be sat"));
  (* a one-level fence with 2 gates cannot feed gate 2 from level 1 *)
  let solver2 = Solver.create () in
  match Ssv.build ~levels:[| 1; 1 |] ~solver:solver2 ~f:xor3 ~r:2 () with
  | None -> () (* gate 1 has no level-0... both at level 1: second gate may
                  only read PIs, and the encoding may be infeasible or unsat *)
  | Some _ -> (
    match Solver.solve solver2 with
    | Solver.Unsat -> ()
    | Solver.Sat -> Alcotest.fail "flat fence cannot realise xor3"
    | Solver.Unknown -> Alcotest.fail "unknown")

(* One Inc instance swept across budgets must find the same optimum as
   fresh per-budget encodings, its decoded chains must compute the
   target, and retired budgets must not disturb later ones. *)
let test_inc_matches_fresh () =
  let rng = Prng.create 4242 in
  let agreed = ref 0 in
  for _ = 1 to 15 do
    let n = 3 in
    let f = Tt.of_fun n (fun _ -> Prng.bool rng) in
    let f = if Tt.get f 0 then Tt.bnot f else f in
    if Tt.support_size f >= 2 then begin
      let fresh_optimum =
        let rec try_r r =
          if r > 6 then None
          else
            match solve_size f r with
            | `Sat _ -> Some r
            | `Unsat | `Infeasible -> try_r (r + 1)
            | `Unknown -> None
        in
        try_r 1
      in
      let solver = Solver.create () in
      let inc = Ssv.Inc.create ~solver ~f () in
      for m = 1 to (1 lsl n) - 1 do
        Ssv.Inc.add_minterm inc m
      done;
      let inc_optimum =
        let rec try_r r =
          if r > 6 then None
          else
            match Ssv.Inc.budget_selector inc r with
            | None -> try_r (r + 1)
            | Some sel -> (
              match Solver.solve ~assumptions:[ sel ] solver with
              | Solver.Sat ->
                let chain = Ssv.Inc.decode inc ~r in
                Alcotest.(check bool) "inc chain computes f" true
                  (Tt.equal (Chain.simulate chain) f);
                Some r
              | Solver.Unsat ->
                Ssv.Inc.retire inc r;
                try_r (r + 1)
              | Solver.Unknown -> None)
        in
        try_r 1
      in
      Alcotest.(check (option int)) "optimum agrees" fresh_optimum inc_optimum;
      if fresh_optimum = inc_optimum && fresh_optimum <> None then incr agreed
    end
  done;
  Alcotest.(check bool) "exercised" true (!agreed > 5)

(* Fence assumption sets over the shared encoding must accept exactly
   the fences the baked-in [~levels] encoding accepts. *)
let test_inc_fence_assumptions_match_baked () =
  let xor3 = Tt.of_hex ~n:3 "96" in
  let solver = Solver.create () in
  let inc = Ssv.Inc.create ~solver ~f:xor3 () in
  for m = 1 to 7 do
    Ssv.Inc.add_minterm inc m
  done;
  match Ssv.Inc.budget_selector inc 2 with
  | None -> Alcotest.fail "budget 2 must be feasible"
  | Some sel ->
    let try_fence levels =
      match Ssv.Inc.fence_assumptions inc ~levels with
      | None -> `Infeasible
      | Some asms -> (
        match Solver.solve ~assumptions:(sel :: asms) solver with
        | Solver.Sat -> `Sat (Ssv.Inc.decode inc ~r:2)
        | Solver.Unsat -> `Unsat
        | Solver.Unknown -> `Unknown)
    in
    (match try_fence [| 1; 2 |] with
     | `Sat chain ->
       Alcotest.(check bool) "fence chain computes xor3" true
         (Tt.equal (Chain.simulate chain) xor3)
     | _ -> Alcotest.fail "two-level fence must admit the xor chain");
    (match try_fence [| 1; 1 |] with
     | `Sat _ -> Alcotest.fail "flat fence cannot realise xor3"
     | `Unsat | `Infeasible -> ()
     | `Unknown -> Alcotest.fail "unknown");
    (* the same instance still solves unrestricted afterwards *)
    (match Solver.solve ~assumptions:[ sel ] solver with
     | Solver.Sat -> ()
     | _ -> Alcotest.fail "unrestricted budget 2 must stay sat")

let test_optimum_matches_paper_examples () =
  (* 0x8ff8 has a 3-gate optimum (Example 7) *)
  let f = Tt.of_hex ~n:4 "8ff8" in
  (match solve_size f 2 with
   | `Unsat -> ()
   | _ -> Alcotest.fail "no 2-gate chain");
  match solve_size f 3 with
  | `Sat chain ->
    Alcotest.(check bool) "3-gate chain" true (Tt.equal (Chain.simulate chain) f)
  | _ -> Alcotest.fail "3 gates must suffice"

let () =
  Alcotest.run "encodings"
    [ ( "ssv",
        [ Alcotest.test_case "normal form required" `Quick test_requires_normal;
          Alcotest.test_case "xor3 sizes" `Quick test_xor3_sizes;
          Alcotest.test_case "random decoded chains" `Slow
            test_decoded_chains_random;
          Alcotest.test_case "minterm restriction" `Quick
            test_minterm_restriction;
          Alcotest.test_case "cegar refinement" `Quick test_cegar_refinement;
          Alcotest.test_case "fence levels" `Quick test_fence_levels_restrict;
          Alcotest.test_case "paper example optimum" `Quick
            test_optimum_matches_paper_examples ] );
      ( "ssv-inc",
        [ Alcotest.test_case "inc matches fresh" `Slow test_inc_matches_fresh;
          Alcotest.test_case "fence assumptions match baked" `Quick
            test_inc_fence_assumptions_match_baked ] ) ]
