(* Tests for the pass pipeline and the SAT-sweeping subsystem: sweep
   output equivalence (exhaustive on small PI counts, random above),
   candidate-class safety (simulation never separates truly equivalent
   nodes), pipeline composition and abort-on-unverified, the
   sweep-before-rewrite differential, and the large-netlist AIGER
   regression for the streaming reader. *)

module Tt = Stp_tt.Tt
module Ntk = Stp_network.Ntk
module Aiger = Stp_network.Aiger
module Pass = Stp_network.Pass
module Sweep = Stp_network.Sweep
module Rewrite = Stp_network.Rewrite
module Ntk_gen = Stp_workloads.Ntk_gen

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let check_same_function msg a b =
  Alcotest.(check int) (msg ^ ": pis") (Ntk.num_pis a) (Ntk.num_pis b);
  Alcotest.(check int) (msg ^ ": pos") (Ntk.num_pos a) (Ntk.num_pos b);
  let fa = Ntk.simulate a and fb = Ntk.simulate b in
  Array.iteri
    (fun i f ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: po %d" msg i)
        true (Tt.equal f fb.(i)))
    fa

(* ------------------------------------------------------------------ *)
(* sweep                                                               *)

(* A generated netlist with planted redundancies, few enough PIs that
   the final check is exhaustive: the sweep must find merges, keep the
   function, and account for every candidate pair. *)
let test_sweep_planted_exhaustive () =
  let ntk = Ntk_gen.generate ~seed:3 ~pis:8 ~pos:8 ~nodes:400 () in
  let out, r = Sweep.run ntk in
  Alcotest.(check bool) "verified" true r.Sweep.verified;
  Alcotest.(check string) "method" "exhaustive" r.Sweep.verify_method;
  Alcotest.(check bool) "merges > 0" true (r.Sweep.merges > 0);
  Alcotest.(check bool) "shrinks" true (r.Sweep.ands_after < r.Sweep.ands_before);
  Alcotest.(check int) "accounting"
    r.Sweep.candidates
    (r.Sweep.pairs_proved + r.Sweep.pairs_refuted + r.Sweep.pairs_skipped);
  Alcotest.(check int) "proved = merges" r.Sweep.pairs_proved r.Sweep.merges;
  check_same_function "planted" ntk out

(* Above 16 PIs the final check falls back to seeded random vectors. *)
let test_sweep_random_verify () =
  let ntk = Ntk_gen.generate ~seed:4 ~pis:24 ~pos:8 ~nodes:600 () in
  let out, r = Sweep.run ntk in
  Alcotest.(check bool) "verified" true r.Sweep.verified;
  Alcotest.(check string) "method" "random:256" r.Sweep.verify_method;
  Alcotest.(check bool) "merges > 0" true (r.Sweep.merges > 0);
  Alcotest.(check int) "pis" (Ntk.num_pis ntk) (Ntk.num_pis out)

(* The two classic XOR structures strash differently; the sweep must
   prove them equal (one through complement) and merge. *)
let test_sweep_xor_pair () =
  let t = Ntk.create () in
  let a = Ntk.add_pi t and b = Ntk.add_pi t in
  let x1 = Ntk.add_xor t a b in
  let x2 =
    Ntk.lit_not
      (Ntk.add_or t (Ntk.add_and t a b)
         (Ntk.add_and t (Ntk.lit_not a) (Ntk.lit_not b)))
  in
  ignore (Ntk.add_po t x1);
  ignore (Ntk.add_po t x2);
  let before = Ntk.count_live t in
  let out, r = Sweep.run t in
  Alcotest.(check bool) "verified" true r.Sweep.verified;
  Alcotest.(check bool) "merged" true (r.Sweep.merges >= 1);
  Alcotest.(check bool) "smaller" true (Ntk.count_live out < before);
  check_same_function "xor pair" t out

(* Candidate classes are seeded by simulation, which can only separate
   nodes that genuinely differ: over an exhaustive pattern set, any
   two reachable nodes equal up to complement must share a class. *)
let test_classes_never_separate_equivalent () =
  let pis = 6 in
  let ntk = Ntk_gen.generate ~seed:5 ~pis ~pos:6 ~nodes:250 () in
  let nvars = Ntk.num_vars ntk in
  (* exhaustive signatures: one 64-bit word covers all 2^6 inputs *)
  let ws =
    Array.init pis (fun i ->
        let w = ref 0L in
        for j = 0 to 63 do
          if (j lsr i) land 1 = 1 then w := Int64.logor !w (Int64.shift_left 1L j)
        done;
        !w)
  in
  let sigs = Ntk.simulate_words_all ntk ws in
  let classes = Sweep.candidate_classes ntk in
  let class_of = Array.make nvars (-1) in
  List.iteri
    (fun i cls -> List.iter (fun (v, _) -> class_of.(v) <- i) cls)
    classes;
  (* reachable = appears in some class, or is a singleton; recompute
     reachability the simple way via refcounts from outputs *)
  let reach = Array.make nvars false in
  let rec mark v =
    if not reach.(v) then begin
      reach.(v) <- true;
      if Ntk.is_and ntk v then begin
        mark (Ntk.var_of_lit (Ntk.fanin0 ntk v));
        mark (Ntk.var_of_lit (Ntk.fanin1 ntk v))
      end
    end
  in
  Array.iter (fun l -> mark (Ntk.var_of_lit l)) (Ntk.outputs ntk);
  let violations = ref 0 in
  for u = 0 to nvars - 1 do
    for v = u + 1 to nvars - 1 do
      if
        reach.(u) && reach.(v)
        && (sigs.(u) = sigs.(v) || sigs.(u) = Int64.lognot sigs.(v))
        && (class_of.(u) < 0 || class_of.(u) <> class_of.(v))
      then incr violations
    done
  done;
  Alcotest.(check int) "equivalent nodes never separated" 0 !violations

(* Phases inside a class are rebased onto the representative: member
   [(v, true)] claims v = not rep, and that must hold exhaustively. *)
let test_class_phases () =
  let pis = 6 in
  let ntk = Ntk_gen.generate ~seed:6 ~pis ~pos:6 ~nodes:250 () in
  let ws =
    Array.init pis (fun i ->
        let w = ref 0L in
        for j = 0 to 63 do
          if (j lsr i) land 1 = 1 then w := Int64.logor !w (Int64.shift_left 1L j)
        done;
        !w)
  in
  let sigs = Ntk.simulate_words_all ntk ws in
  List.iter
    (fun cls ->
      match cls with
      | [] -> ()
      | (rep, rep_ph) :: members ->
        Alcotest.(check bool) "rep phase false" false rep_ph;
        List.iter
          (fun (v, ph) ->
            let expect = if ph then Int64.lognot sigs.(rep) else sigs.(rep) in
            (* candidate classes agree with exhaustive simulation only
               when the candidate is real; here every 64-pattern
               signature IS exhaustive, so phase must match exactly *)
            Alcotest.(check bool)
              (Printf.sprintf "phase of %d vs rep %d" v rep)
              true
              (sigs.(v) = expect))
          members)
    (Sweep.candidate_classes ntk)

(* Sweeping before rewriting must not lose ground: the planted
   duplicate cones are invisible to cut-local rewriting but free for
   the sweep, so the composition ends at or below rewrite alone. *)
let test_sweep_then_rewrite_differential () =
  let ntk = Ntk_gen.generate ~seed:7 ~pis:10 ~pos:8 ~nodes:250 () in
  let options =
    { Rewrite.default_options with Rewrite.timeout = 0.3; max_chains = 2 }
  in
  let _, r_alone = Rewrite.run ~options ntk in
  Alcotest.(check bool) "rewrite verified" true r_alone.Rewrite.verified;
  let swept, rs = Sweep.run ntk in
  Alcotest.(check bool) "sweep verified" true rs.Sweep.verified;
  let _, r_after = Rewrite.run ~options swept in
  Alcotest.(check bool) "rewrite-after verified" true r_after.Rewrite.verified;
  Alcotest.(check bool)
    (Printf.sprintf "sweep+rewrite (%d) <= rewrite alone (%d)"
       r_after.Rewrite.ands_after r_alone.Rewrite.ands_after)
    true
    (r_after.Rewrite.ands_after <= r_alone.Rewrite.ands_after)

(* ------------------------------------------------------------------ *)
(* pass pipeline                                                       *)

let identity_pass name =
  { Pass.name; run = Pass.measure ~name (fun ntk -> (ntk, [ ("noop", 1) ])) }

(* A pass that silently corrupts the function: measure's verification
   must catch it and the pipeline must stop there. *)
let corrupt_pass name =
  { Pass.name;
    run =
      Pass.measure ~name (fun ntk ->
          let t = Ntk.create () in
          for _ = 1 to Ntk.num_pis ntk do
            ignore (Ntk.add_pi t)
          done;
          for _ = 1 to Ntk.num_pos ntk do
            ignore (Ntk.add_po t (Ntk.lit_const true))
          done;
          (t, [])) }

let test_pass_registry () =
  Pass.register (identity_pass "t-id");
  Pass.register (identity_pass "t-id2");
  Alcotest.(check bool) "find" true (Pass.find "t-id" <> None);
  Alcotest.(check bool) "missing" true (Pass.find "t-nope" = None);
  (match Pass.parse "t-id,t-id2,t-id" with
  | Ok ps ->
    Alcotest.(check (list string))
      "parse order"
      [ "t-id"; "t-id2"; "t-id" ]
      (List.map (fun (p : Pass.t) -> p.Pass.name) ps)
  | Error e -> Alcotest.fail e);
  match Pass.parse "t-id,bogus" with
  | Ok _ -> Alcotest.fail "bogus pass accepted"
  | Error msg ->
    Alcotest.(check bool) "error names the pass" true (contains ~needle:"bogus" msg)

let test_pipeline_runs_and_aborts () =
  let ntk = Ntk_gen.generate ~seed:8 ~pis:6 ~pos:4 ~nodes:80 () in
  (* all-good pipeline: identity twice, function preserved *)
  let out, stats =
    Pass.run_pipeline [ identity_pass "t-id"; identity_pass "t-id2" ] ntk
  in
  Alcotest.(check int) "two rows" 2 (List.length stats);
  List.iter
    (fun (s : Pass.stats) ->
      Alcotest.(check bool) (s.Pass.pass ^ " verified") true s.Pass.verified)
    stats;
  check_same_function "identity pipeline" ntk out;
  (* corrupting middle pass: pipeline stops, later pass never runs,
     the returned network is the failed pass's input *)
  let ran_last = ref false in
  let probe =
    { Pass.name = "t-probe";
      run =
        Pass.measure ~name:"t-probe" (fun ntk ->
            ran_last := true;
            (ntk, [])) }
  in
  let out2, stats2 =
    Pass.run_pipeline
      [ identity_pass "t-id"; corrupt_pass "t-bad"; probe ]
      ntk
  in
  Alcotest.(check int) "rows up to failure" 2 (List.length stats2);
  let bad = List.nth stats2 1 in
  Alcotest.(check string) "failed row" "t-bad" bad.Pass.pass;
  Alcotest.(check bool) "failed row unverified" false bad.Pass.verified;
  Alcotest.(check bool) "later pass never ran" false !ran_last;
  check_same_function "abort returns failed pass input" ntk out2

let test_sweep_as_pass () =
  let ntk = Ntk_gen.generate ~seed:9 ~pis:8 ~pos:6 ~nodes:300 () in
  let p = Sweep.pass () in
  Alcotest.(check string) "name" "sweep" p.Pass.name;
  let out, s = p.Pass.run ntk in
  Alcotest.(check bool) "verified" true s.Pass.verified;
  Alcotest.(check bool) "has merges detail" true
    (List.mem_assoc "merges" s.Pass.detail);
  Alcotest.(check int) "ands_after consistent" (Ntk.count_live out)
    s.Pass.ands_after;
  check_same_function "sweep pass" ntk out

(* ------------------------------------------------------------------ *)
(* streaming AIGER regression                                          *)

(* A >50k-node generated netlist through both writers and back: the
   single-pass buffered reader must reproduce the function exactly
   (reading re-strashes, so compare semantically, not structurally). *)
let test_aiger_large_roundtrip () =
  let ntk = Ntk_gen.generate ~seed:10 ~pis:32 ~pos:16 ~nodes:55_000 () in
  Alcotest.(check bool) "large enough" true (Ntk.count_live ntk > 50_000);
  let bin = Aiger.to_binary ntk in
  let back = Aiger.of_string bin in
  Alcotest.(check int) "binary pis" (Ntk.num_pis ntk) (Ntk.num_pis back);
  Alcotest.(check int) "binary pos" (Ntk.num_pos ntk) (Ntk.num_pos back);
  let ok, how = Pass.verify_equivalent ntk back in
  Alcotest.(check bool) ("binary roundtrip " ^ how) true ok;
  let path = Filename.temp_file "sweep_big" ".aag" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Aiger.write_file path ntk;
      let back2 = Aiger.read_file path in
      let ok2, how2 = Pass.verify_equivalent ntk back2 in
      Alcotest.(check bool) ("ascii roundtrip " ^ how2) true ok2)

(* Malformed-input errors carry the index of the offending record. *)
let test_aiger_indexed_errors () =
  let t = Ntk.create () in
  let a = Ntk.add_pi t and b = Ntk.add_pi t in
  let x = Ntk.add_and t a b in
  let y = Ntk.add_and t x (Ntk.lit_not b) in
  ignore (Ntk.add_po t y);
  let bin = Aiger.to_binary t in
  (* chop the last byte: the final AND's delta encoding is truncated *)
  let truncated = String.sub bin 0 (String.length bin - 1) in
  match Aiger.of_string truncated with
  | _ -> Alcotest.fail "truncated binary accepted"
  | exception Failure msg ->
    Alcotest.(check bool)
      (Printf.sprintf "error is indexed: %S" msg)
      true
      (contains ~needle:"AND" msg)

let () =
  Alcotest.run "sweep"
    [ ( "sweep",
        [ Alcotest.test_case "planted exhaustive" `Quick
            test_sweep_planted_exhaustive;
          Alcotest.test_case "random verify" `Quick test_sweep_random_verify;
          Alcotest.test_case "xor pair" `Quick test_sweep_xor_pair;
          Alcotest.test_case "classes safe" `Quick
            test_classes_never_separate_equivalent;
          Alcotest.test_case "class phases" `Quick test_class_phases;
          Alcotest.test_case "sweep+rewrite differential" `Quick
            test_sweep_then_rewrite_differential ] );
      ( "pass",
        [ Alcotest.test_case "registry" `Quick test_pass_registry;
          Alcotest.test_case "pipeline" `Quick test_pipeline_runs_and_aborts;
          Alcotest.test_case "sweep as pass" `Quick test_sweep_as_pass ] );
      ( "aiger-large",
        [ Alcotest.test_case "roundtrip >50k" `Quick test_aiger_large_roundtrip;
          Alcotest.test_case "indexed errors" `Quick test_aiger_indexed_errors
        ] ) ]
