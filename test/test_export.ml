(* Tests for the chain export formats. *)

module Chain = Stp_chain.Chain
module Export = Stp_chain.Export
module Tt = Stp_tt.Tt
module Prng = Stp_util.Prng

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1))
  in
  scan 0

let sample =
  Chain.make ~n:3
    ~steps:
      [ { Chain.fanin1 = 0; fanin2 = 1; gate = 6 };
        { Chain.fanin1 = 3; fanin2 = 2; gate = 7 } ]
    ~output:4 ()

let test_verilog_structure () =
  let v = Export.to_verilog ~module_name:"m" sample in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains v needle))
    [ "module m(x1, x2, x3, f);"; "input x1;"; "output f;";
      "assign w4 = x1 ^ x2;"; "assign w5 = ~(w4 & x3);"; "assign f = w5;";
      "endmodule" ]

let test_verilog_negated_output () =
  let c = Chain.make ~n:2 ~steps:[] ~output:0 ~output_negated:true () in
  Alcotest.(check bool) "negated" true
    (contains (Export.to_verilog c) "assign f = ~x1;")

let test_verilog_all_gates () =
  (* every gate code must render to a parsable expression *)
  for g = 0 to 15 do
    let c =
      Chain.make ~n:2 ~steps:[ { Chain.fanin1 = 0; fanin2 = 1; gate = g } ]
        ~output:2 ()
    in
    let v = Export.to_verilog c in
    Alcotest.(check bool) "has assign" true (contains v "assign w3 = ")
  done

let test_blif_tables () =
  let b = Export.to_blif sample in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains b needle))
    [ ".model chain"; ".inputs x1 x2 x3"; ".outputs f";
      ".names x1 x2 w4"; "01 1"; "10 1"; ".names w4 x3 w5"; ".end" ];
  (* XOR table must not include 00 or 11 *)
  Alcotest.(check bool) "xor no 11 row" false (contains b "11 1\n01 1")

let test_blif_row_counts () =
  (* the number of ON rows equals the gate's popcount *)
  for g = 1 to 14 do
    let c =
      Chain.make ~n:2 ~steps:[ { Chain.fanin1 = 0; fanin2 = 1; gate = g } ]
        ~output:2 ()
    in
    let b = Export.to_blif c in
    let rows = ref 0 in
    String.split_on_char '\n' b
    |> List.iter (fun line ->
           if String.length line = 4 && line.[2] = ' ' && line.[3] = '1' then
             incr rows);
    let expected =
      let rec pop x = if x = 0 then 0 else (x land 1) + pop (x lsr 1) in
      pop g
    in
    Alcotest.(check int) (Printf.sprintf "gate %d rows" g) expected !rows
  done

(* Round trips: exported text, re-read with the netlist parsers, must
   simulate exactly like the chain on all 2^n assignments. *)

let random_chain rng ~n ~steps:k =
  let steps =
    List.init k (fun i ->
        let hi = n + i in
        let f1 = Prng.int rng hi in
        let f2 = (f1 + 1 + Prng.int rng (hi - 1)) mod hi in
        { Chain.fanin1 = f1; fanin2 = f2; gate = Prng.int rng 16 })
  in
  Chain.make ~n ~steps ~output:(n + k - 1)
    ~output_negated:(Prng.bool rng) ()

let check_chain_roundtrip msg parse export c =
  let ntk = parse (export c) in
  Alcotest.(check int) (msg ^ ": pis") c.Chain.n
    (Stp_network.Ntk.num_pis ntk);
  Alcotest.(check int) (msg ^ ": pos") 1 (Stp_network.Ntk.num_pos ntk);
  Alcotest.(check bool) msg true
    (Tt.equal (Chain.simulate c) (Stp_network.Ntk.simulate ntk).(0))

let test_blif_roundtrip () =
  let rng = Prng.create 41 in
  for _ = 1 to 150 do
    let n = 2 + Prng.int rng 5 in
    let c = random_chain rng ~n ~steps:(1 + Prng.int rng 8) in
    check_chain_roundtrip "blif" Stp_network.Blif.of_string
      (fun c -> Export.to_blif c)
      c
  done

let test_verilog_roundtrip () =
  let rng = Prng.create 43 in
  for _ = 1 to 150 do
    let n = 2 + Prng.int rng 5 in
    let c = random_chain rng ~n ~steps:(1 + Prng.int rng 8) in
    check_chain_roundtrip "verilog" Stp_network.Verilog.of_string
      (fun c -> Export.to_verilog c)
      c
  done

let test_dot_shape () =
  let d = Export.to_dot sample in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains d needle))
    [ "digraph chain"; "w4 [shape=box,label=\"XOR\"]"; "x1 -> w4";
      "w5 -> f"; "}" ]

let () =
  Alcotest.run "export"
    [ ( "verilog",
        [ Alcotest.test_case "structure" `Quick test_verilog_structure;
          Alcotest.test_case "negated output" `Quick test_verilog_negated_output;
          Alcotest.test_case "all gates render" `Quick test_verilog_all_gates ] );
      ( "blif",
        [ Alcotest.test_case "tables" `Quick test_blif_tables;
          Alcotest.test_case "row counts" `Quick test_blif_row_counts ] );
      ( "roundtrip",
        [ Alcotest.test_case "blif reparses" `Quick test_blif_roundtrip;
          Alcotest.test_case "verilog reparses" `Quick test_verilog_roundtrip
        ] );
      ( "dot",
        [ Alcotest.test_case "shape" `Quick test_dot_shape ] ) ]
