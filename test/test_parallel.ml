(* Tests for the domain pool: result ordering, exception propagation,
   degenerate domain counts, pool reuse, and — the property the
   experiment harness depends on — a parallel [run_collection]
   aggregating exactly like the sequential one. *)

module Pool = Stp_parallel.Pool
module Runner = Stp_harness.Runner
module Npn_cache = Stp_synth.Npn_cache

let test_map_preserves_order () =
  let items = List.init 100 Fun.id in
  let expect = List.map (fun x -> x * x) items in
  List.iter
    (fun domains ->
      Alcotest.(check (list int))
        (Printf.sprintf "order with %d domains" domains)
        expect
        (Pool.map ~domains (fun x -> x * x) items))
    [ 1; 2; 4; 8 ]

let test_map_empty_and_few_items () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~domains:4 Fun.id []);
  Alcotest.(check (list int))
    "more domains than items" [ 10; 20; 30 ]
    (Pool.map ~domains:8 (fun x -> 10 * x) [ 1; 2; 3 ])

let test_map_propagates_first_exception () =
  (* All items run; the lowest-index failure is the one re-raised, so
     the observed exception does not depend on scheduling. *)
  let ran = Array.make 10 false in
  Alcotest.check_raises "lowest-index failure" (Failure "boom-5") (fun () ->
      ignore
        (Pool.map ~domains:4
           (fun x ->
             ran.(x) <- true;
             if x >= 5 then failwith (Printf.sprintf "boom-%d" x);
             x)
           (List.init 10 Fun.id)));
  Alcotest.(check bool) "all items attempted" true (Array.for_all Fun.id ran)

let test_invalid_domains () =
  Alcotest.check_raises "zero domains" (Invalid_argument "Pool.create: domains < 1")
    (fun () -> ignore (Pool.map ~domains:0 Fun.id [ 1 ]))

let test_pool_reuse_and_shutdown () =
  let pool = Pool.create ~domains:3 () in
  Alcotest.(check int) "size" 3 (Pool.size pool);
  let a = Pool.exec pool (fun x -> x + 1) [ 1; 2; 3 ] in
  let b = Pool.exec pool string_of_int [ 4; 5 ] in
  Alcotest.(check (list int)) "first batch" [ 2; 3; 4 ] a;
  Alcotest.(check (list string)) "second batch, new type" [ "4"; "5" ] b;
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "exec after shutdown"
    (Invalid_argument "Pool.exec: pool is shut down") (fun () ->
      ignore (Pool.exec pool Fun.id [ 1 ]))

let test_heavy_items_balance () =
  (* Uneven work must still come back in order. *)
  let items = List.init 24 Fun.id in
  let f x =
    let n = if x mod 7 = 0 then 200_000 else 100 in
    let acc = ref 0 in
    for i = 1 to n do
      acc := (!acc + (i * x)) land 0xFFFF
    done;
    (x, !acc)
  in
  Alcotest.(check (list (pair int int)))
    "deterministic results" (List.map f items)
    (Pool.map ~domains:4 f items)

(* --- Profile self-time semantics under the pool --- *)

module Profile = Stp_util.Profile

let spin_ns ns =
  let t0 = Profile.now_ns () in
  while Profile.now_ns () - t0 < ns do
    ()
  done

let test_profile_self_time_under_pool () =
  (* Nested stages on pool workers: counters must sum exactly across
     domains, and a stage's time must be *self* time — the nested
     stage's share is attributed to the inner stage only. Each task
     busy-waits 2 ms inside [Verify] and 5 ms inside a nested
     [Canonical]; if nesting were not subtracted, Verify would read
     >= 16 * 7 ms = 112 ms instead of ~32 ms. *)
  Profile.reset ();
  Profile.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Profile.set_enabled false;
      Profile.reset ())
    (fun () ->
      let items = List.init 16 Fun.id in
      ignore
        (Pool.map ~domains:4
           (fun _ ->
             Profile.time Profile.Verify (fun () ->
                 Profile.incr Profile.Chains_verified;
                 spin_ns 2_000_000;
                 Profile.time Profile.Canonical (fun () ->
                     Profile.incr Profile.Cube_merges;
                     spin_ns 5_000_000)))
           items);
      let snap = Profile.snapshot () in
      let count name = List.assoc name snap.Profile.counts in
      Alcotest.(check int) "Chains_verified sums exactly" 16
        (count (Profile.counter_name Profile.Chains_verified));
      Alcotest.(check int) "Cube_merges sums exactly" 16
        (count (Profile.counter_name Profile.Cube_merges));
      let stage s =
        List.find
          (fun (st : Profile.stage_snapshot) ->
            st.Profile.stage = Profile.stage_name s)
          snap.Profile.stages
      in
      let verify = stage Profile.Verify and canon = stage Profile.Canonical in
      Alcotest.(check int) "verify called once per item" 16 verify.Profile.calls;
      Alcotest.(check int) "canonical called once per item" 16
        canon.Profile.calls;
      (* Hard lower bounds: the busy-waits are measured with the same
         clock the profiler reads. *)
      Alcotest.(check bool) "verify self time covers its own spin" true
        (verify.Profile.self_s >= 0.032);
      Alcotest.(check bool) "canonical self time covers its spin" true
        (canon.Profile.self_s >= 0.080);
      (* The nesting property, with a wide scheduling-noise margin:
         well under the 0.112 s a non-self accounting would report. *)
      Alcotest.(check bool)
        (Printf.sprintf "verify excludes nested canonical (self %.3fs)"
           verify.Profile.self_s)
        true
        (verify.Profile.self_s < 0.08))

(* --- the harness property: parallel == sequential aggregates --- *)

let small_collection () =
  (* DSD-friendly 6-input functions the STP engine solves in
     milliseconds: cheap enough for CI, varied enough to be a real
     aggregate. *)
  Stp_workloads.Dsd_gen.fdsd_collection ~n:6 ~count:10 ~seed:77

let test_parallel_aggregate_equals_sequential () =
  let fns = small_collection () in
  let seq = Runner.run_collection ~timeout:60.0 ~jobs:1 Runner.stp_engine fns in
  let par = Runner.run_collection ~timeout:60.0 ~jobs:4 Runner.stp_engine fns in
  Alcotest.(check string) "name" seq.Runner.name par.Runner.name;
  Alcotest.(check int) "solved" seq.Runner.solved par.Runner.solved;
  Alcotest.(check int) "timeouts" seq.Runner.timeouts par.Runner.timeouts;
  Alcotest.(check (list (pair int int)))
    "optima histogram" seq.Runner.optima par.Runner.optima;
  Alcotest.(check (float 1e-9))
    "mean solutions" seq.Runner.mean_solutions par.Runner.mean_solutions

let test_cached_aggregate_matches_uncached () =
  let fns = small_collection () in
  let base = Runner.run_collection ~timeout:60.0 Runner.stp_engine fns in
  let cache = Npn_cache.create () in
  let cached =
    Runner.run_collection ~timeout:60.0 ~jobs:4 ~cache Runner.stp_engine fns
  in
  Alcotest.(check int) "solved" base.Runner.solved cached.Runner.solved;
  Alcotest.(check int) "timeouts" base.Runner.timeouts cached.Runner.timeouts;
  Alcotest.(check (list (pair int int)))
    "optima histogram" base.Runner.optima cached.Runner.optima;
  Alcotest.(check int) "every lookup accounted" (List.length fns)
    (cached.Runner.cache_hits + cached.Runner.cache_misses)

let test_on_instance_order () =
  let fns = small_collection () in
  let seen = ref [] in
  let on_instance i _f _r = seen := i :: !seen in
  ignore
    (Runner.run_collection ~timeout:60.0 ~jobs:4 ~on_instance Runner.stp_engine
       fns);
  Alcotest.(check (list int))
    "observer sees input order"
    (List.init (List.length fns) Fun.id)
    (List.rev !seen)

let () =
  Alcotest.run "parallel"
    [ ( "pool",
        [ Alcotest.test_case "order preserved" `Quick test_map_preserves_order;
          Alcotest.test_case "empty/few items" `Quick test_map_empty_and_few_items;
          Alcotest.test_case "first exception wins" `Quick
            test_map_propagates_first_exception;
          Alcotest.test_case "invalid domains" `Quick test_invalid_domains;
          Alcotest.test_case "reuse and shutdown" `Quick
            test_pool_reuse_and_shutdown;
          Alcotest.test_case "uneven load, ordered results" `Quick
            test_heavy_items_balance;
          Alcotest.test_case "profile self time under pool" `Quick
            test_profile_self_time_under_pool ] );
      ( "runner",
        [ Alcotest.test_case "parallel == sequential" `Slow
            test_parallel_aggregate_equals_sequential;
          Alcotest.test_case "cached == uncached" `Slow
            test_cached_aggregate_matches_uncached;
          Alcotest.test_case "on_instance order" `Slow test_on_instance_order ] )
    ]
