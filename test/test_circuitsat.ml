(* Tests for LUT networks and the circuit-based AllSAT solver
   (Algorithms 1-2), including the paper's Example 8. *)

module Net = Stp_circuitsat.Lut_network
module Solver = Stp_circuitsat.Circuit_solver
module Chain = Stp_chain.Chain
module Tt = Stp_tt.Tt
module Prng = Stp_util.Prng

let example7_chain =
  (* x5 = XOR(c,d); x6 = AND(a,b); x7 = OR(x5,x6), computing 0x8ff8 *)
  Chain.make ~n:4
    ~steps:
      [ { Chain.fanin1 = 2; fanin2 = 3; gate = 6 };
        { Chain.fanin1 = 0; fanin2 = 1; gate = 8 };
        { Chain.fanin1 = 4; fanin2 = 5; gate = 14 } ]
    ~output:6 ()

let test_network_validation () =
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Lut_network.make: arity mismatch") (fun () ->
      ignore
        (Net.make ~num_inputs:2
           ~luts:[ { Net.tt = Tt.of_int 2 6; fanins = [| 0 |] } ]
           ~outputs:[ 2 ]));
  Alcotest.check_raises "no outputs"
    (Invalid_argument "Lut_network.make: no outputs") (fun () ->
      ignore (Net.make ~num_inputs:2 ~luts:[] ~outputs:[]))

let test_of_chain_simulates () =
  let rng = Prng.create 11 in
  for _ = 1 to 200 do
    let n = 2 + Prng.int rng 3 in
    let k = 1 + Prng.int rng 4 in
    let steps =
      List.init k (fun i ->
          let hi = n + i in
          let f1 = Prng.int rng hi in
          let f2 = (f1 + 1 + Prng.int rng (hi - 1)) mod hi in
          { Chain.fanin1 = f1; fanin2 = f2; gate = Prng.int rng 16 })
    in
    let c =
      Chain.make ~n ~steps ~output:(n + k - 1) ~output_negated:(Prng.bool rng) ()
    in
    let net = Net.of_chain c in
    let sim = (Net.simulate net).(0) in
    Alcotest.(check bool) "network = chain" true
      (Tt.equal sim (Chain.simulate c))
  done

let test_of_chain_negated_input_output () =
  (* output pointing at a complemented primary input needs an inverter *)
  let c = Chain.make ~n:2 ~steps:[] ~output:1 ~output_negated:true () in
  let net = Net.of_chain c in
  Alcotest.(check bool) "inverter added" true (Net.size net = 1);
  Alcotest.(check bool) "simulates" true
    (Tt.equal (Net.simulate net).(0) (Tt.bnot (Tt.var 2 1)))

let test_cube_merge () =
  let a = { Solver.mask = 0b011; value = 0b001 } in
  let b = { Solver.mask = 0b110; value = 0b100 } in
  (match Solver.cube_merge a b with
   | Some c ->
     Alcotest.(check int) "mask" 0b111 c.Solver.mask;
     Alcotest.(check int) "value" 0b101 c.Solver.value
   | None -> Alcotest.fail "expected merge");
  let conflicting = { Solver.mask = 0b001; value = 0b000 } in
  Alcotest.(check bool) "conflict" false (Solver.cube_compatible a conflicting)

let test_duplicate_cubes_dedup () =
  (* Two identical LUTs as two outputs: the per-output cube sets are
     identical, so every pairwise merge re-derives the same cubes — the
     key-based dedup must collapse them to one copy each. *)
  let or2 = Tt.of_int 2 0b1110 in
  let net =
    Net.make ~num_inputs:2
      ~luts:
        [ { Net.tt = or2; fanins = [| 0; 1 |] };
          { Net.tt = or2; fanins = [| 0; 1 |] } ]
      ~outputs:[ 2; 3 ]
  in
  let cubes = Solver.solve net ~targets:[| true; true |] in
  let keys = List.map (fun c -> (c.Solver.mask, c.Solver.value)) cubes in
  Alcotest.(check bool) "no duplicate cubes" true
    (List.length keys = List.length (List.sort_uniq compare keys));
  Alcotest.(check int) "or onset" 3
    (Solver.count_solutions net ~targets:[| true; true |]);
  Alcotest.(check bool) "onset = or" true
    (Tt.equal (Solver.onset net ~targets:[| true; true |]) or2);
  (* Subsumption: merging against {a=1} yields both the short cube
     {a=1} and the longer {a=1,b=1}; the latter is subsumed and must be
     dropped. (Network traversal alone cannot trigger this — every cube
     of a per-signal set fixes the signal's whole input cone, so those
     sets are mask-uniform — but MERGE is also used to combine arbitrary
     sets.) *)
  let a1 = { Solver.mask = 0b01; value = 0b01 } in
  let ab = { Solver.mask = 0b11; value = 0b11 } in
  let merged = Solver.merge_sets [ a1 ] [ a1; ab ] in
  Alcotest.(check int) "subsumed to a single cube" 1 (List.length merged);
  (match merged with
   | [ c ] ->
     Alcotest.(check int) "survivor mask" 0b01 c.Solver.mask;
     Alcotest.(check int) "survivor value" 0b01 c.Solver.value
   | _ -> ())

let test_example8 () =
  (* The paper finds ten satisfying assignments for the Example 7 chain. *)
  let net = Net.of_chain example7_chain in
  Alcotest.(check int) "ten solutions" 10
    (Solver.count_solutions net ~targets:[| true |]);
  let f = Tt.of_hex ~n:4 "8ff8" in
  Alcotest.(check bool) "onset = f" true
    (Tt.equal (Solver.onset net ~targets:[| true |]) f);
  Alcotest.(check bool) "verify" true (Solver.verify_chain example7_chain f)

let test_onset_equals_simulation () =
  (* onset via backward target propagation must equal forward simulation *)
  let rng = Prng.create 13 in
  for _ = 1 to 100 do
    let n = 2 + Prng.int rng 3 in
    let k = 1 + Prng.int rng 4 in
    let steps =
      List.init k (fun i ->
          let hi = n + i in
          let f1 = Prng.int rng hi in
          let f2 = (f1 + 1 + Prng.int rng (hi - 1)) mod hi in
          { Chain.fanin1 = f1; fanin2 = f2; gate = Prng.int rng 16 })
    in
    let c = Chain.make ~n ~steps ~output:(n + k - 1) () in
    let net = Net.of_chain c in
    let sim = Chain.simulate c in
    Alcotest.(check bool) "onset(1) = f" true
      (Tt.equal (Solver.onset net ~targets:[| true |]) sim);
    Alcotest.(check bool) "onset(0) = !f" true
      (Tt.equal (Solver.onset net ~targets:[| false |]) (Tt.bnot sim))
  done

let test_multi_output_merge () =
  (* two outputs: AND(a,b) and XOR(a,b); requiring (1,0) forces a=b=1...
     AND=1 needs a=1,b=1; XOR then is 0: consistent; count = 1 over 2 vars *)
  let net =
    Net.make ~num_inputs:2
      ~luts:
        [ { Net.tt = Tt.of_int 2 0b1000; fanins = [| 0; 1 |] };
          { Net.tt = Tt.of_int 2 0b0110; fanins = [| 0; 1 |] } ]
      ~outputs:[ 2; 3 ]
  in
  Alcotest.(check int) "and=1 xor=0" 1
    (Solver.count_solutions net ~targets:[| true; false |]);
  Alcotest.(check int) "and=1 xor=1" 0
    (Solver.count_solutions net ~targets:[| true; true |]);
  Alcotest.(check bool) "unsat detected" false
    (Solver.is_sat net ~targets:[| true; true |])

let test_three_input_luts () =
  (* a MAJ3 LUT network *)
  let maj = Tt.of_hex ~n:3 "e8" in
  let net =
    Net.make ~num_inputs:3
      ~luts:[ { Net.tt = maj; fanins = [| 0; 1; 2 |] } ]
      ~outputs:[ 3 ]
  in
  Alcotest.(check int) "maj onset" 4
    (Solver.count_solutions net ~targets:[| true |]);
  Alcotest.(check bool) "onset correct" true
    (Tt.equal (Solver.onset net ~targets:[| true |]) maj)

let test_all_minterms_sorted () =
  let net = Net.of_chain example7_chain in
  let ms = Solver.all_minterms net ~targets:[| true |] in
  Alcotest.(check int) "ten minterms" 10 (List.length ms);
  Alcotest.(check bool) "sorted" true (List.sort compare ms = ms)

let test_fanouts () =
  let net = Net.of_chain example7_chain in
  let fo = Net.fanouts net in
  (* every PI feeds exactly one LUT; x5 and x6 feed the OR *)
  List.iter (fun i -> Alcotest.(check int) "pi fanout" 1 fo.(i)) [ 0; 1; 2; 3 ];
  Alcotest.(check int) "x7 fanout" 0 fo.(6)

let test_verify_rejects_wrong () =
  let f = Tt.of_hex ~n:4 "8ff8" in
  let wrong = Tt.bnot f in
  Alcotest.(check bool) "rejects" false (Solver.verify_chain example7_chain wrong)

let qcheck_count_equals_popcount =
  QCheck.Test.make ~name:"count_solutions = count_ones of simulation"
    ~count:60
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 2 + Prng.int rng 2 in
      let k = 1 + Prng.int rng 3 in
      let steps =
        List.init k (fun i ->
            let hi = n + i in
            let f1 = Prng.int rng hi in
            let f2 = (f1 + 1 + Prng.int rng (hi - 1)) mod hi in
            { Chain.fanin1 = f1; fanin2 = f2; gate = Prng.int rng 16 })
      in
      let c = Chain.make ~n ~steps ~output:(n + k - 1) () in
      let net = Net.of_chain c in
      Solver.count_solutions net ~targets:[| true |]
      = Tt.count_ones (Chain.simulate c))

let () =
  Alcotest.run "circuitsat"
    [ ( "network",
        [ Alcotest.test_case "validation" `Quick test_network_validation;
          Alcotest.test_case "of_chain simulates" `Quick test_of_chain_simulates;
          Alcotest.test_case "negated trivial output" `Quick
            test_of_chain_negated_input_output;
          Alcotest.test_case "fanouts" `Quick test_fanouts ] );
      ( "solver",
        [ Alcotest.test_case "cube merge" `Quick test_cube_merge;
          Alcotest.test_case "duplicate cubes dedup" `Quick
            test_duplicate_cubes_dedup;
          Alcotest.test_case "example 8" `Quick test_example8;
          Alcotest.test_case "onset = simulation" `Quick
            test_onset_equals_simulation;
          Alcotest.test_case "multi-output merge" `Quick test_multi_output_merge;
          Alcotest.test_case "3-input LUTs" `Quick test_three_input_luts;
          Alcotest.test_case "minterms sorted" `Quick test_all_minterms_sorted;
          Alcotest.test_case "verify rejects wrong target" `Quick
            test_verify_rejects_wrong;
          QCheck_alcotest.to_alcotest qcheck_count_equals_popcount ] ) ]
