(* Fork-based integration tests for the synthesis daemon. They live in
   their own binary because OCaml 5 refuses [Unix.fork] once any other
   domain has been spawned in the process — the parent here must stay
   domain-free (the forked daemons use [jobs = 1], which spawns none
   either). *)

module Tt = Stp_tt.Tt
module Report = Stp_harness.Report
module Store = Stp_store.Store
module Daemon = Stp_store.Daemon

let get_string key json =
  match Report.member key json with
  | Some (Report.String s) -> Some s
  | _ -> None

let parse_response line =
  match Report.of_string line with
  | Ok json -> json
  | Error msg -> Alcotest.failf "unparseable response %S: %s" line msg

let temp_path () =
  let path = Filename.temp_file "stp_daemon_test" ".npn" in
  Sys.remove path;
  path

let spawn_daemon ~store_path =
  let req_r, req_w = Unix.pipe ~cloexec:false () in
  let resp_r, resp_w = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 ->
    Unix.close req_w;
    Unix.close resp_r;
    let store = Store.load ~path:store_path in
    (try
       Daemon.serve ~input:req_r ~output:resp_w
         { Daemon.default_config with Daemon.store = Some store }
     with _ -> ());
    Unix._exit 0
  | pid ->
    Unix.close req_r;
    Unix.close resp_w;
    (pid, Unix.out_channel_of_descr req_w, Unix.in_channel_of_descr resp_r)

let test_daemon_end_to_end () =
  let store_path = temp_path () in
  (* Cold daemon: three requests, all solved by the solver. *)
  let pid, req, resp = spawn_daemon ~store_path in
  List.iter
    (fun line ->
      output_string req (line ^ "\n");
      flush req)
    [ Daemon.request ~id:1 ~n:4 "8ff8";
      Daemon.request ~id:2 ~n:3 "e8";
      Daemon.request ~id:3 ~n:4 "6996" ];
  let responses = List.init 3 (fun _ -> parse_response (input_line resp)) in
  List.iteri
    (fun i r ->
      Alcotest.(check (option string))
        (Printf.sprintf "request %d solved" (i + 1))
        (Some "solved") (get_string "status" r);
      Alcotest.(check bool)
        (Printf.sprintf "request %d id echoed" (i + 1))
        true
        (Report.member "id" r = Some (Report.Int (i + 1))))
    responses;
  (* SIGTERM, not EOF: the daemon must flush the store and exit
     cleanly. *)
  Unix.kill pid Sys.sigterm;
  let _, status = Unix.waitpid [] pid in
  Alcotest.(check bool) "daemon exited cleanly on SIGTERM" true
    (status = Unix.WEXITED 0);
  let store = Store.load ~path:store_path in
  let st = Store.stats store in
  Alcotest.(check int) "store reloads uncorrupted" 0 st.Store.skipped;
  Alcotest.(check int) "three classes persisted" 3 st.Store.classes;
  (* Warm restart: the same request must now be answered from the
     persisted cache without a solver call. *)
  let pid, req, resp = spawn_daemon ~store_path in
  output_string req (Daemon.request ~id:9 ~n:4 "8ff8" ^ "\n");
  flush req;
  let r = parse_response (input_line resp) in
  Alcotest.(check (option string)) "warm restart hits the cache"
    (Some "cache") (get_string "source" r);
  close_out req;
  let _, status = Unix.waitpid [] pid in
  Alcotest.(check bool) "daemon exits on EOF" true (status = Unix.WEXITED 0);
  Sys.remove store_path

let get_float key json =
  Option.bind (Report.member key json) Report.to_float_opt

let member_path json path =
  List.fold_left
    (fun acc key -> Option.bind acc (Report.member key))
    (Some json) path

let test_daemon_ping_and_stats () =
  let store_path = temp_path () in
  let pid, req, resp = spawn_daemon ~store_path in
  let ask line =
    output_string req (line ^ "\n");
    flush req;
    parse_response (input_line resp)
  in
  (* Ping: liveness, version, uptime, store path. *)
  let pong = ask (Daemon.control ~id:1 "ping") in
  Alcotest.(check (option string)) "pong" (Some "pong")
    (get_string "status" pong);
  Alcotest.(check (option string)) "version" (Some Daemon.version)
    (get_string "version" pong);
  Alcotest.(check bool) "uptime present" true
    (match get_float "uptime_s" pong with Some u -> u >= 0.0 | None -> false);
  Alcotest.(check (option string)) "store path echoed" (Some store_path)
    (get_string "store" pong);
  Alcotest.(check bool) "ping id echoed" true
    (Report.member "id" pong = Some (Report.Int 1));
  (* One solver answer and one cache replay populate the per-source
     latency histograms. *)
  let r1 = ask (Daemon.request ~id:2 ~n:4 "8ff8") in
  Alcotest.(check (option string)) "first solve" (Some "solver")
    (get_string "source" r1);
  let r2 = ask (Daemon.request ~id:3 ~n:4 "8ff8") in
  Alcotest.(check (option string)) "replayed" (Some "cache")
    (get_string "source" r2);
  (* Stats: uptime, counts, store block, per-source histograms with
     populated quantiles. *)
  let stats = ask (Daemon.control ~id:4 "stats") in
  Alcotest.(check (option string)) "stats ok" (Some "ok")
    (get_string "status" stats);
  (match Report.member "requests" stats with
   | Some (Report.Int n) ->
     Alcotest.(check bool) "requests counted" true (n >= 4)
   | _ -> Alcotest.fail "requests count missing");
  (match member_path stats [ "store"; "classes" ] with
   | Some (Report.Int 1) -> ()
   | _ -> Alcotest.fail "store stats must report the one absorbed class");
  let hist_quantile source q =
    match
      member_path stats [ "telemetry"; "histograms"; "synthd/source/" ^ source; q ]
    with
    | Some v -> Report.to_float_opt v
    | None -> None
  in
  List.iter
    (fun source ->
      (match hist_quantile source "p50_s" with
       | Some p ->
         Alcotest.(check bool)
           (Printf.sprintf "%s p50 populated" source)
           true (p > 0.0)
       | None -> Alcotest.failf "histogram synthd/source/%s missing p50" source);
      match hist_quantile source "p99_s" with
      | Some p ->
        Alcotest.(check bool)
          (Printf.sprintf "%s p99 populated" source)
          true (p > 0.0)
      | None -> Alcotest.failf "histogram synthd/source/%s missing p99" source)
    [ "solver"; "cache" ];
  (match
     member_path stats [ "telemetry"; "histograms"; "synthd/batch"; "count" ]
   with
   | Some (Report.Int n) ->
     Alcotest.(check bool) "batch histogram populated" true (n >= 1)
   | _ -> Alcotest.fail "synthd/batch histogram missing");
  (* Unknown control types are rejected, not treated as synthesis. *)
  let bad = ask (Daemon.control ~id:5 "frobnicate") in
  Alcotest.(check (option string)) "unknown type errors" (Some "error")
    (get_string "status" bad);
  close_out req;
  let _, status = Unix.waitpid [] pid in
  Alcotest.(check bool) "daemon exits on EOF" true (status = Unix.WEXITED 0);
  Sys.remove store_path

let test_daemon_socket_round_trip () =
  let sock_path = Filename.temp_file "stp_synthd" ".sock" in
  Sys.remove sock_path;
  match Unix.fork () with
  | 0 ->
    (try
       Daemon.serve { Daemon.default_config with Daemon.socket = sock_path }
     with _ -> ());
    Unix._exit 0
  | pid ->
    (* No polling for the socket to appear: [Daemon.client] retries the
       connect with backoff until the daemon binds. *)
    let responses =
      Daemon.client ~socket:sock_path
        [ Daemon.request ~id:1 ~n:3 "96"; Daemon.request ~id:2 ~n:3 "e8" ]
    in
    Alcotest.(check int) "two responses" 2 (List.length responses);
    List.iter
      (fun line ->
        Alcotest.(check (option string)) "socket request solved"
          (Some "solved")
          (get_string "status" (parse_response line)))
      responses;
    Unix.kill pid Sys.sigterm;
    let _, status = Unix.waitpid [] pid in
    Alcotest.(check bool) "socket daemon exits on SIGTERM" true
      (status = Unix.WEXITED 0)

let () =
  Alcotest.run "daemon"
    [ ( "daemon",
        [ Alcotest.test_case "stdin end-to-end with SIGTERM" `Slow
            test_daemon_end_to_end;
          Alcotest.test_case "ping and stats" `Slow test_daemon_ping_and_stats;
          Alcotest.test_case "socket round trip" `Slow
            test_daemon_socket_round_trip ] ) ]
