(* Tests for the utility substrate: PRNG determinism and distribution
   sanity, Vec semantics, deadline behaviour. *)

module Prng = Stp_util.Prng
module Vec = Stp_util.Vec
module Deadline = Stp_util.Deadline

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.next_int64 a) (Prng.next_int64 b)) then
      differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_prng_copy_independent () =
  let a = Prng.create 7 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copies aligned" (Prng.next_int64 a) (Prng.next_int64 b)

let test_prng_int_bounds () =
  let g = Prng.create 5 in
  for _ = 1 to 1000 do
    let v = Prng.int g 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_prng_int_covers () =
  let g = Prng.create 11 in
  let seen = Array.make 4 false in
  for _ = 1 to 200 do
    seen.(Prng.int g 4) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_prng_float_range () =
  let g = Prng.create 3 in
  for _ = 1 to 1000 do
    let f = Prng.float g in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_prng_shuffle_permutes () =
  let g = Prng.create 9 in
  let a = Array.init 20 (fun i -> i) in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort Stdlib.compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 20 (fun i -> i)) sorted

let test_prng_split_diverges () =
  let g = Prng.create 13 in
  let child = Prng.split g in
  Alcotest.(check bool) "diverges" false
    (Int64.equal (Prng.next_int64 g) (Prng.next_int64 child))

let test_vec_push_pop () =
  let v = Vec.create ~dummy:0 () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 1 to 100 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "top" 100 (Vec.top v);
  Alcotest.(check int) "pop" 100 (Vec.pop v);
  Alcotest.(check int) "length after pop" 99 (Vec.length v)

let test_vec_get_set () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
  Vec.set v 1 42;
  Alcotest.(check int) "set/get" 42 (Vec.get v 1);
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Vec.get")
    (fun () -> ignore (Vec.get v 3))

let test_vec_shrink_clear () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3; 4 ] in
  Vec.shrink v 2;
  Alcotest.(check (list int)) "shrunk" [ 1; 2 ] (Vec.to_list v);
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v)

let test_vec_iter_fold () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
  let sum = Vec.fold_left ( + ) 0 v in
  Alcotest.(check int) "fold" 6 sum;
  let acc = ref [] in
  Vec.iter (fun x -> acc := x :: !acc) v;
  Alcotest.(check (list int)) "iter order" [ 3; 2; 1 ] !acc

let test_vec_exists () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 2) v);
  Alcotest.(check bool) "not exists" false (Vec.exists (fun x -> x = 9) v)

let test_deadline_never () =
  Alcotest.(check bool) "never expires" false (Deadline.expired Deadline.never)

let test_deadline_expires () =
  let d = Deadline.after 0.0 in
  (* The check is throttled; poll enough times. *)
  let expired = ref false in
  for _ = 1 to 1000 do
    if Deadline.expired d then expired := true
  done;
  Alcotest.(check bool) "expired" true !expired

let test_deadline_check_raises () =
  let d = Deadline.after (-1.0) in
  Alcotest.check_raises "raises" Deadline.Timeout (fun () ->
      for _ = 1 to 1000 do
        Deadline.check d
      done)

let test_deadline_poll_interval () =
  (* With the polling throttle reduced to 1 the very first poll reads
     the clock — deadline behaviour is testable without sleeping or
     spinning through the default 256-call window. *)
  let d = Deadline.after ~poll_interval:1 (-1.0) in
  Alcotest.(check bool) "expired on first poll" true (Deadline.expired d);
  Alcotest.(check bool) "stays expired" true (Deadline.expired d);
  let live = Deadline.after ~poll_interval:1 1000.0 in
  Alcotest.(check bool) "not expired" false (Deadline.expired live);
  Alcotest.check_raises "poll_interval < 1 rejected"
    (Invalid_argument "Deadline.after: poll_interval < 1") (fun () ->
      ignore (Deadline.after ~poll_interval:0 1.0))

let test_deadline_remaining () =
  let d = Deadline.after 1000.0 in
  Alcotest.(check bool) "remaining positive" true (Deadline.remaining d > 0.0);
  Alcotest.(check bool) "never infinite" true
    (Deadline.remaining Deadline.never = infinity)

let qcheck_vec_roundtrip =
  QCheck.Test.make ~name:"vec of_list/to_list roundtrip" ~count:200
    QCheck.(list int)
    (fun l -> Vec.to_list (Vec.of_list ~dummy:0 l) = l)

let qcheck_prng_bits =
  QCheck.Test.make ~name:"prng bits within width" ~count:200
    QCheck.(pair small_nat (int_bound 62))
    (fun (seed, k) ->
      let g = Prng.create seed in
      let v = Prng.bits g k in
      v >= 0 && (k = 62 || v < 1 lsl k))

let () =
  Alcotest.run "util"
    [ ( "prng",
        [ Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
          Alcotest.test_case "copy independent" `Quick test_prng_copy_independent;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int covers residues" `Quick test_prng_int_covers;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
          Alcotest.test_case "split diverges" `Quick test_prng_split_diverges;
          QCheck_alcotest.to_alcotest qcheck_prng_bits ] );
      ( "vec",
        [ Alcotest.test_case "push/pop" `Quick test_vec_push_pop;
          Alcotest.test_case "get/set" `Quick test_vec_get_set;
          Alcotest.test_case "shrink/clear" `Quick test_vec_shrink_clear;
          Alcotest.test_case "iter/fold" `Quick test_vec_iter_fold;
          Alcotest.test_case "exists" `Quick test_vec_exists;
          QCheck_alcotest.to_alcotest qcheck_vec_roundtrip ] );
      ( "deadline",
        [ Alcotest.test_case "never" `Quick test_deadline_never;
          Alcotest.test_case "expires" `Quick test_deadline_expires;
          Alcotest.test_case "check raises" `Quick test_deadline_check_raises;
          Alcotest.test_case "poll interval" `Quick test_deadline_poll_interval;
          Alcotest.test_case "remaining" `Quick test_deadline_remaining ] ) ]
