(* Tests for the extension features: restricted gate bases, depth-bounded
   synthesis, and the chain clean-up passes. *)

module Tt = Stp_tt.Tt
module Chain = Stp_chain.Chain
module Chain_opt = Stp_chain.Chain_opt
module Gate = Stp_chain.Gate
module Spec = Stp_synth.Spec
module Stp_exact = Stp_synth.Stp_exact
module Baselines = Stp_synth.Baselines
module Prng = Stp_util.Prng

let and_class = [ 1; 2; 4; 7; 8; 11; 13; 14 ]

let options ?basis ?max_depth () =
  { (Spec.with_timeout 30.0) with Spec.basis; max_depth }

let gates_of (r : Spec.result) = Option.get r.Spec.gates

let check_solved name (r : Spec.result) =
  if r.Spec.status <> Spec.Solved then Alcotest.failf "%s timed out" name

let chain_uses_only basis (c : Chain.t) =
  Array.for_all (fun (s : Chain.step) -> List.mem s.gate basis) c.Chain.steps

(* --- restricted bases --- *)

let test_aig_xor3 () =
  (* XOR needs 3 AND-class gates instead of 1 XOR gate; xor3 needs 2 XOR
     gates or 6 AND-class gates *)
  let xor2 = Tt.of_hex ~n:2 "6" in
  let r = Stp_exact.synthesize ~options:(options ~basis:and_class ()) xor2 in
  check_solved "xor2/aig" r;
  Alcotest.(check int) "xor2 needs 3 ANDs" 3 (gates_of r);
  List.iter
    (fun c ->
      Alcotest.(check bool) "only AND-class gates" true
        (chain_uses_only and_class c);
      Alcotest.(check bool) "simulates" true
        (Tt.equal (Chain.simulate c) xor2))
    r.Spec.chains

let test_aig_vs_unrestricted () =
  (* restricted optima are never smaller; hard XOR-like primes may
     exceed the budget under the AND class (documented weakness), so
     timeouts are skipped but most instances must solve *)
  let rng = Prng.create 17 in
  let solved = ref 0 and tried = ref 0 in
  for _ = 1 to 8 do
    let f = Tt.of_fun 3 (fun _ -> Prng.bool rng) in
    if Tt.support_size f >= 2 then begin
      incr tried;
      let free = Stp_exact.synthesize ~options:(options ()) f in
      let aig = Stp_exact.synthesize ~options:(options ~basis:and_class ()) f in
      check_solved "free" free;
      match aig.Spec.status with
      | Spec.Timeout -> ()
      | Spec.Solved ->
        incr solved;
        Alcotest.(check bool) "aig >= free" true (gates_of aig >= gates_of free);
        List.iter
          (fun c ->
            Alcotest.(check bool) "basis respected" true
              (chain_uses_only and_class c))
          aig.Spec.chains
    end
  done;
  Alcotest.(check bool) "most solved" true (2 * !solved >= !tried)

let test_basis_agreement_with_bms () =
  let rng = Prng.create 19 in
  for _ = 1 to 6 do
    let f = Tt.of_fun 3 (fun _ -> Prng.bool rng) in
    if Tt.support_size f >= 2 then begin
      let stp = Stp_exact.synthesize ~options:(options ~basis:and_class ()) f in
      let bms = Baselines.bms ~options:(options ~basis:and_class ()) f in
      check_solved "stp/aig" stp;
      check_solved "bms/aig" bms;
      Alcotest.(check int) "same aig optimum" (gates_of bms) (gates_of stp);
      List.iter
        (fun c ->
          Alcotest.(check bool) "bms basis" true
            (chain_uses_only [ 2; 4; 8; 14 ] c
             (* SSV decodes normal gates only: the normal AND-class *)))
        bms.Spec.chains
    end
  done

let test_xor_basis () =
  (* parity functions in an {XOR,XNOR}-only basis *)
  let xor4 = Tt.of_hex ~n:4 "6996" in
  let r = Stp_exact.synthesize ~options:(options ~basis:[ 6; 9 ] ()) xor4 in
  check_solved "xor4/xor-basis" r;
  Alcotest.(check int) "3 gates" 3 (gates_of r);
  (* AND is impossible in the XOR basis: the engine must give up *)
  let and2 = Tt.of_hex ~n:2 "8" in
  let r =
    Stp_exact.synthesize
      ~options:{ (options ~basis:[ 6; 9 ] ()) with Spec.max_gates = 5 }
      and2
  in
  Alcotest.(check bool) "and2 unsynthesisable" true (r.Spec.status = Spec.Timeout)

(* --- depth bounds --- *)

let test_depth_bound_xor3 () =
  (* xor3 as a 2-gate chain has depth 2; with max_depth 1 no 2-gate or
     any chain fits (a depth-1 chain is a single gate) *)
  let xor3 = Tt.of_hex ~n:3 "96" in
  let r = Stp_exact.synthesize ~options:(options ~max_depth:2 ()) xor3 in
  check_solved "depth 2" r;
  Alcotest.(check int) "2 gates" 2 (gates_of r);
  List.iter
    (fun c -> Alcotest.(check bool) "depth <= 2" true (Chain.depth c <= 2))
    r.Spec.chains;
  let r1 =
    Stp_exact.synthesize
      ~options:{ (options ~max_depth:1 ()) with Spec.max_gates = 4 }
      xor3
  in
  Alcotest.(check bool) "depth 1 impossible" true (r1.Spec.status = Spec.Timeout)

let test_depth_forces_size () =
  (* AND8 = 7 gates; a balanced tree has depth 3, a chain depth 7. With
     max_depth 3 the optimum stays 7 but all solutions are balanced. *)
  let and4 = Tt.of_hex ~n:4 "8000" in
  let r = Stp_exact.synthesize ~options:(options ~max_depth:2 ()) and4 in
  check_solved "and4 depth 2" r;
  Alcotest.(check int) "3 gates" 3 (gates_of r);
  List.iter
    (fun c -> Alcotest.(check bool) "balanced" true (Chain.depth c = 2))
    r.Spec.chains

let test_depth_engines_agree () =
  let f = Tt.of_hex ~n:3 "e8" in
  let o = options ~max_depth:3 () in
  let stp = Stp_exact.synthesize ~options:o f in
  let fen = Baselines.fen ~options:o f in
  let bms = Baselines.bms ~options:o f in
  check_solved "stp" stp;
  check_solved "fen" fen;
  check_solved "bms(depth->fen)" bms;
  Alcotest.(check int) "stp=fen" (gates_of fen) (gates_of stp);
  Alcotest.(check int) "stp=bms" (gates_of bms) (gates_of stp);
  List.iter
    (fun c -> Alcotest.(check bool) "depth bound" true (Chain.depth c <= 3))
    (stp.Spec.chains @ fen.Spec.chains @ bms.Spec.chains)

(* --- DSD peeling ablation --- *)

let test_dsd_off_agrees () =
  (* the decomposition shortcut must not change optima *)
  let rng = Prng.create 29 in
  for _ = 1 to 6 do
    let f = Tt.of_fun 3 (fun _ -> Prng.bool rng) in
    if Tt.support_size f >= 2 then begin
      let on = Stp_exact.synthesize ~options:(options ()) f in
      let off =
        Stp_exact.synthesize
          ~options:{ (options ()) with Spec.use_dsd = false }
          f
      in
      check_solved "dsd on" on;
      check_solved "dsd off" off;
      Alcotest.(check int) "same optimum" (gates_of off) (gates_of on);
      List.iter
        (fun c ->
          Alcotest.(check bool) "off chains correct" true
            (Tt.equal (Chain.simulate c) f))
        off.Spec.chains
    end
  done;
  (* the paper's example as a fixed case *)
  let f = Tt.of_hex ~n:4 "8ff8" in
  let off =
    Stp_exact.synthesize ~options:{ (options ()) with Spec.use_dsd = false } f
  in
  check_solved "8ff8 no dsd" off;
  Alcotest.(check int) "3 gates" 3 (gates_of off)

(* --- chain clean-up --- *)

let random_chain rng ~n ~steps:k =
  let steps =
    List.init k (fun i ->
        let hi = n + i in
        let f1 = Prng.int rng hi in
        let f2 = (f1 + 1 + Prng.int rng (hi - 1)) mod hi in
        { Chain.fanin1 = f1; fanin2 = f2; gate = Prng.int rng 16 })
  in
  Chain.make ~n ~steps ~output:(n + k - 1) ~output_negated:(Prng.bool rng) ()

let test_sweep_removes_dead () =
  (* dead step: built but not referenced by the output cone *)
  let c =
    Chain.make ~n:2
      ~steps:
        [ { Chain.fanin1 = 0; fanin2 = 1; gate = 8 };
          { Chain.fanin1 = 0; fanin2 = 1; gate = 6 } ]
      ~output:2 ()
  in
  let c' = Chain_opt.sweep c in
  Alcotest.(check int) "one step left" 1 (Chain.size c');
  Alcotest.(check bool) "same function" true
    (Tt.equal (Chain.simulate c) (Chain.simulate c'))

let test_strash_merges_duplicates () =
  let c =
    Chain.make ~n:2
      ~steps:
        [ { Chain.fanin1 = 0; fanin2 = 1; gate = 8 };
          { Chain.fanin1 = 0; fanin2 = 1; gate = 8 };
          { Chain.fanin1 = 2; fanin2 = 3; gate = 14 } ]
      ~output:4 ()
  in
  (* OR of two copies of AND(a,b): collapses to the single AND *)
  let c' = Chain_opt.cleanup c in
  Alcotest.(check int) "collapsed" 1 (Chain.size c');
  Alcotest.(check bool) "same function" true
    (Tt.equal (Chain.simulate c) (Chain.simulate c'))

let test_strash_mirrored_fanins () =
  (* AND(a,b) and AND(b,a) are the same gate after operand sorting *)
  let c =
    Chain.make ~n:2
      ~steps:
        [ { Chain.fanin1 = 0; fanin2 = 1; gate = 8 };
          { Chain.fanin1 = 1; fanin2 = 0; gate = 8 };
          { Chain.fanin1 = 2; fanin2 = 3; gate = 6 } ]
      ~output:4 ()
  in
  (* XOR of the two copies would be constant 0 — but strash folds the
     copies first, making the xor a degenerate same-signal gate, which
     is a constant: the pass must bail out and preserve the function *)
  let c' = Chain_opt.cleanup c in
  Alcotest.(check bool) "function preserved" true
    (Tt.equal (Chain.simulate c) (Chain.simulate c'))

let test_strash_degenerate_gates () =
  (* a projection gate disappears *)
  let c =
    Chain.make ~n:2
      ~steps:
        [ { Chain.fanin1 = 0; fanin2 = 1; gate = 12 } (* proj a *);
          { Chain.fanin1 = 2; fanin2 = 1; gate = 8 } ]
      ~output:3 ()
  in
  let c' = Chain_opt.cleanup c in
  Alcotest.(check int) "projection folded" 1 (Chain.size c');
  Alcotest.(check bool) "same function" true
    (Tt.equal (Chain.simulate c) (Chain.simulate c'))

let qcheck_cleanup_preserves =
  QCheck.Test.make ~name:"cleanup preserves function, never grows" ~count:300
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 2 + Prng.int rng 3 in
      let k = 1 + Prng.int rng 6 in
      let c = random_chain rng ~n ~steps:k in
      let c' = Chain_opt.cleanup c in
      Tt.equal (Chain.simulate c) (Chain.simulate c')
      && Chain.size c' <= Chain.size c)

let qcheck_cleanup_idempotent =
  QCheck.Test.make ~name:"cleanup is idempotent" ~count:200
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 2 + Prng.int rng 3 in
      let k = 1 + Prng.int rng 6 in
      let c = Chain_opt.cleanup (random_chain rng ~n ~steps:k) in
      Chain.equal c (Chain_opt.cleanup c))

let () =
  Alcotest.run "features"
    [ ( "basis",
        [ Alcotest.test_case "aig xor2" `Quick test_aig_xor3;
          Alcotest.test_case "aig vs free" `Slow test_aig_vs_unrestricted;
          Alcotest.test_case "aig agreement with bms" `Slow
            test_basis_agreement_with_bms;
          Alcotest.test_case "xor basis" `Quick test_xor_basis ] );
      ( "dsd",
        [ Alcotest.test_case "peeling on/off agree" `Slow test_dsd_off_agrees ] );
      ( "depth",
        [ Alcotest.test_case "xor3 depth bound" `Quick test_depth_bound_xor3;
          Alcotest.test_case "and4 balanced" `Quick test_depth_forces_size;
          Alcotest.test_case "engines agree" `Quick test_depth_engines_agree ] );
      ( "chain_opt",
        [ Alcotest.test_case "sweep" `Quick test_sweep_removes_dead;
          Alcotest.test_case "strash duplicates" `Quick
            test_strash_merges_duplicates;
          Alcotest.test_case "mirrored fanins" `Quick test_strash_mirrored_fanins;
          Alcotest.test_case "degenerate gates" `Quick
            test_strash_degenerate_gates;
          QCheck_alcotest.to_alcotest qcheck_cleanup_preserves;
          QCheck_alcotest.to_alcotest qcheck_cleanup_idempotent ] ) ]
