(* Tests for the workload generators behind Table I's collections. *)

module Tt = Stp_tt.Tt
module Dsd = Stp_tt.Dsd
module Dsd_gen = Stp_workloads.Dsd_gen
module Npn4 = Stp_workloads.Npn4
module Collections = Stp_workloads.Collections

let test_npn4_all () =
  Alcotest.(check int) "222 classes" 222 (List.length (Npn4.all ()));
  (* canonical representatives are canonical *)
  List.iteri
    (fun i f ->
      if i mod 37 = 0 then
        Alcotest.(check bool) "canonical" true (Stp_tt.Npn.is_canonical f))
    (Npn4.all ())

let test_npn4_synthesizable () =
  let s = Npn4.synthesizable () in
  Alcotest.(check int) "221 non-constant" 221 (List.length s);
  List.iter
    (fun f -> Alcotest.(check bool) "has support" true (Tt.support_size f > 0))
    s

let test_fdsd_properties () =
  for seed = 1 to 20 do
    let f = Dsd_gen.fdsd ~n:6 ~seed in
    Alcotest.(check int) "full support" 6 (Tt.support_size f);
    Alcotest.(check bool) "fully dsd" true (Dsd.is_fully_dsd f)
  done

let test_fdsd8_properties () =
  for seed = 1 to 5 do
    let f = Dsd_gen.fdsd ~n:8 ~seed in
    Alcotest.(check int) "full support" 8 (Tt.support_size f);
    Alcotest.(check bool) "fully dsd" true (Dsd.is_fully_dsd f)
  done

let test_pdsd_properties () =
  for seed = 1 to 10 do
    let f = Dsd_gen.pdsd ~n:6 ~seed in
    Alcotest.(check int) "full support" 6 (Tt.support_size f);
    Alcotest.(check bool) "partial" true (Dsd.kind f = Dsd.Partial)
  done

let test_generators_deterministic () =
  Alcotest.(check bool) "fdsd deterministic" true
    (Tt.equal (Dsd_gen.fdsd ~n:6 ~seed:3) (Dsd_gen.fdsd ~n:6 ~seed:3));
  Alcotest.(check bool) "pdsd deterministic" true
    (Tt.equal (Dsd_gen.pdsd ~n:6 ~seed:3) (Dsd_gen.pdsd ~n:6 ~seed:3));
  Alcotest.(check bool) "seeds differ" false
    (Tt.equal (Dsd_gen.fdsd ~n:6 ~seed:3) (Dsd_gen.fdsd ~n:6 ~seed:4))

let test_prime_cores () =
  Alcotest.(check bool) "cores exist" true (Dsd_gen.prime_cores <> []);
  List.iter
    (fun f ->
      Alcotest.(check bool) "prime" true (Dsd.is_prime f);
      Alcotest.(check int) "3 vars" 3 (Tt.support_size f))
    Dsd_gen.prime_cores;
  (* majority must be among them *)
  Alcotest.(check bool) "maj included" true
    (List.exists (Tt.equal (Tt.of_hex ~n:3 "e8")) Dsd_gen.prime_cores)

let test_collections_distinct () =
  let c = Dsd_gen.fdsd_collection ~n:6 ~count:30 ~seed:5 in
  Alcotest.(check int) "count" 30 (List.length c);
  let keys = List.map Tt.to_hex c in
  Alcotest.(check int) "distinct" 30 (List.length (List.sort_uniq compare keys))

let test_table1_collections () =
  let rows = Collections.table1 Collections.Default in
  Alcotest.(check (list string)) "names"
    [ "NPN4"; "FDSD6"; "FDSD8"; "PDSD6"; "PDSD8" ]
    (List.map (fun (c : Collections.t) -> c.name) rows);
  List.iter
    (fun (c : Collections.t) ->
      Alcotest.(check bool) "non-empty" true (c.functions <> []))
    rows

let test_scaling () =
  let paper = Collections.fdsd8 Collections.Paper in
  Alcotest.(check int) "paper scale" 100 (List.length paper.Collections.functions);
  let custom = Collections.fdsd8 (Collections.Custom 0.1) in
  Alcotest.(check int) "custom scale" 10
    (List.length custom.Collections.functions)

module Zipf = Stp_workloads.Zipf

let test_zipf_deterministic () =
  let a = Zipf.create ~seed:42 () and b = Zipf.create ~seed:42 () in
  for _ = 1 to 200 do
    let na, ta = Zipf.next a and nb, tb = Zipf.next b in
    Alcotest.(check int) "same arity" na nb;
    Alcotest.(check string) "same target" ta tb
  done;
  let c = Zipf.create ~seed:43 () in
  let differs = ref false in
  for _ = 1 to 50 do
    let _, ta = Zipf.next a and _, tc = Zipf.next c in
    if ta <> tc then differs := true
  done;
  Alcotest.(check bool) "different seeds draw different streams" true !differs

let test_zipf_members_are_valid_npn4 () =
  let z = Zipf.create ~seed:7 () in
  Alcotest.(check int) "draws over the synthesizable classes" 221
    (Zipf.num_classes z);
  let classes = Hashtbl.create 64 in
  for _ = 1 to 500 do
    let n, hex = Zipf.next z in
    Alcotest.(check int) "NPN4 arity" 4 n;
    let f = Tt.of_hex ~n hex in
    let canon, _ = Stp_tt.Npn.canonical f in
    Alcotest.(check bool) "member of a synthesizable class" true
      (Tt.support_size canon > 0);
    Hashtbl.replace classes (Tt.to_hex canon) ()
  done;
  (* Zipf head + tail: several classes seen, but far fewer than draws. *)
  let distinct = Hashtbl.length classes in
  Alcotest.(check bool) "hot head repeats classes" true (distinct < 221);
  Alcotest.(check bool) "cold tail still arrives" true (distinct > 20)

let test_zipf_skew () =
  (* Higher alpha concentrates draws on the head ranks. *)
  let count_distinct alpha =
    let z = Zipf.create ~seed:5 ~alpha () in
    let seen = Hashtbl.create 64 in
    for _ = 1 to 400 do
      Hashtbl.replace seen (Tt.to_hex (Zipf.next_class z)) ()
    done;
    Hashtbl.length seen
  in
  Alcotest.(check bool) "uniform covers more classes than zipf 2.0" true
    (count_distinct 0.0 > count_distinct 2.0)

let () =
  Alcotest.run "workloads"
    [ ( "npn4",
        [ Alcotest.test_case "all" `Slow test_npn4_all;
          Alcotest.test_case "synthesizable" `Slow test_npn4_synthesizable ] );
      ( "dsd_gen",
        [ Alcotest.test_case "fdsd6" `Quick test_fdsd_properties;
          Alcotest.test_case "fdsd8" `Slow test_fdsd8_properties;
          Alcotest.test_case "pdsd6" `Quick test_pdsd_properties;
          Alcotest.test_case "deterministic" `Quick test_generators_deterministic;
          Alcotest.test_case "prime cores" `Quick test_prime_cores;
          Alcotest.test_case "collections distinct" `Quick
            test_collections_distinct ] );
      ( "collections",
        [ Alcotest.test_case "table1 rows" `Slow test_table1_collections;
          Alcotest.test_case "scaling" `Quick test_scaling ] );
      ( "zipf",
        [ Alcotest.test_case "deterministic" `Quick test_zipf_deterministic;
          Alcotest.test_case "members are valid NPN4" `Slow
            test_zipf_members_are_valid_npn4;
          Alcotest.test_case "alpha skews the head" `Quick test_zipf_skew ] ) ]
