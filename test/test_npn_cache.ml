(* Tests for the NPN-class synthesis cache: chains returned via a cache
   hit must simulate to the concrete target and carry the same optimum
   gate count as a cold synthesis; the cache must replay — not
   re-search — for further members of an already-solved class. *)

module Tt = Stp_tt.Tt
module Npn = Stp_tt.Npn
module Chain = Stp_chain.Chain
module Spec = Stp_synth.Spec
module Stp_exact = Stp_synth.Stp_exact
module Npn_cache = Stp_synth.Npn_cache
module Prng = Stp_util.Prng

let options = Spec.with_timeout 60.0

let gates_of (r : Spec.result) = Option.value ~default:(-1) r.Spec.gates

let check_solved what (r : Spec.result) =
  Alcotest.(check bool) (what ^ " solved") true (r.Spec.status = Spec.Solved)

let random_tt rng n =
  Tt.of_fun n (fun _ -> Prng.bool rng)

let random_transform rng n =
  let perms = Array.of_list (Npn.permutations n) in
  { Npn.perm = perms.(Prng.int rng (Array.length perms));
    input_neg = Prng.int rng (1 lsl n);
    output_neg = Prng.bool rng }

let test_hit_matches_cold_synthesis () =
  (* DSD-decomposable targets keep cold synthesis in the millisecond
     range; dense random 4-var functions can run for minutes. *)
  let rng = Prng.create 2024 in
  let targets = Stp_workloads.Dsd_gen.fdsd_collection ~n:4 ~count:6 ~seed:2024 in
  List.iter
    (fun f ->
      let cold = Stp_exact.synthesize ~options f in
      check_solved "cold" cold;
      let cache = Npn_cache.create () in
      let miss = Npn_cache.synthesize ~options cache f in
      check_solved "miss" miss;
      Alcotest.(check int) "miss optimum" (gates_of cold) (gates_of miss);
      (* A different member of the same class must be a replay. *)
      let g = Npn.apply f (random_transform rng 4) in
      let hit = Npn_cache.synthesize ~options cache g in
      check_solved "hit" hit;
      Alcotest.(check int) "hit optimum == cold optimum" (gates_of cold)
        (gates_of hit);
      Alcotest.(check bool) "chains returned" true (hit.Spec.chains <> []);
      List.iter
        (fun c ->
          Alcotest.(check bool) "hit chain simulates to target" true
            (Tt.equal (Chain.simulate c) g))
        hit.Spec.chains;
      let s = Npn_cache.stats cache in
      Alcotest.(check int) "one hit" 1 s.Npn_cache.hits;
      Alcotest.(check int) "one miss" 1 s.Npn_cache.misses;
      Alcotest.(check int) "no replay failures" 0 s.Npn_cache.failures)
    targets

let test_hit_count_matches_cold_count () =
  (* The replayed solution set has the same cardinality as a cold run on
     the same target: NPN transforms map the optimum chains of the first
     realised topology bijectively. *)
  let rng = Prng.create 4096 in
  let tried = ref 0 in
  while !tried < 4 do
    let f = random_tt rng 3 in
    if Tt.support_size f >= 2 then begin
      incr tried;
      let cache = Npn_cache.create () in
      (* Warm the cache with the class representative's orbit member. *)
      ignore (Npn_cache.synthesize ~options cache (Npn.apply f (random_transform rng 3)));
      let cold = Stp_exact.synthesize ~options f in
      let hit = Npn_cache.synthesize ~options cache f in
      check_solved "cold" cold;
      check_solved "hit" hit;
      Alcotest.(check int) "same optimum" (gates_of cold) (gates_of hit);
      Alcotest.(check int) "same number of optimum chains"
        (List.length cold.Spec.chains)
        (List.length hit.Spec.chains)
    end
  done

let test_many_members_one_synthesis () =
  (* Sweep a whole orbit: exactly one miss, everything else replays. *)
  let f = Tt.of_hex ~n:4 "8ff8" (* the paper's Example 7 function *) in
  let rng = Prng.create 7 in
  let members =
    f :: List.init 15 (fun _ -> Npn.apply f (random_transform rng 4))
  in
  let cache = Npn_cache.create () in
  let results = List.map (Npn_cache.synthesize ~options cache) members in
  List.iter2
    (fun m r ->
      check_solved "member" r;
      List.iter
        (fun c ->
          Alcotest.(check bool) "simulates" true (Tt.equal (Chain.simulate c) m))
        r.Spec.chains)
    members results;
  let s = Npn_cache.stats cache in
  Alcotest.(check int) "one miss for the whole orbit" 1 s.Npn_cache.misses;
  Alcotest.(check int) "rest are hits" (List.length members - 1) s.Npn_cache.hits;
  Alcotest.(check int) "one class cached" 1 (Npn_cache.classes cache);
  Alcotest.(check (float 1e-9)) "hit rate" (15.0 /. 16.0) (Npn_cache.hit_rate cache)

let test_wide_support_bypasses () =
  (* 7-input read-once function: support exceeds the canonicalisation
     bound, so the cache steps aside and solves directly. *)
  let f =
    List.fold_left Tt.bor (Tt.var 7 0) (List.init 6 (fun i -> Tt.var 7 (i + 1)))
  in
  let cache = Npn_cache.create () in
  let r = Npn_cache.synthesize ~options cache f in
  check_solved "wide" r;
  Alcotest.(check int) "read-once optimum" 6 (gates_of r);
  let s = Npn_cache.stats cache in
  Alcotest.(check int) "bypassed" 1 s.Npn_cache.bypassed;
  Alcotest.(check int) "no lookups" 0 (s.Npn_cache.hits + s.Npn_cache.misses)

let test_trivial_targets_skip_cache () =
  let cache = Npn_cache.create () in
  let r = Npn_cache.synthesize ~options cache (Tt.var 4 2) in
  check_solved "projection" r;
  Alcotest.(check int) "gate-free" 0 (gates_of r);
  let s = Npn_cache.stats cache in
  Alcotest.(check int) "no lookups" 0
    (s.Npn_cache.hits + s.Npn_cache.misses + s.Npn_cache.bypassed)

let test_wrapped_baseline_agrees () =
  (* The cache is engine-generic: wrapping a CNF baseline must preserve
     its optima on class members. *)
  let f = Tt.of_hex ~n:4 "6996" (* xor4 *) in
  let cache = Npn_cache.create () in
  let (module E : Stp_synth.Engine.S) =
    Npn_cache.wrap cache Stp_synth.Engine.bms
  in
  let run g =
    let t0 = Stp_util.Unix_time.now () in
    let r =
      E.synthesize (Stp_synth.Engine.spec ~options g)
        ~deadline:(Spec.deadline_of options)
    in
    Stp_synth.Engine.to_spec_result
      ~elapsed:(Stp_util.Unix_time.now () -. t0)
      r
  in
  let r1 = run f in
  let g = Npn.apply f { Npn.perm = [| 3; 1; 0; 2 |]; input_neg = 5; output_neg = true } in
  let r2 = run g in
  check_solved "bms miss" r1;
  check_solved "bms hit" r2;
  Alcotest.(check int) "same optimum" (gates_of r1) (gates_of r2);
  List.iter
    (fun c ->
      Alcotest.(check bool) "baseline replay simulates" true
        (Tt.equal (Chain.simulate c) g))
    r2.Spec.chains;
  let s = Npn_cache.stats cache in
  Alcotest.(check int) "hit" 1 s.Npn_cache.hits

let test_timeouts_not_cached () =
  (* [b4d2] needs ~4 gates and tens of milliseconds of search — far more
     than the 0.5 ms budget below, yet instant with a real one. *)
  let f = Tt.of_hex ~n:4 "b4d2" in
  let cache = Npn_cache.create () in
  let r =
    Npn_cache.synthesize ~options:(Spec.with_timeout 0.0005) cache f
  in
  Alcotest.(check bool) "timed out" true (r.Spec.status = Spec.Timeout);
  Alcotest.(check int) "nothing cached" 0 (Npn_cache.classes cache);
  (* With budget restored the same cache must now solve and store. *)
  let r2 = Npn_cache.synthesize ~options cache f in
  check_solved "after timeout" r2;
  Alcotest.(check int) "class stored" 1 (Npn_cache.classes cache)

let () =
  Alcotest.run "npn_cache"
    [ ( "replay",
        [ Alcotest.test_case "hit matches cold synthesis" `Slow
            test_hit_matches_cold_synthesis;
          Alcotest.test_case "hit count matches cold count" `Quick
            test_hit_count_matches_cold_count;
          Alcotest.test_case "orbit sweep: one synthesis" `Quick
            test_many_members_one_synthesis;
          Alcotest.test_case "baseline wrap agrees" `Quick
            test_wrapped_baseline_agrees ] );
      ( "gating",
        [ Alcotest.test_case "wide support bypasses" `Quick
            test_wide_support_bypasses;
          Alcotest.test_case "trivial targets skip" `Quick
            test_trivial_targets_skip_cache;
          Alcotest.test_case "timeouts not cached" `Quick
            test_timeouts_not_cached ] ) ]
