(* Tests for the CDCL SAT solver: brute-force cross-checks on random
   instances, classic UNSAT families, assumptions, model enumeration,
   DIMACS parsing. *)

module Solver = Stp_sat.Solver
module Lit = Stp_sat.Lit
module Allsat = Stp_sat.Allsat
module Dimacs = Stp_sat.Dimacs
module Prng = Stp_util.Prng

let brute_force nv clauses =
  let rec check m =
    m < 1 lsl nv
    &&
    (List.for_all
       (fun c ->
         List.exists
           (fun l -> ((m lsr Lit.var l) land 1 = 1) = Lit.sign l)
           c)
       clauses
     || check (m + 1))
  in
  check 0

let random_instance rng ~max_vars ~clause_factor =
  let nv = 2 + Prng.int rng max_vars in
  let nc = 1 + Prng.int rng (clause_factor * nv) in
  let clauses =
    List.init nc (fun _ ->
        let len = 1 + Prng.int rng 3 in
        List.init len (fun _ -> Lit.make (Prng.int rng nv) (Prng.bool rng)))
  in
  (nv, clauses)

let fresh_solver nv clauses =
  let s = Solver.create () in
  for _ = 1 to nv do
    ignore (Solver.new_var s)
  done;
  List.iter (Solver.add_clause s) clauses;
  s

let model_satisfies s clauses =
  List.for_all
    (fun c -> List.exists (fun l -> Solver.value s (Lit.var l) = Lit.sign l) c)
    clauses

let test_fuzz_vs_brute_force () =
  let rng = Prng.create 2024 in
  for _ = 1 to 800 do
    let nv, clauses = random_instance rng ~max_vars:10 ~clause_factor:4 in
    let s = fresh_solver nv clauses in
    let expected = brute_force nv clauses in
    match Solver.solve s with
    | Solver.Sat ->
      Alcotest.(check bool) "sat expected" true expected;
      Alcotest.(check bool) "model valid" true (model_satisfies s clauses)
    | Solver.Unsat -> Alcotest.(check bool) "unsat expected" false expected
    | Solver.Unknown -> Alcotest.fail "unexpected unknown"
  done

let test_lit_encoding () =
  Alcotest.(check int) "var" 3 (Lit.var (Lit.pos 3));
  Alcotest.(check bool) "pos sign" true (Lit.sign (Lit.pos 3));
  Alcotest.(check bool) "neg sign" false (Lit.sign (Lit.neg 3));
  Alcotest.(check int) "negate" (Lit.neg 3) (Lit.negate (Lit.pos 3));
  Alcotest.(check int) "dimacs" 4 (Lit.to_int (Lit.pos 3));
  Alcotest.(check int) "dimacs neg" (-4) (Lit.to_int (Lit.neg 3));
  Alcotest.(check int) "of_int" (Lit.neg 3) (Lit.of_int (-4))

let test_empty_clause () =
  let s = Solver.create () in
  Solver.add_clause s [];
  Alcotest.(check bool) "not okay" false (Solver.okay s);
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat)

let test_unit_propagation () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ Lit.pos a ];
  Solver.add_clause s [ Lit.neg a; Lit.pos b ];
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "a true" true (Solver.value s a);
  Alcotest.(check bool) "b true" true (Solver.value s b)

let test_pigeonhole_unsat () =
  (* PHP(4,3): 4 pigeons, 3 holes — classic small UNSAT instance. *)
  let pigeons = 4 and holes = 3 in
  let s = Solver.create () in
  let v = Array.init pigeons (fun _ -> Array.init holes (fun _ -> Solver.new_var s)) in
  for p = 0 to pigeons - 1 do
    Solver.add_clause s (List.init holes (fun h -> Lit.pos v.(p).(h)))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Solver.add_clause s [ Lit.neg v.(p1).(h); Lit.neg v.(p2).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "php unsat" true (Solver.solve s = Solver.Unsat)

let test_xor_chain_sat () =
  (* parity constraints as CNF: x1 xor x2 xor ... = 1 is satisfiable *)
  let n = 6 in
  let s = Solver.create () in
  let xs = Array.init n (fun _ -> Solver.new_var s) in
  (* y_i = x_1 xor ... xor x_i via Tseitin-style chaining *)
  let ys = Array.init n (fun _ -> Solver.new_var s) in
  let add_xor out a b =
    (* out = a xor b *)
    Solver.add_clause s [ Lit.neg out; Lit.pos a; Lit.pos b ];
    Solver.add_clause s [ Lit.neg out; Lit.neg a; Lit.neg b ];
    Solver.add_clause s [ Lit.pos out; Lit.pos a; Lit.neg b ];
    Solver.add_clause s [ Lit.pos out; Lit.neg a; Lit.pos b ]
  in
  (* y0 = x0 *)
  Solver.add_clause s [ Lit.neg ys.(0); Lit.pos xs.(0) ];
  Solver.add_clause s [ Lit.pos ys.(0); Lit.neg xs.(0) ];
  for i = 1 to n - 1 do
    add_xor ys.(i) ys.(i - 1) xs.(i)
  done;
  Solver.add_clause s [ Lit.pos ys.(n - 1) ];
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  let parity =
    Array.fold_left (fun acc x -> acc <> Solver.value s x) false xs
  in
  Alcotest.(check bool) "parity holds" true parity

let test_assumptions () =
  let rng = Prng.create 77 in
  for _ = 1 to 300 do
    let nv, clauses = random_instance rng ~max_vars:8 ~clause_factor:3 in
    let assumptions =
      List.init (Prng.int rng 3) (fun _ ->
          Lit.make (Prng.int rng nv) (Prng.bool rng))
    in
    let s = fresh_solver nv clauses in
    let expected =
      brute_force nv (List.map (fun a -> [ a ]) assumptions @ clauses)
    in
    (match Solver.solve ~assumptions s with
     | Solver.Sat -> Alcotest.(check bool) "assum sat" true expected
     | Solver.Unsat -> Alcotest.(check bool) "assum unsat" false expected
     | Solver.Unknown -> Alcotest.fail "unknown");
    (* solving again without assumptions must match the plain instance *)
    let expected_plain = brute_force nv clauses in
    (match Solver.solve s with
     | Solver.Sat -> Alcotest.(check bool) "reuse sat" true expected_plain
     | Solver.Unsat -> Alcotest.(check bool) "reuse unsat" false expected_plain
     | Solver.Unknown -> Alcotest.fail "unknown")
  done

let test_incremental_clauses () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ Lit.pos a; Lit.pos b ];
  Alcotest.(check bool) "sat 1" true (Solver.solve s = Solver.Sat);
  Solver.add_clause s [ Lit.neg a ];
  Alcotest.(check bool) "sat 2" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "b forced" true (Solver.value s b);
  Solver.add_clause s [ Lit.neg b ];
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat)

let test_conflict_budget () =
  (* PHP(7,6) is hard enough that a 1-conflict budget gives Unknown. *)
  let pigeons = 7 and holes = 6 in
  let s = Solver.create () in
  let v = Array.init pigeons (fun _ -> Array.init holes (fun _ -> Solver.new_var s)) in
  for p = 0 to pigeons - 1 do
    Solver.add_clause s (List.init holes (fun h -> Lit.pos v.(p).(h)))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Solver.add_clause s [ Lit.neg v.(p1).(h); Lit.neg v.(p2).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "unknown on tiny budget" true
    (Solver.solve ~conflict_budget:1 s = Solver.Unknown)

let test_allsat_enumeration () =
  let s = Solver.create () in
  let vs = List.init 3 (fun _ -> Solver.new_var s) in
  (* at least one true: 7 models over 3 vars *)
  Solver.add_clause s (List.map Lit.pos vs);
  (match Allsat.models ~over:vs s with
   | Some models -> Alcotest.(check int) "model count" 7 (List.length models)
   | None -> Alcotest.fail "deadline unexpectedly hit")

let test_allsat_vs_brute_force () =
  let rng = Prng.create 99 in
  for _ = 1 to 50 do
    let nv, clauses = random_instance rng ~max_vars:6 ~clause_factor:2 in
    let s = fresh_solver nv clauses in
    let vs = List.init nv (fun i -> i) in
    match Allsat.models ~over:vs s with
    | None -> Alcotest.fail "deadline"
    | Some models ->
      let count = ref 0 in
      for m = 0 to (1 lsl nv) - 1 do
        let ok =
          List.for_all
            (fun c ->
              List.exists
                (fun l -> ((m lsr Lit.var l) land 1 = 1) = Lit.sign l)
                c)
            clauses
        in
        if ok then incr count
      done;
      Alcotest.(check int) "allsat count" !count (List.length models)
  done

let test_dimacs_roundtrip () =
  let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  let cnf = Dimacs.parse text in
  Alcotest.(check int) "vars" 3 cnf.Dimacs.num_vars;
  Alcotest.(check int) "clauses" 2 (List.length cnf.Dimacs.clauses);
  let printed = Format.asprintf "%a" Dimacs.print cnf in
  let cnf2 = Dimacs.parse printed in
  Alcotest.(check bool) "roundtrip" true (cnf = cnf2);
  let s = Solver.create () in
  Dimacs.load s cnf;
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat)

let test_dimacs_invalid () =
  let raises name msg text =
    Alcotest.check_raises name (Invalid_argument msg) (fun () ->
        ignore (Dimacs.parse text))
  in
  raises "clause before header"
    "Dimacs.parse: line 1: clause before the 'p cnf' header" "1 2 0\n";
  raises "missing header" "Dimacs.parse: missing header" "c nothing here\n";
  raises "variable beyond header"
    "Dimacs.parse: line 4: variable 4 exceeds the declared 3"
    "p cnf 3 2\n1 -2 0\nc x\n2 -4 0\n";
  raises "bad token" "Dimacs.parse: line 2: bad token \"two\""
    "p cnf 3 1\n1 two 0\n";
  raises "duplicate header" "Dimacs.parse: line 2: duplicate header"
    "p cnf 3 1\np cnf 3 1\n1 0\n";
  raises "unterminated clause" "Dimacs.parse: line 2: unterminated clause"
    "p cnf 3 1\n1 -2\n"

(* The incremental contract, fuzzed: one long-lived solver receiving
   interleaved clause batches and assumption solves must agree with
   brute force at every step, its Sat models must satisfy clauses and
   assumptions, its unsat cores must be subsets of the assumptions that
   are themselves refuted, and every Unsat answer's cumulative DRAT
   stream must check against the clauses added so far. *)
let test_fuzz_incremental_vs_fresh () =
  let rng = Prng.create 31337 in
  let unsats = ref 0 and sats = ref 0 and checked_proofs = ref 0 in
  let instances = 1000 in
  for _ = 1 to instances do
    let nv = 3 + Prng.int rng 8 in
    let s = Solver.create () in
    Solver.set_proof s true;
    for _ = 1 to nv do
      ignore (Solver.new_var s)
    done;
    let clauses = ref [] in
    let rounds = 1 + Prng.int rng 3 in
    for _ = 1 to rounds do
      let nc = 1 + Prng.int rng (2 * nv) in
      for _ = 1 to nc do
        let len = 1 + Prng.int rng 3 in
        let c =
          List.init len (fun _ -> Lit.make (Prng.int rng nv) (Prng.bool rng))
        in
        Solver.add_clause s c;
        clauses := c :: !clauses
      done;
      let assumptions =
        List.init (Prng.int rng 3) (fun _ ->
            Lit.make (Prng.int rng nv) (Prng.bool rng))
      in
      let expected =
        brute_force nv (List.map (fun a -> [ a ]) assumptions @ !clauses)
      in
      match Solver.solve ~assumptions s with
      | Solver.Sat ->
        incr sats;
        if not expected then Alcotest.fail "incremental Sat, brute-force unsat";
        Alcotest.(check bool) "model valid" true (model_satisfies s !clauses);
        List.iter
          (fun a ->
            Alcotest.(check bool) "assumption honoured" true
              (Solver.value s (Lit.var a) = Lit.sign a))
          assumptions
      | Solver.Unsat ->
        incr unsats;
        if expected then Alcotest.fail "incremental Unsat, brute-force sat";
        let core = Solver.unsat_core s in
        List.iter
          (fun l ->
            Alcotest.(check bool) "core within assumptions" true
              (List.mem l assumptions))
          core;
        Alcotest.(check bool) "core itself refuted" false
          (brute_force nv (List.map (fun a -> [ a ]) core @ !clauses));
        (match
           Stp_sat.Drat.check ~num_vars:nv ~clauses:!clauses
             ~assumptions:core (Solver.proof s)
         with
         | Ok () -> incr checked_proofs
         | Error e -> Alcotest.fail ("drat check failed: " ^ e))
      | Solver.Unknown -> Alcotest.fail "unexpected unknown"
    done
  done;
  (* the fuzz must actually exercise both answers and the proof path *)
  Alcotest.(check bool) "saw sats" true (!sats > 100);
  Alcotest.(check bool) "saw unsats" true (!unsats > 100);
  Alcotest.(check int) "every unsat proof checked" !unsats !checked_proofs

let test_unsat_core () =
  (* A chain that dooms exactly one assumption: b -> d -> e and
     b -> ~e. Assuming [a; b; c] must yield a core containing b and
     neither a nor c (they are free variables). *)
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  let c = Solver.new_var s and d = Solver.new_var s in
  let e = Solver.new_var s in
  Solver.add_clause s [ Lit.neg b; Lit.pos d ];
  Solver.add_clause s [ Lit.neg d; Lit.pos e ];
  Solver.add_clause s [ Lit.neg b; Lit.neg e ];
  let assumptions = [ Lit.pos a; Lit.pos b; Lit.pos c ] in
  Alcotest.(check bool) "unsat under b" true
    (Solver.solve ~assumptions s = Solver.Unsat);
  let core = Solver.unsat_core s in
  Alcotest.(check bool) "b in core" true (List.mem (Lit.pos b) core);
  Alcotest.(check bool) "a not in core" false (List.mem (Lit.pos a) core);
  Alcotest.(check bool) "c not in core" false (List.mem (Lit.pos c) core);
  (* the core alone is refuted; supersets need no new solve to know *)
  Alcotest.(check bool) "core alone unsat" true
    (Solver.solve ~assumptions:core s = Solver.Unsat);
  (* without b everything is satisfiable, and the solver is reusable *)
  Alcotest.(check bool) "sat without b" true
    (Solver.solve ~assumptions:[ Lit.pos a; Lit.pos c ] s = Solver.Sat);
  (* outright-unsat databases report an empty core *)
  Solver.add_clause s [ Lit.pos b ];
  Alcotest.(check bool) "outright unsat" true
    (Solver.solve ~assumptions:[ Lit.pos a ] s = Solver.Unsat);
  Alcotest.(check (list int)) "empty core" [] (Solver.unsat_core s)

let test_selector_retirement () =
  (* Budget-style use: a selector guards a clause group that
     contradicts the base formula; retiring it recovers Sat. *)
  let s = Solver.create () in
  let x = Solver.new_var s and y = Solver.new_var s in
  Solver.add_clause s [ Lit.pos x; Lit.pos y ];
  let sel = Solver.new_selector s in
  Solver.add_clause s [ Lit.negate sel; Lit.neg x ];
  Solver.add_clause s [ Lit.negate sel; Lit.neg y ];
  Alcotest.(check bool) "unsat under selector" true
    (Solver.solve ~assumptions:[ sel ] s = Solver.Unsat);
  Solver.retire s sel;
  Alcotest.(check bool) "sat after retirement" true
    (Solver.solve s = Solver.Sat);
  let st = Solver.stats s in
  Alcotest.(check int) "retirement counted" 1 st.Solver.retired;
  (* a second group on a fresh selector is independent of the first *)
  let sel2 = Solver.new_selector s in
  Solver.add_clause s [ Lit.negate sel2; Lit.neg x ];
  Solver.add_clause s [ Lit.negate sel2; Lit.neg y ];
  Alcotest.(check bool) "second group unsat" true
    (Solver.solve ~assumptions:[ sel2 ] s = Solver.Unsat);
  Alcotest.(check bool) "still sat without it" true
    (Solver.solve s = Solver.Sat)

let test_lbd_tiers () =
  (* PHP(8,7) generates thousands of conflicts: the learnt DB must
     fill, reduce, and keep its tier accounting consistent. *)
  let pigeons = 8 and holes = 7 in
  let s = Solver.create () in
  let v =
    Array.init pigeons (fun _ -> Array.init holes (fun _ -> Solver.new_var s))
  in
  for p = 0 to pigeons - 1 do
    Solver.add_clause s (List.init holes (fun h -> Lit.pos v.(p).(h)))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Solver.add_clause s [ Lit.neg v.(p1).(h); Lit.neg v.(p2).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "php(8,7) unsat" true (Solver.solve s = Solver.Unsat);
  let st = Solver.stats s in
  Alcotest.(check bool) "conflicts seen" true (st.Solver.conflicts > 1000);
  Alcotest.(check bool) "learnts recorded" true (st.Solver.learned > 1000);
  Alcotest.(check bool) "reductions ran" true (st.Solver.reductions >= 1);
  Alcotest.(check bool) "local tier was pruned" true (st.Solver.deleted > 0);
  Alcotest.(check bool) "live tiers within recorded" true
    (st.Solver.learned_core + st.Solver.learned_local <= st.Solver.learned);
  Alcotest.(check bool) "tier counts non-negative" true
    (st.Solver.learned_core >= 0 && st.Solver.learned_local >= 0)

let test_stats_populated () =
  let rng = Prng.create 123 in
  let nv, clauses = random_instance rng ~max_vars:10 ~clause_factor:4 in
  let s = fresh_solver nv clauses in
  ignore (Solver.solve s);
  let st = Solver.stats s in
  Alcotest.(check bool) "propagations counted" true (st.Solver.propagations >= 0)

let () =
  Alcotest.run "sat"
    [ ( "solver",
        [ Alcotest.test_case "lit encoding" `Quick test_lit_encoding;
          Alcotest.test_case "fuzz vs brute force" `Slow test_fuzz_vs_brute_force;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "unit propagation" `Quick test_unit_propagation;
          Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole_unsat;
          Alcotest.test_case "xor chain" `Quick test_xor_chain_sat;
          Alcotest.test_case "assumptions" `Slow test_assumptions;
          Alcotest.test_case "incremental clauses" `Quick
            test_incremental_clauses;
          Alcotest.test_case "conflict budget" `Quick test_conflict_budget;
          Alcotest.test_case "stats" `Quick test_stats_populated ] );
      ( "incremental",
        [ Alcotest.test_case "fuzz incremental vs fresh" `Slow
            test_fuzz_incremental_vs_fresh;
          Alcotest.test_case "unsat core" `Quick test_unsat_core;
          Alcotest.test_case "selector retirement" `Quick
            test_selector_retirement;
          Alcotest.test_case "lbd tiers" `Quick test_lbd_tiers ] );
      ( "allsat",
        [ Alcotest.test_case "enumeration" `Quick test_allsat_enumeration;
          Alcotest.test_case "vs brute force" `Slow test_allsat_vs_brute_force ] );
      ( "dimacs",
        [ Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "invalid" `Quick test_dimacs_invalid ] ) ]
