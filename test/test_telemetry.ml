(* Tests for the telemetry subsystem: histogram bucketing and
   quantiles (also under concurrent recording), the span tracer's ring
   buffer and Chrome trace-event export, and the unified metrics
   snapshot. *)

module Json = Stp_telemetry.Json
module Hist = Stp_telemetry.Hist
module Trace = Stp_telemetry.Trace
module Telemetry = Stp_telemetry.Telemetry

let reset () =
  Trace.set_enabled false;
  Telemetry.set_metrics_enabled false;
  Telemetry.reset ()

(* {2 Histograms} *)

let test_bucket_bounds () =
  (* Buckets partition the non-negative integers: every value falls in
     exactly the bucket whose lower bound is the largest one <= it. *)
  let check_value ns =
    let idx = Hist.bucket_of_ns ns in
    let lo = Hist.bucket_lower_ns idx in
    Alcotest.(check bool)
      (Printf.sprintf "%d >= lower bound %d (bucket %d)" ns lo idx)
      true (ns >= lo);
    if idx + 1 < Hist.num_buckets then
      Alcotest.(check bool)
        (Printf.sprintf "%d < next lower bound (bucket %d)" ns idx)
        true
        (ns < Hist.bucket_lower_ns (idx + 1))
  in
  List.iter check_value
    [ 0; 1; 2; 3; 4; 5; 7; 8; 15; 16; 17; 100; 1_000; 12_345; 1_000_000;
      999_999_999; 123_456_789_012 ];
  (* Lower bounds are strictly increasing — no empty or inverted
     buckets. *)
  for i = 0 to Hist.num_buckets - 2 do
    Alcotest.(check bool)
      (Printf.sprintf "bound %d < bound %d" i (i + 1))
      true
      (Hist.bucket_lower_ns i < Hist.bucket_lower_ns (i + 1))
  done

let test_bucket_resolution () =
  (* Two significant bits: the relative bucket width stays <= 25%
     beyond the exact range. *)
  List.iter
    (fun i ->
      let lo = Hist.bucket_lower_ns i and hi = Hist.bucket_lower_ns (i + 1) in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d width %d <= 25%% of %d" i (hi - lo) lo)
        true
        (4 * (hi - lo) <= lo))
    (List.init 100 (fun i -> i + 4))

let test_quantiles_exact_small () =
  reset ();
  let h = Hist.get "test/exact" in
  (* Values < 4ns land in exact unit buckets, so quantiles are exact. *)
  List.iter (fun ns -> Hist.observe_ns h ns) [ 1; 1; 2; 3 ];
  let s = Hist.snapshot h in
  Alcotest.(check int) "count" 4 s.Hist.scount;
  Alcotest.(check (float 1e-12)) "p50 = 1ns" 1e-9 s.Hist.p50_s;
  Alcotest.(check (float 1e-12)) "p99 = 3ns" 3e-9 s.Hist.p99_s;
  Alcotest.(check (float 1e-12)) "min" 1e-9 s.Hist.min_s;
  Alcotest.(check (float 1e-12)) "max" 3e-9 s.Hist.max_s

let test_quantiles_log_scale () =
  reset ();
  let h = Hist.get "test/log" in
  (* 1000 observations of 1..1000 µs: p50 within a bucket of 500µs. *)
  for i = 1 to 1000 do
    Hist.observe_ns h (i * 1000)
  done;
  let s = Hist.snapshot h in
  Alcotest.(check int) "count" 1000 s.Hist.scount;
  let within q lo hi =
    Alcotest.(check bool)
      (Printf.sprintf "%g in [%g, %g]" q lo hi)
      true
      (q >= lo && q <= hi)
  in
  (* A bucket is at most 25% wide, so the midpoint estimate is within
     ~12.5% of the true quantile plus the rank rounding. *)
  within s.Hist.p50_s (350e-6) (650e-6);
  within s.Hist.p90_s (700e-6) (1100e-6);
  within s.Hist.p99_s (850e-6) (1200e-6);
  Alcotest.(check bool) "p50 <= p90 <= p99" true
    (s.Hist.p50_s <= s.Hist.p90_s && s.Hist.p90_s <= s.Hist.p99_s)

let test_concurrent_observe () =
  reset ();
  let h = Hist.get "test/concurrent" in
  let per_domain = 10_000 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Hist.observe_ns h ((i mod 100) + (d * 10))
            done))
  in
  List.iter Domain.join domains;
  let s = Hist.snapshot h in
  Alcotest.(check int) "no lost updates" (4 * per_domain) s.Hist.scount;
  let bucket_total = List.fold_left (fun a (_, c) -> a + c) 0 s.Hist.sbuckets in
  Alcotest.(check int) "bucket counts sum to count" s.Hist.scount bucket_total

let test_registry () =
  reset ();
  let a = Hist.get "test/a" in
  let a' = Hist.get "test/a" in
  Alcotest.(check bool) "get is idempotent" true (a == a');
  ignore (Hist.get "test/b");
  let names = List.map (fun h -> (Hist.snapshot h).Hist.sname) (Hist.registered ()) in
  Alcotest.(check bool) "both registered" true
    (List.mem "test/a" names && List.mem "test/b" names);
  Alcotest.(check bool) "find" true (Hist.find "test/a" <> None);
  Alcotest.(check bool) "find missing" true (Hist.find "test/absent" = None)

(* {2 Span tracer} *)

let test_trace_disabled_records_nothing () =
  reset ();
  Trace.span "should-not-appear" (fun () -> ()) |> ignore;
  Alcotest.(check int) "no events when disabled" 0 (List.length (Trace.events ()))

let test_trace_spans_and_export () =
  reset ();
  Trace.set_enabled true;
  let v =
    Trace.span "outer" ~args:[ ("k", "1") ] (fun () ->
        Trace.span "inner" (fun () -> 21) * 2)
  in
  Trace.set_enabled false;
  Alcotest.(check int) "span returns the body's value" 42 v;
  let events = Trace.events () in
  Alcotest.(check int) "two spans" 2 (List.length events);
  let inner = List.find (fun e -> e.Trace.name = "inner") events in
  let outer = List.find (fun e -> e.Trace.name = "outer") events in
  Alcotest.(check bool) "inner nested in outer" true
    (inner.Trace.t_start_ns >= outer.Trace.t_start_ns
    && inner.Trace.t_end_ns <= outer.Trace.t_end_ns);
  Alcotest.(check bool) "args kept" true (outer.Trace.args = [ ("k", "1") ]);
  (* The Chrome export is parseable JSON of the right shape. *)
  let path = Filename.temp_file "stp_trace" ".json" in
  let n = Trace.write ~path in
  Alcotest.(check int) "export count" 2 n;
  let ic = open_in path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  (match Json.of_string contents with
   | Error msg -> Alcotest.failf "trace JSON does not parse: %s" msg
   | Ok json -> (
     match Json.member "traceEvents" json with
     | Some (Json.List evs) ->
       Alcotest.(check int) "two trace events" 2 (List.length evs);
       List.iter
         (fun ev ->
           (match Json.member "ph" ev with
            | Some (Json.String "X") -> ()
            | _ -> Alcotest.fail "ph must be \"X\"");
           (match Option.bind (Json.member "dur" ev) Json.to_float_opt with
            | Some d -> Alcotest.(check bool) "dur >= 0" true (d >= 0.0)
            | None -> Alcotest.fail "dur missing");
           match Option.bind (Json.member "ts" ev) Json.to_float_opt with
           | Some ts -> Alcotest.(check bool) "ts >= 0" true (ts >= 0.0)
           | None -> Alcotest.fail "ts missing")
         evs
     | _ -> Alcotest.fail "traceEvents missing"))

let test_trace_exception_passthrough () =
  reset ();
  Trace.set_enabled true;
  Alcotest.check_raises "exception propagates" (Failure "boom") (fun () ->
      Trace.span "failing" (fun () -> failwith "boom"));
  Trace.set_enabled false;
  let events = Trace.events () in
  Alcotest.(check int) "failed span still recorded" 1 (List.length events);
  let e = List.hd events in
  Alcotest.(check bool) "exception noted in args" true
    (List.mem_assoc "exception" e.Trace.args)

let test_trace_multi_domain () =
  reset ();
  Trace.set_enabled true;
  let domains =
    List.init 3 (fun d ->
        Domain.spawn (fun () ->
            Trace.span (Printf.sprintf "d%d" d) (fun () -> Unix.sleepf 0.002)))
  in
  List.iter Domain.join domains;
  Trace.span "main" (fun () -> ());
  Trace.set_enabled false;
  let events = Trace.events () in
  (* Buffers survive domain termination: all four spans visible. *)
  Alcotest.(check int) "spans from every domain" 4 (List.length events);
  let tids =
    List.sort_uniq compare (List.map (fun e -> e.Trace.domain_id) events)
  in
  Alcotest.(check bool) "at least two distinct domain ids" true
    (List.length tids >= 2)

let test_trace_ring_growth () =
  reset ();
  Trace.set_enabled true;
  (* Cross several capacity doublings (buffers start at 1024) without
     reaching the ring cap: every span must survive, in order, with no
     dummy slots left behind by the growth path. *)
  let n = 5000 in
  for i = 1 to n do
    Trace.instant (Printf.sprintf "e%d" i)
  done;
  Trace.set_enabled false;
  let events = Trace.events () in
  Alcotest.(check int) "all spans kept below capacity" n (List.length events);
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped ());
  Alcotest.(check bool) "no empty-name (dummy) events" true
    (List.for_all (fun e -> e.Trace.name <> "") events);
  List.iteri
    (fun i e ->
      if e.Trace.name <> Printf.sprintf "e%d" (i + 1) then
        Alcotest.failf "event %d is %S, growth lost ordering" i e.Trace.name)
    events

let test_trace_ring_overflow () =
  reset ();
  Trace.set_enabled true;
  (* Overflow the default capacity: old events are dropped, counted,
     and recording never fails. *)
  for i = 1 to Trace.default_capacity + 100 do
    Trace.instant (Printf.sprintf "e%d" i)
  done;
  Trace.set_enabled false;
  let events = Trace.events () in
  Alcotest.(check int) "ring keeps capacity events" Trace.default_capacity
    (List.length events);
  Alcotest.(check int) "drops counted" 100 (Trace.dropped ());
  Alcotest.(check bool) "no empty-name (dummy) events" true
    (List.for_all (fun e -> e.Trace.name <> "") events);
  (* Exactly the oldest 100 spans were overwritten. *)
  Alcotest.(check string) "oldest surviving span" "e101"
    (List.hd events).Trace.name;
  Alcotest.(check string) "newest span kept"
    (Printf.sprintf "e%d" (Trace.default_capacity + 100))
    (List.nth events (Trace.default_capacity - 1)).Trace.name

(* {2 JSON reader edge cases} *)

let test_json_bad_unicode_escape_is_error () =
  (* A malformed \u escape must surface as [Error], not an exception —
     in the daemon a raising parser would kill the serve loop on one
     bad client line. *)
  List.iter
    (fun s ->
      match Json.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S must not parse" s)
    [ {|{"tt":"\uZZZZ"}|};       (* non-hex digits *)
      {|"\u1_23"|};              (* OCaml underscore literal *)
      {|"\u00"|};                (* truncated *)
      {|"\ud83d"|};              (* lone high surrogate *)
      {|"\udca9"|};              (* lone low surrogate *)
      {|"\ud83dxx"|} ]           (* high surrogate, no \u following *)

let test_json_unicode_escapes_decode () =
  (match Json.of_string {|"caf\u00e9"|} with
   | Ok (Json.String s) -> Alcotest.(check string) "2-byte" "caf\xc3\xa9" s
   | _ -> Alcotest.fail "\\u00e9 must parse");
  (match Json.of_string {|"\u20ac"|} with
   | Ok (Json.String s) -> Alcotest.(check string) "3-byte" "\xe2\x82\xac" s
   | _ -> Alcotest.fail "\\u20ac must parse");
  (* A surrogate pair combines into one 4-byte UTF-8 character
     (U+1F4A9), not two 3-byte CESU-8 sequences. *)
  match Json.of_string {|"\ud83d\udca9"|} with
  | Ok (Json.String s) ->
    Alcotest.(check string) "4-byte astral" "\xf0\x9f\x92\xa9" s
  | _ -> Alcotest.fail "surrogate pair must parse"

(* {2 The unified snapshot} *)

let test_snapshot_shape () =
  reset ();
  Telemetry.set_metrics_enabled true;
  Hist.observe_s (Hist.get "test/snap") 0.001;
  Telemetry.register_probe "test_probe" (fun () -> Json.Int 7);
  let json = Telemetry.snapshot_json () in
  Telemetry.unregister_probe "test_probe";
  Telemetry.set_metrics_enabled false;
  (match Json.member "histograms" json with
   | Some (Json.Obj hists) ->
     (match List.assoc_opt "test/snap" hists with
      | Some h ->
        (match Option.bind (Json.member "p50_s" h) Json.to_float_opt with
         | Some p ->
           (* One 1 ms observation: the reported quantile is its
              bucket's midpoint, within the <= 25% resolution. *)
           Alcotest.(check bool) "p50 populated" true
             (p >= 0.00075 && p <= 0.00125)
         | None -> Alcotest.fail "p50_s missing")
      | None -> Alcotest.fail "histogram missing from snapshot")
   | _ -> Alcotest.fail "histograms object missing");
  (match Json.member "profile" json with
   | Some (Json.Obj _) -> ()
   | _ -> Alcotest.fail "profile object missing");
  (match Json.member "test_probe" json with
   | Some (Json.Int 7) -> ()
   | _ -> Alcotest.fail "probe output missing");
  (* The snapshot round-trips through the printer and parser. *)
  match Json.of_string (Json.to_string json) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "snapshot does not round-trip: %s" msg

let test_probe_exception_is_reported () =
  reset ();
  Telemetry.register_probe "bad_probe" (fun () -> failwith "probe broke");
  let json = Telemetry.snapshot_json () in
  Telemetry.unregister_probe "bad_probe";
  match Json.member "bad_probe" json with
  | Some (Json.String s) ->
    Alcotest.(check bool) "failure message captured" true
      (String.length s > 0)
  | _ -> Alcotest.fail "failing probe must yield an error string"

let () =
  Alcotest.run "telemetry"
    [ ( "hist",
        [ Alcotest.test_case "bucket bounds" `Quick test_bucket_bounds;
          Alcotest.test_case "bucket resolution" `Quick test_bucket_resolution;
          Alcotest.test_case "exact small quantiles" `Quick
            test_quantiles_exact_small;
          Alcotest.test_case "log-scale quantiles" `Quick
            test_quantiles_log_scale;
          Alcotest.test_case "concurrent observe" `Quick test_concurrent_observe;
          Alcotest.test_case "registry" `Quick test_registry ] );
      ( "trace",
        [ Alcotest.test_case "disabled records nothing" `Quick
            test_trace_disabled_records_nothing;
          Alcotest.test_case "spans and chrome export" `Quick
            test_trace_spans_and_export;
          Alcotest.test_case "exception passthrough" `Quick
            test_trace_exception_passthrough;
          Alcotest.test_case "multi-domain spans" `Quick test_trace_multi_domain;
          Alcotest.test_case "ring growth" `Quick test_trace_ring_growth;
          Alcotest.test_case "ring overflow" `Quick test_trace_ring_overflow ] );
      ( "json",
        [ Alcotest.test_case "bad unicode escape is Error" `Quick
            test_json_bad_unicode_escape_is_error;
          Alcotest.test_case "unicode escapes decode" `Quick
            test_json_unicode_escapes_decode ] );
      ( "snapshot",
        [ Alcotest.test_case "unified shape" `Quick test_snapshot_shape;
          Alcotest.test_case "probe exception reported" `Quick
            test_probe_exception_is_reported ] ) ]
