(* Tests for fence enumeration and DAG shape generation (Section III-A,
   Figs. 2-3). *)

module Fence = Stp_topology.Fence
module Dag = Stp_topology.Dag

let test_fence_counts () =
  (* |F_k| = 2^(k-1) compositions *)
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Printf.sprintf "F_%d size" k)
        (1 lsl (k - 1))
        (List.length (Fence.generate k)))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_fence_f3 () =
  (* Fig. 2: F_3 has 4 fences, 2 survive pruning *)
  let all = Fence.generate 3 in
  Alcotest.(check int) "F_3" 4 (List.length all);
  let pruned = Fence.prune all in
  Alcotest.(check int) "pruned (Fig 2b)" 2 (List.length pruned);
  let as_lists = List.map Array.to_list pruned in
  Alcotest.(check bool) "<2,1> kept" true (List.mem [ 2; 1 ] as_lists);
  Alcotest.(check bool) "<1,1,1> kept" true (List.mem [ 1; 1; 1 ] as_lists)

let test_fence_invariants () =
  List.iter
    (fun k ->
      List.iter
        (fun f ->
          Alcotest.(check int) "node count" k (Fence.num_nodes f);
          Alcotest.(check bool) "levels nonempty" true
            (Array.for_all (fun c -> c > 0) f))
        (Fence.generate k))
    [ 1; 2; 3; 4; 5; 6 ]

let test_fence_pruned_top () =
  List.iter
    (fun k ->
      List.iter
        (fun f ->
          Alcotest.(check int) "single top" 1 f.(Fence.num_levels f - 1))
        (Fence.generate_pruned k))
    [ 1; 2; 3; 4; 5; 6; 7 ]

let test_dag_f3 () =
  (* Fig. 3: the valid shapes of F_3 *)
  let shapes = Dag.enumerate 3 in
  Alcotest.(check int) "three shapes" 3 (List.length shapes);
  List.iter
    (fun s ->
      Alcotest.(check int) "3 nodes" 3 (Dag.num_nodes s);
      Alcotest.(check int) "top" 2 (Dag.top s))
    shapes

let test_dag_structural_invariants () =
  List.iter
    (fun k ->
      Dag.iter k (fun s ->
          let num = Dag.num_nodes s in
          Alcotest.(check int) "nodes = k" k num;
          (* fanins point strictly backwards, distinct *)
          Array.iteri
            (fun i (a, b) ->
              (match (a, b) with
               | Dag.N x, Dag.N y ->
                 Alcotest.(check bool) "distinct" true (x <> y);
                 Alcotest.(check bool) "backward" true (x < i && y < i)
               | Dag.N x, Dag.L _ | Dag.L _, Dag.N x ->
                 Alcotest.(check bool) "backward" true (x < i)
               | Dag.L s1, Dag.L s2 ->
                 Alcotest.(check bool) "distinct slots" true (s1 <> s2));
              (* at least one fanin from the level directly below *)
              let lev = s.Dag.level.(i) in
              let level_of = function
                | Dag.N x -> s.Dag.level.(x) + 1 (* node levels are 0-based *)
                | Dag.L _ -> 0
              in
              ignore level_of;
              if lev > 0 then begin
                let from_prev = function
                  | Dag.N x -> s.Dag.level.(x) = lev - 1
                  | Dag.L _ -> false
                in
                Alcotest.(check bool) "prev-level fanin" true
                  (from_prev a || from_prev b)
              end)
            s.Dag.fanins;
          (* every non-top node is used *)
          let used = Array.make num false in
          Array.iter
            (fun (a, b) ->
              (match a with Dag.N x -> used.(x) <- true | Dag.L _ -> ());
              match b with Dag.N x -> used.(x) <- true | Dag.L _ -> ())
            s.Dag.fanins;
          for i = 0 to num - 2 do
            Alcotest.(check bool) "fanout >= 1" true used.(i)
          done;
          (* the top reaches every leaf *)
          Alcotest.(check int) "top reach" s.Dag.num_leaves
            (Dag.reach_count s (num - 1))))
    [ 1; 2; 3; 4; 5 ]

let test_dag_counts_stable () =
  (* regression pin: shape family sizes *)
  let counts = List.map (fun k -> List.length (Dag.enumerate k)) [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check (list int)) "family sizes" [ 1; 1; 3; 12; 66 ] counts

let test_dag_tree_flag () =
  Dag.iter 4 (fun s ->
      let fanout = Array.make (Dag.num_nodes s) 0 in
      Array.iter
        (fun (a, b) ->
          (match a with Dag.N x -> fanout.(x) <- fanout.(x) + 1 | Dag.L _ -> ());
          match b with Dag.N x -> fanout.(x) <- fanout.(x) + 1 | Dag.L _ -> ())
        s.Dag.fanins;
      let is_tree = Array.for_all (fun c -> c <= 1) fanout in
      Alcotest.(check bool) "tree flag" is_tree s.Dag.is_tree)

let test_iter_matches_enumerate () =
  List.iter
    (fun k ->
      let via_iter = ref 0 in
      Dag.iter k (fun _ -> incr via_iter);
      Alcotest.(check int) "iter = enumerate" (List.length (Dag.enumerate k))
        !via_iter)
    [ 1; 2; 3; 4; 5; 6 ]

let test_leaf_numbering () =
  Dag.iter 4 (fun s ->
      (* leaf slots are numbered 0 .. num_leaves-1, each exactly once *)
      let seen = Array.make s.Dag.num_leaves 0 in
      Array.iter
        (fun (a, b) ->
          (match a with Dag.L l -> seen.(l) <- seen.(l) + 1 | Dag.N _ -> ());
          match b with Dag.L l -> seen.(l) <- seen.(l) + 1 | Dag.N _ -> ())
        s.Dag.fanins;
      Alcotest.(check bool) "each slot once" true
        (Array.for_all (fun c -> c = 1) seen))

let () =
  Alcotest.run "topology"
    [ ( "fence",
        [ Alcotest.test_case "counts" `Quick test_fence_counts;
          Alcotest.test_case "F_3 (Fig 2)" `Quick test_fence_f3;
          Alcotest.test_case "invariants" `Quick test_fence_invariants;
          Alcotest.test_case "pruned top" `Quick test_fence_pruned_top ] );
      ( "dag",
        [ Alcotest.test_case "F_3 shapes (Fig 3)" `Quick test_dag_f3;
          Alcotest.test_case "structural invariants" `Quick
            test_dag_structural_invariants;
          Alcotest.test_case "family sizes" `Quick test_dag_counts_stable;
          Alcotest.test_case "tree flag" `Quick test_dag_tree_flag;
          Alcotest.test_case "iter = enumerate" `Quick test_iter_matches_enumerate;
          Alcotest.test_case "leaf numbering" `Quick test_leaf_numbering ] ) ]
