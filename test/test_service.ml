(* Fork-based integration tests for the sharded multiplexing service:
   class-invariant shard routing, pipelined concurrent clients (Unix
   socket and TCP) with per-client response order, and kill -9 crash
   recovery without losing accepted requests. The parent must stay
   domain-free — OCaml 5 refuses [Unix.fork] after a domain spawn; the
   forked service front-end is domain-free too and its workers only
   spawn domains after the last fork. *)

module Tt = Stp_tt.Tt
module Npn = Stp_tt.Npn
module Prng = Stp_util.Prng
module Report = Stp_harness.Report
module Service = Stp_service.Service
module Wire = Stp_service.Wire

let temp_sock () =
  let path = Filename.temp_file "stp_service_test" ".sock" in
  Sys.remove path;
  path

let parse_response line =
  match Report.of_string line with
  | Ok json -> json
  | Error msg -> Alcotest.failf "unparseable response %S: %s" line msg

let get_string key json =
  match Report.member key json with
  | Some (Report.String s) -> Some s
  | _ -> None

let get_int key json =
  match Report.member key json with
  | Some (Report.Int i) -> Some i
  | _ -> None

(* {2 Routing} *)

let test_shard_of_class_invariant () =
  let prng = Prng.create 7 in
  let classes = [ "8ff8"; "6996"; "1ee1"; "0117"; "007f" ] in
  List.iter
    (fun hex ->
      let f = Tt.of_hex ~n:4 hex in
      let home = Service.shard_of ~shards:4 f in
      for _ = 1 to 25 do
        let perm = Array.init 4 Fun.id in
        Prng.shuffle prng perm;
        let tr =
          { Npn.perm;
            input_neg = Prng.bits prng 4;
            output_neg = Prng.bool prng }
        in
        let member = Npn.apply f tr in
        Alcotest.(check int)
          (Printf.sprintf "every member of %s routes to its class's shard" hex)
          home
          (Service.shard_of ~shards:4 member)
      done)
    classes;
  (* The partition must actually spread classes around. *)
  let shards_hit = Hashtbl.create 8 in
  List.iter
    (fun hex ->
      Hashtbl.replace shards_hit
        (Service.shard_of ~shards:4 (Tt.of_hex ~n:4 hex))
        ())
    classes;
  Alcotest.(check bool) "classes spread over more than one shard" true
    (Hashtbl.length shards_hit > 1);
  Alcotest.(check int) "single shard routes everything to 0" 0
    (Service.shard_of ~shards:1 (Tt.of_hex ~n:4 "8ff8"))

(* {2 Wire} *)

let test_parse_tcp () =
  let check_ok spec expect =
    Alcotest.(check (pair string int)) spec expect (Wire.parse_tcp spec)
  in
  check_ok "7777" ("127.0.0.1", 7777);
  check_ok ":7777" ("127.0.0.1", 7777);
  check_ok "10.0.0.1:443" ("10.0.0.1", 443);
  let rejects spec =
    match Wire.parse_tcp spec with
    | _ -> Alcotest.failf "parse_tcp accepted %S" spec
    | exception Failure _ -> ()
  in
  rejects "";
  rejects "localhost:notaport";
  rejects "1:2:3";
  rejects "::1";
  rejects "[::1]:80";
  rejects "127.0.0.1:70000"

(* A newline-free stream must not grow the conn's line buffer without
   bound: past the cap the conn is marked eof and yields no lines. *)
let test_read_line_cap () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock a;
  let conn = Wire.make b in
  let chunk = Bytes.make 65536 'x' in
  let limit = 32 * 1024 * 1024 in
  let total = ref 0 in
  while (not (Wire.eof conn)) && !total < limit do
    (match Unix.write a chunk 0 (Bytes.length chunk) with
     | n -> total := !total + n
     | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
       ());
    Alcotest.(check (list string)) "no lines from a newline-free stream" []
      (Wire.read_lines conn)
  done;
  Alcotest.(check bool) "oversized line flips eof" true (Wire.eof conn);
  Alcotest.(check bool) "eof arrives well before the stream ends" true
    (!total < limit);
  Unix.close a;
  Wire.close conn

(* {2 The forked service} *)

let spawn_service ?(shards = 2) ?(store = "") ?(window = 64) ?(tcp = "")
    ~socket () =
  match Unix.fork () with
  | 0 ->
    (try
       Service.serve
         { Service.default_config with
           Service.shards;
           store;
           socket;
           tcp;
           window;
           timeout = 10.0 }
     with _ -> Unix._exit 1);
    Unix._exit 0
  | pid -> pid

let stop_service pid =
  Unix.kill pid Sys.sigterm;
  let _, status = Unix.waitpid [] pid in
  Alcotest.(check bool) "service exits 0 on SIGTERM" true
    (status = Unix.WEXITED 0)

let request ~id ~n tt =
  Printf.sprintf {|{"id": %d, "n": %d, "tt": "%s"}|} id n tt

(* Four NPN targets, two arities, cycled per client in a client-specific
   rotation so concurrent clients hit overlapping classes in different
   orders. *)
let targets = [| (4, "8ff8"); (4, "6996"); (3, "e8"); (3, "96") |]

let test_pipelined_clients_keep_order () =
  let socket = temp_sock () in
  let port = 31000 + (Unix.getpid () mod 20000) in
  let pid = spawn_service ~socket ~tcp:(Printf.sprintf "127.0.0.1:%d" port) () in
  Fun.protect ~finally:(fun () -> stop_service pid) @@ fun () ->
  (* Four concurrent clients — two on the Unix socket, two on TCP —
     each pipelining its whole batch before reading anything. *)
  let per_client = 12 in
  let clients =
    Array.init 4 (fun c ->
        let addr =
          if c < 2 then Wire.Unix_path socket
          else Wire.Tcp ("127.0.0.1", port)
        in
        (c, Wire.connect addr))
  in
  Array.iter
    (fun (c, fd) ->
      let lines =
        List.init per_client (fun i ->
            let n, tt = targets.((c + i) mod Array.length targets) in
            request ~id:((c * 1000) + i) ~n tt)
      in
      Wire.send_lines fd lines)
    clients;
  (* Only now read: every client must see its own ids, in its own send
     order, every one answered. *)
  Array.iter
    (fun (c, fd) ->
      let r = Wire.line_reader fd in
      for i = 0 to per_client - 1 do
        match Wire.next_line r with
        | None -> Alcotest.failf "client %d: EOF after %d responses" c i
        | Some line ->
          let json = parse_response line in
          Alcotest.(check (option int))
            (Printf.sprintf "client %d response %d in request order" c i)
            (Some ((c * 1000) + i))
            (get_int "id" json);
          Alcotest.(check (option string))
            (Printf.sprintf "client %d response %d solved" c i)
            (Some "solved") (get_string "status" json)
      done;
      Unix.close fd)
    clients

let test_kill_shard_loses_nothing () =
  let socket = temp_sock () in
  let store = Filename.temp_file "stp_service_test" ".npn" in
  Sys.remove store;
  let pid = spawn_service ~socket ~store () in
  Fun.protect ~finally:(fun () -> stop_service pid) @@ fun () ->
  let fd = Wire.connect (Wire.Unix_path socket) in
  let r = Wire.line_reader fd in
  (* Worker pids from the front-end's stats. *)
  Wire.send_lines fd [ {|{"type": "stats", "id": -1}|} ];
  let stats =
    match Wire.next_line r with
    | Some line -> parse_response line
    | None -> Alcotest.fail "no stats response"
  in
  let pids =
    match Report.member "shards" stats with
    | Some (Report.List shards) ->
      List.filter_map (fun s -> get_int "pid" s) shards
    | _ -> Alcotest.fail "stats carries no shard list"
  in
  Alcotest.(check int) "two workers running" 2 (List.length pids);
  (* Pipeline a stream, then SIGKILL one worker while it is mid-work:
     its unanswered in-flight requests must be re-dispatched to the
     replacement, so the client still sees every response, in order. *)
  let total = 12 in
  let lines =
    List.init total (fun i ->
        let n, tt = targets.(i mod Array.length targets) in
        request ~id:i ~n tt)
  in
  Wire.send_lines fd lines;
  Unix.kill (List.hd pids) Sys.sigkill;
  for i = 0 to total - 1 do
    match Wire.next_line r with
    | None -> Alcotest.failf "EOF after %d responses" i
    | Some line ->
      let json = parse_response line in
      Alcotest.(check (option int))
        (Printf.sprintf "response %d in request order despite the kill" i)
        (Some i) (get_int "id" json);
      Alcotest.(check (option string))
        (Printf.sprintf "response %d solved" i)
        (Some "solved") (get_string "status" json)
  done;
  (* The killed worker was restarted and the service still answers. *)
  Wire.send_lines fd [ {|{"type": "stats", "id": -2}|} ];
  (match Wire.next_line r with
   | None -> Alcotest.fail "no stats after recovery"
   | Some line ->
     let stats = parse_response line in
     let restarts =
       match Report.member "shards" stats with
       | Some (Report.List shards) ->
         List.fold_left
           (fun acc s -> acc + Option.value ~default:0 (get_int "restarts" s))
           0 shards
       | _ -> 0
     in
     Alcotest.(check bool) "a worker restart is recorded" true (restarts >= 1));
  Unix.close fd;
  (* Shard section files exist for the store base. *)
  Alcotest.(check bool) "shard store sections written" true
    (Sys.file_exists
       (Service.shard_store_path ~base:store ~shard:0 ~shards:2)
    || Sys.file_exists
         (Service.shard_store_path ~base:store ~shard:1 ~shards:2))

let test_backpressure_stalls_are_counted () =
  let socket = temp_sock () in
  (* window = 1: the second pipelined request already stalls the
     client, so the stall counter must move. *)
  let pid = spawn_service ~socket ~window:1 () in
  Fun.protect ~finally:(fun () -> stop_service pid) @@ fun () ->
  let fd = Wire.connect (Wire.Unix_path socket) in
  let r = Wire.line_reader fd in
  let total = 6 in
  Wire.send_lines fd
    (List.init total (fun i ->
         let n, tt = targets.(i mod Array.length targets) in
         request ~id:i ~n tt));
  for i = 0 to total - 1 do
    match Wire.next_line r with
    | None -> Alcotest.failf "EOF after %d responses" i
    | Some line ->
      Alcotest.(check (option int)) "in order under backpressure" (Some i)
        (get_int "id" (parse_response line))
  done;
  Wire.send_lines fd [ {|{"type": "stats"}|} ];
  (match Wire.next_line r with
   | None -> Alcotest.fail "no stats response"
   | Some line ->
     let stats = parse_response line in
     let stalls =
       match Report.member "backpressure" stats with
       | Some bp -> Option.value ~default:0 (get_int "stalls" bp)
       | None -> 0
     in
     Alcotest.(check bool) "stalls counted" true (stalls >= 1));
  Unix.close fd

let () =
  Alcotest.run "service"
    [ ( "routing",
        [ Alcotest.test_case "shard_of is NPN-class invariant" `Quick
            test_shard_of_class_invariant ] );
      ( "wire",
        [ Alcotest.test_case "parse_tcp accepts host:port, rejects junk"
            `Quick test_parse_tcp;
          Alcotest.test_case "read_lines caps a newline-free stream" `Quick
            test_read_line_cap ] );
      ( "service",
        [ Alcotest.test_case "pipelined clients keep per-client order" `Slow
            test_pipelined_clients_keep_order;
          Alcotest.test_case "kill -9 a shard loses nothing" `Slow
            test_kill_shard_loses_nothing;
          Alcotest.test_case "backpressure stalls are counted" `Slow
            test_backpressure_stalls_are_counted ] ) ]
