type cube = { mask : int; value : int }

let cube_compatible a b = (a.value lxor b.value) land (a.mask land b.mask) = 0

let cube_merge a b =
  if cube_compatible a b then
    Some { mask = a.mask lor b.mask; value = a.value lor b.value }
  else None

let popcount x =
  let rec loop x acc = if x = 0 then acc else loop (x land (x - 1)) (acc + 1) in
  loop x 0

(* Merge two cube sets pairwise (the MERGE of Algorithm 1), deduplicating
   and dropping cubes subsumed by another cube of the result.

   Dedup is key-based on the packed (mask, value) pair. Subsumption — [d]
   subsumes [c] when [d] assigns a subset of [c]'s positions with the
   same values — is bucketed by [popcount mask]: after dedup, a subsuming
   cube distinct from [c] necessarily fixes strictly fewer positions
   (equal popcount + subset forces equal masks, hence equal keys), so
   each cube only scans the buckets strictly below its own. Subsumption
   is transitive, so testing against dropped subsumers too is sound. *)
let merge_sets xs ys =
  let out = Hashtbl.create 64 in
  let merges = ref 0 in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          match cube_merge x y with
          | Some c ->
            incr merges;
            Hashtbl.replace out (c.mask, c.value) c
          | None -> ())
        ys)
    xs;
  Stp_util.Profile.add Stp_util.Profile.Cube_merges !merges;
  let buckets = Array.make 64 [] in
  Hashtbl.iter
    (fun _ c ->
      let p = popcount c.mask in
      buckets.(p) <- c :: buckets.(p))
    out;
  let checks = ref 0 in
  let subsumed pc c =
    let rec scan p =
      p < pc
      && (List.exists
            (fun d ->
              incr checks;
              d.mask land c.mask = d.mask
              && (d.value lxor c.value) land d.mask = 0)
            buckets.(p)
          || scan (p + 1))
    in
    scan 0
  in
  let acc = ref [] in
  for p = 63 downto 0 do
    List.iter (fun c -> if not (subsumed p c) then acc := c :: !acc) buckets.(p)
  done;
  Stp_util.Profile.add Stp_util.Profile.Cube_subsumption_checks !checks;
  !acc

let solve (net : Lut_network.t) ~targets =
  if Array.length targets <> Array.length net.outputs then
    invalid_arg "Circuit_solver.solve: targets arity";
  if net.num_inputs > 30 then
    invalid_arg "Circuit_solver.solve: too many inputs for cube masks";
  let memo : (int * bool, cube list) Hashtbl.t = Hashtbl.create 97 in
  (* Solutions making signal [s] evaluate to [v] (Algorithm 2). *)
  let rec traverse s v =
    match Hashtbl.find_opt memo (s, v) with
    | Some r -> r
    | None ->
      let r =
        if s < net.num_inputs then
          [ { mask = 1 lsl s; value = (if v then 1 lsl s else 0) } ]
        else begin
          let l = net.luts.(s - net.num_inputs) in
          let arity = Array.length l.fanins in
          (* Each truth-table row with output [v] contributes the merge of
             its fanin requirements. *)
          let acc = ref [] in
          for m = 0 to (1 lsl arity) - 1 do
            if Stp_tt.Tt.get l.tt m = v then begin
              let row_cubes =
                Array.to_list l.fanins
                |> List.mapi (fun j f -> traverse f ((m lsr j) land 1 = 1))
                |> function
                | [] -> assert false
                | first :: rest -> List.fold_left merge_sets first rest
              in
              acc := row_cubes @ !acc
            end
          done;
          (* Dedup + subsumption across rows. *)
          merge_sets !acc [ { mask = 0; value = 0 } ]
        end
      in
      Hashtbl.replace memo (s, v) r;
      r
  in
  (* Algorithm 1: per-output solution sets, merged left to right. *)
  let per_output =
    Array.to_list (Array.mapi (fun i o -> traverse o targets.(i)) net.outputs)
  in
  match per_output with
  | [] -> assert false
  | first :: rest -> List.fold_left merge_sets first rest

let onset net ~targets =
  let n = max net.Lut_network.num_inputs 1 in
  let cubes = solve net ~targets in
  List.fold_left
    (fun acc c ->
      Stp_tt.Tt.bor acc
        (Stp_tt.Tt.of_fun n (fun m -> (m lxor c.value) land c.mask = 0)))
    (Stp_tt.Tt.zero n) cubes

let count_solutions net ~targets = Stp_tt.Tt.count_ones (onset net ~targets)

let is_sat net ~targets = solve net ~targets <> []

let all_minterms net ~targets =
  let t = onset net ~targets in
  let rec loop m acc =
    if m < 0 then acc else loop (m - 1) (if Stp_tt.Tt.get t m then m :: acc else acc)
  in
  loop (Stp_tt.Tt.num_bits t - 1) []

let verify_chain c f =
  let net = Lut_network.of_chain c in
  let f_s = onset net ~targets:[| true |] in
  Stp_tt.Tt.equal f_s f

let pp_cube ~n fmt c =
  Format.fprintf fmt "(";
  for i = 0 to n - 1 do
    if i > 0 then Format.fprintf fmt ",";
    if (c.mask lsr i) land 1 = 0 then Format.fprintf fmt "-"
    else Format.fprintf fmt "%d" ((c.value lsr i) land 1)
  done;
  Format.fprintf fmt ")"
