(** The STP-based circuit AllSAT solver (Section III-C, Algorithms 1–2).

    Given a LUT network and a target value for every primary output, the
    solver recursively propagates targets towards the primary inputs: a
    LUT with target [v] admits exactly the fanin value combinations whose
    row of its structural matrix (equivalently, truth table) evaluates to
    [v]; the per-fanin solution sets are then merged. Solutions are
    {e cubes} — partial assignments of the primary inputs in which
    unassigned positions ([-] in the paper's notation) may take either
    value.

    The implementation memoises per (signal, value) and represents cubes
    as bit-mask pairs, so shared sub-circuits are traversed once. *)

type cube = {
  mask : int;   (** bit [i] set iff input [i] is assigned *)
  value : int;  (** assigned values; [value land lnot mask = 0] *)
}

val cube_compatible : cube -> cube -> bool
val cube_merge : cube -> cube -> cube option

val merge_sets : cube list -> cube list -> cube list
(** The MERGE of Algorithm 1: all pairwise compatible merges of the two
    sets, deduplicated on the packed (mask, value) key, with cubes
    subsumed by a shorter cube of the result dropped. *)

val solve : Lut_network.t -> targets:bool array -> cube list
(** [solve net ~targets] returns all solution cubes. The list is empty
    exactly when the instance is UNSAT. [targets] must have one entry
    per network output. Cubes in the result are pairwise disjoint... not
    guaranteed — they may overlap; use {!onset} for a canonical
    answer. *)

val onset : Lut_network.t -> targets:bool array -> Stp_tt.Tt.t
(** The characteristic function (over the primary inputs) of all
    satisfying assignments — the union of the solution cubes. *)

val count_solutions : Lut_network.t -> targets:bool array -> int
(** Number of distinct satisfying input assignments. *)

val is_sat : Lut_network.t -> targets:bool array -> bool

val all_minterms : Lut_network.t -> targets:bool array -> int list
(** All satisfying assignments, expanded to minterm indices,
    ascending. *)

val verify_chain :
  Stp_chain.Chain.t -> Stp_tt.Tt.t -> bool
(** [verify_chain c f] runs the paper's correctness check on a Boolean
    chain candidate: solve the chain's network for output target [1],
    simulate the solution set to a function [f_s], and test [f_s = f]
    (Section III-C step (iii)). *)

val pp_cube : n:int -> Format.formatter -> cube -> unit
(** Prints in the paper's style, e.g. [(1,0,-,1)]. *)
