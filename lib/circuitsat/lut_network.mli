(** Networks of k-input look-up tables.

    The paper's circuit-based solver takes "the LUTs" as input
    (Algorithm 1); this module is the corresponding network
    representation. Signals are indexed from 0: indices
    [0 .. num_inputs - 1] are primary inputs, [num_inputs + i] is LUT
    [i]. Every LUT reads strictly earlier signals, so the network is a
    DAG by construction. *)

type lut = {
  tt : Stp_tt.Tt.t;    (** function of the LUT, arity = #fanins *)
  fanins : int array;  (** variable [j] of [tt] reads [fanins.(j)] *)
}

type t = private {
  num_inputs : int;
  luts : lut array;
  outputs : int array; (** signal indices of the primary outputs *)
}

val make : num_inputs:int -> luts:lut list -> outputs:int list -> t
(** Validates arities and topological fanin order.
    @raise Invalid_argument on malformed networks. *)

val of_chain : Stp_chain.Chain.t -> t
(** A Boolean chain as a single-output 2-LUT network (the output
    complement is absorbed into a LUT when necessary). *)

val num_signals : t -> int

val size : t -> int
(** Number of LUTs. *)

val simulate_signals : t -> Stp_tt.Tt.t array
(** Functions of all signals over the primary inputs. *)

val simulate : t -> Stp_tt.Tt.t array
(** Functions of the outputs. *)

val fanouts : t -> int array
(** [fanouts net] counts, per signal, how many LUT fanins read it. *)

val pp : Format.formatter -> t -> unit
