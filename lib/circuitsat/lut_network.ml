type lut = { tt : Stp_tt.Tt.t; fanins : int array }

type t = { num_inputs : int; luts : lut array; outputs : int array }

let make ~num_inputs ~luts ~outputs =
  if num_inputs < 0 then invalid_arg "Lut_network.make";
  let luts = Array.of_list luts in
  Array.iteri
    (fun i l ->
      let idx = num_inputs + i in
      let arity = Array.length l.fanins in
      if arity = 0 then invalid_arg "Lut_network.make: zero-arity LUT";
      if Stp_tt.Tt.num_vars l.tt <> arity then
        invalid_arg "Lut_network.make: arity mismatch";
      Array.iter
        (fun f -> if f < 0 || f >= idx then invalid_arg "Lut_network.make: fanin")
        l.fanins)
    luts;
  let total = num_inputs + Array.length luts in
  let outputs = Array.of_list outputs in
  Array.iter
    (fun o -> if o < 0 || o >= total then invalid_arg "Lut_network.make: output")
    outputs;
  if Array.length outputs = 0 then invalid_arg "Lut_network.make: no outputs";
  { num_inputs; luts; outputs }

let of_chain (c : Stp_chain.Chain.t) =
  let open Stp_chain in
  let luts =
    Array.to_list
      (Array.map
         (fun (s : Chain.step) ->
           { tt = Gate.tt s.gate; fanins = [| s.fanin1; s.fanin2 |] })
         c.Chain.steps)
  in
  if c.Chain.output_negated then
    if c.Chain.output < c.Chain.n || Array.length c.Chain.steps = 0 then
      (* Output is a complemented input (or there are no steps): realise
         the complement with an explicit inverter LUT. *)
      let inv =
        { tt = Stp_tt.Tt.bnot (Stp_tt.Tt.var 1 0); fanins = [| c.Chain.output |] }
      in
      make ~num_inputs:c.Chain.n ~luts:(luts @ [ inv ])
        ~outputs:[ c.Chain.n + List.length luts ]
    else
      (* Complement the output LUT in place. *)
      let luts =
        List.mapi
          (fun i l ->
            if c.Chain.n + i = c.Chain.output then
              { l with tt = Stp_tt.Tt.bnot l.tt }
            else l)
          luts
      in
      make ~num_inputs:c.Chain.n ~luts ~outputs:[ c.Chain.output ]
  else make ~num_inputs:c.Chain.n ~luts ~outputs:[ c.Chain.output ]

let num_signals t = t.num_inputs + Array.length t.luts

let size t = Array.length t.luts

let simulate_signals t =
  let n = max t.num_inputs 1 in
  let sigs = Array.make (num_signals t) (Stp_tt.Tt.zero n) in
  for i = 0 to t.num_inputs - 1 do
    sigs.(i) <- Stp_tt.Tt.var n i
  done;
  Array.iteri
    (fun i l ->
      let args = Array.map (fun f -> sigs.(f)) l.fanins in
      sigs.(t.num_inputs + i) <- Stp_tt.Tt.compose l.tt args)
    t.luts;
  sigs

let simulate t =
  let sigs = simulate_signals t in
  Array.map (fun o -> sigs.(o)) t.outputs

let fanouts t =
  let counts = Array.make (num_signals t) 0 in
  Array.iter
    (fun l -> Array.iter (fun f -> counts.(f) <- counts.(f) + 1) l.fanins)
    t.luts;
  counts

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun i l ->
      Format.fprintf fmt "n%d = lut %s(" (t.num_inputs + i)
        (Stp_tt.Tt.to_hex l.tt);
      Array.iteri
        (fun j f ->
          if j > 0 then Format.fprintf fmt ", ";
          Format.fprintf fmt "n%d" f)
        l.fanins;
      Format.fprintf fmt ")@,")
    t.luts;
  Format.fprintf fmt "outputs:";
  Array.iter (fun o -> Format.fprintf fmt " n%d" o) t.outputs;
  Format.fprintf fmt "@]"
