(** Non-blocking line-buffered connections for the service front-end.

    A {!conn} wraps one socket with a read buffer (bytes → complete
    JSON lines) and a write queue (lines → bytes, flushed as far as the
    kernel allows without blocking). The front-end's single select loop
    owns every conn — clients, shard pipes — and moves data with
    {!read_lines}/{!flush_out}; nothing here blocks.

    The module also carries the shared address plumbing (Unix-path and
    TCP listeners, retrying connect) and a small blocking line reader
    for plain clients and tests. *)

type conn

val make : Unix.file_descr -> conn
(** Take ownership of [fd] and set it non-blocking. *)

val fd : conn -> Unix.file_descr

val read_lines : conn -> string list
(** Drain everything the kernel has buffered and return the complete
    lines; a partial trailing line stays buffered. EOF or a fatal read
    error flips {!eof} (after yielding the lines already received), as
    does a partial line growing past an 8 MB cap — backpressure cannot
    bound the line buffer, so the cap does. *)

val queue_line : conn -> string -> unit
(** Enqueue [line ^ "\n"] for {!flush_out}. *)

val flush_out : conn -> bool
(** Write as much queued output as the kernel accepts right now;
    [false] means the peer is gone (EPIPE/ECONNRESET) and the conn
    should be dropped. *)

val pending_out : conn -> int
(** Unsent output bytes — the write-side backpressure signal. *)

val eof : conn -> bool

val close : conn -> unit
(** Close the fd (idempotent; errors ignored) and mark {!eof}. *)

(** {2 Addresses} *)

type addr = Unix_path of string | Tcp of string * int

val parse_tcp : string -> string * int
(** ["host:port"], [":port"] or ["port"] → (host, port); the empty or
    missing host means ["127.0.0.1"]. IPv6 literals are rejected — the
    service resolves IPv4 only.
    @raise Failure with a usage message on an unparseable port, an
    out-of-range port, or a multi-colon (IPv6) spec. *)

val listen : addr -> Unix.file_descr
(** Bind + listen (backlog 64). Unix paths are unlinked first; TCP
    sockets get [SO_REUSEADDR]. The fd is close-on-exec and blocking —
    accept readiness comes from the select loop. *)

val connect : ?attempts:int -> addr -> Unix.file_descr
(** Blocking connect with bounded exponential backoff (default 25
    attempts, ~3 s worst case) on [ECONNREFUSED]/[ENOENT], so clients
    forked moments after the service need not poll for the listener.
    @raise Unix.Unix_error when the service never comes up. *)

(** {2 Blocking line I/O (clients, tests)} *)

type line_reader

val line_reader : Unix.file_descr -> line_reader

val next_line : line_reader -> string option
(** Next complete line, blocking until one arrives; [None] on EOF. *)

val send_lines : Unix.file_descr -> string list -> unit
(** Write the lines newline-terminated, blocking until all bytes are
    out. *)
