(* Non-blocking line-buffered connections for the service front-end:
   one [conn] per client and per shard pipe, drained and filled from a
   single select loop. All reads and writes are best-effort — they move
   as many bytes as the kernel will take without blocking and leave the
   rest buffered. *)

type conn = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;              (* received bytes not yet split to lines *)
  chunk : Bytes.t;
  out : string Queue.t;         (* pending output, oldest first *)
  mutable out_head_off : int;   (* bytes of [Queue.peek out] already sent *)
  mutable out_bytes : int;      (* total unsent bytes across [out] *)
  mutable eof : bool;           (* read side saw EOF or a fatal error *)
}

let make fd =
  Unix.set_nonblock fd;
  { fd;
    rbuf = Buffer.create 4096;
    chunk = Bytes.create 65536;
    out = Queue.create ();
    out_head_off = 0;
    out_bytes = 0;
    eof = false }

let fd c = c.fd

let eof c = c.eof

let pending_out c = c.out_bytes

let close c =
  c.eof <- true;
  try Unix.close c.fd with Unix.Unix_error _ -> ()

(* Complete lines currently buffered; the partial tail stays. *)
let split_lines c =
  let s = Buffer.contents c.rbuf in
  match String.rindex_opt s '\n' with
  | None -> []
  | Some i ->
    Buffer.clear c.rbuf;
    Buffer.add_substring c.rbuf s (i + 1) (String.length s - i - 1);
    String.split_on_char '\n' (String.sub s 0 i)

(* Backpressure cannot protect [rbuf] — bytes are consumed eagerly —
   so a peer streaming data with no newline would grow it without
   bound. No legitimate request line approaches this size; a conn whose
   partial line exceeds it is dropped as [eof]. *)
let max_line_bytes = 8 * 1024 * 1024

(* Drain everything the kernel has for us right now; returns the
   complete lines that produced. EOF and connection-reset errors mark
   the conn [eof] (after yielding any lines already buffered), as does
   a buffered partial line growing past [max_line_bytes]. *)
let read_lines c =
  let continue = ref (not c.eof) in
  while !continue do
    match Unix.read c.fd c.chunk 0 (Bytes.length c.chunk) with
    | 0 ->
      c.eof <- true;
      continue := false
    | n ->
      Buffer.add_subbytes c.rbuf c.chunk 0 n;
      (* Bound one drain too: a fast local writer can keep the fd
         readable indefinitely. Complete lines beyond the cap wait for
         the next loop iteration. *)
      if Buffer.length c.rbuf > max_line_bytes then continue := false
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      c.eof <- true;
      continue := false
  done;
  let lines = split_lines c in
  if Buffer.length c.rbuf > max_line_bytes then begin
    c.eof <- true;
    Buffer.clear c.rbuf
  end;
  lines

let queue_line c line =
  Queue.add (line ^ "\n") c.out;
  c.out_bytes <- c.out_bytes + String.length line + 1

(* Write as much buffered output as the kernel accepts. Returns [false]
   when the peer is gone (EPIPE/ECONNRESET) — the caller drops the
   conn. *)
let flush_out c =
  let ok = ref true in
  let continue = ref true in
  while !continue && not (Queue.is_empty c.out) do
    let s = Queue.peek c.out in
    let off = c.out_head_off in
    match Unix.write_substring c.fd s off (String.length s - off) with
    | n ->
      c.out_bytes <- c.out_bytes - n;
      if off + n = String.length s then begin
        ignore (Queue.pop c.out);
        c.out_head_off <- 0
      end
      else c.out_head_off <- off + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      ok := false;
      continue := false
  done;
  !ok

(* {2 Addresses and listeners} *)

type addr = Unix_path of string | Tcp of string * int

let parse_tcp spec =
  let bad reason =
    failwith (Printf.sprintf "bad TCP address %S: %s" spec reason)
  in
  let port_of s =
    match int_of_string (String.trim s) with
    | p when 0 <= p && p <= 65535 -> p
    | _ -> bad "port out of range (0-65535)"
    | exception Failure _ -> bad "expected PORT or HOST:PORT"
  in
  match (String.index_opt spec ':', String.rindex_opt spec ':') with
  | None, _ -> ("127.0.0.1", port_of spec)
  | Some i, Some j when i <> j ->
    bad "IPv6 literals are not supported; use an IPv4 HOST:PORT"
  | Some i, _ ->
    let host = String.sub spec 0 i in
    let port = port_of (String.sub spec (i + 1) (String.length spec - i - 1)) in
    ((if host = "" then "127.0.0.1" else host), port)

let sockaddr_of = function
  | Unix_path path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ ->
        (match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
         | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
         | _ -> failwith ("cannot resolve host " ^ host))
    in
    Unix.ADDR_INET (inet, port)

let listen addr =
  let domain =
    match addr with Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET
  in
  let sock = Unix.socket domain Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec sock;
  (match addr with
   | Unix_path path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
   | Tcp _ -> Unix.setsockopt sock Unix.SO_REUSEADDR true);
  Unix.bind sock (sockaddr_of addr);
  Unix.listen sock 64;
  sock

(* Bounded connect retry on the two "server not up yet" errors —
   mirrors {!Stp_store.Daemon.client}'s discipline for the service's
   TCP and Unix clients. *)
let connect ?(attempts = 25) addr =
  let sa = sockaddr_of addr in
  let domain = Unix.domain_of_sockaddr sa in
  let rec go n delay =
    let sock = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect sock sa with
    | () -> sock
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when n > 1 ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      Unix.sleepf delay;
      go (n - 1) (Float.min 0.25 (delay *. 2.))
    | exception Unix.Unix_error (Unix.EINTR, _, _) when n > 1 ->
      (* The interrupted connect may still complete in-kernel; retrying
         on the same fd would raise EALREADY/EISCONN, so start over on
         a fresh one. *)
      (try Unix.close sock with Unix.Unix_error _ -> ());
      go (n - 1) delay
    | exception e ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      raise e
  in
  go (max 1 attempts) 0.01

(* {2 Blocking line I/O for simple clients and tests} *)

type line_reader = {
  lfd : Unix.file_descr;
  lbuf : Buffer.t;
  lchunk : Bytes.t;
  mutable llines : string list;
  mutable leof : bool;
}

let line_reader fd =
  { lfd = fd;
    lbuf = Buffer.create 4096;
    lchunk = Bytes.create 4096;
    llines = [];
    leof = false }

let rec next_line r =
  match r.llines with
  | l :: rest ->
    r.llines <- rest;
    Some l
  | [] ->
    if r.leof then None
    else begin
      (match Unix.read r.lfd r.lchunk 0 (Bytes.length r.lchunk) with
       | 0 -> r.leof <- true
       | n ->
         Buffer.add_subbytes r.lbuf r.lchunk 0 n;
         let s = Buffer.contents r.lbuf in
         (match String.rindex_opt s '\n' with
          | None -> ()
          | Some i ->
            Buffer.clear r.lbuf;
            Buffer.add_substring r.lbuf s (i + 1) (String.length s - i - 1);
            r.llines <- String.split_on_char '\n' (String.sub s 0 i))
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      next_line r
    end

let send_lines fd lines =
  let s = String.concat "\n" lines ^ "\n" in
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let written = ref 0 in
  while !written < len do
    match Unix.write fd b !written (len - !written) with
    | n -> written := !written + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done
