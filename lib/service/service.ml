module Tt = Stp_tt.Tt
module Npn = Stp_tt.Npn
module Store = Stp_store.Store
module Daemon = Stp_store.Daemon
module Json = Stp_telemetry.Json
module Hist = Stp_telemetry.Hist
module Telemetry = Stp_telemetry.Telemetry
module Profile = Stp_util.Profile

type config = {
  shards : int;
  jobs : int;
  timeout : float;
  store : string;
  socket : string;
  tcp : string;
  no_npn_cache : bool;
  window : int;
  compact_dead_bytes : int;
}

let default_config =
  { shards = 2;
    jobs = 1;
    timeout = 5.0;
    store = "";
    socket = "";
    tcp = "";
    no_npn_cache = false;
    window = 64;
    compact_dead_bytes = 1 lsl 20 }

let version = Daemon.version

let shard_store_path ~base ~shard ~shards =
  Printf.sprintf "%s.shard%dof%d" base shard shards

(* {2 Routing: canonical NPN class -> shard} *)

(* splitmix64 finalizer: [Tt.hash] and [canon4] values are small and
   regular; without mixing, [mod shards] would see only low bits. *)
let mix x =
  let open Int64 in
  let x = of_int x in
  let x = mul (logxor x (shift_right_logical x 30)) 0xbf58476d1ce4e5b9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94d049bb133111ebL in
  let x = logxor x (shift_right_logical x 31) in
  to_int x land Stdlib.max_int

(* Exact canonicalisation costs 2^n * n! * 2 transform applications —
   fine once, not per request at n >= 5. The front-end memoises per
   concrete function; repeated hot-class members hit the memo. *)
let canon_memo : (int * string, Tt.t) Hashtbl.t = Hashtbl.create 4096

let canon_memo_cap = 65536

let memo_canonical tt =
  let k = (Tt.num_vars tt, Tt.to_hex tt) in
  match Hashtbl.find_opt canon_memo k with
  | Some c -> c
  | None ->
    let c = fst (Npn.canonical tt) in
    if Hashtbl.length canon_memo >= canon_memo_cap then
      Hashtbl.reset canon_memo;
    Hashtbl.add canon_memo k c;
    c

let shard_of ~shards tt =
  if shards <= 1 then 0
  else
    let h =
      let n = Tt.num_vars tt in
      if n = 4 then mix (Npn.canon4 (Tt.to_int tt))
      else if n <= 6 then mix (Tt.hash (memo_canonical tt))
      else mix (Tt.hash tt) (* beyond canonicalisation: no class affinity *)
    in
    h mod shards

let shard_of_line ~shards line =
  mix (Hashtbl.hash line) mod shards

(* {2 Service state} *)

type ticket = {
  t_uid : int;   (* client uid the response belongs to *)
  t_seq : int;   (* slot in that client's response order *)
  t_line : string;
  t_start_ns : int;
}

type shard = {
  sid : int;
  mutable pid : int;
  mutable conn : Wire.conn;
  mutable alive : bool;
  inflight : ticket Queue.t;  (* queued to the worker, awaiting answers *)
  waiting : ticket Queue.t;   (* not yet handed to the worker *)
  mutable routed : int;
  mutable answered : int;
  mutable restarts : int;
  mutable spawned_ns : int;
  mutable respawn_at_ns : int;
  mutable sat : Json.t;  (* last solver-counter block the worker reported *)
}

(* Tickets carrying this uid are service-internal probes (per-shard
   stats refresh): their responses are absorbed into shard state, never
   forwarded. Real client uids start at 0. *)
let internal_uid = -1

type client = {
  uid : int;
  cconn : Wire.conn;
  mutable next_seq : int;   (* next request slot to assign *)
  mutable flush_seq : int;  (* next slot to emit *)
  slots : (int, string) Hashtbl.t;  (* completed out-of-order responses *)
  mutable half_closed : bool;       (* peer finished sending requests *)
  mutable was_stalled : bool;
}

type state = {
  config : config;
  stop : bool Atomic.t;
  mutable draining : bool;
  mutable drain_deadline_ns : int;
  listeners : Unix.file_descr list;
  shards : shard array;
  clients : (int, client) Hashtbl.t;
  mutable next_uid : int;
  mutable clients_total : int;
  mutable requests : int;
  mutable responses : int;
  mutable stalls : int;
  mutable zombies : int list;
  start_ns : int;
}

let now_ns () = Profile.now_ns ()

(* Write-side high watermarks: a shard pipe carries many clients'
   requests, a client conn only its own responses. *)
let shard_out_hw = 256 * 1024

let client_out_hw = 1 lsl 20

let request_hist () = Hist.get "service/request"

let log fmt = Printf.eprintf ("[service] " ^^ fmt ^^ "\n%!")

(* {2 Shard workers} *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Every parent-side fd a freshly forked worker must not keep: the
   listeners, every client, and every shard pipe (its own parent end
   included — the child keeps only [child_fd]). *)
let fds_to_close_in_child state =
  state.listeners
  @ Hashtbl.fold (fun _ cl acc -> Wire.fd cl.cconn :: acc) state.clients []
  @ (Array.to_list state.shards
    |> List.filter_map (fun s ->
           if s.alive then Some (Wire.fd s.conn) else None))

let worker_main (config : config) ~sid fd =
  (* The worker is a plain batch daemon on the socketpair: it reads
     whatever backlog the front-end routed to it, fans the batch over
     its own domain pool, and answers in request order — which is what
     lets the front-end match responses to in-flight tickets FIFO. *)
  Telemetry.unregister_probe "service";
  let store =
    if config.store = "" then None
    else
      Some
        (Store.load
           ~path:(shard_store_path ~base:config.store ~shard:sid
                    ~shards:config.shards))
  in
  (try
     Daemon.serve ~input:fd ~output:fd
       { Daemon.jobs = max 1 config.jobs;
         timeout = config.timeout;
         store;
         socket = "";
         no_npn_cache = config.no_npn_cache;
         heartbeat_s = 0.0;
         persist = Daemon.Append { compact_dead_bytes = config.compact_dead_bytes } }
   with e ->
     Printf.eprintf "[service] shard %d crashed: %s\n%!" sid
       (Printexc.to_string e));
  Unix._exit 0

let spawn_worker state sid =
  let parent_fd, child_fd =
    Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  let close_in_child = fds_to_close_in_child state in
  match Unix.fork () with
  | 0 ->
    close_quiet parent_fd;
    List.iter close_quiet close_in_child;
    worker_main state.config ~sid child_fd
  | pid ->
    close_quiet child_fd;
    Unix.set_close_on_exec parent_fd;
    (pid, Wire.make parent_fd)

let shard_died state shard =
  if shard.alive then begin
    shard.alive <- false;
    Wire.close shard.conn;
    state.zombies <- shard.pid :: state.zombies;
    (* Everything handed to the dead worker and still unanswered goes
       back to the head of the queue, original order preserved: no
       accepted request is lost, it is re-dispatched to the replacement
       worker. *)
    let requeued = Queue.length shard.inflight in
    let nq = Queue.create () in
    Queue.transfer shard.inflight nq;
    Queue.transfer shard.waiting nq;
    Queue.transfer nq shard.waiting;
    (* Fast respawn, but back off when the worker dies within a second
       of spawning (e.g. an unwritable store path) so a crash loop
       cannot fork-bomb the box. *)
    let now = now_ns () in
    shard.respawn_at_ns <-
      (if now - shard.spawned_ns < 1_000_000_000 then now + 1_000_000_000
       else now);
    log "shard %d (pid %d) died; requeued %d in-flight request%s" shard.sid
      shard.pid requeued
      (if requeued = 1 then "" else "s")
  end

(* Move waiting tickets into the worker pipe while there is headroom. *)
let pump_shard state shard =
  if shard.alive then begin
    while
      (not (Queue.is_empty shard.waiting))
      && Wire.pending_out shard.conn < shard_out_hw
    do
      let t = Queue.pop shard.waiting in
      Wire.queue_line shard.conn t.t_line;
      Queue.add t shard.inflight
    done;
    if Wire.pending_out shard.conn > 0 && not (Wire.flush_out shard.conn)
    then
      (* A write failure (EPIPE before we ever read the EOF) is the same
         event as reading the EOF: the worker is gone. Requeue its work
         and schedule the respawn now — the select loop no longer
         watches a dead shard's fd, so nothing else would notice. *)
      shard_died state shard
  end

let respawn_shard state shard =
  let pid, conn = spawn_worker state shard.sid in
  shard.pid <- pid;
  shard.conn <- conn;
  shard.alive <- true;
  shard.restarts <- shard.restarts + 1;
  shard.spawned_ns <- now_ns ();
  log "shard %d respawned as pid %d (%d queued)" shard.sid pid
    (Queue.length shard.waiting);
  pump_shard state shard

(* {2 Per-client response sequencing} *)

let client_window_full state cl =
  cl.next_seq - cl.flush_seq >= state.config.window
  || Wire.pending_out cl.cconn > client_out_hw

(* Emit every response that is next in the client's request order. *)
let drain_client cl =
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt cl.slots cl.flush_seq with
    | Some resp ->
      Hashtbl.remove cl.slots cl.flush_seq;
      cl.flush_seq <- cl.flush_seq + 1;
      Wire.queue_line cl.cconn resp
    | None -> continue := false
  done

let complete state cl ~seq resp =
  state.responses <- state.responses + 1;
  Hashtbl.replace cl.slots seq resp;
  drain_client cl

let deliver state (t : ticket) resp =
  Hist.observe_ns (request_hist ()) (now_ns () - t.t_start_ns);
  match Hashtbl.find_opt state.clients t.t_uid with
  | Some cl -> complete state cl ~seq:t.t_seq resp
  | None -> state.responses <- state.responses + 1 (* client gone; drop *)

(* Absorb a worker's answer to a service-internal stats probe: keep its
   solver counter block for the next stats response. *)
let absorb_internal shard resp =
  match Json.of_string resp with
  | Ok json -> (
    match Json.member "sat" json with
    | Some sat -> shard.sat <- sat
    | None -> ())
  | Error _ -> ()

(* Ask every live worker for fresh solver counters. The probes ride the
   ordinary FIFO pipe (workers answer in order), so a stats response
   reports the previous sweep's counters — one request stale, never
   blocking the control plane on a busy worker. *)
let refresh_shard_stats state =
  Array.iter
    (fun s ->
      if s.alive then begin
        Queue.add
          { t_uid = internal_uid; t_seq = 0; t_line = {|{"type":"stats"}|};
            t_start_ns = now_ns () }
          s.waiting;
        pump_shard state s
      end)
    state.shards

(* {2 Control plane} *)

let uptime_s state = float_of_int (now_ns () - state.start_ns) *. 1e-9

let id_field json =
  match Json.member "id" json with Some v -> [ ("id", v) ] | None -> []

let shard_json s =
  Json.Obj
    [ ("shard", Json.Int s.sid);
      ("pid", Json.Int s.pid);
      ("alive", Json.Bool s.alive);
      ("routed", Json.Int s.routed);
      ("answered", Json.Int s.answered);
      ("inflight", Json.Int (Queue.length s.inflight));
      ("queued", Json.Int (Queue.length s.waiting));
      ("restarts", Json.Int s.restarts);
      ("sat", s.sat) ]

let stalled_now state =
  Hashtbl.fold
    (fun _ cl n -> if client_window_full state cl then n + 1 else n)
    state.clients 0

(* The probe body shared by the ["service"] telemetry probe and the
   [{"type":"stats"}] response: per-shard request counts and queue
   depths, client counts, and backpressure stalls. *)
let probe_json state =
  Json.Obj
    [ ("shards",
       Json.List (Array.to_list (Array.map shard_json state.shards)));
      ("clients",
       Json.Obj
         [ ("connected", Json.Int (Hashtbl.length state.clients));
           ("total", Json.Int state.clients_total);
           ("stalled", Json.Int (stalled_now state)) ]);
      ("backpressure", Json.Obj [ ("stalls", Json.Int state.stalls) ]);
      ("requests", Json.Int state.requests);
      ("responses", Json.Int state.responses) ]

let pong_response state json =
  Json.to_string
    (Json.Obj
       (id_field json
       @ [ ("status", Json.String "pong");
           ("version", Json.String version);
           ("uptime_s", Json.Float (uptime_s state));
           ("shards", Json.Int state.config.shards);
           ("store",
            if state.config.store = "" then Json.Null
            else Json.String state.config.store) ]))

let stats_response state json =
  let core =
    match probe_json state with Json.Obj fields -> fields | _ -> []
  in
  Json.to_string
    (Json.Obj
       (id_field json
       @ [ ("status", Json.String "ok");
           ("version", Json.String version);
           ("uptime_s", Json.Float (uptime_s state)) ]
       @ core
       @ [ ("store",
            if state.config.store = "" then Json.Null
            else Json.String state.config.store);
           ("telemetry", Telemetry.snapshot_json ()) ]))

let error_response msg =
  Json.to_string
    (Json.Obj
       [ ("status", Json.String "error"); ("error", Json.String msg) ])

(* {2 Request routing} *)

let route state cl line =
  if String.trim line <> "" then begin
    let seq = cl.next_seq in
    cl.next_seq <- cl.next_seq + 1;
    state.requests <- state.requests + 1;
    let t_start_ns = now_ns () in
    let to_shard sid =
      let shard = state.shards.(sid) in
      Queue.add
        { t_uid = cl.uid; t_seq = seq; t_line = line; t_start_ns }
        shard.waiting;
      shard.routed <- shard.routed + 1;
      pump_shard state shard
    in
    match Json.of_string line with
    | Error msg ->
      (* Same wording as the worker's, answered without a round trip. *)
      complete state cl ~seq (error_response ("bad JSON: " ^ msg))
    | Ok json -> (
      match Json.member "type" json with
      | Some (Json.String "ping") -> complete state cl ~seq (pong_response state json)
      | Some (Json.String "stats") ->
        refresh_shard_stats state;
        complete state cl ~seq (stats_response state json)
      | Some _ ->
        (* Unknown control types get the worker's error message. *)
        to_shard (shard_of_line ~shards:state.config.shards line)
      | None -> (
        match (Json.member "n" json, Json.member "tt" json) with
        | Some (Json.Int n), Some (Json.String hex) -> (
          match Tt.of_hex ~n hex with
          | tt -> to_shard (shard_of ~shards:state.config.shards tt)
          | exception _ ->
            (* Undecodable target: any worker will produce the right
               error response. *)
            to_shard (shard_of_line ~shards:state.config.shards line))
        | _ -> to_shard (shard_of_line ~shards:state.config.shards line)))
  end

(* {2 The select loop} *)

let accept_clients state lsock =
  let continue = ref true in
  while !continue do
    match Unix.accept lsock with
    | fd, _ ->
      Unix.set_close_on_exec fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      let uid = state.next_uid in
      state.next_uid <- state.next_uid + 1;
      state.clients_total <- state.clients_total + 1;
      Hashtbl.replace state.clients uid
        { uid;
          cconn = Wire.make fd;
          next_seq = 0;
          flush_seq = 0;
          slots = Hashtbl.create 16;
          half_closed = false;
          was_stalled = false }
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE) as e, _, _) ->
      log "accept: %s; backing off" (Unix.error_message e);
      continue := false
  done

let drop_client state cl =
  Wire.close cl.cconn;
  Hashtbl.remove state.clients cl.uid

(* A client is finished once it stopped sending, every accepted request
   was answered and flushed, and the kernel took the last byte. *)
let client_finished cl =
  cl.half_closed
  && cl.flush_seq = cl.next_seq
  && Wire.pending_out cl.cconn = 0

let shards_idle state =
  Array.for_all
    (fun s -> Queue.is_empty s.inflight && Queue.is_empty s.waiting)
    state.shards

let clients_flushed state =
  Hashtbl.fold
    (fun _ cl ok ->
      ok && cl.flush_seq = cl.next_seq && Wire.pending_out cl.cconn = 0)
    state.clients true

let reap_zombies state =
  state.zombies <-
    List.filter
      (fun pid ->
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ -> true
        | _ -> false
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> false)
      state.zombies

let drain_grace_s config = Float.max (2.0 *. config.timeout) 5.0

let serve_loop state =
  let stop_requested () = Atomic.get state.stop in
  let finished = ref false in
  while not !finished do
    (* Backpressure accounting and the read set: a client whose
       in-flight window is full (or whose response bytes the peer is
       not draining) is simply left out of select's read set — the
       kernel then throttles the peer via TCP/unix-socket buffers. *)
    let client_reads = ref [] in
    Hashtbl.iter
      (fun _ cl ->
        let stalled = client_window_full state cl in
        if stalled && not cl.was_stalled then
          state.stalls <- state.stalls + 1;
        cl.was_stalled <- stalled;
        if (not stalled) && not (Wire.eof cl.cconn) then
          client_reads := Wire.fd cl.cconn :: !client_reads)
      state.clients;
    let shard_reads =
      Array.to_list state.shards
      |> List.filter_map (fun s ->
             if s.alive then Some (Wire.fd s.conn) else None)
    in
    let listener_reads = if state.draining then [] else state.listeners in
    let writes =
      let shard_w =
        Array.to_list state.shards
        |> List.filter_map (fun s ->
               if s.alive && Wire.pending_out s.conn > 0 then
                 Some (Wire.fd s.conn)
               else None)
      in
      Hashtbl.fold
        (fun _ cl acc ->
          if Wire.pending_out cl.cconn > 0 && not (Wire.eof cl.cconn) then
            Wire.fd cl.cconn :: acc
          else acc)
        state.clients shard_w
    in
    let reads = listener_reads @ shard_reads @ !client_reads in
    let readable, writable, _ =
      match Unix.select reads writes [] 0.25 with
      | r -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    (* 1. New connections. *)
    List.iter
      (fun l -> if List.mem l readable then accept_clients state l)
      state.listeners;
    (* 2. Worker responses: FIFO against the in-flight queue — the
       worker answers its input in order. Buffered responses of a dead
       worker are delivered before the EOF is acted on, so nothing is
       answered twice after a re-dispatch. *)
    Array.iter
      (fun s ->
        if s.alive && List.mem (Wire.fd s.conn) readable then begin
          let lines = Wire.read_lines s.conn in
          List.iter
            (fun line ->
              if String.trim line <> "" then
                match Queue.pop s.inflight with
                | t when t.t_uid = internal_uid -> absorb_internal s line
                | t ->
                  s.answered <- s.answered + 1;
                  deliver state t line
                | exception Queue.Empty ->
                  log "shard %d sent an unsolicited response" s.sid)
            lines;
          if Wire.eof s.conn then shard_died state s else pump_shard state s
        end)
      state.shards;
    (* 3. Client requests. *)
    let dead_clients = ref [] in
    Hashtbl.iter
      (fun _ cl ->
        if List.mem (Wire.fd cl.cconn) readable then begin
          List.iter (route state cl) (Wire.read_lines cl.cconn);
          if Wire.eof cl.cconn then cl.half_closed <- true
        end)
      state.clients;
    (* 4. Flush pending output. *)
    Array.iter
      (fun s ->
        if s.alive && List.mem (Wire.fd s.conn) writable then
          pump_shard state s)
      state.shards;
    Hashtbl.iter
      (fun _ cl ->
        if
          List.mem (Wire.fd cl.cconn) writable
          || Wire.pending_out cl.cconn > 0
        then
          if not (Wire.flush_out cl.cconn) then
            dead_clients := cl :: !dead_clients)
      state.clients;
    (* 5. Retire finished or vanished clients. *)
    Hashtbl.iter
      (fun _ cl -> if client_finished cl then dead_clients := cl :: !dead_clients)
      state.clients;
    List.iter (drop_client state) !dead_clients;
    (* 6. Maintenance: zombies, respawns, shutdown. *)
    reap_zombies state;
    let now = now_ns () in
    Array.iter
      (fun s ->
        if
          (not s.alive)
          && now >= s.respawn_at_ns
          && not (state.draining && Queue.is_empty s.waiting)
        then respawn_shard state s)
      state.shards;
    if stop_requested () && not state.draining then begin
      state.draining <- true;
      state.drain_deadline_ns <-
        now + int_of_float (drain_grace_s state.config *. 1e9);
      List.iter close_quiet state.listeners;
      let inflight =
        Array.fold_left
          (fun n s -> n + Queue.length s.inflight + Queue.length s.waiting)
          0 state.shards
      in
      log "shutdown requested; draining %d in-flight request%s" inflight
        (if inflight = 1 then "" else "s")
    end;
    if state.draining then
      if
        (shards_idle state && clients_flushed state)
        || now >= state.drain_deadline_ns
      then finished := true
  done

let shutdown state =
  Hashtbl.iter (fun _ cl -> Wire.close cl.cconn) state.clients;
  Hashtbl.reset state.clients;
  (* EOF on the pipe ends each worker's serve loop; SIGTERM doubles as
     a finish-the-batch request if one is mid-flight. Workers flush
     their stores on the way out. *)
  Array.iter
    (fun s ->
      if s.alive then begin
        Wire.close s.conn;
        (try Unix.kill s.pid Sys.sigterm with Unix.Unix_error _ -> ())
      end)
    state.shards;
  let deadline = now_ns () + 30_000_000_000 in
  Array.iter
    (fun s ->
      let rec wait () =
        match Unix.waitpid [ Unix.WNOHANG ] s.pid with
        | 0, _ ->
          if now_ns () > deadline then begin
            log "shard %d (pid %d) ignored shutdown; killing" s.sid s.pid;
            (try Unix.kill s.pid Sys.sigkill with Unix.Unix_error _ -> ());
            ignore (Unix.waitpid [] s.pid)
          end
          else begin
            Unix.sleepf 0.02;
            wait ()
          end
        | _ -> ()
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
      in
      wait ())
    state.shards;
  reap_zombies state;
  List.iter close_quiet state.listeners;
  (match state.config.socket with
   | "" -> ()
   | path -> ( try Unix.unlink path with Unix.Unix_error _ -> ()))

let serve (config : config) =
  if config.shards < 1 then invalid_arg "Service.serve: shards must be >= 1";
  if config.window < 1 then invalid_arg "Service.serve: window must be >= 1";
  if config.socket = "" && config.tcp = "" then
    invalid_arg "Service.serve: need a unix socket path or a tcp address";
  (* The front-end must answer {"type":"stats"} with populated
     histograms whether or not it was launched with --metrics. *)
  Telemetry.set_metrics_enabled true;
  (* Force the lazily built canonicalisation table before forking:
     workers inherit the table copy-on-write, and the router needs it
     hot anyway. *)
  ignore (Npn.canon4 0);
  let listeners =
    (match config.socket with
     | "" -> []
     | path -> [ Wire.listen (Wire.Unix_path path) ])
    @
    match config.tcp with
    | "" -> []
    | spec ->
      let host, port = Wire.parse_tcp spec in
      [ Wire.listen (Wire.Tcp (host, port)) ]
  in
  List.iter Unix.set_nonblock listeners;
  let stop = Atomic.make false in
  let handler = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
  let old_term = Sys.signal Sys.sigterm handler in
  let old_int = Sys.signal Sys.sigint handler in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let state =
    { config;
      stop;
      draining = false;
      drain_deadline_ns = 0;
      listeners;
      shards = [||];
      clients = Hashtbl.create 64;
      next_uid = 0;
      clients_total = 0;
      requests = 0;
      responses = 0;
      stalls = 0;
      zombies = [];
      start_ns = now_ns () }
  in
  let shards =
    Array.init config.shards (fun sid ->
        { sid;
          pid = 0;
          conn = Wire.make (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0);
          alive = false;
          inflight = Queue.create ();
          waiting = Queue.create ();
          routed = 0;
          answered = 0;
          restarts = 0;
          spawned_ns = 0;
          respawn_at_ns = 0;
          sat = Json.Null })
  in
  (* Placeholder conns above never enter the loop: spawn real workers
     first, closing the placeholders. *)
  let state = { state with shards } in
  Array.iter
    (fun s ->
      Wire.close s.conn;
      let pid, conn = spawn_worker state s.sid in
      s.pid <- pid;
      s.conn <- conn;
      s.alive <- true;
      s.spawned_ns <- now_ns ())
    shards;
  Telemetry.register_probe "service" (fun () -> probe_json state);
  log "serving %s%s: %d shard%s, %d job%s/shard, window %d"
    (if config.socket = "" then "" else config.socket)
    (if config.tcp = "" then ""
     else (if config.socket = "" then "tcp " else " + tcp ") ^ config.tcp)
    config.shards
    (if config.shards = 1 then "" else "s")
    config.jobs
    (if config.jobs = 1 then "" else "s")
    config.window;
  Fun.protect
    ~finally:(fun () ->
      shutdown state;
      Telemetry.unregister_probe "service";
      Sys.set_signal Sys.sigterm old_term;
      Sys.set_signal Sys.sigint old_int;
      Sys.set_signal Sys.sigpipe old_pipe)
    (fun () -> serve_loop state)
