(** Sharded, multiplexing synthesis service.

    {!serve} forks [config.shards] worker processes, each a
    {!Stp_store.Daemon.serve} batch daemon on a private socketpair with
    its own store section file ({!shard_store_path}) and its own
    {!Stp_parallel.Pool} domains, running append-mode persistence with
    online compaction. The front-end process owns no domains at all (so
    it can keep forking replacement workers under OCaml 5) and runs a
    single [Unix.select] loop that:

    - accepts any number of concurrent clients on a Unix socket and/or
      a TCP address, each with its own read/write buffers
      ({!Wire.conn});
    - routes every pipelined JSON-lines request to the shard owning the
      target's canonical NPN class ({!shard_of}), so each class's cache
      entry lives in exactly one worker;
    - matches worker responses (in-order per worker) back to tickets
      and re-sequences them into {e per-client request order} even when
      a client's requests were scattered over shards;
    - applies per-client backpressure: a client with [config.window]
      unanswered requests (or an undrained response buffer) is removed
      from the read set until it catches up, so one firehose client
      cannot starve the rest — stalls are counted and reported;
    - restarts dead workers (with a 1 s backoff against crash loops)
      and re-dispatches their unanswered in-flight requests to the
      replacement, so a [kill -9]'d shard loses no accepted request;
    - answers [{"type":"ping"}] and [{"type":"stats"}] itself; stats
      includes per-shard routed/answered/queue-depth/restart counts,
      client and backpressure-stall counts, and the full telemetry
      snapshot (the same block is exported as the ["service"]
      {!Stp_telemetry.Telemetry} probe).

    SIGTERM/SIGINT stop accepting, drain in-flight work (bounded by
    [max (2 * timeout) 5] seconds), then close the worker pipes —
    end-of-input makes each worker flush its store section and exit. *)

type config = {
  shards : int;   (** worker processes (>= 1) *)
  jobs : int;     (** pool domains per worker *)
  timeout : float;  (** default per-request deadline, seconds *)
  store : string;  (** base store path; [""] runs without persistence.
                       Shard [k] persists to
                       [shard_store_path ~base ~shard:k ~shards]. *)
  socket : string;  (** Unix socket path to listen on; [""] disables *)
  tcp : string;     (** TCP "host:port" / ":port" / "port" to listen
                        on; [""] disables. At least one of [socket] and
                        [tcp] must be set. *)
  no_npn_cache : bool;  (** disable the workers' NPN caches *)
  window : int;  (** per-client in-flight request cap (>= 1) *)
  compact_dead_bytes : int;
      (** per-worker online-compaction threshold, passed through to
          {!Stp_store.Daemon.Append} ([<= 0] never compacts) *)
}

val default_config : config
(** 2 shards, 1 job, 5 s timeout, no store, no listeners, window 64,
    compact at 1 MiB dead. *)

val version : string
(** The daemon protocol version the service speaks. *)

val shard_store_path : base:string -> shard:int -> shards:int -> string
(** ["<base>.shard<k>of<N>"] — the section file worker [k] owns. *)

val shard_of : shards:int -> Stp_tt.Tt.t -> int
(** The shard owning a target's canonical NPN class: every member of a
    class maps to the same shard (exact for [n <= 6]; beyond
    canonicalisation arity the raw truth table hashes, trading class
    affinity for O(1) routing). Uniform across shards via a splitmix64
    finalizer. *)

val serve : config -> unit
(** Run until SIGTERM/SIGINT. @raise Invalid_argument on a config with
    no listener, [shards < 1] or [window < 1]. *)
