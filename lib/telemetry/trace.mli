(** Low-overhead span tracing with Chrome trace-event export.

    A span is one timed region — [(name, args, t_start_ns, t_end_ns,
    domain_id)] — recorded at completion into a ring buffer local to
    the recording domain, so the hot path takes no locks and never
    contends across domains. Buffers stay registered after their domain
    terminates: spans recorded by a pool's workers survive to the
    end-of-run {!write}.

    Tracing is {e off by default} and, like {!Stp_util.Profile}, costs
    one [ref] read per probe when disabled, so instrumentation stays in
    the hot path permanently. Enable with {!set_enabled} (the harness
    [--trace out.json] flag), export with {!write}, and load the file
    in [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}: one
    track per domain, nested spans rendered as flame stacks.

    Each ring holds {!set_capacity} spans (default 65536); once full,
    the oldest spans are overwritten and counted in {!dropped} — a
    bounded-memory guarantee for long daemon runs. *)

type event = {
  name : string;
  args : (string * string) list;
  t_start_ns : int;
  t_end_ns : int;
  domain_id : int;
}

val set_enabled : bool -> unit
(** Enabling (re)captures the trace epoch: exported timestamps are
    relative to the moment tracing was switched on. *)

val enabled : unit -> bool

val span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] and records one event covering it.
    Exceptions propagate; the span is still recorded, with an
    ["exception"] arg. No-op (one [ref] read) when disabled. *)

val instant : ?args:(string * string) list -> string -> unit
(** A zero-duration event marking a point in time. *)

val events : unit -> event list
(** Every buffered span, across all domains, sorted by start time.
    Call between batches / after a run, while recording domains are
    quiescent. *)

val dropped : unit -> int
(** Spans overwritten because a ring was full. *)

val reset : unit -> unit
(** Empty every ring and restart the epoch. *)

val set_capacity : int -> unit
(** Ring capacity (spans per domain) for buffers created afterwards;
    clamped to at least 16. *)

val default_capacity : int
(** 65536 spans per domain (~4 MB) unless {!set_capacity} overrode it. *)

val write : path:string -> int
(** Export every buffered span as Chrome trace-event JSON ([{"traceEvents":
    [{"ph": "X", "ts": ..., "dur": ..., "tid": <domain>, ...}, ...]}])
    and return the number of events written. *)
