(** The unified metrics registry: one snapshot for everything the stack
    measures.

    {!snapshot_json} gathers, into a single JSON object:

    - the {!Stp_util.Profile} stage timers and hot-path counters;
    - every histogram registered through {!Hist.get} (engine
      latencies, daemon per-source latencies, batch times);
    - the {!Trace} ring state (enabled, dropped spans);
    - every registered {e probe} — a named callback contributed by a
      subsystem that owns its own counters: the domain pool registers a
      ["pool"] probe (per-domain busy time, tasks run, queue wait), a
      persistent store registers a ["store"] probe (records, flushes,
      bytes, corrupt-record counts).

    This is the payload behind [table1 --metrics] and the daemon's
    [{"type": "stats"}] request.

    {!metrics_enabled} is the global gate consulted by instrumentation
    call sites whose recording is not already free (engine-latency
    histograms, store spans): disabled — the default — they cost one
    [ref] read. The daemon enables it unconditionally; the harness
    CLIs enable it under [--metrics]. *)

val metrics_enabled : unit -> bool
val set_metrics_enabled : bool -> unit

val register_probe : string -> (unit -> Json.t) -> unit
(** [register_probe name f] adds [f]'s value under [name] in every
    later {!snapshot_json}; re-registering a name replaces the probe.
    A probe that raises reports the exception as its value rather than
    failing the snapshot. *)

val unregister_probe : string -> unit

val profile_json : Stp_util.Profile.snapshot -> Json.t
(** The profile block: [{"stages": {...}, "counters": {...}}] — shared
    by {!snapshot_json} and the harness report writer. *)

val snapshot_json : unit -> Json.t

val reset : unit -> unit
(** Zero the profiler, every registered histogram, and the trace
    rings. Probe registrations survive (their backing counters are
    owned by the registering subsystem). *)
