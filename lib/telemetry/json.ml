type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  (* JSON has no inf/nan literals; the metrics never legitimately
     produce them, so map the degenerate cases to null. *)
  if Float.is_nan f || Float.abs f = infinity then None
  else
    let s = Printf.sprintf "%.12g" f in
    (* Ensure the token reads back as a float, not an integer. *)
    Some
      (if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
       else s ^ ".0")

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> (
    match float_repr f with
    | None -> Buffer.add_string buf "null"
    | Some s -> Buffer.add_string buf s)
  | String s -> escape_string buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  to_buffer buf j;
  Buffer.contents buf

(* A minimal recursive-descent JSON reader, the dual of [to_buffer] —
   the daemon's request protocol is JSON lines and the container
   deliberately has no JSON dependency. Numbers with a fraction or
   exponent become [Float], others [Int]. *)
exception Parse_error of string

let of_string s =
  let len = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= len
       && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= len then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= len then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           (* Strictly 4 hex digits: [int_of_string "0x…"] would raise
              [Failure] (escaping [of_string]'s Error return) on bad
              input and accept OCaml-isms like underscores. *)
           let hex4 () =
             if !pos + 4 > len then fail "truncated \\u escape";
             let v = ref 0 in
             for i = !pos to !pos + 3 do
               let d =
                 match s.[i] with
                 | '0' .. '9' as c -> Char.code c - Char.code '0'
                 | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
                 | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
                 | _ -> fail "bad \\u escape"
               in
               v := (!v lsl 4) lor d
             done;
             pos := !pos + 4;
             !v
           in
           let code = hex4 () in
           let code =
             if code >= 0xd800 && code <= 0xdbff then
               (* High surrogate: consume the mandatory low half and
                  combine, so astral characters round-trip as real
                  UTF-8 rather than CESU-8 surrogate bytes. *)
               if !pos + 2 <= len && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
               then begin
                 pos := !pos + 2;
                 let low = hex4 () in
                 if low < 0xdc00 || low > 0xdfff then
                   fail "unpaired surrogate";
                 0x10000 + ((code - 0xd800) lsl 10) + (low - 0xdc00)
               end
               else fail "unpaired surrogate"
             else if code >= 0xdc00 && code <= 0xdfff then
               fail "unpaired surrogate"
             else code
           in
           (* non-ASCII code points are re-encoded as UTF-8 *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
           end
           else if code < 0x10000 then begin
             Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xf0 lor (code lsr 18)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3f)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
           end
         | _ -> fail "bad escape");
        loop ())
      | c ->
        Buffer.add_char buf c;
        loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos <> len then Error "trailing garbage"
    else Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None
