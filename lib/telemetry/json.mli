(** A minimal hand-rolled JSON value — the container deliberately has no
    JSON dependency. This module is the single JSON implementation of
    the repo: the harness ({!Stp_harness.Report}) re-exports the type
    with its constructors, the daemon's request protocol parses with
    {!of_string}, and the telemetry registry ({!Telemetry}) and trace
    writer ({!Trace}) emit with {!to_string}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. NaN/infinite floats become
    [null]. *)

val to_buffer : Buffer.t -> t -> unit
(** Append the compact rendering — the streaming half of {!to_string},
    used by writers that emit many values without intermediate
    strings. *)

val of_string : string -> (t, string) Stdlib.result
(** Parse one JSON document (the dual of {!to_string}); trailing
    non-whitespace is an error. Numbers with a fraction or exponent
    read back as [Float], all others as [Int]. *)

val member : string -> t -> t option
(** [member k (Obj fields)] is the value bound to [k]; [None] on
    missing keys and non-objects. *)

val to_float_opt : t -> float option
(** Numeric coercion: [Float f] and [Int i] both read as floats. *)
