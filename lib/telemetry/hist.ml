(* Fixed-bucket log-scale latency histograms.

   Buckets are base-2 octaves refined by 4 linear sub-buckets (2
   significant bits, HDR-histogram style): values below 4 ns get exact
   unit buckets, every other bucket spans at most +25% of its lower
   bound. 160 buckets cover 1 ns to ~37 minutes; larger values clamp
   into the last bucket. All mutation is lock-free (atomic buckets and
   accumulators), so domains of a pool record concurrently without
   coordination; quantile extraction reads a consistent-enough snapshot
   for reporting (each bucket is individually exact). *)

let num_buckets = 160

let bucket_of_ns ns =
  if ns <= 0 then 0
  else if ns < 4 then ns
  else begin
    (* position of the highest set bit *)
    let e = ref 2 and v = ref (ns lsr 2) in
    while !v > 1 do
      incr e;
      v := !v lsr 1
    done;
    let e = !e in
    let idx = ((e - 1) * 4) + ((ns lsr (e - 2)) land 3) in
    if idx >= num_buckets then num_buckets - 1 else idx
  end

(* Inclusive lower bound of a bucket, in ns: the inverse of
   [bucket_of_ns] on bucket boundaries. *)
let bucket_lower_ns idx =
  if idx < 4 then idx
  else
    let e = (idx / 4) + 1 and s = idx land 3 in
    (4 + s) lsl (e - 2)

type t = {
  name : string;
  buckets : int Atomic.t array;
  count : int Atomic.t;
  sum_ns : int Atomic.t;
  min_ns : int Atomic.t;
  max_ns : int Atomic.t;
}

let make name =
  { name;
    buckets = Array.init num_buckets (fun _ -> Atomic.make 0);
    count = Atomic.make 0;
    sum_ns = Atomic.make 0;
    min_ns = Atomic.make max_int;
    max_ns = Atomic.make 0 }

let name t = t.name

let rec update_min a v =
  let cur = Atomic.get a in
  if v < cur && not (Atomic.compare_and_set a cur v) then update_min a v

let rec update_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then update_max a v

let observe_ns t ns =
  let ns = if ns < 0 then 0 else ns in
  ignore (Atomic.fetch_and_add t.buckets.(bucket_of_ns ns) 1);
  ignore (Atomic.fetch_and_add t.count 1);
  ignore (Atomic.fetch_and_add t.sum_ns ns);
  update_min t.min_ns ns;
  update_max t.max_ns ns

let observe_s t s = observe_ns t (int_of_float (s *. 1e9))

let count t = Atomic.get t.count

let reset t =
  Array.iter (fun a -> Atomic.set a 0) t.buckets;
  Atomic.set t.count 0;
  Atomic.set t.sum_ns 0;
  Atomic.set t.min_ns max_int;
  Atomic.set t.max_ns 0

(* Quantiles from a point-in-time copy of the buckets: the answer is
   exact up to bucket resolution (<= 25%); a bucket's representative is
   its midpoint, except the unit buckets (exact) and the overflow
   bucket (its lower bound). *)
let quantile_of_buckets buckets total q =
  if total = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int total)) in
      if r < 1 then 1 else if r > total then total else r
    in
    let idx = ref 0 and seen = ref 0 in
    (try
       for i = 0 to num_buckets - 1 do
         seen := !seen + buckets.(i);
         if !seen >= rank then begin
           idx := i;
           raise Exit
         end
       done
     with Exit -> ());
    let i = !idx in
    if i < 4 then float_of_int i
    else if i = num_buckets - 1 then float_of_int (bucket_lower_ns i)
    else
      float_of_int (bucket_lower_ns i + bucket_lower_ns (i + 1)) /. 2.0
  end

let quantile_ns t q =
  let buckets = Array.map Atomic.get t.buckets in
  quantile_of_buckets buckets (Array.fold_left ( + ) 0 buckets) q

type snapshot = {
  sname : string;
  scount : int;
  sum_s : float;
  mean_s : float;
  min_s : float;
  max_s : float;
  p50_s : float;
  p90_s : float;
  p99_s : float;
  sbuckets : (float * int) list;  (** non-empty buckets: lower bound (s), count *)
}

let snapshot t =
  let buckets = Array.map Atomic.get t.buckets in
  let total = Array.fold_left ( + ) 0 buckets in
  let sum_ns = Atomic.get t.sum_ns in
  let q p = quantile_of_buckets buckets total p /. 1e9 in
  { sname = t.name;
    scount = total;
    sum_s = float_of_int sum_ns /. 1e9;
    mean_s = (if total = 0 then 0.0 else float_of_int sum_ns /. 1e9 /. float_of_int total);
    min_s =
      (* [observe_ns] updates [min_ns] last, so a racing snapshot can
         see buckets populated while [min_ns] is still the sentinel. *)
      (let m = Atomic.get t.min_ns in
       if total = 0 || m = max_int then 0.0 else float_of_int m /. 1e9);
    max_s = float_of_int (Atomic.get t.max_ns) /. 1e9;
    p50_s = q 0.5;
    p90_s = q 0.9;
    p99_s = q 0.99;
    sbuckets =
      (let acc = ref [] in
       for i = num_buckets - 1 downto 0 do
         if buckets.(i) > 0 then
           acc := (float_of_int (bucket_lower_ns i) /. 1e9, buckets.(i)) :: !acc
       done;
       !acc) }

let snapshot_json s =
  Json.Obj
    [ ("count", Json.Int s.scount);
      ("sum_s", Json.Float s.sum_s);
      ("mean_s", Json.Float s.mean_s);
      ("min_s", Json.Float s.min_s);
      ("max_s", Json.Float s.max_s);
      ("p50_s", Json.Float s.p50_s);
      ("p90_s", Json.Float s.p90_s);
      ("p99_s", Json.Float s.p99_s);
      ("buckets",
       Json.List
         (List.map
            (fun (lo, c) -> Json.List [ Json.Float lo; Json.Int c ])
            s.sbuckets)) ]

let to_json t = snapshot_json (snapshot t)

(* {2 The named-histogram registry} *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 16
let registry_lock = Mutex.create ()

let with_lock f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let get name =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some h -> h
      | None ->
        let h = make name in
        Hashtbl.add registry name h;
        h)

let find name = with_lock (fun () -> Hashtbl.find_opt registry name)

let registered () =
  with_lock (fun () ->
      Hashtbl.fold (fun _ h acc -> h :: acc) registry []
      |> List.sort (fun a b -> compare a.name b.name))

let reset_registry () =
  with_lock (fun () -> Hashtbl.iter (fun _ h -> reset h) registry)
