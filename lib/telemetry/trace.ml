module Profile = Stp_util.Profile

(* Off-by-default span tracing, [Profile]-style: when disabled, a probe
   is one [ref] read. When enabled, each domain appends completed spans
   to its own ring buffer (no cross-domain coordination on the record
   path); buffers stay registered after their domain terminates, so a
   pool's worker spans survive to the end-of-run export. *)

type event = {
  name : string;
  args : (string * string) list;
  t_start_ns : int;
  t_end_ns : int;
  domain_id : int;
}

type buf = {
  mutable events : event array;
  mutable size : int;     (* valid events *)
  mutable next : int;     (* write cursor *)
  mutable dropped : int;  (* overwritten once the ring is full *)
}

let dummy_event =
  { name = ""; args = []; t_start_ns = 0; t_end_ns = 0; domain_id = 0 }

let default_capacity = 65536
let capacity = ref default_capacity

let set_capacity n = capacity := max 16 n

let registry : buf list ref = ref []
let registry_lock = Mutex.create ()

let enabled_flag = ref false
let epoch_ns = ref 0

let enabled () = !enabled_flag

let set_enabled b =
  if b && not !enabled_flag then epoch_ns := Profile.now_ns ();
  enabled_flag := b

(* Buffers start small and double up to [capacity]; a long-lived domain
   costs memory proportional to the spans it actually recorded. *)
let buf_key : buf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b =
        { events = Array.make (min 1024 !capacity) dummy_event;
          size = 0;
          next = 0;
          dropped = 0 }
      in
      Mutex.lock registry_lock;
      registry := b :: !registry;
      Mutex.unlock registry_lock;
      b)

let record name args t_start_ns t_end_ns =
  let b = Domain.DLS.get buf_key in
  let ev =
    { name; args; t_start_ns; t_end_ns;
      domain_id = (Domain.self () :> int) }
  in
  let cap = !capacity in
  let len = Array.length b.events in
  if b.size = len && len < cap then begin
    let grown = Array.make (min (2 * len) cap) dummy_event in
    Array.blit b.events 0 grown 0 len;
    b.events <- grown;
    (* Growth only fires when the ring has just filled, i.e. [next] has
       wrapped to 0 and slots 0..size-1 are chronological — resume
       appending after them, not over the oldest span. *)
    b.next <- b.size
  end;
  let len = Array.length b.events in
  if b.size < len then begin
    b.events.(b.next) <- ev;
    b.next <- (b.next + 1) mod len;
    b.size <- b.size + 1
  end
  else begin
    (* ring full: overwrite the oldest span *)
    b.events.(b.next) <- ev;
    b.next <- (b.next + 1) mod len;
    b.dropped <- b.dropped + 1
  end

let span ?(args = []) name f =
  if not !enabled_flag then f ()
  else begin
    let t0 = Profile.now_ns () in
    match f () with
    | r ->
      record name args t0 (Profile.now_ns ());
      r
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      record name (("exception", Printexc.to_string e) :: args) t0
        (Profile.now_ns ());
      Printexc.raise_with_backtrace e bt
  end

let instant ?(args = []) name =
  if !enabled_flag then
    let t = Profile.now_ns () in
    record name args t t

(* Collection runs while recording domains are quiescent (between pool
   batches / after a run); a torn read could at worst misreport one
   in-flight span. *)
let buf_events b =
  let len = Array.length b.events in
  if b.size < len then Array.to_list (Array.sub b.events 0 b.size)
  else List.init len (fun i -> b.events.((b.next + i) mod len))

let events () =
  Mutex.lock registry_lock;
  let bufs = !registry in
  Mutex.unlock registry_lock;
  List.concat_map buf_events bufs
  |> List.sort (fun a b -> compare a.t_start_ns b.t_start_ns)

let dropped () =
  Mutex.lock registry_lock;
  let bufs = !registry in
  Mutex.unlock registry_lock;
  List.fold_left (fun acc b -> acc + b.dropped) 0 bufs

let reset () =
  Mutex.lock registry_lock;
  List.iter
    (fun b ->
      b.size <- 0;
      b.next <- 0;
      b.dropped <- 0)
    !registry;
  Mutex.unlock registry_lock;
  epoch_ns := Profile.now_ns ()

(* {2 Chrome trace-event export}

   The "JSON Array Format" of the trace-event spec: complete ("X")
   events with microsecond [ts]/[dur], [tid] = OCaml domain id. Loads
   directly in chrome://tracing and https://ui.perfetto.dev. *)

let event_json epoch pid ev =
  Json.Obj
    ([ ("name", Json.String ev.name);
       ("cat", Json.String "stp");
       ("ph", Json.String "X");
       ("ts", Json.Float (float_of_int (ev.t_start_ns - epoch) /. 1e3));
       ("dur", Json.Float (float_of_int (ev.t_end_ns - ev.t_start_ns) /. 1e3));
       ("pid", Json.Int pid);
       ("tid", Json.Int ev.domain_id) ]
    @
    match ev.args with
    | [] -> []
    | args ->
      [ ("args",
         Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) args)) ])

let write ~path =
  let evs = events () in
  let epoch = !epoch_ns in
  let pid = Unix.getpid () in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
      List.iteri
        (fun i ev ->
          if i > 0 then Buffer.add_char buf ',';
          Json.to_buffer buf (event_json epoch pid ev);
          if Buffer.length buf > 1 lsl 20 then begin
            Buffer.output_buffer oc buf;
            Buffer.clear buf
          end)
        evs;
      Buffer.add_string buf "]}\n";
      Buffer.output_buffer oc buf);
  List.length evs
