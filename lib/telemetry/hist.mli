(** Fixed-bucket log-scale latency histograms with lock-free recording.

    A histogram is 160 atomic buckets: base-2 octaves refined by 4
    linear sub-buckets, so every bucket spans at most +25% of its lower
    bound (values below 4 ns are exact). This covers 1 ns to ~37
    minutes — the full latency range of a synthesis request, from an
    NPN-cache hit to a paper-scale 180 s timeout — in a few hundred
    bytes. {!observe_ns} is wait-free (three atomic adds and two CAS
    races), so every domain of a pool records into the same histogram
    without coordination.

    Quantiles ({!quantile_ns}, the [p50_s]/[p90_s]/[p99_s] fields of
    {!snapshot}) are extracted exactly from the bucket counts; the
    answer is the hit bucket's midpoint, i.e. exact up to the <= 25%
    bucket resolution.

    Histograms are either {!make}d standalone (a collection runner's
    per-run latency histogram) or named into the process-global
    registry with {!get} (engine and daemon instrumentation) — the
    registry is what {!Telemetry.snapshot_json} reports. *)

type t

val make : string -> t
(** A fresh, unregistered histogram. *)

val name : t -> string

val observe_ns : t -> int -> unit
(** Record one latency in nanoseconds (negative values clamp to 0). *)

val observe_s : t -> float -> unit
(** [observe_ns] on [seconds *. 1e9]. *)

val count : t -> int

val quantile_ns : t -> float -> float
(** [quantile_ns t q] for [q] in [0, 1]: the latency (ns) at rank
    [ceil (q * count)]; 0 when empty. *)

val reset : t -> unit

type snapshot = {
  sname : string;
  scount : int;
  sum_s : float;
  mean_s : float;
  min_s : float;
  max_s : float;
  p50_s : float;
  p90_s : float;
  p99_s : float;
  sbuckets : (float * int) list;
      (** non-empty buckets only: (inclusive lower bound in seconds,
          count), ascending *)
}

val snapshot : t -> snapshot

val snapshot_json : snapshot -> Json.t
(** [{"count": ..., "p50_s": ..., "p99_s": ..., "buckets": [[lo_s,
    count], ...]}] — the histogram block format of
    [BENCH_table1.json] and the daemon's [stats] response. *)

val to_json : t -> Json.t
(** [snapshot_json (snapshot t)]. *)

(** {2 The named registry} *)

val get : string -> t
(** The registered histogram of that name, created on first use.
    Conventional names are path-shaped: ["engine/STP"],
    ["synthd/source/cache"], ["synthd/batch"]. *)

val find : string -> t option

val registered : unit -> t list
(** Every registered histogram, sorted by name. *)

val reset_registry : unit -> unit
(** Reset every registered histogram (registration survives). *)

(**/**)

val num_buckets : int
val bucket_of_ns : int -> int
val bucket_lower_ns : int -> int
(** Exposed for tests. *)
