module Profile = Stp_util.Profile

(* The one-stop metrics surface: Profile's stage timers and counters,
   every registered histogram, and the probes pushed in by subsystems
   that own their own state (pool utilisation, store persistence),
   unified into one JSON snapshot. *)

let metrics_flag = ref false

let metrics_enabled () = !metrics_flag

let set_metrics_enabled b = metrics_flag := b

(* {2 Probes} *)

let probes : (string, unit -> Json.t) Hashtbl.t = Hashtbl.create 8
let probes_lock = Mutex.create ()

let register_probe name f =
  Mutex.lock probes_lock;
  Hashtbl.replace probes name f;
  Mutex.unlock probes_lock

let unregister_probe name =
  Mutex.lock probes_lock;
  Hashtbl.remove probes name;
  Mutex.unlock probes_lock

(* {2 Snapshot} *)

let profile_json (p : Profile.snapshot) =
  Json.Obj
    [ ("stages",
       Json.Obj
         (List.map
            (fun (st : Profile.stage_snapshot) ->
              ( st.Profile.stage,
                Json.Obj
                  [ ("calls", Json.Int st.Profile.calls);
                    ("self_s", Json.Float st.Profile.self_s) ] ))
            p.Profile.stages));
      ("counters",
       Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) p.Profile.counts)) ]

let snapshot_json () =
  let probe_fields =
    Mutex.lock probes_lock;
    let fs = Hashtbl.fold (fun name f acc -> (name, f) :: acc) probes [] in
    Mutex.unlock probes_lock;
    List.sort (fun (a, _) (b, _) -> compare a b) fs
    |> List.map (fun (name, f) ->
           ( name,
             match f () with
             | j -> j
             | exception e -> Json.String ("probe error: " ^ Printexc.to_string e) ))
  in
  Json.Obj
    ([ ("metrics_enabled", Json.Bool !metrics_flag);
       ("profile", profile_json (Profile.snapshot ()));
       ("histograms",
        Json.Obj
          (List.map
             (fun h -> (Hist.name h, Hist.to_json h))
             (Hist.registered ())));
       ("trace",
        Json.Obj
          [ ("enabled", Json.Bool (Trace.enabled ()));
            ("dropped", Json.Int (Trace.dropped ())) ]) ]
    @ probe_fields)

let reset () =
  Profile.reset ();
  Hist.reset_registry ();
  Trace.reset ()
