module Tt = Stp_tt.Tt
module Npn = Stp_tt.Npn
module Chain = Stp_chain.Chain
module Spec = Stp_synth.Spec
module Npn_cache = Stp_synth.Npn_cache
module Pool = Stp_parallel.Pool

type options = {
  cut_size : int;
  cut_limit : int;
  timeout : float;
  jobs : int;
  basis : Stp_chain.Gate.code list option;
  max_chains : int;
}

let and_basis = [ 1; 2; 4; 7; 8; 11; 13; 14 ]

let default_options =
  { cut_size = 4;
    cut_limit = 8;
    timeout = 5.0;
    jobs = 1;
    basis = Some and_basis;
    max_chains = 8 }

type report = {
  ands_before : int;
  ands_after : int;
  depth_before : int;
  depth_after : int;
  applied : int;
  candidates : int;
  classes : int;
  cache : Npn_cache.stats;
  verified : bool;
  verify_method : string;
  elapsed : float;
}

let gain r = r.ands_before - r.ands_after

let verify_equivalent = Pass.verify_equivalent

(* One rewriting candidate of a node: a cut, its support-reduced
   function, and where the surviving leaves sit in the cut. *)
type candidate = {
  cand_leaves : int array; (** cut leaves backing the reduced variables *)
  cand_tt : Tt.t;          (** support-reduced cut function *)
  cand_rep : Tt.t option;  (** NPN class representative, [None] below 2 vars *)
}

let delta_stats (s0 : Npn_cache.stats) (s1 : Npn_cache.stats) =
  { Npn_cache.hits = s1.hits - s0.hits;
    misses = s1.misses - s0.misses;
    bypassed = s1.bypassed - s0.bypassed;
    failures = s1.failures - s0.failures }

let run ?(options = default_options) ?cache ntk =
  let t0 = Stp_util.Unix_time.now () in
  let cache =
    match cache with Some c -> c | None -> Npn_cache.create ()
  in
  let stats0 = Npn_cache.stats cache in
  let ands_before = Ntk.count_live ntk in
  let depth_before = Ntk.depth ntk in
  let orig_nv = Ntk.num_vars ntk in
  let cuts = Cuts.enumerate ~k:options.cut_size ~limit:options.cut_limit ntk in

  (* Phase A: reduce every non-trivial cut to a candidate and collect
     the distinct NPN classes that need synthesis. *)
  let reps = Hashtbl.create 97 in
  let candidates = ref 0 in
  let node_cands = Array.make orig_nv [] in
  Ntk.iter_ands ntk (fun v ->
      node_cands.(v) <-
        List.filter_map
          (fun (c : Cuts.cut) ->
            if Cuts.is_trivial c then None
            else begin
              incr candidates;
              let tt, support = Tt.shrink_to_support c.tt in
              let cand_leaves =
                Array.of_list (List.map (fun j -> c.leaves.(j)) support)
              in
              let cand_rep =
                if Tt.num_vars tt < 2 then None
                else begin
                  let rep, _ = Npn.canonical tt in
                  if not (Hashtbl.mem reps rep) then Hashtbl.replace reps rep ();
                  Some rep
                end
              in
              Some { cand_leaves; cand_tt = tt; cand_rep }
            end)
          cuts.(v));

  (* Phase B: synthesize each class once, fanned over the pool; the
     shared cache makes phase C replay-only. Classes are solved through
     the unified Engine API with an explicit per-class deadline. *)
  let synth_options = { Spec.default_options with Spec.basis = options.basis } in
  let (module E : Stp_synth.Engine.S) =
    Npn_cache.wrap cache Stp_synth.Engine.stp
  in
  let synth target =
    E.synthesize
      (Stp_synth.Engine.spec ~options:synth_options target)
      ~deadline:(Stp_util.Deadline.after options.timeout)
  in
  let rep_list =
    Hashtbl.fold (fun rep () acc -> rep :: acc) reps []
    |> List.sort Tt.compare
  in
  let solve rep =
    match synth rep with Stp_synth.Engine.Solved _ -> true | _ -> false
  in
  let statuses =
    if options.jobs > 1 then Pool.map ~domains:options.jobs solve rep_list
    else List.map solve rep_list
  in
  let solved_class = Hashtbl.create 97 in
  List.iter2
    (fun rep ok -> Hashtbl.replace solved_class rep ok)
    rep_list statuses;

  (* Phase C: greedy topological apply with ABC-style reference
     counting. [refs] tracks the virtual (post-substitution) network;
     scratch nodes appended for losing candidates stay at zero and are
     swept by the final extract. *)
  let refs = ref (Ntk.refcounts ntk) in
  let ensure v =
    if v >= Array.length !refs then begin
      let grown = Array.make (max (v + 1) (2 * Array.length !refs)) 0 in
      Array.blit !refs 0 grown 0 (Array.length !refs);
      refs := grown
    end
  in
  let get v = if v < Array.length !refs then !refs.(v) else 0 in
  let set v x = ensure v; !refs.(v) <- x in
  let rec deref_use w =
    set w (get w - 1);
    if get w = 0 && Ntk.is_and ntk w then
      1
      + deref_use (Ntk.var_of_lit (Ntk.fanin0 ntk w))
      + deref_use (Ntk.var_of_lit (Ntk.fanin1 ntk w))
    else 0
  in
  let rec ref_use w =
    let was = get w in
    set w (was + 1);
    if was = 0 && Ntk.is_and ntk w then
      1
      + ref_use (Ntk.var_of_lit (Ntk.fanin0 ntk w))
      + ref_use (Ntk.var_of_lit (Ntk.fanin1 ntk w))
    else 0
  in
  let deref_node v =
    1
    + deref_use (Ntk.var_of_lit (Ntk.fanin0 ntk v))
    + deref_use (Ntk.var_of_lit (Ntk.fanin1 ntk v))
  in
  let ref_node v =
    ignore (ref_use (Ntk.var_of_lit (Ntk.fanin0 ntk v)));
    ignore (ref_use (Ntk.var_of_lit (Ntk.fanin1 ntk v)))
  in
  let rmap = Array.make orig_nv None in
  (* Resolve a literal through the substitutions recorded so far, with
     path compression; replacement cones never contain the replaced
     node (checked at record time), so this terminates. *)
  let rec resolve l =
    let v = Ntk.var_of_lit l in
    if v >= orig_nv then l
    else
      match rmap.(v) with
      | None -> l
      | Some m ->
        let r = resolve m in
        rmap.(v) <- Some r;
        if Ntk.is_compl l then Ntk.lit_not r else r
  in
  let applied = ref 0 in
  for v = Ntk.num_pis ntk + 1 to orig_nv - 1 do
    if get v > 0 then begin
      let mffc = deref_node v in
      let best = ref None in
      (* A replacement cone may only use original nodes strictly below
         [v] (their substitutions are final and themselves clean, by
         induction) plus scratch nodes over such; structural hashing
         can otherwise hand back a node at or above [v] and tie a
         substitution cycle. Only scratch nodes need traversal. *)
      let cone_ok rlit =
        let memo = Hashtbl.create 16 in
        let rec ok l =
          let w = Ntk.var_of_lit l in
          if w < orig_nv then w < v
          else
            match Hashtbl.find_opt memo w with
            | Some r -> r
            | None ->
              let r = ok (Ntk.fanin0 ntk w) && ok (Ntk.fanin1 ntk w) in
              Hashtbl.replace memo w r;
              r
        in
        let w = Ntk.var_of_lit rlit in
        Ntk.is_const_var w || ok rlit
      in
      let consider rlit =
        if Ntk.var_of_lit rlit <> v && cone_ok rlit then begin
          let cost = ref_use (Ntk.var_of_lit rlit) in
          let g = mffc - cost in
          (match !best with
          | Some (g0, _) when g0 >= g -> ()
          | _ -> best := Some (g, rlit));
          ignore (deref_use (Ntk.var_of_lit rlit))
        end
      in
      List.iter
        (fun cand ->
          let leaf_lits =
            Array.map
              (fun leaf -> resolve (Ntk.lit_of_var leaf false))
              cand.cand_leaves
          in
          match cand.cand_rep with
          | None ->
            (* degenerate cut: the node is a constant or a wire *)
            (match Tt.is_const_of cand.cand_tt with
            | Some b -> consider (Ntk.lit_const b)
            | None ->
              let wire =
                if Tt.equal cand.cand_tt (Tt.var 1 0) then leaf_lits.(0)
                else Ntk.lit_not leaf_lits.(0)
              in
              consider wire)
          | Some rep ->
            if Hashtbl.find_opt solved_class rep = Some true then begin
              match synth cand.cand_tt with
              | Stp_synth.Engine.Solved chains ->
                List.filteri (fun i _ -> i < options.max_chains) chains
                |> List.iter (fun chain ->
                       (* window re-verification: the chain must compute
                          the cut function exactly *)
                       if Tt.equal (Chain.simulate chain) cand.cand_tt then
                         consider (Ntk.lit_of_chain ntk chain leaf_lits))
              | Stp_synth.Engine.Timeout | Stp_synth.Engine.Infeasible -> ()
            end)
        node_cands.(v);
      match !best with
      | Some (g, rlit) when g > 0 ->
        let r = Ntk.var_of_lit rlit in
        ignore (ref_use r);
        (* the rest of v's fanouts re-target r as well *)
        set r (get r + get v - 1);
        set v 0;
        rmap.(v) <- Some rlit;
        incr applied
      | _ -> ref_node v
    end
  done;

  let out =
    Ntk.extract ~repr:(fun v -> if v < orig_nv then rmap.(v) else None) ntk
  in
  let verified, verify_method = verify_equivalent ntk out in
  let stats1 = Npn_cache.stats cache in
  ( out,
    { ands_before;
      ands_after = Ntk.count_live out;
      depth_before;
      depth_after = Ntk.depth out;
      applied = !applied;
      candidates = !candidates;
      classes = List.length rep_list;
      cache = delta_stats stats0 stats1;
      verified;
      verify_method;
      elapsed = Stp_util.Unix_time.now () -. t0 } )

let pass ?(options = default_options) ?cache () =
  { Pass.name = "rewrite";
    run =
      (fun ntk ->
        let out, r = run ~options ?cache ntk in
        ( out,
          { Pass.pass = "rewrite";
            ands_before = r.ands_before;
            ands_after = r.ands_after;
            depth_before = r.depth_before;
            depth_after = r.depth_after;
            verified = r.verified;
            verify_method = r.verify_method;
            elapsed_s = r.elapsed;
            detail =
              [ ("applied", r.applied);
                ("candidates", r.candidates);
                ("classes", r.classes);
                ("cache_hits", r.cache.Npn_cache.hits);
                ("cache_misses", r.cache.Npn_cache.misses) ] } )) }
