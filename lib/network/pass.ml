module Tt = Stp_tt.Tt
module Prng = Stp_util.Prng

type stats = {
  pass : string;
  ands_before : int;
  ands_after : int;
  depth_before : int;
  depth_after : int;
  verified : bool;
  verify_method : string;
  elapsed_s : float;
  detail : (string * int) list;
}

type t = {
  name : string;
  run : Ntk.t -> Ntk.t * stats;
}

let gain s = s.ands_before - s.ands_after

let random_rounds = 256

let verify_equivalent a b =
  if Ntk.num_pis a <> Ntk.num_pis b || Ntk.num_pos a <> Ntk.num_pos b then
    (false, "shape mismatch")
  else if Ntk.num_pis a <= 16 then
    let fa = Ntk.simulate a and fb = Ntk.simulate b in
    (Array.for_all2 Tt.equal fa fb, "exhaustive")
  else begin
    let rng = Prng.create 0x5eed in
    let pis = Ntk.num_pis a in
    let ok = ref true in
    for _ = 1 to random_rounds do
      if !ok then begin
        let ws = Array.init pis (fun _ -> Prng.next_int64 rng) in
        let sa = Ntk.simulate_words a ws and sb = Ntk.simulate_words b ws in
        if not (Array.for_all2 Int64.equal sa sb) then ok := false
      end
    done;
    (!ok, Printf.sprintf "random:%d" random_rounds)
  end

let measure ~name f ntk =
  let t0 = Stp_util.Unix_time.now () in
  let ands_before = Ntk.count_live ntk in
  let depth_before = Ntk.depth ntk in
  let out, detail = f ntk in
  let verified, verify_method = verify_equivalent ntk out in
  ( out,
    { pass = name;
      ands_before;
      ands_after = Ntk.count_live out;
      depth_before;
      depth_after = Ntk.depth out;
      verified;
      verify_method;
      elapsed_s = Stp_util.Unix_time.now () -. t0;
      detail } )

let registry : (string, t) Hashtbl.t = Hashtbl.create 7

let register p = Hashtbl.replace registry p.name p

let find name = Hashtbl.find_opt registry name

let names () =
  Hashtbl.fold (fun name _ acc -> name :: acc) registry []
  |> List.sort compare

let parse spec =
  let parts =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec resolve acc = function
    | [] -> Ok (List.rev acc)
    | name :: rest -> (
      match find name with
      | Some p -> resolve (p :: acc) rest
      | None ->
        Error
          (Printf.sprintf "unknown pass %S (registered: %s)" name
             (String.concat ", " (names ()))))
  in
  resolve [] parts

let run_pipeline passes ntk =
  let rec go ntk acc = function
    | [] -> (ntk, List.rev acc)
    | p :: rest ->
      let out, st = p.run ntk in
      if st.verified then go out (st :: acc) rest
      else (ntk, List.rev (st :: acc))
  in
  go ntk [] passes
