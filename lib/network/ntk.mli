(** Mutable And-Inverter networks with complemented edges.

    The netlist counterpart of the single-output {!Stp_chain.Chain}: a
    multi-output DAG of 2-input AND nodes connected by possibly
    complemented edges, the representation shared by the AIGER format
    and by ABC-style rewriting flows. Arbitrary k-LUTs enter through
    {!add_lut} (Shannon-decomposed on insertion), so the same structure
    serves as the target of the structural BLIF reader.

    {b Variables and literals.} Node (variable) [0] is the constant
    false; variables [1 .. num_pis] are the primary inputs, in creation
    order; every later variable is an AND node. A {e literal} is
    [2 * var + phase] where phase 1 complements — exactly AIGER's
    encoding, so the readers and writers are transliterations. AND
    nodes are created strictly after their fanins, hence ascending
    variable order is a topological order and {!iter_ands} needs no
    extra sort.

    {b Structural hashing.} {!add_and} folds constants, absorbs
    [a & a], [a & ~a], and returns the existing node for a repeated
    fanin pair (operands are ordered first), so structurally duplicate
    logic is never created. Nodes are therefore never mutated in place;
    optimisation passes record replacements externally and rebuild with
    {!extract}, which also sweeps dead nodes. *)

type t

type lit = int
(** [2 * var + phase]; see above. *)

(** {1 Literals} *)

val const_false : lit
val const_true : lit

val lit_of_var : int -> bool -> lit
(** [lit_of_var v c] is the literal for variable [v], complemented when
    [c]. *)

val var_of_lit : lit -> int

val is_compl : lit -> bool

val lit_not : lit -> lit

val lit_const : bool -> lit

(** {1 Construction} *)

val create : ?capacity:int -> unit -> t

val add_pi : t -> lit
(** A fresh primary input, as a positive literal. Inputs must be
    created before the first AND node so that the AIGER variable layout
    is maintained.
    @raise Invalid_argument after the first {!add_and}. *)

val add_and : t -> lit -> lit -> lit
(** Strashed AND of two literals (see the header).
    @raise Invalid_argument on literals of unknown variables. *)

val add_or : t -> lit -> lit -> lit
val add_xor : t -> lit -> lit -> lit

val add_gate : t -> Stp_chain.Gate.code -> lit -> lit -> lit
(** [add_gate g a b] realises the 2-input gate [g] (bit [2*va + vb]
    convention of {!Stp_chain.Gate}) over literals [a], [b]. All
    non-XOR gates cost at most one AND node; XOR/XNOR cost three. *)

val add_lut : t -> Stp_tt.Tt.t -> lit array -> lit
(** [add_lut t tt lits] realises the function [tt] over the given
    fanin literals (variable [i] of [tt] reads [lits.(i)]) by Shannon
    decomposition into strashed AND nodes. The table is first shrunk
    to its support, so irrelevant fanins cost nothing. *)

val lit_of_chain : t -> Stp_chain.Chain.t -> lit array -> lit
(** [lit_of_chain t c leaves] instantiates a Boolean chain over the
    leaf literals ([Array.length leaves = c.n]) gate by gate via
    {!add_gate} and returns the chain-output literal. *)

val add_po : t -> lit -> int
(** Appends a primary output pointing at the literal; returns its
    index. *)

val set_po : t -> int -> lit -> unit

(** {1 Observation} *)

val num_pis : t -> int

val num_ands : t -> int

val num_vars : t -> int
(** [1 + num_pis + num_ands], including the constant node. *)

val num_pos : t -> int

val outputs : t -> lit array
(** A fresh array of the output literals. *)

val is_const_var : int -> bool

val is_pi : t -> int -> bool

val is_and : t -> int -> bool

val fanin0 : t -> int -> lit
(** Fanin literals of an AND variable, with [fanin0 <= fanin1] as
    ordered by strashing.
    @raise Invalid_argument on non-AND variables. *)

val fanin1 : t -> int -> lit

val iter_ands : t -> (int -> unit) -> unit
(** All AND variables in ascending (= topological) order, dead or
    alive. *)

val refcounts : t -> int array
(** Per variable, the number of AND fanin edges plus primary outputs
    reading it (complemented or not). *)

val count_live : t -> int
(** AND nodes reachable from at least one output — the gate count
    reported by the optimisation passes; dangling nodes awaiting
    {!extract} are excluded. *)

val levels : t -> int array
(** Per variable, the longest path from a PI or constant, in AND
    nodes. *)

val depth : t -> int
(** Maximum level over the output variables (0 for constant or
    input-only outputs). *)

(** {1 Semantics} *)

val simulate : t -> Stp_tt.Tt.t array
(** Output functions over the primary inputs, one table per output.
    Requires [num_pis <= Stp_tt.Tt.max_vars]; networks without inputs
    simulate over one dummy variable, like {!Stp_chain.Chain}. *)

val simulate_words : t -> int64 array -> int64 array
(** [simulate_words t ws] runs 64 caller-supplied vectors bit-parallel:
    PI [i] takes pattern [ws.(i)] and the result holds one signature
    word per output — the sampling fallback when exhaustive
    {!simulate} is out of reach. The patterns need not be random:
    SAT-sweeping re-simulates counterexample assignments through the
    same entry point. *)

val simulate_words_all : t -> int64 array -> int64 array
(** Like {!simulate_words} but returns one signature word per {e
    variable} (index = variable, entry = the uncomplemented value of
    that variable under the 64 patterns; the constant variable reads
    [0L]). The per-node view that equivalence-class seeding
    ({!Sweep}) is built on. *)

(** {1 Restructuring} *)

val extract : ?repr:(int -> lit option) -> t -> t
(** [extract ~repr t] rebuilds the network bottom-up from its outputs:
    every variable [v] with [repr v = Some l] is replaced by (the
    rebuilt image of) [l], dead and duplicate nodes disappear through
    strashing, and inputs keep their indices. Without [repr] this is a
    plain sweep + re-strash.
    @raise Invalid_argument when replacements form a cycle. *)

val pp : Format.formatter -> t -> unit
