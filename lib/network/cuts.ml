module Tt = Stp_tt.Tt

type cut = { leaves : int array; tt : Tt.t }

let is_trivial c = Array.length c.leaves = 1 && Tt.equal c.tt (Tt.var 1 0)

let trivial v = { leaves = [| v |]; tt = Tt.var 1 0 }

(* Union of two sorted leaf arrays, None when it exceeds [k]. *)
let merge_leaves k a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (min (la + lb) (k + 1)) 0 in
  let rec go i j n =
    if n > k then None
    else if i = la && j = lb then Some (Array.sub out 0 n)
    else if n = k && (i < la || j < lb) then None
    else begin
      let pick =
        if i = la then (b.(j), i, j + 1)
        else if j = lb then (a.(i), i + 1, j)
        else if a.(i) < b.(j) then (a.(i), i + 1, j)
        else if a.(i) > b.(j) then (b.(j), i, j + 1)
        else (a.(i), i + 1, j + 1)
      in
      let v, i, j = pick in
      out.(n) <- v;
      go i j (n + 1)
    end
  in
  go 0 0 0

let is_subset a b =
  (* both sorted *)
  let la = Array.length a and lb = Array.length b in
  let rec go i j =
    if i = la then true
    else if j = lb then false
    else if a.(i) = b.(j) then go (i + 1) (j + 1)
    else if a.(i) > b.(j) then go i (j + 1)
    else false
  in
  go 0 0

(* The fanin's cut function lifted onto the merged leaf set, with the
   edge complement folded in. *)
let lift union (c : cut) compl =
  let n = Array.length union in
  let placement =
    Array.map
      (fun leaf ->
        let rec find i = if union.(i) = leaf then i else find (i + 1) in
        find 0)
      c.leaves
  in
  let f = Tt.expand c.tt n placement in
  if compl then Tt.bnot f else f

let enumerate ~k ?(limit = 8) t =
  let k = max 2 (min 6 k) in
  let cuts = Array.make (Ntk.num_vars t) [] in
  for v = 1 to Ntk.num_pis t do
    cuts.(v) <- [ trivial v ]
  done;
  Ntk.iter_ands t (fun v ->
      let l0 = Ntk.fanin0 t v and l1 = Ntk.fanin1 t v in
      let merged =
        List.concat_map
          (fun c0 ->
            List.filter_map
              (fun c1 ->
                match merge_leaves k c0.leaves c1.leaves with
                | None -> None
                | Some union ->
                  let f0 = lift union c0 (Ntk.is_compl l0) in
                  let f1 = lift union c1 (Ntk.is_compl l1) in
                  Some { leaves = union; tt = Tt.band f0 f1 })
              cuts.(Ntk.var_of_lit l1))
          cuts.(Ntk.var_of_lit l0)
      in
      (* dedup equal leaf sets, drop dominated (superset) cuts, keep the
         smallest [limit] *)
      let merged =
        List.stable_sort
          (fun a b -> compare (Array.length a.leaves) (Array.length b.leaves))
          merged
      in
      let kept = ref [] in
      List.iter
        (fun c ->
          if
            not
              (List.exists
                 (fun c' -> is_subset c'.leaves c.leaves)
                 !kept)
          then kept := c :: !kept)
        merged;
      let kept = List.rev !kept in
      let kept = List.filteri (fun i _ -> i < limit) kept in
      cuts.(v) <- kept @ [ trivial v ]);
  cuts
