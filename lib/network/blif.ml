module Tt = Stp_tt.Tt

let fail fmt = Printf.ksprintf failwith fmt

let max_names_inputs = 15

(* Logical lines: comments stripped, continuation backslashes joined,
   blanks dropped. *)
let logical_lines s =
  let physical = String.split_on_char '\n' s in
  let strip_comment line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let rec join acc pending = function
    | [] ->
      let acc = if pending = "" then acc else pending :: acc in
      List.rev acc
    | line :: rest ->
      let line = strip_comment line in
      let line = String.trim line in
      if String.length line > 0 && line.[String.length line - 1] = '\\' then
        join acc (pending ^ String.sub line 0 (String.length line - 1) ^ " ") rest
      else if pending <> "" then join ((pending ^ line) :: acc) "" rest
      else if line = "" then join acc "" rest
      else join (line :: acc) "" rest
  in
  join [] "" physical

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

type def = { fanins : string list; rows : (string * char) list }

let tt_of_cover ~n rows =
  let phase =
    match rows with
    | [] -> '1' (* empty cover: constant 0 under either phase *)
    | (_, p) :: rest ->
      List.iter
        (fun (_, p') ->
          if p' <> p then fail "blif: mixed on-set and off-set rows")
        rest;
      p
  in
  let matches plane m =
    let ok = ref true in
    String.iteri
      (fun j c ->
        match c with
        | '-' -> ()
        | '0' -> if (m lsr j) land 1 = 1 then ok := false
        | '1' -> if (m lsr j) land 1 = 0 then ok := false
        | _ -> fail "blif: bad cover character %C" c)
      plane;
    !ok
  in
  let on = Tt.of_fun n (fun m -> List.exists (fun (p, _) -> matches p m) rows) in
  if phase = '1' then on else Tt.bnot on

let of_string s =
  let lines = logical_lines s in
  let inputs = ref [] and outputs = ref [] in
  let defs : (string, def) Hashtbl.t = Hashtbl.create 97 in
  let def_order = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | None -> ()
    | Some (out, fanins, rows) ->
      if Hashtbl.mem defs out then fail "blif: signal %s defined twice" out;
      Hashtbl.replace defs out { fanins; rows = List.rev rows };
      def_order := out :: !def_order;
      current := None
  in
  let seen_end = ref false in
  List.iter
    (fun line ->
      if not !seen_end then
        match tokens line with
        | [] -> ()
        | tok :: rest when tok.[0] = '.' -> (
          flush ();
          match tok with
          | ".model" -> ()
          | ".inputs" -> inputs := !inputs @ rest
          | ".outputs" -> outputs := !outputs @ rest
          | ".names" -> (
            match List.rev rest with
            | [] -> fail "blif: .names without an output"
            | out :: rev_ins ->
              let fanins = List.rev rev_ins in
              if List.length fanins > max_names_inputs then
                fail "blif: .names %s has %d inputs (max %d)" out
                  (List.length fanins) max_names_inputs;
              current := Some (out, fanins, []))
          | ".end" -> seen_end := true
          | ".latch" | ".subckt" | ".gate" | ".mlatch" | ".exdc" ->
            fail "blif: %s is not supported (structural subset only)" tok
          | _ -> fail "blif: unknown directive %s" tok)
        | toks -> (
          match !current with
          | None -> fail "blif: cover row outside .names: %S" line
          | Some (out, fanins, rows) ->
            let plane, value =
              match toks with
              | [ v ] when fanins = [] -> ("", v)
              | [ p; v ] -> (p, v)
              | _ -> fail "blif: malformed cover row %S" line
            in
            if String.length value <> 1 || (value <> "0" && value <> "1")
            then fail "blif: bad cover output %S" value;
            if String.length plane <> List.length fanins then
              fail "blif: cover row %S arity mismatch" line;
            current := Some (out, fanins, (plane, value.[0]) :: rows)))
    lines;
  flush ();
  let t = Ntk.create () in
  let input_of = Hashtbl.create 97 in
  List.iter
    (fun name ->
      if Hashtbl.mem input_of name then fail "blif: duplicate input %s" name;
      Hashtbl.replace input_of name (Ntk.add_pi t))
    !inputs;
  let memo = Hashtbl.create 97 in
  let visiting = Hashtbl.create 97 in
  let rec resolve name =
    match Hashtbl.find_opt input_of name with
    | Some l -> l
    | None -> (
      match Hashtbl.find_opt memo name with
      | Some l -> l
      | None ->
        (match Hashtbl.find_opt defs name with
        | None -> fail "blif: undefined signal %s" name
        | Some { fanins; rows } ->
          if Hashtbl.mem visiting name then
            fail "blif: combinational cycle through %s" name;
          Hashtbl.replace visiting name ();
          let lits = Array.of_list (List.map resolve fanins) in
          let tt = tt_of_cover ~n:(Array.length lits) rows in
          let l = Ntk.add_lut t tt lits in
          Hashtbl.remove visiting name;
          Hashtbl.replace memo name l;
          l))
  in
  List.iter (fun name -> ignore (resolve name)) (List.rev !def_order);
  List.iter (fun name -> ignore (Ntk.add_po t (resolve name))) !outputs;
  t

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let name_of_var t v =
  if Ntk.is_pi t v then Printf.sprintf "x%d" v else Printf.sprintf "n%d" v

let to_string ?(model_name = "ntk") t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf ".model %s\n" model_name);
  Buffer.add_string buf ".inputs";
  for v = 1 to Ntk.num_pis t do
    Buffer.add_string buf (" " ^ name_of_var t v)
  done;
  Buffer.add_string buf "\n.outputs";
  Array.iteri
    (fun i _ -> Buffer.add_string buf (Printf.sprintf " po%d" i))
    (Ntk.outputs t);
  Buffer.add_string buf "\n";
  Ntk.iter_ands t (fun v ->
      let f0 = Ntk.fanin0 t v and f1 = Ntk.fanin1 t v in
      Buffer.add_string buf
        (Printf.sprintf ".names %s %s %s\n%c%c 1\n"
           (name_of_var t (Ntk.var_of_lit f0))
           (name_of_var t (Ntk.var_of_lit f1))
           (name_of_var t v)
           (if Ntk.is_compl f0 then '0' else '1')
           (if Ntk.is_compl f1 then '0' else '1')));
  Array.iteri
    (fun i l ->
      let v = Ntk.var_of_lit l in
      if Ntk.is_const_var v then
        Buffer.add_string buf
          (Printf.sprintf ".names po%d\n%s" i
             (if Ntk.is_compl l then "1\n" else ""))
      else
        Buffer.add_string buf
          (Printf.sprintf ".names %s po%d\n%c 1\n" (name_of_var t v) i
             (if Ntk.is_compl l then '0' else '1')))
    (Ntk.outputs t);
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let write_file ?model_name path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ?model_name t))
