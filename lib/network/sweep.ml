module Solver = Stp_sat.Solver
module Lit = Stp_sat.Lit
module Profile = Stp_util.Profile
module Prng = Stp_util.Prng
module Deadline = Stp_util.Deadline
module Trace = Stp_telemetry.Trace

type options = {
  sim_words : int;
  max_rounds : int;
  conflict_budget : int;
  timeout : float;
  max_cex_per_round : int;
  seed : int;
}

let default_options =
  { sim_words = 8;
    max_rounds = 16;
    conflict_budget = 2000;
    timeout = 60.0;
    max_cex_per_round = 64;
    seed = 1 }

type report = {
  ands_before : int;
  ands_after : int;
  depth_before : int;
  depth_after : int;
  classes : int;
  candidates : int;
  pairs_proved : int;
  pairs_refuted : int;
  pairs_skipped : int;
  merges : int;
  rounds : int;
  cex_patterns : int;
  sat_vars : int;
  sat : Solver.stats;
  verified : bool;
  verify_method : string;
  elapsed : float;
}

(* Signatures are normalised up to complement by the first sample bit,
   so a node and its negation share a partition key. *)
module Sig_tbl = Hashtbl.Make (struct
  type t = int64 array

  let equal = ( = )

  let hash = Hashtbl.hash
end)

let normalized_sig sigmat v =
  let n = Array.length sigmat in
  let first = sigmat.(0).(v) in
  let phase = Int64.logand first 1L = 1L in
  let key =
    Array.init n (fun b ->
        let w = sigmat.(b).(v) in
        if phase then Int64.lognot w else w)
  in
  (key, phase)

(* Outputs-reachable variables: sweeping dead logic would only inflate
   the candidate classes ({!Ntk.extract} drops it regardless). *)
let reachable ntk =
  let seen = Array.make (Ntk.num_vars ntk) false in
  seen.(0) <- true;
  let stack = ref [] in
  Array.iter
    (fun l -> stack := Ntk.var_of_lit l :: !stack)
    (Ntk.outputs ntk);
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
      stack := rest;
      if not seen.(v) then begin
        seen.(v) <- true;
        if Ntk.is_and ntk v then
          stack :=
            Ntk.var_of_lit (Ntk.fanin0 ntk v)
            :: Ntk.var_of_lit (Ntk.fanin1 ntk v)
            :: !stack
      end
  done;
  seen

(* Partition the eligible variables by normalised signature. Classes
   are sorted by representative (the lowest variable, so a PI or the
   constant can only ever be a representative) with members ascending;
   phases are rebased onto the representative's. *)
let partition ~eligible ~sigmat nvars =
  let tbl = Sig_tbl.create 4096 in
  for v = 0 to nvars - 1 do
    if eligible v then begin
      let key, phase = normalized_sig sigmat v in
      let bucket = try Sig_tbl.find tbl key with Not_found -> [] in
      Sig_tbl.replace tbl key ((v, phase) :: bucket)
    end
  done;
  Sig_tbl.fold
    (fun _ bucket acc ->
      match List.rev bucket with
      | ((_, rep_phase) :: _ :: _) as members ->
        List.map (fun (v, ph) -> (v, ph <> rep_phase)) members :: acc
      | _ -> acc)
    tbl []
  |> List.sort (fun a b -> compare (List.hd a) (List.hd b))

let candidate_classes ?(sim_words = default_options.sim_words)
    ?(seed = default_options.seed) ntk =
  let sim_words = max 1 sim_words in
  let rng = Prng.create seed in
  let pis = Ntk.num_pis ntk in
  let sigmat =
    Array.init sim_words (fun _ ->
        Ntk.simulate_words_all ntk
          (Array.init pis (fun _ -> Prng.next_int64 rng)))
  in
  let reach = reachable ntk in
  let eligible v = reach.(v) in
  partition ~eligible ~sigmat (Ntk.num_vars ntk)

(* Lazy Tseitin encoding of node cones into the shared solver: one SAT
   variable per AIG variable, AND clauses added once, ever. Fanins are
   resolved through the merges proved so far ([resolve]), so the
   solver only ever grows by the {e reduced} logic — cones that
   collapse onto already-proved representatives share SAT variables
   and their proofs close by propagation instead of search. *)
type enc = {
  solver : Solver.t;
  satvar : int array; (* AIG var -> SAT var, -1 when not yet encoded *)
  resolve : Ntk.lit -> Ntk.lit; (* chase repr chains *)
  mutable encoded : int;
}

let sat_lit enc l =
  Lit.make enc.satvar.(Ntk.var_of_lit l) (not (Ntk.is_compl l))

let encode_var enc ntk v0 =
  let stack = ref [ v0 ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
      if enc.satvar.(v) >= 0 then stack := rest
      else if not (Ntk.is_and ntk v) then begin
        let sv = Solver.new_var enc.solver in
        enc.satvar.(v) <- sv;
        enc.encoded <- enc.encoded + 1;
        if Ntk.is_const_var v then Solver.add_clause enc.solver [ Lit.neg sv ];
        stack := rest
      end
      else begin
        let f0 = enc.resolve (Ntk.fanin0 ntk v)
        and f1 = enc.resolve (Ntk.fanin1 ntk v) in
        let w0 = Ntk.var_of_lit f0 and w1 = Ntk.var_of_lit f1 in
        let pending =
          (if enc.satvar.(w0) >= 0 then [] else [ w0 ])
          @ if enc.satvar.(w1) >= 0 then [] else [ w1 ]
        in
        if pending = [] then begin
          let sv = Solver.new_var enc.solver in
          enc.satvar.(v) <- sv;
          enc.encoded <- enc.encoded + 1;
          let la = sat_lit enc f0 and lb = sat_lit enc f1 in
          Solver.add_clause enc.solver [ Lit.neg sv; la ];
          Solver.add_clause enc.solver [ Lit.neg sv; lb ];
          Solver.add_clause enc.solver
            [ Lit.pos sv; Lit.negate la; Lit.negate lb ];
          stack := rest
        end
        else stack := pending @ !stack
      end
  done

type proof_outcome = Proved | Refuted of bool array | Skipped

(* One candidate pair: member [y] against representative [x], claiming
   [val y = val x xor c]. Two assumption-only solves look for the two
   ways they could differ — the assumption units drive propagation
   straight into both cones, which beats a selector-guarded miter (the
   ternary miter clauses propagate nothing until the search stumbles
   onto the cones; measured ~1.5x slower). No clauses are added per
   pair, so every learnt clause serves every later pair. *)
let prove_pair enc ntk ~deadline ~conflict_budget ~rng x y c =
  encode_var enc ntk y;
  if x <> 0 then encode_var enc ntk x;
  let solve assumptions =
    let conflict_budget =
      if conflict_budget > 0 then Some conflict_budget else None
    in
    Solver.solve ?conflict_budget ~assumptions ~deadline enc.solver
  in
  let cex () =
    let pis = Ntk.num_pis ntk in
    Array.init pis (fun i ->
        let sv = enc.satvar.(i + 1) in
        if sv >= 0 then Solver.value enc.solver sv else Prng.bool rng)
  in
  let ysv = enc.satvar.(y) in
  if x = 0 then begin
    (* y is a candidate constant: [val y = c] everywhere; a model with
       [y = not c] is the counterexample. *)
    match solve [ Lit.make ysv (not c) ] with
    | Solver.Unsat ->
      Solver.add_clause enc.solver [ Lit.make ysv c ];
      Proved
    | Solver.Sat -> Refuted (cex ())
    | Solver.Unknown -> Skipped
  end
  else begin
    let xsv = enc.satvar.(x) in
    (* differ with x = 1: y xor c = 0, i.e. y = c *)
    match solve [ Lit.pos xsv; Lit.make ysv c ] with
    | Solver.Sat -> Refuted (cex ())
    | Solver.Unknown -> Skipped
    | Solver.Unsat -> (
      (* differ with x = 0: y = not c *)
      match solve [ Lit.neg xsv; Lit.make ysv (not c) ] with
      | Solver.Sat -> Refuted (cex ())
      | Solver.Unknown -> Skipped
      | Solver.Unsat -> Proved)
  end

(* Pack up to 64 counterexample assignments into one word batch, bit j
   of PI i's word = cex j's value of PI i; unused bit lanes are filled
   with fresh random samples, so a sparse cex round still refines. *)
let pack_cexs rng pis cexs =
  let ws = Array.init pis (fun _ -> Prng.next_int64 rng) in
  List.iteri
    (fun j cex ->
      let mask = Int64.shift_left 1L j in
      for i = 0 to pis - 1 do
        ws.(i) <-
          (if cex.(i) then Int64.logor ws.(i) mask
           else Int64.logand ws.(i) (Int64.lognot mask))
      done)
    cexs;
  ws

let run ?(options = default_options) ntk =
  let t0 = Stp_util.Unix_time.now () in
  let deadline = Deadline.after options.timeout in
  let rng = Prng.create options.seed in
  let nvars = Ntk.num_vars ntk in
  let pis = Ntk.num_pis ntk in
  let ands_before = Ntk.count_live ntk in
  let depth_before = Ntk.depth ntk in
  let reach = reachable ntk in
  let merged = Array.make nvars false in
  let excluded = Array.make nvars false in
  let repr : Ntk.lit option array = Array.make nvars None in
  let rec resolve l =
    match repr.(Ntk.var_of_lit l) with
    | None -> l
    | Some r -> resolve (if Ntk.is_compl l then Ntk.lit_not r else r)
  in
  let enc =
    { solver = Solver.create ();
      satvar = Array.make nvars (-1);
      resolve;
      encoded = 0 }
  in
  let sat0 = Solver.stats enc.solver in
  (* pattern batches: simulated signatures so far + batches still to
     simulate (initial random ones, then one batch per cex round) *)
  let sigmat = ref [||] in
  let pending =
    ref
      (List.init
         (max 1 options.sim_words)
         (fun _ -> Array.init pis (fun _ -> Prng.next_int64 rng)))
  in
  let classes_initial = ref 0 in
  let candidates = ref 0 in
  let proved = ref 0 in
  let refuted = ref 0 in
  let skipped = ref 0 in
  let merges = ref 0 in
  let cex_total = ref 0 in
  let rounds = ref 0 in
  let continue_ = ref true in
  while
    !continue_ && !rounds < options.max_rounds
    && not (Deadline.expired deadline)
  do
    incr rounds;
    let round_arg = [ ("round", string_of_int !rounds) ] in
    (* 1. simulate the batches added since the last round *)
    Trace.span "sweep.sim" ~args:round_arg (fun () ->
        let fresh =
          List.map (fun ws -> Ntk.simulate_words_all ntk ws) !pending
        in
        pending := [];
        sigmat := Array.append !sigmat (Array.of_list fresh));
    (* 2. partition into candidate classes *)
    let classes =
      Trace.span "sweep.refine" ~args:round_arg (fun () ->
          let eligible v = reach.(v) && not merged.(v) && not excluded.(v) in
          partition ~eligible ~sigmat:!sigmat nvars)
    in
    let nclasses = List.length classes in
    if !rounds = 1 then classes_initial := nclasses;
    Profile.add Profile.Sweep_classes nclasses;
    (* 3. prove members against their representative *)
    let total_members =
      List.fold_left (fun acc cls -> acc + List.length cls - 1) 0 classes
    in
    let attempted = ref 0 in
    let cexs = ref [] in
    let ncex = ref 0 in
    Trace.span "sweep.prove" ~args:round_arg (fun () ->
        let stop = ref false in
        List.iter
          (fun cls ->
            match cls with
            | [] -> ()
            | (rep, _) :: members ->
              List.iter
                (fun (y, c) ->
                  if
                    (not !stop)
                    && not (Deadline.expired deadline)
                    && !ncex < options.max_cex_per_round
                  then begin
                    incr attempted;
                    match
                      prove_pair enc ntk ~deadline
                        ~conflict_budget:options.conflict_budget ~rng rep y c
                    with
                    | Proved ->
                      incr proved;
                      incr merges;
                      Profile.incr Profile.Sweep_pairs_proved;
                      Profile.incr Profile.Sweep_merges;
                      merged.(y) <- true;
                      repr.(y) <-
                        Some
                          (if rep = 0 then Ntk.lit_const c
                           else Ntk.lit_of_var rep c)
                    | Refuted cex ->
                      incr refuted;
                      incr ncex;
                      Profile.incr Profile.Sweep_pairs_refuted;
                      cexs := cex :: !cexs
                    | Skipped ->
                      incr skipped;
                      Profile.incr Profile.Sweep_pairs_skipped;
                      excluded.(y) <- true
                  end
                  else if !ncex >= options.max_cex_per_round then stop := true)
                members)
          classes;
        (* reclaim the round's retired miter clauses in one pass *)
        if !attempted > 0 then Solver.simplify enc.solver);
    candidates := !candidates + !attempted;
    (* members never attempted this round (deadline or cex cap): if the
       sweep is over, account them as skipped *)
    let unattempted = total_members - !attempted in
    if !cexs = [] then begin
      continue_ := false;
      if unattempted > 0 then begin
        skipped := !skipped + unattempted;
        candidates := !candidates + unattempted;
        Profile.add Profile.Sweep_pairs_skipped unattempted
      end
    end
    else begin
      (* 4. feed the counterexamples back as simulation patterns *)
      let cex_list = List.rev !cexs in
      cex_total := !cex_total + List.length cex_list;
      Profile.add Profile.Sweep_cex_patterns (List.length cex_list);
      pending := [ pack_cexs rng pis cex_list ];
      if Deadline.expired deadline && unattempted > 0 then begin
        skipped := !skipped + unattempted;
        candidates := !candidates + unattempted
      end
    end
  done;
  (* deadline hit before the loop re-entered: remaining work was
     already accounted above; now merge and verify *)
  let out = Ntk.extract ~repr:(fun v -> repr.(v)) ntk in
  let verified, verify_method = Pass.verify_equivalent ntk out in
  let sat1 = Solver.stats enc.solver in
  let sat =
    { sat1 with
      Solver.decisions = sat1.Solver.decisions - sat0.Solver.decisions;
      propagations = sat1.Solver.propagations - sat0.Solver.propagations;
      conflicts = sat1.Solver.conflicts - sat0.Solver.conflicts }
  in
  ( out,
    { ands_before;
      ands_after = Ntk.count_live out;
      depth_before;
      depth_after = Ntk.depth out;
      classes = !classes_initial;
      candidates = !candidates;
      pairs_proved = !proved;
      pairs_refuted = !refuted;
      pairs_skipped = !skipped;
      merges = !merges;
      rounds = !rounds;
      cex_patterns = !cex_total;
      sat_vars = enc.encoded;
      sat;
      verified;
      verify_method;
      elapsed = Stp_util.Unix_time.now () -. t0 } )

let pass ?(options = default_options) () =
  { Pass.name = "sweep";
    run =
      (fun ntk ->
        let out, r = run ~options ntk in
        ( out,
          { Pass.pass = "sweep";
            ands_before = r.ands_before;
            ands_after = r.ands_after;
            depth_before = r.depth_before;
            depth_after = r.depth_after;
            verified = r.verified;
            verify_method = r.verify_method;
            elapsed_s = r.elapsed;
            detail =
              [ ("classes", r.classes);
                ("candidates", r.candidates);
                ("pairs_proved", r.pairs_proved);
                ("pairs_refuted", r.pairs_refuted);
                ("pairs_skipped", r.pairs_skipped);
                ("merges", r.merges);
                ("rounds", r.rounds);
                ("cex_patterns", r.cex_patterns);
                ("sat_conflicts", r.sat.Solver.conflicts) ] } )) }
