(** Structural BLIF reader/writer.

    The supported subset is purely combinational single-model BLIF:
    [.model], [.inputs], [.outputs], [.names] with an on-set or
    off-set cover (don't-cares allowed), and [.end]. Latches,
    subcircuits and library gates raise [Failure] with a clear
    message. [.names] tables may appear in any order; each is
    converted to a truth table over its fanins (at most
    {!max_names_inputs} of them) and inserted through {!Ntk.add_lut},
    so a parsed network is always a strashed AIG.

    The writer emits one single-row [.names] per AND node (fanin
    complements encoded in the row), buffers or inverters for the
    outputs, and names signals [x1 …] (inputs), [n<var>] (nodes) and
    [po<i>] (outputs). Output order and functions round-trip; writer
    output re-parses to an identical network. *)

val max_names_inputs : int
(** Widest accepted [.names] table (15 inputs). *)

val of_string : string -> Ntk.t

val read_file : string -> Ntk.t

val to_string : ?model_name:string -> Ntk.t -> string

val write_file : ?model_name:string -> string -> Ntk.t -> unit
