(** AIGER reader/writer (binary [aig] and ASCII [aag], format 1.9
    combinational subset).

    Literals in the file map one-to-one onto {!Ntk.lit}s; the writer
    emits the "reencoded" layout (inputs [2, 4, …], AND variables
    consecutive and topologically ordered) that {!Ntk} maintains by
    construction, so [of_string] ∘ [to_binary] is the identity on
    strashed networks. Reading re-strashes, so a file containing
    duplicate or trivially reducible AND gates parses to the reduced
    network; outputs always keep their order and functions.

    Latches are not supported: sequential files raise [Failure] with a
    clear message, as do truncated or malformed files. Symbol tables
    and comment sections are skipped. *)

val of_string : string -> Ntk.t
(** Parses either format, keyed on the [aig]/[aag] magic. ASCII AND
    definitions may appear in any order; cyclic definitions fail. *)

val read_file : string -> Ntk.t

val to_ascii : Ntk.t -> string

val to_binary : Ntk.t -> string

val write_file : string -> Ntk.t -> unit
(** Chooses the format by extension: [.aag] writes ASCII, anything
    else binary. *)
