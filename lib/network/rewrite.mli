(** NPN-cached exact cut rewriting (DAG-aware, ABC-style).

    For every AND node, in topological order: enumerate its k-feasible
    cuts ({!Cuts}), NPN-canonicalise each cut function and obtain {e
    all} optimum chains for its class from {!Stp_synth.Npn_cache} —
    the paper's one-pass all-solutions output is what makes trying
    several structurally different optima per cut cheap — then measure
    for each candidate chain the gain: the node's MFFC (the logic that
    dies with it) minus the AND nodes the chain actually needs, shared
    structure found by hashing counting as free. The best strictly
    positive replacement is recorded and the network is rebuilt once
    at the end ({!Ntk.extract}).

    Every replacement chain is checked by simulation against the cut
    function before it is accepted, and the rebuilt network is
    verified against the input network — exhaustively up to 16 inputs,
    by random 64-bit vector simulation above.

    Synthesis runs per NPN class, not per node: distinct classes are
    collected first and fanned over a {!Stp_parallel.Pool} to warm the
    shared cache, so the apply pass is replay-only. Per-class work is
    bounded by [options.timeout] (a {!Stp_util.Deadline} inside the
    engines); classes that time out are simply never rewritten. *)

type options = {
  cut_size : int;  (** k of the cut enumeration, clamped to [2 .. 6] *)
  cut_limit : int; (** priority cuts kept per node *)
  timeout : float; (** per-class synthesis budget, seconds *)
  jobs : int;      (** domains for the class-synthesis phase *)
  basis : Stp_chain.Gate.code list option;
    (** gate library for the replacement chains; the default
        {!and_basis} makes every chain step exactly one AND node, so
        chain length = structural cost *)
  max_chains : int; (** optimum chains tried per cut *)
}

val and_basis : Stp_chain.Gate.code list
(** The eight AND-like gates [[1; 2; 4; 7; 8; 11; 13; 14]] — AND
    closed under input/output complementation, i.e. exactly what one
    AIG node plus edge complements realises. *)

val default_options : options
(** [cut_size = 4], [cut_limit = 8], [timeout = 5.0], [jobs = 1],
    [basis = Some and_basis], [max_chains = 8]. *)

type report = {
  ands_before : int;    (** live AND count of the input network *)
  ands_after : int;
  depth_before : int;
  depth_after : int;
  applied : int;        (** nodes whose best cut won (gain > 0) *)
  candidates : int;     (** (node, cut) pairs considered *)
  classes : int;        (** distinct NPN classes sent to synthesis *)
  cache : Stp_synth.Npn_cache.stats;
  verified : bool;      (** input and output networks agree *)
  verify_method : string; (** ["exhaustive"] or ["random:<rounds>"] *)
  elapsed : float;
}

val gain : report -> int
(** [ands_before - ands_after]. *)

val run :
  ?options:options -> ?cache:Stp_synth.Npn_cache.t -> Ntk.t -> Ntk.t * report
(** Rewrites a copy (the input network itself is only extended with
    scratch nodes, never functionally changed; re-{!Ntk.extract} it if
    the extra capacity matters). Pass [cache] to carry solved classes
    across benchmarks of one run — it must only ever be used with one
    [basis]. *)

val verify_equivalent : Ntk.t -> Ntk.t -> bool * string
(** The final check used by {!run} — an alias of
    {!Pass.verify_equivalent}, kept here for the CLI and tests:
    exhaustive truth-table comparison when [num_pis <= 16], otherwise
    256 rounds of 64-bit random-vector simulation (seeded, so
    deterministic). Networks must agree on input and output counts. *)

val pass : ?options:options -> ?cache:Stp_synth.Npn_cache.t -> unit -> Pass.t
(** The rewriter as a pipeline pass named ["rewrite"]; stats carry
    [applied]/[candidates]/[classes]/[cache_hits]/[cache_misses] in
    [detail]. Register it with {!Pass.register} to make it reachable
    from a [--passes] spec. *)
