(** Composable network-optimization passes.

    A pass is a named transformation [Ntk.t -> Ntk.t * stats] that
    reports, through one shared record, what every pass must account
    for: AND count and depth before and after, wall time, and whether
    the output was verified equivalent to the input. {!Rewrite.pass}
    and {!Sweep.pass} wrap the two optimization engines; [bin/rewrite]
    composes them from a [--passes sweep,rewrite,...] spec through the
    {!parse} / {!run_pipeline} surface, and any later pass (balancing,
    refactoring, ...) joins the same pipeline by registering itself.

    Verification is the pipeline's contract, not an option: a pass
    whose [verified] is false aborts the pipeline ({!run_pipeline}
    returns the stats collected so far and the {e input} of the failed
    pass), so a bad transformation can never flow downstream. *)

type stats = {
  pass : string;          (** name of the pass that produced this row *)
  ands_before : int;      (** live AND count of the pass input *)
  ands_after : int;
  depth_before : int;
  depth_after : int;
  verified : bool;        (** input and output networks agree *)
  verify_method : string; (** ["exhaustive"], ["random:<rounds>"], ... *)
  elapsed_s : float;
  detail : (string * int) list;
      (** pass-specific counters, e.g. rewrite's [applied] or sweep's
          [merges]; key order is preserved into the JSON report *)
}

type t = {
  name : string;
  run : Ntk.t -> Ntk.t * stats;
}

val gain : stats -> int
(** [ands_before - ands_after]. *)

val verify_equivalent : Ntk.t -> Ntk.t -> bool * string
(** Semantic equivalence of two networks with the same PI/PO counts:
    exhaustive truth-table comparison when [num_pis <= 16], otherwise
    256 rounds of seeded random 64-bit vector simulation. The shared
    final check of every pass ({!Rewrite.run}, {!Sweep.run}). *)

val measure :
  name:string ->
  (Ntk.t -> Ntk.t * (string * int) list) ->
  Ntk.t ->
  Ntk.t * stats
(** [measure ~name f ntk] runs [f], times it, fills the before/after
    counts and verifies the result with {!verify_equivalent} — the
    easy way to lift a plain transformation into a pass: [{ name; run
    = measure ~name f }]. Passes that already verify internally
    (rewrite, sweep) build their stats directly instead. *)

(** {1 Registry}

    A process-wide name -> pass table. [bin/rewrite] registers its
    flag-configured passes at startup; tests register throwaway
    passes. Re-registering a name replaces the pass. *)

val register : t -> unit

val find : string -> t option

val names : unit -> string list
(** Registered names, sorted. *)

val parse : string -> (t list, string) result
(** [parse "sweep,rewrite,sweep"] resolves a comma-separated pipeline
    spec against the registry; [Error msg] names the first unknown
    pass and lists the registered ones. The empty string is an empty
    pipeline. *)

val run_pipeline : t list -> Ntk.t -> Ntk.t * stats list
(** Runs the passes left to right, collecting one stats row each. On
    the first pass whose [verified] is false the pipeline stops and
    returns that pass's {e input} network together with the rows so
    far (the failed row included, so the caller can see and report
    it). *)
