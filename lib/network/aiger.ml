let fail fmt = Printf.ksprintf failwith fmt

(* --- tokenised line access over the raw file contents --- *)

type cursor = { s : string; mutable pos : int }

let read_line cur =
  if cur.pos >= String.length cur.s then fail "aiger: unexpected end of file";
  let j =
    match String.index_from_opt cur.s cur.pos '\n' with
    | Some j -> j
    | None -> String.length cur.s
  in
  let line = String.sub cur.s cur.pos (j - cur.pos) in
  cur.pos <- j + 1;
  line

let ints_of_line line =
  String.split_on_char ' ' line
  |> List.filter (fun t -> t <> "")
  |> List.map (fun t ->
         match int_of_string_opt t with
         | Some v when v >= 0 -> v
         | _ -> fail "aiger: expected a literal, got %S" t)

let int_of_line line =
  match ints_of_line line with
  | [ v ] -> v
  | _ -> fail "aiger: expected a single literal on line %S" line

type header = { m : int; i : int; l : int; o : int; a : int }

let read_header cur =
  let line = read_line cur in
  match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
  | magic :: rest when magic = "aig" || magic = "aag" ->
    let nums =
      List.map
        (fun t ->
          match int_of_string_opt t with
          | Some v when v >= 0 -> v
          | _ -> fail "aiger: bad header %S" line)
        rest
    in
    (match nums with
    | [ m; i; l; o; a ] ->
      if l > 0 then fail "aiger: latches are not supported (L = %d)" l;
      if m < i + l + a then fail "aiger: inconsistent header %S" line;
      (magic = "aag", { m; i; l; o; a })
    | _ -> fail "aiger: bad header %S" line)
  | _ -> fail "aiger: not an AIGER file (missing aig/aag magic)"

(* --- ASCII --- *)

let of_ascii cur h =
  let t = Ntk.create ~capacity:(h.m + 1) () in
  (* file variable -> our literal, resolved lazily so AND definitions
     may appear in any order *)
  let input_of = Hashtbl.create 97 in
  for _ = 1 to h.i do
    let l = int_of_line (read_line cur) in
    if l < 2 || l land 1 = 1 then fail "aiger: bad input literal %d" l;
    if Hashtbl.mem input_of (l / 2) then fail "aiger: duplicate input %d" l;
    Hashtbl.replace input_of (l / 2) (Ntk.add_pi t)
  done;
  let out_lits = List.init h.o (fun _ -> int_of_line (read_line cur)) in
  let defs = Hashtbl.create 97 in
  for _ = 1 to h.a do
    match ints_of_line (read_line cur) with
    | [ lhs; rhs0; rhs1 ] ->
      if lhs < 2 || lhs land 1 = 1 then fail "aiger: bad AND literal %d" lhs;
      if Hashtbl.mem input_of (lhs / 2) || Hashtbl.mem defs (lhs / 2) then
        fail "aiger: literal %d defined twice" lhs;
      Hashtbl.replace defs (lhs / 2) (rhs0, rhs1)
    | _ -> fail "aiger: malformed AND line"
  done;
  let memo = Hashtbl.create 97 in
  let visiting = Hashtbl.create 97 in
  let rec resolve_lit l =
    let base = resolve_var (l / 2) in
    if l land 1 = 1 then Ntk.lit_not base else base
  and resolve_var v =
    if v = 0 then Ntk.const_false
    else
      match Hashtbl.find_opt memo v with
      | Some m -> m
      | None -> (
        match Hashtbl.find_opt input_of v with
        | Some m -> m
        | None ->
          (match Hashtbl.find_opt defs v with
          | None -> fail "aiger: undefined literal %d" (2 * v)
          | Some (rhs0, rhs1) ->
            if Hashtbl.mem visiting v then
              fail "aiger: cyclic AND definition at literal %d" (2 * v);
            Hashtbl.replace visiting v ();
            let m = Ntk.add_and t (resolve_lit rhs0) (resolve_lit rhs1) in
            Hashtbl.remove visiting v;
            Hashtbl.replace memo v m;
            m))
  in
  (* Materialise every defined AND (ascending) so the parsed network
     keeps even nodes that no output reaches. *)
  Hashtbl.fold (fun v _ acc -> v :: acc) defs []
  |> List.sort compare
  |> List.iter (fun v -> ignore (resolve_var v));
  List.iter (fun l -> ignore (Ntk.add_po t (resolve_lit l))) out_lits;
  t

(* --- binary --- *)

let read_varint cur =
  let x = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if cur.pos >= String.length cur.s then fail "aiger: truncated delta";
    let b = Char.code cur.s.[cur.pos] in
    cur.pos <- cur.pos + 1;
    x := !x lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    continue := b land 0x80 <> 0
  done;
  !x

let of_binary cur h =
  let t = Ntk.create ~capacity:(h.m + 1) () in
  let lit_of = Array.make (h.m + 1) (-1) in
  for v = 1 to h.i do
    lit_of.(v) <- Ntk.add_pi t
  done;
  let out_lits = List.init h.o (fun _ -> int_of_line (read_line cur)) in
  let resolve l =
    let v = l / 2 in
    if v > h.m then fail "aiger: literal %d out of range" l;
    let base = if v = 0 then Ntk.const_false else lit_of.(v) in
    if base < 0 then fail "aiger: undefined literal %d" l;
    if l land 1 = 1 then Ntk.lit_not base else base
  in
  for k = 0 to h.a - 1 do
    let lhs = 2 * (h.i + h.l + k + 1) in
    let d0 = read_varint cur in
    let d1 = read_varint cur in
    let rhs0 = lhs - d0 in
    let rhs1 = rhs0 - d1 in
    if d0 <= 0 || rhs1 < 0 then fail "aiger: bad deltas for literal %d" lhs;
    lit_of.(lhs / 2) <- Ntk.add_and t (resolve rhs0) (resolve rhs1)
  done;
  List.iter (fun l -> ignore (Ntk.add_po t (resolve l))) out_lits;
  t

let of_string s =
  let cur = { s; pos = 0 } in
  let ascii, h = read_header cur in
  if ascii then of_ascii cur h else of_binary cur h

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

(* --- writers --- *)

let header_string magic t =
  Printf.sprintf "%s %d %d 0 %d %d\n" magic
    (Ntk.num_pis t + Ntk.num_ands t)
    (Ntk.num_pis t) (Ntk.num_pos t) (Ntk.num_ands t)

let to_ascii t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (header_string "aag" t);
  for v = 1 to Ntk.num_pis t do
    Buffer.add_string buf (Printf.sprintf "%d\n" (2 * v))
  done;
  Array.iter
    (fun l -> Buffer.add_string buf (Printf.sprintf "%d\n" l))
    (Ntk.outputs t);
  Ntk.iter_ands t (fun v ->
      (* rhs0 >= rhs1, matching the binary writer's convention *)
      Buffer.add_string buf
        (Printf.sprintf "%d %d %d\n" (2 * v) (Ntk.fanin1 t v) (Ntk.fanin0 t v)));
  Buffer.contents buf

let rec put_varint buf x =
  if x < 0x80 then Buffer.add_char buf (Char.chr x)
  else begin
    Buffer.add_char buf (Char.chr (0x80 lor (x land 0x7f)));
    put_varint buf (x lsr 7)
  end

let to_binary t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (header_string "aig" t);
  Array.iter
    (fun l -> Buffer.add_string buf (Printf.sprintf "%d\n" l))
    (Ntk.outputs t);
  Ntk.iter_ands t (fun v ->
      let lhs = 2 * v in
      let rhs0 = Ntk.fanin1 t v and rhs1 = Ntk.fanin0 t v in
      put_varint buf (lhs - rhs0);
      put_varint buf (rhs0 - rhs1));
  Buffer.contents buf

let write_file path t =
  let data =
    if Filename.check_suffix path ".aag" then to_ascii t else to_binary t
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data)
