let fail fmt = Printf.ksprintf failwith fmt

(* --- buffered single-pass byte source ---

   One abstraction serves both in-memory strings and channels: a
   window of bytes plus a refill callback. [read_file] decodes
   straight out of a fixed 256 KiB window instead of materialising the
   whole file, so a hundred-thousand-node generated netlist costs the
   window plus the network being built, not 2x the file size. *)

type source = {
  mutable buf : Bytes.t;
  mutable pos : int; (* next unread byte in [buf] *)
  mutable len : int; (* valid bytes in [buf] *)
  mutable base : int; (* file offset of buf.[0], for error messages *)
  refill : Bytes.t -> int -> int -> int;
    (* [refill buf off max] reads up to [max] bytes at [off]; 0 at EOF *)
}

let source_of_string s =
  { buf = Bytes.unsafe_of_string s;
    pos = 0;
    len = String.length s;
    base = 0;
    refill = (fun _ _ _ -> 0) }

let source_of_channel ?(chunk = 256 * 1024) ic =
  { buf = Bytes.create chunk; pos = 0; len = 0; base = 0; refill = input ic }

(* Slide the unread tail to the front and top the buffer up; [false]
   when the source is exhausted. *)
let refill_source src =
  if src.pos > 0 then begin
    let tail = src.len - src.pos in
    if tail > 0 then Bytes.blit src.buf src.pos src.buf 0 tail;
    src.base <- src.base + src.pos;
    src.pos <- 0;
    src.len <- tail
  end;
  if src.len >= Bytes.length src.buf then true
  else begin
    let n = src.refill src.buf src.len (Bytes.length src.buf - src.len) in
    src.len <- src.len + n;
    n > 0
  end

let read_byte src =
  if src.pos < src.len then begin
    let b = Char.code (Bytes.unsafe_get src.buf src.pos) in
    src.pos <- src.pos + 1;
    b
  end
  else if refill_source src then begin
    let b = Char.code (Bytes.get src.buf src.pos) in
    src.pos <- src.pos + 1;
    b
  end
  else -1

let offset src = src.base + src.pos

(* One text line, newline consumed and stripped. [where] names the
   section being read so truncation errors locate themselves. *)
let read_line src ~where =
  let rec scan acc =
    match Bytes.index_from_opt src.buf src.pos '\n' with
    | Some j when j < src.len ->
      let line = Bytes.sub_string src.buf src.pos (j - src.pos) in
      src.pos <- j + 1;
      (match acc with [] -> line | _ -> String.concat "" (List.rev (line :: acc)))
    | _ ->
      let part = Bytes.sub_string src.buf src.pos (src.len - src.pos) in
      src.pos <- src.len;
      if refill_source src then scan (part :: acc)
      else if part = "" && acc = [] then
        fail "aiger: unexpected end of file in %s (offset %d)" where
          (offset src)
      else String.concat "" (List.rev (part :: acc))
  in
  scan []

let ints_of_line ~where line =
  String.split_on_char ' ' line
  |> List.filter (fun t -> t <> "")
  |> List.map (fun t ->
         match int_of_string_opt t with
         | Some v when v >= 0 -> v
         | _ -> fail "aiger: expected a literal in %s, got %S" where t)

let int_of_line ~where line =
  match ints_of_line ~where line with
  | [ v ] -> v
  | _ -> fail "aiger: expected a single literal in %s, got %S" where line

type header = { m : int; i : int; l : int; o : int; a : int }

let read_header src =
  let line = read_line src ~where:"header" in
  match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
  | magic :: rest when magic = "aig" || magic = "aag" ->
    let nums =
      List.map
        (fun t ->
          match int_of_string_opt t with
          | Some v when v >= 0 -> v
          | _ -> fail "aiger: bad header %S" line)
        rest
    in
    (match nums with
    | [ m; i; l; o; a ] ->
      if l > 0 then fail "aiger: latches are not supported (L = %d)" l;
      if m < i + l + a then fail "aiger: inconsistent header %S" line;
      (magic = "aag", { m; i; l; o; a })
    | _ -> fail "aiger: bad header %S" line)
  | _ -> fail "aiger: not an AIGER file (missing aig/aag magic)"

(* --- ASCII --- *)

let of_ascii src h =
  let t = Ntk.create ~capacity:(h.m + 1) () in
  (* file variable -> our literal, resolved out of order below so AND
     definitions may appear in any order *)
  let input_of = Hashtbl.create 97 in
  for k = 1 to h.i do
    let where = Printf.sprintf "input %d of %d" k h.i in
    let l = int_of_line ~where (read_line src ~where) in
    if l < 2 || l land 1 = 1 then fail "aiger: bad literal %d at %s" l where;
    if Hashtbl.mem input_of (l / 2) then fail "aiger: duplicate input %d" l;
    Hashtbl.replace input_of (l / 2) (Ntk.add_pi t)
  done;
  let out_lits =
    List.init h.o (fun k ->
        let where = Printf.sprintf "output %d of %d" (k + 1) h.o in
        int_of_line ~where (read_line src ~where))
  in
  let defs = Hashtbl.create 97 in
  for k = 1 to h.a do
    let where = Printf.sprintf "AND %d of %d" k h.a in
    match ints_of_line ~where (read_line src ~where) with
    | [ lhs; rhs0; rhs1 ] ->
      if lhs < 2 || lhs land 1 = 1 then
        fail "aiger: bad AND literal %d at %s" lhs where;
      if Hashtbl.mem input_of (lhs / 2) || Hashtbl.mem defs (lhs / 2) then
        fail "aiger: literal %d defined twice (%s)" lhs where;
      Hashtbl.replace defs (lhs / 2) (rhs0, rhs1)
    | _ -> fail "aiger: malformed AND line at %s" where
  done;
  let memo = Hashtbl.create 97 in
  let ready v =
    v = 0 || Hashtbl.mem memo v || Hashtbl.mem input_of v
  in
  let lit_of l =
    let v = l / 2 in
    let base =
      if v = 0 then Ntk.const_false
      else
        match Hashtbl.find_opt memo v with
        | Some m -> m
        | None -> (
          match Hashtbl.find_opt input_of v with
          | Some m -> m
          | None -> fail "aiger: undefined literal %d" (2 * v))
    in
    if l land 1 = 1 then Ntk.lit_not base else base
  in
  (* Explicit-stack resolution: generated netlists reach hundreds of
     thousands of levels of AND nesting, far beyond the OCaml call
     stack. A variable is deferred at most once ([visiting]); meeting
     a deferred variable again before its fanins completed is a cycle. *)
  let visiting = Hashtbl.create 97 in
  let resolve_var root =
    let stack = ref [ root ] in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | v :: rest ->
        if ready v then stack := rest
        else (
          match Hashtbl.find_opt defs v with
          | None -> fail "aiger: undefined literal %d" (2 * v)
          | Some (rhs0, rhs1) ->
            let v0 = rhs0 / 2 and v1 = rhs1 / 2 in
            if ready v0 && ready v1 then begin
              Hashtbl.remove visiting v;
              Hashtbl.replace memo v (Ntk.add_and t (lit_of rhs0) (lit_of rhs1));
              stack := rest
            end
            else begin
              if Hashtbl.mem visiting v then
                fail "aiger: cyclic AND definition at literal %d" (2 * v);
              Hashtbl.replace visiting v ();
              let pending =
                List.filter (fun w -> not (ready w)) [ v0; v1 ]
              in
              stack := pending @ !stack
            end)
    done
  in
  (* Materialise every defined AND (ascending) so the parsed network
     keeps even nodes that no output reaches. *)
  Hashtbl.fold (fun v _ acc -> v :: acc) defs []
  |> List.sort compare
  |> List.iter resolve_var;
  List.iter (fun l -> ignore (Ntk.add_po t (lit_of l))) out_lits;
  t

(* --- binary --- *)

let read_varint src ~where =
  let x = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    let b = read_byte src in
    if b < 0 then fail "aiger: truncated delta at %s (offset %d)" where
        (offset src);
    x := !x lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    continue := b land 0x80 <> 0
  done;
  !x

let of_binary src h =
  let t = Ntk.create ~capacity:(h.m + 1) () in
  let lit_of = Array.make (h.m + 1) (-1) in
  for v = 1 to h.i do
    lit_of.(v) <- Ntk.add_pi t
  done;
  let out_lits =
    List.init h.o (fun k ->
        let where = Printf.sprintf "output %d of %d" (k + 1) h.o in
        int_of_line ~where (read_line src ~where))
  in
  let resolve ~where l =
    let v = l / 2 in
    if v > h.m then fail "aiger: literal %d out of range at %s" l where;
    let base = if v = 0 then Ntk.const_false else lit_of.(v) in
    if base < 0 then fail "aiger: undefined literal %d at %s" l where;
    if l land 1 = 1 then Ntk.lit_not base else base
  in
  for k = 0 to h.a - 1 do
    let where = Printf.sprintf "AND %d of %d" (k + 1) h.a in
    let lhs = 2 * (h.i + h.l + k + 1) in
    let d0 = read_varint src ~where in
    let d1 = read_varint src ~where in
    let rhs0 = lhs - d0 in
    let rhs1 = rhs0 - d1 in
    if d0 <= 0 || rhs1 < 0 then
      fail "aiger: bad deltas at %s (literal %d)" where lhs;
    lit_of.(lhs / 2) <- Ntk.add_and t (resolve ~where rhs0) (resolve ~where rhs1)
  done;
  List.iter
    (fun l -> ignore (Ntk.add_po t (resolve ~where:"output list" l)))
    out_lits;
  t

let of_source src =
  let ascii, h = read_header src in
  if ascii then of_ascii src h else of_binary src h

let of_string s = of_source (source_of_string s)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_source (source_of_channel ic))

(* --- writers --- *)

let header_string magic t =
  Printf.sprintf "%s %d %d 0 %d %d\n" magic
    (Ntk.num_pis t + Ntk.num_ands t)
    (Ntk.num_pis t) (Ntk.num_pos t) (Ntk.num_ands t)

let to_ascii t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (header_string "aag" t);
  for v = 1 to Ntk.num_pis t do
    Buffer.add_string buf (Printf.sprintf "%d\n" (2 * v))
  done;
  Array.iter
    (fun l -> Buffer.add_string buf (Printf.sprintf "%d\n" l))
    (Ntk.outputs t);
  Ntk.iter_ands t (fun v ->
      (* rhs0 >= rhs1, matching the binary writer's convention *)
      Buffer.add_string buf
        (Printf.sprintf "%d %d %d\n" (2 * v) (Ntk.fanin1 t v) (Ntk.fanin0 t v)));
  Buffer.contents buf

let rec put_varint buf x =
  if x < 0x80 then Buffer.add_char buf (Char.chr x)
  else begin
    Buffer.add_char buf (Char.chr (0x80 lor (x land 0x7f)));
    put_varint buf (x lsr 7)
  end

let to_binary t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (header_string "aig" t);
  Array.iter
    (fun l -> Buffer.add_string buf (Printf.sprintf "%d\n" l))
    (Ntk.outputs t);
  Ntk.iter_ands t (fun v ->
      let lhs = 2 * v in
      let rhs0 = Ntk.fanin1 t v and rhs1 = Ntk.fanin0 t v in
      put_varint buf (lhs - rhs0);
      put_varint buf (rhs0 - rhs1));
  Buffer.contents buf

let write_file path t =
  let data =
    if Filename.check_suffix path ".aag" then to_ascii t else to_binary t
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data)
