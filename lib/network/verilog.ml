let fail fmt = Printf.ksprintf failwith fmt

type token =
  | Id of string
  | Const of bool
  | LParen | RParen
  | Not | And | Xor | Or
  | Eq | Semi | Comma
  | Kw of string (* module, input, output, wire, assign, endmodule *)

let keywords = [ "module"; "input"; "output"; "wire"; "assign"; "endmodule" ]

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let is_id_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9') || c = '_'
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && s.[!i + 1] = '/' then begin
      while !i < n && s.[!i] <> '\n' do incr i done
    end
    else if c = '/' && !i + 1 < n && s.[!i + 1] = '*' then begin
      i := !i + 2;
      while !i + 1 < n && not (s.[!i] = '*' && s.[!i + 1] = '/') do incr i done;
      if !i + 1 >= n then fail "verilog: unterminated comment";
      i := !i + 2
    end
    else if c = '1' && !i + 3 < n && String.sub s !i 3 = "1'b" then begin
      (match s.[!i + 3] with
      | '0' -> toks := Const false :: !toks
      | '1' -> toks := Const true :: !toks
      | c -> fail "verilog: bad constant 1'b%c" c);
      i := !i + 4
    end
    else if is_id_char c && not (c >= '0' && c <= '9') then begin
      let j = ref !i in
      while !j < n && is_id_char s.[!j] do incr j done;
      let id = String.sub s !i (!j - !i) in
      i := !j;
      toks := (if List.mem id keywords then Kw id else Id id) :: !toks
    end
    else begin
      (match c with
      | '(' -> toks := LParen :: !toks
      | ')' -> toks := RParen :: !toks
      | '~' -> toks := Not :: !toks
      | '&' -> toks := And :: !toks
      | '^' -> toks := Xor :: !toks
      | '|' -> toks := Or :: !toks
      | '=' -> toks := Eq :: !toks
      | ';' -> toks := Semi :: !toks
      | ',' -> toks := Comma :: !toks
      | c -> fail "verilog: unexpected character %C" c);
      incr i
    end
  done;
  List.rev !toks

type expr =
  | EVar of string
  | EConst of bool
  | ENot of expr
  | EAnd of expr * expr
  | EXor of expr * expr
  | EOr of expr * expr

(* Recursive descent over a mutable token list: | < ^ < & < ~. *)
let parse_expr toks =
  let rest = ref toks in
  let peek () = match !rest with [] -> None | t :: _ -> Some t in
  let advance () = match !rest with [] -> fail "verilog: unexpected end" | _ :: t -> rest := t in
  let rec atom () =
    match peek () with
    | Some (Id x) -> advance (); EVar x
    | Some (Const b) -> advance (); EConst b
    | Some Not -> advance (); ENot (atom ())
    | Some LParen ->
      advance ();
      let e = or_expr () in
      (match peek () with
      | Some RParen -> advance (); e
      | _ -> fail "verilog: expected ')'")
    | _ -> fail "verilog: expected an operand"
  and and_expr () =
    let e = ref (atom ()) in
    let rec loop () =
      match peek () with
      | Some And -> advance (); e := EAnd (!e, atom ()); loop ()
      | _ -> ()
    in
    loop (); !e
  and xor_expr () =
    let e = ref (and_expr ()) in
    let rec loop () =
      match peek () with
      | Some Xor -> advance (); e := EXor (!e, and_expr ()); loop ()
      | _ -> ()
    in
    loop (); !e
  and or_expr () =
    let e = ref (xor_expr ()) in
    let rec loop () =
      match peek () with
      | Some Or -> advance (); e := EOr (!e, xor_expr ()); loop ()
      | _ -> ()
    in
    loop (); !e
  in
  let e = or_expr () in
  (e, !rest)

let of_string s =
  let toks = tokenize s in
  let inputs = ref [] and outs = ref [] in
  let assigns : (string, expr) Hashtbl.t = Hashtbl.create 97 in
  let assign_names = ref [] in
  (* statement-level scan *)
  let rec stmts = function
    | [] -> ()
    | Kw "module" :: rest ->
      (* skip to the closing ';' of the header *)
      let rec skip = function
        | Semi :: rest -> stmts rest
        | _ :: rest -> skip rest
        | [] -> fail "verilog: unterminated module header"
      in
      skip rest
    | Kw "endmodule" :: rest -> stmts rest
    | Kw (("input" | "output" | "wire") as kind) :: rest ->
      let rec decl acc = function
        | Id x :: rest -> decl (x :: acc) rest
        | Comma :: rest -> decl acc rest
        | Semi :: rest ->
          let names = List.rev acc in
          if kind = "input" then inputs := !inputs @ names
          else if kind = "output" then outs := !outs @ names;
          stmts rest
        | _ -> fail "verilog: malformed %s declaration" kind
      in
      decl [] rest
    | Kw "assign" :: Id lhs :: Eq :: rest ->
      let e, rest = parse_expr rest in
      (match rest with
      | Semi :: rest ->
        if Hashtbl.mem assigns lhs then fail "verilog: %s assigned twice" lhs;
        Hashtbl.replace assigns lhs e;
        assign_names := lhs :: !assign_names;
        stmts rest
      | _ -> fail "verilog: expected ';' after assign %s" lhs)
    | _ -> fail "verilog: unsupported construct (structural subset only)"
  in
  stmts toks;
  let t = Ntk.create () in
  let input_of = Hashtbl.create 97 in
  List.iter
    (fun x ->
      if Hashtbl.mem input_of x then fail "verilog: duplicate input %s" x;
      Hashtbl.replace input_of x (Ntk.add_pi t))
    !inputs;
  let memo = Hashtbl.create 97 in
  let visiting = Hashtbl.create 97 in
  let rec resolve name =
    match Hashtbl.find_opt input_of name with
    | Some l -> l
    | None -> (
      match Hashtbl.find_opt memo name with
      | Some l -> l
      | None ->
        (match Hashtbl.find_opt assigns name with
        | None -> fail "verilog: undefined signal %s" name
        | Some e ->
          if Hashtbl.mem visiting name then
            fail "verilog: combinational cycle through %s" name;
          Hashtbl.replace visiting name ();
          let l = build e in
          Hashtbl.remove visiting name;
          Hashtbl.replace memo name l;
          l))
  and build = function
    | EVar x -> resolve x
    | EConst b -> Ntk.lit_const b
    | ENot e -> Ntk.lit_not (build e)
    | EAnd (a, b) -> Ntk.add_and t (build a) (build b)
    | EXor (a, b) -> Ntk.add_xor t (build a) (build b)
    | EOr (a, b) -> Ntk.add_or t (build a) (build b)
  in
  List.iter (fun x -> ignore (resolve x)) (List.rev !assign_names);
  List.iter (fun x -> ignore (Ntk.add_po t (resolve x))) !outs;
  t

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
