(** SAT sweeping (fraiging): prove and merge equivalent nodes.

    The scenario of the authors' follow-up paper ("A Semi-Tensor
    Product based Circuit Simulation for SAT-sweeping"): on netlists
    far too large for cut rewriting alone, find nodes that compute the
    same function (up to complement), prove the equivalences, and
    collapse each class onto one representative.

    The pass runs in refinement rounds:

    + {b Simulate.} Word-parallel simulation ({!Ntk.simulate_words_all})
      over a growing pattern set — seeded random vectors first,
      counterexamples later — gives every node a signature.
    + {b Partition.} Nodes with equal signatures {e up to complement}
      (the signature is normalised by its first sample bit) form
      candidate equivalence classes; the constant node participates,
      so stuck-at nodes are candidates too. Simulation can only
      separate nodes that genuinely differ, so no true equivalence is
      ever lost to this step.
    + {b Prove.} Each member is checked against its class
      representative on {e one long-lived incremental}
      {!Stp_sat.Solver.t} shared by the whole sweep: node cones are
      Tseitin-encoded once, each pair costs only two
      assumption-driven [solve] calls (no per-pair clauses), and
      everything learnt carries over to every later pair. A [Sat]
      answer yields a counterexample that is fed back as a new
      simulation pattern for the next round; [Unknown] (per-proof
      conflict budget or the sweep deadline) skips the pair and is
      accounted in the report.

    Rounds continue until a round produces no counterexample, the
    round cap is hit, or the deadline expires. Proven merges are
    applied in one rebuild through {!Ntk.extract}'s substitution
    machinery (members always point at strictly older nodes, so
    substitution chains across rounds stay acyclic) and the result is
    re-verified against the input with {!Pass.verify_equivalent}. *)

type options = {
  sim_words : int;
      (** initial random 64-pattern simulation word batches (>= 1) *)
  max_rounds : int;     (** refinement-round cap *)
  conflict_budget : int;
      (** CDCL conflict cap per [solve] call; [0] means unlimited *)
  timeout : float;      (** whole-sweep wall budget in seconds *)
  max_cex_per_round : int;
      (** counterexamples harvested before a round re-simulates *)
  seed : int;           (** PRNG seed for patterns and cex padding *)
}

val default_options : options
(** [sim_words = 8], [max_rounds = 16], [conflict_budget = 2000],
    [timeout = 60.0], [max_cex_per_round = 64], [seed = 1]. *)

type report = {
  ands_before : int;      (** live AND count of the input network *)
  ands_after : int;
  depth_before : int;
  depth_after : int;
  classes : int;          (** candidate classes of the first partition *)
  candidates : int;       (** candidate pairs attempted (incl. skipped) *)
  pairs_proved : int;
  pairs_refuted : int;    (** pairs separated by a counterexample *)
  pairs_skipped : int;    (** pairs abandoned on budget or deadline *)
  merges : int;           (** nodes redirected to a representative *)
  rounds : int;           (** simulate-partition-prove rounds run *)
  cex_patterns : int;     (** counterexamples fed back into simulation *)
  sat_vars : int;         (** AIG nodes Tseitin-encoded into the solver *)
  sat : Stp_sat.Solver.stats;  (** the shared solver's final counters *)
  verified : bool;
  verify_method : string;
  elapsed : float;
}

val run : ?options:options -> Ntk.t -> Ntk.t * report
(** Sweeps a copy; the input network is never changed. *)

val candidate_classes :
  ?sim_words:int -> ?seed:int -> Ntk.t -> (int * bool) list list
(** The simulation-only seeding exposed for tests and analysis: the
    candidate classes of the first partition, each a list of [(var,
    phase)] with the representative first ([phase = false]) and
    [phase] meaning complement-of-representative. Classes are sorted
    by representative and members ascending; singleton classes are
    omitted. Two truly equivalent nodes always land in the same
    class. *)

val pass : ?options:options -> unit -> Pass.t
(** The sweep as a pipeline pass named ["sweep"]; [detail] carries
    [classes], [candidates], [pairs_proved], [pairs_refuted],
    [pairs_skipped], [merges], [rounds], [cex_patterns] and
    [sat_conflicts]. *)
