(** Reader for the structural Verilog subset that
    {!Stp_chain.Export.to_verilog} emits.

    Supported: one [module] with port, [input]/[output]/[wire]
    declarations (comma lists allowed), and [assign] statements whose
    right-hand sides use [~ & ^ |], parentheses, identifiers and the
    constants [1'b0]/[1'b1]. Line ([//]) and block comments are
    skipped. Anything else — [always], instances, vectors — raises
    [Failure]. Assignments may appear in any order; combinational
    cycles fail.

    Primary inputs appear in declaration order; primary outputs in
    [output]-declaration order. The result is a strashed {!Ntk} AIG,
    so [of_string (Export.to_verilog c)] simulates exactly like the
    chain [c]. *)

val of_string : string -> Ntk.t

val read_file : string -> Ntk.t
