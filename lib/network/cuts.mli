(** k-feasible priority cut enumeration with cut functions.

    A cut of node [v] is a set of {e leaf} variables such that every
    path from a primary input to [v] crosses a leaf; the cut function
    is [v]'s function expressed over its leaves — the truth table the
    rewriting pass hands to the exact-synthesis engines. Cuts are
    enumerated bottom-up: the cuts of an AND node are the pairwise
    merges of its fanins' cuts (unions of at most [k] leaves), plus
    the trivial cut [{v}]. Per node, dominated cuts (supersets of
    another cut) are dropped and at most [limit] non-trivial cuts are
    kept, smallest first — the classic priority-cut bound on the
    otherwise exponential cut space. *)

type cut = {
  leaves : int array; (** ascending variable indices *)
  tt : Stp_tt.Tt.t;   (** the node's function over [leaves], variable
                          [j] of [tt] reading [leaves.(j)] *)
}

val is_trivial : cut -> bool
(** The singleton cut [{v}] of the node itself. *)

val enumerate : k:int -> ?limit:int -> Ntk.t -> cut list array
(** [enumerate ~k t] returns, indexed by variable, each node's cut
    list (trivial cut last). [k] is clamped to [2 .. 6]; [limit]
    (default 8) bounds the non-trivial cuts kept per node. Constant
    and primary-input variables get their trivial cut only. *)
