module Tt = Stp_tt.Tt
module Vec = Stp_util.Vec

type lit = int

type t = {
  mutable pis : int;
  fan0 : int Vec.t; (* per variable; -1 for the constant and PIs *)
  fan1 : int Vec.t;
  pos : int Vec.t; (* output literals *)
  strash : (int * int, int) Hashtbl.t; (* ordered fanin pair -> var *)
}

let const_false = 0

let const_true = 1

let lit_of_var v c = (2 * v) + if c then 1 else 0

let var_of_lit l = l lsr 1

let is_compl l = l land 1 = 1

let lit_not l = l lxor 1

let lit_const b = if b then const_true else const_false

let create ?(capacity = 64) () =
  let fan0 = Vec.create ~capacity ~dummy:(-1) () in
  let fan1 = Vec.create ~capacity ~dummy:(-1) () in
  Vec.push fan0 (-1);
  Vec.push fan1 (-1);
  { pis = 0;
    fan0;
    fan1;
    pos = Vec.create ~dummy:0 ();
    strash = Hashtbl.create 257 }

let num_pis t = t.pis

let num_vars t = Vec.length t.fan0

let num_ands t = num_vars t - 1 - t.pis

let num_pos t = Vec.length t.pos

let is_const_var v = v = 0

let is_pi t v = v >= 1 && v <= t.pis

let is_and t v = v > t.pis && v < num_vars t

let check_lit t l =
  if l < 0 || var_of_lit l >= num_vars t then invalid_arg "Ntk: unknown literal"

let fanin0 t v =
  if not (is_and t v) then invalid_arg "Ntk.fanin0: not an AND variable";
  Vec.get t.fan0 v

let fanin1 t v =
  if not (is_and t v) then invalid_arg "Ntk.fanin1: not an AND variable";
  Vec.get t.fan1 v

let add_pi t =
  if num_ands t > 0 then
    invalid_arg "Ntk.add_pi: inputs must precede AND nodes";
  Vec.push t.fan0 (-1);
  Vec.push t.fan1 (-1);
  t.pis <- t.pis + 1;
  lit_of_var t.pis false

let add_and t a b =
  check_lit t a;
  check_lit t b;
  let a, b = if a <= b then (a, b) else (b, a) in
  if a = const_false then const_false
  else if a = const_true then b
  else if a = b then a
  else if a = lit_not b then const_false
  else
    match Hashtbl.find_opt t.strash (a, b) with
    | Some v -> lit_of_var v false
    | None ->
      let v = num_vars t in
      Vec.push t.fan0 a;
      Vec.push t.fan1 b;
      Hashtbl.replace t.strash (a, b) v;
      lit_of_var v false

let add_or t a b = lit_not (add_and t (lit_not a) (lit_not b))

let add_xor t a b =
  (* a ^ b = ~(~(a & ~b) & ~(~a & b)); strashing shares the halves. *)
  add_or t (add_and t a (lit_not b)) (add_and t (lit_not a) b)

let add_gate t g a b =
  match g with
  | 0 -> const_false
  | 1 -> lit_not (add_or t a b)
  | 2 -> add_and t (lit_not a) b
  | 3 -> lit_not a
  | 4 -> add_and t a (lit_not b)
  | 5 -> lit_not b
  | 6 -> add_xor t a b
  | 7 -> lit_not (add_and t a b)
  | 8 -> add_and t a b
  | 9 -> lit_not (add_xor t a b)
  | 10 -> b
  | 11 -> lit_not (add_and t a (lit_not b))
  | 12 -> a
  | 13 -> lit_not (add_and t (lit_not a) b)
  | 14 -> add_or t a b
  | 15 -> const_true
  | _ -> invalid_arg "Ntk.add_gate: bad gate code"

let add_lut t tt lits =
  if Array.length lits <> Tt.num_vars tt then invalid_arg "Ntk.add_lut: arity";
  Array.iter (check_lit t) lits;
  let tt, support = Tt.shrink_to_support tt in
  let lits = Array.of_list (List.map (fun i -> lits.(i)) support) in
  let memo = Hashtbl.create 17 in
  (* Shannon expansion over the highest live variable; the memo shares
     identical sub-cofactors within this insertion. *)
  let rec build tt =
    match Tt.is_const_of tt with
    | Some b -> lit_const b
    | None -> (
      match Hashtbl.find_opt memo tt with
      | Some l -> l
      | None ->
        let i = List.fold_left max 0 (Tt.support tt) in
        let f0 = Tt.cofactor tt i false and f1 = Tt.cofactor tt i true in
        let x = lits.(i) in
        let l =
          (* x ? f1 : f0 *)
          add_or t (add_and t x (build f1)) (add_and t (lit_not x) (build f0))
        in
        Hashtbl.replace memo tt l;
        l)
  in
  build tt

let lit_of_chain t (c : Stp_chain.Chain.t) leaves =
  if Array.length leaves <> c.Stp_chain.Chain.n then
    invalid_arg "Ntk.lit_of_chain: leaf count";
  let n = c.Stp_chain.Chain.n in
  let sigs = Array.make (n + Array.length c.Stp_chain.Chain.steps) const_false in
  Array.blit leaves 0 sigs 0 n;
  Array.iteri
    (fun i (s : Stp_chain.Chain.step) ->
      sigs.(n + i) <- add_gate t s.gate sigs.(s.fanin1) sigs.(s.fanin2))
    c.Stp_chain.Chain.steps;
  let out = sigs.(c.Stp_chain.Chain.output) in
  if c.Stp_chain.Chain.output_negated then lit_not out else out

let add_po t l =
  check_lit t l;
  Vec.push t.pos l;
  Vec.length t.pos - 1

let set_po t i l =
  check_lit t l;
  Vec.set t.pos i l

let outputs t = Vec.to_array t.pos

let iter_ands t f =
  for v = t.pis + 1 to num_vars t - 1 do
    f v
  done

let refcounts t =
  let refs = Array.make (num_vars t) 0 in
  iter_ands t (fun v ->
      refs.(var_of_lit (Vec.get t.fan0 v)) <- refs.(var_of_lit (Vec.get t.fan0 v)) + 1;
      refs.(var_of_lit (Vec.get t.fan1 v)) <- refs.(var_of_lit (Vec.get t.fan1 v)) + 1);
  Vec.iter (fun l -> refs.(var_of_lit l) <- refs.(var_of_lit l) + 1) t.pos;
  refs

let count_live t =
  let seen = Array.make (num_vars t) false in
  let count = ref 0 in
  let rec visit v =
    if (not seen.(v)) && is_and t v then begin
      seen.(v) <- true;
      incr count;
      visit (var_of_lit (Vec.get t.fan0 v));
      visit (var_of_lit (Vec.get t.fan1 v))
    end
  in
  Vec.iter (fun l -> visit (var_of_lit l)) t.pos;
  !count

let levels t =
  let lv = Array.make (num_vars t) 0 in
  iter_ands t (fun v ->
      lv.(v) <-
        1
        + max
            lv.(var_of_lit (Vec.get t.fan0 v))
            lv.(var_of_lit (Vec.get t.fan1 v)));
  lv

let depth t =
  let lv = levels t in
  Vec.fold_left (fun acc l -> max acc lv.(var_of_lit l)) 0 t.pos

let simulate t =
  if t.pis > Tt.max_vars then invalid_arg "Ntk.simulate: too many inputs";
  let n = max t.pis 1 in
  let tts = Array.make (num_vars t) (Tt.zero n) in
  for i = 1 to t.pis do
    tts.(i) <- Tt.var n (i - 1)
  done;
  iter_ands t (fun v ->
      let f l =
        let x = tts.(var_of_lit l) in
        if is_compl l then Tt.bnot x else x
      in
      tts.(v) <- Tt.band (f (Vec.get t.fan0 v)) (f (Vec.get t.fan1 v)));
  Array.map
    (fun l ->
      let x = tts.(var_of_lit l) in
      if is_compl l then Tt.bnot x else x)
    (outputs t)

let simulate_words_all t ws =
  if Array.length ws <> t.pis then invalid_arg "Ntk.simulate_words_all";
  let sigs = Array.make (num_vars t) 0L in
  Array.blit ws 0 sigs 1 t.pis;
  iter_ands t (fun v ->
      let f l =
        let x = sigs.(var_of_lit l) in
        if is_compl l then Int64.lognot x else x
      in
      sigs.(v) <- Int64.logand (f (Vec.get t.fan0 v)) (f (Vec.get t.fan1 v)));
  sigs

let simulate_words t ws =
  if Array.length ws <> t.pis then invalid_arg "Ntk.simulate_words";
  let sigs = simulate_words_all t ws in
  Array.map
    (fun l ->
      let x = sigs.(var_of_lit l) in
      if is_compl l then Int64.lognot x else x)
    (outputs t)

let extract ?(repr = fun _ -> None) src =
  let dst = create ~capacity:(num_vars src) () in
  for _ = 1 to src.pis do
    ignore (add_pi dst)
  done;
  let memo = Array.make (num_vars src) (-1) in
  let visiting = Array.make (num_vars src) false in
  let rec resolve_lit l =
    let m = resolve_var (var_of_lit l) in
    if is_compl l then lit_not m else m
  and resolve_var v =
    if memo.(v) >= 0 then memo.(v)
    else begin
      if visiting.(v) then invalid_arg "Ntk.extract: substitution cycle";
      visiting.(v) <- true;
      let m =
        match repr v with
        | Some l when l <> lit_of_var v false -> resolve_lit l
        | _ ->
          if is_const_var v then const_false
          else if is_pi src v then lit_of_var v false
          else
            add_and dst
              (resolve_lit (Vec.get src.fan0 v))
              (resolve_lit (Vec.get src.fan1 v))
      in
      visiting.(v) <- false;
      memo.(v) <- m;
      m
    end
  in
  Vec.iter (fun l -> ignore (add_po dst (resolve_lit l))) src.pos;
  dst

let pp fmt t =
  Format.fprintf fmt "@[<v>aig: %d inputs, %d ands, %d outputs@," t.pis
    (num_ands t) (num_pos t);
  let pp_lit fmt l =
    Format.fprintf fmt "%s%d" (if is_compl l then "~" else "") (var_of_lit l)
  in
  iter_ands t (fun v ->
      Format.fprintf fmt "%d = %a & %a@," v pp_lit (Vec.get t.fan0 v) pp_lit
        (Vec.get t.fan1 v));
  Vec.iter (fun l -> Format.fprintf fmt "po %a@," pp_lit l) t.pos;
  Format.fprintf fmt "@]"
