(** The sixteen 2-input Boolean gates (2-LUTs).

    A gate is identified by its 4-bit truth-table code: bit [2*a + b] is
    the output on first operand [a] and second operand [b] — the same
    convention as {!Stp_tt.Tt.apply2} and
    {!Stp_matrix.Structural.of_gate_code}. *)

type code = int
(** An integer in [0, 15]. *)

val eval : code -> bool -> bool -> bool
(** [eval g a b] applies the gate. *)

val name : code -> string
(** Conventional name, e.g. [8 -> "AND"], [6 -> "XOR"], [13 -> "LE"]
    (b implies a reads "a <= b"...); see implementation for the table. *)

val of_name : string -> code
(** Inverse of {!name} (case-insensitive).
    @raise Not_found for unknown names. *)

val tt : code -> Stp_tt.Tt.t
(** The gate as a 2-variable truth table. *)

val structural : code -> Stp_matrix.Matrix.t
(** The gate's STP structural matrix (2x4). *)

val is_normal : code -> bool
(** [phi(0,0) = 0] (Knuth's "normal" functions). *)

val depends_on_first : code -> bool
val depends_on_second : code -> bool

val is_nontrivial : code -> bool
(** Depends on both operands: the ten gates a size-optimal chain can
    use. *)

val nontrivial : code list
(** The ten nontrivial codes, ascending. *)

val all : code list
(** All sixteen codes. *)

val swap_operands : code -> code
(** [swap_operands g] is the gate [g'] with [g' a b = g b a]. *)

val negate_first : code -> code
(** [negate_first g] is [g'] with [g' a b = g (not a) b]. *)

val negate_second : code -> code

val negate_output : code -> code

val is_symmetric : code -> bool
(** [eval g a b = eval g b a] for all operands. *)
