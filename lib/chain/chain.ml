type step = { fanin1 : int; fanin2 : int; gate : Gate.code }

type t = { n : int; steps : step array; output : int; output_negated : bool }

let make ~n ~steps ~output ?(output_negated = false) () =
  if n < 0 then invalid_arg "Chain.make: negative arity";
  let steps = Array.of_list steps in
  Array.iteri
    (fun i s ->
      let idx = n + i in
      if s.fanin1 < 0 || s.fanin1 >= idx then invalid_arg "Chain.make: fanin1";
      if s.fanin2 < 0 || s.fanin2 >= idx then invalid_arg "Chain.make: fanin2";
      if s.fanin1 = s.fanin2 then invalid_arg "Chain.make: equal fanins";
      if s.gate < 0 || s.gate > 15 then invalid_arg "Chain.make: gate code")
    steps;
  if output < 0 || output >= n + Array.length steps then
    invalid_arg "Chain.make: output";
  { n; steps; output; output_negated }

let size c = Array.length c.steps

let depth c =
  let d = Array.make (c.n + size c) 0 in
  Array.iteri
    (fun i s -> d.(c.n + i) <- 1 + max d.(s.fanin1) d.(s.fanin2))
    c.steps;
  d.(c.output)

let simulate_signals c =
  let total = c.n + size c in
  let sigs = Array.make total (Stp_tt.Tt.zero (max c.n 1)) in
  let n = max c.n 1 in
  for i = 0 to c.n - 1 do
    sigs.(i) <- Stp_tt.Tt.var n i
  done;
  Array.iteri
    (fun i s ->
      sigs.(c.n + i) <- Stp_tt.Tt.apply2 s.gate sigs.(s.fanin1) sigs.(s.fanin2))
    c.steps;
  sigs

let simulate c =
  let sigs = simulate_signals c in
  let f = sigs.(c.output) in
  if c.output_negated then Stp_tt.Tt.bnot f else f

let equal a b =
  a.n = b.n && a.steps = b.steps && a.output = b.output
  && a.output_negated = b.output_negated

let normalise_fanin_order c =
  let steps =
    Array.map
      (fun s ->
        if s.fanin1 <= s.fanin2 then s
        else
          { fanin1 = s.fanin2; fanin2 = s.fanin1; gate = Gate.swap_operands s.gate })
      c.steps
  in
  { c with steps }

let apply_npn c (tr : Stp_tt.Npn.transform) =
  if Array.length tr.perm <> c.n then invalid_arg "Chain.apply_npn";
  (* Npn.apply negates inputs (mask), then permutes (variable i of the
     result reads variable perm(i) of the original), then negates the
     output.  On the chain side:
     - permutation: old input j must be read from new input perm⁻¹(j);
     - negation of old input j: absorb into the gates reading it;
     - output negation: flip the output flag. *)
  let perm_inv = Array.make c.n 0 in
  Array.iteri (fun i p -> perm_inv.(p) <- i) tr.perm;
  let map_fanin j = if j < c.n then perm_inv.(j) else j in
  let negated j = j < c.n && (tr.input_neg lsr j) land 1 = 1 in
  let steps =
    Array.map
      (fun s ->
        let gate = if negated s.fanin1 then Gate.negate_first s.gate else s.gate in
        let gate = if negated s.fanin2 then Gate.negate_second gate else gate in
        { fanin1 = map_fanin s.fanin1; fanin2 = map_fanin s.fanin2; gate })
      c.steps
  in
  let output_negated =
    (* If the output points directly at a negated input, the complement
       must fold into the flag as well. *)
    let base = c.output_negated <> tr.output_neg in
    if negated c.output then not base else base
  in
  { n = c.n; steps; output = map_fanin c.output; output_negated }

let pp_signal n fmt j =
  if j < n then Format.fprintf fmt "x%d" (j + 1)
  else Format.fprintf fmt "x%d" (j + 1)

let pp fmt c =
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun i s ->
      Format.fprintf fmt "x%d = %s(%a, %a)@," (c.n + i + 1) (Gate.name s.gate)
        (pp_signal c.n) s.fanin1 (pp_signal c.n) s.fanin2)
    c.steps;
  Format.fprintf fmt "f = %s%a@]"
    (if c.output_negated then "!" else "")
    (pp_signal c.n) c.output

let pp_compact fmt c =
  Array.iteri
    (fun i s ->
      Format.fprintf fmt "x%d=%x(x%d,x%d); " (c.n + i + 1) s.gate
        (s.fanin1 + 1) (s.fanin2 + 1))
    c.steps;
  Format.fprintf fmt "f=%sx%d"
    (if c.output_negated then "!" else "")
    (c.output + 1)
