(** Boolean chains (Knuth, TAOCP 4A; Section II-B of the paper).

    A chain over [n] inputs is a sequence of 2-input gate steps
    [x_{n+1}, …, x_{n+r}], each reading two strictly earlier signals.
    Signals are indexed from 0: indices [0 .. n-1] are the primary
    inputs, index [n + i] is step [i]. The (single) output points at a
    signal, possibly complemented. *)

type step = {
  fanin1 : int;
  fanin2 : int;
  gate : Gate.code; (** output bit [2*v1 + v2] for fanin values (v1, v2) *)
}

type t = private {
  n : int;
  steps : step array;
  output : int;
  output_negated : bool;
}

val make :
  n:int -> steps:step list -> output:int -> ?output_negated:bool -> unit -> t
(** Builds and validates a chain: every step's fanins must be strictly
    smaller signal indices and distinct from each other; the output must
    be a valid signal index.
    @raise Invalid_argument on malformed chains. *)

val size : t -> int
(** Number of steps. *)

val depth : t -> int
(** Longest input-to-output path, in gates (0 when the output is an
    input). *)

val simulate : t -> Stp_tt.Tt.t
(** The function computed at the output, over [n] variables. *)

val simulate_signals : t -> Stp_tt.Tt.t array
(** The functions of all [n + size] signals. *)

val equal : t -> t -> bool
(** Structural equality. *)

val normalise_fanin_order : t -> t
(** Rewrites every step so that [fanin1 < fanin2], adjusting gate codes
    with {!Gate.swap_operands}; the simulated function is unchanged. The
    result is a canonical structural form used for de-duplicating
    solution sets. *)

val apply_npn : t -> Stp_tt.Npn.transform -> t
(** [apply_npn c tr] is a chain of identical size and shape computing
    [Npn.apply (simulate c) tr]: input negations and the output negation
    are absorbed into gate codes, input permutation relabels fanins. *)

val pp : Format.formatter -> t -> unit
(** Prints steps as e.g. [x5 = AND(x1, x2)] followed by the output
    binding, 1-indexed like the paper. *)

val pp_compact : Format.formatter -> t -> unit
(** One-line form [x5=8(x1,x2); x6=...; f=x6] with hexadecimal gate
    codes, like the paper's Example 7. *)
