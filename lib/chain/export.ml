let signal_name n j = if j < n then Printf.sprintf "x%d" (j + 1) else Printf.sprintf "w%d" (j + 1)

(* A 2-input gate as a Verilog expression over operand strings. *)
let verilog_expr gate a b =
  match gate with
  | 0 -> "1'b0"
  | 1 -> Printf.sprintf "~(%s | %s)" a b
  | 2 -> Printf.sprintf "~%s & %s" a b
  | 3 -> Printf.sprintf "~%s" a
  | 4 -> Printf.sprintf "%s & ~%s" a b
  | 5 -> Printf.sprintf "~%s" b
  | 6 -> Printf.sprintf "%s ^ %s" a b
  | 7 -> Printf.sprintf "~(%s & %s)" a b
  | 8 -> Printf.sprintf "%s & %s" a b
  | 9 -> Printf.sprintf "~(%s ^ %s)" a b
  | 10 -> b
  | 11 -> Printf.sprintf "~%s | %s" a b
  | 12 -> a
  | 13 -> Printf.sprintf "%s | ~%s" a b
  | 14 -> Printf.sprintf "%s | %s" a b
  | 15 -> "1'b1"
  | _ -> invalid_arg "Export.verilog_expr"

let to_verilog ?(module_name = "chain") (c : Chain.t) =
  let buf = Buffer.create 256 in
  let n = c.Chain.n in
  let inputs = List.init n (fun i -> signal_name n i) in
  Buffer.add_string buf
    (Printf.sprintf "module %s(%s, f);\n" module_name (String.concat ", " inputs));
  List.iter (fun x -> Buffer.add_string buf (Printf.sprintf "  input %s;\n" x)) inputs;
  Buffer.add_string buf "  output f;\n";
  Array.iteri
    (fun i _ ->
      Buffer.add_string buf (Printf.sprintf "  wire %s;\n" (signal_name n (n + i))))
    c.Chain.steps;
  Array.iteri
    (fun i (s : Chain.step) ->
      Buffer.add_string buf
        (Printf.sprintf "  assign %s = %s;\n"
           (signal_name n (n + i))
           (verilog_expr s.gate (signal_name n s.fanin1) (signal_name n s.fanin2))))
    c.Chain.steps;
  Buffer.add_string buf
    (Printf.sprintf "  assign f = %s%s;\n"
       (if c.Chain.output_negated then "~" else "")
       (signal_name n c.Chain.output));
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let to_blif ?(model_name = "chain") (c : Chain.t) =
  let buf = Buffer.create 256 in
  let n = c.Chain.n in
  Buffer.add_string buf (Printf.sprintf ".model %s\n" model_name);
  Buffer.add_string buf ".inputs";
  for i = 0 to n - 1 do
    Buffer.add_string buf (" " ^ signal_name n i)
  done;
  Buffer.add_string buf "\n.outputs f\n";
  Array.iteri
    (fun i (s : Chain.step) ->
      Buffer.add_string buf
        (Printf.sprintf ".names %s %s %s\n" (signal_name n s.fanin1)
           (signal_name n s.fanin2)
           (signal_name n (n + i)));
      (* one row per ON-set entry of the gate; gate bit (2a+b) *)
      for a = 0 to 1 do
        for b = 0 to 1 do
          if (s.gate lsr ((2 * a) + b)) land 1 = 1 then
            Buffer.add_string buf (Printf.sprintf "%d%d 1\n" a b)
        done
      done)
    c.Chain.steps;
  Buffer.add_string buf
    (Printf.sprintf ".names %s f\n%s 1\n"
       (signal_name n c.Chain.output)
       (if c.Chain.output_negated then "0" else "1"));
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let to_dot (c : Chain.t) =
  let buf = Buffer.create 256 in
  let n = c.Chain.n in
  Buffer.add_string buf "digraph chain {\n  rankdir=BT;\n";
  for i = 0 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  %s [shape=circle];\n" (signal_name n i))
  done;
  Array.iteri
    (fun i (s : Chain.step) ->
      let name = signal_name n (n + i) in
      Buffer.add_string buf
        (Printf.sprintf "  %s [shape=box,label=\"%s\"];\n" name
           (Gate.name s.gate));
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s;\n  %s -> %s;\n"
           (signal_name n s.fanin1) name (signal_name n s.fanin2) name))
    c.Chain.steps;
  Buffer.add_string buf
    (Printf.sprintf "  f [shape=doublecircle];\n  %s -> f%s;\n"
       (signal_name n c.Chain.output)
       (if c.Chain.output_negated then " [style=dashed,label=\"~\"]" else ""));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
