(** Light structural clean-up passes over Boolean chains.

    Exact synthesis produces minimal chains by construction; these
    passes matter when chains are composed, imported, or transformed
    (e.g. by {!Chain.apply_npn}) and may have picked up dead or
    duplicate structure. Every pass preserves the simulated function. *)

val sweep : Chain.t -> Chain.t
(** Remove steps no longer reachable from the output. *)

val strash : Chain.t -> Chain.t
(** Structural hashing: merge steps with identical (fanin-normalised)
    gate and fanins, rewiring readers; applied to fixpoint, then swept.
    Also rewrites steps whose gate is degenerate (constant output on
    reachable... projections and inverters of a fanin) into direct
    references where possible. *)

val cleanup : Chain.t -> Chain.t
(** [strash] followed by {!sweep} — the full pass. *)
