type t = {
  n : int;
  steps : Chain.step array;
  outputs : (int * bool) array;
}

let make ~n ~steps ~outputs =
  if outputs = [] then invalid_arg "Mchain.make: no outputs";
  (* reuse Chain validation for the step structure *)
  let probe = Chain.make ~n ~steps ~output:0 () in
  ignore probe;
  let total = n + List.length steps in
  List.iter
    (fun (o, _) -> if o < 0 || o >= total then invalid_arg "Mchain.make: output")
    outputs;
  { n; steps = Array.of_list steps; outputs = Array.of_list outputs }

let of_chain (c : Chain.t) =
  { n = c.Chain.n;
    steps = c.Chain.steps;
    outputs = [| (c.Chain.output, c.Chain.output_negated) |] }

let to_chain t ~output =
  let o, neg = t.outputs.(output) in
  Chain.make ~n:t.n ~steps:(Array.to_list t.steps) ~output:o
    ~output_negated:neg ()

let size t = Array.length t.steps

let num_outputs t = Array.length t.outputs

let simulate t =
  let sigs =
    Chain.simulate_signals
      (Chain.make ~n:t.n ~steps:(Array.to_list t.steps) ~output:0 ())
  in
  Array.map
    (fun (o, neg) -> if neg then Stp_tt.Tt.bnot sigs.(o) else sigs.(o))
    t.outputs

let share_count t =
  let total = t.n + size t in
  let readers = Array.make total 0 in
  Array.iter
    (fun (s : Chain.step) ->
      readers.(s.fanin1) <- readers.(s.fanin1) + 1;
      readers.(s.fanin2) <- readers.(s.fanin2) + 1)
    t.steps;
  Array.iter (fun (o, _) -> readers.(o) <- readers.(o) + 1) t.outputs;
  let shared = ref 0 in
  for s = t.n to total - 1 do
    if readers.(s) >= 2 then incr shared
  done;
  !shared

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun i (s : Chain.step) ->
      Format.fprintf fmt "x%d = %s(x%d, x%d)@," (t.n + i + 1)
        (Gate.name s.gate) (s.fanin1 + 1) (s.fanin2 + 1))
    t.steps;
  Array.iteri
    (fun k (o, neg) ->
      Format.fprintf fmt "f%d = %sx%d@," (k + 1) (if neg then "!" else "")
        (o + 1))
    t.outputs;
  Format.fprintf fmt "@]"
