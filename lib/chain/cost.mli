(** Cost functions over Boolean chains.

    The paper's point in producing {e all} optimum chains as generic
    2-LUTs is that a later selection can use any technology cost. This
    module provides the usual ones and a generic weighted scheme. *)

type t = Chain.t -> int

val size : t
(** Number of gates. *)

val depth : t
(** Logic depth. *)

val gate_weighted : int array -> t
(** [gate_weighted w] sums [w.(gate)] over all steps; [w] has 16
    entries. *)

val xor_count : t
(** Number of XOR/XNOR steps — expensive in many technologies. *)

val negation_count : t
(** Number of "polarity bubbles": gate codes that are not positive-unate
    normal forms (NAND/NOR/XNOR/LT/GT/LE/GE count 1), plus the output
    complement. A proxy for inverter cost in a NAND-free library. *)

val area_like : t
(** A CMOS-flavoured area proxy: AND/OR/GT/LT 6, NAND/NOR 4, XOR/XNOR 8,
    others 6; useful for demonstrating cost-based selection. *)

val select_min : t -> Chain.t list -> Chain.t
(** [select_min cost chains] returns the minimum-cost chain (first on
    ties).
    @raise Invalid_argument on the empty list. *)

val rank : t -> Chain.t list -> (int * Chain.t) list
(** All chains annotated with their cost, ascending by cost (stable). *)
