type t = Chain.t -> int

let size = Chain.size

let depth = Chain.depth

let gate_weighted w c =
  if Array.length w <> 16 then invalid_arg "Cost.gate_weighted";
  Array.fold_left (fun acc (s : Chain.step) -> acc + w.(s.gate)) 0 c.Chain.steps

let xor_count c =
  Array.fold_left
    (fun acc (s : Chain.step) ->
      acc + if s.gate = 6 || s.gate = 9 then 1 else 0)
    0 c.Chain.steps

let negation_count c =
  let bubbles = function
    | 1 | 2 | 4 | 7 | 9 | 11 | 13 -> 1 (* NOR LT GT NAND XNOR LE GE *)
    | _ -> 0
  in
  Array.fold_left
    (fun acc (s : Chain.step) -> acc + bubbles s.gate)
    (if c.Chain.output_negated then 1 else 0)
    c.Chain.steps

let area_like c =
  let w = function
    | 7 | 1 -> 4 (* NAND, NOR *)
    | 6 | 9 -> 8 (* XOR, XNOR *)
    | _ -> 6
  in
  Array.fold_left (fun acc (s : Chain.step) -> acc + w s.gate) 0 c.Chain.steps

let select_min cost = function
  | [] -> invalid_arg "Cost.select_min: empty"
  | c :: rest ->
    let best, _ =
      List.fold_left
        (fun (bc, bv) c ->
          let v = cost c in
          if v < bv then (c, v) else (bc, bv))
        (c, cost c) rest
    in
    best

let rank cost chains =
  List.stable_sort
    (fun (a, _) (b, _) -> Stdlib.compare a b)
    (List.map (fun c -> (cost c, c)) chains)
