type code = int

let check g = if g < 0 || g > 15 then invalid_arg "Gate: code out of range"

let eval g a b =
  check g;
  let idx = (2 * Bool.to_int a) + Bool.to_int b in
  (g lsr idx) land 1 = 1

let names =
  [| "CONST0"; "NOR"; "LT"; "NOTA"; "GT"; "NOTB"; "XOR"; "NAND";
     "AND"; "XNOR"; "B"; "LE"; "A"; "GE"; "OR"; "CONST1" |]

let name g =
  check g;
  names.(g)

let of_name s =
  let s = String.uppercase_ascii s in
  let rec find i =
    if i = 16 then raise Not_found
    else if names.(i) = s then i
    else find (i + 1)
  in
  find 0

let tt g =
  check g;
  Stp_tt.Tt.of_fun 2 (fun m -> eval g ((m lsr 0) land 1 = 1) ((m lsr 1) land 1 = 1))

let structural g = Stp_matrix.Structural.of_gate_code g

let is_normal g =
  check g;
  g land 1 = 0

let bit g i = (g lsr i) land 1

let depends_on_first g =
  check g;
  bit g 0 <> bit g 2 || bit g 1 <> bit g 3

let depends_on_second g =
  check g;
  bit g 0 <> bit g 1 || bit g 2 <> bit g 3

let is_nontrivial g = depends_on_first g && depends_on_second g

let all = List.init 16 (fun i -> i)

let nontrivial = List.filter is_nontrivial all

let swap_operands g =
  check g;
  (* bit (2a+b) -> bit (2b+a): bits 1 and 2 exchange. *)
  (g land 0b1001) lor ((g land 0b0010) lsl 1) lor ((g land 0b0100) lsr 1)

let negate_first g =
  check g;
  ((g land 0b0011) lsl 2) lor ((g land 0b1100) lsr 2)

let negate_second g =
  check g;
  ((g land 0b0101) lsl 1) lor ((g land 0b1010) lsr 1)

let negate_output g =
  check g;
  lnot g land 0xf

let is_symmetric g = swap_operands g = g
