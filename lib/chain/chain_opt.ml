(* Signal maps used by the passes: every old signal resolves to an
   (existing signal, complemented?) pair; complements are absorbed into
   reader gates, or into the output flag. *)

let sweep (c : Chain.t) =
  let n = c.Chain.n in
  let k = Array.length c.Chain.steps in
  let reachable = Array.make (n + k) false in
  let rec mark s =
    if not reachable.(s) then begin
      reachable.(s) <- true;
      if s >= n then begin
        let st = c.Chain.steps.(s - n) in
        mark st.Chain.fanin1;
        mark st.Chain.fanin2
      end
    end
  in
  mark c.Chain.output;
  (* Renumber the surviving steps. *)
  let remap = Array.make (n + k) (-1) in
  for i = 0 to n - 1 do
    remap.(i) <- i
  done;
  let steps = ref [] in
  let next = ref n in
  Array.iteri
    (fun i (st : Chain.step) ->
      if reachable.(n + i) then begin
        remap.(n + i) <- !next;
        incr next;
        steps :=
          { Chain.fanin1 = remap.(st.fanin1);
            fanin2 = remap.(st.fanin2);
            gate = st.gate }
          :: !steps
      end)
    c.Chain.steps;
  Chain.make ~n ~steps:(List.rev !steps) ~output:remap.(c.Chain.output)
    ~output_negated:c.Chain.output_negated ()

exception Constant_step

let strash (c : Chain.t) =
  let n = c.Chain.n in
  let k = Array.length c.Chain.steps in
  (* old signal -> (new signal, complemented) *)
  let map = Array.init (n + k) (fun s -> (s, false)) in
  let table : (int * int * int, int) Hashtbl.t = Hashtbl.create 97 in
  let steps = ref [] in
  let next = ref n in
  let emit st =
    let id = !next in
    incr next;
    steps := st :: !steps;
    id
  in
  Array.iteri
    (fun i (st : Chain.step) ->
      let f1, neg1 = map.(st.Chain.fanin1) in
      let f2, neg2 = map.(st.Chain.fanin2) in
      let gate = if neg1 then Gate.negate_first st.gate else st.gate in
      let gate = if neg2 then Gate.negate_second gate else gate in
      (* degenerate gates collapse into references *)
      let resolved =
        if not (Gate.depends_on_first gate) && not (Gate.depends_on_second gate)
        then raise Constant_step (* no signal equals a constant *)
        else if not (Gate.depends_on_second gate) then
          (* function of the first fanin only: a or ~a *)
          Some (f1, not (Gate.eval gate true false))
        else if not (Gate.depends_on_first gate) then
          Some (f2, not (Gate.eval gate false true))
        else None
      in
      match resolved with
      | Some (root, neg) -> map.(n + i) <- (root, neg)
      | None ->
        (* order the fanins canonically, then hash *)
        let f1, f2, gate =
          if f1 <= f2 then (f1, f2, gate)
          else (f2, f1, Gate.swap_operands gate)
        in
        if f1 = f2 then begin
          (* both fanins collapsed to the same signal: the gate is a
             function of one signal — or a constant *)
          let v1 = Gate.eval gate true true and v0 = Gate.eval gate false false in
          if v0 = v1 then raise Constant_step
          else map.(n + i) <- (f1, not v1)
        end
        else begin
          match Hashtbl.find_opt table (f1, f2, gate) with
          | Some existing -> map.(n + i) <- (existing, false)
          | None ->
            let id = emit { Chain.fanin1 = f1; fanin2 = f2; gate } in
            Hashtbl.replace table (f1, f2, gate) id;
            map.(n + i) <- (id, false)
        end)
    c.Chain.steps;
  let out, out_neg = map.(c.Chain.output) in
  Chain.make ~n ~steps:(List.rev !steps) ~output:out
    ~output_negated:(c.Chain.output_negated <> out_neg) ()

(* Chains that evaluate a constant somewhere (possible only when built
   by hand) are left untouched. *)
let strash c = try strash c with Constant_step -> c

(* Sweep first: dead constant steps would otherwise make [strash] bail
   out and leave foldable structure behind. *)
let cleanup c = sweep (strash (sweep c))
