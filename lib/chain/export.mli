(** Exporting Boolean chains to standard formats. *)

val to_verilog : ?module_name:string -> Chain.t -> string
(** Structural Verilog: one [assign] per step using [&], [|], [^], [~].
    Inputs are [x1 .. xn], the output is [f]. *)

val to_blif : ?model_name:string -> Chain.t -> string
(** Berkeley Logic Interchange Format, one [.names] table per step —
    the format ABC and friends consume. *)

val to_dot : Chain.t -> string
(** Graphviz digraph of the chain, gates labelled with their names. *)
