(** Multi-output Boolean chains — the full model of Section II-B, where
    [f = (f_1, …, f_m)] and every output points at a signal, possibly
    complemented. *)

type t = private {
  n : int;
  steps : Chain.step array;
  outputs : (int * bool) array; (** (signal, complemented) per output *)
}

val make : n:int -> steps:Chain.step list -> outputs:(int * bool) list -> t
(** Validates like {!Chain.make}; at least one output.
    @raise Invalid_argument on malformed chains. *)

val of_chain : Chain.t -> t

val to_chain : t -> output:int -> Chain.t
(** Single-output view of output [output] (dead steps are kept). *)

val size : t -> int

val num_outputs : t -> int

val simulate : t -> Stp_tt.Tt.t array
(** One table per output. *)

val share_count : t -> int
(** Number of steps read by at least two later steps or outputs — a
    measure of the sharing multi-output synthesis exploits. *)

val pp : Format.formatter -> t -> unit
