(** Indexed max-heap of variables keyed by external activities, used for
    VSIDS decision ordering. *)

type t

val create : activity:(int -> float) -> t
(** [create ~activity] orders variables by the supplied score function;
    scores may change, but a change must be signalled with {!update}. *)

val mem : t -> int -> bool

val insert : t -> int -> unit
(** Inserts a variable (no-op when present). *)

val update : t -> int -> unit
(** Re-establishes heap order after the variable's activity increased. *)

val pop_max : t -> int option
(** Removes and returns the variable with the highest activity. *)

val is_empty : t -> bool
