(** Literals, encoded as integers.

    Variable [v >= 0] yields the positive literal [2v] and the negative
    literal [2v + 1]; this is the MiniSat convention, chosen so that
    negation is a single xor and literals index watch lists directly. *)

type t = int

val make : int -> bool -> t
(** [make v sign] is the literal on variable [v]; [sign = true] gives
    the positive literal. *)

val pos : int -> t
val neg : int -> t

val var : t -> int
val sign : t -> bool
(** [sign l] is [true] for positive literals. *)

val negate : t -> t

val to_int : t -> int
(** DIMACS form: [+-(var+1)]. *)

val of_int : int -> t
(** Inverse of {!to_int}; [of_int 0] is invalid. *)

val pp : Format.formatter -> t -> unit
