type t = {
  activity : int -> float;
  heap : int Stp_util.Vec.t;        (* heap of variable indices *)
  mutable pos : int array;          (* variable -> heap index, -1 absent *)
}

let create ~activity =
  { activity;
    heap = Stp_util.Vec.create ~dummy:(-1) ();
    pos = Array.make 64 (-1) }

let ensure t v =
  let n = Array.length t.pos in
  if v >= n then begin
    let pos = Array.make (max (2 * n) (v + 1)) (-1) in
    Array.blit t.pos 0 pos 0 n;
    t.pos <- pos
  end

let mem t v = v < Array.length t.pos && t.pos.(v) >= 0

let swap t i j =
  let open Stp_util.Vec in
  let a = get t.heap i and b = get t.heap j in
  set t.heap i b;
  set t.heap j a;
  t.pos.(a) <- j;
  t.pos.(b) <- i

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    let open Stp_util.Vec in
    if t.activity (get t.heap i) > t.activity (get t.heap parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let open Stp_util.Vec in
  let n = length t.heap in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let largest = ref i in
  if l < n && t.activity (get t.heap l) > t.activity (get t.heap !largest) then
    largest := l;
  if r < n && t.activity (get t.heap r) > t.activity (get t.heap !largest) then
    largest := r;
  if !largest <> i then begin
    swap t i !largest;
    sift_down t !largest
  end

let insert t v =
  ensure t v;
  if t.pos.(v) < 0 then begin
    Stp_util.Vec.push t.heap v;
    let i = Stp_util.Vec.length t.heap - 1 in
    t.pos.(v) <- i;
    sift_up t i
  end

let update t v = if mem t v then sift_up t t.pos.(v)

let pop_max t =
  let open Stp_util.Vec in
  if length t.heap = 0 then None
  else begin
    let top = get t.heap 0 in
    let last = pop t.heap in
    t.pos.(top) <- -1;
    if length t.heap > 0 then begin
      set t.heap 0 last;
      t.pos.(last) <- 0;
      sift_down t 0
    end;
    Some top
  end

let is_empty t = Stp_util.Vec.is_empty t.heap
