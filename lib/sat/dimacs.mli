(** DIMACS CNF reading and writing, for interoperability and tests. *)

type cnf = { num_vars : int; clauses : Lit.t list list }

val parse : string -> cnf
(** [parse text] reads DIMACS CNF from a string. Clauses must follow
    the [p cnf] header, and every variable index must stay within the
    declared count.
    @raise Invalid_argument on malformed input, with the offending line
    number in the message. *)

val print : Format.formatter -> cnf -> unit

val load : Solver.t -> cnf -> unit
(** Allocates the variables and adds all clauses to a fresh solver. *)
