(** DRAT proof steps and a forward RUP checker.

    The solver (see {!Solver.set_proof}) records one {!step} per learnt
    clause and per learnt-clause deletion, plus a terminal step when it
    concludes unsatisfiability: the empty clause for an unconditional
    refutation, or the clause [~a1 \/ ... \/ ~ak] over the failed
    assumption set for an assumption-relative one. Every recorded
    clause is implied by the input formula alone (assumption literals
    appear {e inside} learnt clauses, they are never resolved away), so
    a single cumulative proof stays checkable across repeated
    incremental [solve] calls.

    The checker verifies each [Add] by reverse unit propagation against
    the clauses accumulated so far: asserting the negation of the
    clause and running unit propagation over the database must yield a
    conflict. [Delete] steps must name a clause currently in the
    database (learnt deletions always do; the checker is strict so that
    bookkeeping bugs surface). Finally the database extended with the
    given assumptions must propagate to a conflict, which certifies
    that formula + assumptions is unsatisfiable. *)

type step =
  | Add of Lit.t list     (** learnt (or concluding) clause, RUP-checked *)
  | Delete of Lit.t list  (** clause removed from the active database *)

val check :
  num_vars:int ->
  clauses:Lit.t list list ->
  ?assumptions:Lit.t list ->
  step list ->
  (unit, string) result
(** [check ~num_vars ~clauses ~assumptions steps] verifies that [steps]
    is a valid DRAT derivation from [clauses] and that it certifies the
    unsatisfiability of [clauses] plus [assumptions] (unit clauses).
    [num_vars] is a lower bound; literals beyond it grow the universe. *)

val pp_step : Format.formatter -> step -> unit
(** DRAT text form: ["1 -2 0"] for additions, ["d 1 -2 0"] for
    deletions. *)
