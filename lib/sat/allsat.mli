(** Model enumeration by blocking clauses.

    The conventional way CNF-based exact synthesis would enumerate all
    solutions — contrast with the paper's one-pass STP circuit solver. *)

val models :
  ?deadline:Stp_util.Deadline.t ->
  ?limit:int ->
  over:int list ->
  Solver.t ->
  bool array list option
(** [models ~over solver] enumerates assignments to the variables [over]
    extendable to full models, blocking each found projection. Returns
    [None] on deadline expiry, otherwise the list of projections (each
    indexed like [over]). The solver is left with the blocking clauses
    added. *)
