type step = Add of Lit.t list | Delete of Lit.t list

(* Clauses in the checker's database. [key] is the sorted, deduplicated
   literal set, used to match Delete steps. Duplicates are dropped on
   insertion too: [scan] counts unassigned literal *occurrences*, so a
   repeated literal would keep a semantically-unit clause from ever
   propagating (the solver dedupes in [add_clause]; raw caller clauses
   may not be). *)
type cls = { lits : int array; key : int array; mutable live : bool }

let key_of lits = Array.of_list (List.sort_uniq compare lits)

exception Conflict
exception Failed of string

let check ~num_vars ~clauses ?(assumptions = []) steps =
  (* Size the universe from everything in sight. *)
  let nv = ref num_vars in
  let see l = if l lsr 1 >= !nv then nv := (l lsr 1) + 1 in
  List.iter (List.iter see) clauses;
  List.iter see assumptions;
  List.iter (function Add ls | Delete ls -> List.iter see ls) steps;
  let nv = max 1 !nv in
  (* 0 = true, 1 = false, 2 = undefined, per variable. *)
  let assigns = Array.make nv 2 in
  let lit_value l =
    let a = assigns.(l lsr 1) in
    if a = 2 then 2 else a lxor (l land 1)
  in
  let occur = Array.make (2 * nv) [] in
  (* Live unit clauses seed every propagation; live empty clauses make
     every check trivial. Both are invisible to occurrence scanning. *)
  let units = ref [] in
  let empty_live = ref 0 in
  let insert lits_list =
    let lits = key_of lits_list in
    let c = { lits; key = lits; live = true } in
    Array.iter (fun l -> occur.(l) <- c :: occur.(l)) lits;
    (match lits with
     | [||] -> incr empty_live
     | [| l |] -> units := (c, l) :: !units
     | _ -> ());
    c
  in
  let trail = ref [] in
  let pending = Queue.create () in
  let assign l =
    match lit_value l with
    | 0 -> ()
    | 1 -> raise Conflict
    | _ ->
      assigns.(l lsr 1) <- l land 1;
      trail := l :: !trail;
      Queue.add l pending
  in
  let scan c =
    (* Satisfied clauses are inert; otherwise a single unassigned
       literal is forced, and none at all is a conflict. *)
    let unassigned = ref (-1) and n_unassigned = ref 0 and sat = ref false in
    Array.iter
      (fun l ->
        match lit_value l with
        | 0 -> sat := true
        | 2 ->
          incr n_unassigned;
          unassigned := l
        | _ -> ())
      c.lits;
    if not !sat then
      if !n_unassigned = 0 then raise Conflict
      else if !n_unassigned = 1 then assign !unassigned
  in
  (* Unit-propagate from the database units plus [seeds]; true iff a
     conflict is reached. Always unwinds the trail. *)
  let propagates_to_conflict seeds =
    Queue.clear pending;
    let outcome =
      try
        if !empty_live > 0 then raise Conflict;
        List.iter (fun (c, l) -> if c.live then assign l) !units;
        List.iter assign seeds;
        while not (Queue.is_empty pending) do
          let p = Queue.pop pending in
          List.iter (fun c -> if c.live then scan c) occur.(p lxor 1)
        done;
        false
      with Conflict -> true
    in
    List.iter (fun l -> assigns.(l lsr 1) <- 2) !trail;
    trail := [];
    outcome
  in
  let pp_lits ls =
    String.concat " " (List.map (fun l -> string_of_int (Lit.to_int l)) ls)
  in
  try
    List.iter (fun c -> ignore (insert c)) clauses;
    List.iteri
      (fun i step ->
        match step with
        | Add lits ->
          if not (propagates_to_conflict (List.map Lit.negate lits)) then
            raise
              (Failed
                 (Printf.sprintf "step %d: clause [%s] is not RUP" i
                    (pp_lits lits)));
          ignore (insert lits)
        | Delete lits ->
          let key = key_of lits in
          let candidates =
            match lits with
            | [] -> []
            | l :: _ -> List.filter (fun c -> c.live && c.key = key) occur.(l)
          in
          (match candidates with
           | c :: _ ->
             c.live <- false;
             (match c.lits with [||] -> decr empty_live | _ -> ())
           | [] ->
             raise
               (Failed
                  (Printf.sprintf "step %d: delete of absent clause [%s]" i
                     (pp_lits lits)))))
      steps;
    if propagates_to_conflict assumptions then Ok ()
    else Error "proof does not refute the formula under the assumptions"
  with Failed msg -> Error msg

let pp_step fmt = function
  | Add lits ->
    List.iter (fun l -> Format.fprintf fmt "%d " (Lit.to_int l)) lits;
    Format.fprintf fmt "0"
  | Delete lits ->
    Format.fprintf fmt "d ";
    List.iter (fun l -> Format.fprintf fmt "%d " (Lit.to_int l)) lits;
    Format.fprintf fmt "0"
