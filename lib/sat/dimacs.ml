type cnf = { num_vars : int; clauses : Lit.t list list }

let parse text =
  let lines = String.split_on_char '\n' text in
  let num_vars = ref (-1) in
  let clauses = ref [] in
  let current = ref [] in
  let current_line = ref 0 in
  let fail lineno msg =
    invalid_arg (Printf.sprintf "Dimacs.parse: line %d: %s" lineno msg)
  in
  let handle_token lineno tok =
    match int_of_string_opt tok with
    | None -> fail lineno (Printf.sprintf "bad token %S" tok)
    | Some 0 ->
      clauses := List.rev !current :: !clauses;
      current := []
    | Some i ->
      let v = abs i in
      if v > !num_vars then
        fail lineno
          (Printf.sprintf "variable %d exceeds the declared %d" v !num_vars);
      current := Lit.of_int i :: !current
  in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let line = String.trim line in
      if line = "" then ()
      else if line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        if !num_vars >= 0 then fail lineno "duplicate header";
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "p"; "cnf"; nv; nc ] -> (
          match (int_of_string_opt nv, int_of_string_opt nc) with
          | Some n, Some _ when n >= 0 -> num_vars := n
          | _ -> fail lineno "bad header")
        | _ -> fail lineno "bad header"
      end
      else begin
        if !num_vars < 0 then fail lineno "clause before the 'p cnf' header";
        if !current = [] then current_line := lineno;
        String.split_on_char ' ' line
        |> List.filter (( <> ) "")
        |> List.iter (handle_token lineno)
      end)
    lines;
  if !num_vars < 0 then invalid_arg "Dimacs.parse: missing header";
  if !current <> [] then fail !current_line "unterminated clause";
  { num_vars = !num_vars; clauses = List.rev !clauses }

let print fmt { num_vars; clauses } =
  Format.fprintf fmt "p cnf %d %d@." num_vars (List.length clauses);
  List.iter
    (fun c ->
      List.iter (fun l -> Format.fprintf fmt "%d " (Lit.to_int l)) c;
      Format.fprintf fmt "0@.")
    clauses

let load solver { num_vars; clauses } =
  for _ = 1 to num_vars do
    ignore (Solver.new_var solver)
  done;
  List.iter (Solver.add_clause solver) clauses
