type cnf = { num_vars : int; clauses : Lit.t list list }

let parse text =
  let lines = String.split_on_char '\n' text in
  let num_vars = ref (-1) in
  let clauses = ref [] in
  let current = ref [] in
  let handle_token tok =
    match int_of_string_opt tok with
    | None -> invalid_arg "Dimacs.parse: bad token"
    | Some 0 ->
      clauses := List.rev !current :: !clauses;
      current := []
    | Some i -> current := Lit.of_int i :: !current
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" then ()
      else if line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "p"; "cnf"; nv; _nc ] -> (
          match int_of_string_opt nv with
          | Some n -> num_vars := n
          | None -> invalid_arg "Dimacs.parse: bad header")
        | _ -> invalid_arg "Dimacs.parse: bad header"
      end
      else
        String.split_on_char ' ' line
        |> List.filter (( <> ) "")
        |> List.iter handle_token)
    lines;
  if !num_vars < 0 then invalid_arg "Dimacs.parse: missing header";
  if !current <> [] then invalid_arg "Dimacs.parse: unterminated clause";
  { num_vars = !num_vars; clauses = List.rev !clauses }

let print fmt { num_vars; clauses } =
  Format.fprintf fmt "p cnf %d %d@." num_vars (List.length clauses);
  List.iter
    (fun c ->
      List.iter (fun l -> Format.fprintf fmt "%d " (Lit.to_int l)) c;
      Format.fprintf fmt "0@.")
    clauses

let load solver { num_vars; clauses } =
  for _ = 1 to num_vars do
    ignore (Solver.new_var solver)
  done;
  List.iter (Solver.add_clause solver) clauses
