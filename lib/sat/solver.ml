(* Conflict-driven clause learning, after MiniSat, with the incremental
   and clause-management machinery of the Glucose lineage.

   Watched literals are clause slots 0 and 1; a clause sits in the watch
   list of each watched literal and the list for literal [l] is visited
   when [l] becomes false. Each watch list entry carries a *blocking
   literal* — some other literal of the clause — so the hot propagate
   loop can skip clauses that are already satisfied without touching
   clause memory. Binary clauses are inlined into the watcher entirely:
   the blocker IS the other literal, and propagation never reads the
   clause at all.

   Learnt clauses carry their LBD (literal block distance: the number of
   distinct decision levels among their literals, computed at learn
   time). Glue clauses (LBD <= 2) form a core tier that is never
   deleted; the local tier is reduced by LBD-then-activity. *)

type clause = {
  mutable lits : int array;
  mutable activity : float;
  learnt : bool;
  mutable lbd : int; (* 0 for problem clauses *)
  mutable deleted : bool;
}

type watcher = { mutable blocker : int; wcl : clause }

type result = Sat | Unsat | Unknown

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  restarts : int;
  learned : int;
  learned_core : int;
  learned_local : int;
  reductions : int;
  deleted : int;
  retired : int;
}

(* lbool encoding in [assigns]: 0 = true, 1 = false, 2 = undefined. *)
let l_undef = 2

type t = {
  mutable nvars : int;
  mutable assigns : int array;      (* per var *)
  mutable levels : int array;       (* per var *)
  mutable reasons : clause option array; (* per var *)
  mutable saved_phase : bool array; (* per var *)
  mutable acts : float array;       (* per var *)
  mutable watches : watcher Stp_util.Vec.t array; (* per literal *)
  order : Order.t Lazy.t;
  trail : int Stp_util.Vec.t;       (* literals in assignment order *)
  trail_lim : int Stp_util.Vec.t;
  mutable qhead : int;
  clauses : clause Stp_util.Vec.t;  (* problem clauses *)
  learnts : clause Stp_util.Vec.t;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable ok : bool;
  mutable max_learnts : float;
  (* statistics *)
  mutable n_decisions : int;
  mutable n_propagations : int;
  mutable n_conflicts : int;
  mutable n_restarts : int;
  mutable n_learned : int;
  mutable n_core : int;       (* live core-tier learnts *)
  mutable n_reductions : int;
  mutable n_deleted : int;
  mutable n_retired : int;
  (* totals flushed so far (delta accounting for the global counters) *)
  mutable fl_decisions : int;
  mutable fl_propagations : int;
  mutable fl_conflicts : int;
  mutable fl_restarts : int;
  mutable fl_learned : int;
  (* DRAT proof recording *)
  mutable proof_on : bool;
  mutable proof : Drat.step list; (* reversed *)
  (* assumption subset used by the last Unsat-under-assumptions *)
  mutable conflict_core : Lit.t list;
  (* scratch for analysis *)
  mutable seen : bool array;
  mutable lbd_stamp : int array;  (* per level *)
  mutable lbd_time : int;
}

let dummy_clause =
  { lits = [||]; activity = 0.0; learnt = false; lbd = 0; deleted = true }

let dummy_watcher = { blocker = -1; wcl = dummy_clause }

(* Process-wide counters across every solver instance; always on (plain
   atomics), so services and benches can surface SAT pressure without
   enabling the profiler. *)
module Totals = struct
  let n = 14

  let cells = Array.init n (fun _ -> Atomic.make 0)

  let solvers = 0
  and solves = 1
  and sat = 2
  and unsat = 3
  and unknown = 4
  and decisions = 5
  and propagations = 6
  and conflicts = 7
  and restarts = 8
  and learned = 9
  and learned_core = 10
  and reductions = 11
  and deleted = 12
  and retired = 13

  let names =
    [| "solvers"; "solves"; "sat"; "unsat"; "unknown"; "decisions";
       "propagations"; "conflicts"; "restarts"; "learned"; "learned_core";
       "reductions"; "deleted"; "retired" |]

  let bump i k = if k <> 0 then ignore (Atomic.fetch_and_add cells.(i) k)

  let snapshot () =
    Array.to_list (Array.mapi (fun i name -> (name, Atomic.get cells.(i))) names)

  let reset () = Array.iter (fun c -> Atomic.set c 0) cells
end

let create () =
  Totals.bump Totals.solvers 1;
  let rec t =
    { nvars = 0;
      assigns = Array.make 64 l_undef;
      levels = Array.make 64 0;
      reasons = Array.make 64 None;
      saved_phase = Array.make 64 false;
      acts = Array.make 64 0.0;
      watches = Array.init 128 (fun _ -> Stp_util.Vec.create ~dummy:dummy_watcher ());
      order = lazy (Order.create ~activity:(fun v -> t.acts.(v)));
      trail = Stp_util.Vec.create ~dummy:(-1) ();
      trail_lim = Stp_util.Vec.create ~dummy:(-1) ();
      qhead = 0;
      clauses = Stp_util.Vec.create ~dummy:dummy_clause ();
      learnts = Stp_util.Vec.create ~dummy:dummy_clause ();
      var_inc = 1.0;
      cla_inc = 1.0;
      ok = true;
      max_learnts = 0.0;
      n_decisions = 0;
      n_propagations = 0;
      n_conflicts = 0;
      n_restarts = 0;
      n_learned = 0;
      n_core = 0;
      n_reductions = 0;
      n_deleted = 0;
      n_retired = 0;
      fl_decisions = 0;
      fl_propagations = 0;
      fl_conflicts = 0;
      fl_restarts = 0;
      fl_learned = 0;
      proof_on = false;
      proof = [];
      conflict_core = [];
      seen = Array.make 64 false;
      lbd_stamp = Array.make 65 0;
      lbd_time = 0 }
  in
  t

let num_vars t = t.nvars

let set_proof t on =
  t.proof_on <- on;
  t.proof <- []

let proof t = List.rev t.proof

let proof_add t lits = if t.proof_on then t.proof <- Drat.Add lits :: t.proof

let proof_delete t lits =
  if t.proof_on then t.proof <- Drat.Delete (Array.to_list lits) :: t.proof

let grow_arrays t =
  let n = Array.length t.assigns in
  let n' = 2 * n in
  let copy_arr a fill =
    let a' = Array.make n' fill in
    Array.blit a 0 a' 0 n;
    a'
  in
  t.assigns <- copy_arr t.assigns l_undef;
  t.levels <- copy_arr t.levels 0;
  t.reasons <- copy_arr t.reasons None;
  t.saved_phase <- copy_arr t.saved_phase false;
  t.acts <- copy_arr t.acts 0.0;
  t.seen <- copy_arr t.seen false;
  let stamp = Array.make (n' + 1) 0 in
  Array.blit t.lbd_stamp 0 stamp 0 (Array.length t.lbd_stamp);
  t.lbd_stamp <- stamp;
  let w = Array.init (2 * n') (fun i ->
      if i < Array.length t.watches then t.watches.(i)
      else Stp_util.Vec.create ~dummy:dummy_watcher ())
  in
  t.watches <- w

let new_var t =
  if t.nvars >= Array.length t.assigns then grow_arrays t;
  let v = t.nvars in
  t.nvars <- v + 1;
  Order.insert (Lazy.force t.order) v;
  v

(* Value of a literal: 0 true, 1 false, 2 undefined. *)
let lit_value t l =
  let a = t.assigns.(l lsr 1) in
  if a = l_undef then l_undef else a lxor (l land 1)

let decision_level t = Stp_util.Vec.length t.trail_lim

let var_bump t v =
  t.acts.(v) <- t.acts.(v) +. t.var_inc;
  if t.acts.(v) > 1e100 then begin
    for i = 0 to t.nvars - 1 do
      t.acts.(i) <- t.acts.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  Order.update (Lazy.force t.order) v

let var_decay t = t.var_inc <- t.var_inc /. 0.95

let cla_bump t c =
  c.activity <- c.activity +. t.cla_inc;
  if c.activity > 1e20 then begin
    Stp_util.Vec.iter (fun c -> c.activity <- c.activity *. 1e-20) t.learnts;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

let cla_decay t = t.cla_inc <- t.cla_inc /. 0.999

(* Distinct decision levels (> 0) among an assigned literal array. *)
let compute_lbd t lits =
  t.lbd_time <- t.lbd_time + 1;
  let stamp = t.lbd_stamp and time = t.lbd_time in
  let n = ref 0 in
  Array.iter
    (fun q ->
      let lv = t.levels.(q lsr 1) in
      if lv > 0 && stamp.(lv) <> time then begin
        stamp.(lv) <- time;
        incr n
      end)
    lits;
  !n

let enqueue t l reason =
  let v = l lsr 1 in
  t.assigns.(v) <- l land 1;
  t.levels.(v) <- decision_level t;
  t.reasons.(v) <- reason;
  t.saved_phase.(v) <- l land 1 = 0;
  Stp_util.Vec.push t.trail l

let attach_clause t c =
  (* The blocker starts as the other watched literal; for binary clauses
     it stays that way forever, which is what makes the binary fast path
     sound: the watcher alone describes the whole clause. *)
  Stp_util.Vec.push t.watches.(c.lits.(0)) { blocker = c.lits.(1); wcl = c };
  Stp_util.Vec.push t.watches.(c.lits.(1)) { blocker = c.lits.(0); wcl = c }

(* Propagate all enqueued facts; return the conflicting clause or None.

   This is the solver's hottest loop, so the watch list is scanned on
   its backing array ([Vec.raw]) with unchecked accesses: every index is
   bounded by the length captured at scan entry, and the one [push]
   inside the scan targets a different literal's list (the new watch is
   never false while the scanned literal is), so the backing array can
   not be reallocated under us. Literal values are read against
   [assigns] directly: a literal is true iff the stored sign equals its
   own, false iff it equals the opposite — undefined (2) matches
   neither, so no three-way test is needed. *)
let propagate t =
  let conflict = ref None in
  let assigns = t.assigns in
  let lit_true l = Array.unsafe_get assigns (l lsr 1) = l land 1 in
  let lit_false l = Array.unsafe_get assigns (l lsr 1) = l land 1 lxor 1 in
  while !conflict == None && t.qhead < Stp_util.Vec.length t.trail do
    let p = Stp_util.Vec.get t.trail t.qhead in
    t.qhead <- t.qhead + 1;
    t.n_propagations <- t.n_propagations + 1;
    let false_lit = p lxor 1 in
    let ws = t.watches.(false_lit) in
    let n = Stp_util.Vec.length ws in
    let data = Stp_util.Vec.raw ws in
    let keep = ref 0 in
    let i = ref 0 in
    while !i < n do
      let w = Array.unsafe_get data !i in
      incr i;
      let c = w.wcl in
      if c.deleted then ()
      else if lit_true w.blocker then begin
        (* Blocking literal satisfied: the clause is inert this round. *)
        Array.unsafe_set data !keep w;
        incr keep
      end
      else if Array.length c.lits = 2 then begin
        (* Binary clause, fully described by the watcher: the blocker is
           the other literal and it is not true here. *)
        let other = w.blocker in
        Array.unsafe_set data !keep w;
        incr keep;
        if lit_false other then begin
          while !i < n do
            Array.unsafe_set data !keep (Array.unsafe_get data !i);
            incr keep;
            incr i
          done;
          conflict := Some c;
          t.qhead <- Stp_util.Vec.length t.trail
        end
        else enqueue t other (Some c)
      end
      else begin
        let lits = c.lits in
        (* Ensure the falsified literal is slot 1. *)
        if Array.unsafe_get lits 0 = false_lit then begin
          Array.unsafe_set lits 0 (Array.unsafe_get lits 1);
          Array.unsafe_set lits 1 false_lit
        end;
        let first = Array.unsafe_get lits 0 in
        if first <> w.blocker && lit_true first then begin
          (* Clause already satisfied: keep the watch, refresh blocker. *)
          w.blocker <- first;
          Array.unsafe_set data !keep w;
          incr keep
        end
        else begin
          (* Look for a new literal to watch. *)
          let len = Array.length lits in
          let k = ref 2 in
          while !k < len && lit_false (Array.unsafe_get lits !k) do
            incr k
          done;
          if !k < len then begin
            Array.unsafe_set lits 1 (Array.unsafe_get lits !k);
            Array.unsafe_set lits !k false_lit;
            (* watch moved: reuse the watcher record, do not keep *)
            w.blocker <- first;
            Stp_util.Vec.push t.watches.(Array.unsafe_get lits 1) w
          end
          else begin
            w.blocker <- first;
            Array.unsafe_set data !keep w;
            incr keep;
            if lit_false first then begin
              (* Conflict: restore remaining watches and stop. *)
              while !i < n do
                Array.unsafe_set data !keep (Array.unsafe_get data !i);
                incr keep;
                incr i
              done;
              conflict := Some c;
              t.qhead <- Stp_util.Vec.length t.trail
            end
            else
              (* Unit: enqueue first. *)
              enqueue t first (Some c)
          end
        end
      end
    done;
    Stp_util.Vec.shrink ws !keep
  done;
  !conflict

let cancel_until t level =
  if decision_level t > level then begin
    let bound = Stp_util.Vec.get t.trail_lim level in
    for i = Stp_util.Vec.length t.trail - 1 downto bound do
      let l = Stp_util.Vec.get t.trail i in
      let v = l lsr 1 in
      t.assigns.(v) <- l_undef;
      t.reasons.(v) <- None;
      Order.insert (Lazy.force t.order) v
    done;
    Stp_util.Vec.shrink t.trail bound;
    Stp_util.Vec.shrink t.trail_lim level;
    t.qhead <- bound
  end

(* First-UIP conflict analysis.  Returns (learnt clause lits with the
   asserting literal first, backtrack level). *)
let analyze t conflict =
  let learnt = ref [] in
  let seen = t.seen in
  let counter = ref 0 in
  let p = ref (-1) in
  let confl = ref (Some conflict) in
  let index = ref (Stp_util.Vec.length t.trail - 1) in
  let continue = ref true in
  while !continue do
    (match !confl with
     | None -> assert false
     | Some c ->
       if c.learnt then begin
         cla_bump t c;
         (* Glucose-style LBD refresh: clauses that keep showing up in
            conflicts with a lower block distance are promoted, possibly
            into the never-deleted core tier. *)
         if c.lbd > 2 then begin
           let nl = compute_lbd t c.lits in
           if nl < c.lbd then begin
             if nl <= 2 then begin
               t.n_core <- t.n_core + 1;
               Totals.bump Totals.learned_core 1;
               Stp_util.Profile.incr Stp_util.Profile.Sat_learned_core
             end;
             c.lbd <- nl
           end
         end
       end;
       (* Skip the literal this clause was resolved on (for binary
          reasons the propagated literal may sit in either slot). *)
       let skip = if !p = -1 then -1 else !p lsr 1 in
       for j = 0 to Array.length c.lits - 1 do
         let q = c.lits.(j) in
         let v = q lsr 1 in
         if v <> skip && (not seen.(v)) && t.levels.(v) > 0 then begin
           var_bump t v;
           seen.(v) <- true;
           if t.levels.(v) >= decision_level t then incr counter
           else learnt := q :: !learnt
         end
       done);
    (* Select next literal to look at. *)
    let rec next () =
      let l = Stp_util.Vec.get t.trail !index in
      decr index;
      if seen.(l lsr 1) then l else next ()
    in
    let l = next () in
    let v = l lsr 1 in
    seen.(v) <- false;
    confl := t.reasons.(v);
    p := l;
    decr counter;
    if !counter <= 0 then continue := false
  done;
  let asserting = !p lxor 1 in
  (* Clause minimisation: drop literals implied by the rest. *)
  List.iter (fun q -> t.seen.(q lsr 1) <- true) !learnt;
  let redundant q =
    match t.reasons.(q lsr 1) with
    | None -> false
    | Some c ->
      Array.for_all
        (fun r ->
          r = (q lxor 1) || t.seen.(r lsr 1) || t.levels.(r lsr 1) = 0)
        c.lits
  in
  let minimised = List.filter (fun q -> not (redundant q)) !learnt in
  List.iter (fun q -> t.seen.(q lsr 1) <- false) !learnt;
  let lits = asserting :: minimised in
  let btlevel =
    List.fold_left (fun acc q -> max acc t.levels.(q lsr 1)) 0 minimised
  in
  (Array.of_list lits, btlevel)

(* Which of the pushed assumption literals force the falsified
   assumption [p]: walk the trail from the top, expanding reason clauses
   and collecting decision literals (inside the assumption prefix every
   decision is an assumption). The result — [p] included — is an unsat
   core: the formula refutes this subset on its own, so any assumption
   superset is refuted too. MiniSat's [analyzeFinal]. *)
let analyze_final t p =
  let out = ref [ p ] in
  if decision_level t > 0 then begin
    let seen = t.seen in
    seen.(p lsr 1) <- true;
    let bottom = Stp_util.Vec.get t.trail_lim 0 in
    for i = Stp_util.Vec.length t.trail - 1 downto bottom do
      let l = Stp_util.Vec.get t.trail i in
      let v = l lsr 1 in
      if seen.(v) then begin
        (match t.reasons.(v) with
         | None -> if t.levels.(v) > 0 then out := l :: !out
         | Some c ->
           (* skip the propagated variable itself; binary reasons may
              hold it in either slot *)
           Array.iter
             (fun q ->
               let w = q lsr 1 in
               if w <> v && t.levels.(w) > 0 then seen.(w) <- true)
             c.lits);
        seen.(v) <- false
      end
    done;
    seen.(p lsr 1) <- false
  end;
  !out

(* [record_learnt] is called with the trail still at the conflict level
   (LBD needs the levels), and backtracks itself. *)
let record_learnt t lits btlevel =
  t.n_learned <- t.n_learned + 1;
  let lbd = compute_lbd t lits in
  proof_add t (Array.to_list lits);
  cancel_until t btlevel;
  if Array.length lits = 1 then begin
    cancel_until t 0;
    if lit_value t lits.(0) = l_undef then enqueue t lits.(0) None
    else if lit_value t lits.(0) = 1 then begin
      t.ok <- false;
      proof_add t []
    end
  end
  else begin
    let c = { lits; activity = 0.0; learnt = true; lbd; deleted = false } in
    if lbd <= 2 then begin
      t.n_core <- t.n_core + 1;
      Totals.bump Totals.learned_core 1;
      Stp_util.Profile.incr Stp_util.Profile.Sat_learned_core
    end;
    (* Slot 1 must hold the literal of the backtrack level so that the
       watch invariant holds after backjumping: pick the highest-level
       literal among lits[1..]. *)
    let best = ref 1 in
    for j = 2 to Array.length lits - 1 do
      if t.levels.(lits.(j) lsr 1) > t.levels.(lits.(!best) lsr 1) then best := j
    done;
    let tmp = lits.(1) in
    lits.(1) <- lits.(!best);
    lits.(!best) <- tmp;
    attach_clause t c;
    Stp_util.Vec.push t.learnts c;
    cla_bump t c;
    enqueue t lits.(0) (Some c)
  end

let locked t c =
  Array.length c.lits > 0
  &&
  let v = c.lits.(0) lsr 1 in
  match t.reasons.(v) with Some r -> r == c | None -> false

let is_core c = c.lbd <= 2 || Array.length c.lits <= 2

(* Reduce the local learnt tier: order by LBD (high first), break ties
   by activity (low first), delete the worse half. Core (glue) clauses
   are never considered. *)
let reduce_db t =
  t.n_reductions <- t.n_reductions + 1;
  Totals.bump Totals.reductions 1;
  Stp_util.Profile.incr Stp_util.Profile.Sat_reductions;
  let learnts = Stp_util.Vec.to_array t.learnts in
  let local =
    Array.of_list (List.filter (fun c -> not (is_core c)) (Array.to_list learnts))
  in
  Array.sort
    (fun a b ->
      if a.lbd <> b.lbd then compare b.lbd a.lbd
      else Float.compare a.activity b.activity)
    local;
  let limit = Array.length local / 2 in
  let n_deleted = ref 0 in
  Array.iteri
    (fun i c ->
      if i < limit && Array.length c.lits > 2 && not (locked t c) then begin
        c.deleted <- true;
        incr n_deleted;
        proof_delete t c.lits
      end)
    local;
  t.n_deleted <- t.n_deleted + !n_deleted;
  Totals.bump Totals.deleted !n_deleted;
  Stp_util.Profile.add Stp_util.Profile.Sat_deleted_clauses !n_deleted;
  Stp_util.Vec.clear t.learnts;
  Array.iter
    (fun (c : clause) -> if not c.deleted then Stp_util.Vec.push t.learnts c)
    learnts

let add_clause t lits =
  if t.ok then begin
    cancel_until t 0;
    (* Simplify: sort, drop duplicates, detect tautologies and false
       literals at level 0. *)
    let lits = List.sort_uniq Stdlib.compare lits in
    let tautology =
      List.exists (fun l -> List.mem (l lxor 1) lits) lits
    in
    if not tautology then begin
      let lits =
        List.filter
          (fun l ->
            if l lsr 1 >= t.nvars then invalid_arg "Solver.add_clause: unknown var";
            lit_value t l <> 1)
          lits
      in
      if List.exists (fun l -> lit_value t l = 0) lits then ()
      else
        match lits with
        | [] -> t.ok <- false
        | [ l ] ->
          enqueue t l None;
          if propagate t <> None then begin
            t.ok <- false;
            proof_add t []
          end
        | _ ->
          let c =
            { lits = Array.of_list lits; activity = 0.0; learnt = false;
              lbd = 0; deleted = false }
          in
          attach_clause t c;
          Stp_util.Vec.push t.clauses c
    end
  end

(* Remove clauses satisfied by the level-0 assignment. Sound only at
   decision level 0; retired-selector clauses are reclaimed here.
   Deletions of problem clauses are not recorded in the proof — the
   checker's database keeps the caller's original clauses, and extra
   clauses only help unit propagation. *)
let simplify t =
  if t.ok then begin
    cancel_until t 0;
    match propagate t with
    | Some _ ->
      t.ok <- false;
      proof_add t []
    | None ->
      let satisfied c = Array.exists (fun l -> lit_value t l = 0) c.lits in
      let sweep ~proof vec =
        let arr = Stp_util.Vec.to_array vec in
        Stp_util.Vec.clear vec;
        let n_deleted = ref 0 in
        Array.iter
          (fun c ->
            if satisfied c then begin
              c.deleted <- true;
              incr n_deleted;
              if proof then begin
                proof_delete t c.lits;
                if c.learnt && is_core c then t.n_core <- t.n_core - 1
              end
            end
            else Stp_util.Vec.push vec c)
          arr;
        !n_deleted
      in
      ignore (sweep ~proof:false t.clauses);
      let nd = sweep ~proof:true t.learnts in
      t.n_deleted <- t.n_deleted + nd;
      Totals.bump Totals.deleted nd;
      Stp_util.Profile.add Stp_util.Profile.Sat_deleted_clauses nd;
      (* Level-0 propagations keep pointers to their reason clauses;
         those may now be swept, so detach them. Analysis never looks at
         level-0 reasons. *)
      Stp_util.Vec.iter (fun l -> t.reasons.(l lsr 1) <- None) t.trail
  end

let new_selector t = Lit.pos (new_var t)

let retire t sel =
  add_clause t [ Lit.negate sel ];
  t.n_retired <- t.n_retired + 1;
  Totals.bump Totals.retired 1;
  Stp_util.Profile.incr Stp_util.Profile.Sat_selectors_retired;
  simplify t

(* The Luby restart sequence 1 1 2 1 1 2 4 ... (MiniSat's formulation). *)
let luby x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  float_of_int (1 lsl !seq)

let decide t =
  let order = Lazy.force t.order in
  let rec loop () =
    match Order.pop_max order with
    | None -> None
    | Some v -> if t.assigns.(v) = l_undef then Some v else loop ()
  in
  loop ()

(* Push per-solve deltas of the hot counters into the process-wide
   totals and the profiler. *)
let flush_totals t outcome =
  let module P = Stp_util.Profile in
  Totals.bump Totals.solves 1;
  P.incr P.Sat_solves;
  (match outcome with
   | Sat -> Totals.bump Totals.sat 1
   | Unsat -> Totals.bump Totals.unsat 1
   | Unknown -> Totals.bump Totals.unknown 1);
  let d_dec = t.n_decisions - t.fl_decisions in
  let d_prop = t.n_propagations - t.fl_propagations in
  let d_conf = t.n_conflicts - t.fl_conflicts in
  let d_rst = t.n_restarts - t.fl_restarts in
  let d_lrn = t.n_learned - t.fl_learned in
  t.fl_decisions <- t.n_decisions;
  t.fl_propagations <- t.n_propagations;
  t.fl_conflicts <- t.n_conflicts;
  t.fl_restarts <- t.n_restarts;
  t.fl_learned <- t.n_learned;
  Totals.bump Totals.decisions d_dec;
  Totals.bump Totals.propagations d_prop;
  Totals.bump Totals.conflicts d_conf;
  Totals.bump Totals.restarts d_rst;
  Totals.bump Totals.learned d_lrn;
  P.add P.Sat_decisions d_dec;
  P.add P.Sat_propagations d_prop;
  P.add P.Sat_conflicts d_conf;
  P.add P.Sat_restarts d_rst;
  P.add P.Sat_learned d_lrn

let solve ?(assumptions = []) ?(deadline = Stp_util.Deadline.never)
    ?(conflict_budget = max_int) t =
  t.conflict_core <- [];
  if not t.ok then begin
    flush_totals t Unsat;
    Unsat
  end
  else begin
    cancel_until t 0;
    (match propagate t with
     | Some _ ->
       t.ok <- false;
       proof_add t []
     | None -> ());
    if not t.ok then begin
      flush_totals t Unsat;
      Unsat
    end
    else begin
      let assumptions = Array.of_list assumptions in
      t.max_learnts <-
        Float.max 1000.0 (float_of_int (Stp_util.Vec.length t.clauses) /. 3.0);
      let budget = ref conflict_budget in
      let result = ref None in
      let restart_count = ref 0 in
      (* Conflicts allowed before the next restart. *)
      let next_restart = ref (int_of_float (100.0 *. luby !restart_count)) in
      let conflicts_since_restart = ref 0 in
      while !result = None do
        match propagate t with
        | Some conflict ->
          t.n_conflicts <- t.n_conflicts + 1;
          incr conflicts_since_restart;
          decr budget;
          if decision_level t = 0 then begin
            t.ok <- false;
            proof_add t [];
            result := Some Unsat
          end
          else begin
            (* Backtracking may land inside the assumption prefix; the
               decision loop then re-pushes the assumptions, which either
               succeed or expose their inconsistency as Unsat. *)
            let learnt, btlevel = analyze t conflict in
            record_learnt t learnt btlevel;
            if not t.ok then result := Some Unsat;
            var_decay t;
            cla_decay t;
            if !budget <= 0 then result := Some Unknown
            else if Stp_util.Deadline.expired deadline then result := Some Unknown
            else if
              float_of_int (Stp_util.Vec.length t.learnts - t.n_core)
              >= t.max_learnts
            then begin
              reduce_db t;
              t.max_learnts <- t.max_learnts *. 1.3
            end
          end
        | None ->
          if !conflicts_since_restart >= !next_restart then begin
            conflicts_since_restart := 0;
            incr restart_count;
            t.n_restarts <- t.n_restarts + 1;
            next_restart := int_of_float (100.0 *. luby !restart_count);
            cancel_until t 0
          end
          else if Stp_util.Deadline.expired deadline then result := Some Unknown
          else begin
            (* Extend with assumptions first, then decide. *)
            let dl = decision_level t in
            if dl < Array.length assumptions then begin
              let a = assumptions.(dl) in
              if a lsr 1 >= t.nvars then invalid_arg "Solver.solve: unknown var";
              match lit_value t a with
              | 0 ->
                (* already satisfied: open an empty decision level *)
                Stp_util.Vec.push t.trail_lim (Stp_util.Vec.length t.trail)
              | 1 ->
                (* The failed-assumption clause — the negated unsat core
                   of the assumptions — is formula-implied (it does not
                   mention this solve's assumption context) and RUP, so
                   it certifies Unsat-under-assumptions without
                   poisoning later checks. *)
                t.conflict_core <- analyze_final t a;
                proof_add t (List.map Lit.negate t.conflict_core);
                result := Some Unsat
              | _ ->
                Stp_util.Vec.push t.trail_lim (Stp_util.Vec.length t.trail);
                enqueue t a None
            end
            else begin
              match decide t with
              | None -> result := Some Sat
              | Some v ->
                t.n_decisions <- t.n_decisions + 1;
                let phase = t.saved_phase.(v) in
                let l = (2 * v) + if phase then 0 else 1 in
                Stp_util.Vec.push t.trail_lim (Stp_util.Vec.length t.trail);
                enqueue t l None
            end
          end
      done;
      (match !result with
       | Some Sat -> () (* keep the model readable via [value] *)
       | _ -> cancel_until t 0);
      let r = match !result with Some r -> r | None -> assert false in
      flush_totals t r;
      r
    end
  end

let unsat_core t = t.conflict_core

let value t v =
  if v < 0 || v >= t.nvars then invalid_arg "Solver.value";
  t.assigns.(v) = 0

let okay t = t.ok

let stats t =
  { decisions = t.n_decisions;
    propagations = t.n_propagations;
    conflicts = t.n_conflicts;
    restarts = t.n_restarts;
    learned = t.n_learned;
    learned_core = t.n_core;
    learned_local = Stp_util.Vec.length t.learnts - t.n_core;
    reductions = t.n_reductions;
    deleted = t.n_deleted;
    retired = t.n_retired }
