(* Conflict-driven clause learning, after MiniSat.  Watched literals are
   clause slots 0 and 1; a clause sits in the watch list of each watched
   literal and the list for literal [l] is visited when [l] becomes
   false. *)

type clause = {
  mutable lits : int array;
  mutable activity : float;
  learnt : bool;
  mutable deleted : bool;
}

type result = Sat | Unsat | Unknown

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  restarts : int;
  learned : int;
}

(* lbool encoding in [assigns]: 0 = true, 1 = false, 2 = undefined. *)
let l_undef = 2

type t = {
  mutable nvars : int;
  mutable assigns : int array;      (* per var *)
  mutable levels : int array;       (* per var *)
  mutable reasons : clause option array; (* per var *)
  mutable saved_phase : bool array; (* per var *)
  mutable acts : float array;       (* per var *)
  mutable watches : clause Stp_util.Vec.t array; (* per literal *)
  order : Order.t Lazy.t;
  trail : int Stp_util.Vec.t;       (* literals in assignment order *)
  trail_lim : int Stp_util.Vec.t;
  mutable qhead : int;
  clauses : clause Stp_util.Vec.t;  (* problem clauses *)
  learnts : clause Stp_util.Vec.t;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable ok : bool;
  mutable max_learnts : float;
  (* statistics *)
  mutable n_decisions : int;
  mutable n_propagations : int;
  mutable n_conflicts : int;
  mutable n_restarts : int;
  mutable n_learned : int;
  (* scratch for analysis *)
  mutable seen : bool array;
}

let dummy_clause = { lits = [||]; activity = 0.0; learnt = false; deleted = true }

let create () =
  let rec t =
    { nvars = 0;
      assigns = Array.make 64 l_undef;
      levels = Array.make 64 0;
      reasons = Array.make 64 None;
      saved_phase = Array.make 64 false;
      acts = Array.make 64 0.0;
      watches = Array.init 128 (fun _ -> Stp_util.Vec.create ~dummy:dummy_clause ());
      order = lazy (Order.create ~activity:(fun v -> t.acts.(v)));
      trail = Stp_util.Vec.create ~dummy:(-1) ();
      trail_lim = Stp_util.Vec.create ~dummy:(-1) ();
      qhead = 0;
      clauses = Stp_util.Vec.create ~dummy:dummy_clause ();
      learnts = Stp_util.Vec.create ~dummy:dummy_clause ();
      var_inc = 1.0;
      cla_inc = 1.0;
      ok = true;
      max_learnts = 0.0;
      n_decisions = 0;
      n_propagations = 0;
      n_conflicts = 0;
      n_restarts = 0;
      n_learned = 0;
      seen = Array.make 64 false }
  in
  t

let num_vars t = t.nvars

let grow_arrays t =
  let n = Array.length t.assigns in
  let n' = 2 * n in
  let copy_arr a fill =
    let a' = Array.make n' fill in
    Array.blit a 0 a' 0 n;
    a'
  in
  t.assigns <- copy_arr t.assigns l_undef;
  t.levels <- copy_arr t.levels 0;
  t.reasons <- copy_arr t.reasons None;
  t.saved_phase <- copy_arr t.saved_phase false;
  t.acts <- copy_arr t.acts 0.0;
  t.seen <- copy_arr t.seen false;
  let w = Array.init (2 * n') (fun i ->
      if i < Array.length t.watches then t.watches.(i)
      else Stp_util.Vec.create ~dummy:dummy_clause ())
  in
  t.watches <- w

let new_var t =
  if t.nvars >= Array.length t.assigns then grow_arrays t;
  let v = t.nvars in
  t.nvars <- v + 1;
  Order.insert (Lazy.force t.order) v;
  v

(* Value of a literal: 0 true, 1 false, 2 undefined. *)
let lit_value t l =
  let a = t.assigns.(l lsr 1) in
  if a = l_undef then l_undef else a lxor (l land 1)

let decision_level t = Stp_util.Vec.length t.trail_lim

let var_bump t v =
  t.acts.(v) <- t.acts.(v) +. t.var_inc;
  if t.acts.(v) > 1e100 then begin
    for i = 0 to t.nvars - 1 do
      t.acts.(i) <- t.acts.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  Order.update (Lazy.force t.order) v

let var_decay t = t.var_inc <- t.var_inc /. 0.95

let cla_bump t c =
  c.activity <- c.activity +. t.cla_inc;
  if c.activity > 1e20 then begin
    Stp_util.Vec.iter (fun c -> c.activity <- c.activity *. 1e-20) t.learnts;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

let cla_decay t = t.cla_inc <- t.cla_inc /. 0.999

let enqueue t l reason =
  let v = l lsr 1 in
  t.assigns.(v) <- l land 1;
  t.levels.(v) <- decision_level t;
  t.reasons.(v) <- reason;
  t.saved_phase.(v) <- l land 1 = 0;
  Stp_util.Vec.push t.trail l

let attach_clause t c =
  Stp_util.Vec.push t.watches.(c.lits.(0)) c;
  Stp_util.Vec.push t.watches.(c.lits.(1)) c

(* Propagate all enqueued facts; return the conflicting clause or None. *)
let propagate t =
  let conflict = ref None in
  while !conflict = None && t.qhead < Stp_util.Vec.length t.trail do
    let p = Stp_util.Vec.get t.trail t.qhead in
    t.qhead <- t.qhead + 1;
    t.n_propagations <- t.n_propagations + 1;
    let false_lit = p lxor 1 in
    let ws = t.watches.(false_lit) in
    let n = Stp_util.Vec.length ws in
    let keep = ref 0 in
    let i = ref 0 in
    while !i < n do
      let c = Stp_util.Vec.get ws !i in
      incr i;
      if c.deleted then ()
      else begin
        (* Ensure the falsified literal is slot 1. *)
        if c.lits.(0) = false_lit then begin
          c.lits.(0) <- c.lits.(1);
          c.lits.(1) <- false_lit
        end;
        let first = c.lits.(0) in
        if lit_value t first = 0 then begin
          (* Clause already satisfied: keep the watch. *)
          Stp_util.Vec.set ws !keep c;
          incr keep
        end
        else begin
          (* Look for a new literal to watch. *)
          let len = Array.length c.lits in
          let rec find k = if k >= len then -1
            else if lit_value t c.lits.(k) <> 1 then k
            else find (k + 1)
          in
          let k = find 2 in
          if k >= 0 then begin
            c.lits.(1) <- c.lits.(k);
            c.lits.(k) <- false_lit;
            Stp_util.Vec.push t.watches.(c.lits.(1)) c
            (* watch moved: do not keep *)
          end
          else if lit_value t first = 1 then begin
            (* Conflict: restore remaining watches and stop. *)
            Stp_util.Vec.set ws !keep c;
            incr keep;
            while !i < n do
              Stp_util.Vec.set ws !keep (Stp_util.Vec.get ws !i);
              incr keep;
              incr i
            done;
            conflict := Some c;
            t.qhead <- Stp_util.Vec.length t.trail
          end
          else begin
            (* Unit: enqueue first. *)
            Stp_util.Vec.set ws !keep c;
            incr keep;
            enqueue t first (Some c)
          end
        end
      end
    done;
    Stp_util.Vec.shrink ws !keep
  done;
  !conflict

let cancel_until t level =
  if decision_level t > level then begin
    let bound = Stp_util.Vec.get t.trail_lim level in
    for i = Stp_util.Vec.length t.trail - 1 downto bound do
      let l = Stp_util.Vec.get t.trail i in
      let v = l lsr 1 in
      t.assigns.(v) <- l_undef;
      t.reasons.(v) <- None;
      Order.insert (Lazy.force t.order) v
    done;
    Stp_util.Vec.shrink t.trail bound;
    Stp_util.Vec.shrink t.trail_lim level;
    t.qhead <- bound
  end

(* First-UIP conflict analysis.  Returns (learnt clause lits with the
   asserting literal first, backtrack level). *)
let analyze t conflict =
  let learnt = ref [] in
  let seen = t.seen in
  let counter = ref 0 in
  let p = ref (-1) in
  let confl = ref (Some conflict) in
  let index = ref (Stp_util.Vec.length t.trail - 1) in
  let continue = ref true in
  while !continue do
    (match !confl with
     | None -> assert false
     | Some c ->
       if c.learnt then cla_bump t c;
       let start = if !p = -1 then 0 else 1 in
       for j = start to Array.length c.lits - 1 do
         let q = c.lits.(j) in
         let v = q lsr 1 in
         if (not seen.(v)) && t.levels.(v) > 0 then begin
           var_bump t v;
           seen.(v) <- true;
           if t.levels.(v) >= decision_level t then incr counter
           else learnt := q :: !learnt
         end
       done);
    (* Select next literal to look at. *)
    let rec next () =
      let l = Stp_util.Vec.get t.trail !index in
      decr index;
      if seen.(l lsr 1) then l else next ()
    in
    let l = next () in
    let v = l lsr 1 in
    seen.(v) <- false;
    confl := t.reasons.(v);
    p := l;
    decr counter;
    if !counter <= 0 then continue := false
  done;
  let asserting = !p lxor 1 in
  (* Clause minimisation: drop literals implied by the rest. *)
  List.iter (fun q -> t.seen.(q lsr 1) <- true) !learnt;
  let redundant q =
    match t.reasons.(q lsr 1) with
    | None -> false
    | Some c ->
      Array.for_all
        (fun r ->
          r = (q lxor 1) || t.seen.(r lsr 1) || t.levels.(r lsr 1) = 0)
        c.lits
  in
  let minimised = List.filter (fun q -> not (redundant q)) !learnt in
  List.iter (fun q -> t.seen.(q lsr 1) <- false) !learnt;
  let lits = asserting :: minimised in
  let btlevel =
    List.fold_left (fun acc q -> max acc t.levels.(q lsr 1)) 0 minimised
  in
  (Array.of_list lits, btlevel)

let record_learnt t lits =
  t.n_learned <- t.n_learned + 1;
  if Array.length lits = 1 then begin
    cancel_until t 0;
    if lit_value t lits.(0) = l_undef then enqueue t lits.(0) None
    else if lit_value t lits.(0) = 1 then t.ok <- false
  end
  else begin
    let c = { lits; activity = 0.0; learnt = true; deleted = false } in
    (* Slot 1 must hold the literal of the backtrack level so that the
       watch invariant holds after backjumping: pick the highest-level
       literal among lits[1..]. *)
    let best = ref 1 in
    for j = 2 to Array.length lits - 1 do
      if t.levels.(lits.(j) lsr 1) > t.levels.(lits.(!best) lsr 1) then best := j
    done;
    let tmp = lits.(1) in
    lits.(1) <- lits.(!best);
    lits.(!best) <- tmp;
    attach_clause t c;
    Stp_util.Vec.push t.learnts c;
    cla_bump t c;
    enqueue t lits.(0) (Some c)
  end

let locked t c =
  Array.length c.lits > 0
  &&
  let v = c.lits.(0) lsr 1 in
  match t.reasons.(v) with Some r -> r == c | None -> false

let reduce_db t =
  let learnts = Stp_util.Vec.to_array t.learnts in
  Array.sort (fun a b -> Float.compare a.activity b.activity) learnts;
  let n = Array.length learnts in
  let limit = n / 2 in
  Array.iteri
    (fun i c ->
      if i < limit && Array.length c.lits > 2 && not (locked t c) then
        c.deleted <- true)
    learnts;
  Stp_util.Vec.clear t.learnts;
  Array.iter (fun c -> if not c.deleted then Stp_util.Vec.push t.learnts c) learnts

let add_clause t lits =
  if t.ok then begin
    cancel_until t 0;
    (* Simplify: sort, drop duplicates, detect tautologies and false
       literals at level 0. *)
    let lits = List.sort_uniq Stdlib.compare lits in
    let tautology =
      List.exists (fun l -> List.mem (l lxor 1) lits) lits
    in
    if not tautology then begin
      let lits =
        List.filter
          (fun l ->
            if l lsr 1 >= t.nvars then invalid_arg "Solver.add_clause: unknown var";
            lit_value t l <> 1)
          lits
      in
      if List.exists (fun l -> lit_value t l = 0) lits then ()
      else
        match lits with
        | [] -> t.ok <- false
        | [ l ] ->
          enqueue t l None;
          if propagate t <> None then t.ok <- false
        | _ ->
          let c =
            { lits = Array.of_list lits; activity = 0.0; learnt = false;
              deleted = false }
          in
          attach_clause t c;
          Stp_util.Vec.push t.clauses c
    end
  end

(* The Luby restart sequence 1 1 2 1 1 2 4 ... (MiniSat's formulation). *)
let luby x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  float_of_int (1 lsl !seq)

let decide t =
  let order = Lazy.force t.order in
  let rec loop () =
    match Order.pop_max order with
    | None -> None
    | Some v -> if t.assigns.(v) = l_undef then Some v else loop ()
  in
  loop ()

let solve ?(assumptions = []) ?(deadline = Stp_util.Deadline.never)
    ?(conflict_budget = max_int) t =
  if not t.ok then Unsat
  else begin
    cancel_until t 0;
    (match propagate t with
     | Some _ -> t.ok <- false
     | None -> ());
    if not t.ok then Unsat
    else begin
      let assumptions = Array.of_list assumptions in
      t.max_learnts <-
        Float.max 1000.0 (float_of_int (Stp_util.Vec.length t.clauses) /. 3.0);
      let budget = ref conflict_budget in
      let result = ref None in
      let restart_count = ref 0 in
      (* Conflicts allowed before the next restart. *)
      let next_restart = ref (int_of_float (100.0 *. luby !restart_count)) in
      let conflicts_since_restart = ref 0 in
      while !result = None do
        match propagate t with
        | Some conflict ->
          t.n_conflicts <- t.n_conflicts + 1;
          incr conflicts_since_restart;
          decr budget;
          if decision_level t = 0 then begin
            t.ok <- false;
            result := Some Unsat
          end
          else begin
            (* Backtracking may land inside the assumption prefix; the
               decision loop then re-pushes the assumptions, which either
               succeed or expose their inconsistency as Unsat. *)
            let learnt, btlevel = analyze t conflict in
            cancel_until t btlevel;
            record_learnt t learnt;
            if not t.ok then result := Some Unsat;
            var_decay t;
            cla_decay t;
            if !budget <= 0 then result := Some Unknown
            else if Stp_util.Deadline.expired deadline then result := Some Unknown
            else if
              float_of_int (Stp_util.Vec.length t.learnts) >= t.max_learnts
            then begin
              reduce_db t;
              t.max_learnts <- t.max_learnts *. 1.3
            end
          end
        | None ->
          if !conflicts_since_restart >= !next_restart then begin
            conflicts_since_restart := 0;
            incr restart_count;
            t.n_restarts <- t.n_restarts + 1;
            next_restart := int_of_float (100.0 *. luby !restart_count);
            cancel_until t 0
          end
          else if Stp_util.Deadline.expired deadline then result := Some Unknown
          else begin
            (* Extend with assumptions first, then decide. *)
            let dl = decision_level t in
            if dl < Array.length assumptions then begin
              let a = assumptions.(dl) in
              if a lsr 1 >= t.nvars then invalid_arg "Solver.solve: unknown var";
              match lit_value t a with
              | 0 ->
                (* already satisfied: open an empty decision level *)
                Stp_util.Vec.push t.trail_lim (Stp_util.Vec.length t.trail)
              | 1 -> result := Some Unsat
              | _ ->
                Stp_util.Vec.push t.trail_lim (Stp_util.Vec.length t.trail);
                enqueue t a None
            end
            else begin
              match decide t with
              | None -> result := Some Sat
              | Some v ->
                t.n_decisions <- t.n_decisions + 1;
                let phase = t.saved_phase.(v) in
                let l = (2 * v) + if phase then 0 else 1 in
                Stp_util.Vec.push t.trail_lim (Stp_util.Vec.length t.trail);
                enqueue t l None
            end
          end
      done;
      (match !result with
       | Some Sat -> () (* keep the model readable via [value] *)
       | _ -> cancel_until t 0);
      match !result with Some r -> r | None -> assert false
    end
  end

let value t v =
  if v < 0 || v >= t.nvars then invalid_arg "Solver.value";
  t.assigns.(v) = 0

let okay t = t.ok

let stats t =
  { decisions = t.n_decisions;
    propagations = t.n_propagations;
    conflicts = t.n_conflicts;
    restarts = t.n_restarts;
    learned = t.n_learned }
