(** An incremental CDCL SAT solver.

    Conflict-driven clause learning with two-watched-literal propagation
    (blocking literals on the watch lists, binary clauses inlined into
    the watcher), VSIDS variable activities, phase saving, Luby
    restarts, first-UIP conflict analysis with recursive clause
    minimisation, and a two-tier learnt-clause database managed by LBD:
    glue clauses (LBD <= 2) are never deleted, the local tier is reduced
    by LBD-then-activity.

    The solver is {e incremental}: variables and clauses may be added
    freely between [solve] calls (the trail is unwound to level 0 on new
    input), learnt clauses, activities and saved phases survive across
    calls, and selector literals let a caller retire whole groups of
    clauses with a single unit (see {!new_selector} / {!retire}). This
    is the substrate for the paper's SAT-based exact-synthesis
    baselines, which re-solve ever-growing encodings across gate
    budgets and fence families. *)

type t

type result = Sat | Unsat | Unknown
(** [Unknown] is returned when the deadline or conflict budget expires. *)

val create : unit -> t

val new_var : t -> int
(** Allocates a fresh variable and returns its index. May be called at
    any point, including after [solve]. *)

val num_vars : t -> int

val add_clause : t -> Lit.t list -> unit
(** Adds a clause over existing variables. Adding the empty clause (or a
    clause that simplifies to it) makes the instance trivially
    unsatisfiable. Clauses may be added between [solve] calls; the
    solver backtracks to decision level 0 to splice them in. *)

val solve :
  ?assumptions:Lit.t list ->
  ?deadline:Stp_util.Deadline.t ->
  ?conflict_budget:int ->
  t ->
  result
(** Solves under the given assumptions. After [Sat], {!value} reads the
    model; after [Unsat] under assumptions, the instance may still be
    satisfiable under different assumptions. Everything learnt is kept
    for the next call. *)

val value : t -> int -> bool
(** [value s v] is the model value of variable [v]; only meaningful
    after [solve] returned [Sat]. *)

val unsat_core : t -> Lit.t list
(** After {!solve} returned [Unsat] under assumptions: the subset of
    that solve's assumption literals actually used in the refutation
    (MiniSat's final conflict analysis). The formula refutes this
    subset on its own, so any assumption set containing it is refuted
    without a solve — the fence engine skips whole topology families
    this way. [[]] when the database is unsatisfiable outright. *)

val okay : t -> bool
(** [false] once the clause database is unconditionally unsatisfiable. *)

(** {1 Selector literals}

    An encoding layer that must be retractable — e.g. the per-budget
    output constraints of an exact-synthesis encoding — guards each of
    its clauses with the negation of a fresh selector literal and
    solves under the assumption that the selector holds. Retiring the
    selector asserts its negation as a unit, permanently satisfying
    (and reclaiming) every guarded clause, with all learnt clauses
    kept. *)

val new_selector : t -> Lit.t
(** A fresh positive literal to guard a clause group with: add clauses
    of the form [~sel :: clause], solve with [~assumptions:[sel]]. *)

val retire : t -> Lit.t -> unit
(** [retire s sel] asserts [~sel] as a unit clause and simplifies the
    database, dropping every clause the retired selector guarded. *)

val simplify : t -> unit
(** Removes clauses satisfied by the level-0 assignment. Called
    automatically by {!retire}. *)

(** {1 DRAT proofs} *)

val set_proof : t -> bool -> unit
(** Enables (or disables) DRAT proof recording; either way the recorded
    steps are cleared. Enable before the first [solve] so the proof
    covers every learnt clause. *)

val proof : t -> Drat.step list
(** The recorded steps, oldest first. After an [Unsat] answer the
    cumulative proof (checked against every clause added so far, plus
    that solve's assumptions) certifies unsatisfiability — see
    {!Drat.check}. *)

(** {1 Statistics} *)

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  restarts : int;
  learned : int;         (** learnt clauses recorded, cumulative *)
  learned_core : int;    (** live glue (LBD <= 2) learnt clauses *)
  learned_local : int;   (** live local-tier learnt clauses *)
  reductions : int;      (** learnt-DB reduction passes *)
  deleted : int;         (** learnt clauses deleted, cumulative *)
  retired : int;         (** selectors retired *)
}

val stats : t -> stats

(** Process-wide counters summed over every solver instance, always on.
    Hot-path counters are flushed once per [solve] call, so a live
    metrics surface (the telemetry probe, [synthd] stats) can report
    SAT pressure without enabling the profiler. *)
module Totals : sig
  val snapshot : unit -> (string * int) list
  (** Pairs like [("conflicts", n)]: solvers, solves, sat, unsat,
      unknown, decisions, propagations, conflicts, restarts, learned,
      learned_core, reductions, deleted, retired. *)

  val reset : unit -> unit
end
