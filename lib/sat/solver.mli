(** A CDCL SAT solver.

    Conflict-driven clause learning with two-watched-literal propagation,
    VSIDS variable activities, phase saving, Luby restarts, first-UIP
    conflict analysis with recursive clause minimisation, and activity-
    based learned-clause deletion. Supports incremental solving under
    assumptions and cooperative wall-clock deadlines — the substrate for
    the paper's three SAT-based exact-synthesis baselines. *)

type t

type result = Sat | Unsat | Unknown
(** [Unknown] is returned when the deadline or conflict budget expires. *)

val create : unit -> t

val new_var : t -> int
(** Allocates a fresh variable and returns its index. *)

val num_vars : t -> int

val add_clause : t -> Lit.t list -> unit
(** Adds a clause over existing variables. Adding the empty clause (or a
    clause that simplifies to it) makes the instance trivially
    unsatisfiable. Clauses may be added between [solve] calls. *)

val solve :
  ?assumptions:Lit.t list ->
  ?deadline:Stp_util.Deadline.t ->
  ?conflict_budget:int ->
  t ->
  result
(** Solves under the given assumptions. After [Sat], {!value} reads the
    model; after [Unsat] under assumptions, the instance may still be
    satisfiable under different assumptions. *)

val value : t -> int -> bool
(** [value s v] is the model value of variable [v]; only meaningful
    after [solve] returned [Sat]. *)

val okay : t -> bool
(** [false] once the clause database is unconditionally unsatisfiable. *)

(** {1 Statistics} *)

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  restarts : int;
  learned : int;
}

val stats : t -> stats
