let models ?(deadline = Stp_util.Deadline.never) ?(limit = max_int) ~over solver =
  let over = Array.of_list over in
  let rec loop acc count =
    if count >= limit then Some (List.rev acc)
    else if Stp_util.Deadline.expired deadline then None
    else
      match Solver.solve ~deadline solver with
      | Solver.Unknown -> None
      | Solver.Unsat -> Some (List.rev acc)
      | Solver.Sat ->
        let projection = Array.map (fun v -> Solver.value solver v) over in
        let blocking =
          Array.to_list
            (Array.mapi
               (fun i v -> Lit.make v (not projection.(i)))
               over)
        in
        Solver.add_clause solver blocking;
        loop (projection :: acc) (count + 1)
  in
  loop [] 0
