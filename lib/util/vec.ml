type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ?(capacity = 16) ~dummy () =
  { data = Array.make (max capacity 1) dummy; len = 0; dummy }

let length v = v.len

let is_empty v = v.len = 0

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.data.(i)

let raw v = v.data

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set";
  v.data.(i) <- x

let grow v =
  let capacity = Array.length v.data in
  let data = Array.make (2 * capacity) v.dummy in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop";
  v.len <- v.len - 1;
  let x = v.data.(v.len) in
  v.data.(v.len) <- v.dummy;
  x

let top v =
  if v.len = 0 then invalid_arg "Vec.top";
  v.data.(v.len - 1)

let clear v =
  Array.fill v.data 0 v.len v.dummy;
  v.len <- 0

let shrink v n =
  if n < 0 || n > v.len then invalid_arg "Vec.shrink";
  Array.fill v.data n (v.len - n) v.dummy;
  v.len <- n

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (v.data.(i) :: acc) in
  loop (v.len - 1) []

let to_array v = Array.sub v.data 0 v.len

let of_list ~dummy xs =
  let v = create ~dummy () in
  List.iter (push v) xs;
  v

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0
