(** Wall-clock time. *)

val now : unit -> float
(** [now ()] is the current wall-clock time in seconds since the epoch. *)
