(** The repo's single time source: monotonic seconds.

    [now] reads CLOCK_MONOTONIC (via {!Profile.now_ns}) as float
    seconds from an {e arbitrary origin} — it is not the Unix epoch,
    and only differences of two reads are meaningful. Every elapsed
    measurement, deadline and wall-clock aggregate in the repo is such
    a difference, so they all share one source that never goes
    backwards under NTP adjustment. *)

val now : unit -> float
(** Monotonic time in seconds; subtract two reads for an elapsed
    duration. *)
