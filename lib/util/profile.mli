(** Lightweight cross-domain stage profiler for the STP hot path.

    One global set of counters and per-stage monotonic timers, shared
    by every domain of a run (accumulators are atomics; the timer
    nesting stack is domain-local). Profiling is off by default: every
    probe is a single [ref] read when disabled, so instrumentation can
    stay in the hot path permanently.

    Timers report {e self} time: the time spent inside a stage minus
    the time spent in nested timed stages, so a [decompose] call made
    from inside a [feasibility] check counts towards [decompose] only.
    Enable with {!set_enabled}, read with {!snapshot}; a collection
    runner resets around each run (see
    {!Stp_harness.Runner.run_collection}). *)

val now_ns : unit -> int
(** Monotonic clock (CLOCK_MONOTONIC), nanoseconds. *)

type stage =
  | Decompose    (** [Factor.decompose]: uncached factorisation search *)
  | Feasibility  (** [Factor]'s bounded-tree feasibility test *)
  | Realise      (** [Factor]'s independent-subtree realisation *)
  | Verify       (** chain dedup + circuit-SAT verification *)
  | Canonical    (** STP canonical-form construction *)

type counter =
  | Decompose_calls          (** uncached factorisation searches *)
  | Decompose_cache_hits     (** factorisations answered from the memo *)
  | Quarter_tests            (** quartering (distinct-block) tests run *)
  | Quarter_rejects          (** quartering tests that refuted a cover *)
  | Feasibility_checks       (** uncached feasibility evaluations *)
  | Feasibility_cache_hits   (** feasibility answered from the memo *)
  | Realisation_cache_hits   (** subtree realisations answered from memo *)
  | Realisation_cache_misses (** subtree realisations computed *)
  | Chains_emitted           (** candidate chains produced by the search *)
  | Chains_verified          (** chains passed to circuit-SAT verification *)
  | Cube_merges              (** pairwise cube merges in the AllSAT solver *)
  | Cube_subsumption_checks  (** cube-pair subsumption tests *)
  | Requests_received        (** synthesis requests accepted by a service *)
  | Requests_solved          (** requests answered with optimum chains *)
  | Requests_cached          (** requests answered from the NPN cache *)
  | Requests_timed_out       (** requests whose deadline expired *)
  | Requests_degraded        (** timed-out requests answered with an upper bound *)
  | Requests_failed          (** malformed or erroring requests *)
  | Learned_prunes           (** covers skipped via a learned refutation *)
  | Learned_replays          (** cover triple loops replayed from learned survivors *)
  | Quarter_cache_hits       (** quartering signatures answered from the memo *)
  | Arena_reuses             (** decompose scratch arenas reused without reallocation *)
  | Multiword_decomposes     (** factorisation searches run on the multi-word path *)
  | Multiword_kernel_calls   (** multi-word kernel ops dispatched (force/assemble/...) *)
  | Sat_solves               (** [Solver.solve] calls completed *)
  | Sat_decisions            (** CDCL decisions *)
  | Sat_propagations         (** CDCL unit propagations *)
  | Sat_conflicts            (** CDCL conflicts *)
  | Sat_restarts             (** CDCL restarts *)
  | Sat_learned              (** learnt clauses recorded *)
  | Sat_learned_core         (** learnt clauses entering the core (glue) tier *)
  | Sat_reductions           (** learnt-DB reduction passes *)
  | Sat_deleted_clauses      (** learnt clauses deleted *)
  | Sat_selectors_retired    (** budget selectors retired by a unit *)
  | Sweep_classes            (** candidate equivalence classes formed by a sweep round *)
  | Sweep_pairs_proved       (** sweep candidate pairs proven equivalent *)
  | Sweep_pairs_refuted      (** sweep candidate pairs refuted by a counterexample *)
  | Sweep_pairs_skipped      (** sweep candidate pairs abandoned on resource limits *)
  | Sweep_merges             (** nodes merged into their class representative *)
  | Sweep_cex_patterns       (** counterexample patterns fed back into simulation *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Zero every counter and timer. *)

val incr : counter -> unit
val add : counter -> int -> unit

val time : stage -> (unit -> 'a) -> 'a
(** [time stage f] runs [f], attributing its self time to [stage].
    Exceptions propagate; the elapsed time is still recorded. *)

type stage_snapshot = { stage : string; calls : int; self_s : float }

type snapshot = {
  stages : stage_snapshot list;
  counts : (string * int) list;
}

val snapshot : unit -> snapshot

val stage_name : stage -> string
val counter_name : counter -> string

val pp : Format.formatter -> snapshot -> unit
