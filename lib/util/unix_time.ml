let now () = Unix.gettimeofday ()
