(* One time source for the whole repo: CLOCK_MONOTONIC via
   Profile.now_ns, as float seconds. Every elapsed/deadline/wall-clock
   number across the binaries is a difference of these, so switching
   the source here (away from Unix.gettimeofday, which goes backwards
   under NTP adjustment) fixes every caller at once. The origin is
   arbitrary: only differences are meaningful. *)
let now () = float_of_int (Profile.now_ns ()) *. 1e-9
