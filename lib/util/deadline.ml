exception Timeout

type t =
  | Never
  | At of { limit : float; mutable countdown : int }

(* Polling granularity: consult the wall clock once per [interval] calls. *)
let interval = 256

let never = Never

let after s = At { limit = Unix_time.now () +. s; countdown = 0 }

let expired = function
  | Never -> false
  | At d ->
    if d.countdown > 0 then begin
      d.countdown <- d.countdown - 1;
      false
    end
    else begin
      d.countdown <- interval;
      Unix_time.now () > d.limit
    end

let check d = if expired d then raise Timeout

let remaining = function
  | Never -> infinity
  | At d -> Float.max 0.0 (d.limit -. Unix_time.now ())
