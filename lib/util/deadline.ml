exception Timeout

type t =
  | Never
  | At of {
      limit : float;
      interval : int;
      mutable countdown : int;
      mutable hit : bool;
    }

(* Default polling granularity: consult the wall clock once per
   [default_poll_interval] calls. *)
let default_poll_interval = 256

let never = Never

let after ?(poll_interval = default_poll_interval) s =
  if poll_interval < 1 then invalid_arg "Deadline.after: poll_interval < 1";
  At
    { limit = Unix_time.now () +. s;
      interval = poll_interval;
      countdown = 0;
      hit = false }

(* Expiry latches: the clock is monotonic, so once a poll observes the
   limit passed every later poll must agree. Without the latch a
   re-armed countdown would report "not expired" for the next
   [interval - 1] polls — callers making coarse-grained progress
   between polls (one SAT call per poll, say) could then overrun the
   deadline by hundreds of work items. *)
let expired = function
  | Never -> false
  | At d ->
    d.hit
    ||
    if d.countdown > 0 then begin
      d.countdown <- d.countdown - 1;
      false
    end
    else begin
      (* Re-arm so the clock is read once every [interval] polls;
         [interval = 1] reads it on every poll. *)
      d.countdown <- d.interval - 1;
      if Unix_time.now () > d.limit then begin
        d.hit <- true;
        true
      end
      else false
    end

let check d = if expired d then raise Timeout

let remaining = function
  | Never -> infinity
  | At d -> Float.max 0.0 (d.limit -. Unix_time.now ())
