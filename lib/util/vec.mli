(** Growable integer-indexed arrays.

    OCaml 5.1 has no [Dynarray]; the SAT solver and the synthesis engines
    need amortised O(1) push/pop with random access, so we provide a small
    polymorphic vector. The implementation never shrinks its backing
    store. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] is an empty vector. [dummy] fills unused slots of
    the backing array; it is never observable through the interface. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get v i] is the [i]-th element. Bounds-checked. *)

val raw : 'a t -> 'a array
(** The backing array, for unchecked hot-loop access. Only indices
    [< length v] hold live elements; the reference is invalidated by
    any [push] that grows the vector. The SAT solver's propagation
    loop is the intended (and only) customer. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** [pop v] removes and returns the last element.
    @raise Invalid_argument on an empty vector. *)

val top : 'a t -> 'a
(** [top v] is the last element without removing it. *)

val clear : 'a t -> unit
(** [clear v] resets the length to zero, keeping capacity. *)

val shrink : 'a t -> int -> unit
(** [shrink v n] truncates [v] to its first [n] elements;
    [n <= length v]. *)

val iter : ('a -> unit) -> 'a t -> unit

val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b

val to_list : 'a t -> 'a list

val to_array : 'a t -> 'a array

val of_list : dummy:'a -> 'a list -> 'a t

val exists : ('a -> bool) -> 'a t -> bool
