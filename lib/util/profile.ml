external now_ns : unit -> int = "stp_profile_now_ns" [@@noalloc]

type stage = Decompose | Feasibility | Realise | Verify | Canonical

let num_stages = 5

let stage_index = function
  | Decompose -> 0
  | Feasibility -> 1
  | Realise -> 2
  | Verify -> 3
  | Canonical -> 4

let stage_name = function
  | Decompose -> "decompose"
  | Feasibility -> "feasibility"
  | Realise -> "realise"
  | Verify -> "verify"
  | Canonical -> "canonical"

let all_stages = [ Decompose; Feasibility; Realise; Verify; Canonical ]

type counter =
  | Decompose_calls
  | Decompose_cache_hits
  | Quarter_tests
  | Quarter_rejects
  | Feasibility_checks
  | Feasibility_cache_hits
  | Realisation_cache_hits
  | Realisation_cache_misses
  | Chains_emitted
  | Chains_verified
  | Cube_merges
  | Cube_subsumption_checks
  | Requests_received
  | Requests_solved
  | Requests_cached
  | Requests_timed_out
  | Requests_degraded
  | Requests_failed
  | Learned_prunes
  | Learned_replays
  | Quarter_cache_hits
  | Arena_reuses
  | Multiword_decomposes
  | Multiword_kernel_calls
  | Sat_solves
  | Sat_decisions
  | Sat_propagations
  | Sat_conflicts
  | Sat_restarts
  | Sat_learned
  | Sat_learned_core
  | Sat_reductions
  | Sat_deleted_clauses
  | Sat_selectors_retired
  | Sweep_classes
  | Sweep_pairs_proved
  | Sweep_pairs_refuted
  | Sweep_pairs_skipped
  | Sweep_merges
  | Sweep_cex_patterns

let num_counters = 40

let counter_index = function
  | Decompose_calls -> 0
  | Decompose_cache_hits -> 1
  | Quarter_tests -> 2
  | Quarter_rejects -> 3
  | Feasibility_checks -> 4
  | Feasibility_cache_hits -> 5
  | Realisation_cache_hits -> 6
  | Realisation_cache_misses -> 7
  | Chains_emitted -> 8
  | Chains_verified -> 9
  | Cube_merges -> 10
  | Cube_subsumption_checks -> 11
  | Requests_received -> 12
  | Requests_solved -> 13
  | Requests_cached -> 14
  | Requests_timed_out -> 15
  | Requests_degraded -> 16
  | Requests_failed -> 17
  | Learned_prunes -> 18
  | Learned_replays -> 19
  | Quarter_cache_hits -> 20
  | Arena_reuses -> 21
  | Multiword_decomposes -> 22
  | Multiword_kernel_calls -> 23
  | Sat_solves -> 24
  | Sat_decisions -> 25
  | Sat_propagations -> 26
  | Sat_conflicts -> 27
  | Sat_restarts -> 28
  | Sat_learned -> 29
  | Sat_learned_core -> 30
  | Sat_reductions -> 31
  | Sat_deleted_clauses -> 32
  | Sat_selectors_retired -> 33
  | Sweep_classes -> 34
  | Sweep_pairs_proved -> 35
  | Sweep_pairs_refuted -> 36
  | Sweep_pairs_skipped -> 37
  | Sweep_merges -> 38
  | Sweep_cex_patterns -> 39

let counter_name = function
  | Decompose_calls -> "decompose_calls"
  | Decompose_cache_hits -> "decompose_cache_hits"
  | Quarter_tests -> "quarter_tests"
  | Quarter_rejects -> "quarter_rejects"
  | Feasibility_checks -> "feasibility_checks"
  | Feasibility_cache_hits -> "feasibility_cache_hits"
  | Realisation_cache_hits -> "realisation_cache_hits"
  | Realisation_cache_misses -> "realisation_cache_misses"
  | Chains_emitted -> "chains_emitted"
  | Chains_verified -> "chains_verified"
  | Cube_merges -> "cube_merges"
  | Cube_subsumption_checks -> "cube_subsumption_checks"
  | Requests_received -> "requests_received"
  | Requests_solved -> "requests_solved"
  | Requests_cached -> "requests_cached"
  | Requests_timed_out -> "requests_timed_out"
  | Requests_degraded -> "requests_degraded"
  | Requests_failed -> "requests_failed"
  | Learned_prunes -> "learned_prunes"
  | Learned_replays -> "learned_replays"
  | Quarter_cache_hits -> "quarter_cache_hits"
  | Arena_reuses -> "arena_reuses"
  | Multiword_decomposes -> "multiword_decomposes"
  | Multiword_kernel_calls -> "multiword_kernel_calls"
  | Sat_solves -> "sat_solves"
  | Sat_decisions -> "sat_decisions"
  | Sat_propagations -> "sat_propagations"
  | Sat_conflicts -> "sat_conflicts"
  | Sat_restarts -> "sat_restarts"
  | Sat_learned -> "sat_learned"
  | Sat_learned_core -> "sat_learned_core"
  | Sat_reductions -> "sat_reductions"
  | Sat_deleted_clauses -> "sat_deleted_clauses"
  | Sat_selectors_retired -> "sat_selectors_retired"
  | Sweep_classes -> "sweep_classes"
  | Sweep_pairs_proved -> "sweep_pairs_proved"
  | Sweep_pairs_refuted -> "sweep_pairs_refuted"
  | Sweep_pairs_skipped -> "sweep_pairs_skipped"
  | Sweep_merges -> "sweep_merges"
  | Sweep_cex_patterns -> "sweep_cex_patterns"

let all_counters =
  [ Decompose_calls; Decompose_cache_hits; Quarter_tests; Quarter_rejects;
    Feasibility_checks; Feasibility_cache_hits; Realisation_cache_hits;
    Realisation_cache_misses; Chains_emitted; Chains_verified; Cube_merges;
    Cube_subsumption_checks; Requests_received; Requests_solved;
    Requests_cached; Requests_timed_out; Requests_degraded; Requests_failed;
    Learned_prunes; Learned_replays; Quarter_cache_hits; Arena_reuses;
    Multiword_decomposes; Multiword_kernel_calls; Sat_solves; Sat_decisions;
    Sat_propagations; Sat_conflicts; Sat_restarts; Sat_learned;
    Sat_learned_core; Sat_reductions; Sat_deleted_clauses;
    Sat_selectors_retired; Sweep_classes; Sweep_pairs_proved;
    Sweep_pairs_refuted; Sweep_pairs_skipped; Sweep_merges;
    Sweep_cex_patterns ]

(* Cross-domain accumulators. Parallel collection runs fan instances
   over domains; counters and timers sum over all of them. *)
let counters = Array.init num_counters (fun _ -> Atomic.make 0)
let stage_calls = Array.init num_stages (fun _ -> Atomic.make 0)
let stage_self_ns = Array.init num_stages (fun _ -> Atomic.make 0)

let enabled_flag = ref false

let enabled () = !enabled_flag

let set_enabled b = enabled_flag := b

let reset () =
  Array.iter (fun a -> Atomic.set a 0) counters;
  Array.iter (fun a -> Atomic.set a 0) stage_calls;
  Array.iter (fun a -> Atomic.set a 0) stage_self_ns

let incr c =
  if !enabled_flag then
    ignore (Atomic.fetch_and_add counters.(counter_index c) 1)

let add c n =
  if !enabled_flag && n <> 0 then
    ignore (Atomic.fetch_and_add counters.(counter_index c) n)

(* Exclusive (self) time per stage: a per-domain stack of frames; each
   frame accumulates the time of its nested stage calls, which is
   subtracted from the enclosing stage's elapsed time. *)
type frame = { mutable child_ns : int }

let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let time stage f =
  if not !enabled_flag then f ()
  else begin
    let idx = stage_index stage in
    let stack = Domain.DLS.get stack_key in
    let frame = { child_ns = 0 } in
    stack := frame :: !stack;
    let t0 = now_ns () in
    let finish () =
      let dt = now_ns () - t0 in
      (match !stack with
       | _ :: tl ->
         stack := tl;
         (match tl with
          | parent :: _ -> parent.child_ns <- parent.child_ns + dt
          | [] -> ())
       | [] -> ());
      ignore (Atomic.fetch_and_add stage_self_ns.(idx) (dt - frame.child_ns));
      ignore (Atomic.fetch_and_add stage_calls.(idx) 1)
    in
    match f () with
    | r ->
      finish ();
      r
    | exception e ->
      finish ();
      raise e
  end

type stage_snapshot = { stage : string; calls : int; self_s : float }

type snapshot = {
  stages : stage_snapshot list;
  counts : (string * int) list;
}

let snapshot () =
  { stages =
      List.map
        (fun s ->
          let i = stage_index s in
          { stage = stage_name s;
            calls = Atomic.get stage_calls.(i);
            self_s = float_of_int (Atomic.get stage_self_ns.(i)) /. 1e9 })
        all_stages;
    counts =
      List.map
        (fun c -> (counter_name c, Atomic.get counters.(counter_index c)))
        all_counters }

let pp fmt s =
  Format.fprintf fmt "@[<v>";
  Format.fprintf fmt "%-14s %12s %12s@," "stage" "calls" "self (s)";
  List.iter
    (fun st ->
      Format.fprintf fmt "%-14s %12d %12.3f@," st.stage st.calls st.self_s)
    s.stages;
  List.iter
    (fun (name, v) -> Format.fprintf fmt "%-28s %12d@," name v)
    s.counts;
  Format.fprintf fmt "@]"
