#include <caml/mlvalues.h>
#include <time.h>

/* CLOCK_MONOTONIC nanoseconds as an OCaml int (63 bits: wraps after
   ~146 years of uptime). Used for per-stage profiling timers, where
   Unix.gettimeofday would go backwards under NTP adjustment. */
CAMLprim value stp_profile_now_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((long)ts.tv_sec * 1000000000L + (long)ts.tv_nsec);
}
