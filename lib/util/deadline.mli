(** Cooperative wall-clock deadlines.

    Long-running solvers poll a deadline at loop boundaries and abandon the
    search when it has expired, which is how the reproduction implements
    the paper's per-instance timeout without threads or signals. *)

type t

val never : t
(** A deadline that never expires. *)

val after : float -> t
(** [after s] expires [s] seconds from now. *)

val expired : t -> bool
(** [expired d] is [true] once the wall clock has passed [d]. The check is
    throttled internally so it is cheap to call in tight loops. *)

val check : t -> unit
(** [check d] raises {!Timeout} if [d] has expired. *)

val remaining : t -> float
(** [remaining d] is the number of seconds left (infinite for {!never}). *)

exception Timeout
