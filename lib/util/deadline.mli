(** Cooperative wall-clock deadlines.

    Long-running solvers poll a deadline at loop boundaries and abandon the
    search when it has expired, which is how the reproduction implements
    the paper's per-instance timeout without threads or signals.

    Monotonicity note: every time read goes through {!Unix_time.now},
    which is CLOCK_MONOTONIC (via {!Profile.now_ns}) — a deadline is
    immune to NTP adjustments and manual clock resets. It is still a
    cooperative bound, not a hard real-time one: expiry is only observed
    when the solver polls. *)

type t

val never : t
(** A deadline that never expires. *)

val after : ?poll_interval:int -> float -> t
(** [after s] expires [s] seconds from now.

    [poll_interval] is the throttle of {!expired}/{!check}: the wall
    clock is consulted once per [poll_interval] calls (default
    {!default_poll_interval}). Tests pass [~poll_interval:1] so expiry
    is observable on the very next poll without spinning thousands of
    calls or sleeping.
    @raise Invalid_argument when [poll_interval < 1]. *)

val default_poll_interval : int
(** Polls between two wall-clock reads when [after] is not told
    otherwise (256). *)

val expired : t -> bool
(** [expired d] is [true] once the wall clock has passed [d]. The check is
    throttled internally (see {!after}) so it is cheap to call in tight
    loops; consequently expiry may be reported up to [poll_interval - 1]
    calls late, never early. Expiry latches: once [expired] has
    returned [true] it returns [true] forever, even on the polls the
    throttle would otherwise answer without reading the clock. *)

val check : t -> unit
(** [check d] raises {!Timeout} if [d] has expired. *)

val remaining : t -> float
(** [remaining d] is the number of seconds left (infinite for {!never});
    unlike {!expired} this always reads the clock. *)

exception Timeout
