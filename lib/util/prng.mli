(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the reproduction (workload generators,
    randomised tests) draws from this generator so that runs are exactly
    reproducible from a seed, independently of the OCaml stdlib [Random]
    state. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from a 63-bit seed. *)

val copy : t -> t
(** [copy g] is an independent generator with the same state as [g]. *)

val next_int64 : t -> int64
(** [next_int64 g] draws 64 uniformly random bits. *)

val int : t -> int -> int
(** [int g bound] draws uniformly in [\[0, bound)]. [bound] must be
    positive. *)

val bits : t -> int -> int
(** [bits g k] draws [k] uniformly random bits, [0 <= k <= 62]. *)

val bool : t -> bool
(** [bool g] draws a fair coin flip. *)

val float : t -> float
(** [float g] draws uniformly in [\[0, 1)]. *)

val shuffle : t -> 'a array -> unit
(** [shuffle g a] permutes [a] in place, uniformly at random. *)

val pick : t -> 'a array -> 'a
(** [pick g a] draws a uniformly random element of the non-empty array
    [a]. *)

val split : t -> t
(** [split g] derives an independent child generator, advancing [g]. *)
