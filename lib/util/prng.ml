type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let bits g k =
  assert (k >= 0 && k <= 62);
  if k = 0 then 0
  else Int64.to_int (Int64.shift_right_logical (next_int64 g) (64 - k))

let int g bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let rec loop () =
    let r = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2) in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then loop () else v
  in
  loop ()

let bool g = Int64.compare (next_int64 g) 0L < 0

let float g =
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 g) 11) in
  float_of_int r *. (1.0 /. 9007199254740992.0)

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g a =
  assert (Array.length a > 0);
  a.(int g (Array.length a))

let split g = { state = mix (next_int64 g) }
