(** Batch synthesis daemon: truth tables in, optimum 2-LUT chains out.

    The daemon serves a JSON-lines protocol over stdin/stdout or a Unix
    domain socket. One request per line:

    {v
    {"id": 1, "n": 4, "tt": "8ff8", "timeout": 2.0, "engine": "STP"}
    v}

    - [id] (any JSON value, optional) is echoed back verbatim so
      clients can match pipelined responses to requests.
    - [n] and [tt] give the target as an arity and a hex truth table
      (the format of {!Stp_tt.Tt.of_hex}).
    - [timeout] (seconds, optional) overrides the daemon's default
      per-request deadline.
    - [engine] (optional, default ["STP"]) picks any engine of
      {!Stp_synth.Engine.all} by name, case-insensitively.

    One response per request, in request order:

    {v
    {"id": 1, "status": "solved", "gates": 3, "chains": ["x5=6(x1,x2); ..."],
     "source": "solver", "elapsed_s": 0.004}
    v}

    [status] is ["solved"] (optimum chains), ["upper_bound"] (the
    deadline expired; [chains] holds one verified non-optimal chain
    from {!Stp_synth.Baselines.upper_bound} — graceful degradation),
    ["infeasible"] (no chain within the gate budget; constants),
    ["timeout"] (deadline expired and no upper bound exists), or
    ["error"] (malformed request; see the [error] field). [source]
    attributes an answer to ["cache"], ["solver"] or ["upper_bound"].

    Requests are batched: every complete line already buffered is fanned
    out over a {!Stp_parallel.Pool} together, so pipelined clients get
    core-parallel synthesis while responses stay in request order. Each
    engine consults its own NPN-class cache, seeded from the optional
    persistent {!Store} and absorbed back after every batch; the store
    is flushed (atomic rename) after each batch and on shutdown, so a
    SIGTERM mid-batch never loses previously flushed classes.

    Two control request types bypass synthesis (satisfying [n]/[tt] is
    not required):

    - [{"type": "ping"}] answers with [status = "pong"], the protocol
      {!version}, [uptime_s] and the store path (or [null]) — a cheap
      liveness probe.
    - [{"type": "stats"}] answers with [status = "ok"], uptime, total
      request/batch counts, the store persistence stats, and the full
      {!Stp_telemetry.Telemetry.snapshot_json} — including the
      [synthd/source/*] latency histograms (one per answer provenance:
      [solver], [cache], [degraded], [timeout]) and [synthd/batch],
      each with populated p50/p90/p99.

    SIGTERM and SIGINT request an orderly shutdown: the current batch
    finishes, caches are absorbed, the store is flushed, and {!serve}
    returns. The [Requests_*] counters of {!Stp_util.Profile} count
    received/solved/cached/timed-out/degraded/failed requests;
    {!serve} additionally enables telemetry metrics unconditionally and
    records every request under a {!Stp_telemetry.Trace} span when
    tracing is on. With [heartbeat_s > 0] the daemon prints a one-line
    status to stderr whenever it has been idle that long. *)

type persist =
  | Rewrite
      (** full atomic {!Store.flush} after every batch — simple and
          crash-proof, O(store) per batch *)
  | Append of { compact_dead_bytes : int }
      (** {!Store.append} the batch's new classes (O(new) per batch),
          and {!Store.compact} whenever the file carries at least
          [compact_dead_bytes] dead bytes ([<= 0] never compacts) —
          the mode the sharded service runs its long-lived workers
          in *)

type config = {
  jobs : int;          (** domains for batch fan-out (>= 1) *)
  timeout : float;     (** default per-request deadline, seconds *)
  store : Store.t option;  (** persistent cache store, if any *)
  socket : string;     (** Unix socket path; [""] serves stdin/stdout *)
  no_npn_cache : bool; (** disable the NPN cache (every request solves) *)
  heartbeat_s : float; (** idle seconds between stderr heartbeats;
                           [<= 0] disables *)
  persist : persist;   (** how each batch's classes reach the disk *)
}

val default_config : config
(** [jobs = 1], [timeout = 5.0], no store, stdio, cache enabled, no
    heartbeat, [Rewrite] persistence. *)

val version : string
(** Protocol version echoed by ping/stats responses. *)

val uptime_s : unit -> float
(** Seconds since the daemon process loaded this module. *)

val handle : config -> (string * Stp_synth.Npn_cache.t) list -> string -> string
(** [handle config caches line] processes one request line to one
    response line (no trailing newline) — the pure core of {!serve},
    exposed for tests. [caches] maps engine names to their caches; pass
    [[]] to solve uncached. *)

val serve :
  ?input:Unix.file_descr -> ?output:Unix.file_descr -> config -> unit
(** Run the daemon until end-of-input or SIGTERM/SIGINT. With
    [config.socket = ""], serves [input]/[output] (default stdin and
    stdout — tests pass pipes); otherwise binds the socket path,
    accepts connections sequentially, and serves each until the peer
    closes. Installs SIGTERM/SIGINT handlers for the duration and
    restores the previous ones on return. *)

val request :
  ?id:int -> ?timeout:float -> ?engine:string -> n:int -> string -> string
(** [request ~n tt_hex] formats one request line (no newline). *)

val control : ?id:int -> string -> string
(** [control ty] formats a control request line, e.g.
    [control "ping"] or [control "stats"]. *)

val client : ?attempts:int -> socket:string -> string list -> string list
(** [client ~socket lines] connects to a serving daemon, sends the
    request lines, shuts down the writing side, and returns the
    response lines — the CI smoke test's transport. The connect is
    retried with exponential backoff (up to [attempts] tries, default
    25, ~3 s worst case) on [ECONNREFUSED]/[ENOENT], so callers forked
    moments after the daemon need not poll for the socket to appear.
    @raise Unix.Unix_error when the daemon never starts listening. *)
