(** Crash-safe on-disk persistence for the NPN synthesis cache.

    A store file holds solved NPN classes — canonical truth table in,
    optimum 2-LUT chains out — partitioned into named {e sections}
    (one per engine/basis combination, since chain sets are not
    interchangeable across engines). [table1], [rewrite] and the
    [synthd] daemon all share this format via [--store]: a warm store
    answers every previously-solved class without a solver call.

    Durability discipline:

    - {b Versioned binary format} with a magic header and a per-record
      FNV-1a checksum (see DESIGN.md for the byte layout).
    - {b Atomic flush}: {!flush} serialises to a unique temp file,
      [fsync]s it, and [rename]s it over the store path — readers and
      crashes never observe a half-written store.
    - {b Corrupt-record skip-and-warn on load}: a record with a bad
      checksum or an undecodable payload is skipped (counted in
      {!stats}) and loading continues with the next record; a
      truncated tail loses only the records it cut short. A wrong
      magic abandons the file (no records load) rather than guessing.
    - Imported entries are re-validated by
      {!Stp_synth.Npn_cache.add_entry} before use, so even a
      checksum-colliding corruption cannot poison synthesis results.

    The store is mutex-protected: domains of a parallel run may
    {!absorb} and {!flush} concurrently. *)

type t

val create : path:string -> t
(** An empty store that will flush to [path]; nothing is read. *)

val load : path:string -> t
(** Read [path], skipping corrupt records. A missing file yields an
    empty store (first run); an unreadable or wrong-magic file warns on
    stderr and yields an empty store. *)

val path : t -> string

type stats = {
  classes : int;     (** records currently held, over all sections *)
  sections : int;    (** distinct section names *)
  skipped : int;     (** corrupt records skipped by {!load} *)
  flushes : int;     (** completed {!flush} calls on this handle *)
  flush_bytes : int; (** bytes written across those flushes *)
}

val stats : t -> stats

val stats_json : t -> Stp_telemetry.Json.t
(** {!stats} plus the store path as a JSON object — the shape the
    [synthd] stats response and the [--metrics] snapshot embed. *)

val attach_telemetry : t -> unit
(** Register this store as the ["store"] probe of
    {!Stp_telemetry.Telemetry.snapshot_json}. Latest call wins; stores
    are process-lifetime objects so no detach is provided. *)

type seed_stats = {
  seeded : int;         (** classes admitted into the cache *)
  seed_rejected : int;  (** classes refused by re-validation or collision *)
}

type absorb_stats = {
  absorbed : int;    (** new classes recorded into the section *)
  duplicates : int;  (** classes already present (kept, not overwritten) *)
}

val seed : t -> section:string -> Stp_synth.Npn_cache.t -> seed_stats
(** [seed t ~section cache] imports every class of [section] into
    [cache] via {!Stp_synth.Npn_cache.add_entry} (which re-validates
    chains); reports how many were admitted vs rejected. *)

val absorb : t -> section:string -> Stp_synth.Npn_cache.t -> absorb_stats
(** [absorb t ~section cache] records every class of [cache] into
    [section], keeping existing records on key collision; reports how
    many were new vs already present. Call before {!flush}. *)

val flush : t -> unit
(** Atomically persist the store to its path (write temp, fsync,
    rename). Safe to call concurrently and repeatedly; a crash between
    flushes leaves the previous complete store on disk. *)
