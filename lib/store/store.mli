(** Crash-safe on-disk persistence for the NPN synthesis cache.

    A store file holds solved NPN classes — canonical truth table in,
    optimum 2-LUT chains out — partitioned into named {e sections}
    (one per engine/basis combination, since chain sets are not
    interchangeable across engines). [table1], [rewrite] and the
    [synthd] daemon all share this format via [--store]: a warm store
    answers every previously-solved class without a solver call. The
    sharded service gives each shard its own store file (section
    contents unchanged), and {!merge_from} folds shard files back into
    one store for warm runs.

    Durability discipline:

    - {b Versioned binary format} with a magic header and a per-record
      FNV-1a checksum (see DESIGN.md for the byte layout).
    - {b Atomic flush}: {!flush} serialises to a unique temp file,
      [fsync]s it, and [rename]s it over the store path — readers and
      crashes never observe a half-written store.
    - {b Incremental append}: {!append} persists only the records added
      since the last persist, after the last complete frame — O(new)
      per call where {!flush} is O(store), so a long-running shard's
      per-batch persistence cost stays flat. A torn tail left by a
      crash is truncated before appending; a file whose header the
      loader rejected is rewritten whole.
    - {b Online compaction}: {!compact} atomically rewrites the file
      from the live table, dropping superseded/duplicate/corrupt frames
      and reporting the bytes reclaimed.
    - {b Corrupt-record skip-and-warn on load}: a record with a bad
      checksum or an undecodable payload is skipped (counted in
      {!stats}) and loading continues with the next record; a
      truncated tail loses only the records it cut short. A wrong
      magic abandons the file (no records load) rather than guessing.
    - Imported entries are re-validated by
      {!Stp_synth.Npn_cache.add_entry} before use, so even a
      checksum-colliding corruption cannot poison synthesis results.

    The store is mutex-protected — domains of a parallel run may
    {!absorb}, {!append}, {!compact} and {!flush} concurrently — but
    one store file must have a single writing process: {!append}
    assumes nothing else moved the file's clean end. *)

type t

val create : path:string -> t
(** An empty store that will flush to [path]; nothing is read. *)

val load : path:string -> t
(** Read [path], skipping corrupt records. A missing file yields an
    empty store (first run); an unreadable or wrong-magic file warns on
    stderr and yields an empty store. *)

val path : t -> string

type stats = {
  classes : int;     (** records currently held, over all sections *)
  sections : int;    (** distinct section names *)
  skipped : int;     (** corrupt records skipped by {!load} *)
  flushes : int;     (** completed {!flush}/{!compact} rewrites *)
  flush_bytes : int; (** bytes written across those rewrites *)
  disk_bytes : int;  (** current size of the on-disk file *)
  dead_bytes : int;
    (** on-disk bytes holding no live record: superseded duplicates,
        corrupt frames, torn tails — what {!compact} reclaims *)
  appends : int;        (** completed {!append} calls *)
  append_bytes : int;   (** bytes written across those appends *)
  compactions : int;    (** completed {!compact} calls *)
  reclaimed_bytes : int;
    (** bytes dropped by compactions and torn-tail truncations *)
}

val stats : t -> stats

val stats_json : t -> Stp_telemetry.Json.t
(** {!stats} plus the store path as a JSON object — the shape the
    [synthd] stats response and the [--metrics] snapshot embed. *)

val attach_telemetry : t -> unit
(** Register this store as the ["store"] probe of
    {!Stp_telemetry.Telemetry.snapshot_json}. Latest call wins; stores
    are process-lifetime objects so no detach is provided. *)

type seed_stats = {
  seeded : int;         (** classes admitted into the cache *)
  seed_rejected : int;  (** classes refused by re-validation or collision *)
}

type absorb_stats = {
  absorbed : int;    (** new classes recorded into the section *)
  duplicates : int;  (** classes already present (kept, not overwritten) *)
}

type compact_stats = {
  before_bytes : int;  (** file size before the rewrite *)
  after_bytes : int;   (** file size after *)
  reclaimed : int;     (** [max 0 (before - after)] *)
}

type merge_stats = {
  merged : int;            (** records new to the destination *)
  merge_duplicates : int;  (** records already present (destination kept) *)
  superseded : int;
    (** resident records replaced by a strictly better (fewer-gates)
        incoming record *)
}

val seed : t -> section:string -> Stp_synth.Npn_cache.t -> seed_stats
(** [seed t ~section cache] imports every class of [section] into
    [cache] via {!Stp_synth.Npn_cache.add_entry} (which re-validates
    chains); reports how many were admitted vs rejected. *)

val absorb : t -> section:string -> Stp_synth.Npn_cache.t -> absorb_stats
(** [absorb t ~section cache] records every class of [cache] into
    [section], keeping existing records on key collision; reports how
    many were new vs already present. Call before {!flush} or
    {!append}. *)

val flush : t -> unit
(** Atomically persist the whole store to its path (write temp, fsync,
    rename). Safe to call concurrently and repeatedly; a crash between
    flushes leaves the previous complete store on disk. *)

val append : t -> unit
(** Persist only the records added since the last persist by appending
    complete frames after the last clean frame of the file (truncating
    a torn tail first, creating the file if needed). Much cheaper than
    {!flush} for a large, slowly growing store; crash-safe in the same
    record-granular sense as {!load} (a torn appended frame loses only
    itself). Requires this process to be the file's only writer. *)

val compact : t -> compact_stats
(** Rewrite the file from the live table (atomic tmp + fsync + rename),
    dropping dead bytes — duplicate/superseded frames accumulated by
    merges, corrupt frames, torn tails. The returned (and cumulative,
    see {!stats}) reclaimed-byte counts feed the telemetry probe. *)

val merge_from : t -> t -> merge_stats
(** [merge_from t src] folds every record of [src] into [t]: new keys
    are added, existing keys keep [t]'s record unless [src]'s has
    strictly fewer gates (then it supersedes — the stale frame stays on
    disk until {!compact}). The merge tool folding per-shard store
    files back into one [--store] file for warm runs. *)
