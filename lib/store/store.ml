module Tt = Stp_tt.Tt
module Chain = Stp_chain.Chain
module Npn_cache = Stp_synth.Npn_cache
module Trace = Stp_telemetry.Trace
module Json = Stp_telemetry.Json

(* File layout (see DESIGN.md):

     magic   8 bytes  "STPNPNS1" (format version baked into the magic)
     record* until EOF

   Each record is independently recoverable:

     u32le payload_len
     u32le FNV-1a-32 of the payload bytes
     payload

   and the payload encodes one solved NPN class:

     u8    section length, section bytes (engine/basis key)
     u8    n                (canonical arity)
     i64le * ceil(2^n/64)   packed truth-table words (Tt.to_words)
     u8    gates            (the class optimum)
     u16le chain count
     per chain:
       u8 n', u8 steps,
       per step: u8 fanin1, u8 fanin2, u8 gate code,
       u8 output, u8 output_negated *)

let magic = "STPNPNS1"

type record = {
  section : string;
  canon : Tt.t;
  entry : Npn_cache.entry;
  size : int;  (** on-disk frame size: 8-byte header + payload *)
}

type t = {
  path : string;
  table : (string, record) Hashtbl.t;
  (* Records added since the last persist, keyed like [table]; the
     value is the already-encoded payload so [append] writes without
     re-encoding. *)
  dirty : (string, string) Hashtbl.t;
  lock : Mutex.t;
  mutable skipped : int;
  mutable flushes : int;
  mutable flush_bytes : int;
  mutable live_bytes : int;   (* frame bytes of every record in [table] *)
  mutable dirty_bytes : int;  (* frame bytes of [dirty] records *)
  mutable disk_bytes : int;   (* current on-disk file size *)
  mutable clean_end : int;    (* offset after the last fully framed record *)
  mutable appends : int;
  mutable append_bytes : int;
  mutable compactions : int;
  mutable reclaimed_bytes : int;
}

type stats = {
  classes : int;
  sections : int;
  skipped : int;
  flushes : int;
  flush_bytes : int;
  disk_bytes : int;
  dead_bytes : int;
  appends : int;
  append_bytes : int;
  compactions : int;
  reclaimed_bytes : int;
}

type seed_stats = { seeded : int; seed_rejected : int }

type absorb_stats = { absorbed : int; duplicates : int }

type compact_stats = { before_bytes : int; after_bytes : int; reclaimed : int }

type merge_stats = { merged : int; merge_duplicates : int; superseded : int }

let path t = t.path

let create ~path =
  { path;
    table = Hashtbl.create 64;
    dirty = Hashtbl.create 16;
    lock = Mutex.create ();
    skipped = 0;
    flushes = 0;
    flush_bytes = 0;
    live_bytes = 0;
    dirty_bytes = 0;
    disk_bytes = 0;
    clean_end = 0;
    appends = 0;
    append_bytes = 0;
    compactions = 0;
    reclaimed_bytes = 0 }

let key ~section canon =
  Printf.sprintf "%s\x00%d\x00%s" section (Tt.num_vars canon) (Tt.to_hex canon)

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* FNV-1a, 32-bit. Not cryptographic — it guards against torn writes and
   bit rot, while [Npn_cache.add_entry] re-validates the decoded chains
   semantically. *)
let fnv1a_32 s =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff) s;
  !h

(* {2 Encoding} *)

let frame_size payload = 8 + String.length payload

let add_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let add_u16 buf v =
  add_u8 buf v;
  add_u8 buf (v lsr 8)

let add_u32 buf v =
  add_u16 buf (v land 0xffff);
  add_u16 buf ((v lsr 16) land 0xffff)

let encode_chain buf (c : Chain.t) =
  add_u8 buf c.Chain.n;
  add_u8 buf (Array.length c.Chain.steps);
  Array.iter
    (fun (s : Chain.step) ->
      add_u8 buf s.Chain.fanin1;
      add_u8 buf s.Chain.fanin2;
      add_u8 buf s.Chain.gate)
    c.Chain.steps;
  add_u8 buf c.Chain.output;
  add_u8 buf (if c.Chain.output_negated then 1 else 0)

let encode_payload ~section ~canon (entry : Npn_cache.entry) =
  let buf = Buffer.create 128 in
  add_u8 buf (String.length section);
  Buffer.add_string buf section;
  add_u8 buf (Tt.num_vars canon);
  Array.iter (fun w -> Buffer.add_int64_le buf w) (Tt.to_words canon);
  add_u8 buf entry.Npn_cache.gates;
  add_u16 buf (List.length entry.Npn_cache.chains);
  List.iter (encode_chain buf) entry.Npn_cache.chains;
  Buffer.contents buf

let add_frame buf payload =
  add_u32 buf (String.length payload);
  add_u32 buf (fnv1a_32 payload);
  Buffer.add_string buf payload

(* {2 Decoding} *)

exception Corrupt of string

let decode_record payload =
  let len = String.length payload in
  let pos = ref 0 in
  let need n =
    if !pos + n > len then raise (Corrupt "truncated payload")
  in
  let u8 () =
    need 1;
    let v = Char.code payload.[!pos] in
    incr pos;
    v
  in
  let u16 () =
    let lo = u8 () in
    let hi = u8 () in
    lo lor (hi lsl 8)
  in
  let i64 () =
    need 8;
    let v = String.get_int64_le payload !pos in
    pos := !pos + 8;
    v
  in
  let str n =
    need n;
    let s = String.sub payload !pos n in
    pos := !pos + n;
    s
  in
  let section = str (u8 ()) in
  let n = u8 () in
  if n > Tt.max_vars then raise (Corrupt "arity out of range");
  let nwords = ((1 lsl n) + 63) / 64 in
  let words = Array.make nwords 0L in
  for i = 0 to nwords - 1 do
    words.(i) <- i64 ()
  done;
  let canon = Tt.of_words n words in
  let gates = u8 () in
  let count = u16 () in
  let chain () =
    let cn = u8 () in
    let nsteps = u8 () in
    let step () =
      let fanin1 = u8 () in
      let fanin2 = u8 () in
      let gate = u8 () in
      if gate > 15 then raise (Corrupt "gate code out of range");
      { Chain.fanin1; fanin2; gate }
    in
    let steps = ref [] in
    for _ = 1 to nsteps do
      steps := step () :: !steps
    done;
    let steps = List.rev !steps in
    let output = u8 () in
    let output_negated = u8 () <> 0 in
    match Chain.make ~n:cn ~steps ~output ~output_negated () with
    | c -> c
    | exception Invalid_argument m -> raise (Corrupt ("bad chain: " ^ m))
  in
  let chains = ref [] in
  for _ = 1 to count do
    chains := chain () :: !chains
  done;
  let chains = List.rev !chains in
  if !pos <> len then raise (Corrupt "trailing bytes in payload");
  { section;
    canon;
    entry = { Npn_cache.gates; chains };
    size = frame_size payload }

(* {2 Load} *)

let warn fmt = Printf.eprintf ("store: warning: " ^^ fmt ^^ "\n%!")

(* Replace [k] in the live table, keeping [live_bytes] exact: a
   superseded record's frame stays on disk (dead) until compaction. *)
let put_live t k r =
  (match Hashtbl.find_opt t.table k with
   | Some old -> t.live_bytes <- t.live_bytes - old.size
   | None -> ());
  Hashtbl.replace t.table k r;
  t.live_bytes <- t.live_bytes + r.size

let load_channel t ic =
  let header = really_input_string ic (String.length magic) in
  if header <> magic then begin
    warn "%s: bad magic, ignoring file" t.path;
    raise Exit
  end;
  t.clean_end <- String.length magic;
  let read_u32 () =
    let b = really_input_string ic 4 in
    Char.code b.[0]
    lor (Char.code b.[1] lsl 8)
    lor (Char.code b.[2] lsl 16)
    lor (Char.code b.[3] lsl 24)
  in
  let rec loop () =
    match read_u32 () with
    | exception End_of_file -> ()
    | payload_len ->
      let checksum = read_u32 () in
      let payload = really_input_string ic payload_len in
      (* The frame is complete — even if its content is rejected below,
         appends may safely resume after it. *)
      t.clean_end <- pos_in ic;
      (if fnv1a_32 payload <> checksum then begin
         t.skipped <- t.skipped + 1;
         warn "%s: checksum mismatch, skipping record" t.path
       end
       else
         match decode_record payload with
         | r -> put_live t (key ~section:r.section r.canon) r
         | exception Corrupt msg ->
           t.skipped <- t.skipped + 1;
           warn "%s: undecodable record (%s), skipping" t.path msg);
      loop ()
  in
  try loop ()
  with End_of_file ->
    (* A record header or body was cut short — keep what loaded; the
       torn tail stays dead until the next append truncates it or a
       compaction rewrites the file. *)
    t.skipped <- t.skipped + 1;
    warn "%s: truncated record at end of file" t.path

let load ~path =
  Trace.span "store.load" ~args:[ ("path", path) ] @@ fun () ->
  let t = create ~path in
  (match open_in_bin path with
   | exception Sys_error _ -> () (* first run: no store yet *)
   | ic ->
     Fun.protect
       ~finally:(fun () -> close_in_noerr ic)
       (fun () ->
         t.disk_bytes <- in_channel_length ic;
         try load_channel t ic with
         | Exit -> ()
         | End_of_file ->
           t.skipped <- t.skipped + 1;
           warn "%s: file shorter than its header" path));
  t

(* {2 Persisting} *)

let flush_counter = Atomic.make 0

let write_fd fd bytes =
  let len = Bytes.length bytes in
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write fd bytes !written (len - !written)
  done

(* Full rewrite: serialise every live record to a temp file and rename
   it over the store path. Callers hold the lock. *)
let rewrite_locked t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Hashtbl.iter
    (fun _ r -> add_frame buf (encode_payload ~section:r.section ~canon:r.canon r.entry))
    t.table;
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" t.path (Unix.getpid ())
      (Atomic.fetch_and_add flush_counter 1)
  in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_fd fd (Buffer.to_bytes buf);
      Unix.fsync fd);
  Unix.rename tmp t.path;
  t.flushes <- t.flushes + 1;
  t.flush_bytes <- t.flush_bytes + Buffer.length buf;
  t.disk_bytes <- Buffer.length buf;
  t.clean_end <- Buffer.length buf;
  Hashtbl.reset t.dirty;
  t.dirty_bytes <- 0

let flush t =
  Trace.span "store.flush" ~args:[ ("path", t.path) ] @@ fun () ->
  with_lock t (fun () -> rewrite_locked t)

(* Persist only the records recorded since the last persist, appended
   after the last complete frame. O(new records) per call where {!flush}
   is O(store) — the difference that keeps a long-running shard's
   per-batch persistence flat. A torn tail left by a crash is truncated
   away first (its bytes count as reclaimed); frames the loader skipped
   for content reasons stay until {!compact}. *)
let append_locked t =
  if t.clean_end < String.length magic then
    (* Fresh store, or a file the loader abandoned: only a full rewrite
       can produce a valid file. *)
    rewrite_locked t
  else if Hashtbl.length t.dirty = 0 && t.clean_end = t.disk_bytes then ()
  else
    match Unix.openfile t.path [ Unix.O_WRONLY ] 0o644 with
    | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
      (* The file vanished under us; rebuild it whole. *)
      rewrite_locked t
    | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          if t.clean_end < t.disk_bytes then begin
            Unix.ftruncate fd t.clean_end;
            t.reclaimed_bytes <- t.reclaimed_bytes + (t.disk_bytes - t.clean_end);
            t.disk_bytes <- t.clean_end
          end;
          ignore (Unix.lseek fd t.clean_end Unix.SEEK_SET);
          let buf = Buffer.create 4096 in
          Hashtbl.iter (fun _ payload -> add_frame buf payload) t.dirty;
          write_fd fd (Buffer.to_bytes buf);
          Unix.fsync fd;
          t.appends <- t.appends + 1;
          t.append_bytes <- t.append_bytes + Buffer.length buf;
          t.disk_bytes <- t.disk_bytes + Buffer.length buf;
          t.clean_end <- t.disk_bytes;
          Hashtbl.reset t.dirty;
          t.dirty_bytes <- 0)

let append t =
  Trace.span "store.append" ~args:[ ("path", t.path) ] @@ fun () ->
  with_lock t (fun () -> append_locked t)

let compact t =
  Trace.span "store.compact" ~args:[ ("path", t.path) ] @@ fun () ->
  with_lock t (fun () ->
      let before_bytes = t.disk_bytes in
      rewrite_locked t;
      let after_bytes = t.disk_bytes in
      let reclaimed = max 0 (before_bytes - after_bytes) in
      t.compactions <- t.compactions + 1;
      t.reclaimed_bytes <- t.reclaimed_bytes + reclaimed;
      { before_bytes; after_bytes; reclaimed })

(* {2 Cache interchange} *)

let seed t ~section cache =
  Trace.span "store.seed" ~args:[ ("section", section) ] @@ fun () ->
  let records =
    with_lock t (fun () ->
        Hashtbl.fold
          (fun _ r acc -> if r.section = section then r :: acc else acc)
          t.table [])
  in
  List.fold_left
    (fun st r ->
      if Npn_cache.add_entry cache r.canon r.entry then
        { st with seeded = st.seeded + 1 }
      else { st with seed_rejected = st.seed_rejected + 1 })
    { seeded = 0; seed_rejected = 0 }
    records

(* Record [r] as new under [k]: live table + dirty queue. Callers hold
   the lock and have checked the key is fresh (or decided to replace). *)
let add_dirty_locked t k section canon entry =
  let payload = encode_payload ~section ~canon entry in
  let r = { section; canon; entry; size = frame_size payload } in
  put_live t k r;
  (match Hashtbl.find_opt t.dirty k with
   | Some old -> t.dirty_bytes <- t.dirty_bytes - frame_size old
   | None -> ());
  Hashtbl.replace t.dirty k payload;
  t.dirty_bytes <- t.dirty_bytes + r.size

let absorb t ~section cache =
  Trace.span "store.absorb" ~args:[ ("section", section) ] @@ fun () ->
  let entries = Npn_cache.entries cache in
  with_lock t (fun () ->
      List.fold_left
        (fun st (canon, entry) ->
          let k = key ~section canon in
          if Hashtbl.mem t.table k then
            { st with duplicates = st.duplicates + 1 }
          else begin
            add_dirty_locked t k section canon entry;
            { st with absorbed = st.absorbed + 1 }
          end)
        { absorbed = 0; duplicates = 0 }
        entries)

let merge_from t src =
  Trace.span "store.merge" ~args:[ ("from", src.path); ("into", t.path) ]
  @@ fun () ->
  (* Snapshot the source outside [t]'s lock: no nested locking. *)
  let records =
    with_lock src (fun () ->
        Hashtbl.fold (fun _ r acc -> r :: acc) src.table [])
  in
  with_lock t (fun () ->
      List.fold_left
        (fun st r ->
          let k = key ~section:r.section r.canon in
          match Hashtbl.find_opt t.table k with
          | None ->
            add_dirty_locked t k r.section r.canon r.entry;
            { st with merged = st.merged + 1 }
          | Some old
            when r.entry.Npn_cache.gates < old.entry.Npn_cache.gates ->
            (* A strictly better record supersedes the resident one —
               e.g. an upper-bound-era entry displaced by an optimum. *)
            add_dirty_locked t k r.section r.canon r.entry;
            { st with superseded = st.superseded + 1 }
          | Some _ -> { st with merge_duplicates = st.merge_duplicates + 1 })
        { merged = 0; merge_duplicates = 0; superseded = 0 }
        records)

let stats t =
  with_lock t (fun () ->
      let sections = Hashtbl.create 8 in
      Hashtbl.iter (fun _ r -> Hashtbl.replace sections r.section ()) t.table;
      let header = min t.disk_bytes (String.length magic) in
      let persisted_live = t.live_bytes - t.dirty_bytes in
      { classes = Hashtbl.length t.table;
        sections = Hashtbl.length sections;
        skipped = t.skipped;
        flushes = t.flushes;
        flush_bytes = t.flush_bytes;
        disk_bytes = t.disk_bytes;
        dead_bytes = max 0 (t.disk_bytes - header - persisted_live);
        appends = t.appends;
        append_bytes = t.append_bytes;
        compactions = t.compactions;
        reclaimed_bytes = t.reclaimed_bytes })

let stats_json t =
  let st = stats t in
  Json.Obj
    [ ("path", Json.String t.path);
      ("classes", Json.Int st.classes);
      ("sections", Json.Int st.sections);
      ("skipped", Json.Int st.skipped);
      ("flushes", Json.Int st.flushes);
      ("flush_bytes", Json.Int st.flush_bytes);
      ("disk_bytes", Json.Int st.disk_bytes);
      ("dead_bytes", Json.Int st.dead_bytes);
      ("appends", Json.Int st.appends);
      ("append_bytes", Json.Int st.append_bytes);
      ("compactions", Json.Int st.compactions);
      ("reclaimed_bytes", Json.Int st.reclaimed_bytes) ]

let attach_telemetry t =
  Stp_telemetry.Telemetry.register_probe "store" (fun () -> stats_json t)
