module Tt = Stp_tt.Tt
module Chain = Stp_chain.Chain
module Engine = Stp_synth.Engine
module Npn_cache = Stp_synth.Npn_cache
module Report = Stp_harness.Report
module Profile = Stp_util.Profile
module Deadline = Stp_util.Deadline
module Trace = Stp_telemetry.Trace
module Hist = Stp_telemetry.Hist
module Telemetry = Stp_telemetry.Telemetry

type persist =
  | Rewrite
  | Append of { compact_dead_bytes : int }

type config = {
  jobs : int;
  timeout : float;
  store : Store.t option;
  socket : string;
  no_npn_cache : bool;
  heartbeat_s : float;
  persist : persist;
}

let default_config =
  { jobs = 1;
    timeout = 5.0;
    store = None;
    socket = "";
    no_npn_cache = false;
    heartbeat_s = 0.0;
    persist = Rewrite }

let version = "1"

(* Module load happens once, at process start — close enough to serve
   as the uptime origin for ping/stats/heartbeat reporting. *)
let start_ns = Profile.now_ns ()

let uptime_s () = float_of_int (Profile.now_ns () - start_ns) *. 1e-9

(* Daemon-local counters: [Profile] counters are gated on [--profile],
   but heartbeats and stats must count unconditionally. *)
let requests_total = Atomic.make 0

let batches_total = Atomic.make 0

(* {2 Request handling} *)

let find_cache caches name =
  List.find_opt (fun (n, _) -> String.lowercase_ascii n = String.lowercase_ascii name) caches
  |> Option.map snd

let chain_json c = Report.String (Format.asprintf "%a" Chain.pp_compact c)

let respond ?id fields =
  let id_field = match id with Some v -> [ ("id", v) ] | None -> [] in
  Report.to_string (Report.Obj (id_field @ fields))

let error_response ?id msg =
  Profile.incr Profile.Requests_failed;
  respond ?id [ ("status", Report.String "error"); ("error", Report.String msg) ]

(* One Factor.memo per domain (its hash tables are not thread-safe);
   shared across every batch a domain serves. *)
let memo_key = Domain.DLS.new_key (fun () -> Stp_synth.Factor.create_memo ())

let store_json config =
  match config.store with
  | None -> Report.Null
  | Some store -> Store.stats_json store

let pong config =
  [ ("status", Report.String "pong");
    ("version", Report.String version);
    ("uptime_s", Report.Float (uptime_s ()));
    ("store",
     match config.store with
     | None -> Report.Null
     | Some store -> Report.String (Store.path store)) ]

(* Process-wide CDCL solver counters (all engines, all domains) — the
   block the sharded service surfaces per shard. Unconditional, like
   [requests_total]: [Profile]'s sat counters need [--profile]. *)
let sat_json () =
  Report.Obj
    (List.map
       (fun (k, v) -> (k, Report.Int v))
       (Stp_sat.Solver.Totals.snapshot ()))

let () = Telemetry.register_probe "sat" (fun () -> sat_json ())

let stats_response config =
  [ ("status", Report.String "ok");
    ("version", Report.String version);
    ("uptime_s", Report.Float (uptime_s ()));
    ("requests", Report.Int (Atomic.get requests_total));
    ("batches", Report.Int (Atomic.get batches_total));
    ("store", store_json config);
    ("sat", sat_json ());
    ("telemetry", Telemetry.snapshot_json ()) ]

(* Histogram per answer provenance: [synthd/source/cache] is a replay,
   [synthd/source/solver] a real solve, [synthd/source/degraded] a
   timeout answered with a verified upper bound, [synthd/source/timeout]
   an empty-handed timeout. *)
let observe_source source elapsed =
  Hist.observe_s (Hist.get ("synthd/source/" ^ source)) elapsed

let handle config caches line =
  Atomic.incr requests_total;
  Profile.incr Profile.Requests_received;
  match Report.of_string line with
  | Error msg -> error_response ("bad JSON: " ^ msg)
  | Ok json -> (
    let id = Report.member "id" json in
    let field name = Report.member name json in
    match field "type" with
    | Some (Report.String "ping") -> respond ?id (pong config)
    | Some (Report.String "stats") -> respond ?id (stats_response config)
    | Some (Report.String other) ->
      error_response ?id (Printf.sprintf "unknown request type %S" other)
    | Some _ -> error_response ?id "\"type\" must be a string"
    | None -> (
    match (field "n", field "tt") with
    | Some (Report.Int n), Some (Report.String hex) -> (
      let engine_name =
        match field "engine" with Some (Report.String e) -> e | _ -> "STP"
      in
      let timeout =
        match Option.bind (field "timeout") Report.to_float_opt with
        | Some t when t > 0.0 -> t
        | _ -> config.timeout
      in
      match Engine.find engine_name with
      | None -> error_response ?id (Printf.sprintf "unknown engine %S" engine_name)
      | Some engine -> (
        match Tt.of_hex ~n hex with
        | exception Invalid_argument msg -> error_response ?id msg
        | target ->
          let cache = find_cache caches (Engine.name engine) in
          (* [observed] outermost: the per-engine histogram and span
             cover cache replays too, like the collection runner's. *)
          let (module E : Engine.S) =
            Engine.observed
              (match cache with
               | None -> engine
               | Some c -> Npn_cache.wrap c engine)
          in
          (* Attribution is advisory: another domain may store the class
             between this check and the lookup, which only flips the
             reported [source], never the answer. *)
          let was_cached =
            match cache with Some c -> Npn_cache.cached c target | None -> false
          in
          let span_args =
            ("engine", Engine.name engine)
            :: ("n", string_of_int n)
            :: (match id with
                | Some v -> [ ("id", Report.to_string v) ]
                | None -> [])
          in
          Trace.span "synthd.request" ~args:span_args @@ fun () ->
          let t0 = Stp_util.Unix_time.now () in
          let result =
            E.synthesize
              (Engine.spec ~memo:(Domain.DLS.get memo_key) target)
              ~deadline:(Deadline.after timeout)
          in
          let elapsed = Stp_util.Unix_time.now () -. t0 in
          let elapsed_field = ("elapsed_s", Report.Float elapsed) in
          (match result with
           | Engine.Solved chains ->
             Profile.incr Profile.Requests_solved;
             if was_cached then Profile.incr Profile.Requests_cached;
             observe_source (if was_cached then "cache" else "solver") elapsed;
             respond ?id
               [ ("status", Report.String "solved");
                 ("gates", Report.Int (Chain.size (List.hd chains)));
                 ("chains", Report.List (List.map chain_json chains));
                 ("source", Report.String (if was_cached then "cache" else "solver"));
                 elapsed_field ]
           | Engine.Infeasible ->
             observe_source "solver" elapsed;
             respond ?id
               [ ("status", Report.String "infeasible");
                 ("source", Report.String "solver");
                 elapsed_field ]
           | Engine.Timeout -> (
             Profile.incr Profile.Requests_timed_out;
             (* Graceful degradation: a verified, non-optimal chain beats
                an empty answer for netlist callers. *)
             match Stp_synth.Baselines.upper_bound target with
             | chain ->
               Profile.incr Profile.Requests_degraded;
               observe_source "degraded" elapsed;
               respond ?id
                 [ ("status", Report.String "upper_bound");
                   ("gates", Report.Int (Chain.size chain));
                   ("chains", Report.List [ chain_json chain ]);
                   ("source", Report.String "upper_bound");
                   elapsed_field ]
             | exception Invalid_argument _ ->
               observe_source "timeout" elapsed;
               respond ?id
                 [ ("status", Report.String "timeout"); elapsed_field ]))))
    | _ ->
      error_response ?id "request needs an integer \"n\" and a string \"tt\""))

let control ?id ty =
  let open Report in
  to_string
    (Obj
       ((match id with Some i -> [ ("id", Int i) ] | None -> [])
       @ [ ("type", String ty) ]))

let request ?id ?timeout ?engine ~n tt =
  let open Report in
  let opt name f v = Option.map (fun v -> (name, f v)) v |> Option.to_list in
  to_string
    (Obj
       (opt "id" (fun i -> Int i) id
       @ [ ("n", Int n); ("tt", String tt) ]
       @ opt "timeout" (fun t -> Float t) timeout
       @ opt "engine" (fun e -> String e) engine))

(* {2 Line transport} *)

type reader = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  chunk : Bytes.t;
  mutable eof : bool;
}

let reader fd = { fd; buf = Buffer.create 4096; chunk = Bytes.create 4096; eof = false }

(* Complete lines currently buffered; the partial tail stays buffered. *)
let extract_lines r =
  let s = Buffer.contents r.buf in
  match String.rindex_opt s '\n' with
  | None -> []
  | Some i ->
    Buffer.clear r.buf;
    Buffer.add_substring r.buf s (i + 1) (String.length s - i - 1);
    String.split_on_char '\n' (String.sub s 0 i)

let readable ?(timeout = 0.0) fd =
  match Unix.select [ fd ] [] [] timeout with
  | [], _, _ -> false
  | _ -> true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

let readable_now fd = readable fd

let fill r =
  match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
  | 0 -> r.eof <- true
  | n -> Buffer.add_subbytes r.buf r.chunk 0 n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

(* Block until at least one complete line (or EOF/stop), then also
   drain every further line that has already arrived: pipelined clients
   get their whole backlog fanned out as one pool batch. While idle
   with a heartbeat configured, wake every [period] seconds to run
   [beat] instead of blocking in [read]. *)
let rec read_batch ~stop ?idle r =
  match extract_lines r with
  | _ :: _ as lines ->
    while (not r.eof) && readable_now r.fd && not (Atomic.get stop) do
      fill r
    done;
    lines @ extract_lines r
  | [] ->
    if r.eof || Atomic.get stop then []
    else begin
      (match idle with
       | Some (period, beat) ->
         if readable ~timeout:period r.fd then fill r else beat ()
       | None -> fill r);
      read_batch ~stop ?idle r
    end

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let written = ref 0 in
  while !written < len do
    match Unix.write fd b !written (len - !written) with
    | n -> written := !written + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* {2 The daemon} *)

let sync_store config caches =
  match config.store with
  | None -> ()
  | Some store ->
    List.iter
      (fun (section, cache) -> ignore (Store.absorb store ~section cache))
      caches;
    (match config.persist with
     | Rewrite -> Store.flush store
     | Append { compact_dead_bytes } ->
       Store.append store;
       if
         compact_dead_bytes > 0
         && (Store.stats store).Store.dead_bytes >= compact_dead_bytes
       then ignore (Store.compact store))

let heartbeat config =
  let store =
    match config.store with
    | None -> ""
    | Some store ->
      let st = Store.stats store in
      Printf.sprintf " store_classes=%d flushes=%d" st.Store.classes
        st.Store.flushes
  in
  Printf.eprintf "[synthd] heartbeat uptime_s=%.1f requests=%d batches=%d%s\n%!"
    (uptime_s ()) (Atomic.get requests_total) (Atomic.get batches_total) store

(* [None] disables idle wake-ups entirely; the read loop then blocks in
   [read] as before. *)
let idle_of config =
  if config.heartbeat_s > 0.0 then
    Some (config.heartbeat_s, fun () -> heartbeat config)
  else None

let serve ?(input = Unix.stdin) ?(output = Unix.stdout) config =
  (* The daemon always collects latency histograms: a live process must
     answer {"type":"stats"} with populated quantiles whether or not it
     was launched with --metrics. *)
  Telemetry.set_metrics_enabled true;
  let caches =
    if config.no_npn_cache then []
    else
      List.map (fun e -> (Engine.name e, Npn_cache.create ())) Engine.all
  in
  (match config.store with
   | None -> ()
   | Some store ->
     Store.attach_telemetry store;
     List.iter
       (fun (section, cache) -> ignore (Store.seed store ~section cache))
       caches);
  (* Force lazily built global tables (NPN4 canonicalisation) before any
     fan-out: racing domains on an unforced [lazy] is an error. *)
  ignore (Stp_tt.Npn.canon4 0);
  let stop = Atomic.make false in
  let handler = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
  let old_term = Sys.signal Sys.sigterm handler in
  let old_int = Sys.signal Sys.sigint handler in
  let pool = Stp_parallel.Pool.create ~domains:(max 1 config.jobs) () in
  Fun.protect
    ~finally:(fun () ->
      Stp_parallel.Pool.shutdown pool;
      Sys.set_signal Sys.sigterm old_term;
      Sys.set_signal Sys.sigint old_int;
      (* The shutdown flush: a SIGTERM mid-batch still persists every
         class solved by completed batches (and this final absorb). *)
      sync_store config caches)
    (fun () ->
      let idle = idle_of config in
      let serve_stream in_fd out_fd =
        let r = reader in_fd in
        let rec loop () =
          match read_batch ~stop ?idle r with
          | [] -> () (* end of input or shutdown requested *)
          | lines -> (
            match List.filter (fun l -> String.trim l <> "") lines with
            | [] -> loop ()
            | batch ->
              Atomic.incr batches_total;
              let t0 = Profile.now_ns () in
              let responses =
                Trace.span "synthd.batch"
                  ~args:[ ("requests", string_of_int (List.length batch)) ]
                  (fun () ->
                    Stp_parallel.Pool.exec pool (handle config caches) batch)
              in
              Hist.observe_ns (Hist.get "synthd/batch")
                (Profile.now_ns () - t0);
              write_all out_fd (String.concat "\n" responses ^ "\n");
              (* Absorb + flush per batch: crash durability never trails
                 the answers already sent. *)
              sync_store config caches;
              loop ())
        in
        loop ()
      in
      match config.socket with
      | "" -> serve_stream input output
      | path ->
        let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        Unix.bind sock (Unix.ADDR_UNIX path);
        Unix.listen sock 8;
        Fun.protect
          ~finally:(fun () ->
            (try Unix.close sock with Unix.Unix_error _ -> ());
            try Unix.unlink path with Unix.Unix_error _ -> ())
          (fun () ->
            let rec accept_loop () =
              if not (Atomic.get stop) then begin
                let ready =
                  match idle with
                  | None -> true
                  | Some (period, beat) ->
                    let ready = readable ~timeout:period sock in
                    if not ready then beat ();
                    ready
                in
                (if ready then
                   match Unix.accept sock with
                   | client, _ ->
                     (* A forked worker must not inherit client fds. *)
                     Unix.set_close_on_exec client;
                     Fun.protect
                       ~finally:(fun () ->
                         try Unix.close client with Unix.Unix_error _ -> ())
                       (fun () -> serve_stream client client)
                   | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                   | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) ->
                     (* The peer gave up between connect and accept —
                        not our problem; keep serving. *)
                     ()
                   | exception
                       Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE) as e, _, _)
                     ->
                     (* Out of descriptors: shedding this connection is
                        recoverable, killing the serve loop is not. Back
                        off briefly so close() elsewhere can catch up. *)
                     Printf.eprintf "[synthd] accept: %s; backing off\n%!"
                       (Unix.error_message e);
                     Unix.sleepf 0.05);
                accept_loop ()
              end
            in
            accept_loop ()))

(* Bounded connect retry: a freshly forked daemon binds its socket a
   beat after the parent can first try to connect, so clients back off
   on the two "not there yet" errors instead of racing startup. Every
   attempt gets a fresh fd — after EINTR the interrupted connect can
   keep completing in-kernel, and reusing the socket then raises
   EALREADY/EISCONN spuriously. The budget is ~3 s worst case, then
   the last error propagates. *)
let rec connect_retry addr attempts delay =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect sock addr with
  | () -> sock
  | exception e ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    (match e with
     | Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
       when attempts > 1 ->
       Unix.sleepf delay;
       connect_retry addr (attempts - 1) (Float.min 0.25 (delay *. 2.))
     | Unix.Unix_error (Unix.EINTR, _, _) when attempts > 1 ->
       connect_retry addr (attempts - 1) delay
     | e -> raise e)

let client ?(attempts = 25) ~socket lines =
  let sock = connect_retry (Unix.ADDR_UNIX socket) (max 1 attempts) 0.01 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      write_all sock (String.concat "\n" lines ^ "\n");
      Unix.shutdown sock Unix.SHUTDOWN_SEND;
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read sock chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
      in
      drain ();
      Buffer.contents buf |> String.split_on_char '\n'
      |> List.filter (fun l -> String.trim l <> ""))
