(** Bit-parallel truth tables.

    A truth table over [n] variables stores [2^n] bits. Bit [m]
    ([0 <= m < 2^n]) is the value of the function on the assignment in
    which variable [i] (0-indexed) takes the value [(m lsr i) land 1].
    Variables are numbered from 0; variable 0 is the fastest-toggling
    column of the table, matching the usual "x1 is the least significant
    input" convention of exact-synthesis literature.

    Tables over up to {!max_vars} variables are supported. All operations
    are total over tables of equal arity and raise [Invalid_argument] when
    arities disagree. *)

type t

val max_vars : int
(** Largest supported arity (20). *)

val num_vars : t -> int
(** Number of variables of the table. *)

val num_bits : t -> int
(** [2^(num_vars t)]. *)

(** {1 Construction} *)

val const : int -> bool -> t
(** [const n b] is the constant-[b] function of [n] variables. *)

val zero : int -> t
(** [zero n] = [const n false]. *)

val one : int -> t
(** [one n] = [const n true]. *)

val var : int -> int -> t
(** [var n i] is the projection onto variable [i] over [n] variables. *)

val of_fun : int -> (int -> bool) -> t
(** [of_fun n f] tabulates [f] over all [2^n] minterm indices. *)

val of_int : int -> int -> t
(** [of_int n v] builds a table over [n <= 6] variables from the low
    [2^n] bits of [v]. *)

val to_int : t -> int
(** Inverse of {!of_int}; only for [n <= 6]... tables wider than 62 bits
    raise [Invalid_argument]. *)

val of_hex : n:int -> string -> t
(** [of_hex ~n s] parses a hexadecimal truth table (optionally prefixed
    with ["0x"]), most significant bits first, e.g. the paper's
    [0x8ff8] with [n = 4]. Upper- and lowercase digits are accepted.
    @raise Invalid_argument on malformed input, naming the offending
    character or the expected vs. actual digit count. *)

val to_hex : t -> string
(** [to_hex t] prints the table as lowercase hex, most significant bits
    first, without a prefix. Tables with [n < 2] are printed as a single
    digit. *)

val to_bin : t -> string
(** [to_bin t] prints the [2^n] bits, most significant first. *)

(** {1 Access} *)

val get : t -> int -> bool
(** [get t m] is the value at minterm [m]. *)

val set : t -> int -> bool -> t
(** [set t m b] is [t] with minterm [m] set to [b] (functional update). *)

val count_ones : t -> int
(** Number of satisfying minterms. *)

val is_const : t -> bool

val is_const_of : t -> bool option
(** [is_const_of t] is [Some b] if [t] is the constant [b]. *)

(** {1 Boolean algebra} *)

val bnot : t -> t
val band : t -> t -> t
val bor : t -> t -> t
val bxor : t -> t -> t
val equal : t -> t -> bool

val equal_bnot : t -> t -> bool
(** [equal_bnot a b] is [equal a (bnot b)] without allocating the
    complement table. *)

val compare : t -> t -> int
val hash : t -> int

val apply2 : int -> t -> t -> t
(** [apply2 code a b] applies the 2-input gate whose 4-bit truth table is
    [code] (bit [2*va + vb] is the output on inputs [(va, vb)]) to tables
    [a] and [b], bit-parallel. *)

(** {1 Structure} *)

val cofactor : t -> int -> bool -> t
(** [cofactor t i b] is the cofactor of [t] with variable [i] fixed to
    [b]; the result still ranges over [n] variables (variable [i] becomes
    irrelevant). *)

val depends_on : t -> int -> bool
(** [depends_on t i] is [true] iff the two cofactors w.r.t. [i] differ. *)

val support : t -> int list
(** Variables the function actually depends on, ascending. *)

val support_size : t -> int

val support_mask : t -> int
(** Support as a bitmask over variable indices. *)

(** {1 Transformations} *)

val negate_var : t -> int -> t
(** [negate_var t i] composes [t] with the complement of input [i]. *)

val permute : t -> int array -> t
(** [permute t perm] relabels inputs: variable [i] of the result reads
    the value that variable [perm.(i)] read in [t]; [perm] must be a
    permutation of [0 .. n-1]. Equivalently, the result [g] satisfies
    [g(x_0, …, x_{n-1}) = t(x_{perm(0)}, ..., x_{perm(n-1)})]... see the
    implementation's minterm mapping: result bit [m] equals [t]'s bit at
    the minterm whose variable [perm.(i)] value is bit [i] of [m]. *)

val swap_vars : t -> int -> int -> t

val compose : t -> t array -> t
(** [compose f gs] substitutes [gs.(i)] (all of equal arity [n]) for
    variable [i] of [f]; the result has arity [n]. *)

val shrink_to_support : t -> t * int list
(** [shrink_to_support t] projects [t] onto its support, returning the
    compacted table (arity = support size) and the support variables in
    the order they were kept. *)

val expand : t -> int -> int array -> t
(** [expand t n placement] lifts a table to [n] variables, reading input
    [i] of [t] from variable [placement.(i)] of the result. *)

(** {1 Packed interchange}

    The raw 64-bit words behind the table, minterm bit [m] at bit
    [m land 63] of word [m lsr 6] — the interchange format shared with
    the packed ternary kernels ([Stp_matrix.Tmat]). *)

val to_words : t -> int64 array
(** A fresh copy of the packed words ([ceil(2^n / 64)] of them). *)

val of_words : int -> int64 array -> t
(** [of_words n words] builds a table from packed words; bits beyond
    [2^n] are cleared. @raise Invalid_argument on a wrong word count. *)

val pp : Format.formatter -> t -> unit
(** Prints [<n>'h<hex>]. *)
