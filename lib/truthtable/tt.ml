type t = {
  n : int;
  words : int64 array; (* ceil(2^n / 64) words; unused high bits are 0 *)
}

let max_vars = 20

let num_vars t = t.n

let num_bits t = 1 lsl t.n

let num_words n = if n <= 6 then 1 else 1 lsl (n - 6)

(* Mask of significant bits in the (single) word of a small table. *)
let small_mask n =
  if n >= 6 then -1L else Int64.sub (Int64.shift_left 1L (1 lsl n)) 1L

let check_arity a b = if a.n <> b.n then invalid_arg "Tt: arity mismatch"

let const n b =
  if n < 0 || n > max_vars then invalid_arg "Tt.const";
  let w = if b then small_mask n else 0L in
  { n; words = Array.make (num_words n) w }

let zero n = const n false

let one n = const n true

(* Pattern of variable [i] inside one 64-bit word, for i < 6. *)
let var_patterns =
  [| 0xAAAAAAAAAAAAAAAAL; 0xCCCCCCCCCCCCCCCCL; 0xF0F0F0F0F0F0F0F0L;
     0xFF00FF00FF00FF00L; 0xFFFF0000FFFF0000L; 0xFFFFFFFF00000000L |]

let var n i =
  if i < 0 || i >= n then invalid_arg "Tt.var";
  let words = Array.make (num_words n) 0L in
  if i < 6 then begin
    let p = Int64.logand var_patterns.(i) (small_mask n) in
    Array.iteri (fun k _ -> words.(k) <- p) words
  end
  else begin
    (* Word k holds minterms [64k, 64k+64); variable i is bit (i-6) of k. *)
    let bit = i - 6 in
    Array.iteri
      (fun k _ -> if (k lsr bit) land 1 = 1 then words.(k) <- -1L)
      words
  end;
  { n; words }

let get t m =
  if m < 0 || m >= num_bits t then invalid_arg "Tt.get";
  let w = t.words.(m lsr 6) in
  Int64.(logand (shift_right_logical w (m land 63)) 1L) = 1L

let set t m b =
  if m < 0 || m >= num_bits t then invalid_arg "Tt.set";
  let words = Array.copy t.words in
  let k = m lsr 6 and o = m land 63 in
  let bit = Int64.shift_left 1L o in
  words.(k) <-
    (if b then Int64.logor words.(k) bit
     else Int64.logand words.(k) (Int64.lognot bit));
  { n = t.n; words }

let of_fun n f =
  if n < 0 || n > max_vars then invalid_arg "Tt.of_fun";
  let words = Array.make (num_words n) 0L in
  for m = 0 to (1 lsl n) - 1 do
    if f m then begin
      let k = m lsr 6 and o = m land 63 in
      words.(k) <- Int64.logor words.(k) (Int64.shift_left 1L o)
    end
  done;
  { n; words }

let of_int n v =
  if n < 0 || n > 6 then invalid_arg "Tt.of_int";
  { n; words = [| Int64.logand (Int64.of_int v) (small_mask n) |] }

let to_int t =
  if num_bits t > 62 then invalid_arg "Tt.to_int";
  Int64.to_int t.words.(0)

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ ->
    invalid_arg
      (Printf.sprintf "Tt.of_hex: %C is not a hexadecimal digit" c)

let of_hex ~n s =
  if n < 0 || n > max_vars then
    invalid_arg
      (Printf.sprintf "Tt.of_hex: arity %d is outside 0 .. %d" n max_vars);
  let s =
    if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X')
    then String.sub s 2 (String.length s - 2)
    else s
  in
  let digits = if n < 2 then 1 else 1 lsl (n - 2) in
  if String.length s <> digits then
    invalid_arg
      (Printf.sprintf "Tt.of_hex: %d variable%s %s %d hex digit%s, got %d" n
         (if n = 1 then "" else "s")
         (if n = 1 then "takes" else "take")
         digits
         (if digits = 1 then "" else "s")
         (String.length s));
  let bits_per_digit = if n >= 2 then 4 else 1 lsl n in
  let words = Array.make (num_words n) 0L in
  String.iteri
    (fun idx c ->
      let d = hex_digit c in
      if n < 2 && d lsr bits_per_digit <> 0 then
        invalid_arg
          (Printf.sprintf
             "Tt.of_hex: digit %C exceeds the %d-bit table of %d variable%s"
             c bits_per_digit n
             (if n = 1 then "" else "s"));
      (* Digit idx (from the left) covers the highest remaining bits. *)
      let lo = (digits - 1 - idx) * bits_per_digit in
      for b = 0 to bits_per_digit - 1 do
        if (d lsr b) land 1 = 1 then begin
          let m = lo + b in
          let k = m lsr 6 and o = m land 63 in
          words.(k) <- Int64.logor words.(k) (Int64.shift_left 1L o)
        end
      done)
    s;
  { n; words }

let to_hex t =
  let n = t.n in
  let digits = if n < 2 then 1 else 1 lsl (n - 2) in
  let bits_per_digit = if n >= 2 then 4 else 1 lsl n in
  let buf = Buffer.create digits in
  for idx = 0 to digits - 1 do
    let lo = (digits - 1 - idx) * bits_per_digit in
    let d = ref 0 in
    for b = bits_per_digit - 1 downto 0 do
      let m = lo + b in
      let w = t.words.(m lsr 6) in
      let bit = Int64.(to_int (logand (shift_right_logical w (m land 63)) 1L)) in
      d := (!d lsl 1) lor bit
    done;
    Buffer.add_char buf "0123456789abcdef".[!d]
  done;
  Buffer.contents buf

let to_bin t =
  let bits = num_bits t in
  String.init bits (fun i -> if get t (bits - 1 - i) then '1' else '0')

let count_ones t =
  let count64 x =
    let rec loop x acc =
      if Int64.equal x 0L then acc
      else loop Int64.(logand x (sub x 1L)) (acc + 1)
    in
    loop x 0
  in
  Array.fold_left (fun acc w -> acc + count64 w) 0 t.words

let map1 f t = { n = t.n; words = Array.map f t.words }

let map2 f a b =
  check_arity a b;
  { n = a.n; words = Array.map2 f a.words b.words }

let bnot t =
  let m = small_mask t.n in
  map1 (fun w -> Int64.logand (Int64.lognot w) m) t

let band = map2 Int64.logand

let bor = map2 Int64.logor

let bxor = map2 Int64.logxor

let equal a b = a.n = b.n && Array.for_all2 Int64.equal a.words b.words

(* [equal a (bnot b)] without materialising the complement. *)
let equal_bnot a b =
  a.n = b.n
  &&
  let m = small_mask a.n in
  let rec loop i =
    i < 0
    || (Int64.equal a.words.(i) (Int64.logand (Int64.lognot b.words.(i)) m)
       && loop (i - 1))
  in
  loop (Array.length a.words - 1)

let compare a b =
  let c = Stdlib.compare a.n b.n in
  if c <> 0 then c
  else
    let rec loop i =
      if i < 0 then 0
      else
        let c = Int64.compare a.words.(i) b.words.(i) in
        if c <> 0 then c else loop (i - 1)
    in
    loop (Array.length a.words - 1)

(* Mixing in the native int domain: [Int64.mul] would box its result
   on every word of every lookup of the synthesis memo tables. *)
let hash t =
  let acc = ref (t.n + 1) in
  for k = 0 to Array.length t.words - 1 do
    let h = Int64.to_int (Array.unsafe_get t.words k) * 0x9E3779B97F4A7C1 in
    acc := (!acc * 31) + (h land max_int)
  done;
  !acc

let apply2 code a b =
  check_arity a b;
  if code < 0 || code > 15 then invalid_arg "Tt.apply2";
  (* out = OR over the minterms of [code] of (a-factor AND b-factor). *)
  let n = a.n in
  let acc = ref (zero n) in
  let lift va vb =
    let fa = if va = 1 then a else bnot a in
    let fb = if vb = 1 then b else bnot b in
    band fa fb
  in
  for va = 0 to 1 do
    for vb = 0 to 1 do
      if (code lsr ((2 * va) + vb)) land 1 = 1 then
        acc := bor !acc (lift va vb)
    done
  done;
  !acc

let cofactor t i b =
  if i < 0 || i >= t.n then invalid_arg "Tt.cofactor";
  if i < 6 then begin
    let shift = 1 lsl i in
    let p = var_patterns.(i) in
    let words =
      Array.map
        (fun w ->
          if b then
            let hi = Int64.logand w p in
            Int64.logor hi (Int64.shift_right_logical hi shift)
          else
            let lo = Int64.logand w (Int64.lognot p) in
            Int64.logor lo (Int64.shift_left lo shift)
          )
        t.words
    in
    let m = small_mask t.n in
    { n = t.n; words = Array.map (fun w -> Int64.logand w m) words }
  end
  else begin
    let bit = i - 6 in
    let words =
      Array.mapi
        (fun k _ ->
          let src = if b then k lor (1 lsl bit) else k land lnot (1 lsl bit) in
          t.words.(src))
        t.words
    in
    { n = t.n; words }
  end

(* Word-parallel dependence test, no intermediate cofactor tables:
   [support_size] runs per candidate factor in the synthesis inner
   loop, so it must not allocate. *)
let depends_on t i =
  if i < 0 || i >= t.n then invalid_arg "Tt.depends_on";
  let words = t.words in
  if i < 6 then begin
    (* Positions pair up in-word: the function depends on [i] iff some
       pair's low and high halves differ. Unused high bits are 0 on
       both sides of the shift, so no end masking is needed. *)
    let shift = 1 lsl i in
    let np = Int64.lognot var_patterns.(i) in
    let rec loop k =
      k >= 0
      &&
      let w = Array.unsafe_get words k in
      (not
         (Int64.equal
            (Int64.logand (Int64.logxor w (Int64.shift_right_logical w shift))
               np)
            0L))
      || loop (k - 1)
    in
    loop (Array.length words - 1)
  end
  else begin
    let bit = 1 lsl (i - 6) in
    let rec loop k =
      k >= 0
      && ((k land bit = 0
          && not
               (Int64.equal (Array.unsafe_get words k)
                  (Array.unsafe_get words (k lor bit))))
         || loop (k - 1))
    in
    loop (Array.length words - 1)
  end

let support_mask t =
  let m = ref 0 in
  for i = 0 to t.n - 1 do
    if depends_on t i then m := !m lor (1 lsl i)
  done;
  !m

let support_size t =
  let rec pc x acc = if x = 0 then acc else pc (x land (x - 1)) (acc + 1) in
  pc (support_mask t) 0

let support t =
  let m = support_mask t in
  let rec loop i acc =
    if i < 0 then acc
    else loop (i - 1) (if (m lsr i) land 1 = 1 then i :: acc else acc)
  in
  loop (t.n - 1) []

let permute t perm =
  if Array.length perm <> t.n then invalid_arg "Tt.permute";
  let n = t.n in
  of_fun n (fun m ->
      (* Result minterm m: variable perm.(i) of t sees bit i of m. *)
      let src = ref 0 in
      for i = 0 to n - 1 do
        if (m lsr i) land 1 = 1 then src := !src lor (1 lsl perm.(i))
      done;
      get t !src)

let negate_var t i =
  if i < 0 || i >= t.n then invalid_arg "Tt.negate_var";
  if i < 6 then begin
    let shift = 1 lsl i in
    let p = var_patterns.(i) in
    let np = Int64.lognot p in
    let words =
      Array.map
        (fun w ->
          Int64.logor
            (Int64.shift_right_logical (Int64.logand w p) shift)
            (Int64.shift_left (Int64.logand w np) shift))
        t.words
    in
    let m = small_mask t.n in
    { n = t.n; words = Array.map (fun w -> Int64.logand w m) words }
  end
  else begin
    let bit = i - 6 in
    let words = Array.mapi (fun k _ -> t.words.(k lxor (1 lsl bit))) t.words in
    { n = t.n; words }
  end

let swap_vars t i j =
  if i = j then t
  else begin
    let n = t.n in
    let perm = Array.init n (fun k -> if k = i then j else if k = j then i else k) in
    permute t perm
  end

let compose f gs =
  if Array.length gs <> f.n then invalid_arg "Tt.compose";
  if Array.length gs = 0 then invalid_arg "Tt.compose: zero arity";
  let n = gs.(0).n in
  Array.iter (fun g -> if g.n <> n then invalid_arg "Tt.compose") gs;
  (* Shannon expansion of f over the composed arguments, bit-parallel. *)
  let rec eval f i =
    (* f restricted over variables >= i already fixed; recurse on var i. *)
    if i = f.n then if get f 0 then one n else zero n
    else
      match is_const_aux f with
      | Some true -> one n
      | Some false -> zero n
      | None ->
        let f0 = cofactor f i false and f1 = cofactor f i true in
        if equal f0 f1 then eval f0 (i + 1)
        else
          let r0 = eval f0 (i + 1) and r1 = eval f1 (i + 1) in
          bor (band gs.(i) r1) (band (bnot gs.(i)) r0)
  and is_const_aux f =
    let m = small_mask f.n in
    if Array.for_all (fun w -> Int64.equal w 0L) f.words then Some false
    else if Array.for_all (fun w -> Int64.equal w m) f.words then Some true
    else None
  in
  eval f 0

let is_const t =
  let m = small_mask t.n in
  Array.for_all (fun w -> Int64.equal w 0L) t.words
  || Array.for_all (fun w -> Int64.equal w m) t.words

let is_const_of t =
  let m = small_mask t.n in
  if Array.for_all (fun w -> Int64.equal w 0L) t.words then Some false
  else if Array.for_all (fun w -> Int64.equal w m) t.words then Some true
  else None

let shrink_to_support t =
  let sup = support t in
  let k = List.length sup in
  let sup_arr = Array.of_list sup in
  let shrunk =
    of_fun k (fun m ->
        (* Place bit i of m at variable sup_arr.(i); others at 0. *)
        let src = ref 0 in
        Array.iteri
          (fun i v -> if (m lsr i) land 1 = 1 then src := !src lor (1 lsl v))
          sup_arr;
        get t !src)
  in
  (shrunk, sup)

let expand t n placement =
  if Array.length placement <> t.n then invalid_arg "Tt.expand";
  Array.iter
    (fun p -> if p < 0 || p >= n then invalid_arg "Tt.expand")
    placement;
  of_fun n (fun m ->
      let src = ref 0 in
      Array.iteri
        (fun i p -> if (m lsr p) land 1 = 1 then src := !src lor (1 lsl i))
        placement;
      get t !src)

let to_words t = Array.copy t.words

let of_words n words =
  if n < 0 || n > max_vars then invalid_arg "Tt.of_words";
  if Array.length words <> num_words n then
    invalid_arg "Tt.of_words: wrong word count";
  let m = small_mask n in
  { n; words = Array.map (fun w -> Int64.logand w m) words }

let pp fmt t = Format.fprintf fmt "%d'h%s" t.n (to_hex t)
