let parse text =
  let inputs = ref (-1) and outputs = ref (-1) in
  let rows = ref [] in
  let fail line msg =
    invalid_arg (Printf.sprintf "Pla.parse: %s in %S" msg line)
  in
  let tokens line =
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (( <> ) "")
  in
  List.iter
    (fun raw ->
      let line = String.trim raw in
      if line = "" || line.[0] = '#' then ()
      else if line.[0] = '.' then begin
        match tokens line with
        | ".i" :: v :: _ -> (
          match int_of_string_opt v with
          | Some n when n >= 0 && n <= Tt.max_vars -> inputs := n
          | _ -> fail line "bad .i")
        | ".o" :: v :: _ -> (
          match int_of_string_opt v with
          | Some n when n > 0 -> outputs := n
          | _ -> fail line "bad .o")
        | (".p" | ".ilb" | ".ob" | ".type" | ".e" | ".end") :: _ -> ()
        | _ -> fail line "unknown directive"
      end
      else begin
        match tokens line with
        | [ ins; outs ] -> rows := (ins, outs) :: !rows
        | _ -> fail line "expected 'inputs outputs'"
      end)
    (String.split_on_char '\n' text);
  if !inputs < 0 then invalid_arg "Pla.parse: missing .i";
  if !outputs < 0 then invalid_arg "Pla.parse: missing .o";
  let n = !inputs and m = !outputs in
  let tables = Array.make m (Tt.zero (max n 1)) in
  List.iter
    (fun (ins, outs) ->
      if String.length ins <> n then invalid_arg "Pla.parse: input width";
      if String.length outs <> m then invalid_arg "Pla.parse: output width";
      (* Expand the cube over its dashes; PLA columns are MSB-first:
         the first character is the highest-numbered variable. *)
      let dash_positions = ref [] in
      let base = ref 0 in
      String.iteri
        (fun i c ->
          let var = n - 1 - i in
          match c with
          | '1' -> base := !base lor (1 lsl var)
          | '0' -> ()
          | '-' -> dash_positions := var :: !dash_positions
          | _ -> invalid_arg "Pla.parse: bad input character")
        ins;
      let dashes = Array.of_list !dash_positions in
      let count = 1 lsl Array.length dashes in
      for d = 0 to count - 1 do
        let minterm = ref !base in
        Array.iteri
          (fun bi var -> if (d lsr bi) land 1 = 1 then minterm := !minterm lor (1 lsl var))
          dashes;
        String.iteri
          (fun k c ->
            match c with
            | '1' -> tables.(k) <- Tt.set tables.(k) !minterm true
            | '0' | '~' -> ()
            | _ -> invalid_arg "Pla.parse: bad output character")
          outs
      done)
    !rows;
  tables

let print fmt tables =
  if Array.length tables = 0 then invalid_arg "Pla.print: no outputs";
  let n = Tt.num_vars tables.(0) in
  Array.iter
    (fun t -> if Tt.num_vars t <> n then invalid_arg "Pla.print: arity")
    tables;
  let on_minterms =
    List.filter
      (fun m -> Array.exists (fun t -> Tt.get t m) tables)
      (List.init (1 lsl n) (fun m -> m))
  in
  Format.fprintf fmt ".i %d@..o %d@..p %d@." n (Array.length tables)
    (List.length on_minterms);
  List.iter
    (fun m ->
      let ins =
        String.init n (fun i ->
            if (m lsr (n - 1 - i)) land 1 = 1 then '1' else '0')
      in
      let outs =
        String.init (Array.length tables) (fun k ->
            if Tt.get tables.(k) m then '1' else '0')
      in
      Format.fprintf fmt "%s %s@." ins outs)
    on_minterms;
  Format.fprintf fmt ".e@."
