type kind = Constant | Literal | Full | Partial | Prime

(* Enumerate the assignments of the variables in [mask] (a bitmask over
   the ambient variable space) and return, for each assignment, the
   cofactor of [t] under it. *)
let blocks_of t mask =
  let vars =
    List.filter (fun i -> (mask lsr i) land 1 = 1)
      (List.init (Tt.num_vars t) (fun i -> i))
  in
  let rec loop t = function
    | [] -> [ t ]
    | v :: rest ->
      loop (Tt.cofactor t v false) rest @ loop (Tt.cofactor t v true) rest
  in
  loop t vars

(* Check f = phi (g over A) (h over B) for disjoint A, B covering the
   support. Returns (g, h) over the ambient space on success. The blocks
   of f grouped by A-assignments must take at most two distinct values;
   with two values r0 <> r1 the pair must be realisable as
   {phi(0, h), phi(1, h)}: each side constant, or complements of each
   other, or equal (impossible for distinct). *)
let split t mask_a =
  let bs = blocks_of t mask_a in
  match bs with
  | [] -> None
  | first :: rest ->
    let distinct =
      List.fold_left
        (fun acc b -> if List.exists (Tt.equal b) acc then acc else b :: acc)
        [ first ] rest
    in
    (match distinct with
     | [ _ ] -> None (* t does not depend on A *)
     | [ rx; ry ] ->
       let const_of b = Tt.is_const_of b in
       let ok, h =
         match (const_of rx, const_of ry) with
         | Some _, Some _ -> (false, rx) (* t does not depend on B *)
         | Some _, None -> (true, ry)
         | None, Some _ -> (true, rx)
         | None, None -> (Tt.equal rx (Tt.bnot ry), rx)
       in
       if not ok then None
       else begin
         (* g(alpha) = 1 iff block_alpha = ry (labelling is symmetric;
            any consistent labelling gives a valid decomposition). *)
         let n = Tt.num_vars t in
         let g =
           Tt.of_fun n (fun m ->
               (* Identify the block of the A-part of m. *)
               let rec fix t i =
                 if i = n then t
                 else if (mask_a lsr i) land 1 = 1 then
                   fix (Tt.cofactor t i ((m lsr i) land 1 = 1)) (i + 1)
                 else fix t (i + 1)
               in
               Tt.equal (fix t 0) ry)
         in
         Some (g, h)
       end
     | _ -> None)

let proper_subsets_containing_lowest support_vars =
  match support_vars with
  | [] | [ _ ] -> []
  | lowest :: rest ->
    let rest = Array.of_list rest in
    let k = Array.length rest in
    (* Subsets of rest, each union {lowest}; exclude the full set. *)
    let out = ref [] in
    for s = 0 to (1 lsl k) - 2 do
      let mask = ref (1 lsl lowest) in
      for i = 0 to k - 1 do
        if (s lsr i) land 1 = 1 then mask := !mask lor (1 lsl rest.(i))
      done;
      out := !mask :: !out
    done;
    List.rev !out

let support_mask t = List.fold_left (fun m v -> m lor (1 lsl v)) 0 (Tt.support t)

let top_splits t =
  let sup = Tt.support t in
  let full = support_mask t in
  List.filter_map
    (fun mask_a ->
      match split t mask_a with
      | Some _ -> Some (mask_a, full land lnot mask_a)
      | None -> None)
    (proper_subsets_containing_lowest sup)

let rec is_fully_dsd t =
  match Tt.support t with
  | [] | [ _ ] -> true
  | [ _; _ ] -> true (* any 2-input function is a single gate *)
  | sup ->
    List.exists
      (fun mask_a ->
        match split t mask_a with
        | None -> false
        | Some (g, h) -> is_fully_dsd g && is_fully_dsd h)
      (proper_subsets_containing_lowest sup)

(* A proper DSD block extraction: A with 2 <= |A| < support such that
   grouping by the B = support \ A assignments yields blocks over A that
   are all in {0, 1, g, not g} for one common g. *)
let has_block_extraction t =
  let sup = Tt.support t in
  let k = List.length sup in
  let sup_arr = Array.of_list sup in
  let subsets =
    (* all subsets of the support with 2 <= size < k *)
    let out = ref [] in
    for s = 1 to (1 lsl k) - 2 do
      let size = ref 0 and mask = ref 0 in
      for i = 0 to k - 1 do
        if (s lsr i) land 1 = 1 then begin
          incr size;
          mask := !mask lor (1 lsl sup_arr.(i))
        end
      done;
      if !size >= 2 then out := !mask :: !out
    done;
    !out
  in
  let full = support_mask t in
  List.exists
    (fun mask_a ->
      let mask_b = full land lnot mask_a in
      let bs = blocks_of t mask_b in
      (* blocks over A indexed by B-assignments *)
      let non_const = List.filter (fun b -> not (Tt.is_const b)) bs in
      match non_const with
      | [] -> false
      | g :: rest ->
        let ng = Tt.bnot g in
        List.for_all (fun b -> Tt.equal b g || Tt.equal b ng) rest)
    subsets

let kind t =
  match Tt.support t with
  | [] -> Constant
  | [ _ ] -> Literal
  | [ _; _ ] -> Full
  | _ ->
    if is_fully_dsd t then Full
    else if has_block_extraction t then Partial
    else Prime

let is_prime t = kind t = Prime
