type transform = {
  perm : int array;
  input_neg : int;
  output_neg : bool;
}

let identity n = { perm = Array.init n (fun i -> i); input_neg = 0; output_neg = false }

let apply t tr =
  let n = Tt.num_vars t in
  if Array.length tr.perm <> n then invalid_arg "Npn.apply";
  let t = ref t in
  for i = 0 to n - 1 do
    if (tr.input_neg lsr i) land 1 = 1 then t := Tt.negate_var !t i
  done;
  let t = Tt.permute !t tr.perm in
  if tr.output_neg then Tt.bnot t else t

let inverse tr =
  let n = Array.length tr.perm in
  (* With sigma the minterm map of perm (bit i of m lands at position
     perm(i)) and nu the negation mask, [apply t tr] computes
     m -> t(sigma(m) xor nu) xor o.  Since sigma is coordinate-linear,
     the inverse is perm' = perm⁻¹ and nu' = sigma⁻¹(nu), same output
     flag: bit j of nu lands at position perm⁻¹(j) of nu'. *)
  let perm' = Array.make n 0 in
  Array.iteri (fun i p -> perm'.(p) <- i) tr.perm;
  let neg' = ref 0 in
  for j = 0 to n - 1 do
    if (tr.input_neg lsr j) land 1 = 1 then neg' := !neg' lor (1 lsl perm'.(j))
  done;
  { perm = perm'; input_neg = !neg'; output_neg = tr.output_neg }

let permutations n =
  let rec insert_everywhere x = function
    | [] -> [ [ x ] ]
    | y :: ys as l ->
      (x :: l) :: List.map (fun r -> y :: r) (insert_everywhere x ys)
  in
  let rec perms = function
    | [] -> [ [] ]
    | x :: xs -> List.concat_map (insert_everywhere x) (perms xs)
  in
  perms (List.init n (fun i -> i)) |> List.map Array.of_list

let all_transforms n =
  let perms = permutations n in
  List.concat_map
    (fun perm ->
      List.concat_map
        (fun output_neg ->
          List.init (1 lsl n) (fun input_neg -> { perm; input_neg; output_neg }))
        [ false; true ])
    perms

let canonical t =
  let n = Tt.num_vars t in
  let best = ref t and best_tr = ref (identity n) in
  List.iter
    (fun tr ->
      let cand = apply t tr in
      if Tt.compare cand !best < 0 then begin
        best := cand;
        best_tr := tr
      end)
    (all_transforms n);
  (!best, !best_tr)

let is_canonical t = Tt.equal t (fst (canonical t))

let canon4_table =
  lazy
    (let total = 1 lsl 16 in
     let table = Array.make total (-1) in
     let transforms = all_transforms 4 in
     for v = 0 to total - 1 do
       if table.(v) < 0 then begin
         let rep = Tt.of_int 4 v in
         List.iter
           (fun tr ->
             let image = Tt.to_int (apply rep tr) in
             if table.(image) < 0 then table.(image) <- v)
           transforms
       end
     done;
     table)

let canon4 v =
  if v < 0 || v >= 1 lsl 16 then invalid_arg "Npn.canon4";
  (Lazy.force canon4_table).(v)

let classes n =
  if n > 4 then invalid_arg "Npn.classes: n too large for exhaustive sweep";
  let total = 1 lsl (1 lsl n) in
  let visited = Bytes.make total '\000' in
  let transforms = all_transforms n in
  let reps = ref [] in
  for v = 0 to total - 1 do
    if Bytes.get visited v = '\000' then begin
      let rep = Tt.of_int n v in
      reps := rep :: !reps;
      List.iter
        (fun tr ->
          let image = Tt.to_int (apply rep tr) in
          Bytes.set visited image '\001')
        transforms
    end
  done;
  List.rev !reps
