(** NPN classification of Boolean functions.

    Two functions are NPN-equivalent when one is obtained from the other
    by negating inputs, permuting inputs, and possibly negating the
    output. The canonical representative of a class is the minimum truth
    table (w.r.t. {!Tt.compare}) over the whole orbit, so canonicity is a
    simple equality test.

    Exhaustive canonicalisation enumerates all [2^n * n! * 2] transforms
    and is practical for [n <= 6]. *)

type transform = {
  perm : int array;  (** input permutation; see {!apply} *)
  input_neg : int;   (** bitmask of complemented inputs *)
  output_neg : bool; (** whether the output is complemented *)
}

val identity : int -> transform
(** [identity n] is the neutral transform on [n] variables. *)

val apply : Tt.t -> transform -> Tt.t
(** [apply t tr] complements the inputs of [t] selected by
    [tr.input_neg], then permutes inputs by [tr.perm] (in the sense of
    {!Tt.permute}), then complements the output if [tr.output_neg]. *)

val inverse : transform -> transform
(** [inverse tr] undoes [tr]: [apply (apply t tr) (inverse tr) = t]. *)

val canonical : Tt.t -> Tt.t * transform
(** [canonical t] is the class representative [r] together with a
    transform [tr] such that [apply t tr = r]. Practical for
    [Tt.num_vars t <= 6]. *)

val is_canonical : Tt.t -> bool

val classes : int -> Tt.t list
(** [classes n] enumerates the canonical representatives of all NPN
    classes of [n]-variable functions, ascending; practical for
    [n <= 4]. [classes 4] has 222 elements. *)

val permutations : int -> int array list
(** [permutations n] lists all permutations of [0 .. n-1]. *)

val canon4 : int -> int
(** [canon4 v] is the canonical representative (as a 16-bit integer
    truth table) of the NPN class of the 4-variable function [v]. Backed
    by a lazily built table over all 65536 functions; O(1) after the
    first call. *)
