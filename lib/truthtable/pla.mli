(** Reading and writing PLA (espresso) truth-table files — the format
    logic-synthesis benchmark suites ship single functions in.

    Supported subset: [.i], [.o], optional [.p]/[.ilb]/[.ob]/[.type f]
    and [.e]/[.end] directives, comment lines starting with [#], and
    product-term rows over inputs [0], [1], [-] with outputs [0], [1],
    [~] ([~] treated as 0). Minterms not covered by any row are 0 (the
    [f] interpretation). *)

val parse : string -> Tt.t array
(** [parse text] returns one truth table per output column.
    @raise Invalid_argument on malformed input. *)

val print : Format.formatter -> Tt.t array -> unit
(** Writes a minterm-per-row PLA covering the ON-sets; all tables must
    share one arity. *)
