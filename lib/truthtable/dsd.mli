(** Disjoint-support decomposition (DSD) analysis.

    A function is {e fully DSD-decomposable} (FDSD) when it can be
    written as a read-once formula over arbitrary 2-input gates: every
    support variable appears exactly once, and every internal block is a
    2-input operator. This matches the FDSD collections of the paper
    (functions "that occur frequently in practical synthesis and
    technology mapping" are predominantly of this shape).

    A function is {e partially DSD-decomposable} (PDSD) when it admits at
    least one proper disjoint-support block extraction but is not fully
    decomposable — its DSD tree contains a prime node.

    All analyses work on the function projected onto its support. *)

type kind =
  | Constant      (** no support *)
  | Literal       (** support of size 1 *)
  | Full          (** fully DSD-decomposable into 2-input gates *)
  | Partial       (** decomposable, but with a prime block *)
  | Prime         (** no proper disjoint decomposition at all *)

val kind : Tt.t -> kind

val is_fully_dsd : Tt.t -> bool
(** [is_fully_dsd t] is [true] iff [kind t] is [Full], [Literal] or
    [Constant]. *)

val is_prime : Tt.t -> bool
(** [is_prime t] is [true] iff [t] (projected onto its support, of size
    >= 3) admits no decomposition [t = F(g(A), B)] with [2 <= |A| <
    support] and no binary top split. *)

val top_splits : Tt.t -> (int * int) list
(** [top_splits t] lists the bipartitions [(maskA, maskB)] of the support
    of [t] (masks over variable indices, [maskA] containing the lowest
    support variable to avoid mirror duplicates) such that
    [t = phi (g maskA) (h maskB)] for some 2-input gate [phi] and
    subfunctions [g], [h] of disjoint supports. *)

val split : Tt.t -> int -> (Tt.t * Tt.t) option
(** [split t maskA] checks the candidate bipartition of [t]'s support
    into [maskA] and its complement. On success it returns subfunctions
    [(g, h)] over the full variable space with supports inside [maskA]
    and its complement, such that [t] is a 2-input gate applied to [g]
    and [h]. *)
