(** DAG shapes generated from fences (Fig. 3).

    A {e shape} fixes, for every node of a fence, which earlier nodes or
    fresh leaf slots its two fanins connect to — the "DAGs with
    connectivity information" of Section III-A. Leaf slots are anonymous
    here; the synthesis engine binds them to input variables.

    Structural constraints, following the paper:
    - nodes are 2-input; the two fanins are distinct;
    - every node takes at least one fanin from the level directly below
      it (bottom-level nodes read leaves only);
    - exactly one node sits at the top, and every other node is read by
      at least one later node;
    - within a level, nodes carry non-decreasing fanin pairs, removing
      most isomorphic duplicates. *)

type fanin =
  | N of int  (** an earlier node, by index *)
  | L of int  (** a leaf slot, numbered in order of appearance *)

type t = {
  fence : Fence.t;
  level : int array;             (** level of each node *)
  fanins : (fanin * fanin) array; (** per node, in topological order *)
  num_leaves : int;
  reach : int array;             (** per node: bitmask of reachable leaf slots *)
  is_tree : bool;                (** no internal node has fanout above 1 *)
}

val num_nodes : t -> int

val top : t -> int
(** Index of the (single) top node. *)

val of_fence : Fence.t -> t list
(** All shapes of one fence. *)

val enumerate : int -> t list
(** [enumerate k] is all shapes over all pruned fences of [k] nodes. *)

val iter_fence : Fence.t -> (t -> unit) -> unit
(** [iter_fence fence f] applies [f] to every shape of the fence without
    materialising the list — the shape families of large gate counts are
    big, and a synthesis run usually stops early (first solution or
    deadline, both delivered by exception). *)

val iter : int -> (t -> unit) -> unit
(** [iter k f] streams all shapes over all pruned fences of [k] nodes. *)

val reach_count : t -> int -> int
(** Number of leaf slots reachable from a node — an upper bound on its
    support size. *)

val pp : Format.formatter -> t -> unit
