type t = int array

let generate k =
  if k <= 0 then invalid_arg "Fence.generate";
  (* All compositions of k, shortest (fewest levels) first. *)
  let rec compositions k =
    if k = 0 then [ [] ]
    else
      List.concat_map
        (fun first -> List.map (fun rest -> first :: rest) (compositions (k - first)))
        (List.init k (fun i -> i + 1))
  in
  compositions k
  |> List.map Array.of_list
  |> List.sort (fun a b ->
         let c = Stdlib.compare (Array.length a) (Array.length b) in
         if c <> 0 then c else Stdlib.compare a b)

let num_nodes f = Array.fold_left ( + ) 0 f

let num_levels f = Array.length f

let feasible f =
  let l = Array.length f in
  f.(l - 1) = 1
  &&
  (* Every non-top level must be referenceable from above: level l' > ℓ+1
     contributes its free slots (one of its two is committed to the level
     directly below it), level ℓ+1 contributes both. *)
  let ok = ref true in
  for lev = 0 to l - 2 do
    let capacity = ref (2 * f.(lev + 1)) in
    for above = lev + 2 to l - 1 do
      capacity := !capacity + f.(above)
    done;
    if f.(lev) > !capacity then ok := false
  done;
  !ok

let prune fences = List.filter feasible fences

let generate_pruned k = prune (generate k)

let pp fmt f =
  Format.fprintf fmt "<";
  Array.iteri
    (fun i c ->
      if i > 0 then Format.fprintf fmt ",";
      Format.fprintf fmt "%d" c)
    f;
  Format.fprintf fmt ">"
