(** Boolean fences (Section III-A; Haaswijk et al., DAC'18).

    A fence over [k] nodes and [l] levels is a partition of the nodes
    into [l] non-empty levels. We represent a fence as an int array of
    per-level node counts, index 0 being the {e bottom} level (the one
    whose nodes read only primary inputs). *)

type t = int array

val generate : int -> t list
(** [generate k] is the full family [F_k]: all compositions of [k],
    grouped by number of levels, in a deterministic order.
    [List.length (generate k) = 2^(k-1)]. *)

val prune : t list -> t list
(** The paper's pruning (Fig. 2b): keep fences with a single node at the
    top (single-output networks) and through which 2-input nodes can
    form a connected, fully-used DAG: every non-top level must be
    referenceable, i.e. the nodes above any level must offer enough
    fanin slots for all nodes of that level, counting that each node
    must take at least one fanin from the level directly below it. *)

val generate_pruned : int -> t list

val num_nodes : t -> int

val num_levels : t -> int

val pp : Format.formatter -> t -> unit
(** Prints e.g. [<2,1>], bottom level first. *)
