type fanin = N of int | L of int

type t = {
  fence : Fence.t;
  level : int array;
  fanins : (fanin * fanin) array;
  num_leaves : int;
  reach : int array;
  is_tree : bool;
}

let num_nodes s = Array.length s.fanins

let top s = num_nodes s - 1

(* During generation leaves are anonymous; [Raw_leaf] marks a slot. *)
type raw = RN of int | RL

let raw_compare a b =
  match (a, b) with
  | RN i, RN j -> Stdlib.compare i j
  | RN _, RL -> -1
  | RL, RN _ -> 1
  | RL, RL -> 0

let pair_compare (a1, a2) (b1, b2) =
  let c = raw_compare a1 b1 in
  if c <> 0 then c else raw_compare a2 b2

let iter_fence fence yield =
  let l = Array.length fence in
  let num = Array.fold_left ( + ) 0 fence in
  (* node index ranges per level *)
  let level_start = Array.make l 0 in
  for i = 1 to l - 1 do
    level_start.(i) <- level_start.(i - 1) + fence.(i - 1)
  done;
  let level_of = Array.make num 0 in
  for lev = 0 to l - 1 do
    for i = level_start.(lev) to level_start.(lev) + fence.(lev) - 1 do
      level_of.(i) <- lev
    done
  done;
  (* Fanin pair candidates for a node at level [lev], normalised so the
     pair is sorted and distinct (two leaf slots are distinct signals, so
     (RL, RL) is allowed). At least one fanin is from level lev-1. *)
  let candidates lev =
    if lev = 0 then [ (RL, RL) ]
    else begin
      let prev =
        List.init fence.(lev - 1) (fun i -> RN (level_start.(lev - 1) + i))
      in
      let lower =
        List.concat
          (List.init (level_start.(lev - 1)) (fun i -> [ RN i ]))
      in
      let others = (RL :: lower) @ prev in
      let pairs = ref [] in
      List.iter
        (fun p ->
          List.iter
            (fun o ->
              let pair = if raw_compare p o <= 0 then (p, o) else (o, p) in
              match pair with
              | RN i, RN j when i = j -> ()
              | _ -> if not (List.mem pair !pairs) then pairs := pair :: !pairs)
            others)
        prev;
      List.sort pair_compare !pairs
    end
  in
  (* Cook a raw result: number the leaf slots, compute reach masks. *)
  let cook raw =
    let next_leaf = ref 0 in
    let fanins =
      Array.map
        (fun (a, b) ->
          let cook_one = function
            | RN i -> N i
            | RL ->
              let id = !next_leaf in
              incr next_leaf;
              L id
          in
          let a = cook_one a in
          let b = cook_one b in
          (a, b))
        raw
    in
    let reach = Array.make num 0 in
    Array.iteri
      (fun i (a, b) ->
        let r = function N j -> reach.(j) | L id -> 1 lsl id in
        reach.(i) <- r a lor r b)
      fanins;
    let fanout = Array.make num 0 in
    Array.iter
      (fun (a, b) ->
        (match a with N j -> fanout.(j) <- fanout.(j) + 1 | L _ -> ());
        match b with N j -> fanout.(j) <- fanout.(j) + 1 | L _ -> ())
      fanins;
    let is_tree = Array.for_all (fun c -> c <= 1) fanout in
    { fence; level = level_of; fanins; num_leaves = !next_leaf; reach; is_tree }
  in
  (* Enumerate per node, with non-decreasing pairs within a level. *)
  let chosen = Array.make num (RL, RL) in
  let rec go node =
    if node = num then begin
      (* fanout check: every non-top node referenced *)
      let used = Array.make num false in
      Array.iter
        (fun (a, b) ->
          (match a with RN j -> used.(j) <- true | RL -> ());
          match b with RN j -> used.(j) <- true | RL -> ())
        chosen;
      let ok = ref true in
      for i = 0 to num - 2 do
        if not used.(i) then ok := false
      done;
      if !ok then yield (cook (Array.copy chosen))
    end
    else begin
      let lev = level_of.(node) in
      let first_of_level = node = level_start.(lev) in
      List.iter
        (fun pair ->
          if first_of_level || pair_compare chosen.(node - 1) pair <= 0 then begin
            chosen.(node) <- pair;
            go (node + 1)
          end)
        (candidates lev)
    end
  in
  go 0

let of_fence fence =
  let acc = ref [] in
  iter_fence fence (fun s -> acc := s :: !acc);
  List.rev !acc

let iter k yield = List.iter (fun f -> iter_fence f yield) (Fence.generate_pruned k)

let enumerate k =
  List.concat_map of_fence (Fence.generate_pruned k)

let popcount x =
  let rec loop x acc = if x = 0 then acc else loop (x land (x - 1)) (acc + 1) in
  loop x 0

let reach_count s i = popcount s.reach.(i)

let pp_fanin fmt = function
  | N i -> Format.fprintf fmt "n%d" i
  | L i -> Format.fprintf fmt "l%d" i

let pp fmt s =
  Format.fprintf fmt "%a[" Fence.pp s.fence;
  Array.iteri
    (fun i (a, b) ->
      if i > 0 then Format.fprintf fmt " ";
      Format.fprintf fmt "n%d=(%a,%a)" i pp_fanin a pp_fanin b)
    s.fanins;
  Format.fprintf fmt "]"
