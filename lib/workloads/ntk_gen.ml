module Ntk = Stp_network.Ntk
module Prng = Stp_util.Prng

(* A growable pool of literals the generator draws operands from. *)
type pool = { mutable lits : Ntk.lit array; mutable len : int }

let pool_add p l =
  if p.len = Array.length p.lits then begin
    let grown = Array.make (2 * p.len) 0 in
    Array.blit p.lits 0 grown 0 p.len;
    p.lits <- grown
  end;
  p.lits.(p.len) <- l;
  p.len <- p.len + 1

(* Recency-biased draw: half the picks come from the newest 64 pool
   entries, so later logic reads earlier logic and the DAG deepens
   instead of staying a two-level crust over the PIs. *)
let pick rng p =
  let i =
    if Prng.bool rng then p.len - 1 - Prng.int rng (min 64 p.len)
    else Prng.int rng p.len
  in
  let l = p.lits.(i) in
  if Prng.int rng 4 = 0 then Ntk.lit_not l else l

let generate ?(seed = 1) ?(pis = 64) ?(pos = 32) ?(redundancy = 0.15)
    ~nodes () =
  if pis < 1 then invalid_arg "Ntk_gen.generate: pis < 1";
  if pos < 1 then invalid_arg "Ntk_gen.generate: pos < 1";
  if nodes < 0 then invalid_arg "Ntk_gen.generate: nodes < 0";
  if redundancy < 0.0 || redundancy > 1.0 then
    invalid_arg "Ntk_gen.generate: redundancy outside [0, 1]";
  let rng = Prng.create seed in
  let t = Ntk.create ~capacity:(nodes + pis + 1) () in
  let p = { lits = Array.make 1024 0; len = 0 } in
  for _ = 1 to pis do
    pool_add p (Ntk.add_pi t)
  done;
  let add l = pool_add p l in
  (* one plain gate *)
  let plain () =
    let a = pick rng p and b = pick rng p in
    match Prng.int rng 8 with
    | 0 | 1 | 2 -> add (Ntk.add_and t a b)
    | 3 | 4 | 5 -> add (Ntk.add_or t a b)
    | 6 -> add (Ntk.add_xor t a b)
    | _ ->
      let s = pick rng p in
      add (Ntk.add_or t (Ntk.add_and t s a) (Ntk.add_and t (Ntk.lit_not s) b))
  in
  (* Redundancy templates: the same function through two structurally
     different forms, which strashing cannot unify — the candidate
     pairs a sweep proves and merges. Both forms enter the pool. *)
  let template () =
    let a = pick rng p and b = pick rng p and c = pick rng p in
    match Prng.int rng 6 with
    | 0 ->
      (* XOR: sum-of-products vs complemented XNOR cover *)
      add (Ntk.add_xor t a b);
      add
        (Ntk.lit_not
           (Ntk.add_or t (Ntk.add_and t a b)
              (Ntk.add_and t (Ntk.lit_not a) (Ntk.lit_not b))))
    | 1 ->
      (* MUX: the OR-of-ANDs form vs the XOR decomposition *)
      add
        (Ntk.add_or t (Ntk.add_and t c a) (Ntk.add_and t (Ntk.lit_not c) b));
      add (Ntk.add_xor t b (Ntk.add_and t c (Ntk.add_xor t a b)))
    | 2 ->
      (* distributivity: a(b + c) vs ab + ac *)
      add (Ntk.add_and t a (Ntk.add_or t b c));
      add (Ntk.add_or t (Ntk.add_and t a b) (Ntk.add_and t a c))
    | 3 ->
      (* majority, both classic covers *)
      add
        (Ntk.add_or t
           (Ntk.add_or t (Ntk.add_and t a b) (Ntk.add_and t a c))
           (Ntk.add_and t b c));
      add (Ntk.add_or t (Ntk.add_and t a b) (Ntk.add_and t c (Ntk.add_or t a b)))
    | 4 ->
      (* absorption: ab + a(not b) collapses onto the literal a *)
      add (Ntk.add_or t (Ntk.add_and t a b) (Ntk.add_and t a (Ntk.lit_not b)))
    | _ ->
      (* a non-trivially constant cone: ab & (not a)c = 0 *)
      add
        (Ntk.add_and t (Ntk.add_and t a b)
           (Ntk.add_and t (Ntk.lit_not a) c))
  in
  while Ntk.num_ands t < nodes do
    if Prng.float rng < redundancy then template () else plain ()
  done;
  (* Fold every fanout-free node (and PI) into the outputs through
     balanced random gate trees: nothing stays dead, so the sweep sees
     every planted equivalence. *)
  let refs = Ntk.refcounts t in
  let queue = Queue.create () in
  for v = 1 to Ntk.num_vars t - 1 do
    if refs.(v) = 0 then Queue.add (Ntk.lit_of_var v false) queue
  done;
  while Queue.length queue < pos do
    Queue.add (pick rng p) queue
  done;
  while Queue.length queue > pos do
    let a = Queue.pop queue and b = Queue.pop queue in
    let l =
      if Prng.bool rng then Ntk.add_and t a b else Ntk.add_or t a b
    in
    Queue.add l queue
  done;
  Queue.iter (fun l -> ignore (Ntk.add_po t l)) queue;
  t
