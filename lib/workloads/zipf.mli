(** Zipf-distributed NPN4 request streams for the service soak bench.

    Class popularity is [1/rank^alpha] over a seed-shuffled rank order
    of the 221 synthesizable {!Npn4} classes: a hot head a cache
    answers after first sight, plus a cold tail that keeps arriving
    throughout a run. Every draw is a uniformly random {e member} of
    the picked class (random NPN transform), so consumers exercise
    canonicalisation rather than replaying literal representatives.
    Deterministic in [seed] ({!Stp_util.Prng}). *)

type t

val create : ?seed:int -> ?alpha:float -> unit -> t
(** Default [seed = 1], [alpha = 1.1]. [alpha = 0] is uniform; larger
    skews hotter. @raise Invalid_argument when [alpha < 0]. *)

val num_classes : t -> int

val next : t -> int * string
(** One request target: [(n, tt_hex)] in the daemon protocol's
    [n]/[tt] format. *)

val next_class : t -> Stp_tt.Tt.t
(** Like {!next} but returns the drawn class representative itself
    (no member randomisation) — for shard-balance analysis. *)
