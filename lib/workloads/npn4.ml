let cache = lazy (Stp_tt.Npn.classes 4)

let all () = Lazy.force cache

let synthesizable () =
  List.filter (fun t -> Stp_tt.Tt.support_size t > 0) (all ())
