(** The five function collections of Table I, with configurable scale.

    Paper scale: NPN4 = all 222 classes, FDSD6/PDSD6 = 1000 functions,
    FDSD8/PDSD8 = 100 functions. The default scale is reduced so that
    the bench harness completes in minutes on a laptop; see DESIGN.md
    section 4 and the [--paper-scale] flag of [bin/table1.exe]. *)

type t = {
  name : string;
  functions : Stp_tt.Tt.t list;
}

type scale = Default | Paper | Custom of float
(** [Custom f] multiplies the paper's instance counts by [f] (at least
    one instance per collection). *)

val npn4 : scale -> t

val npn4_all : scale -> t
(** All 65 534 non-constant 4-input functions (strided subsample below
    paper scale; default ~2048) — 221 synthesizable NPN classes each
    appearing many times, the showcase workload for the NPN-class
    synthesis cache. Not part of the paper's Table I. *)

val fdsd6 : scale -> t
val fdsd8 : scale -> t
val pdsd6 : scale -> t
val pdsd8 : scale -> t

val table1 : scale -> t list
(** The five rows of Table I, in the paper's order. *)
