module Tt = Stp_tt.Tt
module Prng = Stp_util.Prng

(* The ten 2-input gate codes that depend on both operands; composing
   read-once trees out of these preserves full support. *)
let nontrivial_gates = [| 1; 2; 4; 6; 7; 8; 9; 11; 13; 14 |]

let apply_gate code a b = Tt.apply2 code a b

(* Random read-once tree over the given projections. *)
let rec read_once rng = function
  | [] -> invalid_arg "Dsd_gen.read_once"
  | [ leaf ] -> leaf
  | leaves ->
    let arr = Array.of_list leaves in
    Prng.shuffle rng arr;
    let cut = 1 + Prng.int rng (Array.length arr - 1) in
    let left = Array.to_list (Array.sub arr 0 cut) in
    let right = Array.to_list (Array.sub arr cut (Array.length arr - cut)) in
    let code = Prng.pick rng nontrivial_gates in
    apply_gate code (read_once rng left) (read_once rng right)

let fdsd ~n ~seed =
  if n < 2 then invalid_arg "Dsd_gen.fdsd";
  let rng = Prng.create (seed * 2654435761 + n) in
  let leaves = List.init n (fun i -> Tt.var n i) in
  let t = read_once rng leaves in
  if Prng.bool rng then Tt.bnot t else t

let prime_cores =
  let candidates = List.init 256 (fun v -> Tt.of_int 3 v) in
  List.filter
    (fun t -> Tt.support_size t = 3 && Stp_tt.Dsd.is_prime t)
    candidates

let pdsd ~n ~seed =
  if n < 4 then invalid_arg "Dsd_gen.pdsd";
  let cores = Array.of_list prime_cores in
  let rec attempt salt =
    let rng = Prng.create ((seed * 48271) + (salt * 69621) + n) in
    (* Choose three variables for the prime core. *)
    let vars = Array.init n (fun i -> i) in
    Prng.shuffle rng vars;
    let core3 = Prng.pick rng cores in
    let core =
      Tt.expand core3 n [| vars.(0); vars.(1); vars.(2) |]
    in
    let free = Array.to_list (Array.sub vars 3 (n - 3)) in
    let leaves = core :: List.map (fun i -> Tt.var n i) free in
    let t = read_once rng leaves in
    let t = if Prng.bool rng then Tt.bnot t else t in
    if Stp_tt.Dsd.kind t = Stp_tt.Dsd.Partial then t else attempt (salt + 1)
  in
  attempt 0

let collection gen ~n ~count ~seed =
  let seen = Hashtbl.create 97 in
  let rec loop acc produced salt =
    if produced = count then List.rev acc
    else begin
      let t = gen ~n ~seed:(seed + salt) in
      let key = Tt.to_hex t in
      if Hashtbl.mem seen key then loop acc produced (salt + 1)
      else begin
        Hashtbl.replace seen key ();
        loop (t :: acc) (produced + 1) (salt + 1)
      end
    end
  in
  loop [] 0 0

let fdsd_collection ~n ~count ~seed = collection fdsd ~n ~count ~seed

let pdsd_collection ~n ~count ~seed = collection pdsd ~n ~count ~seed
