(** The NPN4 collection: the 222 NPN classes of 4-input functions
    (Haaswijk et al., ASP-DAC'17). *)

val all : unit -> Stp_tt.Tt.t list
(** All 222 canonical representatives, ascending; computed once and
    cached. *)

val synthesizable : unit -> Stp_tt.Tt.t list
(** The classes that have a Boolean chain: all but the constant class
    (221 functions; the projection class synthesises to zero gates). *)
