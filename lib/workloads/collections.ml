type t = { name : string; functions : Stp_tt.Tt.t list }

type scale = Default | Paper | Custom of float

let scaled scale ~paper ~default =
  match scale with
  | Paper -> paper
  | Default -> default
  | Custom f -> max 1 (int_of_float (float_of_int paper *. f))

let npn4 _scale = { name = "NPN4"; functions = Npn4.synthesizable () }

(* Every 4-input function, not just the class representatives: 65 534
   non-constant functions behind 221 synthesizable classes — the
   workload where NPN-class reuse pays (~300 members per class). The
   stride subsample keeps the per-class mix. *)
let npn4_all scale =
  let count = scaled scale ~paper:65534 ~default:2048 in
  let total = 65534 in
  let step = max 1 (total / count) in
  let functions = ref [] in
  let v = ref 1 in
  while !v <= total do
    functions := Stp_tt.Tt.of_int 4 !v :: !functions;
    v := !v + step
  done;
  { name = "NPN4ALL"; functions = List.rev !functions }

let fdsd6 scale =
  let count = scaled scale ~paper:1000 ~default:100 in
  { name = "FDSD6"; functions = Dsd_gen.fdsd_collection ~n:6 ~count ~seed:101 }

let fdsd8 scale =
  let count = scaled scale ~paper:100 ~default:25 in
  { name = "FDSD8"; functions = Dsd_gen.fdsd_collection ~n:8 ~count ~seed:202 }

let pdsd6 scale =
  let count = scaled scale ~paper:1000 ~default:50 in
  { name = "PDSD6"; functions = Dsd_gen.pdsd_collection ~n:6 ~count ~seed:303 }

let pdsd8 scale =
  let count = scaled scale ~paper:100 ~default:10 in
  { name = "PDSD8"; functions = Dsd_gen.pdsd_collection ~n:8 ~count ~seed:404 }

let table1 scale = [ npn4 scale; fdsd6 scale; fdsd8 scale; pdsd6 scale; pdsd8 scale ]
