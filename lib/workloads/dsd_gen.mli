(** Generators for the paper's DSD function collections.

    - FDSD: fully-DSD-decomposable functions, built as random read-once
      formulas over 2-input gates with random complementations; every
      variable appears exactly once.
    - PDSD: partially-DSD functions, built like FDSD but with one random
      leaf block replaced by a prime (non-decomposable) core of three
      variables, then rejection-checked to be decomposable-but-not-fully
      with {!Stp_tt.Dsd.kind}.

    All generators are deterministic in the seed and guarantee full
    support. *)

val fdsd : n:int -> seed:int -> Stp_tt.Tt.t
(** One fully-DSD function of [n] variables. *)

val pdsd : n:int -> seed:int -> Stp_tt.Tt.t
(** One partially-DSD function of [n >= 4] variables. *)

val fdsd_collection : n:int -> count:int -> seed:int -> Stp_tt.Tt.t list
(** Distinct functions, deterministic in the seed. *)

val pdsd_collection : n:int -> count:int -> seed:int -> Stp_tt.Tt.t list

val prime_cores : Stp_tt.Tt.t list
(** The 3-input prime functions used as PDSD cores (majority and its
    NPN relatives), over 3 variables. *)
