(* A Zipf-distributed stream of NPN4 requests: class popularity follows
   1/rank^alpha over a seed-dependent rank order of the 221
   synthesizable NPN4 classes. The head classes dominate (cache hits
   after first sight), the tail trickles in cold classes throughout a
   run — the soak harness's model of a synthesis service's steady
   state. Each draw picks a class by CDF inversion, then a uniformly
   random member of that class (random input permutation, input
   complement mask and output complement), so the request stream
   exercises canonicalisation, not just table lookup. *)

module Tt = Stp_tt.Tt
module Npn = Stp_tt.Npn
module Prng = Stp_util.Prng

type t = {
  prng : Prng.t;
  classes : Tt.t array;  (* seed-shuffled: index = popularity rank *)
  cdf : float array;     (* cdf.(i) = P(rank <= i) *)
}

let create ?(seed = 1) ?(alpha = 1.1) () =
  if alpha < 0.0 then invalid_arg "Zipf.create: alpha must be >= 0";
  let prng = Prng.create seed in
  let classes = Array.of_list (Npn4.synthesizable ()) in
  Prng.shuffle prng classes;
  let n = Array.length classes in
  let cdf = Array.make n 0.0 in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (i + 1)) alpha);
    cdf.(i) <- !total
  done;
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. !total
  done;
  { prng; classes; cdf }

let num_classes t = Array.length t.classes

let rank t =
  let u = Prng.float t.prng in
  (* First index with cdf >= u. *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let random_transform prng n =
  let perm = Array.init n Fun.id in
  Prng.shuffle prng perm;
  { Npn.perm; input_neg = Prng.bits prng n; output_neg = Prng.bool prng }

let next t =
  let cls = t.classes.(rank t) in
  let n = Tt.num_vars cls in
  let member = Npn.apply cls (random_transform t.prng n) in
  (n, Tt.to_hex member)

let next_class t = t.classes.(rank t)
