(** Seeded random/structured netlist generator for sweep-scale
    workloads.

    The committed example benchmarks top out at a few dozen AND nodes;
    SAT-sweeping is about netlists three to five orders of magnitude
    beyond that. This generator grows a deterministic AIG of roughly
    [nodes] AND nodes from a seed — committed as a generator, not as
    multi-megabyte files.

    Two kinds of logic are mixed:

    - {b random gates}: AND/OR/XOR/MUX over recency-biased operands,
      giving an irregular DAG with realistic sharing;
    - {b redundancy templates} (fraction [redundancy] of draws): the
      same function built through two structurally different forms that
      strashing cannot unify — XOR vs its complemented-cover dual, the
      two classic MUX decompositions, AND-over-OR vs its distributed
      form, majority both ways, an absorption identity equivalent to an
      existing literal, and a non-trivially constant cone. These are
      exactly the candidate classes a sweep must find, prove and merge,
      so the proven-merge count of a run has a known-positive floor.

    Every node is made observable: leftovers with no fanout are folded
    into the primary outputs through balanced gate trees, so the live
    AND count equals the AND count and no candidate equivalence hides
    in dead logic. The result may therefore exceed [nodes] by the size
    of those trees (worst case ~20%). *)

val generate :
  ?seed:int ->
  ?pis:int ->
  ?pos:int ->
  ?redundancy:float ->
  nodes:int ->
  unit ->
  Stp_network.Ntk.t
(** Defaults: [seed = 1], [pis = 64], [pos = 32], [redundancy = 0.15].
    [nodes] is a floor on the AND count (see above for the ceiling).
    @raise Invalid_argument on [pis < 1], [pos < 1], [nodes < 0] or
    [redundancy] outside [0, 1]. *)
