module Tt = Stp_tt.Tt
module Chain = Stp_chain.Chain
module Mchain = Stp_chain.Mchain
module Solver = Stp_sat.Solver
module Lit = Stp_sat.Lit

type t = {
  solver : Solver.t;
  n : int;
  r : int;
  sel : (int * int * int) list array; (* (j, k, var) per gate *)
  op : int array array;
  sim : int array array;              (* sim.(i).(m) for m >= 1 *)
  out_sel : int array array;          (* out_sel.(k).(signal) *)
  flags : bool array;                 (* per-output static complement *)
}

let build ?basis ~solver ~fs ~r () =
  if Array.length fs = 0 then invalid_arg "Ssv_multi.build: no outputs";
  let n = Tt.num_vars fs.(0) in
  Array.iter
    (fun f -> if Tt.num_vars f <> n then invalid_arg "Ssv_multi.build: arity")
    fs;
  (* Normalise every output; remember the complement flags. *)
  let flags = Array.map (fun f -> Tt.get f 0) fs in
  let fs = Array.mapi (fun k f -> if flags.(k) then Tt.bnot f else f) fs in
  let num_minterms = (1 lsl n) - 1 in
  let sel =
    Array.init r (fun i ->
        let total = n + i in
        let pairs = ref [] in
        for j = 0 to total - 1 do
          for k = j + 1 to total - 1 do
            pairs := (j, k, Solver.new_var solver) :: !pairs
          done
        done;
        List.rev !pairs)
  in
  if r > 0 && Array.exists (fun l -> l = []) sel then None
  else begin
    let op = Array.init r (fun _ -> Array.init 3 (fun _ -> Solver.new_var solver)) in
    let sim =
      Array.init r (fun _ -> Array.init num_minterms (fun _ -> Solver.new_var solver))
    in
    let out_sel =
      Array.init (Array.length fs) (fun _ ->
          Array.init (n + r) (fun _ -> Solver.new_var solver))
    in
    (* signal value on minterm m: Ok lit / Error constant *)
    let signal_lit s v m =
      if s < n then Error ((m lsr s) land 1 = if v then 1 else 0)
      else Ok (Lit.make sim.(s - n).(m - 1) v)
    in
    (* gate semantics clauses, all minterms *)
    for i = 0 to r - 1 do
      List.iter
        (fun (j, k, s) ->
          for m = 1 to num_minterms do
            for a = 0 to 1 do
              for b = 0 to 1 do
                for c = 0 to 1 do
                  let op_term =
                    if a = 0 && b = 0 then if c = 0 then `True else `Absent
                    else
                      let idx = (2 * a) + b - 1 in
                      `Lit (Lit.make op.(i).(idx) (c = 1))
                  in
                  match op_term with
                  | `True -> ()
                  | (`Absent | `Lit _) as term -> (
                    let rec build acc = function
                      | [] ->
                        let acc =
                          match term with `Lit l -> l :: acc | `Absent -> acc
                        in
                        Solver.add_clause solver acc
                      | (sig_, v) :: rest -> (
                        match signal_lit sig_ (v = 1) m with
                        | Error true -> build acc rest
                        | Error false -> ()
                        | Ok l -> build (Lit.negate l :: acc) rest)
                    in
                    build [ Lit.neg s ] [ (j, a); (k, b); (n + i, c) ])
                done
              done
            done
          done)
        sel.(i)
    done;
    (* at least one fanin pair per gate *)
    Array.iter
      (fun pairs ->
        if pairs <> [] then
          Solver.add_clause solver (List.map (fun (_, _, s) -> Lit.pos s) pairs))
      sel;
    (* nontrivial operators (and optional basis restriction) *)
    Array.iter
      (fun o ->
        let o01 = o.(0) and o10 = o.(1) and o11 = o.(2) in
        Solver.add_clause solver [ Lit.pos o10; Lit.pos o01; Lit.pos o11 ];
        Solver.add_clause solver [ Lit.pos o10; Lit.neg o01; Lit.neg o11 ];
        Solver.add_clause solver [ Lit.pos o01; Lit.pos o10; Lit.pos o11 ];
        Solver.add_clause solver [ Lit.pos o01; Lit.neg o10; Lit.neg o11 ];
        match basis with
        | None -> ()
        | Some allowed ->
          List.iter
            (fun c ->
              if c land 1 = 0 && not (List.mem c allowed) then begin
                let bit p = (c lsr p) land 1 = 1 in
                Solver.add_clause solver
                  [ Lit.make o01 (not (bit 1));
                    Lit.make o10 (not (bit 2));
                    Lit.make o11 (not (bit 3)) ]
              end)
            Stp_chain.Gate.nontrivial)
      op;
    (* outputs: one selected signal each, agreeing with the function *)
    Array.iteri
      (fun k osel ->
        Solver.add_clause solver
          (Array.to_list (Array.map Lit.pos osel));
        Array.iteri
          (fun s v ->
            (* selected signal must match f_k on every minterm (minterm 0
               is 0 = f_k(0) for gates by normality; for input signals it
               must be checked: inputs are 0 on minterm 0 too). *)
            for m = 1 to num_minterms do
              match signal_lit s (Tt.get fs.(k) m) m with
              | Error true -> ()
              | Error false -> Solver.add_clause solver [ Lit.neg v ]
              | Ok l -> Solver.add_clause solver [ Lit.neg v; l ]
            done;
            (* minterm 0: gates are normal (= 0) and inputs are 0; a
               normalised f_k has f_k(0) = 0, so nothing to add *)
            ignore s)
          osel)
      out_sel;
    (* every gate is read by a later gate or an output *)
    for i = 0 to r - 1 do
      let users = ref [] in
      for i' = i + 1 to r - 1 do
        List.iter
          (fun (j, k, s) -> if j = n + i || k = n + i then users := Lit.pos s :: !users)
          sel.(i')
      done;
      Array.iter (fun osel -> users := Lit.pos osel.(n + i) :: !users) out_sel;
      Solver.add_clause solver !users
    done;
    Some { solver; n; r; sel; op; sim; out_sel; flags }
  end

(* Monotone-extensible variant: one long-lived solver across gate
   budgets (see {!Ssv.Inc} for the idea). Gate semantics, operator
   constraints and per-signal output-agreement clauses persist; the
   per-budget clauses — each output picks some signal within the
   budget, each gate is read by a later gate or an output — hang off a
   per-budget selector. *)
module Inc = struct
  type inc = {
    solver : Solver.t;
    n : int;
    fs : Tt.t array;      (* normalised outputs *)
    flags : bool array;   (* per-output static complement *)
    basis : Stp_chain.Gate.code list option;
    num_minterms : int;
    mutable gates : int;
    mutable sel : (int * int * int) list array;
    mutable op : int array array;
    mutable sim : int array array;     (* sim.(i).(m-1) *)
    mutable out_sel : int array array; (* out_sel.(k), length n + gates *)
    selectors : (int, Lit.t) Hashtbl.t;
    mutable infeasible : bool;
  }

  let create ?basis ~solver ~fs () =
    if Array.length fs = 0 then invalid_arg "Ssv_multi.Inc.create: no outputs";
    let n = Tt.num_vars fs.(0) in
    Array.iter
      (fun f ->
        if Tt.num_vars f <> n then invalid_arg "Ssv_multi.Inc.create: arity")
      fs;
    let flags = Array.map (fun f -> Tt.get f 0) fs in
    let fs = Array.mapi (fun k f -> if flags.(k) then Tt.bnot f else f) fs in
    let num_minterms = (1 lsl n) - 1 in
    let c =
      { solver; n; fs; flags; basis; num_minterms; gates = 0; sel = [||];
        op = [||]; sim = [||]; out_sel = [||];
        selectors = Hashtbl.create 7; infeasible = false }
    in
    (* Output-agreement clauses for the primary-input signals: selecting
       input [s] for output [k] is a unit refutation wherever the input
       column disagrees with f_k (inputs are constants per minterm). *)
    c.out_sel <-
      Array.map
        (fun fk ->
          Array.init n (fun s ->
              let v = Solver.new_var solver in
              (try
                 for m = 1 to num_minterms do
                   if (m lsr s) land 1 <> (if Tt.get fk m then 1 else 0) then begin
                     Solver.add_clause solver [ Lit.neg v ];
                     raise Exit
                   end
                 done
               with Exit -> ());
              v))
        c.fs;
    c

  let solver c = c.solver

  (* value of signal [s] on minterm [m]: [Ok lit] / [Error const] *)
  let signal_lit c s v m =
    if s < c.n then Error ((m lsr s) land 1 = if v then 1 else 0)
    else Ok (Lit.make c.sim.(s - c.n).(m - 1) v)

  let ensure_gates c r =
    while c.gates < r && not c.infeasible do
      let i = c.gates in
      let total = c.n + i in
      if total < 2 then c.infeasible <- true
      else begin
        let pairs = ref [] in
        for j = 0 to total - 1 do
          for k = j + 1 to total - 1 do
            pairs := (j, k, Solver.new_var c.solver) :: !pairs
          done
        done;
        let pairs = List.rev !pairs in
        let opv = Array.init 3 (fun _ -> Solver.new_var c.solver) in
        let simv =
          Array.init c.num_minterms (fun _ -> Solver.new_var c.solver)
        in
        c.sel <- Array.append c.sel [| pairs |];
        c.op <- Array.append c.op [| opv |];
        c.sim <- Array.append c.sim [| simv |];
        (* gate semantics clauses over every minterm *)
        List.iter
          (fun (j, k, s) ->
            for m = 1 to c.num_minterms do
              for a = 0 to 1 do
                for b = 0 to 1 do
                  for cv = 0 to 1 do
                    let op_term =
                      if a = 0 && b = 0 then if cv = 0 then `True else `Absent
                      else
                        let idx = (2 * a) + b - 1 in
                        `Lit (Lit.make opv.(idx) (cv = 1))
                    in
                    match op_term with
                    | `True -> ()
                    | (`Absent | `Lit _) as term -> (
                      let rec build acc = function
                        | [] ->
                          let acc =
                            match term with
                            | `Lit l -> l :: acc
                            | `Absent -> acc
                          in
                          Solver.add_clause c.solver acc
                        | (sig_, v) :: rest -> (
                          match signal_lit c sig_ (v = 1) m with
                          | Error true -> build acc rest
                          | Error false -> ()
                          | Ok l -> build (Lit.negate l :: acc) rest)
                      in
                      build [ Lit.neg s ] [ (j, a); (k, b); (c.n + i, cv) ])
                  done
                done
              done
            done)
          pairs;
        Solver.add_clause c.solver
          (List.map (fun (_, _, s) -> Lit.pos s) pairs);
        let o01 = opv.(0) and o10 = opv.(1) and o11 = opv.(2) in
        Solver.add_clause c.solver [ Lit.pos o10; Lit.pos o01; Lit.pos o11 ];
        Solver.add_clause c.solver [ Lit.pos o10; Lit.neg o01; Lit.neg o11 ];
        Solver.add_clause c.solver [ Lit.pos o01; Lit.pos o10; Lit.pos o11 ];
        Solver.add_clause c.solver [ Lit.pos o01; Lit.neg o10; Lit.neg o11 ];
        (match c.basis with
         | None -> ()
         | Some allowed ->
           List.iter
             (fun code ->
               if code land 1 = 0 && not (List.mem code allowed) then begin
                 let bit p = (code lsr p) land 1 = 1 in
                 Solver.add_clause c.solver
                   [ Lit.make o01 (not (bit 1));
                     Lit.make o10 (not (bit 2));
                     Lit.make o11 (not (bit 3)) ]
               end)
             Stp_chain.Gate.nontrivial);
        (* one output-selection variable per output for the new signal,
           with unconditional agreement clauses *)
        c.out_sel <-
          Array.mapi
            (fun k osel ->
              let v = Solver.new_var c.solver in
              for m = 1 to c.num_minterms do
                Solver.add_clause c.solver
                  [ Lit.neg v;
                    Lit.make simv.(m - 1) (Tt.get c.fs.(k) m) ]
              done;
              Array.append osel [| v |])
            c.out_sel;
        c.gates <- i + 1
      end
    done;
    not c.infeasible

  let budget_selector c r =
    if r < 1 || not (ensure_gates c r) then None
    else
      match Hashtbl.find_opt c.selectors r with
      | Some sel -> Some sel
      | None ->
        let sel = Solver.new_selector c.solver in
        Hashtbl.replace c.selectors r sel;
        (* every output picks a signal within the budget *)
        Array.iter
          (fun osel ->
            let lits = ref [ Lit.negate sel ] in
            for s = 0 to c.n + r - 1 do
              lits := Lit.pos osel.(s) :: !lits
            done;
            Solver.add_clause c.solver !lits)
          c.out_sel;
        (* every gate is read by a later gate (within budget) or an
           output *)
        for i = 0 to r - 1 do
          let users = ref [ Lit.negate sel ] in
          for i' = i + 1 to r - 1 do
            List.iter
              (fun (j, k, s) ->
                if j = c.n + i || k = c.n + i then users := Lit.pos s :: !users)
              c.sel.(i')
          done;
          Array.iter
            (fun osel -> users := Lit.pos osel.(c.n + i) :: !users)
            c.out_sel;
          Solver.add_clause c.solver !users
        done;
        Some sel

  let retire c r =
    match Hashtbl.find_opt c.selectors r with
    | None -> ()
    | Some sel ->
      Hashtbl.remove c.selectors r;
      Solver.retire c.solver sel

  let decode c ~r =
    let steps =
      List.init r (fun i ->
          let j, k, _ =
            match
              List.find_opt (fun (_, _, s) -> Solver.value c.solver s) c.sel.(i)
            with
            | Some p -> p
            | None -> invalid_arg "Ssv_multi.Inc.decode: no selection"
          in
          let bit idx = if Solver.value c.solver c.op.(i).(idx) then 1 else 0 in
          let gate = (bit 0 lsl 1) lor (bit 1 lsl 2) lor (bit 2 lsl 3) in
          { Chain.fanin1 = j; fanin2 = k; gate })
    in
    let outputs =
      Array.to_list
        (Array.mapi
           (fun k osel ->
             let s =
               let rec find i =
                 if i >= c.n + r then
                   invalid_arg "Ssv_multi.Inc.decode: no output selection"
                 else if Solver.value c.solver osel.(i) then i
                 else find (i + 1)
               in
               find 0
             in
             (s, c.flags.(k)))
           c.out_sel)
    in
    Mchain.make ~n:c.n ~steps ~outputs
end

let decode t =
  let steps =
    List.init t.r (fun i ->
        let j, k, _ =
          match
            List.find_opt (fun (_, _, s) -> Solver.value t.solver s) t.sel.(i)
          with
          | Some p -> p
          | None -> invalid_arg "Ssv_multi.decode: no selection"
        in
        let bit idx = if Solver.value t.solver t.op.(i).(idx) then 1 else 0 in
        let gate = (bit 0 lsl 1) lor (bit 1 lsl 2) lor (bit 2 lsl 3) in
        { Chain.fanin1 = j; fanin2 = k; gate })
  in
  let outputs =
    Array.to_list
      (Array.mapi
         (fun k osel ->
           let s =
             let rec find i =
               if i = Array.length osel then
                 invalid_arg "Ssv_multi.decode: no output selection"
               else if Solver.value t.solver osel.(i) then i
               else find (i + 1)
             in
             find 0
           in
           (s, t.flags.(k)))
         t.out_sel)
  in
  Mchain.make ~n:t.n ~steps ~outputs
