module Tt = Stp_tt.Tt
module Chain = Stp_chain.Chain
module Solver = Stp_sat.Solver
module Lit = Stp_sat.Lit

type t = {
  solver : Solver.t;
  f : Tt.t;
  n : int;
  r : int;
  sel : (int * int * int) list array; (* per gate: (j, k, var) *)
  op : int array array;               (* per gate: vars for patterns 01 10 11 *)
  sim : (int * int, int) Hashtbl.t;   (* (gate, minterm) -> var *)
  mutable minterms : int list;
}

(* Level of a signal: primary inputs are level 0, gate [i] has the given
   level; [None] levels mean "unrestricted" (every gate may read any
   earlier signal). *)
let legal_pairs ~n ~levels i =
  let total = n + i in
  let pairs = ref [] in
  for j = 0 to total - 1 do
    for k = j + 1 to total - 1 do
      let ok =
        match levels with
        | None -> true
        | Some lv ->
          let level_of s = if s < n then 0 else lv.(s - n) in
          let li = lv.(i) in
          let lj = level_of j and lk = level_of k in
          lj < li && lk < li && (lj = li - 1 || lk = li - 1)
      in
      if ok then pairs := (j, k) :: !pairs
    done
  done;
  List.rev !pairs

let sim_var t i m =
  match Hashtbl.find_opt t.sim (i, m) with
  | Some v -> v
  | None ->
    let v = Solver.new_var t.solver in
    Hashtbl.replace t.sim (i, m) v;
    v

(* Literal asserting "signal s has value [v] on minterm m", or a constant
   for primary inputs: [Ok lit] / [Error b]. *)
let signal_lit t s v m =
  if s < t.n then Error ((m lsr s) land 1 = if v then 1 else 0)
  else Ok (Lit.make (sim_var t (s - t.n) m) v)

let add_minterm_clauses t m =
  (* Simulation clauses: for every gate i, selected pair (j,k) and value
     combination (a, b, c):
       sel & (x_j = a) & (x_k = b) & (x_i = c)  ==>  op_i(a,b) = c. *)
  for i = 0 to t.r - 1 do
    List.iter
      (fun (j, k, s) ->
        for a = 0 to 1 do
          for b = 0 to 1 do
            for c = 0 to 1 do
              (* Clause: ~sel | ~(x_j = a) | ~(x_k = b) | ~(x_i = c)
                         | (op(a,b) = c). *)
              let op_term =
                if a = 0 && b = 0 then
                  (* normal gate: op(0,0) = 0 *)
                  if c = 0 then `True else `Absent
                else
                  let p = (2 * a) + b in
                  (* pattern index into op array: 01 -> 0, 10 -> 1, 11 -> 2 *)
                  let idx = p - 1 in
                  `Lit (Lit.make t.op.(i).(idx) (c = 1))
              in
              match op_term with
              | `True -> ()
              | (`Absent | `Lit _) as term -> (
                let base = [ Lit.neg s ] in
                (* The clause carries the negation of "signal = v": a
                   constantly-true atom drops out of the clause, a
                   constantly-false atom satisfies it. *)
                let add_signal acc sig_ v =
                  match signal_lit t sig_ v m with
                  | Error true -> `Clause acc
                  | Error false -> `Satisfied
                  | Ok l -> `Clause (Lit.negate l :: acc)
                in
                let rec build acc = function
                  | [] ->
                    let acc =
                      match term with `Lit l -> l :: acc | `Absent -> acc
                    in
                    Solver.add_clause t.solver acc
                  | (sig_, v) :: rest -> (
                    match add_signal acc sig_ (v = 1) with
                    | `Satisfied -> ()
                    | `Clause acc -> build acc rest)
                in
                build base [ (j, a); (k, b); (t.n + i, c) ])
            done
          done
        done)
      t.sel.(i)
  done;
  (* Output clause: the last gate equals f on m. *)
  let out = Lit.make (sim_var t (t.r - 1) m) (Tt.get t.f m) in
  Solver.add_clause t.solver [ out ]

let add_minterm t m =
  if not (List.mem m t.minterms) then begin
    t.minterms <- m :: t.minterms;
    add_minterm_clauses t m
  end

let encoded_minterms t = t.minterms

let build ?levels ?minterms ?basis ~solver ~f ~r () =
  let n = Tt.num_vars f in
  if Tt.get f 0 then invalid_arg "Ssv.build: target must be normal";
  (match levels with
   | Some lv when Array.length lv <> r -> invalid_arg "Ssv.build: levels"
   | _ -> ());
  let sel =
    Array.init r (fun i ->
        List.map
          (fun (j, k) -> (j, k, Solver.new_var solver))
          (legal_pairs ~n ~levels i))
  in
  if Array.exists (fun l -> l = []) sel then None
  else begin
    let op = Array.init r (fun _ -> Array.init 3 (fun _ -> Solver.new_var solver)) in
    let t = { solver; f; n; r; sel; op; sim = Hashtbl.create 97; minterms = [] } in
    (* At least one fanin pair per gate. *)
    Array.iter
      (fun pairs -> Solver.add_clause solver (List.map (fun (_, _, s) -> Lit.pos s) pairs))
      sel;
    (* Nontrivial operators: the gate must depend on both inputs.
       Patterns: op.(0) = output on 01, op.(1) on 10, op.(2) on 11. *)
    Array.iter
      (fun o ->
        let o01 = o.(0) and o10 = o.(1) and o11 = o.(2) in
        (* depends on first input: o10 | (o01 <> o11) *)
        Solver.add_clause solver [ Lit.pos o10; Lit.pos o01; Lit.pos o11 ];
        Solver.add_clause solver [ Lit.pos o10; Lit.neg o01; Lit.neg o11 ];
        (* depends on second input: o01 | (o10 <> o11) *)
        Solver.add_clause solver [ Lit.pos o01; Lit.pos o10; Lit.pos o11 ];
        Solver.add_clause solver [ Lit.pos o01; Lit.neg o10; Lit.neg o11 ])
      op;
    (* Restricted basis: block every normal nontrivial code outside it. *)
    (match basis with
     | None -> ()
     | Some allowed ->
       let is_normal c = c land 1 = 0 in
       let blocked =
         List.filter
           (fun c -> is_normal c && not (List.mem c allowed))
           Stp_chain.Gate.nontrivial
       in
       Array.iter
         (fun o ->
           List.iter
             (fun c ->
               let bit p = (c lsr p) land 1 = 1 in
               (* clause: some op bit differs from code c *)
               Solver.add_clause solver
                 [ Lit.make o.(0) (not (bit 1));
                   Lit.make o.(1) (not (bit 2));
                   Lit.make o.(2) (not (bit 3)) ])
             blocked)
         op);
    (* Every gate except the last must be used by a later gate. *)
    for i = 0 to r - 2 do
      let users = ref [] in
      for i' = i + 1 to r - 1 do
        List.iter
          (fun (j, k, s) -> if j = n + i || k = n + i then users := Lit.pos s :: !users)
          t.sel.(i')
      done;
      Solver.add_clause solver !users
    done;
    let minterms =
      match minterms with
      | Some ms -> ms
      | None -> List.init ((1 lsl n) - 1) (fun m -> m + 1)
    in
    List.iter (add_minterm t) minterms;
    Some t
  end

let decode t =
  let steps =
    List.init t.r (fun i ->
        let j, k, _ =
          match
            List.find_opt (fun (_, _, s) -> Solver.value t.solver s) t.sel.(i)
          with
          | Some p -> p
          | None -> invalid_arg "Ssv.decode: no selection in model"
        in
        let bit idx = if Solver.value t.solver t.op.(i).(idx) then 1 else 0 in
        (* gate code bit (2a+b); op(0,0) = 0 *)
        let gate = (bit 0 lsl 1) lor (bit 1 lsl 2) lor (bit 2 lsl 3) in
        { Chain.fanin1 = j; fanin2 = k; gate })
  in
  Chain.make ~n:t.n ~steps ~output:(t.n + t.r - 1) ()
