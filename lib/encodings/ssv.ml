module Tt = Stp_tt.Tt
module Chain = Stp_chain.Chain
module Solver = Stp_sat.Solver
module Lit = Stp_sat.Lit

type t = {
  solver : Solver.t;
  f : Tt.t;
  n : int;
  r : int;
  sel : (int * int * int) list array; (* per gate: (j, k, var) *)
  op : int array array;               (* per gate: vars for patterns 01 10 11 *)
  sim : (int * int, int) Hashtbl.t;   (* (gate, minterm) -> var *)
  mutable minterms : int list;
}

(* Fence legality of fanins (j, k) for gate [i]: both come from strictly
   lower levels and at least one from the level directly below. Primary
   inputs are level 0, gate levels are 1-based. *)
let fence_legal ~n ~levels i j k =
  let level_of s = if s < n then 0 else levels.(s - n) in
  let li = levels.(i) in
  let lj = level_of j and lk = level_of k in
  lj < li && lk < li && (lj = li - 1 || lk = li - 1)

(* Level of a signal: primary inputs are level 0, gate [i] has the given
   level; [None] levels mean "unrestricted" (every gate may read any
   earlier signal). *)
let legal_pairs ~n ~levels i =
  let total = n + i in
  let pairs = ref [] in
  for j = 0 to total - 1 do
    for k = j + 1 to total - 1 do
      let ok =
        match levels with
        | None -> true
        | Some lv -> fence_legal ~n ~levels:lv i j k
      in
      if ok then pairs := (j, k) :: !pairs
    done
  done;
  List.rev !pairs

(* Nontrivial operators: the gate must depend on both inputs.
   Patterns: op.(0) = output on 01, op.(1) on 10, op.(2) on 11. *)
let operator_clauses ~solver o =
  let o01 = o.(0) and o10 = o.(1) and o11 = o.(2) in
  (* depends on first input: o10 | (o01 <> o11) *)
  Solver.add_clause solver [ Lit.pos o10; Lit.pos o01; Lit.pos o11 ];
  Solver.add_clause solver [ Lit.pos o10; Lit.neg o01; Lit.neg o11 ];
  (* depends on second input: o01 | (o10 <> o11) *)
  Solver.add_clause solver [ Lit.pos o01; Lit.pos o10; Lit.pos o11 ];
  Solver.add_clause solver [ Lit.pos o01; Lit.neg o10; Lit.neg o11 ]

(* Restricted basis: block every normal nontrivial code outside it. *)
let basis_clauses ~solver ~basis o =
  let is_normal c = c land 1 = 0 in
  List.iter
    (fun c ->
      if is_normal c && not (List.mem c basis) then begin
        let bit p = (c lsr p) land 1 = 1 in
        (* clause: some op bit differs from code c *)
        Solver.add_clause solver
          [ Lit.make o.(0) (not (bit 1));
            Lit.make o.(1) (not (bit 2));
            Lit.make o.(2) (not (bit 3)) ]
      end)
    Stp_chain.Gate.nontrivial

(* Simulation clauses tying one gate's output to its selected fanins on
   minterm [m]: for every selected pair (j, k) and value combination
   (a, b, c),
     sel & (x_j = a) & (x_k = b) & (x_i = c)  ==>  op_i(a,b) = c.
   [signal_lit s v m] renders "signal s has value v on minterm m" as
   [Ok lit], or [Error b] when the signal is a primary input with
   constant truth [b] there. *)
let gate_sim_clauses ~solver ~signal_lit ~pairs ~opv ~gate_signal ~m =
  List.iter
    (fun (j, k, s) ->
      for a = 0 to 1 do
        for b = 0 to 1 do
          for c = 0 to 1 do
            (* Clause: ~sel | ~(x_j = a) | ~(x_k = b) | ~(x_i = c)
                       | (op(a,b) = c). *)
            let op_term =
              if a = 0 && b = 0 then
                (* normal gate: op(0,0) = 0 *)
                if c = 0 then `True else `Absent
              else
                let p = (2 * a) + b in
                (* pattern index into op array: 01 -> 0, 10 -> 1, 11 -> 2 *)
                let idx = p - 1 in
                `Lit (Lit.make opv.(idx) (c = 1))
            in
            match op_term with
            | `True -> ()
            | (`Absent | `Lit _) as term ->
              (* The clause carries the negation of "signal = v": a
                 constantly-true atom drops out of the clause, a
                 constantly-false atom satisfies it. *)
              let rec build acc = function
                | [] ->
                  let acc =
                    match term with `Lit l -> l :: acc | `Absent -> acc
                  in
                  Solver.add_clause solver acc
                | (sig_, v) :: rest -> (
                  match signal_lit sig_ (v = 1) m with
                  | Error true -> build acc rest
                  | Error false -> ()
                  | Ok l -> build (Lit.negate l :: acc) rest)
              in
              build [ Lit.neg s ] [ (j, a); (k, b); (gate_signal, c) ]
          done
        done
      done)
    pairs

let sim_var t i m =
  match Hashtbl.find_opt t.sim (i, m) with
  | Some v -> v
  | None ->
    let v = Solver.new_var t.solver in
    Hashtbl.replace t.sim (i, m) v;
    v

(* Literal asserting "signal s has value [v] on minterm m", or a constant
   for primary inputs: [Ok lit] / [Error b]. *)
let signal_lit t s v m =
  if s < t.n then Error ((m lsr s) land 1 = if v then 1 else 0)
  else Ok (Lit.make (sim_var t (s - t.n) m) v)

let add_minterm_clauses t m =
  for i = 0 to t.r - 1 do
    gate_sim_clauses ~solver:t.solver ~signal_lit:(signal_lit t)
      ~pairs:t.sel.(i) ~opv:t.op.(i) ~gate_signal:(t.n + i) ~m
  done;
  (* Output clause: the last gate equals f on m. *)
  let out = Lit.make (sim_var t (t.r - 1) m) (Tt.get t.f m) in
  Solver.add_clause t.solver [ out ]

let add_minterm t m =
  if not (List.mem m t.minterms) then begin
    t.minterms <- m :: t.minterms;
    add_minterm_clauses t m
  end

let encoded_minterms t = t.minterms

let build ?levels ?minterms ?basis ~solver ~f ~r () =
  let n = Tt.num_vars f in
  if Tt.get f 0 then invalid_arg "Ssv.build: target must be normal";
  (match levels with
   | Some lv when Array.length lv <> r -> invalid_arg "Ssv.build: levels"
   | _ -> ());
  let sel =
    Array.init r (fun i ->
        List.map
          (fun (j, k) -> (j, k, Solver.new_var solver))
          (legal_pairs ~n ~levels i))
  in
  if Array.exists (fun l -> l = []) sel then None
  else begin
    let op = Array.init r (fun _ -> Array.init 3 (fun _ -> Solver.new_var solver)) in
    let t = { solver; f; n; r; sel; op; sim = Hashtbl.create 97; minterms = [] } in
    (* At least one fanin pair per gate. *)
    Array.iter
      (fun pairs -> Solver.add_clause solver (List.map (fun (_, _, s) -> Lit.pos s) pairs))
      sel;
    Array.iter (fun o -> operator_clauses ~solver o) op;
    (match basis with
     | None -> ()
     | Some allowed -> Array.iter (fun o -> basis_clauses ~solver ~basis:allowed o) op);
    (* Every gate except the last must be used by a later gate. *)
    for i = 0 to r - 2 do
      let users = ref [] in
      for i' = i + 1 to r - 1 do
        List.iter
          (fun (j, k, s) -> if j = n + i || k = n + i then users := Lit.pos s :: !users)
          t.sel.(i')
      done;
      Solver.add_clause solver !users
    done;
    let minterms =
      match minterms with
      | Some ms -> ms
      | None -> List.init ((1 lsl n) - 1) (fun m -> m + 1)
    in
    List.iter (add_minterm t) minterms;
    Some t
  end

let decode_gates ~solver ~sel ~op ~r =
  List.init r (fun i ->
      let j, k, _ =
        match
          List.find_opt (fun (_, _, s) -> Solver.value solver s) sel.(i)
        with
        | Some p -> p
        | None -> invalid_arg "Ssv.decode: no selection in model"
      in
      let bit idx = if Solver.value solver op.(i).(idx) then 1 else 0 in
      (* gate code bit (2a+b); op(0,0) = 0 *)
      let gate = (bit 0 lsl 1) lor (bit 1 lsl 2) lor (bit 2 lsl 3) in
      { Chain.fanin1 = j; fanin2 = k; gate })

let decode t =
  let steps = decode_gates ~solver:t.solver ~sel:t.sel ~op:t.op ~r:t.r in
  Chain.make ~n:t.n ~steps ~output:(t.n + t.r - 1) ()

(* Monotone-extensible variant of the encoding above, designed for one
   long-lived solver per synthesis instance. Gate structure, operator
   and simulation clauses are budget-independent and persist; the only
   budget-specific clauses — the output must match the target, and every
   gate below the last must be read again — hang off a per-budget
   selector literal, so stepping from budget r to r+1 retires a selector
   instead of discarding the solver. Fence restrictions become
   per-fence assumption sets over the (shared) selection variables. *)
module Inc = struct
  type inc = {
    solver : Solver.t;
    f : Tt.t;
    n : int;
    basis : Stp_chain.Gate.code list option;
    mutable gates : int; (* gates encoded so far *)
    mutable sel : (int * int * int) list array;
    mutable op : int array array;
    sim : (int * int, int) Hashtbl.t;
    mutable minterms : int list;
    selectors : (int, Lit.t) Hashtbl.t; (* budget -> live selector *)
    mutable infeasible : bool; (* some gate admits no fanin pair at all *)
  }

  let create ?basis ~solver ~f () =
    let n = Tt.num_vars f in
    if Tt.get f 0 then invalid_arg "Ssv.Inc.create: target must be normal";
    { solver; f; n; basis; gates = 0; sel = [||]; op = [||];
      sim = Hashtbl.create 97; minterms = []; selectors = Hashtbl.create 7;
      infeasible = false }

  let solver c = c.solver

  let sim_var c i m =
    match Hashtbl.find_opt c.sim (i, m) with
    | Some v -> v
    | None ->
      let v = Solver.new_var c.solver in
      Hashtbl.replace c.sim (i, m) v;
      v

  let signal_lit c s v m =
    if s < c.n then Error ((m lsr s) land 1 = if v then 1 else 0)
    else Ok (Lit.make (sim_var c (s - c.n) m) v)

  (* Encode gates [c.gates .. r-1]: selection and operator variables,
     their structural clauses, and simulation clauses for every minterm
     encoded so far. All of it is budget-independent. *)
  let ensure_gates c r =
    while c.gates < r && not c.infeasible do
      let i = c.gates in
      match legal_pairs ~n:c.n ~levels:None i with
      | [] -> c.infeasible <- true
      | pairs ->
        let pairs =
          List.map (fun (j, k) -> (j, k, Solver.new_var c.solver)) pairs
        in
        let opv = Array.init 3 (fun _ -> Solver.new_var c.solver) in
        c.sel <- Array.append c.sel [| pairs |];
        c.op <- Array.append c.op [| opv |];
        Solver.add_clause c.solver (List.map (fun (_, _, s) -> Lit.pos s) pairs);
        operator_clauses ~solver:c.solver opv;
        (match c.basis with
         | None -> ()
         | Some allowed -> basis_clauses ~solver:c.solver ~basis:allowed opv);
        List.iter
          (fun m ->
            gate_sim_clauses ~solver:c.solver ~signal_lit:(signal_lit c)
              ~pairs ~opv ~gate_signal:(c.n + i) ~m)
          c.minterms;
        c.gates <- i + 1
    done;
    not c.infeasible

  (* The budget-r output clause on minterm [m], guarded by [sel]. *)
  let output_clause c sel r m =
    Solver.add_clause c.solver
      [ Lit.negate sel; Lit.make (sim_var c (r - 1) m) (Tt.get c.f m) ]

  let budget_selector c r =
    if r < 1 || not (ensure_gates c r) then None
    else
      match Hashtbl.find_opt c.selectors r with
      | Some sel -> Some sel
      | None ->
        let sel = Solver.new_selector c.solver in
        Hashtbl.replace c.selectors r sel;
        List.iter (fun m -> output_clause c sel r m) c.minterms;
        (* Every gate except the (budget's) last must be used by a later
           gate within the budget. *)
        for i = 0 to r - 2 do
          let users = ref [ Lit.negate sel ] in
          for i' = i + 1 to r - 1 do
            List.iter
              (fun (j, k, s) ->
                if j = c.n + i || k = c.n + i then users := Lit.pos s :: !users)
              c.sel.(i')
          done;
          Solver.add_clause c.solver !users
        done;
        Some sel

  let retire c r =
    match Hashtbl.find_opt c.selectors r with
    | None -> ()
    | Some sel ->
      Hashtbl.remove c.selectors r;
      Solver.retire c.solver sel

  let add_minterm c m =
    if not (List.mem m c.minterms) then begin
      c.minterms <- m :: c.minterms;
      for i = 0 to c.gates - 1 do
        gate_sim_clauses ~solver:c.solver ~signal_lit:(signal_lit c)
          ~pairs:c.sel.(i) ~opv:c.op.(i) ~gate_signal:(c.n + i) ~m
      done;
      Hashtbl.iter (fun r sel -> output_clause c sel r m) c.selectors
    end

  let encoded_minterms c = c.minterms

  let fence_assumptions c ~levels =
    let r = Array.length levels in
    if r < 1 || not (ensure_gates c r) then None
    else begin
      let feasible = ref true in
      let assumptions = ref [] in
      for i = 0 to r - 1 do
        let any_legal = ref false in
        List.iter
          (fun (j, k, s) ->
            if fence_legal ~n:c.n ~levels i j k then any_legal := true
            else assumptions := Lit.neg s :: !assumptions)
          c.sel.(i);
        if not !any_legal then feasible := false
      done;
      if !feasible then Some !assumptions else None
    end

  let decode c ~r =
    let steps = decode_gates ~solver:c.solver ~sel:c.sel ~op:c.op ~r in
    Chain.make ~n:c.n ~steps ~output:(c.n + r - 1) ()
end
