(** Single-selection-variable CNF encoding of SAT-based exact synthesis
    (Knuth; Soeken et al.; Haaswijk et al., TCAD'19).

    Encodes "there exists a Boolean chain of [r] normal 2-input gates
    computing [f]" into CNF:

    - selection variables [s_{i,(j,k)}] pick the two fanins of gate [i]
      among earlier signals [j < k];
    - three operator bits per gate give its output on input patterns
      01, 10, 11 (normal gates output 0 on 00);
    - simulation variables [t_{i,m}] tie gate outputs to the target on
      every encoded minterm.

    The encoder is parametric in three ways: an optional per-gate
    {e level} assignment restricts selections to fence-legal pairs (the
    FEN baseline); the set of encoded minterms may start small and grow
    (the CEGAR loop of the ABC [lutexact] analogue); and an optional
    gate {e basis} blocks operator-bit patterns outside a restricted
    library (only the normal members of the basis can appear in an SSV
    chain — bases closed under complementation lose no optima). The target must be {e normal}
    ([f(0,…,0) = 0]); callers synthesise the complement otherwise and
    flip the chain output. *)

type t

val build :
  ?levels:int array ->
  ?minterms:int list ->
  ?basis:Stp_chain.Gate.code list ->
  solver:Stp_sat.Solver.t ->
  f:Stp_tt.Tt.t ->
  r:int ->
  unit ->
  t option
(** [build ~solver ~f ~r ()] adds the encoding for an [r]-gate chain to
    [solver]. [levels.(i)], when given, is the fence level (1-based) of
    gate [i]; gates must come in non-decreasing level order. [minterms]
    defaults to all non-zero minterms. Returns [None] when the structure
    admits no legal fanin pair for some gate (infeasible fence).
    @raise Invalid_argument if [f] is not normal. *)

val add_minterm : t -> int -> unit
(** Adds the simulation and output clauses of one more minterm (CEGAR
    refinement); no-op if already encoded. *)

val encoded_minterms : t -> int list

val decode : t -> Stp_chain.Chain.t
(** Reads a chain out of the solver's current model; call only after
    [solve] returned [Sat]. *)

(** {1 Incremental encoding}

    A monotone-extensible form of the same encoding, built for one
    long-lived solver per synthesis instance. Gate structure, operator
    constraints and simulation clauses are budget-independent and
    persist across gate counts; the budget-specific clauses (output
    match, every-gate-used) are guarded by a per-budget selector
    literal. Solve budget [r] under [~assumptions:[budget_selector r]];
    when budget [r] is refuted, {!Inc.retire} the selector — a single
    unit clause — and move on with every learnt clause intact. Fence
    (topology) restrictions are expressed as per-fence assumption sets
    over the shared selection variables, so a whole fence family reuses
    one solver too. *)
module Inc : sig
  type inc

  val create :
    ?basis:Stp_chain.Gate.code list ->
    solver:Stp_sat.Solver.t ->
    f:Stp_tt.Tt.t ->
    unit ->
    inc
  (** No clauses are added until minterms and budgets are requested.
      @raise Invalid_argument if [f] is not normal. *)

  val solver : inc -> Stp_sat.Solver.t

  val budget_selector : inc -> int -> Stp_sat.Lit.t option
  (** [budget_selector c r] encodes gates up to [r] (if not already
      present) plus the budget-[r] constraints, and returns the
      assumption literal activating them. [None] when the structure
      admits no fanin pair for some gate (fewer than two signals). *)

  val retire : inc -> int -> unit
  (** Permanently refutes budget [r]'s selector (unit clause); the
      guarded clauses are reclaimed by the solver. No-op if the budget
      was never encoded or already retired. *)

  val add_minterm : inc -> int -> unit
  (** CEGAR refinement: adds the simulation clauses of one more minterm
      for every encoded gate, and its output clause for every live
      budget. No-op if already encoded. *)

  val encoded_minterms : inc -> int list

  val fence_assumptions : inc -> levels:int array -> Stp_sat.Lit.t list option
  (** Assumption literals forcing every fence-illegal selection
      variable false, for the fence described by 1-based [levels]
      (length = gate budget). [None] when some gate has no legal pair
      under the fence. Combine with the budget selector:
      [solve ~assumptions:(sel :: fence_assumptions ...)]. *)

  val decode : inc -> r:int -> Stp_chain.Chain.t
  (** Reads the budget-[r] chain out of the current model. *)
end
