(** Multi-output variant of the SSV encoding.

    Encodes "one shared pool of [r] normal 2-input gates computes every
    function of [fs]": gate selection/operator/simulation variables as in
    {!Ssv}, plus per-output selection variables ranging over all signals.
    Outputs whose function is not normal are complemented statically and
    decoded with a complement flag — the Boolean-chain output model of
    the paper's Section II-B. *)

type t

val build :
  ?basis:Stp_chain.Gate.code list ->
  solver:Stp_sat.Solver.t ->
  fs:Stp_tt.Tt.t array ->
  r:int ->
  unit ->
  t option
(** All functions must have the same arity and at least one must be
    non-constant. Returns [None] when the structure is infeasible. *)

val decode : t -> Stp_chain.Mchain.t
(** Call after [solve] returned [Sat]. *)

(** Monotone-extensible form for one long-lived solver per instance —
    the multi-output analogue of {!Ssv.Inc}. Gate semantics, operator
    constraints and per-signal output-agreement clauses persist across
    gate budgets; "each output picks a signal within the budget" and
    "each gate is used" hang off a per-budget selector literal. *)
module Inc : sig
  type inc

  val create :
    ?basis:Stp_chain.Gate.code list ->
    solver:Stp_sat.Solver.t ->
    fs:Stp_tt.Tt.t array ->
    unit ->
    inc
  (** Outputs are normalised internally (complement flags are restored
      by {!decode}). Only the input-signal agreement clauses are added
      up front. @raise Invalid_argument on empty or mixed-arity [fs]. *)

  val solver : inc -> Stp_sat.Solver.t

  val budget_selector : inc -> int -> Stp_sat.Lit.t option
  (** Encodes gates up to [r] (if not already present) plus the
      budget-[r] constraints; returns the activating assumption literal,
      or [None] when the structure is infeasible. *)

  val retire : inc -> int -> unit
  (** Permanently refutes budget [r]'s selector. No-op if never encoded
      or already retired. *)

  val decode : inc -> r:int -> Stp_chain.Mchain.t
  (** Reads the budget-[r] network out of the current model. *)
end
