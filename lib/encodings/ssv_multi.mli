(** Multi-output variant of the SSV encoding.

    Encodes "one shared pool of [r] normal 2-input gates computes every
    function of [fs]": gate selection/operator/simulation variables as in
    {!Ssv}, plus per-output selection variables ranging over all signals.
    Outputs whose function is not normal are complemented statically and
    decoded with a complement flag — the Boolean-chain output model of
    the paper's Section II-B. *)

type t

val build :
  ?basis:Stp_chain.Gate.code list ->
  solver:Stp_sat.Solver.t ->
  fs:Stp_tt.Tt.t array ->
  r:int ->
  unit ->
  t option
(** All functions must have the same arity and at least one must be
    non-constant. Returns [None] when the structure is infeasible. *)

val decode : t -> Stp_chain.Mchain.t
(** Call after [solve] returned [Sat]. *)
