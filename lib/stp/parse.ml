type state = { input : string; mutable pos : int }

let error st msg =
  invalid_arg (Printf.sprintf "Parse.formula: %s at position %d" msg st.pos)

let rec skip_ws st =
  if st.pos < String.length st.input
     && (st.input.[st.pos] = ' ' || st.input.[st.pos] = '\t'
        || st.input.[st.pos] = '\n')
  then begin
    st.pos <- st.pos + 1;
    skip_ws st
  end

let peek st =
  skip_ws st;
  if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

(* Try to consume a literal token; returns whether it matched. *)
let eat st tok =
  skip_ws st;
  let len = String.length tok in
  if st.pos + len <= String.length st.input
     && String.sub st.input st.pos len = tok
  then begin
    st.pos <- st.pos + len;
    true
  end
  else false

let rec parse_iff st =
  let lhs = parse_imp st in
  if eat st "<->" then Expr.Equiv (lhs, parse_iff st) else lhs

and parse_imp st =
  let lhs = parse_or st in
  if eat st "->" then Expr.Implies (lhs, parse_imp st) else lhs

and parse_or st =
  let lhs = parse_xor st in
  if (not (eat_ahead st "->")) && eat st "|" then Expr.Or (lhs, parse_or st)
  else lhs

and parse_xor st =
  let lhs = parse_and st in
  if eat st "^" then Expr.Xor (lhs, parse_xor st) else lhs

and parse_and st =
  let lhs = parse_not st in
  if eat st "&" then Expr.And (lhs, parse_and st) else lhs

and parse_not st =
  if eat st "!" then Expr.Not (parse_not st) else parse_atom st

and parse_atom st =
  match peek st with
  | Some '(' ->
    advance st;
    let e = parse_iff st in
    if not (eat st ")") then error st "expected ')'";
    e
  | Some '0' ->
    advance st;
    Expr.Const false
  | Some '1' ->
    advance st;
    Expr.Const true
  | Some 'x' ->
    advance st;
    let start = st.pos in
    while
      st.pos < String.length st.input
      && st.input.[st.pos] >= '0'
      && st.input.[st.pos] <= '9'
    do
      advance st
    done;
    if st.pos = start then error st "expected variable index after 'x'";
    let idx = int_of_string (String.sub st.input start (st.pos - start)) in
    if idx < 1 then error st "variable indices start at 1";
    Expr.Var (idx - 1)
  | Some c when c >= 'a' && c <= 'z' ->
    advance st;
    Expr.Var (Char.code c - Char.code 'a')
  | Some _ -> error st "unexpected character"
  | None -> error st "unexpected end of input"

(* look ahead without consuming, used to keep "|" from eating "->"'s
   neighbourhood when formulas like "a |-> b" are mistyped *)
and eat_ahead st tok =
  skip_ws st;
  let len = String.length tok in
  st.pos + len <= String.length st.input && String.sub st.input st.pos len = tok

let formula s =
  let st = { input = s; pos = 0 } in
  let e = parse_iff st in
  skip_ws st;
  if st.pos <> String.length s then error st "trailing input";
  e
