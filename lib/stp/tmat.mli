(** Bit-packed ternary logic-matrix rows.

    A value of type {!t} represents one row of a [2 x 2^n] logic matrix
    whose entries may additionally be the paper's don't-care ['x']
    (Property 3): a ternary table over [2^n] positions, packed as two
    bitmask words per 64 positions —

    - [care] bit [c] is 1 when entry [c] is determined (0 or 1);
    - [value] bit [c] is the entry when determined, 0 otherwise.

    The invariant [value land care = value] holds everywhere, so two
    tables are structurally equal iff their word arrays are.

    The module is convention-neutral about what a bit index means: the
    truth-table modules index by minterm ({!of_tt} / {!to_tt}), the
    canonical-form code by matrix column ({!of_matrix} / {!to_matrix},
    where the column order complements the minterm order — see
    {!Canonical.column_of_minterm}). All kernels below ("variable [i]" =
    bit [i] of the position index) are valid under either reading.

    Everything here is word-parallel: 64 entries per machine operation,
    no per-entry closures or bounds checks on the hot paths. These are
    the kernels behind [Factor.decompose]'s quartering test and block
    solver, and behind [Canonical]'s M_w / M_r / eliminator rewrites. *)

type t

type entry = True | False | Dontcare

val num_vars : t -> int
(** Number of index bits; the table has [2^(num_vars t)] positions. *)

val width : t -> int
(** [2^(num_vars t)]. *)

(** {1 Construction} *)

val unknown : int -> t
(** [unknown n]: every entry is don't-care. *)

val const : int -> bool -> t
(** [const n b]: every entry determined to [b]. *)

val of_tt : Stp_tt.Tt.t -> t
(** Fully-determined table; bit [m] of the truth table becomes entry
    [m] (minterm indexing). *)

val of_tt_with_care : Stp_tt.Tt.t -> care:Stp_tt.Tt.t -> t
(** [of_tt_with_care v ~care]: entry [m] is determined to [v(m)] where
    [care(m)] holds, don't-care elsewhere. Arities must agree. *)

val of_fun : int -> (int -> entry) -> t

(** {1 Access} *)

val get : t -> int -> entry
val set : t -> int -> entry -> t
(** Functional update. *)

val num_dontcares : t -> int

(** {1 Ternary lattice}

    [Dontcare] is the bottom of the information order: a table {e
    refines} another when it determines at least the same entries to the
    same values. *)

val equal : t -> t -> bool
(** Structural equality, including the care masks. *)

val compare : t -> t -> int

val compatible : t -> t -> bool
(** No position is determined to different values by the two tables —
    i.e. they admit a common refinement ({!meet}). This is the paper's
    block-compatibility test under don't-cares. *)

val refines : t -> t -> bool
(** [refines a b]: [a] determines every entry [b] determines, to the
    same value. *)

val meet : t -> t -> t option
(** Least common refinement: [Some] the union of the determined entries
    when {!compatible}, [None] otherwise. *)

val completed : t -> bool -> Stp_tt.Tt.t
(** [completed t b] fills every don't-care with [b] (minterm
    indexing). *)

val completions : t -> Stp_tt.Tt.t Seq.t
(** All [2^(num_dontcares t)] total completions, lazily, in increasing
    order of the fill pattern over the don't-care positions (ascending
    position order = ascending bit significance). *)

val to_tt : t -> Stp_tt.Tt.t
(** @raise Invalid_argument if any entry is don't-care. *)

(** {1 Blocks and quartering} *)

val cofactor : t -> int -> bool -> t
(** [cofactor t i b] fixes index bit [i] to [b]; the result still ranges
    over [n] bits (bit [i] becomes irrelevant), as in [Tt.cofactor]. *)

val quarter : t -> int -> t * t
(** [quarter t i] is [(cofactor t i false, cofactor t i true)] — the two
    blocks of the paper's quartering along index bit [i]. *)

val distinct_blocks : ?cap:int -> t -> group:int -> int
(** [distinct_blocks t ~group] counts the distinct blocks obtained by
    restricting [t] to every assignment of the index bits in the bitmask
    [group] — the multiplicity at the heart of the "two unique
    quartering parts" test. Counting stops at [cap] (default 3): the
    result is [min cap (true count)] and the scan exits early. *)

(** {1 Permutations}

    [swap_vars] is a word-parallel delta swap; [permute] goes through
    precomputed shuffle tables mapping 8-bit chunks of the destination
    index to their scattered source-index contributions. These implement
    the right-multiplications by [I ⊗ M_w ⊗ I] (and their compositions)
    as pure column moves. *)

val swap_vars : t -> int -> int -> t
val permute : t -> int array -> t
(** [permute t perm]: entry [m] of the result is entry [m'] of [t] where
    bit [perm.(i)] of [m'] equals bit [i] of [m] (same contract as
    [Tt.permute]). *)

val negate_var : t -> int -> t
(** Complements index bit [i] (column complementation). *)

(** {1 Index-space rewrites}

    The canonical-form procedure's remaining column operations: variable
    merge ([M_r], equation (3)) and the vacuous-variable eliminator
    [\[1 1\]], plus the replication helpers behind structural-matrix
    composition. *)

val insert_var : t -> int -> t
(** [insert_var t b] inserts a vacuous index bit at position [b]
    ([0 <= b <= n]); the result has [n+1] bits and does not depend on
    bit [b]. *)

val reduce_dup : t -> int -> t
(** [reduce_dup t b] merges the equal index bits [b] and [b+1] of [t]
    into the single bit [b] of the result (which has [n-1] bits): entry
    [c] of the result is the entry of [t] at [c] with bit [b]
    duplicated into positions [b] and [b+1] — the column action of
    [I ⊗ M_r ⊗ I]. *)

val repeat_low : t -> int -> t
(** [repeat_low t q]: [n+q] bits; entry [hi * 2^q + lo] is entry [hi] of
    [t] — each entry replicated across [2^q] new low positions. *)

val tile_high : t -> int -> t
(** [tile_high t p]: [n+p] bits; the table repeated [2^p] times. *)

(** {1 Gate composition} *)

val apply_gate : int -> t -> t -> t
(** [apply_gate code a b] applies the 2-input gate whose 4-bit truth
    table is [code] (bit [2*va + vb] is the output on [(va, vb)], as in
    [Tt.apply2]) entrywise, with exact ternary semantics: an output
    entry is determined iff every input combination consistent with the
    operands' entries yields the same output. *)

val stp_compose : int -> t -> t -> t
(** [stp_compose code a b] is the row of [M ⋉ A ⋉ (I ⊗ B)] where [M] is
    the structural matrix of [code] — i.e.
    [apply_gate code (repeat_low a q) (tile_high b p)] with [p], [q] the
    arities of [a], [b]: entry [ca * 2^q + cb] is
    [code (a ca) (b cb)]. [a] owns the high index bits. *)

(** {1 Hashing} *)

val hash64 : t -> int64
(** Cheap 64-bit mixing hash over the packed words; the basis for memo
    keys that previously went through polymorphic hashing. *)

val hash : t -> int
(** [hash64] folded to a non-negative [int]. *)

(** {1 Matrix interchange} *)

val of_matrix : Matrix.t -> t
(** Packs a [2 x 2^n] logic matrix: entry [c] is determined to
    [row 0, column c]. @raise Invalid_argument if the matrix is not a
    logic matrix of power-of-two width. *)

val to_matrix : t -> Matrix.t
(** Unpacks to a [2 x 2^n] logic matrix.
    @raise Invalid_argument if any entry is don't-care. *)

val pp : Format.formatter -> t -> unit
(** Prints the entries, most significant position first, as [1]/[0]/[x]
    (e.g. [4'b1x01]). *)
