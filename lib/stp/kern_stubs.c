/* Multi-word kernel primitives for the STP factorisation solver.
 *
 * Every kernel works on flat OCaml Bytes buffers holding 64-bit words
 * in native byte order; offsets and lengths are counted in words. The
 * OCaml fallback (Kern.Ocaml_ops) implements the same contracts with
 * Bytes.get_int64_ne/set_int64_ne, so both implementations agree on
 * any host and can be differential-tested in one process.
 *
 * All stubs are [@@noalloc]: they neither allocate nor raise, and
 * return immediates only. Bytes data is word-aligned in the OCaml
 * runtime, so the uint64_t views below are safe.
 */

#include <caml/mlvalues.h>
#include <stdint.h>

static inline uint64_t *words_of(value b, value word_off)
{
  return (uint64_t *)Bytes_val(b) + Long_val(word_off);
}

#if defined(__GNUC__) || defined(__clang__)
#define POPCOUNT64(x) ((int)__builtin_popcountll(x))
#else
static inline int popcount64_soft(uint64_t x)
{
  x = x - ((x >> 1) & 0x5555555555555555ULL);
  x = (x & 0x3333333333333333ULL) + ((x >> 2) & 0x3333333333333333ULL);
  x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0fULL;
  return (int)((x * 0x0101010101010101ULL) >> 56);
}
#define POPCOUNT64(x) popcount64_soft(x)
#endif

CAMLprim value stp_kern_popcount(value b, value off, value nwords)
{
  uint64_t *w = words_of(b, off);
  long n = Long_val(nwords);
  long acc = 0;
  for (long k = 0; k < n; k++) acc += POPCOUNT64(w[k]);
  return Val_long(acc);
}

CAMLprim value stp_kern_equal_rows(value a, value aoff, value b, value boff,
                                   value nwords)
{
  uint64_t *wa = words_of(a, aoff);
  uint64_t *wb = words_of(b, boff);
  long n = Long_val(nwords);
  for (long k = 0; k < n; k++)
    if (wa[k] != wb[k]) return Val_false;
  return Val_true;
}

/* Ternary rows laid out [value words | care words]; compatible iff no
 * position is cared on both sides with different values. */
CAMLprim value stp_kern_compat(value a, value aoff, value b, value boff,
                               value nwords)
{
  uint64_t *wa = words_of(a, aoff);
  uint64_t *wb = words_of(b, boff);
  long n = Long_val(nwords);
  for (long k = 0; k < n; k++)
    if ((wa[k] ^ wb[k]) & wa[n + k] & wb[n + k]) return Val_false;
  return Val_true;
}

/* Count distinct [nwords]-word rows among the first [nrows] rows of a
 * flat row matrix, stopping at [cap] (the quartering comparison: a
 * factorable cover leaves exactly two distinct blocks). */
CAMLprim value stp_kern_distinct_rows(value b, value nrows, value nwords,
                                      value cap)
{
  uint64_t *base = (uint64_t *)Bytes_val(b);
  long rows = Long_val(nrows), w = Long_val(nwords), lim = Long_val(cap);
  long count = 0;
  for (long r = 0; r < rows && count < lim; r++) {
    uint64_t *row = base + r * w;
    int fresh = 1;
    for (long s = 0; s < r && fresh; s++) {
      uint64_t *prev = base + s * w;
      long k = 0;
      while (k < w && prev[k] == row[k]) k++;
      fresh = (k < w);
    }
    if (fresh) count++;
  }
  return Val_long(count);
}

/* Index of the first clear bit below [nbits], -1 if none. */
CAMLprim value stp_kern_first_unset(value b, value off, value nbits)
{
  uint64_t *w = words_of(b, off);
  long n = Long_val(nbits);
  for (long k = 0; k * 64 < n; k++) {
    uint64_t inv = ~w[k];
    if (inv) {
#if defined(__GNUC__) || defined(__clang__)
      long bit = (long)__builtin_ctzll(inv);
#else
      long bit = 0;
      while (!((inv >> bit) & 1)) bit++;
#endif
      long idx = k * 64 + bit;
      return idx < n ? Val_long(idx) : Val_long(-1);
    }
  }
  return Val_long(-1);
}

/* Is the [nbits]-wide row all-zero or all-one? (Constant-factor test
 * on a fully assigned side.) */
CAMLprim value stp_kern_is_const_row(value b, value off, value nbits)
{
  uint64_t *w = words_of(b, off);
  long n = Long_val(nbits);
  int all0 = 1, all1 = 1;
  for (long k = 0; k * 64 < n; k++) {
    long width = n - k * 64;
    uint64_t m = width >= 64 ? ~0ULL : (1ULL << width) - 1;
    if (w[k] & m) all0 = 0;
    if ((w[k] & m) != m) all1 = 0;
  }
  return Val_bool(all0 || all1);
}

/* One whole constraint-propagation step of the factorisation solver:
 * the class row at [rows+roff] is [valid | tv] ([nwords] words each);
 * the partner side's state lives in [st] at [val_off]/[care_off].
 * [ok0]/[ok1] say whether a partner value of 0/1 keeps phi on target.
 * Returns -1 on conflict (no state mutated), else writes the mask of
 * newly forced partner classes to [newly+noff], ORs it into the
 * partner state, and returns 1 if the mask is nonempty, 0 otherwise.
 */
CAMLprim value stp_kern_force_native(value rows, value roff, value st,
                                     value val_off, value care_off,
                                     value newly, value noff, value nwords,
                                     value ok0, value ok1)
{
  long w = Long_val(nwords);
  uint64_t *row = words_of(rows, roff);
  uint64_t *pv = words_of(st, val_off);
  uint64_t *pc = words_of(st, care_off);
  uint64_t *out = words_of(newly, noff);
  int o0 = Int_val(ok0), o1 = Int_val(ok1);
  /* Pass 1: conflicts, before any mutation. */
  for (long k = 0; k < w; k++) {
    uint64_t valid = row[k], tv = row[w + k];
    uint64_t w0 = o0 ? tv : ~tv;
    uint64_t w1 = o1 ? tv : ~tv;
    if (valid & ~(w0 | w1)) return Val_long(-1);
    uint64_t forced0 = valid & w0 & ~w1;
    uint64_t forced1 = valid & w1 & ~w0;
    if (forced0 & pc[k] & pv[k]) return Val_long(-1);
    if (forced1 & pc[k] & ~pv[k]) return Val_long(-1);
  }
  /* Pass 2: commit. */
  uint64_t any = 0;
  for (long k = 0; k < w; k++) {
    uint64_t valid = row[k], tv = row[w + k];
    uint64_t w0 = o0 ? tv : ~tv;
    uint64_t w1 = o1 ? tv : ~tv;
    uint64_t forced0 = valid & w0 & ~w1;
    uint64_t forced1 = valid & w1 & ~w0;
    uint64_t fresh = (forced0 | forced1) & ~pc[k];
    pc[k] |= fresh;
    pv[k] |= forced1 & fresh;
    out[k] = fresh;
    any |= fresh;
  }
  return Val_long(any != 0);
}

CAMLprim value stp_kern_force_bytecode(value *argv, int argn)
{
  (void)argn;
  return stp_kern_force_native(argv[0], argv[1], argv[2], argv[3], argv[4],
                               argv[5], argv[6], argv[7], argv[8], argv[9]);
}

/* Trail rollback: clear the masked bits from both state planes. */
CAMLprim value stp_kern_undo_native(value st, value val_off, value care_off,
                                    value mask, value moff, value nwords)
{
  long w = Long_val(nwords);
  uint64_t *pv = words_of(st, val_off);
  uint64_t *pc = words_of(st, care_off);
  uint64_t *m = words_of(mask, moff);
  for (long k = 0; k < w; k++) {
    pv[k] &= ~m[k];
    pc[k] &= ~m[k];
  }
  return Val_unit;
}

CAMLprim value stp_kern_undo_bytecode(value *argv, int argn)
{
  (void)argn;
  return stp_kern_undo_native(argv[0], argv[1], argv[2], argv[3], argv[4],
                              argv[5]);
}

/* OR together the [twords]-word indicator rows of the classes whose
 * bit is set in the [count]-bit row bitset: factor assembly without
 * tabulating 2^n closures. */
CAMLprim value stp_kern_assemble_native(value inds, value ioff, value row,
                                        value roff, value count, value twords,
                                        value out, value ooff)
{
  long cnt = Long_val(count), tw = Long_val(twords);
  uint64_t *ind = words_of(inds, ioff);
  uint64_t *sel = words_of(row, roff);
  uint64_t *dst = words_of(out, ooff);
  for (long k = 0; k < tw; k++) dst[k] = 0;
  for (long c = 0; c < cnt; c++)
    if ((sel[c >> 6] >> (c & 63)) & 1) {
      uint64_t *src = ind + c * tw;
      for (long k = 0; k < tw; k++) dst[k] |= src[k];
    }
  return Val_unit;
}

CAMLprim value stp_kern_assemble_bytecode(value *argv, int argn)
{
  (void)argn;
  return stp_kern_assemble_native(argv[0], argv[1], argv[2], argv[3], argv[4],
                                  argv[5], argv[6], argv[7]);
}
