(* Canonical forms are computed by structural recursion on the formula.
   Every step below is one of the paper's STP identities:

   - composing a structural matrix on the left (Definition 3),
   - passing a matrix across variables (Property 1: x ⋉ A = (I_2 ⊗ A) x),
   - swapping adjacent variables (equation (4): x y = M_w y x),
   - merging a repeated variable (equation (3): x x = M_r x),
   - consuming a vacuous variable with the eliminator [1 1].

   The right-multiplications by I ⊗ M_w ⊗ I, I ⊗ M_r ⊗ I and the
   eliminator are implemented as direct column permutations / selections /
   duplications, which the test suite checks against the general
   [Matrix.stp] products. *)

(* [swap_cols m j k]: right-multiply the 2 x 2^k matrix [m] by
   I_{2^j} ⊗ M_w ⊗ I_{2^(k-j-2)}, i.e. swap the variables at positions j
   and j+1 (position 0 is the leftmost variable, the most significant bit
   of the column index). *)
let swap_cols m j k =
  if j < 0 || j + 1 >= k then invalid_arg "Canonical.swap_cols";
  let bit_a = k - 1 - j and bit_b = k - 2 - j in
  Matrix.make 2 (1 lsl k) (fun r c ->
      let ba = (c lsr bit_a) land 1 and bb = (c lsr bit_b) land 1 in
      let c' =
        c land lnot ((1 lsl bit_a) lor (1 lsl bit_b))
        lor (bb lsl bit_a) lor (ba lsl bit_b)
      in
      Matrix.get m r c')

(* [reduce_cols m j k]: right-multiply by I_{2^j} ⊗ M_r ⊗ I_{2^(k-j-2)},
   merging equal variables at positions j and j+1. The result has k-1
   variable positions; the surviving variable sits at position j. *)
let reduce_cols m j k =
  if j < 0 || j + 1 >= k then invalid_arg "Canonical.reduce_cols";
  let bit = k - 2 - j in
  (* bit index of the surviving position in the smaller space *)
  Matrix.make 2 (1 lsl (k - 1)) (fun r c ->
      (* duplicate bit [bit] of c: low bits stay, the duplicated pair sits
         at positions bit and bit+1 of the source column *)
      let low = c land ((1 lsl bit) - 1) in
      let b = (c lsr bit) land 1 in
      let high = c lsr (bit + 1) in
      let c' = (((high lsl 1) lor b) lsl (bit + 1)) lor (b lsl bit) lor low in
      Matrix.get m r c')

(* [expand_cols m j k]: insert a vacuous variable at position j of a
   matrix over k variables (the new variable's value does not matter), the
   inverse of consuming it with the eliminator [1 1]. *)
let expand_cols m j k =
  if j < 0 || j > k then invalid_arg "Canonical.expand_cols";
  let bit = k - j in
  (* bit index of the inserted position in the larger space *)
  Matrix.make 2 (1 lsl (k + 1)) (fun r c ->
      let low = c land ((1 lsl bit) - 1) in
      let high = c lsr (bit + 1) in
      let c' = (high lsl bit) lor low in
      Matrix.get m r c')

(* Merge two sorted-distinct variable lists, rewriting the matrix with
   swaps and reductions. State: [m] over [done_ @ u @ v] where [done_] is
   the merged prefix. *)
let merge_sorted m u v =
  let rec go m acc u v =
    match (u, v) with
    | [], rest | rest, [] -> (m, List.rev_append acc rest)
    | x :: u', y :: v' ->
      let p = List.length acc in
      let k_total = p + List.length u + List.length v in
      if x = y then begin
        (* Move y leftwards until adjacent to x, then reduce. x sits at
           position p + (|u|-?) ... x is at position p; y is at position
           p + |u|. Swap y left across u' (|u|-1 swaps), then reduce. *)
        let len_u = List.length u in
        let m = ref m in
        for pos = p + len_u downto p + 2 do
          m := swap_cols !m (pos - 1) k_total
        done;
        let m = reduce_cols !m p k_total in
        go m (x :: acc) u' v'
      end
      else if x < y then go m (x :: acc) u' v
      else begin
        (* y < x: bring y to the front across all of u. *)
        let len_u = List.length u in
        let m = ref m in
        for pos = p + len_u downto p + 1 do
          m := swap_cols !m (pos - 1) k_total
        done;
        go !m (y :: acc) u v'
      end
  in
  go m [] u v

(* Canonical state: matrix over the sorted, distinct variable list. *)
type state = { m : Matrix.t; vars : int list }

let id2 = Matrix.identity 2

let apply_unary op s = { s with m = Matrix.stp op s.m }

let apply_binary op a b =
  let p = List.length a.vars in
  (* op ⋉ A ⋉ x_u ⋉ B ⋉ x_v = (op ⋉ A) ⋉ (I_{2^p} ⊗ B) ⋉ x_u ⋉ x_v *)
  let left = Matrix.stp op a.m in
  let lifted = if p = 0 then b.m else Matrix.kron (Matrix.identity (1 lsl p)) b.m in
  let m = Matrix.mul left lifted in
  let m, vars = merge_sorted m a.vars b.vars in
  { m; vars }

let rec state_of_expr e =
  match e with
  | Expr.Const b -> { m = Structural.of_bool b; vars = [] }
  | Expr.Var i -> { m = id2; vars = [ i ] }
  | Expr.Not a -> apply_unary Structural.m_not (state_of_expr a)
  | Expr.And (a, b) ->
    apply_binary Structural.m_and (state_of_expr a) (state_of_expr b)
  | Expr.Or (a, b) ->
    apply_binary Structural.m_or (state_of_expr a) (state_of_expr b)
  | Expr.Xor (a, b) ->
    apply_binary Structural.m_xor (state_of_expr a) (state_of_expr b)
  | Expr.Implies (a, b) ->
    apply_binary Structural.m_implies (state_of_expr a) (state_of_expr b)
  | Expr.Equiv (a, b) ->
    apply_binary Structural.m_equiv (state_of_expr a) (state_of_expr b)
  | Expr.Nand (a, b) ->
    apply_binary Structural.m_nand (state_of_expr a) (state_of_expr b)
  | Expr.Nor (a, b) ->
    apply_binary Structural.m_nor (state_of_expr a) (state_of_expr b)

let of_expr ~n e =
  if n <= Expr.max_var e then invalid_arg "Canonical.of_expr";
  if n < 0 then invalid_arg "Canonical.of_expr";
  let s = state_of_expr e in
  (* Insert the ambient variables the formula does not mention. *)
  let rec fill m vars j =
    if j = n then m
    else
      let pos = List.length (List.filter (fun v -> v < j) vars) in
      if List.mem j vars then fill m vars (j + 1)
      else
        fill (expand_cols m pos (List.length vars)) (j :: vars) (j + 1)
  in
  let m = fill s.m s.vars 0 in
  assert (Matrix.rows m = 2 && Matrix.cols m = 1 lsl n);
  m

let column_of_minterm ~n m =
  let c = ref 0 in
  for i = 0 to n - 1 do
    if (m lsr i) land 1 = 0 then c := !c lor (1 lsl (n - 1 - i))
  done;
  !c

let minterm_of_column ~n c =
  let m = ref 0 in
  for i = 0 to n - 1 do
    if (c lsr (n - 1 - i)) land 1 = 0 then m := !m lor (1 lsl i)
  done;
  !m

let of_tt t =
  let n = Stp_tt.Tt.num_vars t in
  Matrix.make 2 (1 lsl n) (fun i c ->
      let v = Stp_tt.Tt.get t (minterm_of_column ~n c) in
      match (i, v) with
      | 0, true | 1, false -> 1
      | 0, false | 1, true -> 0
      | _ -> assert false)

let to_tt m =
  if not (Matrix.is_logic_matrix m) then invalid_arg "Canonical.to_tt";
  let w = Matrix.cols m in
  let n =
    let rec log2 acc v = if v = 1 then acc else log2 (acc + 1) (v lsr 1) in
    log2 0 w
  in
  if 1 lsl n <> w then invalid_arg "Canonical.to_tt: width not a power of 2";
  Stp_tt.Tt.of_fun n (fun mt -> Matrix.get m 0 (column_of_minterm ~n mt) = 1)

let swap_positions m j k = swap_cols m j k
let reduce_positions m j k = reduce_cols m j k
let expand_positions m j k = expand_cols m j k
