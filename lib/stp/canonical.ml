(* Canonical forms are computed by structural recursion on the formula.
   Every step below is one of the paper's STP identities:

   - composing a structural matrix on the left (Definition 3),
   - passing a matrix across variables (Property 1: x ⋉ A = (I_2 ⊗ A) x),
   - swapping adjacent variables (equation (4): x y = M_w y x),
   - merging a repeated variable (equation (3): x x = M_r x),
   - consuming a vacuous variable with the eliminator [1 1].

   The state is kept as a packed {!Tmat} row over the column-index
   space: a 2 x 2^k logic matrix is determined by its first row, and all
   of the identities above act on it as word-parallel column moves
   ([Tmat.swap_vars] / [Tmat.reduce_dup] / [Tmat.insert_var]) or gate
   composition ([Tmat.stp_compose]) — position [j] of the variable list
   (0 = leftmost) is index bit [k - 1 - j]. The test suite checks the
   exported column operations against the general [Matrix.stp]
   products. *)

module Profile = Stp_util.Profile

(* [swap_cols m j k]: right-multiply the 2 x 2^k row [m] by
   I_{2^j} ⊗ M_w ⊗ I_{2^(k-j-2)}, i.e. swap the variables at positions j
   and j+1 (position 0 is the leftmost variable, the most significant bit
   of the column index). *)
let swap_cols m j k =
  if j < 0 || j + 1 >= k then invalid_arg "Canonical.swap_cols";
  Tmat.swap_vars m (k - 1 - j) (k - 2 - j)

(* [reduce_cols m j k]: right-multiply by I_{2^j} ⊗ M_r ⊗ I_{2^(k-j-2)},
   merging equal variables at positions j and j+1. The result has k-1
   variable positions; the surviving variable sits at position j. *)
let reduce_cols m j k =
  if j < 0 || j + 1 >= k then invalid_arg "Canonical.reduce_cols";
  Tmat.reduce_dup m (k - 2 - j)

(* [expand_cols m j k]: insert a vacuous variable at position j of a
   matrix over k variables (the new variable's value does not matter), the
   inverse of consuming it with the eliminator [1 1]. *)
let expand_cols m j k =
  if j < 0 || j > k then invalid_arg "Canonical.expand_cols";
  Tmat.insert_var m (k - j)

(* Merge two sorted-distinct variable lists, rewriting the matrix with
   swaps and reductions. State: [m] over [done_ @ u @ v] where [done_] is
   the merged prefix. *)
let merge_sorted m u v =
  let rec go m acc u v =
    match (u, v) with
    | [], rest | rest, [] -> (m, List.rev_append acc rest)
    | x :: u', y :: v' ->
      let p = List.length acc in
      let k_total = p + List.length u + List.length v in
      if x = y then begin
        (* Move y leftwards until adjacent to x, then reduce. x sits at
           position p + (|u|-?) ... x is at position p; y is at position
           p + |u|. Swap y left across u' (|u|-1 swaps), then reduce. *)
        let len_u = List.length u in
        let m = ref m in
        for pos = p + len_u downto p + 2 do
          m := swap_cols !m (pos - 1) k_total
        done;
        let m = reduce_cols !m p k_total in
        go m (x :: acc) u' v'
      end
      else if x < y then go m (x :: acc) u' v
      else begin
        (* y < x: bring y to the front across all of u. *)
        let len_u = List.length u in
        let m = ref m in
        for pos = p + len_u downto p + 1 do
          m := swap_cols !m (pos - 1) k_total
        done;
        go !m (y :: acc) u v'
      end
  in
  go m [] u v

(* Canonical state: packed matrix row over the sorted, distinct variable
   list. *)
type state = { m : Tmat.t; vars : int list }

(* Identity on one variable: column 0 is the all-true assignment. *)
let id2 = Tmat.of_fun 1 (fun c -> if c = 0 then Tmat.True else Tmat.False)

let apply_unary op s =
  (* A unary structural matrix is determined by its outputs on e_0 (the
     operand true — column 0) and e_1. *)
  let t1 = Matrix.get op 0 0 = 1 and t0 = Matrix.get op 0 1 = 1 in
  let k = List.length s.vars in
  let m =
    match (t1, t0) with
    | true, false -> s.m
    | false, true ->
      (* complement the row: NOT gate on the single operand *)
      Tmat.apply_gate 0b0011 s.m (Tmat.const k false)
    | b, _ when b = t0 -> Tmat.const k b
    | _ -> assert false
  in
  { s with m }

let apply_binary op a b =
  (* op ⋉ A ⋉ x_u ⋉ B ⋉ x_v = (op ⋉ A) ⋉ (I_{2^p} ⊗ B) ⋉ x_u ⋉ x_v:
     the composed row has A on the high index bits and entries
     op(A(ca), B(cb)) — one word-parallel gate application instead of
     the 2^p-fold Kronecker expansion. *)
  let code = Structural.to_gate_code op in
  let m = Tmat.stp_compose code a.m b.m in
  let m, vars = merge_sorted m a.vars b.vars in
  { m; vars }

let rec state_of_expr e =
  match e with
  | Expr.Const b -> { m = Tmat.const 0 b; vars = [] }
  | Expr.Var i -> { m = id2; vars = [ i ] }
  | Expr.Not a -> apply_unary Structural.m_not (state_of_expr a)
  | Expr.And (a, b) ->
    apply_binary Structural.m_and (state_of_expr a) (state_of_expr b)
  | Expr.Or (a, b) ->
    apply_binary Structural.m_or (state_of_expr a) (state_of_expr b)
  | Expr.Xor (a, b) ->
    apply_binary Structural.m_xor (state_of_expr a) (state_of_expr b)
  | Expr.Implies (a, b) ->
    apply_binary Structural.m_implies (state_of_expr a) (state_of_expr b)
  | Expr.Equiv (a, b) ->
    apply_binary Structural.m_equiv (state_of_expr a) (state_of_expr b)
  | Expr.Nand (a, b) ->
    apply_binary Structural.m_nand (state_of_expr a) (state_of_expr b)
  | Expr.Nor (a, b) ->
    apply_binary Structural.m_nor (state_of_expr a) (state_of_expr b)

let of_expr ~n e =
  if n <= Expr.max_var e then invalid_arg "Canonical.of_expr";
  if n < 0 then invalid_arg "Canonical.of_expr";
  Profile.time Profile.Canonical @@ fun () ->
  let s = state_of_expr e in
  (* Insert the ambient variables the formula does not mention. *)
  let rec fill m vars j =
    if j = n then m
    else
      let pos = List.length (List.filter (fun v -> v < j) vars) in
      if List.mem j vars then fill m vars (j + 1)
      else
        fill (expand_cols m pos (List.length vars)) (j :: vars) (j + 1)
  in
  let m = fill s.m s.vars 0 in
  assert (Tmat.num_vars m = n);
  Tmat.to_matrix m

let column_of_minterm ~n m =
  let c = ref 0 in
  for i = 0 to n - 1 do
    if (m lsr i) land 1 = 0 then c := !c lor (1 lsl (n - 1 - i))
  done;
  !c

let minterm_of_column ~n c =
  let m = ref 0 in
  for i = 0 to n - 1 do
    if (c lsr (n - 1 - i)) land 1 = 0 then m := !m lor (1 lsl i)
  done;
  !m

(* Column c reads the truth table at the bit-reversed complement of c:
   reverse the index bits, then complement every one of them — a handful
   of word-parallel passes instead of a per-column closure. *)
let tmat_of_tt t =
  let n = Stp_tt.Tt.num_vars t in
  let tm = ref (Tmat.of_tt t) in
  for i = 0 to (n / 2) - 1 do
    tm := Tmat.swap_vars !tm i (n - 1 - i)
  done;
  for i = 0 to n - 1 do
    tm := Tmat.negate_var !tm i
  done;
  !tm

let of_tt t =
  Profile.time Profile.Canonical @@ fun () -> Tmat.to_matrix (tmat_of_tt t)

let to_tt m =
  if not (Matrix.is_logic_matrix m) then invalid_arg "Canonical.to_tt";
  let w = Matrix.cols m in
  let n =
    let rec log2 acc v = if v = 1 then acc else log2 (acc + 1) (v lsr 1) in
    log2 0 w
  in
  if 1 lsl n <> w then invalid_arg "Canonical.to_tt: width not a power of 2";
  Stp_tt.Tt.of_fun n (fun mt -> Matrix.get m 0 (column_of_minterm ~n mt) = 1)

(* The exported rewriting primitives work on arbitrary two-row integer
   matrices (they are pure column moves, meaningful for the general STP
   algebra, and the tests exercise them on non-logic matrices); the
   packed kernels above are their restriction to logic-matrix rows. *)

let swap_positions m j k =
  if j < 0 || j + 1 >= k then invalid_arg "Canonical.swap_cols";
  let bit_a = k - 1 - j and bit_b = k - 2 - j in
  Matrix.make (Matrix.rows m) (1 lsl k) (fun r c ->
      let ba = (c lsr bit_a) land 1 and bb = (c lsr bit_b) land 1 in
      let c' =
        c land lnot ((1 lsl bit_a) lor (1 lsl bit_b))
        lor (bb lsl bit_a) lor (ba lsl bit_b)
      in
      Matrix.get m r c')

let reduce_positions m j k =
  if j < 0 || j + 1 >= k then invalid_arg "Canonical.reduce_cols";
  let bit = k - 2 - j in
  Matrix.make (Matrix.rows m) (1 lsl (k - 1)) (fun r c ->
      let low = c land ((1 lsl bit) - 1) in
      let b = (c lsr bit) land 1 in
      let high = c lsr (bit + 1) in
      let c' = (((high lsl 1) lor b) lsl (bit + 1)) lor (b lsl bit) lor low in
      Matrix.get m r c')

let expand_positions m j k =
  if j < 0 || j > k then invalid_arg "Canonical.expand_cols";
  let bit = k - j in
  Matrix.make (Matrix.rows m) (1 lsl (k + 1)) (fun r c ->
      let low = c land ((1 lsl bit) - 1) in
      let high = c lsr (bit + 1) in
      Matrix.get m r ((high lsl bit) lor low))
