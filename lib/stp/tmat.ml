module Tt = Stp_tt.Tt

type t = {
  n : int;
  value : int64 array; (* bit c: the entry at position c when cared *)
  care : int64 array;  (* bit c: 1 = determined, 0 = don't-care 'x' *)
}
(* Invariant: [value land care = value], and bits beyond 2^n are 0. *)

type entry = True | False | Dontcare

let max_vars = 20

let num_vars t = t.n

let width t = 1 lsl t.n

let num_words n = if n <= 6 then 1 else 1 lsl (n - 6)

(* Mask of significant bits in the (single) word of a small table; -1
   for n >= 6, where every word is fully used. *)
let small_mask n =
  if n >= 6 then -1L else Int64.sub (Int64.shift_left 1L (1 lsl n)) 1L

let check_arity name a b =
  if a.n <> b.n then invalid_arg ("Tmat." ^ name ^ ": arity mismatch")

let check_n name n =
  if n < 0 || n > max_vars then invalid_arg ("Tmat." ^ name)

(* Pattern of index bit [i] inside one 64-bit word, for i < 6. *)
let var_patterns =
  [| 0xAAAAAAAAAAAAAAAAL; 0xCCCCCCCCCCCCCCCCL; 0xF0F0F0F0F0F0F0F0L;
     0xFF00FF00FF00FF00L; 0xFFFF0000FFFF0000L; 0xFFFFFFFF00000000L |]

let unknown n =
  check_n "unknown" n;
  { n; value = Array.make (num_words n) 0L; care = Array.make (num_words n) 0L }

let const n b =
  check_n "const" n;
  let full = Array.make (num_words n) (small_mask n) in
  { n;
    value = (if b then Array.copy full else Array.make (num_words n) 0L);
    care = full }

let of_tt tt =
  let n = Tt.num_vars tt in
  { n; value = Tt.to_words tt; care = Array.make (num_words n) (small_mask n) }

let of_tt_with_care v ~care =
  if Tt.num_vars v <> Tt.num_vars care then
    invalid_arg "Tmat.of_tt_with_care: arity mismatch";
  let cw = Tt.to_words care in
  { n = Tt.num_vars v;
    value = Array.map2 Int64.logand (Tt.to_words v) cw;
    care = cw }

let get t c =
  if c < 0 || c >= width t then invalid_arg "Tmat.get";
  let k = c lsr 6 and o = c land 63 in
  let bit w = Int64.(logand (shift_right_logical w o) 1L) = 1L in
  if not (bit t.care.(k)) then Dontcare
  else if bit t.value.(k) then True
  else False

let set t c e =
  if c < 0 || c >= width t then invalid_arg "Tmat.set";
  let value = Array.copy t.value and care = Array.copy t.care in
  let k = c lsr 6 in
  let bit = Int64.shift_left 1L (c land 63) in
  let nbit = Int64.lognot bit in
  (match e with
   | True ->
     value.(k) <- Int64.logor value.(k) bit;
     care.(k) <- Int64.logor care.(k) bit
   | False ->
     value.(k) <- Int64.logand value.(k) nbit;
     care.(k) <- Int64.logor care.(k) bit
   | Dontcare ->
     value.(k) <- Int64.logand value.(k) nbit;
     care.(k) <- Int64.logand care.(k) nbit);
  { t with value; care }

let of_fun n f =
  check_n "of_fun" n;
  let value = Array.make (num_words n) 0L and care = Array.make (num_words n) 0L in
  for c = 0 to (1 lsl n) - 1 do
    match f c with
    | Dontcare -> ()
    | e ->
      let k = c lsr 6 in
      let bit = Int64.shift_left 1L (c land 63) in
      care.(k) <- Int64.logor care.(k) bit;
      if e = True then value.(k) <- Int64.logor value.(k) bit
  done;
  { n; value; care }

let popcount64 x =
  let rec loop x acc =
    if Int64.equal x 0L then acc else loop Int64.(logand x (sub x 1L)) (acc + 1)
  in
  loop x 0

let num_dontcares t =
  let m = small_mask t.n in
  Array.fold_left
    (fun acc cw -> acc + popcount64 (Int64.logand m (Int64.lognot cw)))
    0 t.care

(* --- ternary lattice --- *)

let equal a b =
  a.n = b.n
  && Array.for_all2 Int64.equal a.value b.value
  && Array.for_all2 Int64.equal a.care b.care

let compare a b =
  let c = Stdlib.compare a.n b.n in
  if c <> 0 then c
  else
    let rec arrays u v i =
      if i < 0 then 0
      else
        let c = Int64.compare u.(i) v.(i) in
        if c <> 0 then c else arrays u v (i - 1)
    in
    let c = arrays a.value b.value (Array.length a.value - 1) in
    if c <> 0 then c else arrays a.care b.care (Array.length a.care - 1)

let compatible a b =
  check_arity "compatible" a b;
  let ok = ref true in
  for k = 0 to Array.length a.value - 1 do
    let conflict =
      Int64.(logand (logand (logxor a.value.(k) b.value.(k)) a.care.(k))
               b.care.(k))
    in
    if not (Int64.equal conflict 0L) then ok := false
  done;
  !ok

let refines a b =
  check_arity "refines" a b;
  let ok = ref true in
  for k = 0 to Array.length a.value - 1 do
    if not (Int64.equal (Int64.logand b.care.(k) (Int64.lognot a.care.(k))) 0L)
       || not
            (Int64.equal
               (Int64.logand (Int64.logxor a.value.(k) b.value.(k)) b.care.(k))
               0L)
    then ok := false
  done;
  !ok

let meet a b =
  if not (compatible a b) then None
  else
    Some
      { n = a.n;
        value = Array.map2 Int64.logor a.value b.value;
        care = Array.map2 Int64.logor a.care b.care }

let completed t b =
  let m = small_mask t.n in
  let words =
    if b then
      Array.map2
        (fun v c -> Int64.logor v (Int64.logand m (Int64.lognot c)))
        t.value t.care
    else Array.copy t.value
  in
  Tt.of_words t.n words

let to_tt t =
  let m = small_mask t.n in
  if not (Array.for_all (fun c -> Int64.equal c m) t.care) then
    invalid_arg "Tmat.to_tt: table has don't-care entries";
  Tt.of_words t.n (Array.copy t.value)

let completions t =
  let xs = ref [] in
  for c = width t - 1 downto 0 do
    if get t c = Dontcare then xs := c :: !xs
  done;
  let xs = Array.of_list !xs in
  let k = Array.length xs in
  if k > Sys.int_size - 2 then
    invalid_arg "Tmat.completions: too many don't-cares";
  Seq.init (1 lsl k) (fun fill ->
      let words = Array.copy t.value in
      Array.iteri
        (fun i c ->
          if (fill lsr i) land 1 = 1 then begin
            let w = c lsr 6 in
            words.(w) <- Int64.logor words.(w) (Int64.shift_left 1L (c land 63))
          end)
        xs;
      Tt.of_words t.n words)

(* --- blocks and quartering --- *)

(* Word-level cofactor kernel (same scheme as Tt.cofactor), applied to
   both planes so don't-cares follow their entries. *)
let cofactor_words n words i b =
  if i < 6 then begin
    let shift = 1 lsl i in
    let p = var_patterns.(i) in
    let m = small_mask n in
    Array.map
      (fun w ->
        let w' =
          if b then
            let hi = Int64.logand w p in
            Int64.logor hi (Int64.shift_right_logical hi shift)
          else
            let lo = Int64.logand w (Int64.lognot p) in
            Int64.logor lo (Int64.shift_left lo shift)
        in
        Int64.logand w' m)
      words
  end
  else begin
    let bit = i - 6 in
    Array.mapi
      (fun k _ ->
        let src = if b then k lor (1 lsl bit) else k land lnot (1 lsl bit) in
        words.(src))
      words
  end

let cofactor t i b =
  if i < 0 || i >= t.n then invalid_arg "Tmat.cofactor";
  { t with
    value = cofactor_words t.n t.value i b;
    care = cofactor_words t.n t.care i b }

let quarter t i = (cofactor t i false, cofactor t i true)

let distinct_blocks ?(cap = 3) t ~group =
  let vars = ref [] in
  for i = t.n - 1 downto 0 do
    if (group lsr i) land 1 = 1 then vars := i :: !vars
  done;
  let vars = Array.of_list !vars in
  let ng = Array.length vars in
  (* Restrictions keep the full arity (the group bits become
     irrelevant), so block equality is plain structural equality. *)
  let seen = ref [] and count = ref 0 in
  (try
     for gi = 0 to (1 lsl ng) - 1 do
       let block = ref t in
       Array.iteri
         (fun j v -> block := cofactor !block v ((gi lsr j) land 1 = 1))
         vars;
       if not (List.exists (equal !block) !seen) then begin
         seen := !block :: !seen;
         incr count;
         if !count >= cap then raise Exit
       end
     done
   with Exit -> ());
  !count

(* --- permutations --- *)

let swap_vars t i j =
  if i < 0 || i >= t.n || j < 0 || j >= t.n then invalid_arg "Tmat.swap_vars";
  if i = j then t
  else begin
    let i, j = if i < j then (i, j) else (j, i) in
    let kernel words =
      if j < 6 then begin
        (* In-word delta swap: positions with bit i set and bit j clear
           trade places with their images [delta = 2^j - 2^i] higher. *)
        let d = (1 lsl j) - (1 lsl i) in
        let m =
          Int64.logand var_patterns.(i) (Int64.lognot var_patterns.(j))
        in
        Array.map
          (fun w ->
            let x =
              Int64.logand (Int64.logxor w (Int64.shift_right_logical w d)) m
            in
            Int64.logxor (Int64.logxor w x) (Int64.shift_left x d))
          words
      end
      else if i >= 6 then begin
        let bi = i - 6 and bj = j - 6 in
        Array.mapi
          (fun k _ ->
            let a = (k lsr bi) land 1 and b = (k lsr bj) land 1 in
            let k' =
              k land lnot ((1 lsl bi) lor (1 lsl bj))
              lor (b lsl bi) lor (a lsl bj)
            in
            words.(k'))
          words
      end
      else begin
        (* Mixed: bit i lives inside the word, bit j selects the word. *)
        let shift = 1 lsl i in
        let p = var_patterns.(i) in
        let np = Int64.lognot p in
        let bj = 1 lsl (j - 6) in
        Array.mapi
          (fun k _ ->
            if k land bj = 0 then
              Int64.logor
                (Int64.logand words.(k) np)
                (Int64.shift_left (Int64.logand words.(k lor bj) np) shift)
            else
              Int64.logor
                (Int64.logand words.(k) p)
                (Int64.shift_right_logical
                   (Int64.logand words.(k land lnot bj) p)
                   shift))
          words
      end
    in
    { t with value = kernel t.value; care = kernel t.care }
  end

let negate_var t i =
  if i < 0 || i >= t.n then invalid_arg "Tmat.negate_var";
  let kernel words =
    if i < 6 then begin
      let shift = 1 lsl i in
      let p = var_patterns.(i) in
      let np = Int64.lognot p in
      let m = small_mask t.n in
      Array.map
        (fun w ->
          Int64.logand m
            (Int64.logor
               (Int64.shift_right_logical (Int64.logand w p) shift)
               (Int64.shift_left (Int64.logand w np) shift)))
        words
    end
    else
      let bit = 1 lsl (i - 6) in
      Array.mapi (fun k _ -> words.(k lxor bit)) words
  in
  { t with value = kernel t.value; care = kernel t.care }

let permute t perm =
  if Array.length perm <> t.n then invalid_arg "Tmat.permute";
  let seen = Array.make t.n false in
  Array.iter
    (fun p ->
      if p < 0 || p >= t.n || seen.(p) then invalid_arg "Tmat.permute";
      seen.(p) <- true)
    perm;
  (* Shuffle tables: chunk the destination index into bytes and
     precompute each byte's scattered source-index contribution, so the
     per-position work is a few table lookups and one bit move. *)
  let nchunks = (t.n + 7) / 8 in
  let tables =
    Array.init nchunks (fun ci ->
        let bits = min 8 (t.n - (8 * ci)) in
        Array.init (1 lsl bits) (fun byte ->
            let src = ref 0 in
            for b = 0 to bits - 1 do
              if (byte lsr b) land 1 = 1 then
                src := !src lor (1 lsl perm.((8 * ci) + b))
            done;
            !src))
  in
  let src_of m =
    let s = ref 0 in
    for ci = 0 to nchunks - 1 do
      s := !s lor tables.(ci).((m lsr (8 * ci)) land 255)
    done;
    !s
  in
  let value = Array.make (Array.length t.value) 0L in
  let care = Array.make (Array.length t.care) 0L in
  for m = 0 to width t - 1 do
    let s = src_of m in
    let sk = s lsr 6 and so = s land 63 in
    let mk = m lsr 6 in
    let mbit = Int64.shift_left 1L (m land 63) in
    if Int64.(logand (shift_right_logical t.care.(sk) so) 1L) = 1L then begin
      care.(mk) <- Int64.logor care.(mk) mbit;
      if Int64.(logand (shift_right_logical t.value.(sk) so) 1L) = 1L then
        value.(mk) <- Int64.logor value.(mk) mbit
    end
  done;
  { t with value; care }

(* --- index-space rewrites --- *)

(* [insert_words n words b]: duplicate-free vacuous-bit insertion at
   index bit [b] of a table over [n] bits; the result has [n+1] bits.
   Word-parallel for [b >= 6]; chunked shifts below that. *)
let insert_words n words b =
  let out = Array.make (num_words (n + 1)) 0L in
  if b >= 6 then begin
    let wb = b - 6 in
    Array.iteri
      (fun k _ ->
        let src = (k land ((1 lsl wb) - 1)) lor ((k lsr (wb + 1)) lsl wb) in
        out.(k) <- words.(src))
      out
  end
  else begin
    let s = 1 lsl b in
    let chunk_mask = Int64.sub (Int64.shift_left 1L s) 1L in
    let wwidth = min 64 (1 lsl (n + 1)) in
    Array.iteri
      (fun k _ ->
        let sw = words.(k lsr 1) in
        (* chunk index offset contributed by the dest word's low bit *)
        let base = (k land 1) * (1 lsl (5 - b)) in
        let acc = ref 0L in
        let j = ref 0 in
        while !j * s < wwidth do
          let soff = s * ((!j lsr 1) + base) in
          let c = Int64.logand (Int64.shift_right_logical sw soff) chunk_mask in
          acc := Int64.logor !acc (Int64.shift_left c (!j * s));
          incr j
        done;
        out.(k) <- !acc)
      out
  end;
  let m = small_mask (n + 1) in
  Array.map (fun w -> Int64.logand w m) out

let insert_var t b =
  if b < 0 || b > t.n then invalid_arg "Tmat.insert_var";
  check_n "insert_var" (t.n + 1);
  { n = t.n + 1;
    value = insert_words t.n t.value b;
    care = insert_words t.n t.care b }

(* [reduce_words n words b]: merge equal index bits [b] and [b+1] into
   bit [b]; the result has [n-1] bits. Entry [c] of the result is entry
   [dup_b c] of the source. *)
let reduce_words n words b =
  let out = Array.make (num_words (n - 1)) 0L in
  let fetch i = if i < Array.length words then words.(i) else 0L in
  if b >= 6 then begin
    let wb = b - 6 in
    Array.iteri
      (fun k _ ->
        let low = k land ((1 lsl wb) - 1) in
        let bit = (k lsr wb) land 1 in
        let high = k lsr (wb + 1) in
        let src =
          (((high lsl 1) lor bit) lsl (wb + 1)) lor (bit lsl wb) lor low
        in
        out.(k) <- fetch src)
      out
  end
  else begin
    let s = 1 lsl b in
    let chunk_mask = Int64.sub (Int64.shift_left 1L s) 1L in
    let wwidth = min 64 (1 lsl (n - 1)) in
    Array.iteri
      (fun k _ ->
        let acc = ref 0L in
        let j = ref 0 in
        while !j * s < wwidth do
          (* dest chunk j reads the source at the index with dest bit b
             duplicated: offset 3s per duplicated-bit, 4s per higher
             chunk — possibly crossing into the odd word of the pair. *)
          let soff = (3 * s * (!j land 1)) + (4 * s * (!j lsr 1)) in
          let sw = fetch ((2 * k) + (soff / 64)) in
          let c =
            Int64.logand (Int64.shift_right_logical sw (soff land 63)) chunk_mask
          in
          acc := Int64.logor !acc (Int64.shift_left c (!j * s));
          incr j
        done;
        out.(k) <- !acc)
      out
  end;
  let m = small_mask (n - 1) in
  Array.map (fun w -> Int64.logand w m) out

let reduce_dup t b =
  if b < 0 || b + 1 >= t.n then invalid_arg "Tmat.reduce_dup";
  { n = t.n - 1;
    value = reduce_words t.n t.value b;
    care = reduce_words t.n t.care b }

let repeat_low t q =
  if q < 0 then invalid_arg "Tmat.repeat_low";
  check_n "repeat_low" (t.n + q);
  let r = ref t in
  for _ = 1 to q do
    r := insert_var !r 0
  done;
  !r

let tile_high t p =
  if p < 0 then invalid_arg "Tmat.tile_high";
  check_n "tile_high" (t.n + p);
  let r = ref t in
  for _ = 1 to p do
    r := insert_var !r (num_vars !r)
  done;
  !r

(* --- gate composition --- *)

let apply_gate code a b =
  check_arity "apply_gate" a b;
  if code < 0 || code > 15 then invalid_arg "Tmat.apply_gate";
  let n = a.n in
  let m = small_mask n in
  let words = Array.length a.value in
  let value = Array.make words 0L and care = Array.make words 0L in
  for k = 0 to words - 1 do
    (* Candidate sets per operand: an entry can be 1 if it is a cared 1
       or a don't-care; it can be 0 unless it is a cared 1. *)
    let a1 = Int64.logor a.value.(k) (Int64.logand m (Int64.lognot a.care.(k))) in
    let a0 = Int64.logand m (Int64.lognot a.value.(k)) in
    let b1 = Int64.logor b.value.(k) (Int64.logand m (Int64.lognot b.care.(k))) in
    let b0 = Int64.logand m (Int64.lognot b.value.(k)) in
    let pick va vb = Int64.logand (if va = 1 then a1 else a0) (if vb = 1 then b1 else b0) in
    let can1 = ref 0L and can0 = ref 0L in
    for va = 0 to 1 do
      for vb = 0 to 1 do
        let w = pick va vb in
        if (code lsr ((2 * va) + vb)) land 1 = 1 then
          can1 := Int64.logor !can1 w
        else can0 := Int64.logor !can0 w
      done
    done;
    (* Every position admits at least one consistent input pair, so
       can0/can1 cover the mask; the output is determined exactly where
       only one of them holds. *)
    let c = Int64.logand m (Int64.lognot (Int64.logand !can1 !can0)) in
    care.(k) <- c;
    value.(k) <- Int64.logand !can1 c
  done;
  { n; value; care }

let stp_compose code a b =
  check_n "stp_compose" (a.n + b.n);
  apply_gate code (repeat_low a b.n) (tile_high b a.n)

(* --- hashing --- *)

let mix h w =
  let h = Int64.logxor h w in
  let h = Int64.mul h 0xff51afd7ed558ccdL in
  Int64.logxor h (Int64.shift_right_logical h 33)

let hash64 t =
  let h = ref (Int64.mul (Int64.of_int (t.n + 1)) 0x9E3779B97F4A7C15L) in
  Array.iter (fun w -> h := mix !h w) t.value;
  Array.iter (fun w -> h := mix !h w) t.care;
  !h

let hash t = Int64.to_int (hash64 t) land max_int

(* --- matrix interchange --- *)

let of_matrix m =
  if not (Matrix.is_logic_matrix m) then
    invalid_arg "Tmat.of_matrix: not a logic matrix";
  let w = Matrix.cols m in
  let n =
    let rec log2 acc v = if v <= 1 then acc else log2 (acc + 1) (v lsr 1) in
    log2 0 w
  in
  if 1 lsl n <> w then invalid_arg "Tmat.of_matrix: width not a power of 2";
  of_fun n (fun c -> if Matrix.get m 0 c = 1 then True else False)

let to_matrix t =
  let m = small_mask t.n in
  if not (Array.for_all (fun c -> Int64.equal c m) t.care) then
    invalid_arg "Tmat.to_matrix: table has don't-care entries";
  Matrix.make 2 (width t) (fun r c ->
      let k = c lsr 6 and o = c land 63 in
      let v = Int64.(logand (shift_right_logical t.value.(k) o) 1L) = 1L in
      match (r, v) with 0, true | 1, false -> 1 | _ -> 0)

let pp fmt t =
  Format.fprintf fmt "%d'b" t.n;
  for c = width t - 1 downto 0 do
    Format.pp_print_char fmt
      (match get t c with True -> '1' | False -> '0' | Dontcare -> 'x')
  done
