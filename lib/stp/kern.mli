(** Multi-word kernel primitives for the factorisation solver.

    The packed decompose path of [Stp_synth.Factor] keeps one machine
    word of block values per side, which caps it at 5-variable sides
    and 6-variable targets. These kernels generalise the same
    word-parallel operations to flat multi-word buffers, so 6- and
    7-variable sides get quartering rejects, compatibility tests and
    constraint propagation at word granularity too.

    Buffers are plain [Bytes] holding 64-bit words in {e native} byte
    order; offsets and widths are counted in words. Two complete
    implementations are compiled: C stubs (branch-free popcounts,
    whole-step propagation in one call) and a pure-OCaml fallback on
    [Bytes.get_int64_ne]/[set_int64_ne]. {!ops} picks one per process
    from the [STP_KERNELS] environment variable ([c] — the default —
    or [ocaml]); both stay addressable for differential testing. *)

type impl = C | Ocaml

val impl : impl
(** Implementation selected for this process: [Ocaml] when the
    [STP_KERNELS] environment variable is [ocaml], [C] otherwise. *)

val impl_name : string
(** ["c"] or ["ocaml"]. *)

module type OPS = sig
  val popcount : Bytes.t -> int -> int -> int
  (** [popcount b off w]: set bits in the [w] words at word-offset
      [off]. *)

  val equal_rows : Bytes.t -> int -> Bytes.t -> int -> int -> bool
  (** [equal_rows a aoff b boff w]: the two [w]-word rows are equal. *)

  val compat : Bytes.t -> int -> Bytes.t -> int -> int -> bool
  (** [compat a aoff b boff w] on ternary rows laid out
      [value words ; care words] ([2w] words each): no position is
      cared on both sides with different values. *)

  val distinct_rows : Bytes.t -> int -> int -> int -> int
  (** [distinct_rows b rows w cap]: number of distinct [w]-word rows
      among the first [rows] rows of the flat matrix at [b], counting
      stops at [cap]. The quartering comparison kernel: a factorable
      disjoint cover leaves exactly two distinct blocks per side. *)

  val first_unset : Bytes.t -> int -> int -> int
  (** [first_unset b off nbits]: index of the first clear bit below
      [nbits] in the bitset at word-offset [off], or [-1]. *)

  val is_const_row : Bytes.t -> int -> int -> bool
  (** [is_const_row b off nbits]: the [nbits]-wide row is all-zero or
      all-one (the constant-factor test on a fully assigned side). *)

  val force :
    Bytes.t -> int -> Bytes.t -> int -> int -> Bytes.t -> int -> int ->
    int -> int -> int
  (** [force rows roff st val_off care_off newly noff w ok0 ok1]: one
      whole constraint-propagation step. The class row at [roff] is
      [valid ; tv] ([w] words each); the partner side's state planes
      live in [st]. [ok0]/[ok1] (0/1) say whether a partner value of
      0/1 keeps the gate on target. Returns [-1] on conflict (state
      untouched), else writes the newly-forced mask to [newly],
      ORs it into the partner planes, and returns 1 if nonempty,
      0 otherwise. *)

  val undo : Bytes.t -> int -> int -> Bytes.t -> int -> int -> unit
  (** [undo st val_off care_off mask moff w]: clear the masked bits
      from both state planes (trail rollback). *)

  val assemble : Bytes.t -> int -> Bytes.t -> int -> int -> int -> Bytes.t -> int -> unit
  (** [assemble inds ioff row roff count tw out ooff]: OR together the
      [tw]-word indicator rows of the classes whose bit is set in the
      [count]-bit selector [row]; the result overwrites [out]. *)
end

module C_ops : OPS
module Ocaml_ops : OPS

module Ops : OPS
(** The per-process selection ({!impl}) — what the solver uses. *)

val word_of_var : n:int -> v:int -> k:int -> int64
(** Pattern of variable [v] of an [n]-variable table restricted to
    table word [k]: the minterms of word [k] where [v] is 1. *)
