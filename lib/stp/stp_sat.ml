type assignment = bool array

let width_log2 m =
  let w = Matrix.cols m in
  let rec log2 acc v = if v = 1 then acc else log2 (acc + 1) (v lsr 1) in
  let n = log2 0 w in
  if 1 lsl n <> w then invalid_arg "Stp_sat: width not a power of 2";
  n

let check m =
  if not (Matrix.is_logic_matrix m) then invalid_arg "Stp_sat: not a logic matrix";
  width_log2 m

(* Does [lo, hi) contain a True column? *)
let has_true m lo hi =
  let rec loop j = j < hi && (Matrix.get m 0 j = 1 || loop (j + 1)) in
  loop lo

let is_sat m =
  let _n = check m in
  has_true m 0 (Matrix.cols m)

let count m =
  let _n = check m in
  let acc = ref 0 in
  for j = 0 to Matrix.cols m - 1 do
    if Matrix.get m 0 j = 1 then incr acc
  done;
  !acc

let all_solutions m =
  let n = check m in
  let sols = ref [] in
  let value = Array.make (max n 1) false in
  (* Depth d decides variable d; columns [lo, hi). *)
  let rec descend d lo hi =
    if not (has_true m lo hi) then ()
    else if d = n then sols := Array.copy value :: !sols
    else begin
      let mid = (lo + hi) / 2 in
      value.(d) <- true;
      descend (d + 1) lo mid;
      value.(d) <- false;
      descend (d + 1) mid hi
    end
  in
  if n = 0 then begin if has_true m 0 1 then sols := [ [||] ] end
  else descend 0 0 (Matrix.cols m);
  List.rev !sols

let solutions_as_minterms m =
  List.map
    (fun a ->
      let v = ref 0 in
      Array.iteri (fun i b -> if b then v := !v lor (1 lsl i)) a;
      !v)
    (all_solutions m)

type tree =
  | Sat
  | Unsat
  | Branch of { var : int; if_true : tree; if_false : tree }

let trace m =
  let n = check m in
  let rec descend d lo hi =
    if not (has_true m lo hi) then Unsat
    else if d = n then Sat
    else
      let mid = (lo + hi) / 2 in
      Branch
        { var = d;
          if_true = descend (d + 1) lo mid;
          if_false = descend (d + 1) mid hi }
  in
  descend 0 0 (Matrix.cols m)

let rec pp_tree fmt = function
  | Sat -> Format.fprintf fmt "SAT"
  | Unsat -> Format.fprintf fmt "x"
  | Branch { var; if_true; if_false } ->
    Format.fprintf fmt "@[<v 2>x%d?@,1: %a@,0: %a@]" (var + 1) pp_tree if_true
      pp_tree if_false
