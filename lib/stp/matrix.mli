(** Dense integer matrices with the semi-tensor product (STP).

    This module implements the paper's Definition 1: for
    [X : m x n] and [Y : p x q], the semi-tensor product is
    [X ⋉ Y = (X ⊗ I_{t/n}) (Y ⊗ I_{t/p})] with [t = lcm n p], where [⊗]
    is the Kronecker product. When [n = p] the STP coincides with the
    ordinary matrix product.

    Entries are OCaml [int]s; logic matrices only ever hold 0 and 1, but
    the algebra is defined for arbitrary integer matrices so the
    preliminary identities (Property 1, swap matrices) can be exercised
    in full generality. *)

type t

val rows : t -> int
val cols : t -> int

val make : int -> int -> (int -> int -> int) -> t
(** [make r c f] builds the [r x c] matrix with entries [f i j]
    (row [i], column [j], both 0-indexed). *)

val of_rows : int list list -> t
(** [of_rows rows] builds a matrix from row lists; all rows must have
    equal, positive length. *)

val get : t -> int -> int -> int

val identity : int -> t

val zero : int -> int -> t

val equal : t -> t -> bool
(** Structural equality: same dimensions, same entries. An explicit
    entry-wise compare (not the polymorphic [=]), suitable for hot
    paths. *)

val hash : t -> int
(** Mixes the dimensions and every entry; consistent with {!equal}. *)

val transpose : t -> t

val mul : t -> t -> t
(** Ordinary matrix product. Raises [Invalid_argument] on dimension
    mismatch. *)

val kron : t -> t -> t
(** Kronecker product. *)

val stp : t -> t -> t
(** Semi-tensor product (Definition 1); total on all dimension pairs. *)

val swap_matrix : int -> int -> t
(** [swap_matrix m n] is the [mn x mn] swap matrix [W_[m,n]] satisfying
    [W_[m,n] ⋉ (x ⊗ y) = y ⊗ x] for column vectors [x : m], [y : n]. *)

val column : t -> int -> t
(** [column m j] extracts column [j] as a column vector. *)

val is_logic_matrix : t -> bool
(** A logic matrix has exactly two rows, and every column is
    [[1;0]] or [[0;1]] (Definition 2). *)

val pp : Format.formatter -> t -> unit
