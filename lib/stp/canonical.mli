(** STP canonical forms (Property 2).

    Every formula [Φ(x1, …, xn)] equals [M_Φ ⋉ x1 ⋉ … ⋉ xn] for a unique
    [2 x 2^n] logic matrix [M_Φ], computed by pushing structural matrices
    to the left (Property 1), reducing repeated variables with [M_r]
    (equation (3)) and sorting variables with [M_w] (equation (4)).

    Column convention: column [c] (0-indexed from the left) of [M_Φ]
    corresponds to the assignment in which [x_{i+1}] (= [Expr.Var i]) is
    true iff bit [n-1-i] of [c] is 0 — i.e. the leftmost column is the
    all-true assignment, matching the paper's "truth table read from
    right to left". *)

val of_expr : n:int -> Expr.t -> Matrix.t
(** [of_expr ~n e] computes the canonical form of [e] over [n] variables
    by the genuine STP normalisation procedure (structural-matrix
    rewriting), not by tabulation. [n] must exceed [Expr.max_var e]. *)

val of_tt : Stp_tt.Tt.t -> Matrix.t
(** [of_tt t] is the canonical form of the function tabulated by [t]. *)

val to_tt : Matrix.t -> Stp_tt.Tt.t
(** [to_tt m] converts a [2 x 2^n] logic matrix back to a truth table.
    @raise Invalid_argument if [m] is not a logic matrix of width a
    power of two. *)

val column_of_minterm : n:int -> int -> int
(** [column_of_minterm ~n m] is the canonical-form column index of the
    truth-table minterm [m]. The map is an involution-free bijection
    [c = 2^n - 1 - rev] ... see implementation; exposed for tests and
    the AllSAT solver. *)

val minterm_of_column : n:int -> int -> int
(** Inverse of {!column_of_minterm}. *)

(** {1 Rewriting primitives}

    The three column-level operations the normalisation is built from.
    Each is semantically a right-multiplication by an STP matrix; the
    test suite checks them against the general {!Matrix.stp} products. *)

val swap_positions : Matrix.t -> int -> int -> Matrix.t
(** [swap_positions m j k] right-multiplies the [2 x 2^k] matrix [m] by
    [I_{2^j} ⊗ M_w ⊗ I_{2^(k-j-2)}], swapping the variables at positions
    [j] and [j+1] (position 0 = leftmost = most significant column
    bit). *)

val reduce_positions : Matrix.t -> int -> int -> Matrix.t
(** [reduce_positions m j k] right-multiplies by
    [I_{2^j} ⊗ M_r ⊗ I_{2^(k-j-2)}], merging the equal variables at
    positions [j] and [j+1]; the result is [2 x 2^(k-1)]. *)

val expand_positions : Matrix.t -> int -> int -> Matrix.t
(** [expand_positions m j k] inserts a vacuous variable at position [j]
    of a matrix over [k] variables; the result is [2 x 2^(k+1)]. *)
