type impl = C | Ocaml

let impl =
  match Sys.getenv_opt "STP_KERNELS" with
  | Some s when String.lowercase_ascii s = "ocaml" -> Ocaml
  | _ -> C

let impl_name = match impl with C -> "c" | Ocaml -> "ocaml"

module type OPS = sig
  val popcount : Bytes.t -> int -> int -> int
  val equal_rows : Bytes.t -> int -> Bytes.t -> int -> int -> bool
  val compat : Bytes.t -> int -> Bytes.t -> int -> int -> bool
  val distinct_rows : Bytes.t -> int -> int -> int -> int
  val first_unset : Bytes.t -> int -> int -> int
  val is_const_row : Bytes.t -> int -> int -> bool
  val force :
    Bytes.t -> int -> Bytes.t -> int -> int -> Bytes.t -> int -> int ->
    int -> int -> int
  val undo : Bytes.t -> int -> int -> Bytes.t -> int -> int -> unit
  val assemble :
    Bytes.t -> int -> Bytes.t -> int -> int -> int -> Bytes.t -> int -> unit
end

module C_ops : OPS = struct
  external popcount : Bytes.t -> int -> int -> int = "stp_kern_popcount"
    [@@noalloc]

  external equal_rows : Bytes.t -> int -> Bytes.t -> int -> int -> bool
    = "stp_kern_equal_rows"
    [@@noalloc]

  external compat : Bytes.t -> int -> Bytes.t -> int -> int -> bool
    = "stp_kern_compat"
    [@@noalloc]

  external distinct_rows : Bytes.t -> int -> int -> int -> int
    = "stp_kern_distinct_rows"
    [@@noalloc]

  external first_unset : Bytes.t -> int -> int -> int = "stp_kern_first_unset"
    [@@noalloc]

  external is_const_row : Bytes.t -> int -> int -> bool
    = "stp_kern_is_const_row"
    [@@noalloc]

  external force :
    Bytes.t -> int -> Bytes.t -> int -> int -> Bytes.t -> int -> int ->
    int -> int -> int = "stp_kern_force_bytecode" "stp_kern_force_native"
    [@@noalloc]

  external undo : Bytes.t -> int -> int -> Bytes.t -> int -> int -> unit
    = "stp_kern_undo_bytecode" "stp_kern_undo_native"
    [@@noalloc]

  external assemble :
    Bytes.t -> int -> Bytes.t -> int -> int -> int -> Bytes.t -> int -> unit
    = "stp_kern_assemble_bytecode" "stp_kern_assemble_native"
    [@@noalloc]
end

module Ocaml_ops : OPS = struct
  let gw b k = Bytes.get_int64_ne b (k lsl 3)
  let sw b k v = Bytes.set_int64_ne b (k lsl 3) v

  let popcount64 x =
    let open Int64 in
    let x = sub x (logand (shift_right_logical x 1) 0x5555555555555555L) in
    let x =
      add
        (logand x 0x3333333333333333L)
        (logand (shift_right_logical x 2) 0x3333333333333333L)
    in
    let x = logand (add x (shift_right_logical x 4)) 0x0f0f0f0f0f0f0f0fL in
    to_int (shift_right_logical (mul x 0x0101010101010101L) 56)

  let popcount b off w =
    let acc = ref 0 in
    for k = off to off + w - 1 do
      acc := !acc + popcount64 (gw b k)
    done;
    !acc

  let equal_rows a aoff b boff w =
    let rec loop k =
      k >= w || (Int64.equal (gw a (aoff + k)) (gw b (boff + k)) && loop (k + 1))
    in
    loop 0

  let compat a aoff b boff w =
    let rec loop k =
      k >= w
      || (Int64.equal
            (Int64.logand
               (Int64.logand
                  (Int64.logxor (gw a (aoff + k)) (gw b (boff + k)))
                  (gw a (aoff + w + k)))
               (gw b (boff + w + k)))
            0L
         && loop (k + 1))
    in
    loop 0

  let distinct_rows b rows w cap =
    let count = ref 0 in
    (try
       for r = 0 to rows - 1 do
         let fresh = ref true in
         for s = 0 to r - 1 do
           if !fresh && equal_rows b (s * w) b (r * w) w then fresh := false
         done;
         if !fresh then begin
           incr count;
           if !count >= cap then raise Exit
         end
       done
     with Exit -> ());
    !count

  let first_unset b off nbits =
    let rec loop k =
      if k * 64 >= nbits then -1
      else
        let inv = Int64.lognot (gw b (off + k)) in
        if Int64.equal inv 0L then loop (k + 1)
        else begin
          let bit = ref 0 in
          while
            Int64.equal
              (Int64.logand (Int64.shift_right_logical inv !bit) 1L)
              0L
          do
            incr bit
          done;
          let idx = (k * 64) + !bit in
          if idx < nbits then idx else -1
        end
    in
    loop 0

  let is_const_row b off nbits =
    let all0 = ref true and all1 = ref true in
    let k = ref 0 in
    while !k * 64 < nbits do
      let width = nbits - (!k * 64) in
      let m =
        if width >= 64 then -1L else Int64.sub (Int64.shift_left 1L width) 1L
      in
      let w = Int64.logand (gw b (off + !k)) m in
      if not (Int64.equal w 0L) then all0 := false;
      if not (Int64.equal w m) then all1 := false;
      incr k
    done;
    !all0 || !all1

  let force rows roff st val_off care_off newly noff w ok0 ok1 =
    (* Pass 1: detect conflicts before mutating any state, so a failed
       step never needs trail cleanup. *)
    let conflict = ref false in
    for k = 0 to w - 1 do
      if not !conflict then begin
        let valid = gw rows (roff + k) and tv = gw rows (roff + w + k) in
        let w0 = if ok0 = 1 then tv else Int64.lognot tv in
        let w1 = if ok1 = 1 then tv else Int64.lognot tv in
        if
          not
            (Int64.equal
               (Int64.logand valid (Int64.lognot (Int64.logor w0 w1)))
               0L)
        then conflict := true
        else begin
          let forced0 =
            Int64.logand valid (Int64.logand w0 (Int64.lognot w1))
          in
          let forced1 =
            Int64.logand valid (Int64.logand w1 (Int64.lognot w0))
          in
          let pv = gw st (val_off + k) and pc = gw st (care_off + k) in
          if
            (not (Int64.equal (Int64.logand forced0 (Int64.logand pc pv)) 0L))
            || not
                 (Int64.equal
                    (Int64.logand forced1
                       (Int64.logand pc (Int64.lognot pv)))
                    0L)
          then conflict := true
        end
      end
    done;
    if !conflict then -1
    else begin
      let any = ref false in
      for k = 0 to w - 1 do
        let valid = gw rows (roff + k) and tv = gw rows (roff + w + k) in
        let w0 = if ok0 = 1 then tv else Int64.lognot tv in
        let w1 = if ok1 = 1 then tv else Int64.lognot tv in
        let forced0 = Int64.logand valid (Int64.logand w0 (Int64.lognot w1)) in
        let forced1 = Int64.logand valid (Int64.logand w1 (Int64.lognot w0)) in
        let pv = gw st (val_off + k) and pc = gw st (care_off + k) in
        let fresh =
          Int64.logand (Int64.logor forced0 forced1) (Int64.lognot pc)
        in
        sw st (care_off + k) (Int64.logor pc fresh);
        sw st (val_off + k) (Int64.logor pv (Int64.logand forced1 fresh));
        sw newly (noff + k) fresh;
        if not (Int64.equal fresh 0L) then any := true
      done;
      if !any then 1 else 0
    end

  let undo st val_off care_off mask moff w =
    for k = 0 to w - 1 do
      let nm = Int64.lognot (gw mask (moff + k)) in
      sw st (val_off + k) (Int64.logand (gw st (val_off + k)) nm);
      sw st (care_off + k) (Int64.logand (gw st (care_off + k)) nm)
    done

  let assemble inds ioff row roff count tw out ooff =
    for k = 0 to tw - 1 do
      sw out (ooff + k) 0L
    done;
    for c = 0 to count - 1 do
      if
        Int64.equal
          (Int64.logand
             (Int64.shift_right_logical (gw row (roff + (c lsr 6))) (c land 63))
             1L)
          1L
      then
        for k = 0 to tw - 1 do
          sw out (ooff + k)
            (Int64.logor (gw out (ooff + k)) (gw inds (ioff + (c * tw) + k)))
        done
    done
end

module Ops : OPS = (val match impl with
                        | C -> (module C_ops : OPS)
                        | Ocaml -> (module Ocaml_ops : OPS))

(* Pattern of index bit [v] inside one 64-bit word, for v < 6 (same
   table as Tt/Tmat). *)
let var_patterns =
  [| 0xAAAAAAAAAAAAAAAAL; 0xCCCCCCCCCCCCCCCCL; 0xF0F0F0F0F0F0F0F0L;
     0xFF00FF00FF00FF00L; 0xFFFF0000FFFF0000L; 0xFFFFFFFF00000000L |]

let word_of_var ~n ~v ~k =
  let m =
    if n >= 6 then -1L else Int64.sub (Int64.shift_left 1L (1 lsl n)) 1L
  in
  if v < 6 then Int64.logand var_patterns.(v) m
  else if (k lsr (v - 6)) land 1 = 1 then m
  else 0L
