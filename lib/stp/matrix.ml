type t = { rows : int; cols : int; data : int array }

let rows m = m.rows
let cols m = m.cols

let make r c f =
  if r <= 0 || c <= 0 then invalid_arg "Matrix.make";
  let data = Array.make (r * c) 0 in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      data.((i * c) + j) <- f i j
    done
  done;
  { rows = r; cols = c; data }

let of_rows rws =
  match rws with
  | [] -> invalid_arg "Matrix.of_rows"
  | first :: _ ->
    let c = List.length first in
    if c = 0 || List.exists (fun r -> List.length r <> c) rws then
      invalid_arg "Matrix.of_rows";
    let arr = Array.of_list (List.map Array.of_list rws) in
    make (Array.length arr) c (fun i j -> arr.(i).(j))

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Matrix.get";
  m.data.((i * m.cols) + j)

let identity n = make n n (fun i j -> if i = j then 1 else 0)

let zero r c = make r c (fun _ _ -> 0)

let equal a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let len = Array.length a.data in
  let rec eq i = i >= len || (a.data.(i) = b.data.(i) && eq (i + 1)) in
  eq 0

let hash m =
  let h = ref ((m.rows * 31) + m.cols) in
  Array.iter (fun v -> h := (((!h lsl 5) + !h) lxor v) land max_int) m.data;
  !h

let transpose m = make m.cols m.rows (fun i j -> get m j i)

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
  make a.rows b.cols (fun i j ->
      let acc = ref 0 in
      for k = 0 to a.cols - 1 do
        acc := !acc + (a.data.((i * a.cols) + k) * b.data.((k * b.cols) + j))
      done;
      !acc)

let kron a b =
  make (a.rows * b.rows) (a.cols * b.cols) (fun i j ->
      let ia = i / b.rows and ib = i mod b.rows in
      let ja = j / b.cols and jb = j mod b.cols in
      get a ia ja * get b ib jb)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let lcm a b = a / gcd a b * b

let stp a b =
  let t = lcm a.cols b.rows in
  let left = if t = a.cols then a else kron a (identity (t / a.cols)) in
  let right = if t = b.rows then b else kron b (identity (t / b.rows)) in
  mul left right

let swap_matrix m n =
  (* W_[m,n] maps basis vector e_i ⊗ e_j (i < m, j < n, index i*n + j) to
     e_j ⊗ e_i (index j*m + i). *)
  make (m * n) (m * n) (fun r c ->
      let i = c / n and j = c mod n in
      if r = (j * m) + i then 1 else 0)

let column m j = make m.rows 1 (fun i _ -> get m i j)

let is_logic_matrix m =
  m.rows = 2
  && (let ok = ref true in
      for j = 0 to m.cols - 1 do
        let a = get m 0 j and b = get m 1 j in
        if not ((a = 1 && b = 0) || (a = 0 && b = 1)) then ok := false
      done;
      !ok)

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf fmt " ";
      Format.fprintf fmt "%d" (get m i j)
    done;
    Format.fprintf fmt "]";
    if i < m.rows - 1 then Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
