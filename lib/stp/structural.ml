let vtrue = Matrix.of_rows [ [ 1 ]; [ 0 ] ]
let vfalse = Matrix.of_rows [ [ 0 ]; [ 1 ] ]

let of_bool b = if b then vtrue else vfalse

let to_bool v =
  if Matrix.equal v vtrue then true
  else if Matrix.equal v vfalse then false
  else invalid_arg "Structural.to_bool"

(* Binary structural matrix from output bits on (a,b) =
   (1,1), (1,0), (0,1), (0,0). *)
let binary b11 b10 b01 b00 =
  let row1 = [ b11; b10; b01; b00 ] in
  Matrix.of_rows [ row1; List.map (fun b -> 1 - b) row1 ]

let m_not = Matrix.of_rows [ [ 0; 1 ]; [ 1; 0 ] ]
let m_and = binary 1 0 0 0
let m_or = binary 1 1 1 0
let m_xor = binary 0 1 1 0
let m_implies = binary 1 0 1 1
let m_equiv = binary 1 0 0 1
let m_nand = binary 0 1 1 1
let m_nor = binary 0 0 0 1

let power_reduce =
  Matrix.of_rows [ [ 1; 0 ]; [ 0; 0 ]; [ 0; 0 ]; [ 0; 1 ] ]

let swap22 = Matrix.swap_matrix 2 2

let of_gate_code code =
  if code < 0 || code > 15 then invalid_arg "Structural.of_gate_code";
  let bit a b = (code lsr ((2 * a) + b)) land 1 in
  binary (bit 1 1) (bit 1 0) (bit 0 1) (bit 0 0)

let to_gate_code m =
  if Matrix.rows m <> 2 || Matrix.cols m <> 4 || not (Matrix.is_logic_matrix m)
  then invalid_arg "Structural.to_gate_code";
  (* Column order (1,1), (1,0), (0,1), (0,0); code bit index 2a+b. *)
  let bit j = Matrix.get m 0 j in
  (bit 0 lsl 3) lor (bit 1 lsl 2) lor (bit 2 lsl 1) lor bit 3

let of_unary_tt (f0, f1) =
  let b v = if v then 1 else 0 in
  Matrix.of_rows [ [ b f1; b f0 ]; [ 1 - b f1; 1 - b f0 ] ]

let apply1 m x = Matrix.stp m x

let apply2 m x y = Matrix.stp (Matrix.stp m x) y
