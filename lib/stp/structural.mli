(** Structural matrices of Boolean operators (Definition 3) and the
    special STP matrices of Section II-A.

    Boolean values are the column vectors [True = [1;0]] and
    [False = [0;1]] (set [S_V], equation (1)). The structural matrix of a
    binary operator has its columns in the order
    [(1,1), (1,0), (0,1), (0,0)] of the operand values — i.e. the truth
    table read from right to left, as in the paper. *)

val vtrue : Matrix.t
(** The vector [[1;0]]. *)

val vfalse : Matrix.t
(** The vector [[0;1]]. *)

val of_bool : bool -> Matrix.t

val to_bool : Matrix.t -> bool
(** Inverse of {!of_bool}.
    @raise Invalid_argument if the vector is neither [vtrue] nor
    [vfalse]. *)

val m_not : Matrix.t
(** [M_n], the 2x2 negation matrix. *)

val m_and : Matrix.t
(** [M_c], conjunction. *)

val m_or : Matrix.t
(** [M_d], disjunction (Example 2). *)

val m_xor : Matrix.t
val m_implies : Matrix.t
(** [M_i] (Example 2). *)

val m_equiv : Matrix.t
(** [M_e]. *)

val m_nand : Matrix.t
val m_nor : Matrix.t

val power_reduce : Matrix.t
(** [M_r], the 4x2 variable power-reducing matrix of equation (3):
    [x ⋉ x = M_r ⋉ x]. *)

val swap22 : Matrix.t
(** [M_w = W_[2,2]], the 4x4 variable swap matrix of equation (4):
    [x ⋉ y = M_w ⋉ y ⋉ x]. *)

val of_gate_code : int -> Matrix.t
(** [of_gate_code code] is the 2x4 structural matrix of the 2-input gate
    whose truth table is [code] in the {!Stp_tt.Tt.apply2} convention
    (bit [2*a + b] is the output on inputs [(a, b)], the first operand
    being [a]). *)

val to_gate_code : Matrix.t -> int
(** Inverse of {!of_gate_code}. *)

val of_unary_tt : bool * bool -> Matrix.t
(** [of_unary_tt (f0, f1)] is the 2x2 structural matrix of the unary
    operator with [f b = if b then f1 else f0]. *)

val apply1 : Matrix.t -> Matrix.t -> Matrix.t
(** [apply1 m x] evaluates a unary structural matrix on a Boolean
    vector. *)

val apply2 : Matrix.t -> Matrix.t -> Matrix.t -> Matrix.t
(** [apply2 m x y] evaluates a binary structural matrix on two Boolean
    vectors via the STP: [m ⋉ x ⋉ y]. *)
