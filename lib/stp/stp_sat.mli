(** AllSAT on STP canonical forms (Section II-A, Fig. 1).

    A formula is satisfiable iff its canonical form [M_Φ] contains the
    column [[1;0]]. Assigning a value to [x1] keeps either the left half
    (true) or the right half (false) of the matrix; the solver descends
    recursively, pruning halves that contain no [[1;0]] column, and
    reports every satisfying assignment. *)

type assignment = bool array
(** [a.(i)] is the value of [Expr.Var i]. *)

val is_sat : Matrix.t -> bool

val count : Matrix.t -> int
(** Number of satisfying assignments. *)

val all_solutions : Matrix.t -> assignment list
(** All satisfying assignments, in the solver's descent order (all-true
    branch first). *)

val solutions_as_minterms : Matrix.t -> int list
(** The satisfying assignments as truth-table minterm indices. *)

(** {1 Search-tree tracing}

    [trace] records the recursive descent of Fig. 1, for display. *)

type tree =
  | Sat                                  (** a [[1;0]] column survives *)
  | Unsat                                (** pruned: no such column *)
  | Branch of { var : int; if_true : tree; if_false : tree }

val trace : Matrix.t -> tree

val pp_tree : Format.formatter -> tree -> unit
