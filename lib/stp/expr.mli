(** Propositional formulas over indexed variables.

    Variables are 0-indexed ([Var 0] is the paper's [x1]); see
    {!Canonical} for the correspondence between STP canonical forms and
    truth tables. *)

type t =
  | Const of bool
  | Var of int
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t
  | Implies of t * t
  | Equiv of t * t
  | Nand of t * t
  | Nor of t * t

val eval : t -> (int -> bool) -> bool
(** [eval e env] evaluates [e] under the assignment [env]. *)

val vars : t -> int list
(** Variables occurring in the formula, ascending, without duplicates. *)

val max_var : t -> int
(** Largest variable index, or [-1] for a closed formula. *)

val to_tt : n:int -> t -> Stp_tt.Tt.t
(** [to_tt ~n e] tabulates [e] over [n] variables ([n > max_var e]). *)

val size : t -> int
(** Number of AST nodes. *)

val pp : Format.formatter -> t -> unit
(** Pretty-prints with minimal parentheses, variables as [x1], [x2], ... *)

(** {1 Convenience constructors} *)

val ( && ) : t -> t -> t
val ( || ) : t -> t -> t
val ( ^^ ) : t -> t -> t
val ( ==> ) : t -> t -> t
val ( <=> ) : t -> t -> t
val not_ : t -> t
val var : int -> t
