(** A small parser for propositional formulas.

    Grammar (precedence low to high, infix operators right-associative):

    {v
      formula  ::=  iff
      iff      ::=  imp ( "<->" imp )*
      imp      ::=  or  ( "->"  or  )*
      or       ::=  xor ( "|" xor )*
      xor      ::=  and ( "^" and )*
      and      ::=  not ( "&" not )*
      not      ::=  "!" not | atom
      atom     ::=  var | "0" | "1" | "(" formula ")"
      var      ::=  "x" digits      (1-indexed: x1 is Expr.Var 0)
                 |  letter          (a = x1, b = x2, ...)
    v}

    Whitespace is free. Single letters [a..w] and [y..z] name variables
    positionally; [x] must be followed by an index. *)

val formula : string -> Expr.t
(** @raise Invalid_argument on syntax errors, with a position. *)
