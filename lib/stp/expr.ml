type t =
  | Const of bool
  | Var of int
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t
  | Implies of t * t
  | Equiv of t * t
  | Nand of t * t
  | Nor of t * t

let rec eval e env =
  match e with
  | Const b -> b
  | Var i -> env i
  | Not a -> not (eval a env)
  | And (a, b) -> eval a env && eval b env
  | Or (a, b) -> eval a env || eval b env
  | Xor (a, b) -> eval a env <> eval b env
  | Implies (a, b) -> (not (eval a env)) || eval b env
  | Equiv (a, b) -> eval a env = eval b env
  | Nand (a, b) -> not (eval a env && eval b env)
  | Nor (a, b) -> not (eval a env || eval b env)

let rec collect_vars e acc =
  match e with
  | Const _ -> acc
  | Var i -> i :: acc
  | Not a -> collect_vars a acc
  | And (a, b) | Or (a, b) | Xor (a, b) | Implies (a, b) | Equiv (a, b)
  | Nand (a, b) | Nor (a, b) ->
    collect_vars a (collect_vars b acc)

let vars e = List.sort_uniq Stdlib.compare (collect_vars e [])

let max_var e = List.fold_left max (-1) (vars e)

let to_tt ~n e =
  if n <= max_var e then invalid_arg "Expr.to_tt";
  Stp_tt.Tt.of_fun n (fun m -> eval e (fun i -> (m lsr i) land 1 = 1))

let rec size = function
  | Const _ | Var _ -> 1
  | Not a -> 1 + size a
  | And (a, b) | Or (a, b) | Xor (a, b) | Implies (a, b) | Equiv (a, b)
  | Nand (a, b) | Nor (a, b) ->
    1 + size a + size b

let rec pp fmt e =
  match e with
  | Const b -> Format.fprintf fmt "%c" (if b then '1' else '0')
  | Var i -> Format.fprintf fmt "x%d" (i + 1)
  | Not a -> Format.fprintf fmt "!%a" pp_atom a
  | And (a, b) -> Format.fprintf fmt "%a & %a" pp_atom a pp_atom b
  | Or (a, b) -> Format.fprintf fmt "%a | %a" pp_atom a pp_atom b
  | Xor (a, b) -> Format.fprintf fmt "%a ^ %a" pp_atom a pp_atom b
  | Implies (a, b) -> Format.fprintf fmt "%a -> %a" pp_atom a pp_atom b
  | Equiv (a, b) -> Format.fprintf fmt "%a <-> %a" pp_atom a pp_atom b
  | Nand (a, b) -> Format.fprintf fmt "!(%a & %a)" pp_atom a pp_atom b
  | Nor (a, b) -> Format.fprintf fmt "!(%a | %a)" pp_atom a pp_atom b

and pp_atom fmt e =
  match e with
  | Const _ | Var _ | Not _ -> pp fmt e
  | _ -> Format.fprintf fmt "(%a)" pp e

let ( && ) a b = And (a, b)
let ( || ) a b = Or (a, b)
let ( ^^ ) a b = Xor (a, b)
let ( ==> ) a b = Implies (a, b)
let ( <=> ) a b = Equiv (a, b)
let not_ a = Not a
let var i = Var i
