(** Per-collection experiment runner: the machinery behind Table I.

    Runs one synthesis engine over one function collection with a
    per-instance timeout and aggregates the paper's metrics: mean solving
    time over solved instances, number of timeouts, number solved, and —
    for the all-solutions engine — total time, per-solution mean and
    average number of solutions.

    The runner can fan the (independent) instances of a collection out
    across domains ([?jobs]) and reuse optimum chains within an NPN
    class ([?cache]); both knobs change wall-clock only — aggregation
    is a sequential pass over the results in input order, identical to
    the sequential path. *)

type engine = (module Stp_synth.Engine.S)
(** Engines are consumed through the unified {!Stp_synth.Engine.S}
    signature; the runner constructs each instance's deadline and
    threads a per-domain {!Stp_synth.Factor.memo} through the spec. *)

val stp_engine : engine
val bms_engine : engine
val fen_engine : engine
val abc_engine : engine

val all_engines : engine list
(** BMS, FEN, ABC, STP — the paper's column order. *)

val engine_name : engine -> string

type aggregate = {
  name : string;            (** engine name *)
  solved : int;             (** #ok *)
  timeouts : int;           (** #t/o *)
  mean_time : float;        (** mean seconds over solved instances *)
  total_time : float;       (** summed per-instance wall-clock *)
  wall_time : float;        (** wall-clock of the whole sweep; below
                                [total_time] when [jobs > 1] *)
  mean_solutions : float;   (** average number of chains per solved *)
  mean_per_solution : float;(** mean time divided by mean solutions *)
  optima : (int * int) list;(** histogram: gate count -> #instances *)
  cache_hits : int;         (** NPN-cache hits during this run (0 when
                                run without a cache) *)
  cache_misses : int;       (** NPN-cache misses during this run *)
  profile : Stp_util.Profile.snapshot option;
    (** per-stage timers and counters for this run, when
        {!Stp_util.Profile.enabled} (e.g. under [table1 --profile]);
        [None] otherwise. Timers sum self time across all domains of a
        parallel run. *)
  latency : Stp_telemetry.Hist.snapshot;
    (** per-instance latency histogram over {e every} instance of the
        run (solved and timed out), with exact p50/p90/p99 — always
        collected (one lock-free observation per instance). *)
}

val speedup : aggregate -> float
(** [total_time / wall_time] — the parallel speedup actually realised
    (1.0 when [wall_time] is 0). *)

val hit_rate : aggregate -> float
(** [cache_hits / (cache_hits + cache_misses)]; 0 when the run had no
    cache or no lookups. *)

val run_collection :
  ?timeout:float ->
  ?jobs:int ->
  ?cache:Stp_synth.Npn_cache.t ->
  ?on_instance:(int -> Stp_tt.Tt.t -> Stp_synth.Spec.result -> unit) ->
  engine ->
  Stp_tt.Tt.t list ->
  aggregate
(** [run_collection engine fns] runs every function under the timeout
    (default 5 s) and aggregates. [on_instance] observes each result
    (index, function, result) in input order — used for cross-checking
    optima between engines and for verbose traces.

    [jobs] (default 1, clamped to at least 1) fans instances out across
    that many domains via {!Stp_parallel.Pool}; each domain owns a
    private {!Stp_synth.Factor.memo} reused across its instances.
    Results are aggregated in input order regardless of completion
    order, so a parallel run's aggregate matches the sequential one
    (timing fields aside).

    [cache] enables the NPN-class cache for this run; pass the same
    cache to successive runs of the {e same} engine to carry classes
    across collections. The cache is domain-safe and shared by all
    [jobs] domains. [cache_hits]/[cache_misses] in the aggregate are
    this run's deltas. *)
