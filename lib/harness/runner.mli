(** Per-collection experiment runner: the machinery behind Table I.

    Runs one synthesis engine over one function collection with a
    per-instance timeout and aggregates the paper's metrics: mean solving
    time over solved instances, number of timeouts, number solved, and —
    for the all-solutions engine — total time, per-solution mean and
    average number of solutions. *)

type engine = {
  engine_name : string;
  run : options:Stp_synth.Spec.options -> Stp_tt.Tt.t -> Stp_synth.Spec.result;
}

val stp_engine : engine
val bms_engine : engine
val fen_engine : engine
val abc_engine : engine

val all_engines : engine list
(** BMS, FEN, ABC, STP — the paper's column order. *)

type aggregate = {
  name : string;            (** engine name *)
  solved : int;             (** #ok *)
  timeouts : int;           (** #t/o *)
  mean_time : float;        (** mean seconds over solved instances *)
  total_time : float;       (** summed wall-clock over all instances *)
  mean_solutions : float;   (** average number of chains per solved *)
  mean_per_solution : float;(** mean time divided by mean solutions *)
  optima : (int * int) list;(** histogram: gate count -> #instances *)
}

val run_collection :
  ?timeout:float ->
  ?on_instance:(int -> Stp_tt.Tt.t -> Stp_synth.Spec.result -> unit) ->
  engine ->
  Stp_tt.Tt.t list ->
  aggregate
(** [run_collection engine fns] runs every function under the timeout
    (default 5 s) and aggregates. [on_instance] observes each result
    (index, function, result) — used for cross-checking optima between
    engines and for verbose traces. *)
