(** Machine-readable run reports (BENCH_table1.json).

    A minimal hand-rolled JSON emitter — the container deliberately has
    no JSON dependency — plus the writer used by [bin/table1] and
    [bench/main] to persist each run's aggregates, so the performance
    trajectory (wall-clock, speedup, cache hit-rate) is tracked across
    PRs by diffing one file. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val to_string : json -> string
(** Compact (single-line) rendering. NaN/infinite floats become
    [null]. *)

val of_string : string -> (json, string) Stdlib.result
(** Parse one JSON document (the dual of {!to_string}); trailing
    non-whitespace is an error. Numbers with a fraction or exponent
    read back as [Float], all others as [Int]. Used by the synthesis
    daemon's JSON-lines request protocol. *)

val member : string -> json -> json option
(** [member k (Obj fields)] is the value bound to [k]; [None] on
    missing keys and non-objects. *)

val to_float_opt : json -> float option
(** Numeric coercion: [Float f] and [Int i] both read as floats. *)

val aggregate_json : Runner.aggregate -> json
(** One engine's aggregate as an object: solved/timeout counts, mean,
    total and wall time, realised speedup, the optimum-size histogram,
    and the NPN-cache hit/miss counts and rate. *)

val write :
  path:string ->
  meta:(string * json) list ->
  rows:(string * int * Runner.aggregate list) list ->
  unit
(** [write ~path ~meta ~rows] writes [{...meta, "rows": [...]}] to
    [path], one object per collection carrying its name, instance count
    and per-engine aggregates. The file is overwritten atomically
    enough for a single-writer harness (plain truncate + write). *)
