(** Machine-readable run reports (BENCH_table1.json).

    The JSON value itself lives in {!Stp_telemetry.Json} (telemetry
    sits below every instrumented layer) and is re-exported here with
    its constructors, so harness callers keep one import; this module
    adds the writer used by [bin/table1] and [bench/main] to persist
    each run's aggregates, so the performance trajectory (wall-clock,
    speedup, cache hit-rate, latency quantiles) is tracked across PRs
    by diffing one file. *)

module Json = Stp_telemetry.Json

type json = Json.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val to_string : json -> string
(** Compact (single-line) rendering. NaN/infinite floats become
    [null]. *)

val of_string : string -> (json, string) Stdlib.result
(** Parse one JSON document (the dual of {!to_string}); trailing
    non-whitespace is an error. Numbers with a fraction or exponent
    read back as [Float], all others as [Int]. Used by the synthesis
    daemon's JSON-lines request protocol. *)

val member : string -> json -> json option
(** [member k (Obj fields)] is the value bound to [k]; [None] on
    missing keys and non-objects. *)

val to_float_opt : json -> float option
(** Numeric coercion: [Float f] and [Int i] both read as floats. *)

val aggregate_json : Runner.aggregate -> json
(** One engine's aggregate as an object: solved/timeout counts, mean,
    total and wall time, realised speedup, the optimum-size histogram,
    the NPN-cache hit/miss counts and rate, and a [latency] block —
    the per-instance latency histogram with p50/p90/p99
    ({!Stp_telemetry.Hist.snapshot_json}). *)

val write :
  path:string ->
  meta:(string * json) list ->
  rows:(string * int * Runner.aggregate list) list ->
  unit
(** [write ~path ~meta ~rows] writes [{...meta, "rows": [...]}] to
    [path], one object per collection carrying its name, instance count
    and per-engine aggregates. The file is overwritten atomically
    enough for a single-writer harness (plain truncate + write). *)
