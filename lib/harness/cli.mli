(** Shared [Cmdliner] flags of the experiment CLIs.

    [bin/table1], [bin/rewrite], [bench/main] and [bin/synthd] accept
    the same knobs — [--jobs], [--timeout], [--json], [--profile],
    [--no-npn-cache], [--store] — with identical names, defaults and
    documentation. Each term is defined once here; a CLI composes the
    subset it needs into its own [Term.t]. *)

val jobs : int Cmdliner.Term.t
(** [-j]/[--jobs N]; 0 (the default) means auto — resolve with
    {!resolve_jobs}. *)

val resolve_jobs : int -> int
(** Map the raw [--jobs] value to an effective domain count:
    non-positive values become {!Stp_parallel.Pool.default_jobs}. *)

val timeout : ?default:float -> ?doc:string -> unit -> float Cmdliner.Term.t
(** [-t]/[--timeout SECONDS]; default 5.0 unless overridden. *)

val json : ?default:string -> unit -> string Cmdliner.Term.t
(** [--json PATH]; empty string (the default unless overridden)
    disables. *)

val profile : bool Cmdliner.Term.t
(** [--profile]: enable the stage profiler for the run. *)

val no_npn_cache : bool Cmdliner.Term.t
(** [--no-npn-cache]: solve every instance directly. *)

val socket : string Cmdliner.Term.t
(** [--socket PATH]: Unix domain socket to serve or connect to; empty
    string (the default) disables. Shared by [synthd] and [soak]. *)

val tcp : string Cmdliner.Term.t
(** [--tcp ADDR]: TCP address ([HOST:PORT], [:PORT] or [PORT]) to serve
    or connect to; empty string (the default) disables. *)

val store : string Cmdliner.Term.t
(** [--store PATH]: persistent NPN cache store to load before and flush
    after the run; empty string disables. *)

val trace : string Cmdliner.Term.t
(** [--trace PATH]: enable {!Stp_telemetry.Trace} span recording for
    the run and export Chrome trace-event JSON to [PATH] on exit;
    empty string (the default) disables. *)

val metrics : bool Cmdliner.Term.t
(** [--metrics]: enable {!Stp_telemetry.Telemetry.metrics_enabled}
    (latency histograms at instrumented call sites) and print the
    unified snapshot JSON on stderr when the run ends. *)

val with_telemetry : trace:string -> metrics:bool -> (unit -> 'a) -> 'a
(** [with_telemetry ~trace ~metrics f] applies the two flags around
    [f]: enables span recording and/or metrics before, and on exit
    (also on exception) writes the trace file and prints the metrics
    snapshot as each flag requests. The shared epilogue of [table1],
    [synthd], [bench] and [fence_stats]. *)
