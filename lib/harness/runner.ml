module Spec = Stp_synth.Spec
module Engine = Stp_synth.Engine
module Npn_cache = Stp_synth.Npn_cache

type engine = (module Engine.S)

let stp_engine = Engine.stp
let bms_engine = Engine.bms
let fen_engine = Engine.fen
let abc_engine = Engine.lutexact

let all_engines = Engine.all

let engine_name = Engine.name

type aggregate = {
  name : string;
  solved : int;
  timeouts : int;
  mean_time : float;
  total_time : float;
  wall_time : float;
  mean_solutions : float;
  mean_per_solution : float;
  optima : (int * int) list;
  cache_hits : int;
  cache_misses : int;
  profile : Stp_util.Profile.snapshot option;
  latency : Stp_telemetry.Hist.snapshot;
}

let speedup agg =
  if agg.wall_time > 0.0 then agg.total_time /. agg.wall_time else 1.0

let hit_rate agg =
  let looked_up = agg.cache_hits + agg.cache_misses in
  if looked_up = 0 then 0.0
  else float_of_int agg.cache_hits /. float_of_int looked_up

let run_collection ?(timeout = 5.0) ?(jobs = 1) ?cache ?on_instance engine
    functions =
  let jobs = max 1 jobs in
  (* Force the lazily built global tables (the NPN4 canonicalisation
     table in particular) before any fan-out: racing domains on an
     unforced [lazy] is an error in OCaml 5, and the first instance's
     timing should not pay for table construction either. *)
  ignore (Stp_tt.Npn.canon4 0);
  let options = Spec.with_timeout timeout in
  (* [observed] is outermost, so its spans and latency histograms cover
     cache replays as well as solver calls — the per-instance cost a
     caller actually experiences. *)
  let (module E : Engine.S) =
    Engine.observed
      (match cache with None -> engine | Some c -> Npn_cache.wrap c engine)
  in
  let cache_before = Option.map Npn_cache.stats cache in
  (* One Factor.memo per domain, reused across the instances that domain
     executes. The memo's hash tables are not thread-safe, so domains
     must never share one — domain-local storage gives each domain its
     own, created on first use; a fresh key per run keeps runs
     independent. Sharing across instances is sound because memo entries
     are pure functions of their keys (see Factor.memo). *)
  let memo_key = Domain.DLS.new_key (fun () -> Stp_synth.Factor.create_memo ()) in
  let solve f =
    let t0 = Stp_util.Unix_time.now () in
    let deadline = Spec.deadline_of options in
    let r =
      E.synthesize
        (Engine.spec ~options ~memo:(Domain.DLS.get memo_key) f)
        ~deadline
    in
    Engine.to_spec_result ~elapsed:(Stp_util.Unix_time.now () -. t0) r
  in
  (* The profiler's accumulators are global: reset per run so each
     aggregate carries exactly its own run's counters. *)
  if Stp_util.Profile.enabled () then Stp_util.Profile.reset ();
  let t0 = Stp_util.Unix_time.now () in
  let results =
    if jobs = 1 then List.map solve functions
    else Stp_parallel.Pool.map ~domains:jobs solve functions
  in
  let wall_time = Stp_util.Unix_time.now () -. t0 in
  (* Aggregation is one sequential pass over (instance, result) in input
     order — byte-identical between the sequential and parallel paths,
     and [on_instance] observes instances in input order either way. *)
  let solved = ref 0 and timeouts = ref 0 in
  let solved_time = ref 0.0 and total_time = ref 0.0 in
  let solutions = ref 0 in
  let optima = Hashtbl.create 16 in
  let latency = Stp_telemetry.Hist.make E.name in
  List.iteri
    (fun i (f, result) ->
      (match on_instance with Some obs -> obs i f result | None -> ());
      Stp_telemetry.Hist.observe_s latency result.Spec.elapsed;
      total_time := !total_time +. result.Spec.elapsed;
      match result.Spec.status with
      | Spec.Solved ->
        incr solved;
        solved_time := !solved_time +. result.Spec.elapsed;
        solutions := !solutions + List.length result.Spec.chains;
        let g = Option.value ~default:(-1) result.Spec.gates in
        Hashtbl.replace optima g (1 + Option.value ~default:0 (Hashtbl.find_opt optima g))
      | Spec.Timeout -> incr timeouts)
    (List.combine functions results);
  let mean_time = if !solved = 0 then 0.0 else !solved_time /. float_of_int !solved in
  let mean_solutions =
    if !solved = 0 then 0.0 else float_of_int !solutions /. float_of_int !solved
  in
  let mean_per_solution =
    if mean_solutions = 0.0 then 0.0 else mean_time /. mean_solutions
  in
  let cache_hits, cache_misses =
    match (cache, cache_before) with
    | Some c, Some before ->
      let after = Npn_cache.stats c in
      ( after.Npn_cache.hits - before.Npn_cache.hits,
        after.Npn_cache.misses - before.Npn_cache.misses )
    | _ -> (0, 0)
  in
  { name = E.name;
    solved = !solved;
    timeouts = !timeouts;
    mean_time;
    total_time = !total_time;
    wall_time;
    mean_solutions;
    mean_per_solution;
    optima =
      List.sort Stdlib.compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) optima []);
    cache_hits;
    cache_misses;
    profile =
      (if Stp_util.Profile.enabled () then Some (Stp_util.Profile.snapshot ())
       else None);
    latency = Stp_telemetry.Hist.snapshot latency }
