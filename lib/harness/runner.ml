module Spec = Stp_synth.Spec

type engine = {
  engine_name : string;
  run : options:Spec.options -> Stp_tt.Tt.t -> Spec.result;
}

let stp_engine =
  { engine_name = "STP";
    run = (fun ~options f -> Stp_synth.Stp_exact.synthesize ~options f) }

let bms_engine =
  { engine_name = "BMS";
    run = (fun ~options f -> Stp_synth.Baselines.bms ~options f) }

let fen_engine =
  { engine_name = "FEN";
    run = (fun ~options f -> Stp_synth.Baselines.fen ~options f) }

let abc_engine =
  { engine_name = "ABC";
    run = (fun ~options f -> Stp_synth.Baselines.abc ~options f) }

let all_engines = [ bms_engine; fen_engine; abc_engine; stp_engine ]

type aggregate = {
  name : string;
  solved : int;
  timeouts : int;
  mean_time : float;
  total_time : float;
  mean_solutions : float;
  mean_per_solution : float;
  optima : (int * int) list;
}

let run_collection ?(timeout = 5.0) ?on_instance engine functions =
  (* The NPN canonicalisation table is built lazily on first use; force
     it here so the first instance's timing does not pay for it. *)
  ignore (Stp_tt.Npn.canon4 0);
  let options = Spec.with_timeout timeout in
  let solved = ref 0 and timeouts = ref 0 in
  let solved_time = ref 0.0 and total_time = ref 0.0 in
  let solutions = ref 0 in
  let optima = Hashtbl.create 16 in
  List.iteri
    (fun i f ->
      let result = engine.run ~options f in
      (match on_instance with Some obs -> obs i f result | None -> ());
      total_time := !total_time +. result.Spec.elapsed;
      match result.Spec.status with
      | Spec.Solved ->
        incr solved;
        solved_time := !solved_time +. result.Spec.elapsed;
        solutions := !solutions + List.length result.Spec.chains;
        let g = Option.value ~default:(-1) result.Spec.gates in
        Hashtbl.replace optima g (1 + Option.value ~default:0 (Hashtbl.find_opt optima g))
      | Spec.Timeout -> incr timeouts)
    functions;
  let mean_time = if !solved = 0 then 0.0 else !solved_time /. float_of_int !solved in
  let mean_solutions =
    if !solved = 0 then 0.0 else float_of_int !solutions /. float_of_int !solved
  in
  let mean_per_solution =
    if mean_solutions = 0.0 then 0.0 else mean_time /. mean_solutions
  in
  { name = engine.engine_name;
    solved = !solved;
    timeouts = !timeouts;
    mean_time;
    total_time = !total_time;
    mean_solutions;
    mean_per_solution;
    optima =
      List.sort Stdlib.compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) optima []) }
