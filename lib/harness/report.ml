(* The JSON value type and its printer/parser live in
   Stp_telemetry.Json (telemetry sits below every instrumented layer);
   Report re-exports them so harness callers keep one import. *)

module Json = Stp_telemetry.Json

type json = Json.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let to_string = Json.to_string
let of_string = Json.of_string
let member = Json.member
let to_float_opt = Json.to_float_opt

let profile_json = Stp_telemetry.Telemetry.profile_json

let aggregate_json (a : Runner.aggregate) =
  Obj
    ([ ("engine", String a.Runner.name);
      ("solved", Int a.Runner.solved);
      ("timeouts", Int a.Runner.timeouts);
      ("mean_time_s", Float a.Runner.mean_time);
      ("total_time_s", Float a.Runner.total_time);
      ("wall_time_s", Float a.Runner.wall_time);
      ("speedup", Float (Runner.speedup a));
      ("mean_solutions", Float a.Runner.mean_solutions);
      ("mean_per_solution_s", Float a.Runner.mean_per_solution);
      ("optima",
       List
         (List.map
            (fun (gates, count) -> List [ Int gates; Int count ])
            a.Runner.optima));
       ("cache_hits", Int a.Runner.cache_hits);
       ("cache_misses", Int a.Runner.cache_misses);
       ("cache_hit_rate", Float (Runner.hit_rate a));
       ("latency", Stp_telemetry.Hist.snapshot_json a.Runner.latency) ]
     @
     match a.Runner.profile with
     | None -> []
     | Some p -> [ ("profile", profile_json p) ])

let rows_json rows =
  List
    (List.map
       (fun (collection, instances, aggs) ->
         Obj
           [ ("collection", String collection);
             ("instances", Int instances);
             ("engines", List (List.map aggregate_json aggs)) ])
       rows)

let write ~path ~meta ~rows =
  let doc = Obj (meta @ [ ("rows", rows_json rows) ]) in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string doc);
      output_char oc '\n')
