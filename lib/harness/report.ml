type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  (* JSON has no inf/nan literals; the metrics never legitimately
     produce them, so map the degenerate cases to null. *)
  if Float.is_nan f || Float.abs f = infinity then None
  else
    let s = Printf.sprintf "%.12g" f in
    (* Ensure the token reads back as a float, not an integer. *)
    Some
      (if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
       else s ^ ".0")

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> (
    match float_repr f with
    | None -> Buffer.add_string buf "null"
    | Some s -> Buffer.add_string buf s)
  | String s -> escape_string buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  to_buffer buf j;
  Buffer.contents buf

let profile_json (p : Stp_util.Profile.snapshot) =
  Obj
    [ ("stages",
       Obj
         (List.map
            (fun (st : Stp_util.Profile.stage_snapshot) ->
              ( st.Stp_util.Profile.stage,
                Obj
                  [ ("calls", Int st.Stp_util.Profile.calls);
                    ("self_s", Float st.Stp_util.Profile.self_s) ] ))
            p.Stp_util.Profile.stages));
      ("counters",
       Obj (List.map (fun (k, v) -> (k, Int v)) p.Stp_util.Profile.counts)) ]

let aggregate_json (a : Runner.aggregate) =
  Obj
    ([ ("engine", String a.Runner.name);
      ("solved", Int a.Runner.solved);
      ("timeouts", Int a.Runner.timeouts);
      ("mean_time_s", Float a.Runner.mean_time);
      ("total_time_s", Float a.Runner.total_time);
      ("wall_time_s", Float a.Runner.wall_time);
      ("speedup", Float (Runner.speedup a));
      ("mean_solutions", Float a.Runner.mean_solutions);
      ("mean_per_solution_s", Float a.Runner.mean_per_solution);
      ("optima",
       List
         (List.map
            (fun (gates, count) -> List [ Int gates; Int count ])
            a.Runner.optima));
       ("cache_hits", Int a.Runner.cache_hits);
       ("cache_misses", Int a.Runner.cache_misses);
       ("cache_hit_rate", Float (Runner.hit_rate a)) ]
     @
     match a.Runner.profile with
     | None -> []
     | Some p -> [ ("profile", profile_json p) ])

let rows_json rows =
  List
    (List.map
       (fun (collection, instances, aggs) ->
         Obj
           [ ("collection", String collection);
             ("instances", Int instances);
             ("engines", List (List.map aggregate_json aggs)) ])
       rows)

let write ~path ~meta ~rows =
  let doc = Obj (meta @ [ ("rows", rows_json rows) ]) in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string doc);
      output_char oc '\n')
