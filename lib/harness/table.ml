let render fmt ~rows =
  Format.fprintf fmt
    "%-8s | %-8s %5s %5s | %-8s %5s %5s | %-8s %5s %5s | %-8s %5s %5s %9s %7s \
     %8s %8s@."
    "Func" "BMS(s)" "#t/o" "#ok" "FEN(s)" "#t/o" "#ok" "ABC(s)" "#t/o" "#ok"
    "STP(s)" "#t/o" "#ok" "Total(s)" "#sols" "p50(s)" "p99(s)";
  Format.fprintf fmt "%s@." (String.make 148 '-');
  List.iter
    (fun (name, aggs) ->
      let find n =
        List.find_opt (fun (a : Runner.aggregate) -> a.name = n) aggs
      in
      let cell fmt_ agg =
        match agg with
        | Some (a : Runner.aggregate) ->
          Format.fprintf fmt_ "%-8.3f %5d %5d" a.mean_time a.timeouts a.solved
        | None -> Format.fprintf fmt_ "%-8s %5s %5s" "-" "-" "-"
      in
      Format.fprintf fmt "%-8s | " name;
      cell fmt (find "BMS");
      Format.fprintf fmt " | ";
      cell fmt (find "FEN");
      Format.fprintf fmt " | ";
      cell fmt (find "ABC");
      Format.fprintf fmt " | ";
      (match find "STP" with
       | Some a ->
         Format.fprintf fmt "%-8.3f %5d %5d %9.3f %7.1f %8.3f %8.3f"
           a.mean_time a.timeouts a.solved a.total_time a.mean_solutions
           a.latency.Stp_telemetry.Hist.p50_s a.latency.Stp_telemetry.Hist.p99_s
       | None ->
         Format.fprintf fmt "%-8s %5s %5s %9s %7s %8s %8s" "-" "-" "-" "-" "-"
           "-" "-");
      Format.fprintf fmt "@.")
    rows

let render_csv fmt ~rows =
  Format.fprintf fmt
    "collection,engine,mean_s,timeouts,solved,total_s,wall_s,mean_solutions,\
     cache_hits,cache_misses,p50_s,p90_s,p99_s@.";
  List.iter
    (fun (name, aggs) ->
      List.iter
        (fun (a : Runner.aggregate) ->
          Format.fprintf fmt "%s,%s,%.4f,%d,%d,%.3f,%.3f,%.2f,%d,%d,%.4f,%.4f,%.4f@."
            name a.name a.mean_time a.timeouts a.solved a.total_time a.wall_time
            a.mean_solutions a.cache_hits a.cache_misses
            a.latency.Stp_telemetry.Hist.p50_s a.latency.Stp_telemetry.Hist.p90_s
            a.latency.Stp_telemetry.Hist.p99_s)
        aggs)
    rows
