(** Text rendering of Table I-style result tables. *)

val render :
  Format.formatter ->
  rows:(string * Runner.aggregate list) list ->
  unit
(** [render fmt ~rows] prints one aligned row per collection; each row
    carries the aggregates of the four engines in the given order, with
    the STP engine's extra columns (total time, average solution count,
    and the p50/p99 of its per-instance latency histogram) appended,
    mirroring the paper's layout. *)

val render_csv :
  Format.formatter ->
  rows:(string * Runner.aggregate list) list ->
  unit
(** Machine-readable variant. *)
