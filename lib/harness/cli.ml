open Cmdliner

let jobs =
  let doc =
    "Number of domains to fan work over (0 = auto: the recommended domain \
     count capped at 8; 1 = sequential). Aggregates are identical across \
     job counts; only wall-clock changes."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let resolve_jobs j = if j <= 0 then Stp_parallel.Pool.default_jobs () else j

let timeout ?(default = 5.0) ?(doc = "Per-instance timeout in seconds.") () =
  Arg.(value & opt float default & info [ "t"; "timeout" ] ~docv:"SECONDS" ~doc)

let json ?(default = "") () =
  let doc =
    "Write machine-readable results to this file (empty string disables)."
  in
  Arg.(value & opt string default & info [ "json" ] ~docv:"PATH" ~doc)

let profile =
  let doc =
    "Collect per-stage timers and hot-path counters (decompose, \
     feasibility, verification, cube merges, memo hit rates, request \
     counters) for the run; printed to stderr and embedded under \
     $(b,profile) in JSON output."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let no_npn_cache =
  let doc =
    "Disable the NPN-class synthesis cache (enabled by default: optimum \
     chains found for one member of an NPN class are replayed, \
     transform-adjusted and re-simulated, for every other member)."
  in
  Arg.(value & flag & info [ "no-npn-cache" ] ~doc)

let store =
  let doc =
    "Load the persistent NPN cache store from this file before the run and \
     flush solved classes back to it afterwards (crash-safe atomic \
     rename; empty string disables). A warm store answers every \
     previously-solved class without a solver call."
  in
  Arg.(value & opt string "" & info [ "store" ] ~docv:"PATH" ~doc)
