open Cmdliner

let jobs =
  let doc =
    "Number of domains to fan work over (0 = auto: the recommended domain \
     count capped at 8; 1 = sequential). Aggregates are identical across \
     job counts; only wall-clock changes."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let resolve_jobs j = if j <= 0 then Stp_parallel.Pool.default_jobs () else j

let timeout ?(default = 5.0) ?(doc = "Per-instance timeout in seconds.") () =
  Arg.(value & opt float default & info [ "t"; "timeout" ] ~docv:"SECONDS" ~doc)

let json ?(default = "") () =
  let doc =
    "Write machine-readable results to this file (empty string disables)."
  in
  Arg.(value & opt string default & info [ "json" ] ~docv:"PATH" ~doc)

let profile =
  let doc =
    "Collect per-stage timers and hot-path counters (decompose, \
     feasibility, verification, cube merges, memo hit rates, request \
     counters) for the run; printed to stderr and embedded under \
     $(b,profile) in JSON output."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let no_npn_cache =
  let doc =
    "Disable the NPN-class synthesis cache (enabled by default: optimum \
     chains found for one member of an NPN class are replayed, \
     transform-adjusted and re-simulated, for every other member)."
  in
  Arg.(value & flag & info [ "no-npn-cache" ] ~doc)

let trace =
  let doc =
    "Record a span for every pool task, engine call, store flush and \
     daemon request, and write them as Chrome trace-event JSON to this \
     file on exit (empty string disables). Load the file in \
     chrome://tracing or https://ui.perfetto.dev: one track per domain."
  in
  Arg.(value & opt string "" & info [ "trace" ] ~docv:"PATH" ~doc)

let metrics =
  let doc =
    "Record latency histograms (per engine, per outcome) and print the \
     unified telemetry snapshot — profile counters, histograms with \
     p50/p90/p99, pool utilisation, store persistence stats — as JSON \
     on stderr when the run ends."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let with_telemetry ~trace:trace_path ~metrics:metrics_on f =
  if trace_path <> "" then Stp_telemetry.Trace.set_enabled true;
  if metrics_on then Stp_telemetry.Telemetry.set_metrics_enabled true;
  (* Process-wide CDCL counters under ["sat"] in every snapshot; cheap
     (a handful of atomic reads), so registered unconditionally. *)
  Stp_telemetry.Telemetry.register_probe "sat" (fun () ->
      Stp_telemetry.Json.Obj
        (List.map
           (fun (k, v) -> (k, Stp_telemetry.Json.Int v))
           (Stp_sat.Solver.Totals.snapshot ())));
  let finish () =
    if trace_path <> "" then begin
      let n = Stp_telemetry.Trace.write ~path:trace_path in
      Printf.eprintf "[telemetry] wrote %d span%s to %s%s\n%!" n
        (if n = 1 then "" else "s")
        trace_path
        (match Stp_telemetry.Trace.dropped () with
         | 0 -> ""
         | d -> Printf.sprintf " (%d dropped)" d)
    end;
    if metrics_on then
      Printf.eprintf "[telemetry] %s\n%!"
        (Stp_telemetry.Json.to_string (Stp_telemetry.Telemetry.snapshot_json ()))
  in
  Fun.protect ~finally:finish f

let socket =
  let doc =
    "Serve (or connect to) a Unix domain socket at this path (created \
     on start, unlinked on shutdown; empty string disables)."
  in
  Arg.(value & opt string "" & info [ "socket" ] ~docv:"PATH" ~doc)

let tcp =
  let doc =
    "Serve (or connect to) a TCP address: $(i,HOST:PORT), $(i,:PORT) or \
     $(i,PORT) (host defaults to 127.0.0.1; empty string disables)."
  in
  Arg.(value & opt string "" & info [ "tcp" ] ~docv:"ADDR" ~doc)

let store =
  let doc =
    "Load the persistent NPN cache store from this file before the run and \
     flush solved classes back to it afterwards (crash-safe atomic \
     rename; empty string disables). A warm store answers every \
     previously-solved class without a solver call."
  in
  Arg.(value & opt string "" & info [ "store" ] ~docv:"PATH" ~doc)
