(** A hand-rolled domain pool for OCaml 5 — [Domain] workers draining a
    [Mutex]/[Condition]-guarded work queue, with no dependency beyond
    the stdlib.

    The pool exists so the experiment harness can fan a collection of
    independent synthesis instances out across cores. Results are
    always returned in input order, and exceptions are re-raised
    deterministically, so a parallel sweep is observationally a faster
    {!List.map}.

    Worker domains hold no pool-specific state; anything a job needs
    per-domain (e.g. a [Factor.memo], whose hash tables are not
    thread-safe) should live in a [Domain.DLS] key consulted from
    inside the job. *)

type t
(** A running pool: [domains - 1] spawned worker domains plus the
    calling domain, which participates in every {!exec}. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns the workers. [domains] defaults to
    {!default_domains}; [domains = 1] spawns nothing and makes {!exec}
    run everything on the calling domain, in order.
    @raise Invalid_argument when [domains < 1]. *)

val size : t -> int
(** Total domains working an {!exec}, including the caller. *)

val exec : t -> ('a -> 'b) -> 'a list -> 'b list
(** [exec pool f items] applies [f] to every item, spread over the
    pool's domains, and returns the results {e in input order}
    regardless of completion order. Every item is attempted even when
    some fail; if any raised, the exception of the {e lowest-index}
    failing item is re-raised (with its backtrace) after the batch
    drains, so error reporting does not depend on scheduling.
    @raise Invalid_argument on a pool that was {!shutdown}. *)

val shutdown : t -> unit
(** Signals the workers and joins them. Jobs already queued are
    completed first. Idempotent. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] brackets [create]/[shutdown] around [f]. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot [with_pool] + {!exec}: [map ~domains f items] is
    [List.map f items] computed on [domains] domains, same order, same
    (deterministic) exception behaviour. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val default_jobs : ?cap:int -> unit -> int
(** [default_domains ()] capped at [cap] (default 8) — the shared
    default of every [--jobs] CLI flag, conservative enough not to
    oversubscribe shared CI runners while still using real cores. *)

val stats_json : unit -> Stp_telemetry.Json.t
(** Cumulative pool utilisation for this process: total and per-domain
    tasks run, busy seconds, and queue-wait seconds (time between a
    batch's submission and each task's dequeue). Always collected —
    a few atomic adds per task — and registered as the ["pool"] probe
    of {!Stp_telemetry.Telemetry.snapshot_json} at module load. Each
    task additionally carries a [pool.task] {!Stp_telemetry.Trace}
    span when tracing is enabled. *)
