(* A hand-rolled domain pool: a shared FIFO of thunks drained by
   [domains - 1] worker domains plus the calling domain. OCaml 5.1 only
   needs the stdlib for this (Domain + Mutex/Condition); domainslib is
   deliberately not a dependency.

   Invariants:
   - [mutex] guards [queue], [live] and every per-batch [pending]
     counter; jobs themselves run unlocked.
   - workers block on [work_available]; a batch's submitter blocks on
     [batch_done] once the queue is drained. Both conditions are
     broadcast, and every wait sits in a re-checking loop, so spurious
     wakeups and multi-batch traffic are harmless.
   - [shutdown] lets workers finish jobs already queued: the exit
     condition is "queue empty and not live". *)

type job = unit -> unit

type t = {
  mutex : Mutex.t;
  work_available : Condition.t;
  batch_done : Condition.t;
  queue : job Queue.t;
  mutable live : bool;
  mutable workers : unit Domain.t list;
  domains : int;
}

let default_domains () = max 1 (Domain.recommended_domain_count ())

let default_jobs ?(cap = 8) () = max 1 (min cap (default_domains ()))

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  let rec dequeue () =
    if not (Queue.is_empty pool.queue) then Some (Queue.pop pool.queue)
    else if not pool.live then None
    else begin
      Condition.wait pool.work_available pool.mutex;
      dequeue ()
    end
  in
  match dequeue () with
  | None -> Mutex.unlock pool.mutex
  | Some job ->
    Mutex.unlock pool.mutex;
    job ();
    worker_loop pool

let create ?domains () =
  let domains =
    match domains with None -> default_domains () | Some d -> d
  in
  if domains < 1 then invalid_arg "Pool.create: domains < 1";
  let pool =
    { mutex = Mutex.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      queue = Queue.create ();
      live = true;
      workers = [];
      domains }
  in
  pool.workers <-
    List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = pool.domains

let shutdown pool =
  Mutex.lock pool.mutex;
  let workers = pool.workers in
  pool.live <- false;
  pool.workers <- [];
  Condition.broadcast pool.work_available;
  Mutex.unlock pool.mutex;
  List.iter Domain.join workers

let exec pool f items =
  let items = Array.of_list items in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let failures = Array.make n None in
    let pending = ref n in
    let job i () =
      (match f items.(i) with
       | v -> results.(i) <- Some v
       | exception e ->
         failures.(i) <- Some (e, Printexc.get_raw_backtrace ()));
      Mutex.lock pool.mutex;
      decr pending;
      if !pending = 0 then Condition.broadcast pool.batch_done;
      Mutex.unlock pool.mutex
    in
    Mutex.lock pool.mutex;
    if not pool.live then begin
      Mutex.unlock pool.mutex;
      invalid_arg "Pool.exec: pool is shut down"
    end;
    for i = 0 to n - 1 do
      Queue.add (job i) pool.queue
    done;
    Condition.broadcast pool.work_available;
    (* The calling domain participates: drain the queue, then wait for
       stragglers still running on worker domains. *)
    let rec drive () =
      if not (Queue.is_empty pool.queue) then begin
        let job = Queue.pop pool.queue in
        Mutex.unlock pool.mutex;
        job ();
        Mutex.lock pool.mutex;
        drive ()
      end
      else if !pending > 0 then begin
        Condition.wait pool.batch_done pool.mutex;
        drive ()
      end
    in
    drive ();
    Mutex.unlock pool.mutex;
    (* Every job has run to completion; propagate the lowest-index
       failure so the raised exception does not depend on scheduling. *)
    Array.iteri
      (fun _ fail ->
        match fail with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      failures;
    List.init n (fun i ->
        match results.(i) with
        | Some v -> v
        | None -> assert false (* no failure, so every slot is filled *))
  end

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let map ?domains f items = with_pool ?domains (fun pool -> exec pool f items)
