(* A hand-rolled domain pool: a shared FIFO of thunks drained by
   [domains - 1] worker domains plus the calling domain. OCaml 5.1 only
   needs the stdlib for this (Domain + Mutex/Condition); domainslib is
   deliberately not a dependency.

   Invariants:
   - [mutex] guards [queue], [live] and every per-batch [pending]
     counter; jobs themselves run unlocked.
   - workers block on [work_available]; a batch's submitter blocks on
     [batch_done] once the queue is drained. Both conditions are
     broadcast, and every wait sits in a re-checking loop, so spurious
     wakeups and multi-batch traffic are harmless.
   - [shutdown] lets workers finish jobs already queued: the exit
     condition is "queue empty and not live". *)

type job = unit -> unit

(* {2 Utilisation telemetry}

   Per-domain accumulators — tasks run, busy time, queue wait — kept
   always-on (a handful of atomic adds per task, and tasks here are
   whole synthesis instances) and surfaced as the ["pool"] probe of
   {!Stp_telemetry.Telemetry.snapshot_json}. A domain's record is
   created on its first task and survives the domain, so utilisation
   of short-lived per-run pools accumulates over the process. *)

type domain_stat = {
  dom_id : int;
  tasks : int Atomic.t;
  busy_ns : int Atomic.t;
  wait_ns : int Atomic.t;
}

let domain_stats : domain_stat list ref = ref []
let domain_stats_lock = Mutex.create ()

let domain_stat_key : domain_stat Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let d =
        { dom_id = (Domain.self () :> int);
          tasks = Atomic.make 0;
          busy_ns = Atomic.make 0;
          wait_ns = Atomic.make 0 }
      in
      Mutex.lock domain_stats_lock;
      domain_stats := d :: !domain_stats;
      Mutex.unlock domain_stats_lock;
      d)

let stats_json () =
  let open Stp_telemetry in
  Mutex.lock domain_stats_lock;
  let ds = !domain_stats in
  Mutex.unlock domain_stats_lock;
  let ds = List.sort (fun a b -> compare a.dom_id b.dom_id) ds in
  let sum f = List.fold_left (fun acc d -> acc + Atomic.get (f d)) 0 ds in
  let s ns = float_of_int ns /. 1e9 in
  Json.Obj
    [ ("tasks_run", Json.Int (sum (fun d -> d.tasks)));
      ("busy_s", Json.Float (s (sum (fun d -> d.busy_ns))));
      ("queue_wait_s", Json.Float (s (sum (fun d -> d.wait_ns))));
      ("domains",
       Json.List
         (List.map
            (fun d ->
              Json.Obj
                [ ("id", Json.Int d.dom_id);
                  ("tasks", Json.Int (Atomic.get d.tasks));
                  ("busy_s", Json.Float (s (Atomic.get d.busy_ns)));
                  ("queue_wait_s", Json.Float (s (Atomic.get d.wait_ns))) ])
            ds)) ]

let () = Stp_telemetry.Telemetry.register_probe "pool" stats_json

type t = {
  mutex : Mutex.t;
  work_available : Condition.t;
  batch_done : Condition.t;
  queue : job Queue.t;
  mutable live : bool;
  mutable workers : unit Domain.t list;
  domains : int;
}

let default_domains () = max 1 (Domain.recommended_domain_count ())

let default_jobs ?(cap = 8) () = max 1 (min cap (default_domains ()))

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  let rec dequeue () =
    if not (Queue.is_empty pool.queue) then Some (Queue.pop pool.queue)
    else if not pool.live then None
    else begin
      Condition.wait pool.work_available pool.mutex;
      dequeue ()
    end
  in
  match dequeue () with
  | None -> Mutex.unlock pool.mutex
  | Some job ->
    Mutex.unlock pool.mutex;
    job ();
    worker_loop pool

let create ?domains () =
  let domains =
    match domains with None -> default_domains () | Some d -> d
  in
  if domains < 1 then invalid_arg "Pool.create: domains < 1";
  let pool =
    { mutex = Mutex.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      queue = Queue.create ();
      live = true;
      workers = [];
      domains }
  in
  pool.workers <-
    List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = pool.domains

let shutdown pool =
  Mutex.lock pool.mutex;
  let workers = pool.workers in
  pool.live <- false;
  pool.workers <- [];
  Condition.broadcast pool.work_available;
  Mutex.unlock pool.mutex;
  List.iter Domain.join workers

let exec pool f items =
  let items = Array.of_list items in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let failures = Array.make n None in
    let pending = ref n in
    let submitted_ns = Stp_util.Profile.now_ns () in
    let job i () =
      let t_deq = Stp_util.Profile.now_ns () in
      let stat = Domain.DLS.get domain_stat_key in
      ignore (Atomic.fetch_and_add stat.wait_ns (t_deq - submitted_ns));
      let run () =
        if Stp_telemetry.Trace.enabled () then
          Stp_telemetry.Trace.span "pool.task" (fun () -> f items.(i))
        else f items.(i)
      in
      (match run () with
       | v -> results.(i) <- Some v
       | exception e ->
         failures.(i) <- Some (e, Printexc.get_raw_backtrace ()));
      ignore
        (Atomic.fetch_and_add stat.busy_ns (Stp_util.Profile.now_ns () - t_deq));
      ignore (Atomic.fetch_and_add stat.tasks 1);
      Mutex.lock pool.mutex;
      decr pending;
      if !pending = 0 then Condition.broadcast pool.batch_done;
      Mutex.unlock pool.mutex
    in
    Mutex.lock pool.mutex;
    if not pool.live then begin
      Mutex.unlock pool.mutex;
      invalid_arg "Pool.exec: pool is shut down"
    end;
    for i = 0 to n - 1 do
      Queue.add (job i) pool.queue
    done;
    Condition.broadcast pool.work_available;
    (* The calling domain participates: drain the queue, then wait for
       stragglers still running on worker domains. *)
    let rec drive () =
      if not (Queue.is_empty pool.queue) then begin
        let job = Queue.pop pool.queue in
        Mutex.unlock pool.mutex;
        job ();
        Mutex.lock pool.mutex;
        drive ()
      end
      else if !pending > 0 then begin
        Condition.wait pool.batch_done pool.mutex;
        drive ()
      end
    in
    drive ();
    Mutex.unlock pool.mutex;
    (* Every job has run to completion; propagate the lowest-index
       failure so the raised exception does not depend on scheduling. *)
    Array.iteri
      (fun _ fail ->
        match fail with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      failures;
    List.init n (fun i ->
        match results.(i) with
        | Some v -> v
        | None -> assert false (* no failure, so every slot is filled *))
  end

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let map ?domains f items = with_pool ?domains (fun pool -> exec pool f items)
