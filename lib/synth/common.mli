(** Shared plumbing for all synthesis engines: support reduction and
    trivial-target handling. *)

val prepare :
  Stp_tt.Tt.t ->
  [ `Trivial of Stp_chain.Chain.t
  | `Reduced of Stp_tt.Tt.t * int list ]
(** [prepare f] projects the target onto its support. A target depending
    on one variable yields a gate-free chain ([`Trivial]); otherwise
    [`Reduced (g, support)] gives the compacted function and the original
    indices of its variables.
    @raise Invalid_argument on constant targets, which have no Boolean
    chain in this model. *)

val expand_chain :
  n:int -> support:int list -> Stp_chain.Chain.t -> Stp_chain.Chain.t
(** Lift a chain over the compacted variables back to the original
    [n]-variable space. *)

val optimal_and_verified :
  Stp_tt.Tt.t -> Stp_chain.Chain.t list -> Stp_chain.Chain.t list
(** Deduplicate (up to fanin order) and keep only chains that simulate
    to the target {e and} pass the circuit-solver verification — the
    paper's step (iv). *)
