module Tt = Stp_tt.Tt
module Chain = Stp_chain.Chain
module Mchain = Stp_chain.Mchain
module Solver = Stp_sat.Solver

type result = {
  status : Spec.status;
  mchain : Stp_chain.Mchain.t option;
  gates : int option;
  elapsed : float;
}

let check_outputs fs =
  if Array.length fs = 0 then invalid_arg "Multi: no outputs";
  let n = Tt.num_vars fs.(0) in
  Array.iter
    (fun f ->
      if Tt.num_vars f <> n then invalid_arg "Multi: mixed arities";
      if Tt.is_const f then
        invalid_arg "Multi: constant outputs have no Boolean chain")
    fs;
  n

let exact ?(incremental = true) ?(options = Spec.default_options) fs =
  let n = check_outputs fs in
  ignore n;
  let start = Stp_util.Unix_time.now () in
  let deadline = Spec.deadline_of options in
  let elapsed () = Stp_util.Unix_time.now () -. start in
  let timeout () =
    { status = Spec.Timeout; mchain = None; gates = None; elapsed = elapsed () }
  in
  let solved mc r =
    let sims = Mchain.simulate mc in
    Array.iteri (fun k f -> assert (Tt.equal sims.(k) f)) fs;
    { status = Spec.Solved; mchain = Some mc; gates = Some r;
      elapsed = elapsed () }
  in
  let lower =
    Array.fold_left (fun acc f -> max acc (Tt.support_size f - 1)) 1 fs
  in
  (* One budget per step: incremental keeps a single solver whose gate
     pool only grows; each budget's closing constraints ride on a
     selector retired once the budget is refuted. *)
  let step =
    if incremental then begin
      let solver = Solver.create () in
      let enc =
        Stp_encodings.Ssv_multi.Inc.create ?basis:options.Spec.basis ~solver
          ~fs ()
      in
      fun r ->
        match Stp_encodings.Ssv_multi.Inc.budget_selector enc r with
        | None -> `Unsat
        | Some sel -> (
          match Solver.solve ~assumptions:[ sel ] ~deadline solver with
          | Solver.Unsat ->
            Stp_encodings.Ssv_multi.Inc.retire enc r;
            `Unsat
          | Solver.Unknown -> `Unknown
          | Solver.Sat -> `Sat (Stp_encodings.Ssv_multi.Inc.decode enc ~r))
    end
    else
      fun r ->
        let solver = Solver.create () in
        match
          Stp_encodings.Ssv_multi.build ?basis:options.Spec.basis ~solver ~fs
            ~r ()
        with
        | None -> `Unsat
        | Some enc -> (
          match Solver.solve ~deadline solver with
          | Solver.Unsat -> `Unsat
          | Solver.Unknown -> `Unknown
          | Solver.Sat -> `Sat (Stp_encodings.Ssv_multi.decode enc))
  in
  let rec loop r =
    if r > options.Spec.max_gates then timeout ()
    else
      match step r with
      | `Unsat -> loop (r + 1)
      | `Unknown -> timeout ()
      | `Sat mc -> solved mc r
  in
  loop lower

(* Greedy structural merging of per-output optimum chains. *)
let stp_shared ?(options = Spec.default_options) fs =
  let n = check_outputs fs in
  let start = Stp_util.Unix_time.now () in
  let elapsed () = Stp_util.Unix_time.now () -. start in
  let per_output =
    Array.map (fun f -> Stp_exact.synthesize ~options f) fs
  in
  if Array.exists (fun (r : Spec.result) -> r.Spec.status <> Spec.Solved)
       per_output
  then { status = Spec.Timeout; mchain = None; gates = None; elapsed = elapsed () }
  else begin
    (* Pool of merged steps: (f1, f2, gate) -> pool signal. *)
    let table : (int * int * int, int) Hashtbl.t = Hashtbl.create 97 in
    let pool : Chain.step list ref = ref [] in
    let pool_size = ref 0 in
    (* Merge one chain; returns (output signal, flag) in pool space and
       the number of freshly added steps. *)
    let merge (c : Chain.t) ~commit =
      let saved_table = Hashtbl.copy table in
      let saved_pool = !pool and saved_size = !pool_size in
      let map = Array.make (c.Chain.n + Chain.size c) (-1) in
      for i = 0 to c.Chain.n - 1 do
        map.(i) <- i
      done;
      let added = ref 0 in
      Array.iteri
        (fun i (st : Chain.step) ->
          let f1 = map.(st.fanin1) and f2 = map.(st.fanin2) in
          let f1, f2, gate =
            if f1 <= f2 then (f1, f2, st.gate)
            else (f2, f1, Stp_chain.Gate.swap_operands st.gate)
          in
          let signal =
            match Hashtbl.find_opt table (f1, f2, gate) with
            | Some s -> s
            | None ->
              let s = n + !pool_size in
              incr pool_size;
              incr added;
              pool := { Chain.fanin1 = f1; fanin2 = f2; gate } :: !pool;
              Hashtbl.replace table (f1, f2, gate) s;
              s
          in
          map.(c.Chain.n + i) <- signal)
        c.Chain.steps;
      let out = (map.(c.Chain.output), c.Chain.output_negated) in
      if not commit then begin
        Hashtbl.reset table;
        Hashtbl.iter (Hashtbl.replace table) saved_table;
        pool := saved_pool;
        pool_size := saved_size
      end;
      (out, !added)
    in
    let outputs =
      Array.to_list
        (Array.map
           (fun (r : Spec.result) ->
             (* Pick the candidate that adds the fewest fresh gates. *)
             let best =
               List.fold_left
                 (fun acc c ->
                   let _, added = merge c ~commit:false in
                   match acc with
                   | Some (_, best_added) when best_added <= added -> acc
                   | _ -> Some (c, added))
                 None r.Spec.chains
             in
             match best with
             | None -> assert false
             | Some (c, _) ->
               let out, _ = merge c ~commit:true in
               out)
           per_output)
    in
    let mc = Mchain.make ~n ~steps:(List.rev !pool) ~outputs in
    let sims = Mchain.simulate mc in
    Array.iteri (fun k f -> assert (Tt.equal sims.(k) f)) fs;
    { status = Spec.Solved; mchain = Some mc; gates = Some !pool_size;
      elapsed = elapsed () }
  end
