module Tt = Stp_tt.Tt
module Chain = Stp_chain.Chain
module Solver = Stp_sat.Solver
module Ssv = Stp_encodings.Ssv
module Fence = Stp_topology.Fence

(* The SSV encoding requires a normal target; synthesise the complement
   otherwise and complement the decoded chain's output. *)
let normalise target =
  if Tt.get target 0 then (Tt.bnot target, true) else (target, false)

let flip_output negated (chain : Chain.t) =
  if not negated then chain
  else
    Chain.make ~n:chain.Chain.n
      ~steps:(Array.to_list chain.Chain.steps)
      ~output:chain.Chain.output
      ~output_negated:(not chain.Chain.output_negated) ()

let finish ~f ~n ~support ~negated chain =
  let chain = flip_output negated chain in
  let chain = Common.expand_chain ~n ~support chain in
  assert (Tt.equal (Chain.simulate chain) f);
  chain

(* An engine is instantiated once per target and stepped through
   increasing gate budgets: [engine ~options ~deadline ~target] may
   allocate per-instance state (for the incremental engines, one
   long-lived solver whose learnt clauses survive every budget), and the
   returned stepper answers each budget [~r]. The cold engines are
   ordinary four-argument functions — partial application makes them
   stateless steppers that rebuild a solver per call. *)
let run_outcome ~options ~deadline ~engine f =
  match Common.prepare f with
  | `Trivial chain -> `Solved ([ chain ], 0)
  | `Reduced (target, support) -> (
    let n = Tt.num_vars f in
    let target, negated = normalise target in
    let s = Tt.num_vars target in
    let step = engine ~options ~deadline ~target in
    let rec loop r =
      if r > options.Spec.max_gates then `Infeasible
      else
        match step ~r with
        | `Sat chain -> `Solved ([ finish ~f ~n ~support ~negated chain ], r)
        | `Unsat -> loop (r + 1)
        | `Unknown -> `Timeout
    in
    loop (max 1 (s - 1)))

let run_engine ~options ~engine f =
  let start = Stp_util.Unix_time.now () in
  let deadline = Spec.deadline_of options in
  match run_outcome ~options ~deadline ~engine f with
  | `Solved (chains, gates) ->
    Spec.solved ~chains ~gates ~elapsed:(Stp_util.Unix_time.now () -. start)
  | `Timeout | `Infeasible ->
    (* The public [Spec] surface keeps its historical two-state shape:
       a refuted gate budget reads as a timeout, as it always has.
       {!Engine} exposes the distinction. *)
    Spec.timed_out ~elapsed:(Stp_util.Unix_time.now () -. start)

(* BMS, cold: the plain encoding with all minterms, fresh solver per
   budget. *)
let bms_engine ~options ~deadline ~target ~r =
  let solver = Solver.create () in
  match Ssv.build ?basis:options.Spec.basis ~solver ~f:target ~r () with
  | None -> `Unsat
  | Some enc -> (
    match Solver.solve ~deadline solver with
    | Solver.Sat -> `Sat (Ssv.decode enc)
    | Solver.Unsat -> `Unsat
    | Solver.Unknown -> `Unknown)

let fences_for ~options r =
  let all = Fence.generate_pruned r in
  match options.Spec.max_depth with
  | None -> all
  | Some d -> List.filter (fun f -> Fence.num_levels f <= d) all

let levels_of fence =
  let lv = Array.make (Fence.num_nodes fence) 0 in
  let idx = ref 0 in
  Array.iteri
    (fun level count ->
      for _ = 1 to count do
        lv.(!idx) <- level + 1;
        incr idx
      done)
    fence;
  lv

(* FEN, cold: one restricted encoding per pruned fence, each on a fresh
   solver. *)
let fen_engine ~options ~deadline ~target ~r =
  let fences = fences_for ~options r in
  let rec try_fences = function
    | [] -> `Unsat
    | fence :: rest -> (
      if Stp_util.Deadline.expired deadline then `Unknown
      else
        let solver = Solver.create () in
        match
          Ssv.build ?basis:options.Spec.basis ~levels:(levels_of fence) ~solver
            ~f:target ~r ()
        with
        | None -> try_fences rest
        | Some enc -> (
          match Solver.solve ~deadline solver with
          | Solver.Sat -> `Sat (Ssv.decode enc)
          | Solver.Unsat -> try_fences rest
          | Solver.Unknown -> `Unknown))
  in
  try_fences fences

(* ABC lutexact analogue, cold: CEGAR over minterms. *)
let abc_engine ~options ~deadline ~target ~r =
  let solver = Solver.create () in
  let first_onset =
    let rec find m = if Tt.get target m then m else find (m + 1) in
    find 0
  in
  match
    Ssv.build ?basis:options.Spec.basis ~minterms:[ first_onset ] ~solver
      ~f:target ~r ()
  with
  | None -> `Unsat
  | Some enc ->
    let rec refine () =
      if Stp_util.Deadline.expired deadline then `Unknown
      else
        match Solver.solve ~deadline solver with
        | Solver.Unsat -> `Unsat
        | Solver.Unknown -> `Unknown
        | Solver.Sat -> (
          let chain = Ssv.decode enc in
          let sim = Chain.simulate chain in
          if Tt.equal sim target then `Sat chain
          else begin
            (* Add the first counterexample minterm and iterate. *)
            let diff = Tt.bxor sim target in
            let rec first m = if Tt.get diff m then m else first (m + 1) in
            Ssv.add_minterm enc (first 0);
            refine ()
          end)
    in
    refine ()

(* {2 Incremental engines}

   One solver per target, shared across every gate budget. Gate
   semantics clauses persist; each budget's output/usage clauses hang
   off a selector literal assumed during its solves and retired (a unit
   clause) once the budget is refuted, so conflict clauses learnt while
   refuting budget [r] prune the search at budget [r+1]. *)

(* BMS, incremental: all minterms up front, one solve per budget under
   that budget's selector. *)
let bms_inc ~options ~deadline ~target =
  let solver = Solver.create () in
  let enc = Ssv.Inc.create ?basis:options.Spec.basis ~solver ~f:target () in
  for m = 1 to (1 lsl Tt.num_vars target) - 1 do
    Ssv.Inc.add_minterm enc m
  done;
  fun ~r ->
    match Ssv.Inc.budget_selector enc r with
    | None -> `Unsat
    | Some sel -> (
      match Solver.solve ~assumptions:[ sel ] ~deadline solver with
      | Solver.Sat -> `Sat (Ssv.Inc.decode enc ~r)
      | Solver.Unsat ->
        Ssv.Inc.retire enc r;
        `Unsat
      | Solver.Unknown -> `Unknown)

(* FEN, incremental: the budget selector plus per-fence assumption sets
   over the shared selection variables — the whole fence family of every
   budget reuses one solver. Each refutation's unsat core (the
   assumptions actually used, {!Solver.unsat_core}) is kept: a later
   fence whose assumption set contains a recorded core is refuted by
   subsumption, without a solve. A core that used no fence assumption at
   all refutes the whole budget on the spot. *)
let fen_inc ~options ~deadline ~target =
  let solver = Solver.create () in
  let enc = Ssv.Inc.create ?basis:options.Spec.basis ~solver ~f:target () in
  for m = 1 to (1 lsl Tt.num_vars target) - 1 do
    Ssv.Inc.add_minterm enc m
  done;
  fun ~r ->
    match Ssv.Inc.budget_selector enc r with
    | None -> `Unsat
    | Some sel ->
      let cores = ref [] in
      let subsumed asms =
        List.exists
          (fun core -> List.for_all (fun l -> List.memq l asms) core)
          !cores
      in
      let rec try_fences = function
        | [] ->
          Ssv.Inc.retire enc r;
          `Unsat
        | fence :: rest -> (
          if Stp_util.Deadline.expired deadline then `Unknown
          else
            match Ssv.Inc.fence_assumptions enc ~levels:(levels_of fence) with
            | None -> try_fences rest
            | Some fence_asms when subsumed fence_asms -> try_fences rest
            | Some fence_asms -> (
              match
                Solver.solve ~assumptions:(sel :: fence_asms) ~deadline solver
              with
              | Solver.Sat -> `Sat (Ssv.Inc.decode enc ~r)
              | Solver.Unsat -> (
                match
                  List.filter (fun l -> l <> sel) (Solver.unsat_core solver)
                with
                | [] ->
                  (* refuted without fence assumptions: no [r]-gate
                     chain under any topology *)
                  Ssv.Inc.retire enc r;
                  `Unsat
                | core ->
                  cores := core :: !cores;
                  try_fences rest)
              | Solver.Unknown -> `Unknown))
      in
      try_fences (fences_for ~options r)

(* ABC, incremental: counterexample minterms accumulate across budgets —
   refuting a budget on a minterm subset refutes it outright, and Sat
   answers are verified by simulation. *)
let abc_inc ~options ~deadline ~target =
  let solver = Solver.create () in
  let enc = Ssv.Inc.create ?basis:options.Spec.basis ~solver ~f:target () in
  let first_onset =
    let rec find m = if Tt.get target m then m else find (m + 1) in
    find 0
  in
  Ssv.Inc.add_minterm enc first_onset;
  fun ~r ->
    match Ssv.Inc.budget_selector enc r with
    | None -> `Unsat
    | Some sel ->
      let rec refine () =
        if Stp_util.Deadline.expired deadline then `Unknown
        else
          match Solver.solve ~assumptions:[ sel ] ~deadline solver with
          | Solver.Unsat ->
            Ssv.Inc.retire enc r;
            `Unsat
          | Solver.Unknown -> `Unknown
          | Solver.Sat -> (
            let chain = Ssv.Inc.decode enc ~r in
            let sim = Chain.simulate chain in
            if Tt.equal sim target then `Sat chain
            else begin
              let diff = Tt.bxor sim target in
              let rec first m = if Tt.get diff m then m else first (m + 1) in
              Ssv.Inc.add_minterm enc (first 0);
              refine ()
            end)
      in
      refine ()

(* Depth bounds are expressed through fence levels, so the flat BMS/ABC
   encodings route through the fence engine when one is requested. *)
let bms_stepper ~incremental ~options =
  match (options.Spec.max_depth, incremental) with
  | None, true -> bms_inc
  | None, false -> bms_engine
  | Some _, true -> fen_inc
  | Some _, false -> fen_engine

let fen_stepper ~incremental = if incremental then fen_inc else fen_engine

let abc_stepper ~incremental ~options =
  match (options.Spec.max_depth, incremental) with
  | None, true -> abc_inc
  | None, false -> abc_engine
  | Some _, true -> fen_inc
  | Some _, false -> fen_engine

let bms ?(incremental = true) ?(options = Spec.default_options) f =
  run_engine ~options ~engine:(bms_stepper ~incremental ~options) f

(* The shared-solver engines are the default where the A/B sweep in
   [bench --sat] shows them winning: the flat BMS/ABC encodings reuse
   learnt clauses across budgets at no structural cost. Fence
   enumeration is different — its cold per-fence encodings are *smaller*
   than the shared unrestricted instance (illegal selections never
   exist, so watch lists stay short), and on the NPN4 sweep the shared
   solver's ~25% conflict savings are outweighed by ~35% slower
   propagation. FEN therefore defaults to the cold engine; pass
   [~incremental:true] to study the shared-solver variant. *)
let fen ?(incremental = false) ?(options = Spec.default_options) f =
  run_engine ~options ~engine:(fen_stepper ~incremental) f

let abc ?(incremental = true) ?(options = Spec.default_options) f =
  run_engine ~options ~engine:(abc_stepper ~incremental ~options) f

type outcome = [ `Solved of Chain.t list * int | `Timeout | `Infeasible ]

let bms_outcome ?(incremental = true) ~options ~deadline f =
  run_outcome ~options ~deadline ~engine:(bms_stepper ~incremental ~options) f

let fen_outcome ?(incremental = false) ~options ~deadline f =
  run_outcome ~options ~deadline ~engine:(fen_stepper ~incremental) f

let abc_outcome ?(incremental = true) ~options ~deadline f =
  run_outcome ~options ~deadline ~engine:(abc_stepper ~incremental ~options) f

let all =
  [ ("BMS", fun ?options f -> bms ?options f);
    ("FEN", fun ?options f -> fen ?options f);
    ("ABC", fun ?options f -> abc ?options f) ]

module Gate = Stp_chain.Gate

(* A constructive (non-optimal) chain: recursive Shannon expansion with
   constant-cofactor folds and single-gate base cases. Cheap enough to
   serve as the graceful-degrade answer when an exact engine's deadline
   expires: every non-constant target gets *some* verified chain. *)
let upper_bound f =
  match Common.prepare f with
  | `Trivial chain -> chain
  | `Reduced (target, support) ->
    let n = Tt.num_vars f in
    let m = Tt.num_vars target in
    let steps = ref [] (* reversed *) in
    let count = ref 0 in
    let emit fanin1 fanin2 gate =
      steps := { Chain.fanin1; fanin2; gate } :: !steps;
      let s = m + !count in
      incr count;
      s
    in
    (* [gate_of (s, neg) (s', neg')]: fold literal complements of the
       operands into the gate code, as chains have no inverters. *)
    let emit_lit code (s1, neg1) (s2, neg2) =
      let code = if neg1 then Gate.negate_first code else code in
      let code = if neg2 then Gate.negate_second code else code in
      (emit s1 s2 code, false)
    in
    let memo = Hashtbl.create 64 in
    (* Build a literal (signal, complemented) computing the non-constant
       [g]; sharing identical subfunctions through [memo]. *)
    let rec build g =
      match Hashtbl.find_opt memo g with
      | Some lit -> lit
      | None ->
        let lit = build_uncached g in
        Hashtbl.replace memo g lit;
        lit
    and build_uncached g =
      match Tt.support g with
      | [ i ] -> (i, not (Tt.equal g (Tt.var m i)))
      | [ i; j ] ->
        (* the ten nontrivial gate codes are exactly the functions
           depending on both of two variables *)
        let xi = Tt.var m i and xj = Tt.var m j in
        let c =
          List.find (fun c -> Tt.equal g (Tt.apply2 c xi xj)) Gate.nontrivial
        in
        (emit i j c, false)
      | sup ->
        let i = List.hd (List.rev sup) in
        let g0 = Tt.cofactor g i false and g1 = Tt.cofactor g i true in
        let xi = (i, false) in
        (match (Tt.is_const_of g0, Tt.is_const_of g1) with
         | Some true, _ -> emit_lit 11 xi (build g1) (* ~xi OR g1 *)
         | Some false, _ -> emit_lit 8 xi (build g1) (* xi AND g1 *)
         | _, Some true -> emit_lit 14 xi (build g0) (* xi OR g0 *)
         | _, Some false -> emit_lit 2 xi (build g0) (* ~xi AND g0 *)
         | None, None ->
           if Tt.equal_bnot g0 g1 then emit_lit 9 xi (build g1) (* XNOR *)
           else begin
             let hi = emit_lit 8 xi (build g1) in
             let lo = emit_lit 2 xi (build g0) in
             emit_lit 14 hi lo
           end)
    in
    let output, output_negated = build target in
    let chain =
      Chain.make ~n:m
        ~steps:(List.rev !steps)
        ~output ~output_negated ()
    in
    let chain = Common.expand_chain ~n ~support chain in
    assert (Tt.equal (Chain.simulate chain) f);
    chain
