module Tt = Stp_tt.Tt
module Chain = Stp_chain.Chain
module Solver = Stp_sat.Solver
module Ssv = Stp_encodings.Ssv
module Fence = Stp_topology.Fence

(* The SSV encoding requires a normal target; synthesise the complement
   otherwise and complement the decoded chain's output. *)
let normalise target =
  if Tt.get target 0 then (Tt.bnot target, true) else (target, false)

let flip_output negated (chain : Chain.t) =
  if not negated then chain
  else
    Chain.make ~n:chain.Chain.n
      ~steps:(Array.to_list chain.Chain.steps)
      ~output:chain.Chain.output
      ~output_negated:(not chain.Chain.output_negated) ()

let finish ~f ~n ~support ~negated chain =
  let chain = flip_output negated chain in
  let chain = Common.expand_chain ~n ~support chain in
  assert (Tt.equal (Chain.simulate chain) f);
  chain

let run_outcome ~options ~deadline ~engine f =
  match Common.prepare f with
  | `Trivial chain -> `Solved ([ chain ], 0)
  | `Reduced (target, support) -> (
    let n = Tt.num_vars f in
    let target, negated = normalise target in
    let s = Tt.num_vars target in
    let rec loop r =
      if r > options.Spec.max_gates then `Infeasible
      else
        match engine ~options ~deadline ~target ~r with
        | `Sat chain -> `Solved ([ finish ~f ~n ~support ~negated chain ], r)
        | `Unsat -> loop (r + 1)
        | `Unknown -> `Timeout
    in
    loop (max 1 (s - 1)))

let run_engine ~options ~engine f =
  let start = Stp_util.Unix_time.now () in
  let deadline = Spec.deadline_of options in
  match run_outcome ~options ~deadline ~engine f with
  | `Solved (chains, gates) ->
    Spec.solved ~chains ~gates ~elapsed:(Stp_util.Unix_time.now () -. start)
  | `Timeout | `Infeasible ->
    (* The public [Spec] surface keeps its historical two-state shape:
       a refuted gate budget reads as a timeout, as it always has.
       {!Engine} exposes the distinction. *)
    Spec.timed_out ~elapsed:(Stp_util.Unix_time.now () -. start)

(* BMS: the plain encoding with all minterms. *)
let bms_engine ~options ~deadline ~target ~r =
  let solver = Solver.create () in
  match Ssv.build ?basis:options.Spec.basis ~solver ~f:target ~r () with
  | None -> `Unsat
  | Some enc -> (
    match Solver.solve ~deadline solver with
    | Solver.Sat -> `Sat (Ssv.decode enc)
    | Solver.Unsat -> `Unsat
    | Solver.Unknown -> `Unknown)

(* FEN: one restricted encoding per pruned fence. *)
let fen_engine ~options ~deadline ~target ~r =
  let fences =
    let all = Fence.generate_pruned r in
    match options.Spec.max_depth with
    | None -> all
    | Some d -> List.filter (fun f -> Fence.num_levels f <= d) all
  in
  let levels_of fence =
    let lv = Array.make (Fence.num_nodes fence) 0 in
    let idx = ref 0 in
    Array.iteri
      (fun level count ->
        for _ = 1 to count do
          lv.(!idx) <- level + 1;
          incr idx
        done)
      fence;
    lv
  in
  let rec try_fences = function
    | [] -> `Unsat
    | fence :: rest -> (
      if Stp_util.Deadline.expired deadline then `Unknown
      else
        let solver = Solver.create () in
        match
          Ssv.build ?basis:options.Spec.basis ~levels:(levels_of fence) ~solver
            ~f:target ~r ()
        with
        | None -> try_fences rest
        | Some enc -> (
          match Solver.solve ~deadline solver with
          | Solver.Sat -> `Sat (Ssv.decode enc)
          | Solver.Unsat -> try_fences rest
          | Solver.Unknown -> `Unknown))
  in
  try_fences fences

(* ABC lutexact analogue: CEGAR over minterms. *)
let abc_engine ~options ~deadline ~target ~r =
  let solver = Solver.create () in
  let first_onset =
    let rec find m = if Tt.get target m then m else find (m + 1) in
    find 0
  in
  match
    Ssv.build ?basis:options.Spec.basis ~minterms:[ first_onset ] ~solver
      ~f:target ~r ()
  with
  | None -> `Unsat
  | Some enc ->
    let rec refine () =
      if Stp_util.Deadline.expired deadline then `Unknown
      else
        match Solver.solve ~deadline solver with
        | Solver.Unsat -> `Unsat
        | Solver.Unknown -> `Unknown
        | Solver.Sat -> (
          let chain = Ssv.decode enc in
          let sim = Chain.simulate chain in
          if Tt.equal sim target then `Sat chain
          else begin
            (* Add the first counterexample minterm and iterate. *)
            let diff = Tt.bxor sim target in
            let rec first m = if Tt.get diff m then m else first (m + 1) in
            Ssv.add_minterm enc (first 0);
            refine ()
          end)
    in
    refine ()

(* Depth bounds are expressed through fence levels, so the flat BMS/ABC
   encodings route through the fence engine when one is requested. *)
let bms ?(options = Spec.default_options) f =
  let engine =
    if options.Spec.max_depth = None then bms_engine else fen_engine
  in
  run_engine ~options ~engine f

let fen ?(options = Spec.default_options) f = run_engine ~options ~engine:fen_engine f

let abc ?(options = Spec.default_options) f =
  let engine =
    if options.Spec.max_depth = None then abc_engine else fen_engine
  in
  run_engine ~options ~engine f

type outcome = [ `Solved of Chain.t list * int | `Timeout | `Infeasible ]

let bms_outcome ~options ~deadline f =
  let engine =
    if options.Spec.max_depth = None then bms_engine else fen_engine
  in
  run_outcome ~options ~deadline ~engine f

let fen_outcome ~options ~deadline f =
  run_outcome ~options ~deadline ~engine:fen_engine f

let abc_outcome ~options ~deadline f =
  let engine =
    if options.Spec.max_depth = None then abc_engine else fen_engine
  in
  run_outcome ~options ~deadline ~engine f

let all = [ ("BMS", bms); ("FEN", fen); ("ABC", abc) ]

module Gate = Stp_chain.Gate

(* A constructive (non-optimal) chain: recursive Shannon expansion with
   constant-cofactor folds and single-gate base cases. Cheap enough to
   serve as the graceful-degrade answer when an exact engine's deadline
   expires: every non-constant target gets *some* verified chain. *)
let upper_bound f =
  match Common.prepare f with
  | `Trivial chain -> chain
  | `Reduced (target, support) ->
    let n = Tt.num_vars f in
    let m = Tt.num_vars target in
    let steps = ref [] (* reversed *) in
    let count = ref 0 in
    let emit fanin1 fanin2 gate =
      steps := { Chain.fanin1; fanin2; gate } :: !steps;
      let s = m + !count in
      incr count;
      s
    in
    (* [gate_of (s, neg) (s', neg')]: fold literal complements of the
       operands into the gate code, as chains have no inverters. *)
    let emit_lit code (s1, neg1) (s2, neg2) =
      let code = if neg1 then Gate.negate_first code else code in
      let code = if neg2 then Gate.negate_second code else code in
      (emit s1 s2 code, false)
    in
    let memo = Hashtbl.create 64 in
    (* Build a literal (signal, complemented) computing the non-constant
       [g]; sharing identical subfunctions through [memo]. *)
    let rec build g =
      match Hashtbl.find_opt memo g with
      | Some lit -> lit
      | None ->
        let lit = build_uncached g in
        Hashtbl.replace memo g lit;
        lit
    and build_uncached g =
      match Tt.support g with
      | [ i ] -> (i, not (Tt.equal g (Tt.var m i)))
      | [ i; j ] ->
        (* the ten nontrivial gate codes are exactly the functions
           depending on both of two variables *)
        let xi = Tt.var m i and xj = Tt.var m j in
        let c =
          List.find (fun c -> Tt.equal g (Tt.apply2 c xi xj)) Gate.nontrivial
        in
        (emit i j c, false)
      | sup ->
        let i = List.hd (List.rev sup) in
        let g0 = Tt.cofactor g i false and g1 = Tt.cofactor g i true in
        let xi = (i, false) in
        (match (Tt.is_const_of g0, Tt.is_const_of g1) with
         | Some true, _ -> emit_lit 11 xi (build g1) (* ~xi OR g1 *)
         | Some false, _ -> emit_lit 8 xi (build g1) (* xi AND g1 *)
         | _, Some true -> emit_lit 14 xi (build g0) (* xi OR g0 *)
         | _, Some false -> emit_lit 2 xi (build g0) (* ~xi AND g0 *)
         | None, None ->
           if Tt.equal_bnot g0 g1 then emit_lit 9 xi (build g1) (* XNOR *)
           else begin
             let hi = emit_lit 8 xi (build g1) in
             let lo = emit_lit 2 xi (build g0) in
             emit_lit 14 hi lo
           end)
    in
    let output, output_negated = build target in
    let chain =
      Chain.make ~n:m
        ~steps:(List.rev !steps)
        ~output ~output_negated ()
    in
    let chain = Common.expand_chain ~n ~support chain in
    assert (Tt.equal (Chain.simulate chain) f);
    chain
