module Tt = Stp_tt.Tt
module Chain = Stp_chain.Chain
module Solver = Stp_sat.Solver
module Ssv = Stp_encodings.Ssv
module Fence = Stp_topology.Fence

(* The SSV encoding requires a normal target; synthesise the complement
   otherwise and complement the decoded chain's output. *)
let normalise target =
  if Tt.get target 0 then (Tt.bnot target, true) else (target, false)

let flip_output negated (chain : Chain.t) =
  if not negated then chain
  else
    Chain.make ~n:chain.Chain.n
      ~steps:(Array.to_list chain.Chain.steps)
      ~output:chain.Chain.output
      ~output_negated:(not chain.Chain.output_negated) ()

let finish ~f ~n ~support ~negated ~elapsed chain gates =
  let chain = flip_output negated chain in
  let chain = Common.expand_chain ~n ~support chain in
  assert (Tt.equal (Chain.simulate chain) f);
  Spec.solved ~chains:[ chain ] ~gates ~elapsed

let run_engine ~options ~engine f =
  let start = Stp_util.Unix_time.now () in
  let deadline = Spec.deadline_of options in
  let elapsed () = Stp_util.Unix_time.now () -. start in
  match Common.prepare f with
  | `Trivial chain -> Spec.solved ~chains:[ chain ] ~gates:0 ~elapsed:(elapsed ())
  | `Reduced (target, support) -> (
    let n = Tt.num_vars f in
    let target, negated = normalise target in
    let s = Tt.num_vars target in
    let rec loop r =
      if r > options.Spec.max_gates then Spec.timed_out ~elapsed:(elapsed ())
      else
        match engine ~options ~deadline ~target ~r with
        | `Sat chain -> finish ~f ~n ~support ~negated ~elapsed:(elapsed ()) chain r
        | `Unsat -> loop (r + 1)
        | `Unknown -> Spec.timed_out ~elapsed:(elapsed ())
    in
    loop (max 1 (s - 1)))

(* BMS: the plain encoding with all minterms. *)
let bms_engine ~options ~deadline ~target ~r =
  let solver = Solver.create () in
  match Ssv.build ?basis:options.Spec.basis ~solver ~f:target ~r () with
  | None -> `Unsat
  | Some enc -> (
    match Solver.solve ~deadline solver with
    | Solver.Sat -> `Sat (Ssv.decode enc)
    | Solver.Unsat -> `Unsat
    | Solver.Unknown -> `Unknown)

(* FEN: one restricted encoding per pruned fence. *)
let fen_engine ~options ~deadline ~target ~r =
  let fences =
    let all = Fence.generate_pruned r in
    match options.Spec.max_depth with
    | None -> all
    | Some d -> List.filter (fun f -> Fence.num_levels f <= d) all
  in
  let levels_of fence =
    let lv = Array.make (Fence.num_nodes fence) 0 in
    let idx = ref 0 in
    Array.iteri
      (fun level count ->
        for _ = 1 to count do
          lv.(!idx) <- level + 1;
          incr idx
        done)
      fence;
    lv
  in
  let rec try_fences = function
    | [] -> `Unsat
    | fence :: rest -> (
      if Stp_util.Deadline.expired deadline then `Unknown
      else
        let solver = Solver.create () in
        match
          Ssv.build ?basis:options.Spec.basis ~levels:(levels_of fence) ~solver
            ~f:target ~r ()
        with
        | None -> try_fences rest
        | Some enc -> (
          match Solver.solve ~deadline solver with
          | Solver.Sat -> `Sat (Ssv.decode enc)
          | Solver.Unsat -> try_fences rest
          | Solver.Unknown -> `Unknown))
  in
  try_fences fences

(* ABC lutexact analogue: CEGAR over minterms. *)
let abc_engine ~options ~deadline ~target ~r =
  let solver = Solver.create () in
  let first_onset =
    let rec find m = if Tt.get target m then m else find (m + 1) in
    find 0
  in
  match
    Ssv.build ?basis:options.Spec.basis ~minterms:[ first_onset ] ~solver
      ~f:target ~r ()
  with
  | None -> `Unsat
  | Some enc ->
    let rec refine () =
      if Stp_util.Deadline.expired deadline then `Unknown
      else
        match Solver.solve ~deadline solver with
        | Solver.Unsat -> `Unsat
        | Solver.Unknown -> `Unknown
        | Solver.Sat -> (
          let chain = Ssv.decode enc in
          let sim = Chain.simulate chain in
          if Tt.equal sim target then `Sat chain
          else begin
            (* Add the first counterexample minterm and iterate. *)
            let diff = Tt.bxor sim target in
            let rec first m = if Tt.get diff m then m else first (m + 1) in
            Ssv.add_minterm enc (first 0);
            refine ()
          end)
    in
    refine ()

(* Depth bounds are expressed through fence levels, so the flat BMS/ABC
   encodings route through the fence engine when one is requested. *)
let bms ?(options = Spec.default_options) f =
  let engine =
    if options.Spec.max_depth = None then bms_engine else fen_engine
  in
  run_engine ~options ~engine f

let fen ?(options = Spec.default_options) f = run_engine ~options ~engine:fen_engine f

let abc ?(options = Spec.default_options) f =
  let engine =
    if options.Spec.max_depth = None then abc_engine else fen_engine
  in
  run_engine ~options ~engine f

let all = [ ("BMS", bms); ("FEN", fen); ("ABC", abc) ]
