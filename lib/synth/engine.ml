module Tt = Stp_tt.Tt
module Chain = Stp_chain.Chain

type spec = {
  target : Tt.t;
  options : Spec.options;
  memo : Factor.memo option;
}

let spec ?(options = Spec.default_options) ?memo target =
  { target; options; memo }

type result =
  | Solved of Chain.t list
  | Timeout
  | Infeasible

module type S = sig
  val name : string

  val synthesize : spec -> deadline:Stp_util.Deadline.t -> result
end

let of_outcome = function
  | `Solved (chains, _gates) -> Solved chains
  | `Timeout -> Timeout
  | `Infeasible -> Infeasible

module Stp_engine : S = struct
  let name = "STP"

  let synthesize { target; options; memo } ~deadline =
    of_outcome (Stp_exact.synthesize_outcome ~options ?memo ~deadline target)
end

(* The CNF baselines raise on constant targets ([Common.prepare]); the
   Engine contract reports them as [Infeasible] instead. *)
let baseline name outcome : (module S) =
  (module struct
    let name = name

    let synthesize { target; options; memo = _ } ~deadline =
      if Tt.is_const target then Infeasible
      else of_outcome (outcome ~options ~deadline target)
  end)

let stp = (module Stp_engine : S)
let bms = baseline "BMS" (fun ~options ~deadline f -> Baselines.bms_outcome ~options ~deadline f)
let fen = baseline "FEN" (fun ~options ~deadline f -> Baselines.fen_outcome ~options ~deadline f)
let lutexact = baseline "ABC" (fun ~options ~deadline f -> Baselines.abc_outcome ~options ~deadline f)

let all = [ bms; fen; lutexact; stp ]

let name (module E : S) = E.name

let find n =
  let n = String.uppercase_ascii n in
  List.find_opt (fun (module E : S) -> String.uppercase_ascii E.name = n) all

let gates = function
  | Solved (c :: _) -> Some (Chain.size c)
  | Solved [] | Timeout | Infeasible -> None

let outcome_label = function
  | Solved _ -> "solved"
  | Timeout -> "timeout"
  | Infeasible -> "infeasible"

(* Telemetry decorator: a span per synthesize call (one flame-graph
   block per engine invocation, tagged with the target arity) and, when
   metrics are on, latency histograms per engine and per outcome. The
   engine itself stays uninstrumented; everything that consumes engines
   through [S] (runner, daemon, rewriter) wraps with [observed] so the
   measurements agree across entry points. *)
let observed (module E : S) : (module S) =
  (module struct
    let name = E.name

    let span_name = "synth." ^ E.name
    let hist_engine = lazy (Stp_telemetry.Hist.get ("engine/" ^ E.name))

    let synthesize spec ~deadline =
      let run () =
        if not (Stp_telemetry.Trace.enabled ()) then E.synthesize spec ~deadline
        else
          Stp_telemetry.Trace.span span_name
            ~args:[ ("n", string_of_int (Tt.num_vars spec.target)) ]
            (fun () -> E.synthesize spec ~deadline)
      in
      if not (Stp_telemetry.Telemetry.metrics_enabled ()) then run ()
      else begin
        let t0 = Stp_util.Profile.now_ns () in
        let r = run () in
        let dt = Stp_util.Profile.now_ns () - t0 in
        Stp_telemetry.Hist.observe_ns (Lazy.force hist_engine) dt;
        Stp_telemetry.Hist.observe_ns
          (Stp_telemetry.Hist.get ("engine/" ^ E.name ^ "/" ^ outcome_label r))
          dt;
        r
      end
  end)

let to_spec_result ~elapsed = function
  | Solved chains ->
    let gates = match chains with c :: _ -> Chain.size c | [] -> 0 in
    Spec.solved ~chains ~gates ~elapsed
  | Timeout | Infeasible -> Spec.timed_out ~elapsed
