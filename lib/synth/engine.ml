module Tt = Stp_tt.Tt
module Chain = Stp_chain.Chain

type spec = {
  target : Tt.t;
  options : Spec.options;
  memo : Factor.memo option;
}

let spec ?(options = Spec.default_options) ?memo target =
  { target; options; memo }

type result =
  | Solved of Chain.t list
  | Timeout
  | Infeasible

module type S = sig
  val name : string

  val synthesize : spec -> deadline:Stp_util.Deadline.t -> result
end

let of_outcome = function
  | `Solved (chains, _gates) -> Solved chains
  | `Timeout -> Timeout
  | `Infeasible -> Infeasible

module Stp_engine : S = struct
  let name = "STP"

  let synthesize { target; options; memo } ~deadline =
    of_outcome (Stp_exact.synthesize_outcome ~options ?memo ~deadline target)
end

(* The CNF baselines raise on constant targets ([Common.prepare]); the
   Engine contract reports them as [Infeasible] instead. *)
let baseline name outcome : (module S) =
  (module struct
    let name = name

    let synthesize { target; options; memo = _ } ~deadline =
      if Tt.is_const target then Infeasible
      else of_outcome (outcome ~options ~deadline target)
  end)

let stp = (module Stp_engine : S)
let bms = baseline "BMS" Baselines.bms_outcome
let fen = baseline "FEN" Baselines.fen_outcome
let lutexact = baseline "ABC" Baselines.abc_outcome

let all = [ bms; fen; lutexact; stp ]

let name (module E : S) = E.name

let find n =
  let n = String.uppercase_ascii n in
  List.find_opt (fun (module E : S) -> String.uppercase_ascii E.name = n) all

let gates = function
  | Solved (c :: _) -> Some (Chain.size c)
  | Solved [] | Timeout | Infeasible -> None

let to_spec_result ~elapsed = function
  | Solved chains ->
    let gates = match chains with c :: _ -> Chain.size c | [] -> 0 in
    Spec.solved ~chains ~gates ~elapsed
  | Timeout | Infeasible -> Spec.timed_out ~elapsed
