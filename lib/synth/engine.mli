(** The unified synthesis-engine API.

    Every exact engine in the repo — the paper's STP AllSAT engine and
    the three CNF baselines — is exposed behind one module type:
    a [synthesize] function from a {!spec} (target, options, optional
    factor memo) and an explicit deadline to one shared three-way
    {!result}. The harness ({!Stp_harness.Runner}), the NPN cache
    ({!Npn_cache}) and the netlist rewriter consume engines only
    through this signature, so adding an engine is implementing [S]
    once.

    Deadlines are explicit rather than read from
    [options.timeout]: a service handing out per-request budgets (the
    synthesis daemon) and a collection runner sharing one wall-clock
    policy both construct the deadline themselves. *)

type spec = {
  target : Stp_tt.Tt.t;
  options : Spec.options;  (** [options.timeout] is ignored; pass a deadline *)
  memo : Factor.memo option;
      (** reusable factorisation memo; engines that cannot use one
          ignore it *)
}

val spec : ?options:Spec.options -> ?memo:Factor.memo -> Stp_tt.Tt.t -> spec
(** [spec f] with {!Spec.default_options} and no memo. *)

type result =
  | Solved of Stp_chain.Chain.t list
      (** all optimum chains found (non-empty; every chain has the same
          optimum size, readable as {!gates}) *)
  | Timeout  (** the deadline expired before an answer *)
  | Infeasible
      (** no chain exists within the spec's constraints: a constant
          target, or every gate count up to [options.max_gates]
          refuted *)

module type S = sig
  val name : string

  val synthesize : spec -> deadline:Stp_util.Deadline.t -> result
end

val stp : (module S)
(** The paper's STP AllSAT engine ({!Stp_exact}); name ["STP"]. *)

val bms : (module S)
(** Busy-man's-synthesis CNF baseline; name ["BMS"]. *)

val fen : (module S)
(** Fence-enumeration CNF baseline; name ["FEN"]. *)

val lutexact : (module S)
(** The CEGAR analogue of ABC's [lutexact]; name ["ABC"]. *)

val all : (module S) list
(** BMS, FEN, ABC, STP — the paper's column order. *)

val name : (module S) -> string

val find : string -> (module S) option
(** Look an engine up by (case-insensitive) name. *)

val gates : result -> int option
(** The optimum gate count of a [Solved] result (the size of its
    chains); [None] otherwise. *)

val outcome_label : result -> string
(** ["solved"], ["timeout"] or ["infeasible"] — the histogram and
    response-status vocabulary shared by the harness and the daemon. *)

val observed : (module S) -> (module S)
(** Telemetry decorator: the same engine, with a
    {!Stp_telemetry.Trace} span per [synthesize] call (named
    [synth.<engine>], tagged with the target arity) and — when
    {!Stp_telemetry.Telemetry.metrics_enabled} — call latencies
    recorded into the registered histograms [engine/<name>] and
    [engine/<name>/<outcome>]. Free when tracing and metrics are both
    off (two [ref] reads per call). *)

val to_spec_result : elapsed:float -> result -> Spec.result
(** Bridge to the record shape of the pre-[Engine] API: [Solved]
    becomes {!Spec.solved}; [Timeout] {e and} [Infeasible] become
    {!Spec.timed_out}, matching the engines' historical reporting. *)
