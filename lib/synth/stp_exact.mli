(** The paper's exact-synthesis algorithm (Section III).

    For increasing gate counts [r] starting at [support - 1], enumerate
    the DAG shapes of the pruned fence family [F_r] (Section III-A),
    factor the target's STP canonical form over each shape (Section
    III-B), collect {e all} Boolean-chain candidates, and keep those the
    circuit AllSAT solver verifies (Section III-C). The first gate count
    with verified chains is optimum, and every optimum chain of that
    size is returned in one pass. *)

val synthesize_outcome :
  ?options:Spec.options ->
  ?memo:Factor.memo ->
  deadline:Stp_util.Deadline.t ->
  Stp_tt.Tt.t ->
  [ `Solved of Stp_chain.Chain.t list * int | `Timeout | `Infeasible ]
(** The engine under an explicit deadline (ignoring [options.timeout]):
    [`Solved (chains, gates)] carries all optimum chains over the
    target's full variable space; [`Timeout] means the deadline expired
    mid-search; [`Infeasible] means no chain exists within the options
    (a constant target, or every size up to [options.max_gates]
    refuted). The building block behind {!Engine.stp}. *)

val synthesize :
  ?options:Spec.options -> ?memo:Factor.memo -> Stp_tt.Tt.t -> Spec.result
(** All optimum chains for the target. The result chains range over the
    target's full variable space.

    [memo] lets a caller reuse one {!Factor.memo} across many targets
    (a collection run): reuse only speeds the search up, it never
    changes results. The memo's basis must match [options.basis], and a
    memo must never be shared between domains.
    @raise Invalid_argument on constant targets. *)

val synthesize_npn :
  ?options:Spec.options -> ?memo:Factor.memo -> Stp_tt.Tt.t -> Spec.result
(** Like {!synthesize}, but canonicalises the target's NPN class first
    and maps the solutions back — cheaper when many equivalent functions
    are synthesised, and a direct use of the paper's NPN reduction.
    Practical for targets of at most 6 support variables. For reuse of
    the canonical class's solutions across a whole run, see
    {!Npn_cache}. *)
