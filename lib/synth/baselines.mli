(** The paper's three comparison baselines (Section IV), all built on the
    in-repo CDCL solver:

    - {!bms}: the plain SAT-based exact-synthesis loop with the SSV
      encoding, one solver call per gate count (Soeken et al., "Busy
      man's synthesis", DATE'17 — the baseline implementation of [17]).
    - {!fen}: fence enumeration with topological selection constraints
      (Haaswijk et al., TCAD'19 — [3]).
    - {!abc}: a CEGAR analogue of ABC's [lutexact]: simulation clauses
      are added lazily for counterexample minterms.

    All three return at most one chain — the paper contrasts this with
    the STP engine's all-solutions-in-one-pass.

    {!bms} and {!abc} default to {e incremental}: one long-lived CDCL
    solver per target, shared across the whole gate-budget sweep.
    Budget-independent clauses (gate semantics, operators, simulation)
    persist; each budget's closing constraints hang off a selector
    literal assumed during its solves and retired by a unit clause once
    the budget is refuted, so conflict clauses learnt refuting [r] gates
    keep pruning at [r + 1]. FEN can run the same way — each fence
    becomes an assumption set over the shared selection variables, and
    refuted assumption cores prune later fences — but its cold
    per-fence encodings are strictly smaller than the shared
    unrestricted instance, and the NPN4 A/B (see [bench --sat] and
    EXPERIMENTS.md) measures the shared solver as a net loss for fence
    enumeration, so {!fen} defaults to the cold engine. Pass
    [~incremental] explicitly to flip any engine onto the other path;
    [~incremental:false] recovers the historical cold engines (fresh
    solver and encoding per budget, and per fence for FEN) — the A/B
    baseline used by [bench --sat]. *)

val bms : ?incremental:bool -> ?options:Spec.options -> Stp_tt.Tt.t -> Spec.result

val fen : ?incremental:bool -> ?options:Spec.options -> Stp_tt.Tt.t -> Spec.result

val abc : ?incremental:bool -> ?options:Spec.options -> Stp_tt.Tt.t -> Spec.result

val all : (string * (?options:Spec.options -> Stp_tt.Tt.t -> Spec.result)) list
(** [("BMS", bms); ("FEN", fen); ("ABC", abc)]. *)

(** {1 Explicit-deadline outcomes}

    The same engines under a caller-supplied deadline
    ([options.timeout] is ignored), reporting the three-way outcome the
    unified {!Engine} API exposes: [`Infeasible] when every gate count
    up to [options.max_gates] is refuted, [`Timeout] when the deadline
    expired first. *)

type outcome = [ `Solved of Stp_chain.Chain.t list * int | `Timeout | `Infeasible ]

val bms_outcome :
  ?incremental:bool ->
  options:Spec.options -> deadline:Stp_util.Deadline.t -> Stp_tt.Tt.t -> outcome

val fen_outcome :
  ?incremental:bool ->
  options:Spec.options -> deadline:Stp_util.Deadline.t -> Stp_tt.Tt.t -> outcome

val abc_outcome :
  ?incremental:bool ->
  options:Spec.options -> deadline:Stp_util.Deadline.t -> Stp_tt.Tt.t -> outcome

val upper_bound : Stp_tt.Tt.t -> Stp_chain.Chain.t
(** A verified but non-optimal chain for any non-constant target, built
    by recursive Shannon expansion (constant-cofactor folds, single-gate
    base cases, shared subfunctions) over the full 2-LUT library —
    milliseconds even at 16 variables. The synthesis daemon returns this
    as the best-known upper bound when an exact engine's deadline
    expires.
    @raise Invalid_argument on constant targets. *)
