(** The paper's three comparison baselines (Section IV), all built on the
    in-repo CDCL solver:

    - {!bms}: the plain SAT-based exact-synthesis loop with the SSV
      encoding, one solver call per gate count (Soeken et al., "Busy
      man's synthesis", DATE'17 — the baseline implementation of [17]).
    - {!fen}: fence enumeration with topological selection constraints
      (Haaswijk et al., TCAD'19 — [3]).
    - {!abc}: a CEGAR analogue of ABC's [lutexact]: simulation clauses
      are added lazily for counterexample minterms.

    All three return at most one chain — the paper contrasts this with
    the STP engine's all-solutions-in-one-pass. *)

val bms : ?options:Spec.options -> Stp_tt.Tt.t -> Spec.result

val fen : ?options:Spec.options -> Stp_tt.Tt.t -> Spec.result

val abc : ?options:Spec.options -> Stp_tt.Tt.t -> Spec.result

val all : (string * (?options:Spec.options -> Stp_tt.Tt.t -> Spec.result)) list
(** [("BMS", bms); ("FEN", fen); ("ABC", abc)]. *)

(** {1 Explicit-deadline outcomes}

    The same engines under a caller-supplied deadline
    ([options.timeout] is ignored), reporting the three-way outcome the
    unified {!Engine} API exposes: [`Infeasible] when every gate count
    up to [options.max_gates] is refuted, [`Timeout] when the deadline
    expired first. *)

type outcome = [ `Solved of Stp_chain.Chain.t list * int | `Timeout | `Infeasible ]

val bms_outcome :
  options:Spec.options -> deadline:Stp_util.Deadline.t -> Stp_tt.Tt.t -> outcome

val fen_outcome :
  options:Spec.options -> deadline:Stp_util.Deadline.t -> Stp_tt.Tt.t -> outcome

val abc_outcome :
  options:Spec.options -> deadline:Stp_util.Deadline.t -> Stp_tt.Tt.t -> outcome

val upper_bound : Stp_tt.Tt.t -> Stp_chain.Chain.t
(** A verified but non-optimal chain for any non-constant target, built
    by recursive Shannon expansion (constant-cofactor folds, single-gate
    base cases, shared subfunctions) over the full 2-LUT library —
    milliseconds even at 16 variables. The synthesis daemon returns this
    as the best-known upper bound when an exact engine's deadline
    expires.
    @raise Invalid_argument on constant targets. *)
