(** The paper's three comparison baselines (Section IV), all built on the
    in-repo CDCL solver:

    - {!bms}: the plain SAT-based exact-synthesis loop with the SSV
      encoding, one solver call per gate count (Soeken et al., "Busy
      man's synthesis", DATE'17 — the baseline implementation of [17]).
    - {!fen}: fence enumeration with topological selection constraints
      (Haaswijk et al., TCAD'19 — [3]).
    - {!abc}: a CEGAR analogue of ABC's [lutexact]: simulation clauses
      are added lazily for counterexample minterms.

    All three return at most one chain — the paper contrasts this with
    the STP engine's all-solutions-in-one-pass. *)

val bms : ?options:Spec.options -> Stp_tt.Tt.t -> Spec.result

val fen : ?options:Spec.options -> Stp_tt.Tt.t -> Spec.result

val abc : ?options:Spec.options -> Stp_tt.Tt.t -> Spec.result

val all : (string * (?options:Spec.options -> Stp_tt.Tt.t -> Spec.result)) list
(** [("BMS", bms); ("FEN", fen); ("ABC", abc)]. *)
