(** Common types for the exact-synthesis engines. *)

type status =
  | Solved
  | Timeout  (** the per-instance deadline expired before an answer *)

type result = {
  status : status;
  chains : Stp_chain.Chain.t list;
    (** all optimum chains for the STP engine, at most one for the
        CNF-based baselines; empty on timeout *)
  gates : int option; (** optimum gate count when solved *)
  elapsed : float;    (** wall-clock seconds *)
}

type options = {
  timeout : float option; (** per-instance wall-clock budget, seconds *)
  max_gates : int;        (** give up beyond this size (safety net) *)
  solution_cap : int;     (** cap on the number of chains collected *)
  all_shapes : bool;
    (** [false] (paper semantics): return all optimum chains of the
        first DAG topology that realises the target — "all optimal
        solutions under the current constraints in one pass".
        [true]: sweep every shape of the optimum gate count. *)
  use_dsd : bool;
    (** Peel disjoint-support decompositions before the topology search:
        a target [f = phi(g(A), h(B))] with disjoint [A], [B] is
        synthesised as optimum sub-chains joined by [phi], so the shape
        enumeration only ever runs on prime blocks. Gate-count
        optimality under this switch assumes disjoint decompositions
        compose additively, which the test suite cross-checks against
        the CNF baselines on every collection. *)
  basis : Stp_chain.Gate.code list option;
    (** Restrict the gate library, e.g. the AND class
        [[1; 2; 4; 7; 8; 11; 13; 14]] for AIG-style synthesis or
        [[8; 14; 6; 9; 7; 1]] for an AND/OR/XOR library. [None] allows
        all ten nontrivial 2-input gates. For identical optima across
        the STP engine and the CNF baselines the basis should be closed
        under operand swap and input/output complementation. *)
  max_depth : int option;
    (** Bound the logic depth: only topologies of at most this many
        levels are searched (every engine routes through the fence
        family for this, so the returned chain is size-optimal among
        chains respecting the bound). Disables DSD peeling in the STP
        engine, whose compositions do not control depth. *)
}

val default_options : options
(** No timeout, [max_gates = 14], [solution_cap = 2000],
    [all_shapes = false]. *)

val with_timeout : float -> options

val deadline_of : options -> Stp_util.Deadline.t

val solved : chains:Stp_chain.Chain.t list -> gates:int -> elapsed:float -> result

val timed_out : elapsed:float -> result
