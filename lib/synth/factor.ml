module Tt = Stp_tt.Tt
module Tmat = Stp_matrix.Tmat
module Kern = Stp_matrix.Kern
module K = Stp_matrix.Kern.Ops
module Gate = Stp_chain.Gate
module Chain = Stp_chain.Chain
module Dag = Stp_topology.Dag
module Profile = Stp_util.Profile

type triple = { phi : Gate.code; g : Tt.t; h : Tt.t }

(* A realisation of a target inside an independent (tree) subtree: gate
   codes and leaf variables listed in the subtree's pre-order. *)
type fragment = { frag_gates : int array; frag_leaves : int array }

(* Feasibility keys: the NPN-canonical representative for small supports
   (an int from the canon4 table), the compacted table otherwise. *)
type feas_key = K4 of int | Kraw of Tt.t

(* Memo tables are keyed through explicit structural equality and the
   truth tables' own 64-bit mixing hashes — the generic polymorphic
   hash walked every boxed int64 of every Tt.t on each of the millions
   of lookups a collection run performs. *)

let mix_int acc h = (((acc lsl 5) + acc) lxor h) land max_int

module FactKey = struct
  type t = Tt.t * Tt.t option * Tt.t option * int * int

  let equal (t1, g1, h1, a1, b1) (t2, g2, h2, a2, b2) =
    a1 = a2 && b1 = b2 && Tt.equal t1 t2
    && Option.equal Tt.equal g1 g2
    && Option.equal Tt.equal h1 h2

  let hash (t, g, h, a, b) =
    let opt = function None -> 0x9e3779b9 | Some x -> Tt.hash x in
    mix_int (mix_int (mix_int (mix_int (Tt.hash t) (opt g)) (opt h)) a) b
end

module FactTbl = Hashtbl.Make (FactKey)

module FeasKey = struct
  type t = feas_key * int

  let equal (k1, b1) (k2, b2) =
    b1 = b2
    && (match (k1, k2) with
       | K4 c1, K4 c2 -> c1 = c2
       | Kraw t1, Kraw t2 -> Tt.equal t1 t2
       | (K4 _ | Kraw _), _ -> false)

  let hash (k, b) =
    mix_int (match k with K4 c -> (c lsl 1) lor 1 | Kraw t -> Tt.hash t lsl 1) b
end

module FeasTbl = Hashtbl.Make (FeasKey)

module RealKey = struct
  type t = string * Tt.t

  let equal (s1, t1) (s2, t2) = String.equal s1 s2 && Tt.equal t1 t2

  let hash (s, t) = mix_int (Hashtbl.hash s) (Tt.hash t)
end

module RealTbl = Hashtbl.Make (RealKey)

module TtTbl = Hashtbl.Make (struct
  type t = Tt.t

  let equal = Tt.equal
  let hash = Tt.hash
end)

module KeyTbl = Hashtbl.Make (struct
  type t = feas_key

  let equal k1 k2 =
    match (k1, k2) with
    | K4 c1, K4 c2 -> c1 = c2
    | Kraw t1, Kraw t2 -> Tt.equal t1 t2
    | (K4 _ | Kraw _), _ -> false

  let hash = function
    | K4 c -> ((c lsl 1) lor 1) land max_int
    | Kraw t -> (Tt.hash t lsl 1) land max_int
end)

module QuadTbl = Hashtbl.Make (struct
  type t = int * int * int * int

  let equal (a1, b1, c1, d1) (a2, b2, c2, d2) =
    a1 = a2 && b1 = b2 && c1 = c2 && d1 = d2

  let hash (a, b, c, d) = mix_int (mix_int (mix_int a b) c) d
end)

(* Learned cover knowledge: which factorisation triples of a cover
   survive the solver's bind filters, given the capability signatures of
   the two child slots. The bind outcome of an unconstrained slot is a
   pure function of (subfunction, slot capability), so survivors learned
   at one DAG node prune the same cover at every sibling topology whose
   slots have the same capabilities. *)
module LearnKey = struct
  type t = Tt.t * int * int * int * int

  let equal (t1, a1, b1, ca1, cb1) (t2, a2, b2, ca2, cb2) =
    a1 = a2 && b1 = b2 && ca1 = ca2 && cb1 = cb2 && Tt.equal t1 t2

  let hash (t, a, b, ca, cb) =
    mix_int (mix_int (mix_int (mix_int (Tt.hash t) a) b) ca) cb
end

module LearnTbl = Hashtbl.Make (LearnKey)

module QKey = struct
  type t = Tt.t * int

  let equal (t1, g1) (t2, g2) = g1 = g2 && Tt.equal t1 t2
  let hash (t, g) = mix_int (Tt.hash t) g
end

module QTbl = Hashtbl.Make (QKey)

(* Resolved knowledge about the minimal tree-leaf count of a function
   class: either the exact minimum, or a bound below which every budget
   has been refuted. [tree_ok] is monotone in the budget, so both facts
   transfer to any later query. *)
type leaves_bound = Exact of int | Refuted_to of int

type memo = {
  factorisations : triple list FactTbl.t;
  feasibility : bool FeasTbl.t;
      (* (target, leaf budget) -> some tree within budget realises it *)
  min_leaves : leaves_bound KeyTbl.t;
  realisations : fragment list RealTbl.t;
  key_cache : feas_key TtTbl.t;
  covers_cache : (int * int) list QuadTbl.t;
  learned : int array LearnTbl.t;
      (* (target, amask, bmask, child capabilities) -> sorted indices of
         the factorisation triples surviving the bind filters; [||] is a
         learned refutation of the whole cover *)
  quarters : int QTbl.t;
      (* (target, group mask) -> capped distinct-block count *)
  basis : int; (* bitmask over the 16 gate codes the engine may use *)
}

let full_basis =
  List.fold_left (fun m g -> m lor (1 lsl g)) 0 Gate.nontrivial

let create_memo ?basis () : memo =
  let basis =
    match basis with
    | None -> full_basis
    | Some gates ->
      let m =
        List.fold_left
          (fun m g ->
            if g < 0 || g > 15 then invalid_arg "Factor.create_memo: basis";
            m lor (1 lsl g))
          0 gates
      in
      (* degenerate codes never appear in optimal chains; mask them out *)
      m land full_basis
  in
  if basis = 0 then invalid_arg "Factor.create_memo: empty basis";
  { factorisations = FactTbl.create 997;
    feasibility = FeasTbl.create 997;
    min_leaves = KeyTbl.create 997;
    realisations = RealTbl.create 997;
    key_cache = TtTbl.create 997;
    covers_cache = QuadTbl.create 997;
    learned = LearnTbl.create 997;
    quarters = QTbl.create 997;
    basis }

type stats = {
  mutable decompose_calls : int;
  mutable shapes_tried : int;
  mutable candidates_emitted : int;
  mutable feasibility_checks : int;
  mutable truncated : bool;
}

let fresh_stats () =
  { decompose_calls = 0; shapes_tried = 0; candidates_emitted = 0;
    feasibility_checks = 0; truncated = false }

(* Hard cap on the factorisations enumerated per (target, A, B): fully
   entangled DAG shapes otherwise admit astronomically many block-value
   completions. Hitting the cap is recorded in [stats.truncated]; it
   marks the rare runs whose all-solutions set (not correctness) may be
   incomplete. *)
let decompose_cap = 4096

let vars_of_mask mask n =
  let rec loop i acc =
    if i < 0 then acc
    else loop (i - 1) (if (mask lsr i) land 1 = 1 then i :: acc else acc)
  in
  loop (n - 1) []

let lowest_bit_index x =
  let rec go x i = if x land 1 = 1 then i else go (x lsr 1) (i + 1) in
  go x 0

(* Reusable per-domain scratch arena for the packed and multi-word
   decompose paths: block-constraint tables, indicator words, the
   int-encoded undo trail and the multi-word row/state/trail buffers.
   Backtracking touches only these preallocated buffers, so the
   enumeration itself performs no allocation and no reallocation on
   undo. Sizes cover the path bounds (packed: sides of at most 5
   variables; multi-word: sides of at most 7 variables, targets of at
   most 12). *)
type scratch = {
  bm_a : int array;
  tv_a : int array;
  am_b : int array;
  tv_b : int array;
  ind1_a : int64 array;
  ind1_b : int64 array;
  trail1 : int array; (* entry = (mask lsl 1) lor is_a *)
  outw1 : int64 array;
  rows_a : Bytes.t; (* per A class: [valid | target-value], wB words each *)
  rows_b : Bytes.t;
  mind_a : Bytes.t; (* per-class indicator rows, tw words each *)
  mind_b : Bytes.t;
  mst : Bytes.t; (* value/assignedness planes for both sides *)
  mnewly : Bytes.t;
  mout : Bytes.t;
  mtrail : Bytes.t; (* undo masks, one wmax-word entry per step *)
  tside : int array;
  pend_a : int array;
  pend_b : int array;
}

let alloc_scratch () =
  { bm_a = Array.make 32 0;
    tv_a = Array.make 32 0;
    am_b = Array.make 32 0;
    tv_b = Array.make 32 0;
    ind1_a = Array.make 32 0L;
    ind1_b = Array.make 32 0L;
    trail1 = Array.make 160 0;
    outw1 = Array.make 1 0L;
    rows_a = Bytes.make (512 * 8) '\000';
    rows_b = Bytes.make (512 * 8) '\000';
    mind_a = Bytes.make (8192 * 8) '\000';
    mind_b = Bytes.make (8192 * 8) '\000';
    mst = Bytes.make (8 * 8) '\000';
    mnewly = Bytes.make (2 * 8) '\000';
    mout = Bytes.make (64 * 8) '\000';
    mtrail = Bytes.make (512 * 8) '\000';
    tside = Array.make 256 0;
    pend_a = Array.make 256 0;
    pend_b = Array.make 256 0 }

let scratch_key : scratch option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let get_scratch () =
  let slot = Domain.DLS.get scratch_key in
  match !slot with
  | Some s ->
    Profile.incr Profile.Arena_reuses;
    s
  | None ->
    let s = alloc_scratch () in
    slot := Some s;
    s

exception Fail

(* All factorisations target = phi(g over A, h over B).  The unknowns are
   the block values g(alpha), h(beta); every joint assignment of the
   A-union-B variables contributes the constraint
   phi(g(alpha), h(beta)) = target(assignment).  Unconstrained block
   values are the paper's don't-care entries 'x' (Property 3): the
   enumeration branches on them, yielding distinct solutions. *)
let decompose_uncached ?memo ?g_fixed ?h_fixed ~allowed ~path ~cap ~target
    ~amask ~bmask () =
  let n = Tt.num_vars target in
  let smask = Tt.support_mask target in
  if smask land lnot (amask lor bmask) <> 0 then []
  else begin
    let avars = Array.of_list (vars_of_mask amask n) in
    let bvars = Array.of_list (vars_of_mask bmask n) in
    let uvars = Array.of_list (vars_of_mask (amask lor bmask) n) in
    let na = Array.length avars
    and nb = Array.length bvars
    and nu = Array.length uvars in
    if na = 0 || nb = 0 then []
    else begin
      (* Position of each A/B variable within the U index. *)
      let upos = Array.make n (-1) in
      Array.iteri (fun j v -> upos.(v) <- j) uvars;
      let asel = Array.map (fun v -> upos.(v)) avars in
      let bsel = Array.map (fun v -> upos.(v)) bvars in
      let gather sel ui =
        let x = ref 0 in
        Array.iteri (fun j p -> if (ui lsr p) land 1 = 1 then x := !x lor (1 lsl j)) sel;
        !x
      in
      (* Disjoint covers admit the paper's quartering test: grouping the
         minterms by either side's assignment must leave exactly two
         distinct blocks. Exactly two is necessary on BOTH sides: the
         engine only emits non-degenerate gates over non-constant
         factors, so every solution's blocks take precisely two values
         over the A classes and two over the B classes. The packed
         kernels compare whole blocks word-parallel. *)
      let distinct2 group =
        (* The capped distinct-block count recurs across the B masks and
           fixed-side variants of the same (target, group) pair; memo
           runs answer it from the quarter cache. *)
        match memo with
        | None -> Tmat.distinct_blocks (Tmat.of_tt target) ~group
        | Some m -> (
          match QTbl.find m.quarters (target, group) with
          | c ->
            Profile.incr Profile.Quarter_cache_hits;
            c
          | exception Not_found ->
            let c = Tmat.distinct_blocks (Tmat.of_tt target) ~group in
            QTbl.replace m.quarters (target, group) c;
            c)
      in
      let quick_reject =
        amask land bmask = 0
        && (Profile.incr Profile.Quarter_tests;
            true)
        && (distinct2 amask <> 2 || distinct2 bmask <> 2)
      in
      if quick_reject then begin
        Profile.incr Profile.Quarter_rejects;
        []
      end
      else
        let use_packed = na <= 5 && nb <= 5 && n <= 6 in
        let use_multi = na <= 7 && nb <= 7 && n <= 12 in
        let chosen =
          match path with
          | `Auto ->
            if use_packed then `Packed
            else if use_multi then `Multiword
            else `List
          | `Packed ->
            if use_packed then `Packed
            else invalid_arg "Factor.decompose: packed path inapplicable"
          | `Multiword ->
            if use_multi then `Multiword
            else invalid_arg "Factor.decompose: multiword path inapplicable"
          | `List -> `List
        in
        if chosen = `Packed then begin
        (* Packed path: each side's block values fit one machine word
           (bit [alpha] of [ga_val]/[ga_care] is class alpha's value and
           assignedness). Propagation computes whole masks of forced
           partner classes per step, and factors are assembled by OR-ing
           per-class indicator words instead of tabulating 2^n closures.
           The search visits the same tree in the same order as the
           list-based solver below, so caps cut the same deterministic
           prefix and memo contents are engine-independent. *)
        let wa = 1 lsl na and wb = 1 lsl nb in
        let full_a = (1 lsl wa) - 1 and full_b = (1 lsl wb) - 1 in
        let s = get_scratch () in
        (* Per A class alpha: the B classes jointly reachable with it
           ([bm_a]) and, among those, the ones whose shared assignment
           makes the target true ([tv_a]); [am_b]/[tv_b] transposed. *)
        let bm_a = s.bm_a and tv_a = s.tv_a in
        let am_b = s.am_b and tv_b = s.tv_b in
        for i = 0 to wa - 1 do
          bm_a.(i) <- 0;
          tv_a.(i) <- 0
        done;
        for i = 0 to wb - 1 do
          am_b.(i) <- 0;
          tv_b.(i) <- 0
        done;
        for ui = 0 to (1 lsl nu) - 1 do
          let m = ref 0 in
          Array.iteri
            (fun j v -> if (ui lsr j) land 1 = 1 then m := !m lor (1 lsl v))
            uvars;
          let alpha = gather asel ui and beta = gather bsel ui in
          bm_a.(alpha) <- bm_a.(alpha) lor (1 lsl beta);
          am_b.(beta) <- am_b.(beta) lor (1 lsl alpha);
          if Tt.get target !m then begin
            tv_a.(alpha) <- tv_a.(alpha) lor (1 lsl beta);
            tv_b.(beta) <- tv_b.(beta) lor (1 lsl alpha)
          end
        done;
        (* Indicator word of "the side's variables spell class [code]". *)
        let word_mask =
          if n = 6 then -1L else Int64.sub (Int64.shift_left 1L (1 lsl n)) 1L
        in
        let fill_ind ind vars w =
          for code = 0 to w - 1 do
            let acc = ref word_mask in
            Array.iteri
              (fun j v ->
                let p = Kern.word_of_var ~n ~v ~k:0 in
                acc :=
                  Int64.logand !acc
                    (if (code lsr j) land 1 = 1 then p else Int64.lognot p))
              vars;
            ind.(code) <- !acc
          done
        in
        fill_ind s.ind1_a avars wa;
        fill_ind s.ind1_b bvars wb;
        let ind_a = s.ind1_a and ind_b = s.ind1_b in
        let seed_row vars w fixed =
          match fixed with
          | None -> (0, 0)
          | Some f ->
            let value = ref 0 in
            for code = 0 to w - 1 do
              let m = ref 0 in
              Array.iteri
                (fun j v -> if (code lsr j) land 1 = 1 then m := !m lor (1 lsl v))
                vars;
              if Tt.get f !m then value := !value lor (1 lsl code)
            done;
            (!value, (1 lsl w) - 1)
        in
        let results = ref [] in
        let count = ref 0 in
        let solve_phi phi =
          let bit a b = (phi lsr ((2 * a) + b)) land 1 in
          let sv_a, sc_a = seed_row avars wa g_fixed in
          let sv_b, sc_b = seed_row bvars wb h_fixed in
          let ga_val = ref sv_a and ga_care = ref sc_a in
          let hb_val = ref sv_b and hb_care = ref sc_b in
          let pending_a = ref sc_a and pending_b = ref sc_b in
          let tlen = ref 0 in
          let push is_a mask =
            s.trail1.(!tlen) <- (mask lsl 1) lor (if is_a then 1 else 0);
            incr tlen
          in
          (* Consequences of A class [idx] being assigned: over its valid
             partner classes, a partner value is forced wherever only one
             gate input makes phi meet the target. *)
          let force_from_a idx =
            let v = (!ga_val lsr idx) land 1 in
            let tv = tv_a.(idx) and valid = bm_a.(idx) in
            let ok0 = if bit v 0 = 1 then tv else lnot tv in
            let ok1 = if bit v 1 = 1 then tv else lnot tv in
            if valid land lnot (ok0 lor ok1) <> 0 then raise Fail;
            let forced0 = valid land ok0 land lnot ok1 in
            let forced1 = valid land ok1 land lnot ok0 in
            if forced0 land !hb_care land !hb_val <> 0 then raise Fail;
            if forced1 land !hb_care land lnot !hb_val <> 0 then raise Fail;
            let newly = (forced0 lor forced1) land lnot !hb_care in
            if newly <> 0 then begin
              hb_care := !hb_care lor newly;
              hb_val := !hb_val lor (forced1 land newly);
              push false newly;
              pending_b := !pending_b lor newly
            end
          in
          let force_from_b idx =
            let v = (!hb_val lsr idx) land 1 in
            let tv = tv_b.(idx) and valid = am_b.(idx) in
            let ok0 = if bit 0 v = 1 then tv else lnot tv in
            let ok1 = if bit 1 v = 1 then tv else lnot tv in
            if valid land lnot (ok0 lor ok1) <> 0 then raise Fail;
            let forced0 = valid land ok0 land lnot ok1 in
            let forced1 = valid land ok1 land lnot ok0 in
            if forced0 land !ga_care land !ga_val <> 0 then raise Fail;
            if forced1 land !ga_care land lnot !ga_val <> 0 then raise Fail;
            let newly = (forced0 lor forced1) land lnot !ga_care in
            if newly <> 0 then begin
              ga_care := !ga_care lor newly;
              ga_val := !ga_val lor (forced1 land newly);
              push true newly;
              pending_a := !pending_a lor newly
            end
          in
          let rec drain () =
            if !pending_a <> 0 then begin
              let idx = lowest_bit_index !pending_a in
              pending_a := !pending_a land (!pending_a - 1);
              force_from_a idx;
              drain ()
            end
            else if !pending_b <> 0 then begin
              let idx = lowest_bit_index !pending_b in
              pending_b := !pending_b land (!pending_b - 1);
              force_from_b idx;
              drain ()
            end
          in
          let set is_a idx v =
            let b = 1 lsl idx in
            if is_a then begin
              ga_care := !ga_care lor b;
              if v = 1 then ga_val := !ga_val lor b;
              push true b;
              pending_a := !pending_a lor b
            end
            else begin
              hb_care := !hb_care lor b;
              if v = 1 then hb_val := !hb_val lor b;
              push false b;
              pending_b := !pending_b lor b
            end;
            drain ()
          in
          (* Pending masks are always fully drained before a branch, so
             clearing them wholesale on rollback is exact. *)
          let rollback mark =
            pending_a := 0;
            pending_b := 0;
            while !tlen > mark do
              decr tlen;
              let e = s.trail1.(!tlen) in
              let is_a = e land 1 = 1 and mask = e lsr 1 in
              if is_a then begin
                ga_care := !ga_care land lnot mask;
                ga_val := !ga_val land lnot mask
              end
              else begin
                hb_care := !hb_care land lnot mask;
                hb_val := !hb_val land lnot mask
              end
            done
          in
          let assemble w ind row =
            let acc = ref 0L in
            for code = 0 to w - 1 do
              if (row lsr code) land 1 = 1 then
                acc := Int64.logor !acc ind.(code)
            done;
            s.outw1.(0) <- !acc;
            Tt.of_words n s.outw1
          in
          let emit () =
            (* Reject constant factors. *)
            if
              not
                (!ga_val = 0 || !ga_val = full_a || !hb_val = 0
               || !hb_val = full_b)
            then begin
              results :=
                { phi;
                  g = assemble wa ind_a !ga_val;
                  h = assemble wb ind_b !hb_val }
                :: !results;
              incr count
            end
          in
          let rec search () =
            if !count >= cap then ()
            else begin
              let una = full_a land lnot !ga_care in
              let unb = full_b land lnot !hb_care in
              if una = 0 && unb = 0 then emit ()
              else begin
                let is_a = una <> 0 in
                let idx = lowest_bit_index (if is_a then una else unb) in
                let mark = !tlen in
                (try
                   set is_a idx 0;
                   search ()
                 with Fail -> ());
                rollback mark;
                if !count < cap then begin
                  try
                    set is_a idx 1;
                    search ()
                  with Fail -> ()
                end;
                rollback mark
              end
            end
          in
          match drain () with
          | () -> search ()
          | exception Fail -> ()
        in
        List.iter
          (fun phi ->
            if (allowed lsr phi) land 1 = 1 && !count < cap then solve_phi phi)
          Gate.nontrivial;
        List.rev !results
      end
      else if chosen = `Multiword then begin
        (* Multi-word path: the same propagation search as the packed
           engine, generalised past one machine word per side through
           the {!Stp_matrix.Kern} kernels. Each side's block values and
           assignedness live in flat word planes; one kernel call per
           propagation step computes the whole mask of newly forced
           partner classes, trail entries are word masks undone by the
           undo kernel, and factors are assembled by OR-ing per-class
           multi-word indicator rows. The branch structure (lowest
           unassigned A class first, value 0 then 1) is identical to the
           packed path, so the enumeration order is too. *)
        Profile.incr Profile.Multiword_decomposes;
        let s = get_scratch () in
        let kc = ref 0 in
        let wa = 1 lsl na and wb = 1 lsl nb in
        let wA = (wa + 63) lsr 6 and wB = (wb + 63) lsr 6 in
        let wmax = if wA > wB then wA else wB in
        let tw = if n <= 6 then 1 else 1 lsl (n - 6) in
        let set_bit b woff bit =
          let k = (woff + (bit lsr 6)) lsl 3 in
          Bytes.set_int64_ne b k
            (Int64.logor (Bytes.get_int64_ne b k)
               (Int64.shift_left 1L (bit land 63)))
        in
        let get_bit b woff bit =
          Int64.to_int
            (Int64.shift_right_logical
               (Bytes.get_int64_ne b ((woff + (bit lsr 6)) lsl 3))
               (bit land 63))
          land 1
        in
        Bytes.fill s.rows_a 0 (wa * 2 * wB * 8) '\000';
        Bytes.fill s.rows_b 0 (wb * 2 * wA * 8) '\000';
        for ui = 0 to (1 lsl nu) - 1 do
          let m = ref 0 in
          Array.iteri
            (fun j v -> if (ui lsr j) land 1 = 1 then m := !m lor (1 lsl v))
            uvars;
          let alpha = gather asel ui and beta = gather bsel ui in
          set_bit s.rows_a (alpha * 2 * wB) beta;
          set_bit s.rows_b (beta * 2 * wA) alpha;
          if Tt.get target !m then begin
            set_bit s.rows_a ((alpha * 2 * wB) + wB) beta;
            set_bit s.rows_b ((beta * 2 * wA) + wA) alpha
          end
        done;
        let word_mask =
          if n >= 6 then -1L else Int64.sub (Int64.shift_left 1L (1 lsl n)) 1L
        in
        let fill_ind ind vars w =
          for code = 0 to w - 1 do
            for k = 0 to tw - 1 do
              let acc = ref word_mask in
              Array.iteri
                (fun j v ->
                  let p = Kern.word_of_var ~n ~v ~k in
                  acc :=
                    Int64.logand !acc
                      (if (code lsr j) land 1 = 1 then p else Int64.lognot p))
                vars;
              Bytes.set_int64_ne ind (((code * tw) + k) lsl 3) !acc
            done
          done
        in
        fill_ind s.mind_a avars wa;
        fill_ind s.mind_b bvars wb;
        (* State plane layout in [s.mst], in words: [0,wA) g values,
           [wA,2wA) g assignedness, then the same two planes for h. *)
        let aval = 0 and acare = wA in
        let bval = 2 * wA and bcare = (2 * wA) + wB in
        let out_arr = Array.make tw 0L in
        let results = ref [] in
        let count = ref 0 in
        let pa_len = ref 0 and pb_len = ref 0 and tlen = ref 0 in
        let push_pend to_a idx =
          if to_a then begin
            s.pend_a.(!pa_len) <- idx;
            incr pa_len
          end
          else begin
            s.pend_b.(!pb_len) <- idx;
            incr pb_len
          end
        in
        let record_newly to_a w =
          let base = !tlen * wmax in
          for k = 0 to wmax - 1 do
            let x =
              if k < w then Bytes.get_int64_ne s.mnewly (k lsl 3) else 0L
            in
            Bytes.set_int64_ne s.mtrail ((base + k) lsl 3) x;
            if k < w then begin
              let scan bit0 v =
                let v = ref v in
                while !v <> 0 do
                  push_pend to_a (bit0 + lowest_bit_index !v);
                  v := !v land (!v - 1)
                done
              in
              scan (k * 64) (Int64.to_int (Int64.logand x 0xFFFFFFFFL));
              scan
                ((k * 64) + 32)
                (Int64.to_int (Int64.shift_right_logical x 32))
            end
          done;
          s.tside.(!tlen) <- (if to_a then 1 else 0);
          incr tlen
        in
        let solve_phi phi =
          let bit a b = (phi lsr ((2 * a) + b)) land 1 in
          Bytes.fill s.mst 0 (2 * (wA + wB) * 8) '\000';
          pa_len := 0;
          pb_len := 0;
          tlen := 0;
          let seed vars w voff coff to_a fixed =
            match fixed with
            | None -> ()
            | Some f ->
              for code = 0 to w - 1 do
                let m = ref 0 in
                Array.iteri
                  (fun j v ->
                    if (code lsr j) land 1 = 1 then m := !m lor (1 lsl v))
                  vars;
                set_bit s.mst coff code;
                if Tt.get f !m then set_bit s.mst voff code;
                push_pend to_a code
              done
          in
          seed avars wa aval acare true g_fixed;
          seed bvars wb bval bcare false h_fixed;
          let force_from_a idx =
            let v = get_bit s.mst aval idx in
            incr kc;
            let r =
              K.force s.rows_a (idx * 2 * wB) s.mst bval bcare s.mnewly 0 wB
                (bit v 0) (bit v 1)
            in
            if r < 0 then raise Fail;
            if r > 0 then record_newly false wB
          in
          let force_from_b idx =
            let v = get_bit s.mst bval idx in
            incr kc;
            let r =
              K.force s.rows_b (idx * 2 * wA) s.mst aval acare s.mnewly 0 wA
                (bit 0 v) (bit 1 v)
            in
            if r < 0 then raise Fail;
            if r > 0 then record_newly true wA
          in
          (* LIFO pending stacks instead of the packed path's
             lowest-bit-first masks: unit propagation here is confluent,
             so the drained closure — and with it every branch decision
             — is order-independent. *)
          let rec drain () =
            if !pa_len > 0 then begin
              decr pa_len;
              force_from_a s.pend_a.(!pa_len);
              drain ()
            end
            else if !pb_len > 0 then begin
              decr pb_len;
              force_from_b s.pend_b.(!pb_len);
              drain ()
            end
          in
          let set is_a idx v =
            let base = !tlen * wmax in
            for k = 0 to wmax - 1 do
              Bytes.set_int64_ne s.mtrail ((base + k) lsl 3) 0L
            done;
            Bytes.set_int64_ne s.mtrail
              ((base + (idx lsr 6)) lsl 3)
              (Int64.shift_left 1L (idx land 63));
            s.tside.(!tlen) <- (if is_a then 1 else 0);
            incr tlen;
            if is_a then begin
              set_bit s.mst acare idx;
              if v = 1 then set_bit s.mst aval idx
            end
            else begin
              set_bit s.mst bcare idx;
              if v = 1 then set_bit s.mst bval idx
            end;
            push_pend is_a idx;
            drain ()
          in
          let rollback mark =
            pa_len := 0;
            pb_len := 0;
            while !tlen > mark do
              decr tlen;
              incr kc;
              let base = !tlen * wmax in
              if s.tside.(!tlen) = 1 then
                K.undo s.mst aval acare s.mtrail base wA
              else K.undo s.mst bval bcare s.mtrail base wB
            done
          in
          let emit () =
            kc := !kc + 2;
            if
              not
                (K.is_const_row s.mst aval wa || K.is_const_row s.mst bval wb)
            then begin
              kc := !kc + 2;
              K.assemble s.mind_a 0 s.mst aval wa tw s.mout 0;
              for k = 0 to tw - 1 do
                out_arr.(k) <- Bytes.get_int64_ne s.mout (k lsl 3)
              done;
              let g = Tt.of_words n out_arr in
              K.assemble s.mind_b 0 s.mst bval wb tw s.mout 0;
              for k = 0 to tw - 1 do
                out_arr.(k) <- Bytes.get_int64_ne s.mout (k lsl 3)
              done;
              let h = Tt.of_words n out_arr in
              results := { phi; g; h } :: !results;
              incr count
            end
          in
          let rec search () =
            if !count < cap then begin
              incr kc;
              let ia = K.first_unset s.mst acare wa in
              let is_a = ia >= 0 in
              let idx =
                if is_a then ia
                else begin
                  incr kc;
                  K.first_unset s.mst bcare wb
                end
              in
              if idx < 0 then emit ()
              else begin
                let mark = !tlen in
                (try
                   set is_a idx 0;
                   search ()
                 with Fail -> ());
                rollback mark;
                if !count < cap then begin
                  try
                    set is_a idx 1;
                    search ()
                  with Fail -> ()
                end;
                rollback mark
              end
            end
          in
          match drain () with () -> search () | exception Fail -> ()
        in
        List.iter
          (fun phi ->
            if (allowed lsr phi) land 1 = 1 && !count < cap then solve_phi phi)
          Gate.nontrivial;
        Profile.add Profile.Multiword_kernel_calls !kc;
        List.rev !results
      end
      else begin
      (* Constraints: per (alpha, beta) the required target value. *)
      let a_cons = Array.make (1 lsl na) [] in
      let b_cons = Array.make (1 lsl nb) [] in
      for ui = 0 to (1 lsl nu) - 1 do
        let m = ref 0 in
        Array.iteri
          (fun j v -> if (ui lsr j) land 1 = 1 then m := !m lor (1 lsl v))
          uvars;
        let v = Tt.get target !m in
        let alpha = gather asel ui and beta = gather bsel ui in
        a_cons.(alpha) <- (beta, v) :: a_cons.(alpha);
        b_cons.(beta) <- (alpha, v) :: b_cons.(beta)
      done;
      let results = ref [] in
      let count = ref 0 in
      let solve_phi phi =
        let bit a b = (phi lsr ((2 * a) + b)) land 1 in
        let ga = Array.make (1 lsl na) (-1) in
        let hb = Array.make (1 lsl nb) (-1) in
        let trail = Stp_util.Vec.create ~dummy:(true, 0) () in
        (* Pre-assigned sides (shared DAG children whose function is
           already bound) seed the block values before the search. *)
        let seed arr sel fixed =
          match fixed with
          | None -> ()
          | Some f ->
            Array.iteri
              (fun idx _ ->
                (* idx enumerates the side's classes; rebuild the minterm *)
                ignore idx)
              arr;
            for ci = 0 to Array.length arr - 1 do
              let m = ref 0 in
              Array.iteri
                (fun j p ->
                  ignore p;
                  if (ci lsr j) land 1 = 1 then
                    m := !m lor (1 lsl (if sel == asel then avars.(j) else bvars.(j))))
                sel;
              arr.(ci) <- (if Tt.get f !m then 1 else 0)
            done
        in
        seed ga asel g_fixed;
        seed hb bsel h_fixed;
        let rec set_a alpha v =
          if ga.(alpha) = -1 then begin
            ga.(alpha) <- v;
            Stp_util.Vec.push trail (true, alpha);
            List.iter
              (fun (beta, tv) ->
                (* allowed b values under phi(v, b) = tv *)
                let b0 = bit v 0 = Bool.to_int tv and b1 = bit v 1 = Bool.to_int tv in
                match (b0, b1) with
                | true, true -> ()
                | true, false -> set_b beta 0
                | false, true -> set_b beta 1
                | false, false -> raise Fail)
              a_cons.(alpha)
          end
          else if ga.(alpha) <> v then raise Fail
        and set_b beta v =
          if hb.(beta) = -1 then begin
            hb.(beta) <- v;
            Stp_util.Vec.push trail (false, beta);
            List.iter
              (fun (alpha, tv) ->
                let a0 = bit 0 v = Bool.to_int tv and a1 = bit 1 v = Bool.to_int tv in
                match (a0, a1) with
                | true, true -> ()
                | true, false -> set_a alpha 0
                | false, true -> set_a alpha 1
                | false, false -> raise Fail)
              b_cons.(beta)
          end
          else if hb.(beta) <> v then raise Fail
        in
        let rollback mark =
          while Stp_util.Vec.length trail > mark do
            let is_a, idx = Stp_util.Vec.pop trail in
            if is_a then ga.(idx) <- -1 else hb.(idx) <- -1
          done
        in
        let gather_minterm m =
          (* Repack a full minterm into the U index. *)
          let x = ref 0 in
          Array.iteri
            (fun j v -> if (m lsr v) land 1 = 1 then x := !x lor (1 lsl j))
            uvars;
          !x
        in
        let emit () =
          (* Reject constant factors. *)
          let const arr =
            let v0 = arr.(0) in
            Array.for_all (fun v -> v = v0) arr
          in
          if not (const ga || const hb) then begin
            let g =
              Tt.of_fun n (fun m -> ga.(gather asel (gather_minterm m)) = 1)
            and h =
              Tt.of_fun n (fun m -> hb.(gather bsel (gather_minterm m)) = 1)
            in
            results := { phi; g; h } :: !results;
            incr count
          end
        in
        let seeded_consistent () =
          (* Every constrained pair with both sides seeded must satisfy
             phi; pairs with one seeded side propagate through the
             regular search. *)
          try
            Array.iteri
              (fun alpha cons ->
                if ga.(alpha) >= 0 then
                  List.iter
                    (fun (beta, tv) ->
                      if hb.(beta) >= 0 then begin
                        if (bit ga.(alpha) hb.(beta) = 1) <> tv then raise Fail
                      end
                      else begin
                        let v = ga.(alpha) in
                        let b0 = bit v 0 = Bool.to_int tv
                        and b1 = bit v 1 = Bool.to_int tv in
                        match (b0, b1) with
                        | true, true -> ()
                        | true, false -> set_b beta 0
                        | false, true -> set_b beta 1
                        | false, false -> raise Fail
                      end)
                    cons)
              a_cons;
            Array.iteri
              (fun beta cons ->
                if hb.(beta) >= 0 then
                  List.iter
                    (fun (alpha, tv) ->
                      if ga.(alpha) < 0 then begin
                        let v = hb.(beta) in
                        let a0 = bit 0 v = Bool.to_int tv
                        and a1 = bit 1 v = Bool.to_int tv in
                        match (a0, a1) with
                        | true, true -> ()
                        | true, false -> set_a alpha 0
                        | false, true -> set_a alpha 1
                        | false, false -> raise Fail
                      end)
                    cons)
              b_cons;
            true
          with Fail -> false
        in
        let rec search () =
          if !count >= cap then ()
          else begin
            (* Next unassigned block value. *)
            let rec find_a i =
              if i = Array.length ga then None
              else if ga.(i) = -1 then Some (true, i)
              else find_a (i + 1)
            and find_b i =
              if i = Array.length hb then None
              else if hb.(i) = -1 then Some (false, i)
              else find_b (i + 1)
            in
            match (match find_a 0 with None -> find_b 0 | s -> s) with
            | None -> emit ()
            | Some (is_a, idx) ->
              let mark = Stp_util.Vec.length trail in
              (try
                 if is_a then set_a idx 0 else set_b idx 0;
                 search ()
               with Fail -> ());
              rollback mark;
              if !count < cap then begin
                try
                  if is_a then set_a idx 1 else set_b idx 1;
                  search ()
                with Fail -> ()
              end;
              rollback mark
          end
        in
        if seeded_consistent () then search ()
      in
      List.iter
        (fun phi ->
          if (allowed lsr phi) land 1 = 1 && !count < cap then solve_phi phi)
        Gate.nontrivial;
      List.rev !results
      end
    end
  end

(* [take cap] of a list emitted in deterministic order equals running
   the capped enumeration directly: the search explores a fixed order
   and the cap only stops it early. *)
let rec take n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let decompose ?memo ?(path = `Auto) ?g_fixed ?h_fixed ~cap ~target ~amask
    ~bmask () =
  match memo with
  | None ->
    Profile.incr Profile.Decompose_calls;
    Profile.time Profile.Decompose (fun () ->
        decompose_uncached ?g_fixed ?h_fixed ~allowed:full_basis ~path ~cap
          ~target ~amask ~bmask ())
  | Some memo when path <> `Auto ->
    (* Forced engines bypass the factorisation memo (every path emits
       the same triples in the same order, but differential callers
       should never answer from a cache another engine filled). The
       quarter cache is engine-independent and stays shared. *)
    Profile.incr Profile.Decompose_calls;
    Profile.time Profile.Decompose (fun () ->
        decompose_uncached ~memo ?g_fixed ?h_fixed ~allowed:memo.basis ~path
          ~cap ~target ~amask ~bmask ())
  | Some memo ->
    (* The cached value is always the full (decompose_cap-bounded)
       enumeration, truncated per call: this keeps the cache contents —
       and therefore every caller's view — independent of which call
       site happened to populate the entry first, which is what lets a
       memo be reused across the instances of a collection run. *)
    let key = (target, g_fixed, h_fixed, amask, bmask) in
    let full =
      match FactTbl.find memo.factorisations key with
      | r ->
        Profile.incr Profile.Decompose_cache_hits;
        r
      | exception Not_found ->
        Profile.incr Profile.Decompose_calls;
        let r =
          Profile.time Profile.Decompose (fun () ->
              decompose_uncached ~memo ?g_fixed ?h_fixed ~allowed:memo.basis
                ~path:`Auto ~cap:(max cap decompose_cap) ~target ~amask ~bmask
                ())
        in
        FactTbl.replace memo.factorisations key r;
        r
    in
    if List.compare_length_with full cap <= 0 then full else take cap full

(* Enumerate covers (amask, bmask) of the support of [t]: every support
   variable goes to the A side, the B side, or both; side sizes respect
   the slot capacities; the number of shared variables cannot exceed the
   slack between slots and support size. *)
let covers ?max_shared ~support ~slots_a ~slots_b () =
  let vars = Array.of_list support in
  let k = Array.length vars in
  let slack =
    let s = (slots_a + slots_b) - k in
    match max_shared with None -> s | Some m -> min m s
  in
  let out = ref [] in
  let rec go i amask bmask ca cb shared =
    if ca > slots_a || cb > slots_b || shared > slack then ()
    else if i = k then begin
      if ca >= 1 && cb >= 1 then out := (amask, bmask) :: !out
    end
    else begin
      let bit = 1 lsl vars.(i) in
      go (i + 1) (amask lor bit) bmask (ca + 1) cb shared;
      go (i + 1) amask (bmask lor bit) ca (cb + 1) shared;
      go (i + 1) (amask lor bit) (bmask lor bit) (ca + 1) (cb + 1) (shared + 1)
    end
  in
  go 0 0 0 0 0 0;
  !out

let popcount_mask x =
  let rec loop x acc = if x = 0 then acc else loop (x land (x - 1)) (acc + 1) in
  loop x 0

let decompose_tracked ?g_fixed ?h_fixed ~memo ~stats ~target ~amask ~bmask () =
  let triples =
    decompose ~memo ?g_fixed ?h_fixed ~cap:decompose_cap ~target ~amask ~bmask ()
  in
  if List.compare_length_with triples decompose_cap >= 0 then
    stats.truncated <- true;
  triples

(* Disjoint covers first: they are the cheap, common case, and the
   entangled ones only matter when no disjoint split exists. Cover lists
   depend only on (support set, slot counts), so they are cached. *)
let covers_ordered ?(max_shared = max_int) ~memo ~support ~slots_a ~slots_b () =
  let smask = List.fold_left (fun m v -> m lor (1 lsl v)) 0 support in
  let key = (smask, slots_a, slots_b, max_shared) in
  match QuadTbl.find memo.covers_cache key with
  | cs -> cs
  | exception Not_found ->
    let cs = covers ~max_shared ~support ~slots_a ~slots_b () in
    let overlap (a, b) = popcount_mask (a land b) in
    let cs =
      List.stable_sort (fun c1 c2 -> Stdlib.compare (overlap c1) (overlap c2)) cs
    in
    QuadTbl.replace memo.covers_cache key cs;
    cs

let proj_var_of tt =
  (* If tt is exactly the projection of one variable, return it. *)
  match Tt.support tt with
  | [ v ] when Tt.equal tt (Tt.var (Tt.num_vars tt) v) -> Some v
  | _ -> None

(* Per-node structural data used for pruning: the number of distinct
   internal nodes of the sub-DAG, the number of reachable leaf slots, and
   a tree-expansion signature under which subtree feasibility results are
   shared across shapes. *)
(* Tree feasibility is invariant under NPN transforms of the target:
   negations fold into gate codes, permutations relabel leaves. Keying
   the memo on a canonical representative collapses the search space by
   orders of magnitude; functions of up to four support variables use
   the precomputed table, larger supports fall back to the raw
   support-compacted table. *)
let feasibility_key memo t =
  match TtTbl.find memo.key_cache t with
  | k -> k
  | exception Not_found ->
    let shrunk, _ = Tt.shrink_to_support t in
    let k = Tt.num_vars shrunk in
    let key =
      (* NPN-canonical keys are only sound when the basis is closed
         under input/output complementation and operand swap; the
         built-in full basis is. Restricted bases use raw keys. *)
      if k <= 4 && memo.basis = full_basis then
        let embedded =
          if k = 4 then shrunk
          else Tt.expand shrunk 4 (Array.init k (fun i -> i))
        in
        K4 (Stp_tt.Npn.canon4 (Tt.to_int embedded))
      else Kraw shrunk
    in
    TtTbl.replace memo.key_cache t key;
    key

(* Bounded tree feasibility: can ANY tree chain with at most [budget]
   leaves (possibly repeating variables) realise [t]?  A sound necessary
   condition for realisability inside any sub-DAG whose tree expansion
   has [budget] leaves, memoised globally on (function, budget) — the
   budget strictly decreases through the recursion, so the test
   terminates even though overlapping splits do not shrink supports. *)
let rec tree_ok ~memo ~stats ~deadline t budget =
  let k = Tt.support_size t in
  if k = 0 then false
  else if k = 1 then proj_var_of t <> None
  else if budget < k then false
  else if k = 2 && single_gate_realises memo t then true
  else if k = 2 && budget = 2 then false
  else if memo.basis = full_basis && k = 2 then true
  else if memo.basis = full_basis && budget >= 3 * k then true
    (* ample room: do not spend time *)
  else begin
    let key = (feasibility_key memo t, budget) in
    match FeasTbl.find memo.feasibility key with
    | r ->
      Profile.incr Profile.Feasibility_cache_hits;
      r
    | exception Not_found ->
      Stp_util.Deadline.check deadline;
      stats.feasibility_checks <- stats.feasibility_checks + 1;
      Profile.incr Profile.Feasibility_checks;
      let support = Tt.support t in
      let result =
        Profile.time Profile.Feasibility (fun () ->
            List.exists
              (fun (amask, bmask) ->
                List.exists
                  (fun { phi = _; g; h } ->
                    match
                      min_tree_leaves ~memo ~stats ~deadline g (budget - 1)
                    with
                    | None -> false
                    | Some la -> tree_ok ~memo ~stats ~deadline h (budget - la))
                  (decompose ~memo ~cap:decompose_cap ~target:t ~amask ~bmask ()))
              (covers_ordered ~max_shared:(budget - k) ~memo ~support
                 ~slots_a:(budget - 1) ~slots_b:(budget - 1) ()))
      in
      FeasTbl.replace memo.feasibility key result;
      result
  end

(* Is [t] (a function of exactly two variables) one allowed gate applied
   to the two support variables? *)
and single_gate_realises memo t =
  match Tt.support t with
  | [ z1; z2 ] ->
    let phi = ref 0 in
    for a = 0 to 1 do
      for b = 0 to 1 do
        let m = (a lsl z1) lor (b lsl z2) in
        if Tt.get t m then phi := !phi lor (1 lsl ((2 * a) + b))
      done
    done;
    (memo.basis lsr !phi) land 1 = 1
  | _ -> false

(* Smallest leaf budget at most [upper] under which [t] is
   tree-realisable.  The answer is a function of the NPN feasibility key
   alone ([tree_ok] is monotone in the budget), so the scan's outcome is
   cached per key: an [Exact] minimum answers every later query with one
   lookup, and a [Refuted_to] bound lets a later scan with a larger
   budget resume where the previous one stopped instead of re-probing
   the per-(key, budget) feasibility memo for every budget. *)
and min_tree_leaves ~memo ~stats ~deadline t upper =
  let k = Tt.support_size t in
  let start = max k 1 in
  if upper < start then None
  else begin
    let key = feasibility_key memo t in
    let scan_from refuted =
      if refuted >= upper then None
      else begin
        let rec scan l =
          if l > upper then begin
            KeyTbl.replace memo.min_leaves key (Refuted_to upper);
            None
          end
          else if tree_ok ~memo ~stats ~deadline t l then begin
            KeyTbl.replace memo.min_leaves key (Exact l);
            Some l
          end
          else scan (l + 1)
        in
        scan (max start (refuted + 1))
      end
    in
    match KeyTbl.find memo.min_leaves key with
    | Exact m -> if m <= upper then Some m else None
    | Refuted_to r -> scan_from r
    | exception Not_found -> scan_from (start - 1)
  end

(* Per-node structural data used for pruning and memoisation: distinct
   and tree-expansion gate/leaf counts, plus two signatures of the
   sub-DAG's tree expansion — a sorted one for feasibility results and an
   order-preserving one for realisation fragments (whose node/leaf
   traversal order matters). *)
type node_info = {
  sig_sorted : string;
  sig_ordered : string;
  gates_below : int;  (* distinct internal nodes, including the node *)
  leaves_below : int; (* distinct reachable leaf slots *)
  tree_gates : int;   (* nodes of the tree expansion (shared = copies) *)
  tree_leaves : int;  (* leaves of the tree expansion *)
  independent : bool; (* true tree: no node below (or here) has fanout > 1 *)
}

let popcount x =
  let rec loop x acc = if x = 0 then acc else loop (x land (x - 1)) (acc + 1) in
  loop x 0

let node_infos shape =
  let num = Dag.num_nodes shape in
  let node_reach = Array.make num 0 in
  let fanout = Array.make num 0 in
  Array.iter
    (fun (a, b) ->
      (match a with Dag.N j -> fanout.(j) <- fanout.(j) + 1 | Dag.L _ -> ());
      match b with Dag.N j -> fanout.(j) <- fanout.(j) + 1 | Dag.L _ -> ())
    shape.Dag.fanins;
  let dummy =
    { sig_sorted = ""; sig_ordered = ""; gates_below = 0; leaves_below = 0;
      tree_gates = 0; tree_leaves = 0; independent = false }
  in
  let infos = Array.make num dummy in
  for i = 0 to num - 1 do
    let fa, fb = shape.Dag.fanins.(i) in
    let reach_of = function
      | Dag.N j -> node_reach.(j) lor (1 lsl j)
      | Dag.L _ -> 0
    in
    node_reach.(i) <- reach_of fa lor reach_of fb;
    let ssig = function Dag.N j -> infos.(j).sig_sorted | Dag.L _ -> "L" in
    let osig = function Dag.N j -> infos.(j).sig_ordered | Dag.L _ -> "L" in
    let tg = function Dag.N j -> infos.(j).tree_gates | Dag.L _ -> 0 in
    let tl = function Dag.N j -> infos.(j).tree_leaves | Dag.L _ -> 1 in
    let indep = function Dag.N j -> infos.(j).independent | Dag.L _ -> true in
    let sa = ssig fa and sb = ssig fb in
    let lo, hi = if sa <= sb then (sa, sb) else (sb, sa) in
    let children_independent =
      indep fa && indep fb
      && (match fa with Dag.N j -> fanout.(j) = 1 | Dag.L _ -> true)
      && (match fb with Dag.N j -> fanout.(j) = 1 | Dag.L _ -> true)
    in
    infos.(i) <-
      { sig_sorted = "(" ^ lo ^ hi ^ ")";
        sig_ordered = "(" ^ osig fa ^ osig fb ^ ")";
        gates_below = 1 + popcount node_reach.(i);
        leaves_below = popcount shape.Dag.reach.(i);
        tree_gates = 1 + tg fa + tg fb;
        tree_leaves = tl fa + tl fb;
        independent = children_independent }
  done;
  (infos, node_reach)

let solve_shape ?(deadline = Stp_util.Deadline.never) ?memo ?stats ~cap ~shape
    ~target () =
  let n = Tt.num_vars target in
  let memo = match memo with Some m -> m | None -> create_memo () in
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  stats.shapes_tried <- stats.shapes_tried + 1;
  let num = Dag.num_nodes shape in
  let infos, node_reach = node_infos shape in
  let targets = Array.make num None in
  let gates = Array.make num 0 in
  let handled = Array.make num false in
  let leaf_var = Array.make (max shape.Dag.num_leaves 1) (-1) in
  let chains = ref [] in
  let count = ref 0 in
  targets.(num - 1) <- Some target;
  let slot_cap = function
    | Dag.N j -> infos.(j).leaves_below
    | Dag.L _ -> 1
  in
  (* Feasibility of realising [t] in the sub-DAG of a fanin.  Two sound
     tests combine: (a) the bounded-tree test on the sub-DAG's tree
     expansion over-approximates realisability (shared nodes become
     independent copies); (b) because smaller gate counts were exhausted
     before this round, no sub-DAG may hold a function that a strictly
     smaller tree realises — otherwise the whole chain would compress
     below the current round, contradicting its minimality. *)
  let feasible side t =
    match side with
    | Dag.L _ -> proj_var_of t <> None
    | Dag.N j ->
      let k = Tt.support_size t in
      k >= 2
      && infos.(j).tree_leaves >= k
      && infos.(j).tree_gates >= k - 1
      && (match
            min_tree_leaves ~memo ~stats ~deadline t infos.(j).tree_leaves
          with
         | None -> false
         | Some mtl ->
           (* Minimality prune: a sub-DAG may not hold a function a
              strictly smaller tree realises. Only sound when the tree
              bound is exact: full basis, and below the ample-room
              shortcut region of [tree_ok]. *)
           memo.basis <> full_basis
           || mtl >= 3 * k
           || mtl - 1 >= infos.(j).gates_below)
  in
  (* Pre-order traversals of an independent subtree, for mapping memoised
     fragments onto this shape's node and leaf identifiers. *)
  let subtree_order j =
    let nodes = ref [] and leaves = ref [] in
    let rec walk = function
      | Dag.L s -> leaves := s :: !leaves
      | Dag.N i ->
        nodes := i :: !nodes;
        let fa, fb = shape.Dag.fanins.(i) in
        walk fa;
        walk fb
    in
    walk (Dag.N j);
    (Array.of_list (List.rev !nodes), Array.of_list (List.rev !leaves))
  in
  (* All realisations of [t] at an independent subtree, memoised by the
     ordered tree signature. A fragment stores gate codes and leaf
     variables in pre-order. *)
  let rec realize j t : fragment list =
    Stp_util.Deadline.check deadline;
    let support = Tt.support t in
    let k = List.length support in
    if k < 2 || infos.(j).tree_leaves < k || infos.(j).tree_gates < k - 1 then []
    else begin
      let key = (infos.(j).sig_ordered, t) in
      match RealTbl.find memo.realisations key with
      | r ->
        Profile.incr Profile.Realisation_cache_hits;
        r
      | exception Not_found ->
        Profile.incr Profile.Realisation_cache_misses;
        let fa, fb = shape.Dag.fanins.(j) in
        let result =
          Profile.time Profile.Realise @@ fun () ->
          match (fa, fb) with
          | Dag.L _, Dag.L _ ->
            if k = 2 then begin
              let z1, z2 =
                match support with [ a; b ] -> (a, b) | _ -> assert false
              in
              let phi = ref 0 in
              for a = 0 to 1 do
                for b = 0 to 1 do
                  let m = (a lsl z1) lor (b lsl z2) in
                  if Tt.get t m then phi := !phi lor (1 lsl ((2 * a) + b))
                done
              done;
              if (memo.basis lsr !phi) land 1 = 1 then
                [ { frag_gates = [| !phi |]; frag_leaves = [| z1; z2 |] } ]
              else []
            end
            else []
          | _ ->
            let acc = ref [] in
            let realise_side side f =
              match side with
              | Dag.L _ -> (
                match proj_var_of f with
                | Some z ->
                  [ { frag_gates = [||]; frag_leaves = [| z |] } ]
                | None -> [])
              | Dag.N c ->
                (* Minimality: within an independent subtree of tl leaves,
                   the function must not fit a smaller tree — only sound
                   for the exact (full-basis, non-shortcut) tree bound. *)
                let tl = infos.(c).tree_leaves in
                let kf = Tt.support_size f in
                if
                  tree_ok ~memo ~stats ~deadline f tl
                  && not
                       (memo.basis = full_basis && tl > 2
                       && tl - 1 < 3 * kf
                       && tree_ok ~memo ~stats ~deadline f (tl - 1))
                then realize c f
                else []
            in
            List.iter
              (fun (amask, bmask) ->
                stats.decompose_calls <- stats.decompose_calls + 1;
                List.iter
                  (fun { phi; g; h } ->
                    if List.length !acc < cap then begin
                      let frags_a = realise_side fa g in
                      if frags_a <> [] then begin
                        let frags_b = realise_side fb h in
                        List.iter
                          (fun fra ->
                            List.iter
                              (fun frb ->
                                if List.length !acc < cap then
                                  acc :=
                                    { frag_gates =
                                        Array.concat
                                          [ [| phi |]; fra.frag_gates;
                                            frb.frag_gates ];
                                      frag_leaves =
                                        Array.append fra.frag_leaves
                                          frb.frag_leaves }
                                    :: !acc)
                              frags_b)
                          frags_a
                      end
                    end)
                  (decompose_tracked ~memo ~stats ~target:t ~amask ~bmask ()))
              (covers_ordered ~memo ~support ~slots_a:(slot_cap fa)
               ~slots_b:(slot_cap fb) ());
            if List.length !acc >= cap then stats.truncated <- true;
            List.rev !acc
        in
        RealTbl.replace memo.realisations key result;
        result
    end
  in
  let emit () =
    let steps =
      Array.to_list
        (Array.mapi
           (fun i (fa, fb) ->
             let signal = function
               | Dag.N j -> n + j
               | Dag.L s -> leaf_var.(s)
             in
             { Chain.fanin1 = signal fa; fanin2 = signal fb; gate = gates.(i) })
           shape.Dag.fanins)
    in
    let chain = Chain.make ~n ~steps ~output:(n + num - 1) () in
    chains := chain :: !chains;
    incr count;
    stats.candidates_emitted <- stats.candidates_emitted + 1;
    Profile.incr Profile.Chains_emitted
  in
  let fixed_target = function
    | Dag.N j -> targets.(j)
    | Dag.L _ -> None
  in
  (* Capability signature of a child slot: everything [bind] consults
     about the slot besides the bound function itself, packed into one
     int ([-1] marks a leaf slot). Two slots with equal signatures
     accept exactly the same subfunctions, which is what makes learned
     survivor sets transfer across sibling topologies. *)
  let cap_of = function
    | Dag.L _ -> -1
    | Dag.N j ->
      let inf = infos.(j) in
      inf.leaves_below
      lor (inf.gates_below lsl 8)
      lor (inf.tree_leaves lsl 16)
      lor (inf.tree_gates lsl 32)
  in
  (* Bind a side to a subfunction; returns an undo closure, or None if the
     binding is inconsistent or provably unrealisable. *)
  let bind side f =
    match side with
    | Dag.N j -> (
      match targets.(j) with
      | None ->
        let k = Tt.support_size f in
        if
          k <= infos.(j).leaves_below
          && k - 1 <= infos.(j).gates_below
          && feasible side f
        then begin
          targets.(j) <- Some f;
          Some (fun () -> targets.(j) <- None)
        end
        else None
      | Some f0 -> if Tt.equal f f0 then Some (fun () -> ()) else None)
    | Dag.L s -> (
      match proj_var_of f with
      | Some z ->
        leaf_var.(s) <- z;
        Some (fun () -> leaf_var.(s) <- -1)
      | None -> None)
  in
  let rec assign node =
    Stp_util.Deadline.check deadline;
    if !count >= cap then stats.truncated <- true
    else if node < 0 then emit ()
    else if handled.(node) then assign (node - 1)
    else begin
      let t = match targets.(node) with Some t -> t | None -> assert false in
      let support = Tt.support t in
      let k = List.length support in
      let fa, fb = shape.Dag.fanins.(node) in
      if k < 2 then () (* a 2-input step realising t would be degenerate *)
      else if infos.(node).independent then begin
        (* Whole independent subtree at once, from the memoised
           realisations. *)
        let node_order, leaf_order = subtree_order node in
        let inner = node_reach.(node) in
        List.iter
          (fun frag ->
            if !count < cap then begin
              Array.iteri (fun p i -> gates.(i) <- frag.frag_gates.(p)) node_order;
              Array.iteri
                (fun p s -> leaf_var.(s) <- frag.frag_leaves.(p))
                leaf_order;
              for i = 0 to num - 1 do
                if (inner lsr i) land 1 = 1 then handled.(i) <- true
              done;
              assign (node - 1);
              for i = 0 to num - 1 do
                if (inner lsr i) land 1 = 1 then handled.(i) <- false
              done;
              Array.iter (fun s -> leaf_var.(s) <- -1) leaf_order
            end)
          (realize node t)
      end
      else begin
        (* Returns true iff the triple passed every bind filter (the
           recursion below it runs regardless); recorded as a learned
           survivor when the slots are unconstrained. *)
        let try_triple { phi; g; h } =
          if !count >= cap then false
          else begin
            (* Internal/internal pairs computing complementary or equal
               functions cannot occur in a size-optimal chain. *)
            let both_internal =
              match (fa, fb) with Dag.N _, Dag.N _ -> true | _ -> false
            in
            if both_internal && (Tt.equal g h || Tt.equal_bnot g h) then false
            else
              match bind fa g with
              | None -> false
              | Some undo_a -> (
                match bind fb h with
                | None ->
                  undo_a ();
                  false
                | Some undo_b ->
                  gates.(node) <- phi;
                  assign (node - 1);
                  undo_b ();
                  undo_a ();
                  true)
          end
        in
        let slots_a = slot_cap fa and slots_b = slot_cap fb in
        if slots_a + slots_b >= k then begin
          let cover_list = covers_ordered ~memo ~support ~slots_a ~slots_b () in
          let no_fixed side =
            match fixed_target side with None -> true | Some _ -> false
          in
          (* Learning is sound only for unconstrained slots: a pre-bound
             child folds its fixed function into the bind outcome, which
             the learned key does not capture. *)
          let learnable = no_fixed fa && no_fixed fb in
          let capa = cap_of fa and capb = cap_of fb in
          List.iter
            (fun (amask, bmask) ->
              if !count < cap then begin
                if learnable then begin
                  let lkey = (t, amask, bmask, capa, capb) in
                  match LearnTbl.find memo.learned lkey with
                  | [||] ->
                    (* Learned refutation: no triple of this cover can
                       bind into slots of these capabilities. *)
                    Profile.incr Profile.Learned_prunes
                  | surv ->
                    Profile.incr Profile.Learned_replays;
                    stats.decompose_calls <- stats.decompose_calls + 1;
                    let triples =
                      decompose_tracked ~memo ~stats ~target:t ~amask ~bmask ()
                    in
                    let si = ref 0 in
                    let ns = Array.length surv in
                    List.iteri
                      (fun i tr ->
                        if !si < ns && surv.(!si) = i then begin
                          incr si;
                          ignore (try_triple tr)
                        end)
                      triples
                  | exception Not_found ->
                    stats.decompose_calls <- stats.decompose_calls + 1;
                    let triples =
                      decompose_tracked ~memo ~stats ~target:t ~amask ~bmask ()
                    in
                    let buf = Array.make (List.length triples + 1) 0 in
                    let ns = ref 0 in
                    List.iteri
                      (fun i tr ->
                        if try_triple tr then begin
                          buf.(!ns) <- i;
                          incr ns
                        end)
                      triples;
                    (* Record only complete passes: once the chain cap
                       trips, try_triple stops binding and the survivor
                       set would be truncated. *)
                    if !count < cap then
                      LearnTbl.replace memo.learned lkey
                        (Array.sub buf 0 !ns)
                end
                else begin
                  (* Pre-filter covers against already-fixed child
                     targets. *)
                  let ok_fixed side mask =
                    match fixed_target side with
                    | None -> true
                    | Some f0 -> Tt.support_mask f0 land lnot mask = 0
                  in
                  if ok_fixed fa amask && ok_fixed fb bmask then begin
                    stats.decompose_calls <- stats.decompose_calls + 1;
                    let triples =
                      decompose_tracked ~memo ~stats ~target:t ~amask ~bmask ()
                    in
                    List.iter (fun tr -> ignore (try_triple tr)) triples
                  end
                end
              end)
            cover_list
        end
      end
    end
  in
  if
    Tt.support_size target >= 2
    && shape.Dag.num_leaves >= Tt.support_size target
    && feasible (Dag.N (num - 1)) target
  then assign (num - 1);
  if !count >= cap then stats.truncated <- true;
  !chains
