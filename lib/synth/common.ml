module Tt = Stp_tt.Tt
module Chain = Stp_chain.Chain

let prepare f =
  match Tt.support f with
  | [] -> invalid_arg "synthesis: constant target has no Boolean chain"
  | [ v ] ->
    let n = Tt.num_vars f in
    let negated = Tt.equal f (Tt.bnot (Tt.var n v)) in
    `Trivial (Chain.make ~n ~steps:[] ~output:v ~output_negated:negated ())
  | _ ->
    let g, support = Tt.shrink_to_support f in
    `Reduced (g, support)

let expand_chain ~n ~support chain =
  let sup = Array.of_list support in
  let s = Array.length sup in
  let map signal = if signal < s then sup.(signal) else n + (signal - s) in
  let steps =
    Array.to_list
      (Array.map
         (fun (st : Chain.step) ->
           { Chain.fanin1 = map st.fanin1; fanin2 = map st.fanin2; gate = st.gate })
         chain.Chain.steps)
  in
  Chain.make ~n ~steps ~output:(map chain.Chain.output)
    ~output_negated:chain.Chain.output_negated ()

let optimal_and_verified target chains =
  Stp_util.Profile.time Stp_util.Profile.Verify @@ fun () ->
  let seen = Hashtbl.create 97 in
  List.filter
    (fun c ->
      let c' = Chain.normalise_fanin_order c in
      let key = Format.asprintf "%a" Chain.pp_compact c' in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        Stp_util.Profile.incr Stp_util.Profile.Chains_verified;
        Tt.equal (Chain.simulate c) target
        && Stp_circuitsat.Circuit_solver.verify_chain c target
      end)
    chains
