(** NPN-class synthesis cache.

    NPN4 has only 222 classes behind the 65 536 4-input functions, and
    every member of a class has the same optimum gate count, with the
    optimum chains mapped onto each other by the class transform. This
    module exploits that: before a full synthesis run the target is
    canonicalised with {!Stp_tt.Npn.canonical}; on a cache hit the
    stored optimum chains of the class representative are replayed
    through the inverse transform (fanins permuted/negated into gate
    codes, output negation folded in) instead of re-searching.

    Verification discipline: the full dedup + circuit-SAT check
    ({!Common.optimal_and_verified}) runs {e once per class}, against
    the canonical target, when the entry is stored. Each subsequent
    replay only re-simulates the transformed chain — a cheap
    bit-parallel equality that still catches any transform-algebra bug
    without re-paying the paper's step (iv) per class member.

    The cache is protected by a mutex and may be shared between the
    domains of a parallel collection run: a class solved by one domain
    is a replay for every other. (The wrapped solver itself runs
    outside the lock; two domains missing on the same class
    concurrently both solve it, and the first store wins.) Entries are
    only written for solved instances — timeouts are never cached,
    since solvability under a wall-clock budget is not a class
    property.

    Functions whose support exceeds [max_support] (default 6, the
    practical bound of exhaustive canonicalisation) bypass the cache
    and are solved directly.

    Entries can be exported ({!entries}) and re-imported
    ({!add_entry}), which is how {!Stp_store.Store} persists a cache
    across processes. *)

type t

val create : ?max_support:int -> unit -> t

type solver = Engine.spec -> deadline:Stp_util.Deadline.t -> Engine.result
(** The shape of {!Engine.S.synthesize} as a plain function. *)

val wrap : t -> (module Engine.S) -> (module Engine.S)
(** [wrap t e] is an engine with identical per-instance semantics that
    consults the cache first. Cache misses solve the {e class
    representative} (so the entry serves the whole class) and replay
    the result onto the concrete target. Keep one cache per engine:
    entries store the wrapped engine's chain sets, and engines differ
    in how many optimum chains they return. *)

val wrap_solver : t -> solver -> solver
(** [wrap] at the function level, for callers not holding a module. *)

val synthesize :
  ?options:Spec.options -> ?memo:Factor.memo -> t -> Stp_tt.Tt.t -> Spec.result
(** [wrap] applied to {!Engine.stp}, with the deadline taken from
    [options.timeout] — the pre-[Engine] convenience entry point. *)

type stats = {
  hits : int;      (** lookups answered by replaying a cached class *)
  misses : int;    (** lookups that had to run a full synthesis *)
  bypassed : int;  (** instances too wide to canonicalise *)
  failures : int;
    (** replayed chains that failed re-simulation (a transform-algebra
        bug surfaced — the instance was re-solved directly) *)
}

val stats : t -> stats

val hit_rate : t -> float
(** [hits / (hits + misses)]; 0 before any lookup. *)

val classes : t -> int
(** Number of distinct NPN classes currently cached. *)

val cached : t -> Stp_tt.Tt.t -> bool
(** Would this target be answered by a cache replay right now? (Its
    class representative is cached and it is neither constant, trivial,
    nor too wide.) Advisory under concurrency — used by the daemon to
    attribute a response to cache vs. solver — and does not count as a
    lookup in {!stats}. *)

(** {1 Persistence hooks} *)

type entry = {
  gates : int;  (** the class's optimum gate count *)
  chains : Stp_chain.Chain.t list;
      (** optimum chains over the canonical function's variable space *)
}

val entries : t -> (Stp_tt.Tt.t * entry) list
(** Snapshot of every cached class, keyed by canonical representative
    (unordered). *)

val add_entry : t -> Stp_tt.Tt.t -> entry -> bool
(** [add_entry t canon entry] seeds the cache with an externally
    persisted class. The entry is sanitised, not trusted: the key must
    be a canonical representative within [max_support], and only chains
    of the recorded size that simulate to the key are kept. Returns
    [false] (and stores nothing) when nothing survives or the class is
    already cached. *)
