(** NPN-class synthesis cache.

    NPN4 has only 222 classes behind the 65 536 4-input functions, and
    every member of a class has the same optimum gate count, with the
    optimum chains mapped onto each other by the class transform. This
    module exploits that: before a full synthesis run the target is
    canonicalised with {!Stp_tt.Npn.canonical}; on a cache hit the
    stored optimum chains of the class representative are replayed
    through the inverse transform (fanins permuted/negated into gate
    codes, output negation folded in) instead of re-searching, and the
    replayed chains are re-verified with
    {!Common.optimal_and_verified} before being returned.

    The cache is protected by a mutex and may be shared between the
    domains of a parallel collection run: a class solved by one domain
    is a replay for every other. (The wrapped solver itself runs
    outside the lock; two domains missing on the same class
    concurrently both solve it, and the first store wins.) Entries are
    only written for solved instances — timeouts are never cached,
    since solvability under a wall-clock budget is not a class
    property.

    Functions whose support exceeds [max_support] (default 6, the
    practical bound of exhaustive canonicalisation) bypass the cache
    and are solved directly. *)

type t

val create : ?max_support:int -> unit -> t

type solver =
  options:Spec.options -> ?memo:Factor.memo -> Stp_tt.Tt.t -> Spec.result
(** The shape shared by {!Stp_exact.synthesize} and the baselines once
    partially applied — what the harness calls an engine. *)

val wrap : t -> solver -> solver
(** [wrap t solve] is a solver with identical per-instance semantics
    that consults the cache first. Cache misses solve the {e class
    representative} (so the entry serves the whole class) and replay
    the result onto the concrete target. Keep one cache per engine:
    entries store the wrapped solver's chain sets, and engines differ
    in how many optimum chains they return. *)

val synthesize :
  ?options:Spec.options -> ?memo:Factor.memo -> t -> Stp_tt.Tt.t -> Spec.result
(** [wrap] applied to {!Stp_exact.synthesize}. *)

type stats = {
  hits : int;      (** lookups answered by replaying a cached class *)
  misses : int;    (** lookups that had to run a full synthesis *)
  bypassed : int;  (** instances too wide to canonicalise *)
  failures : int;
    (** replayed chains that failed re-verification (a transform-algebra
        bug surfaced — the instance was re-solved directly) *)
}

val stats : t -> stats

val hit_rate : t -> float
(** [hits / (hits + misses)]; 0 before any lookup. *)

val classes : t -> int
(** Number of distinct NPN classes currently cached. *)
