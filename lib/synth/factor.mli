(** STP matrix factorisation of Boolean functions over DAG shapes
    (Section III-B).

    The central operation decomposes a target function [t] as
    [t = phi (g over A) (h over B)] for a 2-input gate [phi] and variable
    sets [A], [B] (given as bitmasks, possibly overlapping). Written on
    STP canonical forms, this is exactly the paper's factorisation of
    [M_Φ] into [M_phi ⋉ M_g ⋉ M_h]:

    - for disjoint [A], [B] the solvability condition is the paper's
      "two unique quartering parts" test on the blocks of [M_Φ];
    - overlapping [A], [B] correspond to factorisations through the
      power-reducing matrix [M_r] (Property 3/4), whose unconstrained
      entries ['x'] surface here as free block values that the
      enumeration branches on;
    - the variable reorderings handled by [M_w] (swap matrices)
      correspond to the packing of minterm bits into block indices.

    [solve_shape] runs the factorisation top-down over a whole DAG shape
    and produces every Boolean chain of that shape realising the target
    (the paper's pBC candidates, all solutions in one pass). *)

type triple = {
  phi : Stp_chain.Gate.code;
  g : Stp_tt.Tt.t; (** first-operand subfunction, support inside [A] *)
  h : Stp_tt.Tt.t; (** second-operand subfunction, support inside [B] *)
}

type memo
(** Shared caches: factorisation results keyed by (target, A, B) and
    subtree feasibility keyed by (structural signature, target), plus
    the gate basis the engine is allowed to use. Reuse one memo across
    gate counts and shapes of a synthesis run — and across the
    instances of a whole collection run: every cached value is a pure
    function of its key (capped factorisation lists are stored at the
    full enumeration bound and truncated per call), so reuse changes
    only speed, never results. A memo is specific to its basis.

    A memo is plain [Hashtbl]s and is {e not} thread-safe: parallel
    runners must keep one memo per domain and never share one. *)

val create_memo : ?basis:Stp_chain.Gate.code list -> unit -> memo
(** [create_memo ()] allows all ten nontrivial gates.
    [create_memo ~basis ()] restricts the engine to the given codes
    (degenerate codes are ignored); e.g. the AND class
    [[1; 2; 4; 7; 8; 11; 13; 14]] for AIG-style synthesis.
    @raise Invalid_argument on an empty effective basis. *)

val decompose :
  ?memo:memo ->
  ?path:[ `Auto | `Packed | `Multiword | `List ] ->
  ?g_fixed:Stp_tt.Tt.t ->
  ?h_fixed:Stp_tt.Tt.t ->
  cap:int ->
  target:Stp_tt.Tt.t ->
  amask:int ->
  bmask:int ->
  unit ->
  triple list
(** All factorisations [target = phi(g, h)] with [supp g ⊆ amask],
    [supp h ⊆ bmask], [phi] nontrivial and [g], [h] non-constant. At
    most [cap] triples are returned. Returns [] when
    [supp target ⊄ amask ∪ bmask]. [g_fixed] (resp. [h_fixed]) pins one
    side to a known subfunction — used when a shared DAG node's function
    was already bound by another parent.

    [path] selects the enumeration engine. [`Auto] (the default) picks
    the single-word packed solver when each side fits one machine word
    (at most 5 variables, 6-variable targets), the multi-word
    {!Stp_matrix.Kern} solver up to 7-variable sides and 12-variable
    targets, and the list-based solver beyond. All engines emit the
    same triples in the same deterministic order; forcing [`Packed],
    [`Multiword] or [`List] exists for differential testing and
    benchmarks. Forced engines bypass the factorisation memo.
    @raise Invalid_argument
      if a forced engine does not cover the requested side widths. *)

type stats = {
  mutable decompose_calls : int;
  mutable shapes_tried : int;
  mutable candidates_emitted : int;
  mutable feasibility_checks : int;
  mutable truncated : bool; (** a solution cap was hit somewhere *)
}

val fresh_stats : unit -> stats

val solve_shape :
  ?deadline:Stp_util.Deadline.t ->
  ?memo:memo ->
  ?stats:stats ->
  cap:int ->
  shape:Stp_topology.Dag.t ->
  target:Stp_tt.Tt.t ->
  unit ->
  Stp_chain.Chain.t list
(** Every chain of the given shape computing [target] (over the target's
    full variable space; the target must depend on at least two
    variables). Raises {!Stp_util.Deadline.Timeout} on expiry. *)
