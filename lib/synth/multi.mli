(** Multi-output synthesis: the full Boolean-chain model of Section
    II-B, where one shared gate pool drives several outputs. *)

type result = {
  status : Spec.status;
  mchain : Stp_chain.Mchain.t option;
  gates : int option;
  elapsed : float;
}

val exact :
  ?incremental:bool -> ?options:Spec.options -> Stp_tt.Tt.t array -> result
(** Size-optimal multi-output chain via the multi-output SSV encoding on
    the CDCL solver — exact, one solution. Outputs must share one
    arity. Incremental by default: one solver spans the whole gate-budget
    sweep, with per-budget selector literals ({!Stp_encodings.Ssv_multi.Inc});
    [~incremental:false] rebuilds solver and encoding per budget. *)

val stp_shared : ?options:Spec.options -> Stp_tt.Tt.t array -> result
(** Heuristic multi-output synthesis in the STP spirit: each output is
    synthesised exactly (all optimum chains), then one chain per output
    is chosen to maximise structural sharing and the union is merged
    with {!Stp_chain.Chain_opt}-style hashing. An upper bound on the
    exact multi-output optimum — fast where {!exact} is not. *)
