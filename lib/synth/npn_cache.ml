module Tt = Stp_tt.Tt
module Npn = Stp_tt.Npn
module Chain = Stp_chain.Chain

type solver =
  options:Spec.options -> ?memo:Factor.memo -> Stp_tt.Tt.t -> Spec.result

type stats = { hits : int; misses : int; bypassed : int; failures : int }

type entry = {
  gates : int;
  chains : Chain.t list; (* over the canonical function's variable space *)
}

type t = {
  lock : Mutex.t;
  table : (Tt.t, entry) Hashtbl.t;
  max_support : int;
  mutable hits : int;
  mutable misses : int;
  mutable bypassed : int;
  mutable failures : int;
}

let create ?(max_support = 6) () =
  { lock = Mutex.create ();
    table = Hashtbl.create 997;
    max_support;
    hits = 0;
    misses = 0;
    bypassed = 0;
    failures = 0 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let stats t =
  locked t (fun () ->
      { hits = t.hits;
        misses = t.misses;
        bypassed = t.bypassed;
        failures = t.failures })

let classes t = locked t (fun () -> Hashtbl.length t.table)

let hit_rate t =
  let s = stats t in
  let looked_up = s.hits + s.misses in
  if looked_up = 0 then 0.0 else float_of_int s.hits /. float_of_int looked_up

let lookup t canon = locked t (fun () -> Hashtbl.find_opt t.table canon)

let store t canon entry =
  locked t (fun () ->
      if not (Hashtbl.mem t.table canon) then Hashtbl.replace t.table canon entry)

(* Map the cached optimum chains of the class representative back onto
   the concrete target: [tr] satisfies [Npn.apply target tr = canon], so
   replaying [Npn.inverse tr] onto a chain computing [canon] yields a
   chain of identical size computing [target] (input negations and the
   output negation fold into gate codes, the permutation relabels
   fanins). The replayed chains then pass the same
   [Common.optimal_and_verified] gate as a cold synthesis — the paper's
   step (iv) — before being lifted back to the original variable
   space. *)
let replay ~n ~support ~target ~tr entry =
  let inv = Npn.inverse tr in
  let replayed = List.map (fun c -> Chain.apply_npn c inv) entry.chains in
  match Common.optimal_and_verified target replayed with
  | [] -> None
  | verified -> Some (List.map (Common.expand_chain ~n ~support) verified)

let wrap t (solve : solver) : solver =
 fun ~options ?memo f ->
  let start = Stp_util.Unix_time.now () in
  let elapsed () = Stp_util.Unix_time.now () -. start in
  match Common.prepare f with
  | `Trivial chain ->
    Spec.solved ~chains:[ chain ] ~gates:0 ~elapsed:(elapsed ())
  | `Reduced (target, support) ->
    if Tt.num_vars target > t.max_support then begin
      (* Exhaustive canonicalisation is impractical this wide; solve
         directly. *)
      locked t (fun () -> t.bypassed <- t.bypassed + 1);
      solve ~options ?memo f
    end
    else begin
      let n = Tt.num_vars f in
      let canon, tr = Npn.canonical target in
      match lookup t canon with
      | Some entry -> (
        locked t (fun () -> t.hits <- t.hits + 1);
        match replay ~n ~support ~target ~tr entry with
        | Some chains ->
          Spec.solved ~chains ~gates:entry.gates ~elapsed:(elapsed ())
        | None ->
          (* A cached chain failing verification after replay would be a
             bug in the transform algebra; never let it corrupt results —
             fall back to a direct solve and record the event. *)
          locked t (fun () -> t.failures <- t.failures + 1);
          solve ~options ?memo f)
      | None -> (
        locked t (fun () -> t.misses <- t.misses + 1);
        (* Solve the class representative so the cached entry serves
           every member of the class, then replay onto this member. *)
        let r = solve ~options ?memo canon in
        match r.Spec.status with
        | Spec.Timeout -> Spec.timed_out ~elapsed:(elapsed ())
        | Spec.Solved -> (
          let gates = Option.value ~default:0 r.Spec.gates in
          store t canon { gates; chains = r.Spec.chains };
          match replay ~n ~support ~target ~tr { gates; chains = r.Spec.chains } with
          | Some chains -> Spec.solved ~chains ~gates ~elapsed:(elapsed ())
          | None ->
            locked t (fun () -> t.failures <- t.failures + 1);
            solve ~options ?memo f))
    end

let synthesize ?(options = Spec.default_options) ?memo t f =
  (wrap t (fun ~options ?memo f -> Stp_exact.synthesize ~options ?memo f))
    ~options ?memo f
